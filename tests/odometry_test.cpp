/**
 * @file
 * Tests for the frame-to-frame ICP odometry baseline and the
 * cross-system comparison invariants the SLAMBench harness relies
 * on.
 */

#include <gtest/gtest.h>

#include "core/benchmark.hpp"
#include "core/odometry.hpp"
#include "core/slam_system.hpp"
#include "devices/fleet.hpp"

namespace {

using namespace slambench;
using namespace slambench::core;
using dataset::Sequence;
using dataset::SequenceSpec;

Sequence
makeSequence(size_t frames, dataset::TrajectoryPreset preset =
                                dataset::TrajectoryPreset::OrbitA)
{
    SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = frames;
    spec.renderRgb = false;
    spec.trajectory = preset;
    return generateSequence(spec);
}

TEST(Odometry, NameIsStable)
{
    OdometrySystem system;
    EXPECT_EQ(system.name(), "icp-odometry");
}

TEST(Odometry, TracksShortSequence)
{
    const Sequence seq = makeSequence(8);
    OdometrySystem system;
    const BenchmarkResult result = runBenchmark(system, seq);
    EXPECT_EQ(result.frames, 8u);
    EXPECT_GT(result.trackedFraction(), 0.9);
    EXPECT_LT(result.ate.maxAte, 0.05);
}

TEST(Odometry, WorkCountsExcludeVolumeKernels)
{
    const Sequence seq = makeSequence(4);
    OdometrySystem system;
    const BenchmarkResult result = runBenchmark(system, seq);
    EXPECT_DOUBLE_EQ(
        result.totalWork.itemsFor(kfusion::KernelId::Integrate), 0.0);
    EXPECT_DOUBLE_EQ(
        result.totalWork.itemsFor(kfusion::KernelId::Raycast), 0.0);
    EXPECT_GT(
        result.totalWork.itemsFor(kfusion::KernelId::Track), 0.0);
    EXPECT_GT(result.totalWork.itemsFor(
                  kfusion::KernelId::BilateralFilter),
              0.0);
}

TEST(Odometry, DriftsMoreThanKFusionOnLongerRuns)
{
    const Sequence seq = makeSequence(25);

    kfusion::KFusionConfig kf_config;
    kf_config.volumeResolution = 96;
    kf_config.pyramidIterations = {6, 4, 3};
    KFusionSystem kfusion_system(kf_config);
    OdometrySystem odometry_system;

    const BenchmarkResult kf = runBenchmark(kfusion_system, seq);
    const BenchmarkResult odo = runBenchmark(odometry_system, seq);
    ASSERT_GT(kf.trackedFraction(), 0.9);
    ASSERT_GT(odo.trackedFraction(), 0.9);
    // Frame-to-model tracking must accumulate less error than pure
    // frame-to-frame odometry (the reason KinectFusion exists).
    EXPECT_LT(kf.ate.rmse, odo.ate.rmse);
}

TEST(Odometry, CheaperThanKFusionOnDevice)
{
    const Sequence seq = makeSequence(6);
    kfusion::KFusionConfig kf_config;
    kf_config.volumeResolution = 128;
    KFusionSystem kfusion_system(kf_config);
    OdometrySystem odometry_system;

    const BenchmarkResult kf = runBenchmark(kfusion_system, seq);
    const BenchmarkResult odo = runBenchmark(odometry_system, seq);
    const auto xu3 = devices::odroidXu3();
    EXPECT_LT(devices::simulateRun(xu3, odo.frameWork).totalSeconds,
              devices::simulateRun(xu3, kf.frameWork).totalSeconds);
}

TEST(Odometry, ComputeSizeRatioReducesWork)
{
    const Sequence seq = makeSequence(4);
    OdometryConfig c1, c2;
    c2.computeSizeRatio = 2;
    OdometrySystem s1(c1), s2(c2);
    const BenchmarkResult r1 = runBenchmark(s1, seq);
    const BenchmarkResult r2 = runBenchmark(s2, seq);
    EXPECT_LT(r2.totalWork.itemsFor(
                  kfusion::KernelId::BilateralFilter),
              r1.totalWork.itemsFor(
                  kfusion::KernelId::BilateralFilter));
}

TEST(Odometry, ReinitializeClearsState)
{
    const Sequence seq = makeSequence(3);
    OdometrySystem system;
    runBenchmark(system, seq);
    const BenchmarkResult again = runBenchmark(system, seq);
    EXPECT_EQ(again.frames, 3u);
    EXPECT_EQ(again.frameWork.size(), 3u);
    EXPECT_LT(again.ate.maxAte, 0.05);
}

TEST(Odometry, PolymorphicUseThroughInterface)
{
    const Sequence seq = makeSequence(3);
    std::unique_ptr<SlamSystem> system =
        std::make_unique<OdometrySystem>();
    const BenchmarkResult result = runBenchmark(*system, seq);
    EXPECT_EQ(result.frames, 3u);
}

} // namespace
