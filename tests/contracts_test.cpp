/**
 * @file
 * Contract tests: the documented failure behavior of the public API.
 * panic() paths (internal invariant violations) abort; fatal() paths
 * (user errors) exit(1). Both are death tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "hypermapper/param_space.hpp"
#include "kfusion/pipeline.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"

namespace {

using namespace slambench;

TEST(Contracts, CsvTooManyCellsPanics)
{
    EXPECT_DEATH(
        {
            std::ostringstream out;
            support::CsvWriter csv(out, {"only"});
            csv.beginRow().cell("a").cell("b");
        },
        "more cells than header");
}

TEST(Contracts, CsvShortRowPanics)
{
    // The whole writer lives inside the death statement: its
    // destructor also flushes (and would re-panic in the parent).
    EXPECT_DEATH(
        {
            std::ostringstream out;
            support::CsvWriter csv(out, {"a", "b"});
            csv.beginRow().cell("only one");
            csv.endRow();
        },
        "fewer cells");
}

TEST(Contracts, HistogramRejectsBadRange)
{
    EXPECT_DEATH(support::Histogram(1.0, 1.0, 4), "hi must be > lo");
    EXPECT_DEATH(support::Histogram(0.0, 1.0, 0), "bins");
}

TEST(Contracts, MlDatasetRowSizeMismatchPanics)
{
    ml::Dataset data(3);
    EXPECT_DEATH(data.addRow({1.0, 2.0}, 0.0),
                 "feature count mismatch");
}

TEST(Contracts, UnfittedTreePredictPanics)
{
    ml::DecisionTree tree;
    EXPECT_DEATH(tree.predict({1.0}), "not fitted");
}

TEST(Contracts, UnfittedForestPredictPanics)
{
    ml::RandomForest forest;
    EXPECT_DEATH(forest.predict({1.0}), "not fitted");
}

TEST(Contracts, EmptyForestFitPanics)
{
    ml::RandomForest forest;
    ml::Dataset empty(1);
    support::Rng rng(1);
    EXPECT_DEATH(forest.fit(empty, ml::ForestOptions{}, rng),
                 "empty dataset");
}

TEST(Contracts, UnknownParameterNameIsFatal)
{
    hypermapper::ParameterSpace space;
    space.addReal("x", 0.0, 1.0, 0.5);
    EXPECT_EXIT(space.indexOf("nope"),
                ::testing::ExitedWithCode(1), "unknown parameter");
}

TEST(Contracts, EmptyOrdinalIsFatal)
{
    hypermapper::ParameterSpace space;
    EXPECT_EXIT(space.addOrdinal("o", {}, 0.0),
                ::testing::ExitedWithCode(1), "needs values");
}

TEST(Contracts, UnsortedOrdinalIsFatal)
{
    hypermapper::ParameterSpace space;
    EXPECT_EXIT(space.addOrdinal("o", {2.0, 1.0}, 1.0),
                ::testing::ExitedWithCode(1), "must ascend");
}

TEST(Contracts, InvalidKFusionConfigIsFatal)
{
    kfusion::KFusionConfig config;
    config.computeSizeRatio = 5; // not a power of two
    const auto k = math::CameraIntrinsics::fromFov(64, 48, 1.0f);
    EXPECT_EXIT(kfusion::KFusion(config, k),
                ::testing::ExitedWithCode(1), "invalid configuration");
}

TEST(Contracts, OversizedRatioForTinyImagesIsFatal)
{
    kfusion::KFusionConfig config;
    config.computeSizeRatio = 8;
    const auto k = math::CameraIntrinsics::fromFov(32, 24, 1.0f);
    EXPECT_EXIT(kfusion::KFusion(config, k),
                ::testing::ExitedWithCode(1), "too small");
}

TEST(Contracts, CheckCompatibilityReturnsTextNotDeath)
{
    // The query form must NOT terminate; that is its purpose.
    kfusion::KFusionConfig config;
    config.computeSizeRatio = 8;
    const auto k = math::CameraIntrinsics::fromFov(32, 24, 1.0f);
    const std::string problem =
        kfusion::KFusion::checkCompatibility(config, k);
    EXPECT_FALSE(problem.empty());
    config.computeSizeRatio = 1;
    EXPECT_TRUE(
        kfusion::KFusion::checkCompatibility(config, k).empty());
}

} // namespace
