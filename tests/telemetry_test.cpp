/**
 * @file
 * Tests for the live-telemetry subsystem: Prometheus text exposition
 * rendering, the HTTP endpoint behavior (/metrics, /healthz, /runz),
 * the SLO watchdog, the flight-recorder ring, streaming CSV flushes,
 * and the crash-dump writer (including a fork-based fatal-signal
 * test, which the TSan smoke run excludes by suite name).
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/slo_watchdog.hpp"
#include "support/telemetry_server.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using namespace slambench::support::telemetry;
namespace metrics = slambench::support::metrics;
namespace trace = slambench::support::trace;
using slambench::support::ThreadPool;

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Lines of @p text that start with @p prefix. */
std::vector<std::string>
linesStartingWith(const std::string &text, const std::string &prefix)
{
    std::vector<std::string> out;
    for (const std::string &line : splitLines(text))
        if (line.rfind(prefix, 0) == 0)
            out.push_back(line);
    return out;
}

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem + "_" +
           std::to_string(::getpid());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Blocking one-shot HTTP client against 127.0.0.1:@p port. */
std::string
httpRequest(int port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    size_t off = 0;
    while (off < request.size()) {
        const ssize_t n = ::write(fd, request.data() + off,
                                  request.size() - off);
        if (n <= 0) {
            ADD_FAILURE() << "short write to telemetry server";
            break;
        }
        off += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    ssize_t got;
    while ((got = ::read(fd, buf, sizeof(buf))) > 0)
        response.append(buf, static_cast<size_t>(got));
    ::close(fd);
    return response;
}

std::string
httpGet(int port, const std::string &path)
{
    return httpRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

// --- Minimal JSON validator for the crash-dump schema -----------
//
// Recursive-descent recognizer: accepts exactly the JSON grammar
// (objects, arrays, strings with escapes, numbers, literals) and
// nothing else. The crash dumps are also validated by Python in the
// telemetry smoke script; this keeps the unit test self-contained.

struct JsonCursor
{
    const char *p;
    const char *end;
};

void
skipWs(JsonCursor &c)
{
    while (c.p < c.end && (*c.p == ' ' || *c.p == '\t' ||
                           *c.p == '\n' || *c.p == '\r'))
        ++c.p;
}

bool parseJsonValue(JsonCursor &c);

bool
parseJsonString(JsonCursor &c)
{
    if (c.p >= c.end || *c.p != '"')
        return false;
    ++c.p;
    while (c.p < c.end && *c.p != '"') {
        if (*c.p == '\\') {
            ++c.p;
            if (c.p >= c.end)
                return false;
        }
        ++c.p;
    }
    if (c.p >= c.end)
        return false;
    ++c.p; // closing quote
    return true;
}

bool
parseJsonNumber(JsonCursor &c)
{
    const char *start = c.p;
    if (c.p < c.end && *c.p == '-')
        ++c.p;
    while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))
        ++c.p;
    if (c.p == start || (*start == '-' && c.p == start + 1))
        return false;
    if (c.p < c.end && *c.p == '.') {
        ++c.p;
        if (c.p >= c.end || !std::isdigit(static_cast<unsigned char>(*c.p)))
            return false;
        while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))
            ++c.p;
    }
    if (c.p < c.end && (*c.p == 'e' || *c.p == 'E')) {
        ++c.p;
        if (c.p < c.end && (*c.p == '+' || *c.p == '-'))
            ++c.p;
        if (c.p >= c.end || !std::isdigit(static_cast<unsigned char>(*c.p)))
            return false;
        while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))
            ++c.p;
    }
    return true;
}

bool
parseJsonObject(JsonCursor &c)
{
    ++c.p; // '{'
    skipWs(c);
    if (c.p < c.end && *c.p == '}') {
        ++c.p;
        return true;
    }
    while (true) {
        skipWs(c);
        if (!parseJsonString(c))
            return false;
        skipWs(c);
        if (c.p >= c.end || *c.p != ':')
            return false;
        ++c.p;
        if (!parseJsonValue(c))
            return false;
        skipWs(c);
        if (c.p >= c.end)
            return false;
        if (*c.p == ',') {
            ++c.p;
            continue;
        }
        if (*c.p == '}') {
            ++c.p;
            return true;
        }
        return false;
    }
}

bool
parseJsonArray(JsonCursor &c)
{
    ++c.p; // '['
    skipWs(c);
    if (c.p < c.end && *c.p == ']') {
        ++c.p;
        return true;
    }
    while (true) {
        if (!parseJsonValue(c))
            return false;
        skipWs(c);
        if (c.p >= c.end)
            return false;
        if (*c.p == ',') {
            ++c.p;
            continue;
        }
        if (*c.p == ']') {
            ++c.p;
            return true;
        }
        return false;
    }
}

bool
parseJsonValue(JsonCursor &c)
{
    skipWs(c);
    if (c.p >= c.end)
        return false;
    switch (*c.p) {
    case '{': return parseJsonObject(c);
    case '[': return parseJsonArray(c);
    case '"': return parseJsonString(c);
    case 't':
        if (c.end - c.p >= 4 && std::strncmp(c.p, "true", 4) == 0) {
            c.p += 4;
            return true;
        }
        return false;
    case 'f':
        if (c.end - c.p >= 5 && std::strncmp(c.p, "false", 5) == 0) {
            c.p += 5;
            return true;
        }
        return false;
    case 'n':
        if (c.end - c.p >= 4 && std::strncmp(c.p, "null", 4) == 0) {
            c.p += 4;
            return true;
        }
        return false;
    default: return parseJsonNumber(c);
    }
}

bool
isValidJson(const std::string &text)
{
    JsonCursor c{text.data(), text.data() + text.size()};
    if (!parseJsonValue(c))
        return false;
    skipWs(c);
    return c.p == c.end;
}

/** Occurrences of @p needle in @p haystack. */
size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

// --- Prometheus exposition rendering ----------------------------

TEST(PrometheusExposition, SanitizeMetricName)
{
    EXPECT_EQ(sanitizeMetricName("live.frame_wall_seconds"),
              "live_frame_wall_seconds");
    EXPECT_EQ(sanitizeMetricName("dse.pool.occupancy"),
              "dse_pool_occupancy");
    EXPECT_EQ(sanitizeMetricName("a:b_c9"), "a:b_c9");
    EXPECT_EQ(sanitizeMetricName("3d.vision"), "_3d_vision");
    EXPECT_EQ(sanitizeMetricName(""), "_");
    EXPECT_EQ(sanitizeMetricName("kernel/ms"), "kernel_ms");
}

TEST(PrometheusExposition, EscapeLabelValue)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeLabelValue("line1\nline2"), "line1\\nline2");
}

TEST(PrometheusExposition, CounterFamilyWithHelpAndType)
{
    metrics::Registry::instance()
        .counter("telemetry_test.exposition.counter")
        .add(3);
    std::ostringstream out;
    renderPrometheus(out);
    const std::string text = out.str();

    const std::string family =
        "telemetry_test_exposition_counter_total";
    EXPECT_NE(text.find("# HELP " + family + " "),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE " + family + " counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("\n" + family + " 3\n"), std::string::npos);
}

TEST(PrometheusExposition, CounterTotalSuffixNotDoubled)
{
    metrics::Registry::instance()
        .counter("telemetry_test.events_total")
        .add(1);
    std::ostringstream out;
    renderPrometheus(out);
    const std::string text = out.str();

    EXPECT_NE(
        text.find("# TYPE telemetry_test_events_total counter"),
        std::string::npos);
    EXPECT_EQ(text.find("telemetry_test_events_total_total"),
              std::string::npos);
}

TEST(PrometheusExposition, GaugeFamily)
{
    metrics::Registry::instance()
        .gauge("telemetry_test.exposition.gauge")
        .set(2.5);
    std::ostringstream out;
    renderPrometheus(out);
    const std::string text = out.str();

    EXPECT_NE(
        text.find(
            "# TYPE telemetry_test_exposition_gauge gauge\n"),
        std::string::npos);
    EXPECT_NE(text.find("\ntelemetry_test_exposition_gauge 2.5\n"),
              std::string::npos);
}

TEST(PrometheusExposition, HistogramBucketsCumulativeToCount)
{
    auto &hist = metrics::Registry::instance().histogram(
        "telemetry_test.exposition.latency");
    hist.record(1e-3);
    hist.record(2e-3);
    hist.record(0.5);
    std::ostringstream out;
    renderPrometheus(out);
    const std::string text = out.str();

    const std::string family =
        "telemetry_test_exposition_latency";
    EXPECT_NE(text.find("# TYPE " + family + " histogram\n"),
              std::string::npos);

    // Bucket counts must be cumulative and end with le="+Inf" equal
    // to _count.
    const auto buckets =
        linesStartingWith(text, family + "_bucket{le=\"");
    ASSERT_GE(buckets.size(), 2u);
    uint64_t previous = 0;
    for (const std::string &line : buckets) {
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos);
        const uint64_t cumulative =
            std::stoull(line.substr(space + 1));
        EXPECT_GE(cumulative, previous) << line;
        previous = cumulative;
    }
    EXPECT_NE(buckets.back().find("le=\"+Inf\""),
              std::string::npos);
    EXPECT_EQ(previous, 3u);
    EXPECT_NE(text.find("\n" + family + "_count 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("\n" + family + "_sum "),
              std::string::npos);
}

TEST(PrometheusExposition, EveryFamilyHasHelpBeforeType)
{
    std::ostringstream out;
    renderPrometheus(out);
    const auto lines = splitLines(out.str());
    ASSERT_FALSE(lines.empty());
    // The renderer emits families as (HELP, TYPE, samples...)
    // blocks; check every TYPE line is directly preceded by the
    // matching HELP line.
    for (size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].rfind("# TYPE ", 0) != 0)
            continue;
        ASSERT_GT(i, 0u);
        std::istringstream type_line(lines[i]);
        std::string hash, keyword, family;
        type_line >> hash >> keyword >> family;
        EXPECT_EQ(lines[i - 1].rfind("# HELP " + family + " ", 0),
                  0u)
            << "TYPE line not preceded by its HELP: " << lines[i];
    }
}

// --- Telemetry server endpoints ---------------------------------

TEST(TelemetryServer, MetricsHealthzRunzAndErrors)
{
    SloWatchdog::instance().reset();
    TelemetryServer server;
    ASSERT_TRUE(server.start(0));
    ASSERT_GT(server.port(), 0);

    const std::string metrics_response =
        httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics_response.find("HTTP/1.0 200 OK"),
              std::string::npos);
    EXPECT_NE(metrics_response.find("version=0.0.4"),
              std::string::npos);
    EXPECT_NE(metrics_response.find("# TYPE process_peak_rss_bytes"
                                    " gauge"),
              std::string::npos);

    const std::string healthz = httpGet(server.port(), "/healthz");
    EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("ok\n"), std::string::npos);

    const std::string unknown = httpGet(server.port(), "/nope");
    EXPECT_NE(unknown.find("HTTP/1.0 404"), std::string::npos);

    const std::string post = httpRequest(
        server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos);

    // /runz without an active run session.
    const std::string no_run = httpGet(server.port(), "/runz");
    EXPECT_NE(no_run.find("HTTP/1.0 404"), std::string::npos);
    EXPECT_NE(no_run.find("no active run session"),
              std::string::npos);

    // /runz with a live session streams the in-flight report.
    {
        const std::string json_path =
            tempPath("telemetry_test_runz") + ".json";
        metrics::RunSession session(json_path, "",
                                    "telemetry_test");
        metrics::FrameTelemetry frame;
        frame.wallSeconds = 0.01;
        session.addFrame(frame);
        const std::string runz = httpGet(server.port(), "/runz");
        EXPECT_NE(runz.find("HTTP/1.0 200 OK"), std::string::npos);
        EXPECT_NE(runz.find("application/json"),
                  std::string::npos);
        EXPECT_NE(runz.find("\"generator\": \"telemetry_test\""),
                  std::string::npos);
        session.finish();
        std::remove(json_path.c_str());
    }

    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), -1);
}

TEST(TelemetryServer, TracezServesFlightRecorderEventsAsJson)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);
    recorder.record(EventKind::Frame, 5, 0.033, 0.002, "tracked");
    recorder.record(EventKind::SloBreach, 6, 1.5, 1.0,
                    "say \"hi\"");

    TelemetryServer server;
    ASSERT_TRUE(server.start(0));
    const std::string response =
        httpGet(server.port(), "/tracez");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"),
              std::string::npos);

    const size_t body_start = response.find("\r\n\r\n");
    ASSERT_NE(body_start, std::string::npos);
    const std::string body = response.substr(body_start + 4);
    EXPECT_TRUE(isValidJson(body)) << body.substr(0, 400);
    EXPECT_NE(body.find("\"schema\": \"slambench-tracez\""),
              std::string::npos);
    EXPECT_NE(body.find("\"enabled\": true"), std::string::npos);
    EXPECT_NE(body.find("\"total_recorded\": 2"),
              std::string::npos);
    EXPECT_EQ(countOccurrences(body, "{\"ns\": "), 2u);
    EXPECT_NE(body.find("\"kind\": \"frame\""), std::string::npos);
    EXPECT_NE(body.find("\"frame\": 5"), std::string::npos);
    EXPECT_NE(body.find("\"detail\": \"tracked\""),
              std::string::npos);
    // Detail strings are JSON-escaped on the way out.
    EXPECT_NE(body.find("\"detail\": \"say \\\"hi\\\"\""),
              std::string::npos);

    // The 404 hint advertises the endpoint.
    EXPECT_NE(httpGet(server.port(), "/nope").find("/tracez"),
              std::string::npos);

    server.stop();
    recorder.setEnabled(false);
    recorder.reset();
}

TEST(TelemetryServer, TracezQueryServesRetainedSpanTrees)
{
    // Arm request tracing with flag-only retention and record one
    // SLO-breaching frame trace with a nested span.
    trace::RequestTraceOptions options;
    options.sampleRate = 0.0;
    trace::RequestTracer::instance().configure(options);
    auto &tracer = trace::RequestTracer::instance();

    const trace::TraceContext ctx = tracer.begin("t07", 42);
    {
        trace::ScopedTraceContext scope(ctx);
        trace::ScopedSpan track("track", trace::Category::Kernel);
        trace::ScopedSpan reduce("reduce", trace::Category::Kernel);
    }
    trace::RequestTraceFinish fin;
    fin.durationSeconds = 0.2;
    fin.sloBreach = true;
    tracer.finish(ctx, fin);

    // Another tenant's sampled-out trace, to exercise filtering.
    const trace::TraceContext other = tracer.begin("t01", 7);
    tracer.finish(other, trace::RequestTraceFinish{});

    TelemetryServer server;
    ASSERT_TRUE(server.start(0));

    // Lookup by trace id returns the complete span tree.
    const std::string by_id = httpGet(
        server.port(),
        "/tracez?trace_id=" + trace::formatTraceId(ctx.traceId));
    EXPECT_NE(by_id.find("HTTP/1.0 200 OK"), std::string::npos);
    const size_t body_start = by_id.find("\r\n\r\n");
    ASSERT_NE(body_start, std::string::npos);
    const std::string body = by_id.substr(body_start + 4);
    EXPECT_TRUE(isValidJson(body)) << body.substr(0, 400);
    EXPECT_NE(body.find("\"schema\": \"slambench-tracez-query\""),
              std::string::npos);
    EXPECT_NE(body.find("\"matches\": 1"), std::string::npos);
    EXPECT_NE(body.find("\"tenant\": \"t07\""), std::string::npos);
    EXPECT_NE(body.find("\"frame\": 42"), std::string::npos);
    EXPECT_NE(body.find("\"slo_breach\": true"), std::string::npos);
    EXPECT_NE(body.find("\"name\": \"frame\""), std::string::npos);
    EXPECT_NE(body.find("\"name\": \"track\""), std::string::npos);
    EXPECT_NE(body.find("\"name\": \"reduce\""), std::string::npos);
    EXPECT_NE(body.find("\"children\""), std::string::npos);

    // Unknown and malformed trace ids are a 404, not an empty 200.
    EXPECT_NE(httpGet(server.port(),
                      "/tracez?trace_id=00000000000000ff")
                  .find("HTTP/1.0 404"),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/tracez?trace_id=bogus")
                  .find("HTTP/1.0 404"),
              std::string::npos);

    // Tenant and min_ms filters: t07's breach matches, t01 has no
    // retained traces at all (sampled out at rate 0).
    EXPECT_NE(
        httpGet(server.port(), "/tracez?tenant=t07&min_ms=100")
            .find("\"matches\": 1"),
        std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/tracez?tenant=t01")
                  .find("\"matches\": 0"),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/tracez?min_ms=1000")
                  .find("\"matches\": 0"),
              std::string::npos);

    // The plain /tracez index lists the retained trace summary.
    const std::string index = httpGet(server.port(), "/tracez");
    EXPECT_NE(index.find("\"request_tracing\""), std::string::npos);
    EXPECT_NE(index.find(trace::formatTraceId(ctx.traceId)),
              std::string::npos);

    server.stop();
    trace::RequestTracer::instance().disarm();
    trace::RequestTracer::instance().clear();
}

TEST(PrometheusRender, HistogramCarriesTraceExemplar)
{
    auto &registry = metrics::Registry::instance();
    registry.resetValues();
    const std::string name = labeledMetricName(
        "serve.tenant.frame_seconds", "tenant", "t03");
    auto &histogram = registry.histogram(name);
    histogram.record(0.004);
    histogram.record(0.050);

    trace::RequestTraceOptions options;
    options.sampleRate = 0.0;
    trace::RequestTracer::instance().configure(options);
    auto &tracer = trace::RequestTracer::instance();
    const trace::TraceContext ctx = tracer.begin("t03", 3);
    trace::RequestTraceFinish fin;
    fin.durationSeconds = 0.050;
    fin.sloBreach = true;
    fin.exemplarMetric = name;
    tracer.finish(ctx, fin);

    std::ostringstream out;
    renderPrometheus(out);
    const std::string text = out.str();

    // Exactly one bucket line carries the exemplar, it references
    // the retained trace id, and it is a bucket that covers the
    // exemplar value (le >= 0.050).
    const std::string marker =
        " # {trace_id=\"" + trace::formatTraceId(ctx.traceId) +
        "\"} 0.05";
    EXPECT_EQ(countOccurrences(text, "# {trace_id="), 1u);
    bool found = false;
    for (const std::string &line : splitLines(text)) {
        if (line.find(marker) == std::string::npos)
            continue;
        found = true;
        EXPECT_NE(
            line.find("serve_tenant_frame_seconds_bucket"),
            std::string::npos)
            << line;
        EXPECT_NE(line.find("tenant=\"t03\""), std::string::npos);
        // The annotated bucket's le covers the exemplar value.
        const size_t le_pos = line.find("le=\"");
        ASSERT_NE(le_pos, std::string::npos);
        const std::string le_text = line.substr(le_pos + 4);
        if (le_text.rfind("+Inf", 0) != 0)
            EXPECT_GE(std::atof(le_text.c_str()), 0.050) << line;
    }
    EXPECT_TRUE(found) << text;

    // Disarmed and cleared: the exemplar disappears from the next
    // scrape instead of dangling on a dead trace id.
    trace::RequestTracer::instance().disarm();
    trace::RequestTracer::instance().clear();
    std::ostringstream after;
    renderPrometheus(after);
    EXPECT_EQ(after.str().find("# {trace_id="), std::string::npos);
    registry.resetValues();
}

TEST(TelemetryServer, HealthzFlipsOn503AfterInjectedBreach)
{
    TelemetryServer server;
    ASSERT_TRUE(server.start(0));

    SloThresholds thresholds;
    thresholds.maxAteMeters = 0.05;
    SloWatchdog::instance().configure(thresholds);
    EXPECT_NE(httpGet(server.port(), "/healthz")
                  .find("HTTP/1.0 200 OK"),
              std::string::npos);

    SloWatchdog::instance().onFrame(7, 0.25, 0);

    const std::string breached =
        httpGet(server.port(), "/healthz");
    EXPECT_NE(breached.find("HTTP/1.0 503 Service Unavailable"),
              std::string::npos);
    EXPECT_NE(breached.find("breach: ate_meters"),
              std::string::npos);

    server.stop();
    SloWatchdog::instance().reset();
}

TEST(TelemetryServer, StartRejectsOccupiedPortAndDoubleStart)
{
    TelemetryServer first;
    ASSERT_TRUE(first.start(0));
    EXPECT_FALSE(first.start(0)); // already running

    TelemetryServer second;
    ASSERT_TRUE(second.start(0));
    EXPECT_NE(first.port(), second.port());

    TelemetryServer third;
    EXPECT_FALSE(third.start(first.port())); // EADDRINUSE
    EXPECT_FALSE(third.running());
    EXPECT_EQ(third.port(), -1);

    second.stop();
    first.stop();
}

// --- SLO watchdog -----------------------------------------------

TEST(SloWatchdog, DisabledByDefaultAndAfterReset)
{
    auto &watchdog = SloWatchdog::instance();
    watchdog.reset();
    EXPECT_FALSE(watchdog.enabled());
    EXPECT_TRUE(watchdog.healthy());
    EXPECT_TRUE(watchdog.breaches().empty());
    EXPECT_EQ(watchdog.healthzText(), "ok\n");

    // A disarmed watchdog never breaches, whatever the inputs.
    watchdog.onFrame(0, 1e9, 1000);
    EXPECT_TRUE(watchdog.healthy());
}

TEST(SloWatchdog, AteBreachLatchesOnce)
{
    auto &watchdog = SloWatchdog::instance();
    SloThresholds thresholds;
    thresholds.maxAteMeters = 0.1;
    watchdog.configure(thresholds);

    const uint64_t breaches_before = metrics::Registry::instance()
                                         .counter("slo.breaches")
                                         .value();
    watchdog.onFrame(3, 0.05, 0);
    EXPECT_TRUE(watchdog.healthy());

    watchdog.onFrame(4, 0.5, 0);
    EXPECT_FALSE(watchdog.healthy());
    watchdog.onFrame(5, 0.6, 0); // same SLO: stays one breach

    const auto breaches = watchdog.breaches();
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_EQ(breaches[0].slo, "ate_meters");
    EXPECT_DOUBLE_EQ(breaches[0].value, 0.5);
    EXPECT_DOUBLE_EQ(breaches[0].limit, 0.1);
    EXPECT_EQ(breaches[0].frame, 4u);
    EXPECT_GT(breaches[0].ns, 0u);
    EXPECT_EQ(metrics::Registry::instance()
                      .counter("slo.breaches")
                      .value() -
                  breaches_before,
              1u);
    EXPECT_DOUBLE_EQ(
        metrics::Registry::instance().gauge("slo.healthy").value(),
        0.0);
    EXPECT_NE(watchdog.healthzText().find("breach: ate_meters"),
              std::string::npos);

    watchdog.reset();
    EXPECT_TRUE(watchdog.healthy());
    EXPECT_DOUBLE_EQ(
        metrics::Registry::instance().gauge("slo.healthy").value(),
        1.0);
}

TEST(SloWatchdog, ConsecutiveTrackingFailureBreach)
{
    auto &watchdog = SloWatchdog::instance();
    SloThresholds thresholds;
    thresholds.maxConsecutiveTrackingFailures = 2;
    watchdog.configure(thresholds);

    watchdog.onFrame(0, 0.0, 2);
    EXPECT_TRUE(watchdog.healthy());
    watchdog.onFrame(1, 0.0, 3);
    EXPECT_FALSE(watchdog.healthy());
    const auto breaches = watchdog.breaches();
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_EQ(breaches[0].slo, "consecutive_tracking_failures");
    watchdog.reset();
}

TEST(SloWatchdog, FrameP99BreachFromLiveHistogram)
{
    auto &hist = metrics::Registry::instance().histogram(
        "live.frame_wall_seconds");
    for (int i = 0; i < 100; ++i)
        hist.record(2.0);

    auto &watchdog = SloWatchdog::instance();
    SloThresholds thresholds;
    thresholds.frameP99Seconds = 0.1;
    watchdog.configure(thresholds);
    watchdog.onFrame(9, 0.0, 0);

    const auto breaches = watchdog.breaches();
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_EQ(breaches[0].slo, "frame_p99_seconds");
    EXPECT_GT(breaches[0].value, 0.1);
    watchdog.reset();
    hist.reset();
}

TEST(SloWatchdog, PoolQueueStallBreach)
{
    auto &watchdog = SloWatchdog::instance();
    SloThresholds thresholds;
    thresholds.poolQueueStallSeconds = 0.005;
    watchdog.configure(thresholds);

    ThreadPool pool(1);
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool release = false;
    ThreadPool::TaskGroup group;
    // Park the only worker so the queued task behind it cannot make
    // progress.
    pool.submit(group, [&] {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return release; });
    });
    while (pool.queueDepth() != 0)
        std::this_thread::yield(); // worker picked up the blocker
    pool.submit(group, [] {});
    EXPECT_EQ(pool.queueDepth(), 1u);

    watchdog.checkPools(0); // first observation starts the window
    EXPECT_TRUE(watchdog.healthy());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    watchdog.checkPools(1);
    EXPECT_FALSE(watchdog.healthy());
    const auto breaches = watchdog.breaches();
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_EQ(breaches[0].slo, "pool_queue_stall");
    EXPECT_GE(breaches[0].value, 0.005);

    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate_cv.notify_all();
    pool.wait(group);
    EXPECT_EQ(pool.queueDepth(), 0u);
    watchdog.reset();
}

// --- frameTick live metrics -------------------------------------

TEST(LiveTelemetry, FrameTickRecordsLiveMetricsAndFailureRuns)
{
    auto &registry = metrics::Registry::instance();
    SloWatchdog::instance().reset();
    FlightRecorder::instance().setEnabled(false);

    EXPECT_FALSE(liveTelemetry());
    setLiveTelemetry(true);
    EXPECT_TRUE(liveTelemetry());

    const uint64_t frames_before =
        registry.counter("live.frames").value();
    const uint64_t failures_before =
        registry.counter("live.tracking_failures").value();

    frameTick(0, 0.01, 0.002, true);
    frameTick(1, 0.02, 0.004, false);
    frameTick(2, 0.03, 0.006, false);
    EXPECT_EQ(registry.counter("live.frames").value() -
                  frames_before,
              3u);
    EXPECT_EQ(registry.counter("live.tracking_failures").value() -
                  failures_before,
              2u);
    EXPECT_DOUBLE_EQ(
        registry.gauge("live.consecutive_tracking_failures")
            .value(),
        2.0);
    EXPECT_DOUBLE_EQ(
        registry.gauge("live.last_frame_seconds").value(), 0.03);
    EXPECT_DOUBLE_EQ(registry.gauge("live.last_ate_m").value(),
                     0.006);

    // A tracked frame resets the consecutive-failure run.
    frameTick(3, 0.01, 0.001, true);
    EXPECT_DOUBLE_EQ(
        registry.gauge("live.consecutive_tracking_failures")
            .value(),
        0.0);

    setLiveTelemetry(false);
    EXPECT_FALSE(liveTelemetry());
}

TEST(LiveTelemetry, FrameTickFeedsFlightRecorder)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);
    setLiveTelemetry(true);

    frameTick(10, 0.015, 0.003, true);
    frameTick(11, 0.016, 0.004, false);

    const auto events = recorder.snapshot();
    // 2 Frame events + 1 TrackingFailure event.
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, EventKind::Frame);
    EXPECT_EQ(events[0].frame, 10u);
    EXPECT_STREQ(events[0].detail, "tracked");
    EXPECT_EQ(events[1].kind, EventKind::Frame);
    EXPECT_STREQ(events[1].detail, "lost");
    EXPECT_EQ(events[2].kind, EventKind::TrackingFailure);
    EXPECT_EQ(events[2].frame, 11u);
    EXPECT_DOUBLE_EQ(events[2].a, 1.0); // run length

    setLiveTelemetry(false);
    recorder.setEnabled(false);
    recorder.reset();
}

// --- Flight recorder ring ---------------------------------------

TEST(FlightRecorder, DisabledRecordIsANoOp)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(false);
    recorder.record(EventKind::Note, 1, 2.0, 3.0, "ignored");
    EXPECT_EQ(recorder.totalRecorded(), 0u);
    EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorder, RoundTripsEventsOldestFirst)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);
    recorder.record(EventKind::Frame, 0, 0.01, 0.001, "tracked");
    recorder.record(EventKind::DseEvaluation, 1, 0.5, 12.5,
                    "random_search");
    recorder.record(EventKind::SloBreach, 2, 1.5, 1.0,
                    "ate_meters");

    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(recorder.totalRecorded(), 3u);
    EXPECT_EQ(events[0].kind, EventKind::Frame);
    EXPECT_EQ(events[1].kind, EventKind::DseEvaluation);
    EXPECT_DOUBLE_EQ(events[1].a, 0.5);
    EXPECT_DOUBLE_EQ(events[1].b, 12.5);
    EXPECT_STREQ(events[1].detail, "random_search");
    EXPECT_EQ(events[2].frame, 2u);
    EXPECT_GT(events[0].ns, 0u);
    EXPECT_LE(events[0].ns, events[2].ns);

    recorder.setEnabled(false);
    recorder.reset();
}

TEST(FlightRecorder, TruncatesOverlongDetail)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);
    const std::string detail(100, 'x');
    recorder.record(EventKind::Note, 0, 0.0, 0.0, detail.c_str());

    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(std::strlen(events[0].detail),
              sizeof(events[0].detail) - 1);

    recorder.setEnabled(false);
    recorder.reset();
}

TEST(FlightRecorder, WrapKeepsTheMostRecentCapacityEvents)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);
    const uint64_t total = FlightRecorder::kCapacity + 100;
    for (uint64_t i = 0; i < total; ++i)
        recorder.record(EventKind::Note, i,
                        static_cast<double>(i) * 0.5, 0.0, "wrap");

    EXPECT_EQ(recorder.totalRecorded(), total);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
    EXPECT_EQ(events.front().frame, 100u); // oldest survivor
    EXPECT_EQ(events.back().frame, total - 1);
    for (size_t i = 1; i < events.size(); ++i)
        ASSERT_EQ(events[i].frame, events[i - 1].frame + 1);

    recorder.setEnabled(false);
    recorder.reset();
}

TEST(FlightRecorder, ConcurrentWritersAndReaderStayConsistent)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);

    constexpr int kWriters = 4;
    constexpr uint64_t kPerWriter = 2000;
    std::atomic<bool> stop_reader{false};

    // Concurrent reader: every event a snapshot returns must be
    // internally consistent (the seqlock discards torn slots), here
    // checked via the writer-side invariant b == frame * 2.
    std::thread reader([&] {
        while (!stop_reader.load(std::memory_order_relaxed)) {
            for (const Event &e : recorder.snapshot()) {
                ASSERT_EQ(e.kind, EventKind::Note);
                ASSERT_DOUBLE_EQ(
                    e.b, static_cast<double>(e.frame) * 2.0);
            }
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                const uint64_t frame =
                    static_cast<uint64_t>(w) * kPerWriter + i;
                recorder.record(EventKind::Note, frame,
                                static_cast<double>(frame),
                                static_cast<double>(frame) * 2.0,
                                "concurrent");
            }
        });
    }
    for (std::thread &t : writers)
        t.join();
    stop_reader.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(recorder.totalRecorded(), kWriters * kPerWriter);
    const auto events = recorder.snapshot();
    EXPECT_LE(events.size(), FlightRecorder::kCapacity);
    EXPECT_GE(events.size(), FlightRecorder::kCapacity / 2);
    for (const Event &e : events)
        EXPECT_DOUBLE_EQ(e.b, static_cast<double>(e.frame) * 2.0);

    recorder.setEnabled(false);
    recorder.reset();
}

// --- Crash dumps ------------------------------------------------
//
// Suite name intentionally distinct ("CrashDump") so the TSan smoke
// filter can exclude the fork-based tests, which are not
// meaningful under TSan's post-fork runtime.

TEST(CrashDump, WriteCrashDumpProducesValidBoundedJson)
{
    auto &recorder = FlightRecorder::instance();
    recorder.reset();
    recorder.setEnabled(true);
    // More events than the ring holds: the dump must stay bounded.
    const uint64_t total = FlightRecorder::kCapacity + 50;
    for (uint64_t i = 0; i < total; ++i)
        recorder.record(EventKind::Note, i, 1.5, -2.25,
                        "dump check");
    metrics::Registry::instance()
        .counter("telemetry_test.crash.counter")
        .add(7);
    metrics::Registry::instance()
        .gauge("telemetry_test.crash.gauge")
        .set(-1.25);
    metrics::Registry::instance()
        .histogram("telemetry_test.crash.latency")
        .record(0.125);

    const std::string path =
        tempPath("telemetry_test_dump") + ".json";
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    writeCrashDump(fd, 0);
    ::close(fd);

    const std::string dump = readFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(dump.empty());
    EXPECT_TRUE(isValidJson(dump)) << dump.substr(0, 400);
    EXPECT_NE(dump.find("\"schema\": \"slambench-crash-dump\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"schema_version\": 1"),
              std::string::npos);
    EXPECT_NE(dump.find("\"signal\": 0"), std::string::npos);
    EXPECT_NE(dump.find("\"events_recorded\": " +
                        std::to_string(total)),
              std::string::npos);
    // One "{"ns": ..." object per dumped event; the ring bounds it.
    EXPECT_LE(countOccurrences(dump, "{\"ns\": "),
              FlightRecorder::kCapacity);
    EXPECT_GE(countOccurrences(dump, "{\"ns\": "),
              FlightRecorder::kCapacity / 2);
    // Registry snapshot made it in through the crash index.
    EXPECT_NE(dump.find("\"telemetry_test.crash.counter\": 7"),
              std::string::npos);
    EXPECT_NE(dump.find("\"telemetry_test.crash.gauge\": -1.25"),
              std::string::npos);
    EXPECT_NE(dump.find("\"telemetry_test.crash.latency\": "
                        "{\"count\": 1"),
              std::string::npos);

    recorder.setEnabled(false);
    recorder.reset();
}

TEST(CrashDump, FatalSignalInForkedChildWritesDumpFile)
{
    const std::string path =
        tempPath("telemetry_test_sigsegv") + ".json";
    std::remove(path.c_str());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm the handler, record context, then die the way
        // a real crash would. Only the dump file may escape.
        installCrashDump(path, "telemetry_test_child");
        auto &recorder = FlightRecorder::instance();
        recorder.reset();
        recorder.record(EventKind::Frame, 41, 0.033, 0.002,
                        "tracked");
        recorder.record(EventKind::Note, 42, 0.0, 0.0,
                        "about to fault");
        ::raise(SIGSEGV);
        ::_exit(97); // unreachable: the handler re-raises
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    const std::string dump = readFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(dump.empty()) << "handler wrote no dump";
    EXPECT_TRUE(isValidJson(dump)) << dump.substr(0, 400);
    EXPECT_NE(dump.find("\"schema\": \"slambench-crash-dump\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"signal\": " +
                        std::to_string(SIGSEGV)),
              std::string::npos);
    EXPECT_NE(dump.find("\"generator\": "
                        "\"telemetry_test_child\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"events_recorded\": 2"),
              std::string::npos);
    EXPECT_EQ(countOccurrences(dump, "{\"ns\": "), 2u);
    EXPECT_NE(dump.find("\"detail\": \"about to fault\""),
              std::string::npos);
}

// --- Streaming frames CSV ---------------------------------------

TEST(RunSessionStreaming, CsvFlushesPerWindowAndCountsRows)
{
    const std::string csv_path =
        tempPath("telemetry_test_frames") + ".csv";
    auto &flushed = metrics::Registry::instance().counter(
        "metrics.frames.flushed");
    const uint64_t before = flushed.value();
    constexpr size_t kWindow =
        metrics::RunSession::kCsvFlushInterval;

    {
        metrics::RunSession session("", csv_path,
                                    "telemetry_test");
        ASSERT_TRUE(session.active());
        metrics::FrameTelemetry frame;
        frame.wallSeconds = 0.01;
        for (size_t i = 0; i + 1 < kWindow; ++i) {
            frame.frame = i;
            session.addFrame(frame);
        }
        // One short of a window: nothing durably flushed yet.
        EXPECT_EQ(flushed.value(), before);
        frame.frame = kWindow - 1;
        session.addFrame(frame);
        EXPECT_EQ(flushed.value() - before, kWindow);

        // A partial second window flushes only on finish().
        for (size_t i = 0; i < 5; ++i) {
            frame.frame = kWindow + i;
            session.addFrame(frame);
        }
        EXPECT_EQ(flushed.value() - before, kWindow);
        session.finish();
        EXPECT_EQ(flushed.value() - before, kWindow + 5);
    }

    const auto lines = splitLines(readFile(csv_path));
    std::remove(csv_path.c_str());
    ASSERT_EQ(lines.size(), kWindow + 5 + 1); // header + rows
    EXPECT_EQ(lines[0].rfind("label,frame,wall_ms", 0), 0u);
}

TEST(RunSessionStreaming, WriteCurrentJsonTracksActiveSession)
{
    std::ostringstream out;
    EXPECT_FALSE(metrics::RunSession::writeCurrentJson(out));

    const std::string json_path =
        tempPath("telemetry_test_current") + ".json";
    {
        metrics::RunSession session(json_path, "",
                                    "telemetry_test");
        metrics::FrameTelemetry frame;
        frame.wallSeconds = 0.02;
        frame.tracked = true;
        session.addFrame(frame);

        std::ostringstream live;
        ASSERT_TRUE(metrics::RunSession::writeCurrentJson(live));
        EXPECT_NE(
            live.str().find("\"generator\": \"telemetry_test\""),
            std::string::npos);
        EXPECT_TRUE(isValidJson(live.str()));

        session.finish(); // unregisters before writing files
        std::ostringstream after;
        EXPECT_FALSE(metrics::RunSession::writeCurrentJson(after));
    }
    std::remove(json_path.c_str());
}

// --- Socket-path hardening (serve-binary prerequisites) ---------
//
// These drive serveConnection() directly over an AF_UNIX socketpair,
// which makes the failure modes deterministic: a write to a closed
// socketpair peer raises SIGPIPE immediately (no TCP buffering to
// swallow it), a partial write really stays partial, and the far end
// is a plain fd the test controls byte by byte.

/** One end of a socketpair; the other is handed to the server. */
struct ServerPipe
{
    int clientFd = -1;
    int serverFd = -1;

    ServerPipe()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        clientFd = fds[0];
        serverFd = fds[1];
    }

    ~ServerPipe()
    {
        if (clientFd >= 0)
            ::close(clientFd);
        if (serverFd >= 0)
            ::close(serverFd);
    }

    /** Drain the server's response after closing the server fd. */
    std::string
    response()
    {
        ::close(serverFd);
        serverFd = -1;
        std::string out;
        char buf[4096];
        ssize_t got;
        while ((got = ::read(clientFd, buf, sizeof(buf))) > 0)
            out.append(buf, static_cast<size_t>(got));
        return out;
    }
};

TEST(TelemetryServer, MidScrapeDisconnectDoesNotRaiseSigpipe)
{
    // The regression is only provable while SIGPIPE keeps its
    // default (process-killing) disposition: with the pre-fix
    // ::write response path, this test dies instead of failing.
    struct sigaction disposition;
    ASSERT_EQ(::sigaction(SIGPIPE, nullptr, &disposition), 0);
    ASSERT_EQ(disposition.sa_handler, SIG_DFL)
        << "SIGPIPE must stay at default for this regression test";

    ServerPipe pipe;
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::write(pipe.clientFd, request, sizeof(request) - 1),
              static_cast<ssize_t>(sizeof(request) - 1));
    // Client disconnects before the response: every byte the server
    // now sends goes to a closed peer.
    ::close(pipe.clientFd);
    pipe.clientFd = -1;

    serveConnection(pipe.serverFd);

    // Still alive; the socket path must also still work end to end.
    ServerPipe second;
    const char request2[] = "GET /healthz HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::write(second.clientFd, request2,
                      sizeof(request2) - 1),
              static_cast<ssize_t>(sizeof(request2) - 1));
    serveConnection(second.serverFd);
    EXPECT_NE(second.response().find("HTTP/1.0"),
              std::string::npos);
}

TEST(TelemetryServer, EndToEndDisconnectMidScrapeServerSurvives)
{
    TelemetryServer server;
    ASSERT_TRUE(server.start(0));

    // Several abrupt disconnects right after sending the request —
    // the server is likely mid-/metrics-response for at least one.
    for (int i = 0; i < 5; ++i) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<uint16_t>(server.port()));
        ASSERT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
        ASSERT_EQ(::write(fd, request, sizeof(request) - 1),
                  static_cast<ssize_t>(sizeof(request) - 1));
        // RST the connection (SO_LINGER 0) instead of a graceful
        // FIN, so the server's sends fail hard.
        linger hard_close;
        hard_close.l_onoff = 1;
        hard_close.l_linger = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                     sizeof(hard_close));
        ::close(fd);
    }

    // The serving thread survived: a full scrape still answers 200.
    const std::string response = httpGet(server.port(), "/metrics");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    server.stop();
}

TEST(TelemetryServer, SegmentedRequestLineParsesLikeOneShot)
{
    ServerPipe pipe;
    // A slow client: the request line arrives in four packets with
    // gaps. The pre-fix single-read server saw only "GET /hea" and
    // answered 404.
    std::thread writer([fd = pipe.clientFd] {
        const char *pieces[] = {"GET ", "/hea", "lthz HTT",
                                "P/1.0\r\n\r\n"};
        for (const char *piece : pieces) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            ASSERT_EQ(::write(fd, piece, std::strlen(piece)),
                      static_cast<ssize_t>(std::strlen(piece)));
        }
    });
    serveConnection(pipe.serverFd);
    writer.join();
    const std::string response = pipe.response();
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
        << response;
    EXPECT_NE(response.find("ok\n"), std::string::npos);
}

TEST(TelemetryServer, OversizeRequestLineGets400)
{
    ServerPipe pipe;
    const std::string flood(5000, 'A'); // no CRLF anywhere
    ASSERT_EQ(::write(pipe.clientFd, flood.data(), flood.size()),
              static_cast<ssize_t>(flood.size()));
    serveConnection(pipe.serverFd);
    const std::string response = pipe.response();
    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos)
        << response;
}

TEST(TelemetryServer, StalledClientHitsReadDeadlineNotHang)
{
    ServerPipe pipe;
    // Partial line, then silence — without the deadline this would
    // wedge the accept loop forever.
    const char partial[] = "GET /metr";
    ASSERT_EQ(::write(pipe.clientFd, partial, sizeof(partial) - 1),
              static_cast<ssize_t>(sizeof(partial) - 1));
    const auto start = std::chrono::steady_clock::now();
    serveConnection(pipe.serverFd, /*read_deadline_ms=*/100);
    const double waited =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(waited, 2.0);
    const std::string response = pipe.response();
    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos);
}

std::atomic<int> g_usr1_delivered{0};

void
countUsr1(int)
{
    g_usr1_delivered.fetch_add(1, std::memory_order_relaxed);
}

TEST(TelemetryServer, EintrDuringRequestIsRetriedNotDropped)
{
    // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART, so every
    // delivery interrupts poll/read with EINTR. The pre-fix server
    // treated that as a dead client and dropped the connection.
    struct sigaction action;
    struct sigaction previous;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = countUsr1;
    ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);
    g_usr1_delivered.store(0, std::memory_order_relaxed);

    ServerPipe pipe;
    std::thread server_thread([fd = pipe.serverFd] {
        serveConnection(fd, /*read_deadline_ms=*/5000);
    });

    // Pound the serving thread with signals between the request
    // segments, so EINTR hits both the poll wait and the reads.
    const char *pieces[] = {"GET /healthz", " HTTP/1.0", "\r\n\r\n"};
    for (const char *piece : pieces) {
        for (int i = 0; i < 5; ++i) {
            ::pthread_kill(server_thread.native_handle(), SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        ASSERT_EQ(::write(pipe.clientFd, piece,
                          std::strlen(piece)),
                  static_cast<ssize_t>(std::strlen(piece)));
    }
    server_thread.join();
    ::sigaction(SIGUSR1, &previous, nullptr);

    EXPECT_GT(g_usr1_delivered.load(std::memory_order_relaxed), 0)
        << "test harness failed to deliver any SIGUSR1";
    const std::string response = pipe.response();
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
        << response;
}

// --- Labeled exposition (per-tenant /metrics series) ------------

TEST(PrometheusExposition, LabeledNamesRenderPerTenantSeries)
{
    auto &registry = metrics::Registry::instance();
    registry
        .counter(labeledMetricName("servetest.frames", "tenant",
                                   "t00"))
        .add(3);
    registry
        .counter(labeledMetricName("servetest.frames", "tenant",
                                   "t01"))
        .add(5);
    registry
        .gauge(labeledMetricName("servetest.depth", "tenant", "t00"))
        .set(2.5);
    registry
        .histogram(
            labeledMetricName("servetest.lat", "tenant", "t00"))
        .record(0.01);

    std::ostringstream out;
    renderPrometheus(out);
    const std::string text = out.str();

    // One header pair for the whole labeled counter family...
    EXPECT_EQ(1, static_cast<int>(
                     linesStartingWith(
                         text, "# HELP servetest_frames_total")
                         .size()));
    EXPECT_EQ(1,
              static_cast<int>(
                  linesStartingWith(
                      text,
                      "# TYPE servetest_frames_total counter")
                      .size()));
    // ...and one labeled sample per tenant.
    EXPECT_NE(
        text.find("servetest_frames_total{tenant=\"t00\"} 3"),
        std::string::npos);
    EXPECT_NE(
        text.find("servetest_frames_total{tenant=\"t01\"} 5"),
        std::string::npos);
    EXPECT_NE(text.find("servetest_depth{tenant=\"t00\"} 2.5"),
              std::string::npos);
    // Histogram series put the tenant label before le, and label
    // _sum/_count too.
    EXPECT_NE(text.find("servetest_lat_bucket{tenant=\"t00\",le=\""),
              std::string::npos);
    EXPECT_NE(text.find("servetest_lat_sum{tenant=\"t00\"}"),
              std::string::npos);
    EXPECT_NE(text.find("servetest_lat_count{tenant=\"t00\"} 1"),
              std::string::npos);
}

} // namespace
