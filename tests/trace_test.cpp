/**
 * @file
 * Tests of the tracing subsystem: span nesting, zero-cost disabled
 * path, Chrome JSON well-formedness (every B paired with an E),
 * worker-chunk attribution, and agreement between the per-frame CSV
 * aggregate and the WorkCounts host-time accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dataset/generator.hpp"
#include "kfusion/pipeline.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using namespace slambench;
using namespace slambench::support::trace;

/** Every test starts and ends with a disabled, empty tracer. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }

    void
    TearDown() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }
};

/** @return number of occurrences of @p needle in @p haystack. */
size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST_F(TraceTest, SpansNestAndPair)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    {
        ScopedSpan outer("outer");
        EXPECT_STREQ(currentSpanName(), "outer");
        {
            ScopedSpan inner("inner", Category::Kernel);
            EXPECT_STREQ(currentSpanName(), "inner");
        }
        EXPECT_STREQ(currentSpanName(), "outer");
    }
    EXPECT_EQ(currentSpanName(), nullptr);
    tracer.setEnabled(false);

    // This thread's buffer holds B(outer) B(inner) E(inner) E(outer).
    bool found = false;
    for (const auto &events : tracer.eventsByThread()) {
        if (events.empty())
            continue;
        ASSERT_EQ(events.size(), 4u);
        EXPECT_STREQ(events[0].name, "outer");
        EXPECT_EQ(events[0].phase, 'B');
        EXPECT_STREQ(events[1].name, "inner");
        EXPECT_EQ(events[1].phase, 'B');
        EXPECT_STREQ(events[2].name, "inner");
        EXPECT_EQ(events[2].phase, 'E');
        EXPECT_STREQ(events[3].name, "outer");
        EXPECT_EQ(events[3].phase, 'E');
        EXPECT_LE(events[0].tsNs, events[1].tsNs);
        EXPECT_LE(events[1].tsNs, events[2].tsNs);
        EXPECT_LE(events[2].tsNs, events[3].tsNs);
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST_F(TraceTest, DisabledEmitsNothing)
{
    Tracer &tracer = Tracer::instance();
    ASSERT_FALSE(tracer.enabled());
    {
        ScopedSpan span("should_not_record", Category::Kernel);
        TRACE_SCOPE("macro_should_not_record");
        TRACE_COUNTER("counter", 42.0);
        TRACE_FRAME(7);
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.threadCount(), 0u);
    // The frame stamp is untouched by the disabled TRACE_FRAME.
    EXPECT_EQ(tracer.frame(), 0u);
}

TEST_F(TraceTest, FrameStampsAndCounters)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    TRACE_FRAME(3);
    {
        ScopedSpan span("work", Category::Kernel);
        TRACE_COUNTER("items", 11.0);
    }
    tracer.setEnabled(false);

    const auto totals = tracer.frameKernelTotals();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].frame, 3u);
    EXPECT_EQ(totals[0].name, "work");
    EXPECT_EQ(totals[0].spans, 1u);
    EXPECT_GT(totals[0].seconds, 0.0);

    bool counter_seen = false;
    for (const auto &events : tracer.eventsByThread())
        for (const Event &event : events)
            if (event.phase == 'C') {
                EXPECT_STREQ(event.name, "items");
                EXPECT_DOUBLE_EQ(event.value, 11.0);
                EXPECT_EQ(event.frame, 3u);
                counter_seen = true;
            }
    EXPECT_TRUE(counter_seen);
}

TEST_F(TraceTest, WorkerChunksAttributeToDispatchingSpan)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    support::ThreadPool pool(2);
    {
        ScopedSpan span("dispatch_target", Category::Kernel);
        pool.parallelFor(0, 64, [](size_t) {});
    }
    tracer.setEnabled(false);

    size_t worker_chunks = 0;
    for (const auto &events : tracer.eventsByThread())
        for (const Event &event : events)
            if (event.cat == Category::Worker && event.phase == 'B') {
                EXPECT_STREQ(event.name, "dispatch_target");
                ++worker_chunks;
            }
    EXPECT_GE(worker_chunks, 1u);

    // Worker spans are excluded from the kernel aggregate, so the
    // dispatching span is counted exactly once.
    const auto totals = tracer.kernelTotals();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].name, "dispatch_target");
    EXPECT_EQ(totals[0].spans, 1u);
}

TEST_F(TraceTest, ChromeJsonPairsEveryBeginWithAnEnd)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    support::ThreadPool pool(2);
    TRACE_FRAME(0);
    for (int i = 0; i < 3; ++i) {
        ScopedSpan outer("outer", Category::Phase);
        ScopedSpan inner("inner", Category::Kernel);
        pool.parallelFor(0, 32, [](size_t) {});
        TRACE_COUNTER("samples", static_cast<double>(i));
    }
    tracer.setEnabled(false);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    const std::string json = os.str();

    // Loadable object shape with one event array.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(countOccurrences(json, "\"traceEvents\""), 1u);
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));
    EXPECT_EQ(countOccurrences(json, "["),
              countOccurrences(json, "]"));

    // Every begin has an end; counters and markers are present.
    EXPECT_GT(countOccurrences(json, "\"ph\":\"B\""), 0u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"C\""), 3u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), 1u);

    // File variant writes the same document.
    const std::string path =
        ::testing::TempDir() + "trace_test_out.json";
    ASSERT_TRUE(tracer.writeChromeJson(path));
    std::ifstream in(path);
    std::stringstream file_contents;
    file_contents << in.rdbuf();
    EXPECT_EQ(file_contents.str(), json);
    std::remove(path.c_str());
}

TEST_F(TraceTest, CsvAggregateMatchesWorkCounts)
{
    dataset::SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 4;
    spec.renderRgb = false;
    spec.seed = 42;
    const dataset::Sequence sequence = generateSequence(spec);

    kfusion::KFusionConfig config;
    config.volumeResolution = 32;
    config.volumeSize = 5.0f;
    config.pyramidIterations = {3, 2, 2};

    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    kfusion::KFusion pipeline(config, sequence.intrinsics);
    pipeline.setPose(sequence.groundTruth.pose(0));
    for (const auto &frame : sequence.frames)
        pipeline.processFrame(frame.depthMm);
    tracer.setEnabled(false);

    const kfusion::WorkCounts &work = pipeline.totalWork();

    // Every kernel with host time has a span total within 5% (plus
    // a small absolute floor for sub-millisecond kernels: the span
    // brackets the timer, so it reads slightly longer).
    const auto totals = tracer.kernelTotals();
    double traced_total = 0.0;
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        const double host = work.hostSecondsFor(id);
        if (host <= 0.0)
            continue;
        double traced = 0.0;
        for (const auto &t : totals)
            if (t.name == kfusion::kernelName(id))
                traced = t.seconds;
        EXPECT_GT(traced, 0.0) << kfusion::kernelName(id);
        EXPECT_LE(std::abs(traced - host),
                  std::max(0.05 * host, 5e-4))
            << kfusion::kernelName(id);
        traced_total += traced;
    }
    EXPECT_LE(std::abs(traced_total - work.totalHostSeconds()),
              std::max(0.05 * work.totalHostSeconds(), 2e-3));

    // The CSV aggregate covers every processed frame and sums to
    // the same per-kernel totals.
    const auto per_frame = tracer.frameKernelTotals();
    uint64_t max_frame = 0;
    double per_frame_total = 0.0;
    for (const auto &t : per_frame) {
        max_frame = std::max(max_frame, t.frame);
        per_frame_total += t.seconds;
    }
    EXPECT_EQ(max_frame, spec.numFrames - 1);
    EXPECT_NEAR(per_frame_total, traced_total, 1e-9);

    std::ostringstream os;
    tracer.writeFrameCsv(os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("frame,kernel,spans,host_ms\n", 0), 0u);
    EXPECT_GT(countOccurrences(csv, "integrate"), 0u);
}

TEST_F(TraceTest, SessionExportsAndDisarms)
{
    const std::string json_path =
        ::testing::TempDir() + "trace_session.json";
    const std::string csv_path =
        ::testing::TempDir() + "trace_session.csv";
    {
        Session session(json_path, csv_path);
        EXPECT_TRUE(session.active());
        EXPECT_TRUE(Tracer::instance().enabled());
        TRACE_SCOPE("session_span");
    }
    EXPECT_FALSE(Tracer::instance().enabled());

    std::ifstream json_in(json_path);
    ASSERT_TRUE(json_in.good());
    std::stringstream json_contents;
    json_contents << json_in.rdbuf();
    EXPECT_NE(json_contents.str().find("session_span"),
              std::string::npos);

    std::ifstream csv_in(csv_path);
    ASSERT_TRUE(csv_in.good());
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());

    // A pathless session stays inert.
    Session inert("", "");
    EXPECT_FALSE(inert.active());
    EXPECT_FALSE(Tracer::instance().enabled());
}

} // namespace
