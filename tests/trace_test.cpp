/**
 * @file
 * Tests of the tracing subsystem: span nesting, zero-cost disabled
 * path, Chrome JSON well-formedness (every B paired with an E),
 * worker-chunk attribution, and agreement between the per-frame CSV
 * aggregate and the WorkCounts host-time accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dataset/generator.hpp"
#include "kfusion/pipeline.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

using namespace slambench;
using namespace slambench::support::trace;

/** Every test starts and ends with a disabled, empty tracer. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }

    void
    TearDown() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }
};

/** @return number of occurrences of @p needle in @p haystack. */
size_t
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST_F(TraceTest, SpansNestAndPair)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    {
        ScopedSpan outer("outer");
        EXPECT_STREQ(currentSpanName(), "outer");
        {
            ScopedSpan inner("inner", Category::Kernel);
            EXPECT_STREQ(currentSpanName(), "inner");
        }
        EXPECT_STREQ(currentSpanName(), "outer");
    }
    EXPECT_EQ(currentSpanName(), nullptr);
    tracer.setEnabled(false);

    // This thread's buffer holds B(outer) B(inner) E(inner) E(outer).
    bool found = false;
    for (const auto &events : tracer.eventsByThread()) {
        if (events.empty())
            continue;
        ASSERT_EQ(events.size(), 4u);
        EXPECT_STREQ(events[0].name, "outer");
        EXPECT_EQ(events[0].phase, 'B');
        EXPECT_STREQ(events[1].name, "inner");
        EXPECT_EQ(events[1].phase, 'B');
        EXPECT_STREQ(events[2].name, "inner");
        EXPECT_EQ(events[2].phase, 'E');
        EXPECT_STREQ(events[3].name, "outer");
        EXPECT_EQ(events[3].phase, 'E');
        EXPECT_LE(events[0].tsNs, events[1].tsNs);
        EXPECT_LE(events[1].tsNs, events[2].tsNs);
        EXPECT_LE(events[2].tsNs, events[3].tsNs);
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST_F(TraceTest, DisabledEmitsNothing)
{
    Tracer &tracer = Tracer::instance();
    ASSERT_FALSE(tracer.enabled());
    {
        ScopedSpan span("should_not_record", Category::Kernel);
        TRACE_SCOPE("macro_should_not_record");
        TRACE_COUNTER("counter", 42.0);
        TRACE_FRAME(7);
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.threadCount(), 0u);
    // The frame stamp is untouched by the disabled TRACE_FRAME.
    EXPECT_EQ(tracer.frame(), 0u);
}

TEST_F(TraceTest, FrameStampsAndCounters)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    TRACE_FRAME(3);
    {
        ScopedSpan span("work", Category::Kernel);
        TRACE_COUNTER("items", 11.0);
    }
    tracer.setEnabled(false);

    const auto totals = tracer.frameKernelTotals();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].frame, 3u);
    EXPECT_EQ(totals[0].name, "work");
    EXPECT_EQ(totals[0].spans, 1u);
    EXPECT_GT(totals[0].seconds, 0.0);

    bool counter_seen = false;
    for (const auto &events : tracer.eventsByThread())
        for (const Event &event : events)
            if (event.phase == 'C') {
                EXPECT_STREQ(event.name, "items");
                EXPECT_DOUBLE_EQ(event.value, 11.0);
                EXPECT_EQ(event.frame, 3u);
                counter_seen = true;
            }
    EXPECT_TRUE(counter_seen);
}

TEST_F(TraceTest, WorkerChunksAttributeToDispatchingSpan)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    support::ThreadPool pool(2);
    {
        ScopedSpan span("dispatch_target", Category::Kernel);
        pool.parallelFor(0, 64, [](size_t) {});
    }
    tracer.setEnabled(false);

    size_t worker_chunks = 0;
    for (const auto &events : tracer.eventsByThread())
        for (const Event &event : events)
            if (event.cat == Category::Worker && event.phase == 'B') {
                EXPECT_STREQ(event.name, "dispatch_target");
                ++worker_chunks;
            }
    EXPECT_GE(worker_chunks, 1u);

    // Worker spans are excluded from the kernel aggregate, so the
    // dispatching span is counted exactly once.
    const auto totals = tracer.kernelTotals();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].name, "dispatch_target");
    EXPECT_EQ(totals[0].spans, 1u);
}

TEST_F(TraceTest, ChromeJsonPairsEveryBeginWithAnEnd)
{
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    support::ThreadPool pool(2);
    TRACE_FRAME(0);
    for (int i = 0; i < 3; ++i) {
        ScopedSpan outer("outer", Category::Phase);
        ScopedSpan inner("inner", Category::Kernel);
        pool.parallelFor(0, 32, [](size_t) {});
        TRACE_COUNTER("samples", static_cast<double>(i));
    }
    tracer.setEnabled(false);

    std::ostringstream os;
    tracer.writeChromeJson(os);
    const std::string json = os.str();

    // Loadable object shape with one event array.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(countOccurrences(json, "\"traceEvents\""), 1u);
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));
    EXPECT_EQ(countOccurrences(json, "["),
              countOccurrences(json, "]"));

    // Every begin has an end; counters and markers are present.
    EXPECT_GT(countOccurrences(json, "\"ph\":\"B\""), 0u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"C\""), 3u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), 1u);

    // File variant writes the same document.
    const std::string path =
        ::testing::TempDir() + "trace_test_out.json";
    ASSERT_TRUE(tracer.writeChromeJson(path));
    std::ifstream in(path);
    std::stringstream file_contents;
    file_contents << in.rdbuf();
    EXPECT_EQ(file_contents.str(), json);
    std::remove(path.c_str());
}

TEST_F(TraceTest, CsvAggregateMatchesWorkCounts)
{
    dataset::SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 4;
    spec.renderRgb = false;
    spec.seed = 42;
    const dataset::Sequence sequence = generateSequence(spec);

    kfusion::KFusionConfig config;
    config.volumeResolution = 32;
    config.volumeSize = 5.0f;
    config.pyramidIterations = {3, 2, 2};

    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(true);
    kfusion::KFusion pipeline(config, sequence.intrinsics);
    pipeline.setPose(sequence.groundTruth.pose(0));
    for (const auto &frame : sequence.frames)
        pipeline.processFrame(frame.depthMm);
    tracer.setEnabled(false);

    const kfusion::WorkCounts &work = pipeline.totalWork();

    // Every kernel with host time has a span total within 5% (plus
    // a small absolute floor for sub-millisecond kernels: the span
    // brackets the timer, so it reads slightly longer).
    const auto totals = tracer.kernelTotals();
    double traced_total = 0.0;
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        const double host = work.hostSecondsFor(id);
        if (host <= 0.0)
            continue;
        double traced = 0.0;
        for (const auto &t : totals)
            if (t.name == kfusion::kernelName(id))
                traced = t.seconds;
        EXPECT_GT(traced, 0.0) << kfusion::kernelName(id);
        EXPECT_LE(std::abs(traced - host),
                  std::max(0.05 * host, 5e-4))
            << kfusion::kernelName(id);
        traced_total += traced;
    }
    EXPECT_LE(std::abs(traced_total - work.totalHostSeconds()),
              std::max(0.05 * work.totalHostSeconds(), 2e-3));

    // The CSV aggregate covers every processed frame and sums to
    // the same per-kernel totals.
    const auto per_frame = tracer.frameKernelTotals();
    uint64_t max_frame = 0;
    double per_frame_total = 0.0;
    for (const auto &t : per_frame) {
        max_frame = std::max(max_frame, t.frame);
        per_frame_total += t.seconds;
    }
    EXPECT_EQ(max_frame, spec.numFrames - 1);
    EXPECT_NEAR(per_frame_total, traced_total, 1e-9);

    std::ostringstream os;
    tracer.writeFrameCsv(os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("frame,kernel,spans,host_ms\n", 0), 0u);
    EXPECT_GT(countOccurrences(csv, "integrate"), 0u);
}

TEST_F(TraceTest, SessionExportsAndDisarms)
{
    const std::string json_path =
        ::testing::TempDir() + "trace_session.json";
    const std::string csv_path =
        ::testing::TempDir() + "trace_session.csv";
    {
        Session session(json_path, csv_path);
        EXPECT_TRUE(session.active());
        EXPECT_TRUE(Tracer::instance().enabled());
        TRACE_SCOPE("session_span");
    }
    EXPECT_FALSE(Tracer::instance().enabled());

    std::ifstream json_in(json_path);
    ASSERT_TRUE(json_in.good());
    std::stringstream json_contents;
    json_contents << json_in.rdbuf();
    EXPECT_NE(json_contents.str().find("session_span"),
              std::string::npos);

    std::ifstream csv_in(csv_path);
    ASSERT_TRUE(csv_in.good());
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());

    // A pathless session stays inert.
    Session inert("", "");
    EXPECT_FALSE(inert.active());
    EXPECT_FALSE(Tracer::instance().enabled());
}

// --- Request tracing (end-to-end per-frame traces) ---

/** Every test starts and ends with a disarmed, empty tracer. */
class RequestTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        RequestTracer::instance().disarm();
        RequestTracer::instance().clear();
    }

    void
    TearDown() override
    {
        RequestTracer::instance().disarm();
        RequestTracer::instance().clear();
        support::setLogTraceId(0);
    }

    /** Arm the tracer with @p rate and test-friendly bounds. */
    static void
    arm(double rate)
    {
        RequestTraceOptions options;
        options.sampleRate = rate;
        options.maxRetained = 64;
        RequestTracer::instance().configure(options);
    }

    /** @return the retained trace for @p ctx (test fails if absent). */
    static RetainedTrace
    retained(const TraceContext &ctx)
    {
        RetainedTrace trace;
        EXPECT_TRUE(RequestTracer::instance().findTrace(ctx.traceId,
                                                        &trace));
        return trace;
    }

    /** @return the span named @p name, or nullptr. */
    static const RequestSpan *
    findSpan(const RetainedTrace &trace, const char *name)
    {
        for (const RequestSpan &span : trace.spans)
            if (span.name && std::string(span.name) == name)
                return &span;
        return nullptr;
    }
};

TEST_F(RequestTraceTest, DisarmedIsInert)
{
    auto &tracer = RequestTracer::instance();
    ASSERT_FALSE(requestTracingArmed());
    const TraceContext ctx = tracer.begin("t00", 0);
    EXPECT_FALSE(ctx.active());
    {
        ScopedTraceContext scope(ctx);
        ScopedSpan span("ignored", Category::Kernel);
        EXPECT_FALSE(currentTraceContext().active());
    }
    RequestTraceFinish fin;
    fin.sloBreach = true;
    tracer.finish(ctx, fin);
    EXPECT_EQ(tracer.tracesStarted(), 0u);
    EXPECT_EQ(tracer.tracesRetained(), 0u);
    EXPECT_TRUE(tracer.retainedSnapshot().empty());
}

TEST_F(RequestTraceTest, TailRetentionKeepsFlaggedDropsPlain)
{
    arm(0.0); // no probabilistic retention: only flags keep traces
    auto &tracer = RequestTracer::instance();

    const TraceContext plain = tracer.begin("t00", 0);
    ASSERT_TRUE(plain.active());
    tracer.finish(plain, RequestTraceFinish{});

    const TraceContext breach = tracer.begin("t00", 1);
    RequestTraceFinish fin;
    fin.durationSeconds = 0.25;
    fin.sloBreach = true;
    tracer.finish(breach, fin);

    const TraceContext lost = tracer.begin("t01", 2);
    RequestTraceFinish lost_fin;
    lost_fin.trackingLost = true;
    tracer.finish(lost, lost_fin);

    const TraceContext slow = tracer.begin("t01", 3);
    RequestTraceFinish slow_fin;
    slow_fin.topBucket = true;
    tracer.finish(slow, slow_fin);

    EXPECT_EQ(tracer.tracesStarted(), 4u);
    EXPECT_EQ(tracer.tracesRetained(), 3u);
    RetainedTrace trace;
    EXPECT_FALSE(tracer.findTrace(plain.traceId, &trace));

    trace = retained(breach);
    EXPECT_TRUE(trace.retention.sloBreach);
    EXPECT_FALSE(trace.retention.sampled);
    EXPECT_EQ(trace.tenant, "t00");
    EXPECT_EQ(trace.frame, 1u);
    EXPECT_DOUBLE_EQ(trace.durationSeconds, 0.25);
    // The synthesized root span covers the trace and closes last.
    ASSERT_FALSE(trace.spans.empty());
    EXPECT_EQ(trace.spans.back().spanId, trace.rootSpanId);
    EXPECT_STREQ(trace.spans.back().name, "frame");

    EXPECT_TRUE(retained(lost).retention.trackingLost);
    EXPECT_TRUE(retained(slow).retention.topBucket);
}

TEST_F(RequestTraceTest, SampleRateOneRetainsUnflaggedTraces)
{
    arm(1.0);
    auto &tracer = RequestTracer::instance();
    for (uint64_t frame = 0; frame < 16; ++frame) {
        const TraceContext ctx = tracer.begin("t00", frame);
        tracer.finish(ctx, RequestTraceFinish{});
    }
    EXPECT_EQ(tracer.tracesRetained(), 16u);
    for (const RetainedTrace &trace : tracer.retainedSnapshot()) {
        EXPECT_TRUE(trace.retention.sampled);
        EXPECT_FALSE(trace.retention.flagged());
    }
}

TEST_F(RequestTraceTest, SpansNestUnderInstalledContext)
{
    arm(1.0);
    auto &tracer = RequestTracer::instance();
    const TraceContext ctx = tracer.begin("t00", 0);
    {
        ScopedTraceContext scope(ctx);
        EXPECT_EQ(currentTraceContext().traceId, ctx.traceId);
        ScopedSpan outer("outer_phase", Category::Phase);
        {
            ScopedSpan inner("inner_kernel", Category::Kernel);
        }
    }
    EXPECT_FALSE(currentTraceContext().active());
    tracer.finish(ctx, RequestTraceFinish{});

    const RetainedTrace trace = retained(ctx);
    const RequestSpan *outer = findSpan(trace, "outer_phase");
    const RequestSpan *inner = findSpan(trace, "inner_kernel");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // inner is a child of outer, outer a child of the root span.
    EXPECT_EQ(inner->parentSpanId, outer->spanId);
    EXPECT_EQ(outer->parentSpanId, trace.rootSpanId);
    EXPECT_LE(outer->startNs, inner->startNs);
    EXPECT_LE(inner->endNs, outer->endNs);
    EXPECT_EQ(inner->cat, Category::Kernel);
}

TEST_F(RequestTraceTest, PropagatesAcrossPoolTaskBoundary)
{
    arm(1.0);
    auto &tracer = RequestTracer::instance();
    support::ThreadPool pool(2);

    const TraceContext ctx = tracer.begin("t00", 0);
    support::ThreadPool::TaskGroup group;
    {
        ScopedTraceContext scope(ctx);
        pool.submit(group, [] {
            ScopedSpan span("worker_side", Category::Kernel);
        });
    }
    pool.wait(group);
    tracer.finish(ctx, RequestTraceFinish{});

    const RetainedTrace trace = retained(ctx);
    // The worker-side span landed in the submitter's trace, as a
    // child of the context the submitter had installed (the root).
    const RequestSpan *worker = findSpan(trace, "worker_side");
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->parentSpanId, trace.rootSpanId);
    // The pool synthesized a queue-wait span for the task.
    const RequestSpan *queue_wait = findSpan(trace, "queue_wait");
    ASSERT_NE(queue_wait, nullptr);
    EXPECT_EQ(queue_wait->parentSpanId, trace.rootSpanId);
    EXPECT_EQ(queue_wait->cat, Category::Worker);
    EXPECT_LE(queue_wait->startNs, queue_wait->endNs);
}

TEST_F(RequestTraceTest, NestedPoolTasksKeepParentLinkage)
{
    arm(1.0);
    auto &tracer = RequestTracer::instance();
    support::ThreadPool pool(2);

    const TraceContext ctx = tracer.begin("t00", 0);
    support::ThreadPool::TaskGroup outer_group;
    {
        ScopedTraceContext scope(ctx);
        pool.submit(outer_group, [&pool] {
            ScopedSpan outer("outer_task", Category::Phase);
            support::ThreadPool::TaskGroup inner_group;
            pool.submit(inner_group, [] {
                ScopedSpan inner("inner_task", Category::Kernel);
            });
            pool.wait(inner_group);
        });
    }
    pool.wait(outer_group);
    tracer.finish(ctx, RequestTraceFinish{});

    const RetainedTrace trace = retained(ctx);
    const RequestSpan *outer = findSpan(trace, "outer_task");
    const RequestSpan *inner = findSpan(trace, "inner_task");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // The nested submit happened inside outer_task's span, so the
    // inner task's spans hang off outer_task even though a different
    // worker executed them.
    EXPECT_EQ(outer->parentSpanId, trace.rootSpanId);
    EXPECT_EQ(inner->parentSpanId, outer->spanId);
}

TEST_F(RequestTraceTest, ConcurrentTenantsDoNotLeakSpans)
{
    arm(1.0);
    auto &tracer = RequestTracer::instance();
    support::ThreadPool pool(4);

    constexpr size_t kTenants = 6;
    std::vector<TraceContext> contexts(kTenants);
    support::ThreadPool::TaskGroup group;
    for (size_t t = 0; t < kTenants; ++t) {
        char tenant[8];
        std::snprintf(tenant, sizeof(tenant), "t%02zu", t);
        contexts[t] = tracer.begin(tenant, t);
        ScopedTraceContext scope(contexts[t]);
        pool.submit(group, [t] {
            // Distinct static names per tenant index, so a span
            // leaking into another tenant's trace is detectable.
            static const char *kNames[kTenants] = {
                "tenant0_work", "tenant1_work", "tenant2_work",
                "tenant3_work", "tenant4_work", "tenant5_work"};
            ScopedSpan span(kNames[t], Category::Kernel);
            ScopedSpan nested("shared_child", Category::Kernel);
        });
    }
    pool.wait(group);
    for (size_t t = 0; t < kTenants; ++t)
        tracer.finish(contexts[t], RequestTraceFinish{});

    for (size_t t = 0; t < kTenants; ++t) {
        const RetainedTrace trace = retained(contexts[t]);
        char expected[24];
        std::snprintf(expected, sizeof(expected), "tenant%zu_work",
                      t);
        const RequestSpan *own = findSpan(trace, expected);
        ASSERT_NE(own, nullptr) << expected;
        EXPECT_EQ(own->parentSpanId, trace.rootSpanId);
        // No other tenant's work span leaked into this trace.
        for (size_t other = 0; other < kTenants; ++other) {
            if (other == t)
                continue;
            char leaked[24];
            std::snprintf(leaked, sizeof(leaked), "tenant%zu_work",
                          other);
            EXPECT_EQ(findSpan(trace, leaked), nullptr)
                << "trace of tenant " << t << " contains "
                << leaked;
        }
        // And the nested span is a child of this tenant's own span.
        const RequestSpan *nested = findSpan(trace, "shared_child");
        ASSERT_NE(nested, nullptr);
        EXPECT_EQ(nested->parentSpanId, own->spanId);
    }
}

TEST_F(RequestTraceTest, ExemplarFollowsRetainedTrace)
{
    arm(0.0);
    auto &tracer = RequestTracer::instance();

    const TraceContext kept = tracer.begin("t00", 0);
    RequestTraceFinish fin;
    fin.durationSeconds = 0.125;
    fin.sloBreach = true;
    fin.exemplarMetric = "serve.tenant.frame_seconds{tenant=\"t00\"}";
    tracer.finish(kept, fin);

    TraceExemplar exemplar;
    ASSERT_TRUE(tracer.exemplarFor(
        "serve.tenant.frame_seconds{tenant=\"t00\"}", &exemplar));
    EXPECT_EQ(exemplar.traceId, kept.traceId);
    EXPECT_DOUBLE_EQ(exemplar.value, 0.125);

    // A dropped trace must not become the exemplar.
    const TraceContext dropped = tracer.begin("t00", 1);
    RequestTraceFinish dropped_fin;
    dropped_fin.durationSeconds = 9.0;
    dropped_fin.exemplarMetric = fin.exemplarMetric;
    tracer.finish(dropped, dropped_fin);
    ASSERT_TRUE(tracer.exemplarFor(
        "serve.tenant.frame_seconds{tenant=\"t00\"}", &exemplar));
    EXPECT_EQ(exemplar.traceId, kept.traceId);

    EXPECT_FALSE(tracer.exemplarFor("no.such.metric", &exemplar));
}

TEST_F(RequestTraceTest, RetainedStoreIsBounded)
{
    RequestTraceOptions options;
    options.sampleRate = 1.0;
    options.maxRetained = 8;
    RequestTracer::instance().configure(options);
    auto &tracer = RequestTracer::instance();
    for (uint64_t frame = 0; frame < 32; ++frame) {
        const TraceContext ctx = tracer.begin("t00", frame);
        tracer.finish(ctx, RequestTraceFinish{});
    }
    const auto snapshot = tracer.retainedSnapshot();
    ASSERT_EQ(snapshot.size(), 8u);
    // Newest first; FIFO eviction kept the most recent frames.
    EXPECT_EQ(snapshot.front().frame, 31u);
    EXPECT_EQ(snapshot.back().frame, 24u);
}

TEST_F(RequestTraceTest, TraceIdFormatParseRoundTrip)
{
    EXPECT_EQ(formatTraceId(0x00ffee0011223344ull),
              "00ffee0011223344");
    EXPECT_EQ(parseTraceId("00ffee0011223344"),
              0x00ffee0011223344ull);
    EXPECT_EQ(parseTraceId("0x00ffee0011223344"),
              0x00ffee0011223344ull);
    EXPECT_EQ(parseTraceId(""), 0u);
    EXPECT_EQ(parseTraceId("not-a-trace-id"), 0u);
    EXPECT_EQ(parseTraceId("12345"), 0x12345ull);
}

TEST_F(RequestTraceTest, ScopedContextCarriesLogCorrelation)
{
    arm(1.0);
    auto &tracer = RequestTracer::instance();
    const TraceContext ctx = tracer.begin("t00", 0);
    ASSERT_EQ(support::logTraceId(), 0u);
    {
        ScopedTraceContext scope(ctx);
        EXPECT_EQ(support::logTraceId(), ctx.traceId);
        // A WARN inside the context carries the correlation id.
        ::testing::internal::CaptureStderr();
        support::logWarn() << "correlated warning";
        const std::string line =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(line.find("trace_id=" + formatTraceId(ctx.traceId)),
                  std::string::npos)
            << line;
    }
    EXPECT_EQ(support::logTraceId(), 0u);
    // Outside any context, no correlation suffix is appended.
    ::testing::internal::CaptureStderr();
    support::logWarn() << "uncorrelated warning";
    const std::string line =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(line.find("trace_id="), std::string::npos) << line;
    tracer.finish(ctx, RequestTraceFinish{});
}

} // namespace
