/**
 * @file
 * Cross-module integration tests: the full DSE stack over the real
 * pipeline on a miniature workload, and the accuracy/performance
 * trade-off directions the paper's figures rely on.
 */

#include <gtest/gtest.h>

#include "core/benchmark.hpp"
#include "core/config_binding.hpp"
#include "core/experiment.hpp"
#include "devices/fleet.hpp"
#include "hypermapper/drivers.hpp"
#include "hypermapper/knowledge.hpp"

namespace {

using namespace slambench;
using namespace slambench::core;
using dataset::Sequence;
using dataset::SequenceSpec;
using hypermapper::Evaluation;
using kfusion::KFusionConfig;

const Sequence &
miniSequence()
{
    static const Sequence seq = [] {
        SequenceSpec spec;
        spec.width = 64;
        spec.height = 48;
        spec.numFrames = 8;
        spec.renderRgb = false;
        return generateSequence(spec);
    }();
    return seq;
}

KFusionConfig
miniConfig()
{
    KFusionConfig config;
    config.volumeResolution = 64;
    config.pyramidIterations = {5, 3, 2};
    return config;
}

TEST(TradeOff, SmallerVolumeIsFasterButLessAccurate)
{
    const Sequence &seq = miniSequence();

    KFusionConfig accurate = miniConfig();
    accurate.volumeResolution = 128;
    KFusionConfig fast = miniConfig();
    fast.volumeResolution = 64;

    const EvaluatedConfig a =
        evaluateConfigOnDevice(accurate, seq, devices::odroidXu3());
    const EvaluatedConfig f =
        evaluateConfigOnDevice(fast, seq, devices::odroidXu3());
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(f.valid);
    // Fast config is at least 2x faster on the simulated device.
    EXPECT_LT(f.simulated.meanFrameSeconds,
              a.simulated.meanFrameSeconds / 2.0);
}

TEST(TradeOff, ComputeSizeRatioTradesSpeedForAccuracy)
{
    const Sequence &seq = miniSequence();

    KFusionConfig full = miniConfig();
    KFusionConfig eighth = miniConfig();
    eighth.computeSizeRatio = 4; // 16x12 compute image
    eighth.pyramidIterations = {5, 3};

    const EvaluatedConfig a =
        evaluateConfigOnDevice(full, seq, devices::odroidXu3());
    const EvaluatedConfig b =
        evaluateConfigOnDevice(eighth, seq, devices::odroidXu3());
    ASSERT_TRUE(a.valid);
    // The tiny compute image must be faster; accuracy typically
    // degrades (but tracking may still hold on this short easy run).
    EXPECT_LT(b.simulated.meanFrameSeconds,
              a.simulated.meanFrameSeconds);
    EXPECT_GE(b.ate.maxAte, 0.0);
}

TEST(TradeOff, SkippingIntegrationReducesEnergy)
{
    const Sequence &seq = miniSequence();

    KFusionConfig every = miniConfig();
    every.integrationRate = 1;
    KFusionConfig rare = miniConfig();
    rare.integrationRate = 8;

    const EvaluatedConfig a =
        evaluateConfigOnDevice(every, seq, devices::odroidXu3());
    const EvaluatedConfig b =
        evaluateConfigOnDevice(rare, seq, devices::odroidXu3());
    EXPECT_LT(b.simulated.totalJoules, a.simulated.totalJoules);
}

TEST(FullDse, ActiveLearningFindsFeasibleFastConfigs)
{
    const Sequence &seq = miniSequence();
    const auto space = kfusionParameterSpace();
    const auto xu3 = devices::odroidXu3();

    auto evaluator = makeDseEvaluator(space, seq, xu3);

    hypermapper::ActiveLearningOptions options;
    options.warmupSamples = 8;
    options.iterations = 2;
    options.batchSize = 4;
    options.candidatePool = 150;
    options.forest.numTrees = 8;
    options.seed = 3;

    const auto result = hypermapper::activeLearning(
        space, evaluator, kNumObjectives, options);
    EXPECT_EQ(result.evaluations.size(), 16u);

    // At least one evaluation must be valid, and the front nonempty.
    const auto front = hypermapper::paretoFront(result.evaluations);
    EXPECT_FALSE(front.empty());

    // The default configuration must be beaten on runtime by some
    // explored configuration (there is always something faster than
    // vr=256/csr=1 in this space).
    const auto default_outcome = evaluator(space.defaultPoint());
    const double inf = std::numeric_limits<double>::infinity();
    const double best_runtime = hypermapper::bestUnderCaps(
        result.evaluations, kObjRuntime, {inf, inf, inf});
    EXPECT_LT(best_runtime, default_outcome.objectives[kObjRuntime]);
}

TEST(FullDse, KnowledgeExtractionOnRealEvaluations)
{
    const Sequence &seq = miniSequence();
    const auto space = kfusionParameterSpace();
    auto evaluator =
        makeDseEvaluator(space, seq, devices::odroidXu3());

    hypermapper::RandomSearchOptions options;
    options.budget = 25;
    options.seed = 11;
    const auto evals =
        hypermapper::randomSearch(space, evaluator, options);

    hypermapper::GoodnessCriteria criteria;
    criteria.minFps = 5.0; // relaxed for the mini workload
    criteria.maxWatts = 5.0;
    criteria.maxAteLimit = 0.1;
    const auto knowledge =
        hypermapper::extractKnowledge(space, evals, criteria, 3);
    EXPECT_GT(knowledge.totalCount, 0u);
    // Rules must be printable whenever both classes exist.
    if (knowledge.goodCount > 0 &&
        knowledge.goodCount < knowledge.totalCount)
        EXPECT_FALSE(knowledge.rules.empty());
}

TEST(FleetReplay, SpeedupsSpreadAcrossDevices)
{
    const Sequence &seq = miniSequence();

    KFusionConfig default_config; // true defaults (vr=256)
    default_config.volumeResolution = 128; // shrink for test speed
    KFusionConfig tuned = miniConfig();
    tuned.computeSizeRatio = 2;
    tuned.integrationRate = 6;
    tuned.volumeResolution = 64;
    tuned.pyramidIterations = {4, 2, 1};

    KFusionSystem default_system(default_config);
    KFusionSystem tuned_system(tuned);
    const BenchmarkResult default_run =
        runBenchmark(default_system, seq);
    const BenchmarkResult tuned_run =
        runBenchmark(tuned_system, seq);

    const auto fleet = devices::mobileFleet(40, 2018);
    const auto entries = replayOnFleet(
        fleet, default_run.frameWork, volumeBytes(default_config),
        tuned_run.frameWork, volumeBytes(tuned));

    double min_speedup = 1e9, max_speedup = 0.0;
    size_t ran_both = 0;
    for (const auto &e : entries) {
        if (!e.ranDefault || !e.ranTuned)
            continue;
        ++ran_both;
        min_speedup = std::min(min_speedup, e.speedup);
        max_speedup = std::max(max_speedup, e.speedup);
    }
    ASSERT_GT(ran_both, 30u);
    // Speedups must be > 1 everywhere and spread noticeably (the
    // devices differ in kernel balance).
    EXPECT_GT(min_speedup, 1.0);
    EXPECT_GT(max_speedup / min_speedup, 1.15);
}

TEST(MultiSequence, EvaluatorAggregatesWorstCase)
{
    // Two short sequences over different trajectories.
    std::vector<dataset::Sequence> sequences;
    for (auto preset : {dataset::TrajectoryPreset::OrbitA,
                        dataset::TrajectoryPreset::SweepB}) {
        dataset::SequenceSpec spec;
        spec.width = 64;
        spec.height = 48;
        spec.numFrames = 5;
        spec.renderRgb = false;
        spec.trajectory = preset;
        sequences.push_back(generateSequence(spec));
    }
    const auto space = kfusionParameterSpace();
    const auto xu3 = devices::odroidXu3();
    auto multi =
        makeMultiSequenceEvaluator(space, sequences, xu3);
    auto single0 = makeDseEvaluator(space, sequences[0], xu3);
    auto single1 = makeDseEvaluator(space, sequences[1], xu3);

    hypermapper::Point p = space.defaultPoint();
    p[space.indexOf("volume_resolution")] = 64;
    const auto combined = multi(p);
    const auto a = single0(p);
    const auto b = single1(p);
    ASSERT_TRUE(combined.valid);
    EXPECT_NEAR(combined.objectives[kObjRuntime],
                (a.objectives[kObjRuntime] +
                 b.objectives[kObjRuntime]) /
                    2.0,
                1e-12);
    EXPECT_DOUBLE_EQ(combined.objectives[kObjMaxAte],
                     std::max(a.objectives[kObjMaxAte],
                              b.objectives[kObjMaxAte]));
}

TEST(Determinism, FullBenchmarkIsBitStable)
{
    const Sequence &seq = miniSequence();
    KFusionSystem s1(miniConfig());
    KFusionSystem s2(miniConfig());
    const BenchmarkResult a = runBenchmark(s1, seq);
    const BenchmarkResult b = runBenchmark(s2, seq);
    ASSERT_EQ(a.frames, b.frames);
    EXPECT_DOUBLE_EQ(a.ate.maxAte, b.ate.maxAte);
    for (size_t f = 0; f < a.frameWork.size(); ++f)
        for (size_t k = 0; k < kfusion::kNumKernels; ++k)
            EXPECT_DOUBLE_EQ(a.frameWork[f].items[k],
                             b.frameWork[f].items[k])
                << "frame " << f << " kernel " << k;
}

} // namespace
