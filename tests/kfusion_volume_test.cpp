/**
 * @file
 * Tests for the TSDF volume: fusion, interpolation, gradients, and
 * raycasting against analytically known surfaces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "kfusion/raycast.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "kfusion/volume.hpp"
#include "math/se3.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::math::CameraIntrinsics;
using slambench::math::Mat4f;
using slambench::math::Vec3f;
using slambench::support::Image;

/**
 * Fuse a synthetic fronto-parallel wall at depth @p wall_z as seen by
 * a camera at the origin looking along +Z.
 */
void
fuseWall(TsdfVolume &volume, const CameraIntrinsics &k, float wall_z,
         float mu, int times, WorkCounts &counts)
{
    Image<float> depth(k.width, k.height, wall_z);
    const Mat4f pose; // identity: camera at origin, +Z forward
    for (int i = 0; i < times; ++i)
        volume.integrate(depth, k, pose, mu, 100.0f, counts, nullptr);
}

class WallFixture : public ::testing::Test
{
  protected:
    WallFixture()
        : volume_(64, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}),
          k_(CameraIntrinsics::fromFov(64, 64, 1.0f))
    {
        fuseWall(volume_, k_, 1.0f, 0.1f, 3, counts_);
    }

    TsdfVolume volume_;
    CameraIntrinsics k_;
    WorkCounts counts_;
};

TEST_F(WallFixture, TsdfSignStraddlesSurface)
{
    bool valid = false;
    // 5 cm in front of the wall: positive TSDF.
    const float front = volume_.interp({0.0f, 0.0f, 0.95f}, valid);
    ASSERT_TRUE(valid);
    EXPECT_GT(front, 0.0f);
    // 5 cm behind the wall: negative TSDF.
    const float behind = volume_.interp({0.0f, 0.0f, 1.05f}, valid);
    ASSERT_TRUE(valid);
    EXPECT_LT(behind, 0.0f);
}

TEST_F(WallFixture, TsdfLinearInsideBand)
{
    // At distance d in front of the wall, TSDF ~ d / mu.
    bool valid = false;
    const float v = volume_.interp({0.0f, 0.0f, 0.94f}, valid);
    ASSERT_TRUE(valid);
    EXPECT_NEAR(v, 0.06f / 0.1f, 0.15f);
}

TEST_F(WallFixture, GradientPointsTowardCamera)
{
    const Vec3f g = volume_.grad({0.0f, 0.0f, 0.995f});
    ASSERT_GT(g.norm(), 0.0f);
    const Vec3f n = g.normalized();
    // Wall normal faces -Z (toward the camera at the origin).
    EXPECT_LT(n.z, -0.9f);
}

TEST_F(WallFixture, UnobservedVoxelsInvalid)
{
    bool valid = true;
    // Behind the wall beyond mu: never updated.
    volume_.interp({0.0f, 0.0f, 1.5f}, valid);
    EXPECT_FALSE(valid);
}

TEST_F(WallFixture, CastRayHitsWallAtRightDepth)
{
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 2.0f;
    params.step = volume_.voxelSize();
    params.largeStep = 0.075f;

    Vec3f hit;
    int steps = 0;
    ASSERT_TRUE(castRay(volume_, Vec3f{0, 0, 0}, Vec3f{0, 0, 1},
                        params, hit, steps));
    EXPECT_NEAR(hit.z, 1.0f, 0.01f);
    EXPECT_GT(steps, 0);
}

TEST_F(WallFixture, CastRayMissesWhenLookingAway)
{
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 2.0f;
    params.step = volume_.voxelSize();
    params.largeStep = 0.075f;

    Vec3f hit;
    int steps = 0;
    EXPECT_FALSE(castRay(volume_, Vec3f{0, 0, 0}, Vec3f{0, 0, -1},
                         params, hit, steps));
}

TEST_F(WallFixture, RaycastKernelProducesConsistentMaps)
{
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 2.0f;
    params.step = volume_.voxelSize();
    params.largeStep = 0.075f;

    Image<Vec3f> vertex, normal;
    WorkCounts counts;
    raycastKernel(vertex, normal, volume_, k_, Mat4f{}, params,
                  counts, nullptr);
    ASSERT_EQ(vertex.width(), k_.width);

    size_t hits = 0;
    for (size_t y = 8; y < k_.height - 8; ++y) {
        for (size_t x = 8; x < k_.width - 8; ++x) {
            const Vec3f v = vertex(x, y);
            if (v.squaredNorm() == 0.0f)
                continue;
            ++hits;
            EXPECT_NEAR(v.z, 1.0f, 0.02f);
            const Vec3f n = normal(x, y);
            EXPECT_NEAR(n.norm(), 1.0f, 1e-4f);
            EXPECT_LT(n.z, -0.8f);
        }
    }
    // The central region must be densely hit.
    EXPECT_GT(hits, (k_.width - 16) * (k_.height - 16) * 8 / 10);
    EXPECT_GT(counts.itemsFor(KernelId::Raycast), 0.0);
    EXPECT_GT(counts.hostSecondsFor(KernelId::Raycast), 0.0);
}

TEST_F(WallFixture, RenderVolumeShadesHits)
{
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 2.0f;
    params.step = volume_.voxelSize();
    params.largeStep = 0.075f;

    Image<slambench::support::Rgb8> out;
    WorkCounts counts;
    renderVolumeKernel(out, volume_, k_, Mat4f{}, params, counts,
                       nullptr);
    // Center pixel hits the wall: must not be the background color.
    const auto c = out(32, 32);
    EXPECT_FALSE(c.r == 20 && c.g == 20 && c.b == 28);
}

// --- Volume basics ---

TEST(Volume, ResetClearsWeights)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    volume.at(3, 3, 3) = Voxel{-0.5f, 10.0f};
    volume.reset();
    EXPECT_FLOAT_EQ(volume.at(3, 3, 3).weight, 0.0f);
    EXPECT_FLOAT_EQ(volume.at(3, 3, 3).tsdf, 1.0f);
}

TEST(Volume, ContainsRespectsBounds)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    EXPECT_TRUE(volume.contains({0.5f, 0.5f, 0.5f}));
    EXPECT_FALSE(volume.contains({1.5f, 0.5f, 0.5f}));
    EXPECT_FALSE(volume.contains({-0.1f, 0.5f, 0.5f}));
}

TEST(Volume, VoxelCenterGeometry)
{
    TsdfVolume volume(10, 1.0f, Vec3f{0, 0, 0});
    const Vec3f c = volume.voxelCenter(0, 0, 0);
    EXPECT_FLOAT_EQ(c.x, 0.05f);
    const Vec3f far_corner = volume.voxelCenter(9, 9, 9);
    EXPECT_FLOAT_EQ(far_corner.x, 0.95f);
}

TEST(Volume, WeightSaturatesAtMax)
{
    TsdfVolume volume(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    const auto k = CameraIntrinsics::fromFov(32, 32, 1.0f);
    WorkCounts counts;
    Image<float> depth(32, 32, 1.0f);
    for (int i = 0; i < 8; ++i)
        volume.integrate(depth, k, Mat4f{}, 0.1f, 5.0f, counts,
                         nullptr);
    // Find a voxel near the wall and check its weight cap.
    float max_weight = 0.0f;
    for (int z = 0; z < 32; ++z)
        max_weight =
            std::max(max_weight, volume.at(16, 16, z).weight);
    EXPECT_FLOAT_EQ(max_weight, 5.0f);
}

TEST(Volume, IntegrationCountsWork)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    const auto k = CameraIntrinsics::fromFov(16, 16, 1.0f);
    WorkCounts counts;
    Image<float> depth(16, 16, 0.5f);
    volume.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                     nullptr);
    // Items are voxels actually visited; culled voxels show up as
    // skipped work, and together they cover the whole volume.
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_LE(counts.itemsFor(KernelId::Integrate),
              16.0 * 16.0 * 16.0);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Integrate) +
                         counts.skippedFor(KernelId::Integrate),
                     16.0 * 16.0 * 16.0);
    EXPECT_GT(counts.bytesFor(KernelId::Integrate), 0.0);
}

TEST(Volume, DenseIntegrationVisitsEveryVoxel)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    const auto k = CameraIntrinsics::fromFov(16, 16, 1.0f);
    WorkCounts counts;
    Image<float> depth(16, 16, 0.5f);
    volume.integrateDense(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Integrate),
                     16.0 * 16.0 * 16.0);
    EXPECT_DOUBLE_EQ(counts.skippedFor(KernelId::Integrate), 0.0);
}

TEST(Volume, SequentialAndThreadedIntegrationMatch)
{
    const auto k = CameraIntrinsics::fromFov(24, 24, 1.0f);
    Image<float> depth(24, 24);
    slambench::support::Rng rng(3);
    for (size_t i = 0; i < depth.size(); ++i)
        depth[i] = static_cast<float>(rng.uniform(0.8, 1.4));

    TsdfVolume seq(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume par(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    WorkCounts counts;
    slambench::support::ThreadPool pool(3);
    seq.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts, nullptr);
    par.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts, &pool);
    for (int z = 0; z < 32; ++z) {
        for (int y = 0; y < 32; ++y) {
            for (int x = 0; x < 32; ++x) {
                ASSERT_FLOAT_EQ(seq.at(x, y, z).tsdf,
                                par.at(x, y, z).tsdf);
                ASSERT_FLOAT_EQ(seq.at(x, y, z).weight,
                                par.at(x, y, z).weight);
            }
        }
    }
}

// Property sweep: a sphere fused from multiple views raycasts back
// at the correct radius.
class SphereFusion : public ::testing::TestWithParam<float>
{};

TEST_P(SphereFusion, RaycastRecoversRadius)
{
    const float radius = GetParam();
    TsdfVolume volume(64, 2.0f, Vec3f{-1.0f, -1.0f, -1.0f});
    const auto k = CameraIntrinsics::fromFov(48, 48, 1.0f);
    WorkCounts counts;

    // Render ideal depth of a sphere at the origin from 4 sides.
    for (int view = 0; view < 4; ++view) {
        const float angle =
            static_cast<float>(view) * static_cast<float>(M_PI / 2);
        const Vec3f eye{0.9f * std::sin(angle), 0.0f,
                        -0.9f * std::cos(angle)};
        const Mat4f pose = slambench::math::lookAt(
            eye, Vec3f{0, 0, 0}, Vec3f{0, 1, 0});
        const Mat4f w2c = pose.rigidInverse();

        Image<float> depth(k.width, k.height, 0.0f);
        for (size_t y = 0; y < k.height; ++y) {
            for (size_t x = 0; x < k.width; ++x) {
                // Ray-sphere intersection in world space.
                const Vec3f dir_cam = k.rayDir(
                    static_cast<float>(x) + 0.5f,
                    static_cast<float>(y) + 0.5f);
                const Vec3f dir = pose.transformDir(dir_cam);
                const float b = 2.0f * eye.dot(dir);
                const float c = eye.squaredNorm() - radius * radius;
                const float disc = b * b - 4.0f * c;
                if (disc < 0.0f)
                    continue;
                const float t = (-b - std::sqrt(disc)) / 2.0f;
                if (t <= 0.0f)
                    continue;
                const Vec3f hit_world = eye + dir * t;
                depth(x, y) = w2c.transformPoint(hit_world).z;
            }
        }
        volume.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                         nullptr);
    }

    // Raycast from a nearby novel viewpoint (between two training
    // views, looking at the observed equatorial band) and check hit
    // radii. Novel views far outside the observed region would hit
    // observation-boundary artifacts, as in the real system.
    const Vec3f eye{0.6f * std::sin(0.4f), 0.1f,
                    -0.6f * std::cos(0.4f)};
    const Mat4f pose = slambench::math::lookAt(eye, Vec3f{0, 0, 0},
                                               Vec3f{0, 1, 0});
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 2.0f;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;

    Image<Vec3f> vertex, normal;
    raycastKernel(vertex, normal, volume, k, pose, params, counts,
                  nullptr);
    // Check the central rows (the well-observed equatorial band):
    // the median hit radius must match, and most hits must be close.
    std::vector<float> radii;
    for (size_t y = k.height / 2 - 6; y < k.height / 2 + 6; ++y) {
        for (size_t x = 0; x < k.width; ++x) {
            const Vec3f v = vertex(x, y);
            if (v.squaredNorm() > 0.0f)
                radii.push_back(v.norm());
        }
    }
    ASSERT_GT(radii.size(), 20u);
    std::sort(radii.begin(), radii.end());
    EXPECT_NEAR(radii[radii.size() / 2], radius, 0.04f);
}

INSTANTIATE_TEST_SUITE_P(Radii, SphereFusion,
                         ::testing::Values(0.25f, 0.35f, 0.5f));

} // namespace
