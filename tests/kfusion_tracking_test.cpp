/**
 * @file
 * Tests for ICP tracking: correspondence gating, the reduction, pose
 * updates, and convergence from perturbed starts (property sweep).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/generator.hpp"
#include "kfusion/kernels.hpp"
#include "kfusion/tracking.hpp"
#include "math/se3.hpp"
#include "support/rng.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::dataset::Sequence;
using slambench::dataset::SequenceSpec;
using slambench::math::CameraIntrinsics;
using slambench::math::Mat4f;
using slambench::math::Vec3d;
using slambench::math::Vec3f;
using slambench::support::Image;
using slambench::support::Rng;

/** Build vertex/normal maps in the camera frame from ideal depth. */
void
buildMaps(const Image<float> &depth, const CameraIntrinsics &k,
          Image<Vec3f> &vertex, Image<Vec3f> &normal)
{
    depth2vertexKernel(vertex, depth, k, nullptr);
    vertex2normalKernel(normal, vertex, nullptr);
}

/** Transform camera-frame maps to world frame with @p pose. */
void
toWorld(const Image<Vec3f> &vertex_cam, const Image<Vec3f> &normal_cam,
        const Mat4f &pose, Image<Vec3f> &vertex_w,
        Image<Vec3f> &normal_w)
{
    vertex_w.resize(vertex_cam.width(), vertex_cam.height());
    normal_w.resize(normal_cam.width(), normal_cam.height());
    for (size_t i = 0; i < vertex_cam.size(); ++i) {
        if (vertex_cam[i].squaredNorm() == 0.0f ||
            normal_cam[i].squaredNorm() == 0.0f) {
            vertex_w[i] = Vec3f{};
            normal_w[i] = Vec3f{};
            continue;
        }
        vertex_w[i] = pose.transformPoint(vertex_cam[i]);
        normal_w[i] = pose.transformDir(normal_cam[i]);
    }
}

/** Shared scaffolding: one rendered frame of the living room. */
class IcpFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SequenceSpec spec;
        spec.width = 80;
        spec.height = 60;
        spec.numFrames = 1;
        spec.sensorNoise = false;
        spec.renderRgb = false;
        sequence_ = generateSequence(spec);
        k_ = sequence_.intrinsics;
        pose_ = sequence_.groundTruth.pose(0);

        Image<float> depth;
        mm2metersKernel(depth, sequence_.frames[0].depthMm, 1,
                        nullptr);
        buildMaps(depth, k_, vertexCam_, normalCam_);
        toWorld(vertexCam_, normalCam_, pose_, refVertex_, refNormal_);

        level_.depth = depth;
        level_.vertex = vertexCam_;
        level_.normal = normalCam_;
        level_.intrinsics = k_;
    }

    Sequence sequence_;
    CameraIntrinsics k_;
    Mat4f pose_;
    Image<Vec3f> vertexCam_, normalCam_;
    Image<Vec3f> refVertex_, refNormal_;
    PyramidLevel level_;
};

TEST_F(IcpFixture, PerfectPoseGivesNearZeroResidual)
{
    Image<TrackData> track;
    trackKernel(track, vertexCam_, normalCam_, pose_, refVertex_,
                refNormal_, k_, pose_, 0.1f, 0.8f, nullptr);
    const ReductionResult red = reduceKernel(track, nullptr);
    ASSERT_GT(red.validCount, track.size() / 2);
    EXPECT_LT(std::sqrt(red.errorSq /
                        static_cast<double>(red.validCount)),
              1e-4);
}

TEST_F(IcpFixture, GatesRejectFarCorrespondences)
{
    // Displace the pose by more than the distance gate.
    Mat4f far_pose = pose_;
    far_pose(0, 3) += 0.5f;
    Image<TrackData> track;
    trackKernel(track, vertexCam_, normalCam_, far_pose, refVertex_,
                refNormal_, k_, pose_, 0.1f, 0.8f, nullptr);
    size_t too_far = 0, ok = 0;
    for (size_t i = 0; i < track.size(); ++i) {
        too_far += track[i].result == TrackResult::TooFar;
        ok += track[i].result == TrackResult::Ok;
    }
    EXPECT_GT(too_far, 0u);
    EXPECT_LT(ok, track.size() / 2);
}

TEST_F(IcpFixture, ReductionSequentialMatchesThreaded)
{
    Image<TrackData> track;
    trackKernel(track, vertexCam_, normalCam_, pose_, refVertex_,
                refNormal_, k_, pose_, 0.1f, 0.8f, nullptr);
    slambench::support::ThreadPool pool(3);
    const ReductionResult a = reduceKernel(track, nullptr);
    const ReductionResult b = reduceKernel(track, &pool);
    EXPECT_EQ(a.validCount, b.validCount);
    EXPECT_NEAR(a.errorSq, b.errorSq, 1e-9 * (1.0 + a.errorSq));
    for (size_t i = 0; i < a.jtj.size(); ++i)
        EXPECT_NEAR(a.jtj[i], b.jtj[i],
                    1e-9 * (1.0 + std::abs(a.jtj[i])));
}

TEST_F(IcpFixture, UpdatePoseRejectsTooFewCorrespondences)
{
    ReductionResult red;
    red.validCount = 3;
    Mat4f pose = pose_;
    double twist = 0.0;
    EXPECT_FALSE(updatePose(pose, red, twist));
}

/** Convergence property: ICP recovers a perturbed pose. */
struct Perturbation
{
    double translation; ///< meters
    double rotation;    ///< radians
};

class IcpConvergence
    : public ::testing::TestWithParam<Perturbation>
{};

TEST_P(IcpConvergence, RecoversPerturbedPose)
{
    SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    spec.renderRgb = false;
    const Sequence sequence = generateSequence(spec);
    const CameraIntrinsics k = sequence.intrinsics;
    const Mat4f gt_pose = sequence.groundTruth.pose(0);

    Image<float> depth;
    mm2metersKernel(depth, sequence.frames[0].depthMm, 1, nullptr);
    Image<Vec3f> vertex_cam, normal_cam, ref_vertex, ref_normal;
    buildMaps(depth, k, vertex_cam, normal_cam);
    toWorld(vertex_cam, normal_cam, gt_pose, ref_vertex, ref_normal);

    // Two-level pyramid for robustness.
    KFusionConfig config;
    config.pyramidIterations = {10, 5};
    std::vector<PyramidLevel> pyramid(2);
    pyramid[0].depth = depth;
    pyramid[0].vertex = vertex_cam;
    pyramid[0].normal = normal_cam;
    pyramid[0].intrinsics = k;
    halfSampleRobustKernel(pyramid[1].depth, depth, 0.3f, nullptr);
    pyramid[1].intrinsics = k.scaled(2);
    buildMaps(pyramid[1].depth, pyramid[1].intrinsics,
              pyramid[1].vertex, pyramid[1].normal);

    Rng rng(31);
    const Perturbation p = GetParam();
    int recovered = 0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
        // Random perturbation of the given magnitude.
        Vec3d axis{rng.normal(), rng.normal(), rng.normal()};
        axis = axis.normalized();
        const auto delta = slambench::math::expSe3<double>(
            Vec3d{rng.normal(), rng.normal(), rng.normal()}
                    .normalized() *
                p.translation,
            axis * p.rotation);
        Mat4f pose = delta.cast<float>() * gt_pose;

        WorkCounts counts;
        const TrackingStats stats =
            icpTrack(pose, pyramid, ref_vertex, ref_normal, k,
                     gt_pose, config, counts, nullptr);
        const float pos_err =
            (pose.translationPart() - gt_pose.translationPart())
                .norm();
        if (stats.tracked && pos_err < 0.01f)
            ++recovered;
    }
    EXPECT_GE(recovered, trials - 1)
        << "t=" << p.translation << " r=" << p.rotation;
}

INSTANTIATE_TEST_SUITE_P(
    Magnitudes, IcpConvergence,
    ::testing::Values(Perturbation{0.005, 0.005},
                      Perturbation{0.01, 0.01},
                      Perturbation{0.02, 0.02},
                      Perturbation{0.04, 0.03}));

TEST(IcpResidualVariant, PointToPointAlsoConverges)
{
    SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    spec.renderRgb = false;
    const Sequence sequence = generateSequence(spec);
    const CameraIntrinsics k = sequence.intrinsics;
    const Mat4f gt_pose = sequence.groundTruth.pose(0);

    Image<float> depth;
    mm2metersKernel(depth, sequence.frames[0].depthMm, 1, nullptr);
    Image<Vec3f> vertex_cam, normal_cam, ref_vertex, ref_normal;
    buildMaps(depth, k, vertex_cam, normal_cam);
    toWorld(vertex_cam, normal_cam, gt_pose, ref_vertex, ref_normal);

    KFusionConfig config;
    config.pyramidIterations = {15};
    config.icpResidual = IcpResidual::PointToPoint;
    std::vector<PyramidLevel> pyramid(1);
    pyramid[0].depth = depth;
    pyramid[0].vertex = vertex_cam;
    pyramid[0].normal = normal_cam;
    pyramid[0].intrinsics = k;

    // Small perturbation: p2p should still recover it.
    Mat4f pose = gt_pose;
    pose(0, 3) += 0.01f;
    WorkCounts counts;
    const TrackingStats stats =
        icpTrack(pose, pyramid, ref_vertex, ref_normal, k, gt_pose,
                 config, counts, nullptr);
    EXPECT_TRUE(stats.tracked);
    EXPECT_LT((pose.translationPart() - gt_pose.translationPart())
                  .norm(),
              0.005f);
}

TEST(IcpResidualVariant, FormulationsDifferPerPixel)
{
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    spec.renderRgb = false;
    const Sequence sequence = generateSequence(spec);
    Image<float> depth;
    mm2metersKernel(depth, sequence.frames[0].depthMm, 1, nullptr);
    Image<Vec3f> vertex_cam, normal_cam, ref_vertex, ref_normal;
    buildMaps(depth, sequence.intrinsics, vertex_cam, normal_cam);
    const Mat4f gt = sequence.groundTruth.pose(0);
    toWorld(vertex_cam, normal_cam, gt, ref_vertex, ref_normal);

    Mat4f off = gt;
    off(1, 3) += 0.02f;
    Image<TrackData> plane, point;
    trackKernel(plane, vertex_cam, normal_cam, off, ref_vertex,
                ref_normal, sequence.intrinsics, gt, 0.1f, 0.8f,
                nullptr, IcpResidual::PointToPlane);
    trackKernel(point, vertex_cam, normal_cam, off, ref_vertex,
                ref_normal, sequence.intrinsics, gt, 0.1f, 0.8f,
                nullptr, IcpResidual::PointToPoint);
    size_t differing = 0;
    size_t unit_jacobians = 0;
    for (size_t i = 0; i < plane.size(); ++i) {
        if (plane[i].result != TrackResult::Ok)
            continue;
        differing += std::abs(point[i].error - plane[i].error) > 1e-6f;
        // Point-to-point jacobians start with a coordinate axis.
        const auto &j = point[i].jacobian;
        const float v_norm_sq =
            j[0] * j[0] + j[1] * j[1] + j[2] * j[2];
        EXPECT_NEAR(v_norm_sq, 1.0f, 1e-5f);
        unit_jacobians +=
            (j[0] == 1.0f) + (j[1] == 1.0f) + (j[2] == 1.0f);
    }
    EXPECT_GT(differing, 0u);
    EXPECT_GT(unit_jacobians, 0u);
}

TEST(IcpEdgeCases, ZeroIterationsReportsTracked)
{
    // Open-loop mode: no iterations configured anywhere.
    KFusionConfig config;
    config.pyramidIterations = {0};
    std::vector<PyramidLevel> pyramid(1);
    pyramid[0].vertex.resize(8, 8);
    pyramid[0].normal.resize(8, 8);
    pyramid[0].intrinsics = CameraIntrinsics::fromFov(8, 8, 1.0f);

    Image<Vec3f> ref_v(8, 8), ref_n(8, 8);
    Mat4f pose;
    WorkCounts counts;
    const TrackingStats stats =
        icpTrack(pose, pyramid, ref_v, ref_n, pyramid[0].intrinsics,
                 Mat4f{}, config, counts, nullptr);
    EXPECT_TRUE(stats.tracked);
    EXPECT_EQ(stats.iterations, 0);
}

TEST(IcpEdgeCases, EmptyReferenceFailsGates)
{
    // Valid live data but an empty (all-invalid) reference: no
    // correspondences, so the pose must be rejected and unchanged.
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    spec.renderRgb = false;
    const Sequence sequence = generateSequence(spec);
    Image<float> depth;
    mm2metersKernel(depth, sequence.frames[0].depthMm, 1, nullptr);

    KFusionConfig config;
    config.pyramidIterations = {3};
    std::vector<PyramidLevel> pyramid(1);
    pyramid[0].depth = depth;
    pyramid[0].intrinsics = sequence.intrinsics;
    buildMaps(depth, sequence.intrinsics, pyramid[0].vertex,
              pyramid[0].normal);

    Image<Vec3f> ref_v(40, 30), ref_n(40, 30); // all zeros
    const Mat4f original = sequence.groundTruth.pose(0);
    Mat4f pose = original;
    WorkCounts counts;
    const TrackingStats stats = icpTrack(
        pose, pyramid, ref_v, ref_n, sequence.intrinsics,
        original, config, counts, nullptr);
    EXPECT_FALSE(stats.tracked);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(pose(r, c), original(r, c));
}

TEST(IcpEdgeCases, TrackDataExported)
{
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    spec.renderRgb = false;
    const Sequence sequence = generateSequence(spec);
    Image<float> depth;
    mm2metersKernel(depth, sequence.frames[0].depthMm, 1, nullptr);

    KFusionConfig config;
    config.pyramidIterations = {2};
    std::vector<PyramidLevel> pyramid(1);
    pyramid[0].depth = depth;
    pyramid[0].intrinsics = sequence.intrinsics;
    buildMaps(depth, sequence.intrinsics, pyramid[0].vertex,
              pyramid[0].normal);

    Image<Vec3f> ref_v, ref_n;
    toWorld(pyramid[0].vertex, pyramid[0].normal,
            sequence.groundTruth.pose(0), ref_v, ref_n);

    Mat4f pose = sequence.groundTruth.pose(0);
    WorkCounts counts;
    Image<TrackData> exported;
    icpTrack(pose, pyramid, ref_v, ref_n, sequence.intrinsics,
             sequence.groundTruth.pose(0), config, counts, nullptr,
             &exported);
    EXPECT_EQ(exported.width(), 40u);
    EXPECT_EQ(exported.height(), 30u);
}

TEST(IcpWork, CountsTrackReduceSolve)
{
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    spec.renderRgb = false;
    const Sequence sequence = generateSequence(spec);
    Image<float> depth;
    mm2metersKernel(depth, sequence.frames[0].depthMm, 1, nullptr);

    KFusionConfig config;
    config.pyramidIterations = {3};
    config.icpThreshold = 0.0f; // never early-exit
    std::vector<PyramidLevel> pyramid(1);
    pyramid[0].depth = depth;
    pyramid[0].intrinsics = sequence.intrinsics;
    buildMaps(depth, sequence.intrinsics, pyramid[0].vertex,
              pyramid[0].normal);
    Image<Vec3f> ref_v, ref_n;
    toWorld(pyramid[0].vertex, pyramid[0].normal,
            sequence.groundTruth.pose(0), ref_v, ref_n);

    Mat4f pose = sequence.groundTruth.pose(0);
    WorkCounts counts;
    icpTrack(pose, pyramid, ref_v, ref_n, sequence.intrinsics,
             sequence.groundTruth.pose(0), config, counts, nullptr);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Track),
                     3.0 * 40.0 * 30.0);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Reduce),
                     3.0 * 40.0 * 30.0);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Solve), 3.0);
}

} // namespace
