/**
 * @file
 * Tests for the serve subsystem: admission-control hysteresis (pure
 * tick-by-tick logic), tenant sessions (stream wrap, per-tenant
 * labeled metrics), and the stream scheduler (batch scheduling,
 * stall-injected load shedding, graceful drain).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "devices/fleet.hpp"
#include "kfusion/volume.hpp"
#include "serve/admission.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "support/metrics.hpp"
#include "support/slo_watchdog.hpp"
#include "support/telemetry_server.hpp"
#include "support/trace.hpp"

namespace {

using namespace slambench;
namespace trace = slambench::support::trace;
using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::LoadSignals;

// --- AdmissionController ----------------------------------------

AdmissionOptions
testOptions()
{
    AdmissionOptions options;
    options.queueHiWatermark = 10;
    options.queueLoWatermark = 2;
    options.frameP99TargetSeconds = 0.0;
    options.clearAfterHealthyTicks = 3;
    return options;
}

LoadSignals
quiet()
{
    return LoadSignals{};
}

TEST(AdmissionController, StartsClearAndStaysClearWhenQuiet)
{
    AdmissionController admission(testOptions());
    EXPECT_FALSE(admission.shedding());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(admission.onTick(quiet()));
    EXPECT_EQ(admission.engageCount(), 0u);
}

TEST(AdmissionController, EngagesOnQueueDepthAndClearsWithHysteresis)
{
    AdmissionController admission(testOptions());

    LoadSignals hot;
    hot.peakQueueDepth = 10; // == hi watermark
    EXPECT_TRUE(admission.onTick(hot));
    EXPECT_TRUE(admission.shedding());
    EXPECT_EQ(admission.lastEngageReason(), "queue_depth");
    EXPECT_EQ(admission.engageCount(), 1u);

    // Between the watermarks: neither engages nor counts as healthy.
    LoadSignals middling;
    middling.peakQueueDepth = 5;
    EXPECT_TRUE(admission.onTick(middling));

    // Three consecutive healthy ticks clear; two do not.
    LoadSignals calm;
    calm.peakQueueDepth = 1;
    EXPECT_TRUE(admission.onTick(calm));
    EXPECT_TRUE(admission.onTick(calm));
    EXPECT_TRUE(admission.onTick(middling)); // resets the streak
    EXPECT_TRUE(admission.onTick(calm));
    EXPECT_TRUE(admission.onTick(calm));
    EXPECT_FALSE(admission.onTick(calm));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(admission.clearCount(), 1u);
}

TEST(AdmissionController, PreexistingBreachesAreBaselineNotEngage)
{
    AdmissionController admission(testOptions());
    // First sample carries breaches latched before the controller
    // existed: history, not live overload.
    LoadSignals first;
    first.sloBreaches = 7;
    EXPECT_FALSE(admission.onTick(first));

    // A new breach (delta over the baseline) engages.
    LoadSignals second;
    second.sloBreaches = 8;
    EXPECT_TRUE(admission.onTick(second));
    EXPECT_EQ(admission.lastEngageReason(), "slo_breach");
}

TEST(AdmissionController, EngagesOnSmoothedP99AndClearsUnderTarget)
{
    AdmissionOptions options = testOptions();
    options.frameP99TargetSeconds = 0.100;
    options.p99Smoothing = 1.0; // no smoothing: deterministic ticks
    AdmissionController admission(options);

    LoadSignals slow;
    slow.tickP99Seconds = 0.250;
    EXPECT_TRUE(admission.onTick(slow));
    EXPECT_EQ(admission.lastEngageReason(), "frame_p99");

    // Shed ticks with no completed frames must NOT drag the EWMA
    // down and clear by starvation.
    LoadSignals starved; // tickP99Seconds == 0
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(admission.onTick(starved));

    LoadSignals recovered;
    recovered.tickP99Seconds = 0.020;
    EXPECT_TRUE(admission.onTick(recovered));
    EXPECT_TRUE(admission.onTick(recovered));
    EXPECT_FALSE(admission.onTick(recovered));
}

TEST(AdmissionController, EngagesOnTenantVolumeAndClearsOnRelease)
{
    AdmissionOptions options = testOptions();
    options.maxTenantVolumeBytes = 64ull << 20;
    AdmissionController admission(options);

    LoadSignals lean;
    lean.peakTenantVolumeBytes = (64ull << 20) - 1;
    EXPECT_FALSE(admission.onTick(lean));

    LoadSignals bloated;
    bloated.peakTenantVolumeBytes = 64ull << 20; // == bound
    EXPECT_TRUE(admission.onTick(bloated));
    EXPECT_EQ(admission.lastEngageReason(), "tenant_volume");

    // The volume only shrinks on an epoch wrap, so shedding must
    // hold while the peak stays over the bound even if the queue and
    // p99 look healthy.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(admission.onTick(bloated));

    // Epoch wrap released the blocks: peak back under the bound
    // clears after the usual healthy streak.
    EXPECT_TRUE(admission.onTick(lean));
    EXPECT_TRUE(admission.onTick(lean));
    EXPECT_FALSE(admission.onTick(lean));
    EXPECT_FALSE(admission.shedding());
    EXPECT_EQ(admission.clearCount(), 1u);
}

TEST(AdmissionController, VolumeBoundDisabledByDefault)
{
    AdmissionController admission(testOptions());
    LoadSignals huge;
    huge.peakTenantVolumeBytes = ~0ull;
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(admission.onTick(huge));
    EXPECT_EQ(admission.engageCount(), 0u);
}

// --- TenantSession ----------------------------------------------

serve::TenantConfig
tinyTenant(const std::string &id)
{
    serve::TenantConfig tenant;
    tenant.id = id;
    tenant.device = devices::mobileFleet(8, 2018)[0];
    tenant.sequence.numFrames = 3;
    tenant.sequence.width = 160;
    tenant.sequence.height = 120;
    tenant.sequence.renderRgb = false;
    tenant.kfusion.volumeResolution = 64;
    tenant.kfusion.computeSizeRatio = 2;
    return tenant;
}

TEST(TenantSession, ProcessesWrapsAndCountsLabeledMetrics)
{
    auto &registry = support::metrics::Registry::instance();
    const std::string id = "unittest-a";
    const std::string frames_name =
        support::telemetry::labeledMetricName("serve.tenant.frames",
                                              "tenant", id);
    const uint64_t frames_before =
        registry.counter(frames_name).value();

    serve::TenantSession session(tinyTenant(id));
    EXPECT_EQ(session.streamLength(), 3u);
    EXPECT_EQ(session.epochs(), 1u);

    // One full stream plus one frame: wraps into a second epoch.
    for (int i = 0; i < 4; ++i) {
        const serve::TenantFrameStats stats = session.processNext();
        EXPECT_EQ(stats.frame, static_cast<uint64_t>(i));
        EXPECT_GT(stats.wallSeconds, 0.0);
        EXPECT_GT(stats.deviceSeconds, 0.0);
        EXPECT_GT(stats.deviceJoules, 0.0);
    }
    EXPECT_EQ(session.framesProcessed(), 4u);
    EXPECT_EQ(session.epochs(), 2u);

    // The tenant reports its volume footprint (dense backend: the
    // constant res^3 voxel array) and mirrors it to a labeled gauge.
    const uint64_t dense_bytes = 64ull * 64 * 64 *
                                 sizeof(kfusion::Voxel);
    EXPECT_EQ(session.volumeBytes(), dense_bytes);
    const std::string volume_name =
        support::telemetry::labeledMetricName(
            "serve.tenant.volume_bytes", "tenant", id);
    EXPECT_EQ(registry.gauge(volume_name).value(),
              static_cast<double>(dense_bytes));

    session.noteShed();
    EXPECT_EQ(session.framesShed(), 1u);

    EXPECT_EQ(registry.counter(frames_name).value() - frames_before,
              4u);
    // The labeled series renders with the tenant label attached.
    std::ostringstream out;
    support::telemetry::renderPrometheus(out);
    EXPECT_NE(out.str().find("serve_tenant_frames_total{tenant=\"" +
                             id + "\"} 4"),
              std::string::npos);
}

// Defined in the StreamScheduler section below.
std::vector<std::unique_ptr<serve::TenantSession>>
tinyFleet(size_t count, const char *prefix);

TEST(TenantSession, SloBreachingFrameAlwaysRetainsRequestTrace)
{
    // Arm request tracing with flag-only retention (rate 0) and an
    // SLO threshold every frame breaches: tail-based retention must
    // keep every frame's trace even though sampling would drop all.
    auto &watchdog = support::telemetry::SloWatchdog::instance();
    support::telemetry::SloThresholds thresholds;
    thresholds.frameP99Seconds = 1e-9;
    watchdog.configure(thresholds);

    trace::RequestTraceOptions trace_options;
    trace_options.sampleRate = 0.0;
    trace::RequestTracer::instance().configure(trace_options);
    auto &tracer = trace::RequestTracer::instance();

    serve::SchedulerOptions options;
    options.threads = 2;
    serve::StreamScheduler scheduler(tinyFleet(2, "traced-"),
                                     options);
    scheduler.runTick();
    scheduler.runTick();

    EXPECT_EQ(tracer.tracesStarted(), 4u);
    EXPECT_EQ(tracer.tracesRetained(), 4u);

    for (const auto &session : scheduler.sessions()) {
        // Every retained trace is retrievable and complete: the
        // synthesized root covers queue-wait plus the kernel spans,
        // and each child lies inside the root's interval.
        bool tenant_seen = false;
        for (const trace::RetainedTrace &retained :
             tracer.retainedSnapshot()) {
            if (retained.tenant != session->id())
                continue;
            tenant_seen = true;
            EXPECT_TRUE(retained.retention.sloBreach);
            trace::RetainedTrace fetched;
            ASSERT_TRUE(
                tracer.findTrace(retained.traceId, &fetched));
            ASSERT_FALSE(fetched.spans.empty());
            const trace::RequestSpan &root = fetched.spans.back();
            EXPECT_STREQ(root.name, "frame");
            bool queue_wait = false;
            bool kernel_span = false;
            for (const trace::RequestSpan &span : fetched.spans) {
                if (span.name &&
                    std::string(span.name) == "queue_wait")
                    queue_wait = true;
                if (span.cat == trace::Category::Kernel)
                    kernel_span = true;
                EXPECT_GE(span.startNs, root.startNs);
                EXPECT_LE(span.endNs, root.endNs);
                EXPECT_LE(span.startNs, span.endNs);
            }
            EXPECT_TRUE(queue_wait) << retained.tenant;
            EXPECT_TRUE(kernel_span) << retained.tenant;
        }
        EXPECT_TRUE(tenant_seen) << session->id();
        // And the tenant's latency histogram carries the retained
        // trace as its exemplar.
        trace::TraceExemplar exemplar;
        ASSERT_TRUE(tracer.exemplarFor(
            support::telemetry::labeledMetricName(
                "serve.tenant.frame_seconds", "tenant",
                session->id()),
            &exemplar));
        trace::RetainedTrace exemplar_trace;
        EXPECT_TRUE(
            tracer.findTrace(exemplar.traceId, &exemplar_trace));
    }

    trace::RequestTracer::instance().disarm();
    trace::RequestTracer::instance().clear();
    watchdog.reset();
    watchdog.configure(support::telemetry::SloThresholds{});
}

// --- StreamScheduler --------------------------------------------

std::vector<std::unique_ptr<serve::TenantSession>>
tinyFleet(size_t count, const char *prefix)
{
    std::vector<std::unique_ptr<serve::TenantSession>> sessions;
    for (size_t i = 0; i < count; ++i) {
        serve::TenantConfig tenant =
            tinyTenant(prefix + std::to_string(i));
        tenant.sequence.seed = 42 + i;
        sessions.push_back(
            std::make_unique<serve::TenantSession>(tenant));
    }
    return sessions;
}

TEST(StreamScheduler, TicksEveryTenantOncePerTickAndReports)
{
    serve::SchedulerOptions options;
    options.threads = 2;
    serve::StreamScheduler scheduler(tinyFleet(3, "sched-a"),
                                     options);

    const serve::TickReport first = scheduler.runTick();
    EXPECT_EQ(first.tick, 1u);
    EXPECT_EQ(first.framesProcessed, 3u);
    EXPECT_EQ(first.framesShed, 0u);
    EXPECT_FALSE(first.shedding);

    const serve::TickReport second = scheduler.runTick();
    EXPECT_EQ(second.tick, 2u);
    EXPECT_EQ(scheduler.framesProcessed(), 6u);
    for (const auto &session : scheduler.sessions())
        EXPECT_EQ(session->framesProcessed(), 2u);
    EXPECT_GT(scheduler.aggregateFrameP99Seconds(), 0.0);
}

TEST(StreamScheduler, RunLoopHonorsDrainRequest)
{
    serve::SchedulerOptions options;
    options.threads = 2;
    serve::StreamScheduler scheduler(tinyFleet(2, "sched-b"),
                                     options);

    scheduler.requestDrain();
    // Drain already requested: the loop must not start another tick
    // even with an unbounded budget.
    EXPECT_EQ(scheduler.runLoop(/*max_ticks=*/0), 0u);
    EXPECT_TRUE(scheduler.drainRequested());
    EXPECT_EQ(scheduler.framesProcessed(), 0u);
}

TEST(StreamScheduler, StallInjectionTripsWatchdogAndShedsThenClears)
{
    auto &watchdog = support::telemetry::SloWatchdog::instance();

    // Calibrate: measure a normal tick with the watchdog disabled
    // (sanitizer builds run 10-20x slower, and a hard-coded stall
    // SLO would latch on ordinary frame work before the injected
    // stall — poisoning the controller's breach baseline).
    watchdog.configure(support::telemetry::SloThresholds{});
    double max_tick_seconds = 0.0;
    {
        serve::SchedulerOptions calibration;
        calibration.threads = 2;
        serve::StreamScheduler warmup(tinyFleet(4, "sched-cal"),
                                      calibration);
        for (int i = 0; i < 2; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            warmup.runTick();
            max_tick_seconds = std::max(
                max_tick_seconds,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
    }
    const double stall_slo_seconds =
        std::max(0.050, 4.0 * max_tick_seconds);

    support::telemetry::SloThresholds thresholds;
    thresholds.poolQueueStallSeconds = stall_slo_seconds;
    watchdog.configure(thresholds);

    serve::SchedulerOptions options;
    options.threads = 2;
    options.stallAtTick = 2;
    // 3x the stall SLO: a real latched breach, whatever the host.
    options.stallMs = 3.0 * stall_slo_seconds * 1e3;
    // Watermarks sized so only the breach engages (the hi watermark
    // is far above what 4 tenants can queue) and the shed batches
    // can't block clearing.
    options.admission.queueHiWatermark = 1000;
    options.admission.queueLoWatermark = 100;
    options.admission.clearAfterHealthyTicks = 2;
    serve::StreamScheduler scheduler(tinyFleet(4, "sched-c"),
                                     options);

    bool engaged = false;
    bool cleared_after_engage = false;
    for (int i = 0; i < 10; ++i) {
        const serve::TickReport report = scheduler.runTick();
        if (report.shedding)
            engaged = true;
        if (engaged && !report.shedding)
            cleared_after_engage = true;
    }
    EXPECT_TRUE(engaged)
        << "stall-induced SLO breach never engaged shedding";
    EXPECT_TRUE(cleared_after_engage)
        << "shedding never cleared after the stall drained";
    EXPECT_GE(scheduler.admission().engageCount(), 1u);
    EXPECT_GE(scheduler.admission().clearCount(), 1u);
    EXPECT_GT(scheduler.framesShed(), 0u);
    EXPECT_EQ(scheduler.admission().lastEngageReason(),
              "slo_breach");

    // The breach stays latched for post-incident scrapes even though
    // admission control has cleared.
    EXPECT_FALSE(watchdog.healthy());
    watchdog.reset();
}

} // namespace
