/**
 * @file
 * Tests for the image-domain preprocessing kernels, including the
 * Sequential-vs-Threaded equivalence property.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "kfusion/backend.hpp"
#include "kfusion/kernels.hpp"
#include "support/rng.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::math::CameraIntrinsics;
using slambench::math::Vec3f;
using slambench::support::Image;
using slambench::support::Rng;
using slambench::support::ThreadPool;

Image<uint16_t>
randomDepthMm(size_t w, size_t h, uint64_t seed, double hole_rate = 0.1)
{
    Rng rng(seed);
    Image<uint16_t> img(w, h);
    for (size_t i = 0; i < img.size(); ++i) {
        img[i] = rng.bernoulli(hole_rate)
                     ? 0
                     : static_cast<uint16_t>(
                           rng.uniformInt(int64_t{500}, int64_t{4000}));
    }
    return img;
}

// --- mm2meters ---

TEST(Mm2Meters, ConvertsUnits)
{
    Image<uint16_t> in(4, 4, uint16_t{1500});
    Image<float> out;
    mm2metersKernel(out, in, 1, nullptr);
    ASSERT_EQ(out.width(), 4u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], 1.5f);
}

TEST(Mm2Meters, SubsamplesByRatio)
{
    Image<uint16_t> in(8, 8);
    for (size_t y = 0; y < 8; ++y)
        for (size_t x = 0; x < 8; ++x)
            in(x, y) = static_cast<uint16_t>(1000 + 10 * x + 100 * y);
    Image<float> out;
    mm2metersKernel(out, in, 2, nullptr);
    ASSERT_EQ(out.width(), 4u);
    ASSERT_EQ(out.height(), 4u);
    // Pixel (1,1) of the output samples input (2,2).
    EXPECT_FLOAT_EQ(out(1, 1), (1000 + 20 + 200) / 1000.0f);
}

TEST(Mm2Meters, ZeroStaysInvalid)
{
    Image<uint16_t> in(2, 2, uint16_t{0});
    Image<float> out;
    mm2metersKernel(out, in, 1, nullptr);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], 0.0f);
}

// --- bilateral filter ---

TEST(Bilateral, SmoothsGaussianNoise)
{
    Rng rng(1);
    Image<float> in(64, 64);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = 2.0f + static_cast<float>(rng.normal(0.0, 0.01));
    Image<float> out;
    bilateralFilterKernel(out, in, 2, 4.0f, 0.1f, nullptr);

    double var_in = 0.0, var_out = 0.0;
    for (size_t i = 0; i < in.size(); ++i) {
        var_in += (in[i] - 2.0f) * (in[i] - 2.0f);
        var_out += (out[i] - 2.0f) * (out[i] - 2.0f);
    }
    EXPECT_LT(var_out, var_in / 3.0);
}

TEST(Bilateral, PreservesSharpEdges)
{
    // Step edge: left half 1 m, right half 3 m (>> e_delta).
    Image<float> in(32, 8);
    for (size_t y = 0; y < 8; ++y)
        for (size_t x = 0; x < 32; ++x)
            in(x, y) = x < 16 ? 1.0f : 3.0f;
    Image<float> out;
    bilateralFilterKernel(out, in, 2, 4.0f, 0.1f, nullptr);
    EXPECT_NEAR(out(15, 4), 1.0f, 1e-4f);
    EXPECT_NEAR(out(16, 4), 3.0f, 1e-4f);
}

TEST(Bilateral, InvalidPixelsStayInvalidAndDoNotBleed)
{
    Image<float> in(16, 16, 2.0f);
    in(8, 8) = 0.0f;
    Image<float> out;
    bilateralFilterKernel(out, in, 2, 4.0f, 0.1f, nullptr);
    EXPECT_FLOAT_EQ(out(8, 8), 0.0f);
    // Neighbors should remain exactly 2 (hole contributes nothing).
    EXPECT_NEAR(out(7, 8), 2.0f, 1e-5f);
}

TEST(Bilateral, RadiusZeroIsIdentity)
{
    Rng rng(2);
    Image<float> in(8, 8);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<float>(rng.uniform(1.0, 3.0));
    Image<float> out;
    bilateralFilterKernel(out, in, 0, 4.0f, 0.1f, nullptr);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

// --- half sample ---

TEST(HalfSample, HalvesDimensions)
{
    Image<float> in(16, 12, 2.0f);
    Image<float> out;
    halfSampleRobustKernel(out, in, 0.3f, nullptr);
    EXPECT_EQ(out.width(), 8u);
    EXPECT_EQ(out.height(), 6u);
    EXPECT_FLOAT_EQ(out(3, 3), 2.0f);
}

TEST(HalfSample, RejectsOutliersInBlock)
{
    Image<float> in(4, 4, 2.0f);
    in(1, 1) = 10.0f; // outlier within block (0,0)
    Image<float> out;
    halfSampleRobustKernel(out, in, 0.3f, nullptr);
    // The outlier is farther than e_delta from the reference (2.0),
    // so the block average excludes it.
    EXPECT_NEAR(out(0, 0), 2.0f, 1e-5f);
}

TEST(HalfSample, InvalidReferenceGivesInvalidOutput)
{
    Image<float> in(4, 4, 2.0f);
    in(0, 0) = 0.0f;
    Image<float> out;
    halfSampleRobustKernel(out, in, 0.3f, nullptr);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
}

// --- depth2vertex ---

TEST(Depth2Vertex, BackProjectsCenterPixel)
{
    const auto k = CameraIntrinsics::fromFov(64, 48, 1.0f);
    Image<float> depth(64, 48, 2.0f);
    Image<Vec3f> vertex;
    depth2vertexKernel(vertex, depth, k, nullptr);
    // Pixel at the principal point back-projects onto the optical
    // axis.
    const Vec3f center = vertex(31, 23); // +0.5 offset ~ cx,cy
    EXPECT_NEAR(center.z, 2.0f, 1e-5f);
    EXPECT_NEAR(center.x, 0.0f, 0.05f);
}

TEST(Depth2Vertex, InvalidDepthGivesZeroVertex)
{
    const auto k = CameraIntrinsics::fromFov(8, 8, 1.0f);
    Image<float> depth(8, 8, 0.0f);
    Image<Vec3f> vertex;
    depth2vertexKernel(vertex, depth, k, nullptr);
    for (size_t i = 0; i < vertex.size(); ++i)
        EXPECT_EQ(vertex[i].squaredNorm(), 0.0f);
}

// --- vertex2normal ---

TEST(Vertex2Normal, FlatPlaneGivesConstantNormal)
{
    // A fronto-parallel plane at z=2: normals must be (0,0,-1)
    // (toward the camera).
    const auto k = CameraIntrinsics::fromFov(32, 32, 1.0f);
    Image<float> depth(32, 32, 2.0f);
    Image<Vec3f> vertex, normal;
    depth2vertexKernel(vertex, depth, k, nullptr);
    vertex2normalKernel(normal, vertex, nullptr);
    for (size_t y = 4; y < 28; ++y) {
        for (size_t x = 4; x < 28; ++x) {
            const Vec3f n = normal(x, y);
            EXPECT_NEAR(n.z, -1.0f, 1e-3f);
            EXPECT_NEAR(n.norm(), 1.0f, 1e-5f);
        }
    }
}

TEST(Vertex2Normal, BorderAndInvalidAreZero)
{
    const auto k = CameraIntrinsics::fromFov(8, 8, 1.0f);
    Image<float> depth(8, 8, 2.0f);
    depth(3, 3) = 0.0f;
    Image<Vec3f> vertex, normal;
    depth2vertexKernel(vertex, depth, k, nullptr);
    vertex2normalKernel(normal, vertex, nullptr);
    EXPECT_EQ(normal(7, 7).squaredNorm(), 0.0f); // border
    EXPECT_EQ(normal(3, 3).squaredNorm(), 0.0f); // invalid center
    EXPECT_EQ(normal(2, 3).squaredNorm(), 0.0f); // neighbor of hole
}

// --- Sequential == Threaded (property over kernels) ---

class ImplEquivalence : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ImplEquivalence, AllKernelsMatch)
{
    const uint64_t seed = GetParam();
    ThreadPool pool(3);
    const auto k = CameraIntrinsics::fromFov(40, 30, 1.0f);
    const Image<uint16_t> raw = randomDepthMm(40, 30, seed);

    Image<float> d_seq, d_par;
    mm2metersKernel(d_seq, raw, 1, nullptr);
    mm2metersKernel(d_par, raw, 1, &pool);
    for (size_t i = 0; i < d_seq.size(); ++i)
        ASSERT_FLOAT_EQ(d_seq[i], d_par[i]);

    Image<float> f_seq, f_par;
    bilateralFilterKernel(f_seq, d_seq, 2, 4.0f, 0.1f, nullptr);
    bilateralFilterKernel(f_par, d_seq, 2, 4.0f, 0.1f, &pool);
    for (size_t i = 0; i < f_seq.size(); ++i)
        ASSERT_FLOAT_EQ(f_seq[i], f_par[i]);

    Image<float> h_seq, h_par;
    halfSampleRobustKernel(h_seq, f_seq, 0.3f, nullptr);
    halfSampleRobustKernel(h_par, f_seq, 0.3f, &pool);
    for (size_t i = 0; i < h_seq.size(); ++i)
        ASSERT_FLOAT_EQ(h_seq[i], h_par[i]);

    Image<Vec3f> v_seq, v_par;
    depth2vertexKernel(v_seq, f_seq, k, nullptr);
    depth2vertexKernel(v_par, f_seq, k, &pool);
    for (size_t i = 0; i < v_seq.size(); ++i)
        ASSERT_EQ(v_seq[i], v_par[i]);

    Image<Vec3f> n_seq, n_par;
    vertex2normalKernel(n_seq, v_seq, nullptr);
    vertex2normalKernel(n_par, v_seq, &pool);
    for (size_t i = 0; i < n_seq.size(); ++i)
        ASSERT_EQ(n_seq[i], n_par[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

TEST(WorkHelpers, BilateralItemsPerPixel)
{
    EXPECT_DOUBLE_EQ(bilateralItemsPerPixel(2), 25.0);
    EXPECT_DOUBLE_EQ(bilateralItemsPerPixel(0), 1.0);
}

// A registerable backend that forwards everything to the scalar
// reference; only its name differs. Registered instances must
// outlive the process (the registry stores raw pointers), hence the
// static storage in the tests below.
class ForwardingBackend : public KernelBackend
{
  public:
    explicit ForwardingBackend(const char *name) : name_(name) {}

    const char *name() const override { return name_; }
    const char *description() const override
    {
        return "scalar forwarder (test)";
    }
    void integrateColumn(const IntegrateContext &ctx, Voxel *column,
                         int z_begin, int z_end,
                         Vec3f pos) const override
    {
        scalarKernelBackend().integrateColumn(ctx, column, z_begin,
                                              z_end, pos);
    }
    Vec3f grad(const TsdfVolume &volume,
                     const Vec3f &p) const override
    {
        return scalarKernelBackend().grad(volume, p);
    }
    void castRays(const TsdfVolume &volume, const Vec3f &origin,
                  const Vec3f *dirs, size_t count,
                  const RaycastParams &params,
                  RayHit *hits) const override
    {
        scalarKernelBackend().castRays(volume, origin, dirs, count,
                                       params, hits);
    }
    ReductionResult
    reduceRange(const Image<TrackData> &track_data,
                size_t begin, size_t end) const override
    {
        return scalarKernelBackend().reduceRange(track_data, begin,
                                                 end);
    }

  private:
    const char *name_;
};

TEST(BackendRegistry, BuiltinsAreRegistered)
{
    const std::vector<std::string> names = kernelBackendNames();
    ASSERT_GE(names.size(), 3u);
    EXPECT_EQ(names[0], "scalar");
    EXPECT_EQ(names[1], "simd");
    EXPECT_EQ(names[2], "mixed");
    EXPECT_EQ(findKernelBackend("scalar"), &scalarKernelBackend());
    EXPECT_NE(findKernelBackend("simd"), nullptr);
    EXPECT_NE(findKernelBackend("mixed"), nullptr);
}

TEST(BackendRegistry, RejectsInvalidRegistrations)
{
    EXPECT_FALSE(registerKernelBackend(nullptr));

    static const ForwardingBackend empty_name("");
    EXPECT_FALSE(registerKernelBackend(&empty_name));

    // "auto" is a resolver keyword, never a registered name.
    static const ForwardingBackend reserved("auto");
    EXPECT_FALSE(registerKernelBackend(&reserved));
    EXPECT_EQ(findKernelBackend("auto"), nullptr);

    // Duplicates of a built-in are rejected, not replaced.
    static const ForwardingBackend shadow("scalar");
    EXPECT_FALSE(registerKernelBackend(&shadow));
    EXPECT_EQ(findKernelBackend("scalar"), &scalarKernelBackend());
}

TEST(BackendRegistry, RegistersAndRejectsDuplicateOfNewBackend)
{
    static const ForwardingBackend first("test-forwarder");
    static const ForwardingBackend second("test-forwarder");
    ASSERT_TRUE(registerKernelBackend(&first));
    EXPECT_FALSE(registerKernelBackend(&second));
    EXPECT_EQ(findKernelBackend("test-forwarder"), &first);

    // Registered names become valid --backend values immediately.
    std::string error;
    EXPECT_EQ(resolveKernelBackend("test-forwarder", &error), &first);
    const std::vector<std::string> names = kernelBackendNames();
    EXPECT_NE(std::find(names.begin(), names.end(),
                        std::string("test-forwarder")),
              names.end());
}

TEST(BackendRegistry, UnknownBackendErrorsCleanly)
{
    std::string error;
    EXPECT_EQ(resolveKernelBackend("no-such-backend", &error),
              nullptr);
    EXPECT_NE(error.find("no-such-backend"), std::string::npos);
    // The message lists every valid choice.
    EXPECT_NE(error.find("auto"), std::string::npos);
    EXPECT_NE(error.find("scalar"), std::string::npos);
    EXPECT_NE(error.find("simd"), std::string::npos);
}

TEST(BackendRegistry, AutoResolvesDeterministically)
{
    const KernelBackend *first = resolveKernelBackend("auto");
    const KernelBackend *second = resolveKernelBackend("auto");
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first, second);

    // "auto" dispatches by CPUID: the per-kernel mixed composition
    // iff the AVX2 flavor actually runs on this host (the pure simd
    // backend is slower than scalar at integrate), scalar otherwise.
    const char *expected =
        simdBackendIsAccelerated() ? "mixed" : "scalar";
    EXPECT_STREQ(first->name(), expected);
    EXPECT_EQ(first, findKernelBackend(expected));
}

TEST(BackendRegistry, MixedBackendDispatchesPerKernel)
{
    const KernelBackend *mixed = findKernelBackend("mixed");
    const KernelBackend *simd = findKernelBackend("simd");
    ASSERT_NE(mixed, nullptr);
    ASSERT_NE(simd, nullptr);
    const KernelBackend &scalar = scalarKernelBackend();

    // The composition picks, per kernel, the constituent with the
    // larger modelSpeedup; its own modelSpeedup reports the pick.
    for (KernelId id :
         {KernelId::Integrate, KernelId::Raycast,
          KernelId::RenderVolume, KernelId::Reduce}) {
        const double best = std::max(scalar.modelSpeedup(id),
                                     simd->modelSpeedup(id));
        EXPECT_EQ(mixed->modelSpeedup(id), best)
            << "kernel id " << static_cast<int>(id);
    }

    if (simdBackendIsAccelerated()) {
        // On AVX2 hosts the simd integrate models a slowdown (0.80),
        // so mixed must fall back to the scalar column sweep while
        // keeping the vector speedups everywhere else.
        EXPECT_LT(simd->modelSpeedup(KernelId::Integrate), 1.0);
        EXPECT_EQ(mixed->modelSpeedup(KernelId::Integrate), 1.0);
        EXPECT_GT(mixed->modelSpeedup(KernelId::Raycast), 1.0);
        EXPECT_GT(mixed->modelSpeedup(KernelId::Reduce), 1.0);
    } else {
        // Portable fallback: both constituents model 1.0 everywhere.
        EXPECT_EQ(mixed->modelSpeedup(KernelId::Integrate), 1.0);
        EXPECT_EQ(mixed->modelSpeedup(KernelId::Raycast), 1.0);
    }
}

TEST(BackendRegistry, OrdinalRoundTrip)
{
    EXPECT_EQ(kernelBackendOrdinal("scalar"), 0.0);
    EXPECT_EQ(kernelBackendOrdinal("simd"), 1.0);
    EXPECT_EQ(kernelBackendOrdinal("mixed"), 2.0);
    EXPECT_STREQ(kernelBackendFromOrdinal(0.0), "scalar");
    EXPECT_STREQ(kernelBackendFromOrdinal(1.0), "simd");
    EXPECT_STREQ(kernelBackendFromOrdinal(2.0), "mixed");
    // Unknown ordinals decode to the scalar reference so a stray DSE
    // point can never crash a run.
    EXPECT_STREQ(kernelBackendFromOrdinal(7.0), "scalar");
    for (const std::string name : {"scalar", "simd", "mixed"})
        EXPECT_EQ(kernelBackendFromOrdinal(kernelBackendOrdinal(name)),
                  name);
}

} // namespace
