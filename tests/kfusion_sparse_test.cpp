/**
 * @file
 * Unit tests for the hashed-voxel-block TSDF volume: spatial-hash
 * collision handling, pool recycling across reset() epochs,
 * pool-exhaustion behavior, interpolation stencils that straddle
 * block boundaries, memory accounting, and mesh-extraction
 * equivalence with the dense reference.
 *
 * The bit-exactness contract against the dense volume is covered by
 * tests/kfusion_parity_test.cpp (SparseParity/SparseFusedVolume);
 * this file exercises the sparse data structure itself.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "kfusion/mesh.hpp"
#include "kfusion/sparse_volume.hpp"
#include "kfusion/volume.hpp"
#include "math/se3.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::math::CameraIntrinsics;
using slambench::math::Mat4f;
using slambench::math::Vec3f;
using slambench::math::Vec3i;
using slambench::support::Image;
using slambench::support::Rng;
using slambench::support::ThreadPool;

/** Random metric depth with a sprinkling of invalid (0) pixels. */
Image<float>
makeDepth(const CameraIntrinsics &k, uint64_t seed)
{
    Image<float> depth(k.width, k.height);
    Rng rng(seed);
    for (size_t i = 0; i < depth.size(); ++i) {
        depth[i] = rng.uniform(0.0, 1.0) < 0.08
                       ? 0.0f
                       : static_cast<float>(rng.uniform(0.5, 2.5));
    }
    return depth;
}

/** Write one voxel through the block layer, allocating on demand. */
void
setVoxel(SparseTsdfVolume &volume, int x, int y, int z, float tsdf,
         float weight)
{
    const int bs = volume.blockSize();
    const int mask = bs - 1;
    Voxel *block =
        volume.allocateBlock(x / bs, y / bs, z / bs);
    ASSERT_NE(block, nullptr);
    block[(static_cast<size_t>(x & mask) * bs +
           static_cast<size_t>(y & mask)) *
              bs +
          static_cast<size_t>(z & mask)] = Voxel{tsdf, weight};
}

// --- spatial hash ---

TEST(SparseVolume, SpatialHashCollisionsResolveByProbing)
{
    // Find a set of distinct block coordinates whose hashes land on
    // the same table slot, then allocate all of them: linear probing
    // must keep every block addressable, with no overwrites.
    SparseTsdfVolume volume(64, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    const size_t mask = volume.tableSize() - 1;
    const int be = volume.blocksPerEdge();

    // Brute-force the densest table slot over every in-grid block
    // coordinate; with 512 coordinates hashed into the table, some
    // slot collides.
    std::vector<std::vector<Vec3i>> slots(volume.tableSize());
    for (int bx = 0; bx < be; ++bx)
        for (int by = 0; by < be; ++by)
            for (int bz = 0; bz < be; ++bz)
                slots[SparseTsdfVolume::spatialHash(bx, by, bz) &
                      mask]
                    .push_back({bx, by, bz});
    std::vector<Vec3i> colliding;
    for (const auto &slot : slots)
        if (slot.size() > colliding.size())
            colliding = slot;
    ASSERT_GE(colliding.size(), 2u) << "hash never collides on this "
                                       "grid; pick a bigger grid";
    if (colliding.size() > 4)
        colliding.resize(4);

    std::vector<Voxel *> blocks;
    for (const Vec3i &b : colliding) {
        Voxel *data = volume.allocateBlock(b.x, b.y, b.z);
        ASSERT_NE(data, nullptr);
        // Tag the block so lookups can be told apart.
        data[0].tsdf = static_cast<float>(blocks.size());
        blocks.push_back(data);
    }
    EXPECT_EQ(volume.allocatedBlocks(), colliding.size());
    for (size_t i = 0; i < colliding.size(); ++i) {
        const Vec3i &b = colliding[i];
        const Voxel *found = volume.findBlock(b.x, b.y, b.z);
        ASSERT_EQ(found, blocks[i]);
        EXPECT_EQ(found[0].tsdf, static_cast<float>(i));
        // Re-allocation of an existing block returns it unchanged.
        EXPECT_EQ(volume.allocateBlock(b.x, b.y, b.z), blocks[i]);
    }
    EXPECT_EQ(volume.allocatedBlocks(), colliding.size());
}

TEST(SparseVolume, FindMissesReturnNullWithoutAllocating)
{
    SparseTsdfVolume volume(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    EXPECT_EQ(volume.findBlock(0, 0, 0), nullptr);
    EXPECT_EQ(volume.findBlock(3, 3, 3), nullptr);
    EXPECT_EQ(volume.allocatedBlocks(), 0u);
    const Voxel v = volume.voxelAt(5, 5, 5);
    EXPECT_EQ(v.tsdf, 1.0f);
    EXPECT_EQ(v.weight, 0.0f);
}

// --- reset / pool recycling ---

TEST(SparseVolume, ResetRecyclesPoolAndRedefaultsVoxels)
{
    SparseTsdfVolume volume(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    setVoxel(volume, 9, 10, 11, -0.25f, 3.0f);
    ASSERT_EQ(volume.allocatedBlocks(), 1u);
    const uint64_t bytes_before = volume.memoryStats().bytes;

    volume.reset();
    EXPECT_EQ(volume.allocatedBlocks(), 0u);
    EXPECT_EQ(volume.findBlock(1, 1, 1), nullptr);
    EXPECT_EQ(volume.voxelAt(9, 10, 11).tsdf, 1.0f);

    // The same pool slot is re-issued after reset; its voxels must
    // read as fresh defaults, not the previous epoch's contents.
    Voxel *block = volume.allocateBlock(1, 1, 1);
    ASSERT_NE(block, nullptr);
    for (size_t i = 0; i < volume.blockVoxels(); ++i) {
        ASSERT_EQ(block[i].tsdf, 1.0f) << "voxel " << i;
        ASSERT_EQ(block[i].weight, 0.0f);
    }
    // Chunks are recycled, not freed: residency does not grow.
    EXPECT_EQ(volume.memoryStats().bytes, bytes_before);
}

TEST(SparseVolume, ResetInvalidatesLookupCaches)
{
    SparseTsdfVolume volume(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    // Build an observed stencil so a cached interp resolves a block.
    for (int dx = 0; dx < 2; ++dx)
        for (int dy = 0; dy < 2; ++dy)
            for (int dz = 0; dz < 2; ++dz)
                setVoxel(volume, 10 + dx, 10 + dy, 10 + dz, -0.5f,
                         1.0f);
    const Vec3f p = volume.voxelCenter(10, 10, 10) +
                    Vec3f{0.5f, 0.5f, 0.5f} * volume.voxelSize();

    SparseTsdfVolume::LookupCache cache;
    bool valid = false;
    EXPECT_EQ(volume.interpCached(p, valid, cache), -0.5f);
    EXPECT_TRUE(valid);

    // After reset the cached block pointer is stale; the generation
    // check must force a re-lookup that now misses.
    volume.reset();
    valid = true;
    EXPECT_EQ(volume.interpCached(p, valid, cache), 1.0f);
    EXPECT_FALSE(valid);
}

// --- pool exhaustion ---

TEST(SparseVolume, AllocateReturnsNullWhenPoolExhausted)
{
    SparseTsdfVolume volume(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            2);
    EXPECT_EQ(volume.poolCapacity(), 2u);
    Voxel *a = volume.allocateBlock(0, 0, 0);
    Voxel *b = volume.allocateBlock(1, 1, 1);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(volume.allocateBlock(2, 2, 2), nullptr);
    // Resident blocks stay reachable past exhaustion.
    EXPECT_EQ(volume.allocateBlock(0, 0, 0), a);
    EXPECT_EQ(volume.findBlock(1, 1, 1), b);
    EXPECT_EQ(volume.allocatedBlocks(), 2u);

    // reset() returns the capacity for a new epoch.
    volume.reset();
    EXPECT_NE(volume.allocateBlock(2, 2, 2), nullptr);
}

TEST(SparseVolume, ExhaustedIntegrateDropsNewBlocksKeepsFusing)
{
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Image<float> depth = makeDepth(k, 77);

    // Unbounded run establishes how many blocks the frame needs.
    SparseTsdfVolume unbounded(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f},
                               8, 0);
    WorkCounts counts;
    unbounded.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                        nullptr);
    const size_t needed = unbounded.allocatedBlocks();
    ASSERT_GT(needed, 4u);

    // A pool half that size must fill up, drop the overflow, and
    // keep the resident blocks fusing on the next frame.
    const size_t capacity = needed / 2;
    SparseTsdfVolume bounded(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                             capacity);
    bounded.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                      nullptr);
    VolumeMemoryStats stats = bounded.memoryStats();
    EXPECT_EQ(stats.allocatedBlocks, capacity);
    EXPECT_EQ(stats.droppedBlocks, needed - capacity);

    // Resident voxels match the unbounded fusion bit for bit.
    std::vector<Vec3i> resident = bounded.allocatedBlockCoords();
    ASSERT_EQ(resident.size(), capacity);
    const int bs = bounded.blockSize();
    for (const Vec3i &b : resident) {
        for (int x = b.x * bs; x < (b.x + 1) * bs; ++x)
            for (int y = b.y * bs; y < (b.y + 1) * bs; ++y)
                for (int z = b.z * bs; z < (b.z + 1) * bs; ++z) {
                    ASSERT_EQ(bounded.voxelAt(x, y, z).tsdf,
                              unbounded.voxelAt(x, y, z).tsdf)
                        << "voxel (" << x << ", " << y << ", " << z
                        << ")";
                }
    }

    // Second frame: no free blocks remain, so every fresh block is
    // dropped again, but resident weights keep accumulating.
    const Vec3i probe = resident.front();
    float weight_before = -1.0f;
    for (int x = probe.x * bs; x < (probe.x + 1) * bs && weight_before <= 0.0f; ++x)
        for (int y = probe.y * bs; y < (probe.y + 1) * bs && weight_before <= 0.0f; ++y)
            for (int z = probe.z * bs; z < (probe.z + 1) * bs && weight_before <= 0.0f; ++z)
                weight_before =
                    std::max(weight_before,
                             bounded.voxelAt(x, y, z).weight);
    ASSERT_GT(weight_before, 0.0f);
    bounded.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                      nullptr);
    EXPECT_EQ(bounded.allocatedBlocks(), capacity);
    EXPECT_GE(bounded.memoryStats().droppedBlocks,
              needed - capacity);
    float weight_after = 0.0f;
    for (int x = probe.x * bs; x < (probe.x + 1) * bs; ++x)
        for (int y = probe.y * bs; y < (probe.y + 1) * bs; ++y)
            for (int z = probe.z * bs; z < (probe.z + 1) * bs; ++z)
                weight_after =
                    std::max(weight_after,
                             bounded.voxelAt(x, y, z).weight);
    EXPECT_GT(weight_after, weight_before);
}

// --- block-boundary interpolation stencils ---

class BoundaryStencil : public ::testing::Test
{
  protected:
    BoundaryStencil()
        : dense_(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}),
          sparse_(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8, 0)
    {
    }

    /** Mirror one voxel into both volumes. */
    void set(int x, int y, int z, float tsdf, float weight)
    {
        dense_.at(x, y, z) = Voxel{tsdf, weight};
        setVoxel(sparse_, x, y, z, tsdf, weight);
    }

    void expectSameSample(const Vec3f &p)
    {
        bool dv = false, sv = false;
        const float d = dense_.interp(p, dv);
        const float s = sparse_.interp(p, sv);
        ASSERT_EQ(s, d) << "at " << p.x << ", " << p.y << ", "
                        << p.z;
        ASSERT_EQ(sv, dv);
        const Vec3f dg = dense_.grad(p);
        const Vec3f sg = sparse_.grad(p);
        ASSERT_EQ(sg.x, dg.x);
        ASSERT_EQ(sg.y, dg.y);
        ASSERT_EQ(sg.z, dg.z);
    }

    TsdfVolume dense_;
    SparseTsdfVolume sparse_;
};

TEST_F(BoundaryStencil, StencilSpanningBlockFacesMatchesDense)
{
    // Voxels (7, 7, 7) and (8, 8, 8) sit in diagonally adjacent 8^3
    // blocks; a stencil anchored at (7, 7, 7) spans all 8 blocks of
    // the 2x2x2 block neighborhood.
    for (int dx = 0; dx < 2; ++dx)
        for (int dy = 0; dy < 2; ++dy)
            for (int dz = 0; dz < 2; ++dz)
                set(7 + dx, 7 + dy, 7 + dz,
                    -0.125f * static_cast<float>(dx + dy + dz + 1),
                    1.0f + static_cast<float>(dx));
    EXPECT_EQ(sparse_.allocatedBlocks(), 8u);

    SparseTsdfVolume::LookupCache cache;
    Rng rng(3);
    const Vec3f base = dense_.voxelCenter(7, 7, 7);
    for (int i = 0; i < 500; ++i) {
        const Vec3f p =
            base + Vec3f{static_cast<float>(rng.uniform(0.0, 1.0)),
                         static_cast<float>(rng.uniform(0.0, 1.0)),
                         static_cast<float>(rng.uniform(0.0, 1.0))} *
                       dense_.voxelSize();
        expectSameSample(p);
        bool cv = false;
        bool dv = false;
        ASSERT_EQ(sparse_.interpCached(p, cv, cache),
                  dense_.interp(p, dv));
        ASSERT_EQ(cv, dv);
    }
}

TEST_F(BoundaryStencil, PartiallyAllocatedStencilMatchesDense)
{
    // Only one corner of the stencil's block neighborhood is
    // resident: the seven unallocated blocks must contribute the
    // default (+1, unobserved) voxel, exactly like dense voxels the
    // integration never touched.
    set(7, 7, 7, -0.5f, 2.0f);
    EXPECT_EQ(sparse_.allocatedBlocks(), 1u);
    const Vec3f base = dense_.voxelCenter(7, 7, 7);
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const Vec3f p =
            base + Vec3f{static_cast<float>(rng.uniform(0.0, 1.0)),
                         static_cast<float>(rng.uniform(0.0, 1.0)),
                         static_cast<float>(rng.uniform(0.0, 1.0))} *
                       dense_.voxelSize();
        expectSameSample(p);
    }
    // Fully unallocated neighborhoods report invalid, value +1.
    bool valid = true;
    EXPECT_EQ(sparse_.interp(dense_.voxelCenter(24, 24, 24), valid),
              1.0f);
    EXPECT_FALSE(valid);
}

TEST_F(BoundaryStencil, BlockSize16StencilsMatchDense)
{
    SparseTsdfVolume sparse16(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f},
                              16, 0);
    for (int dx = 0; dx < 2; ++dx)
        for (int dy = 0; dy < 2; ++dy)
            for (int dz = 0; dz < 2; ++dz) {
                const float tsdf =
                    -0.0625f * static_cast<float>(dx + 2 * dy + 1);
                set(15 + dx, 15 + dy, 15 + dz, tsdf, 1.0f);
                setVoxel(sparse16, 15 + dx, 15 + dy, 15 + dz, tsdf,
                         1.0f);
            }
    EXPECT_EQ(sparse16.allocatedBlocks(), 8u);
    const Vec3f base = dense_.voxelCenter(15, 15, 15);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const Vec3f p =
            base + Vec3f{static_cast<float>(rng.uniform(0.0, 1.0)),
                         static_cast<float>(rng.uniform(0.0, 1.0)),
                         static_cast<float>(rng.uniform(0.0, 1.0))} *
                       dense_.voxelSize();
        bool dv = false, sv = false;
        const float d = dense_.interp(p, dv);
        const float s = sparse16.interp(p, sv);
        ASSERT_EQ(s, d);
        ASSERT_EQ(sv, dv);
    }
}

// --- memory accounting ---

TEST(SparseVolume, MemoryStatsTrackResidency)
{
    SparseTsdfVolume volume(256, 4.8f,
                            Vec3f{-2.4f, -0.4f, -2.4f}, 8, 0);
    const uint64_t dense_bytes = static_cast<uint64_t>(256) * 256 *
                                 256 * sizeof(Voxel);
    VolumeMemoryStats stats = volume.memoryStats();
    EXPECT_EQ(stats.allocatedBlocks, 0u);
    // Empty volume: only the hash index is resident — a small
    // fraction of the dense footprint.
    EXPECT_LT(stats.bytes, dense_bytes / 20);

    const uint64_t empty_bytes = stats.bytes;
    ASSERT_NE(volume.allocateBlock(3, 4, 5), nullptr);
    stats = volume.memoryStats();
    EXPECT_EQ(stats.allocatedBlocks, 1u);
    EXPECT_GT(stats.bytes, empty_bytes);
}

TEST(SparseVolume, AllocatedBlockCoordsAreSortedAndComplete)
{
    SparseTsdfVolume volume(64, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    const std::array<Vec3i, 4> want = {
        Vec3i{5, 1, 2}, Vec3i{0, 3, 7}, Vec3i{5, 1, 1},
        Vec3i{2, 2, 2}};
    for (const Vec3i &b : want)
        ASSERT_NE(volume.allocateBlock(b.x, b.y, b.z), nullptr);
    const std::vector<Vec3i> got = volume.allocatedBlockCoords();
    ASSERT_EQ(got.size(), want.size());
    // Sorted lexicographically by (x, y, z).
    EXPECT_EQ(got[0].x, 0);
    EXPECT_EQ(got[1], (Vec3i{2, 2, 2}));
    EXPECT_EQ(got[2], (Vec3i{5, 1, 1}));
    EXPECT_EQ(got[3], (Vec3i{5, 1, 2}));
}

// --- mesh extraction ---

/** Canonical triangle soup: per-triangle vertex triples, sorted. */
std::vector<std::array<float, 9>>
canonicalTriangles(const TriangleMesh &mesh)
{
    std::vector<std::array<float, 9>> tris;
    tris.reserve(mesh.triangleCount());
    for (size_t t = 0; t + 2 < mesh.indices.size(); t += 3) {
        std::array<std::array<float, 3>, 3> corners;
        for (int c = 0; c < 3; ++c) {
            const auto &v = mesh.vertices[mesh.indices[t + c]];
            corners[c] = {v.x, v.y, v.z};
        }
        // Rotate the smallest corner first so winding is preserved
        // but the starting corner is canonical.
        const auto smallest = std::min_element(corners.begin(),
                                               corners.end());
        std::rotate(corners.begin(), smallest, corners.end());
        tris.push_back({corners[0][0], corners[0][1], corners[0][2],
                        corners[1][0], corners[1][1], corners[1][2],
                        corners[2][0], corners[2][1],
                        corners[2][2]});
    }
    std::sort(tris.begin(), tris.end());
    return tris;
}

TEST(SparseMesh, ExtractionMatchesDenseTriangleForTriangle)
{
    const auto k = CameraIntrinsics::fromFov(48, 48, 1.0f);
    TsdfVolume dense(48, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    SparseTsdfVolume sparse(48, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    WorkCounts counts;
    Image<float> wall(k.width, k.height, 1.0f);
    dense.integrate(wall, k, Mat4f{}, 0.1f, 100.0f, counts, nullptr);
    sparse.integrate(wall, k, Mat4f{}, 0.1f, 100.0f, counts,
                     nullptr);
    const Image<float> depth = makeDepth(k, 31);
    dense.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                    nullptr);
    sparse.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                     nullptr);

    const TriangleMesh dense_mesh = extractMesh(dense);
    const TriangleMesh sparse_mesh = extractMesh(sparse);
    ASSERT_GT(dense_mesh.triangleCount(), 0u);
    ASSERT_EQ(sparse_mesh.triangleCount(),
              dense_mesh.triangleCount());

    // The sparse extractor walks blocks instead of the full grid, so
    // vertex ORDER differs; the triangle sets must be bitwise equal
    // after canonicalization.
    const auto dense_tris = canonicalTriangles(dense_mesh);
    const auto sparse_tris = canonicalTriangles(sparse_mesh);
    ASSERT_EQ(sparse_tris.size(), dense_tris.size());
    for (size_t i = 0; i < dense_tris.size(); ++i)
        ASSERT_EQ(sparse_tris[i], dense_tris[i]) << "triangle " << i;
}

TEST(SparseMesh, EmptyVolumeExtractsNothing)
{
    SparseTsdfVolume sparse(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    const TriangleMesh mesh = extractMesh(sparse);
    EXPECT_EQ(mesh.triangleCount(), 0u);
    EXPECT_TRUE(mesh.vertices.empty());
}

// --- concurrent integration determinism ---

TEST(SparseVolume, PooledIntegrationIsDeterministic)
{
    // Same frames, serial vs pooled vs a second pool width: block
    // runs are disjoint so the result must be identical regardless
    // of scheduling.
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.5f, 0.3f, -0.5f}, Vec3f{0.0f, 0.0f, 1.0f},
        Vec3f{0.0f, 1.0f, 0.0f});

    auto fuse = [&](ThreadPool *pool) {
        SparseTsdfVolume volume(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f},
                                8, 0);
        WorkCounts counts;
        for (uint64_t seed = 61; seed < 64; ++seed) {
            volume.integrate(makeDepth(k, seed), k,
                             seed % 2 ? pose : Mat4f{}, 0.1f, 100.0f,
                             counts, pool);
        }
        std::vector<Voxel> flat;
        flat.reserve(static_cast<size_t>(32) * 32 * 32);
        for (int x = 0; x < 32; ++x)
            for (int y = 0; y < 32; ++y)
                for (int z = 0; z < 32; ++z)
                    flat.push_back(volume.voxelAt(x, y, z));
        return flat;
    };

    const std::vector<Voxel> serial = fuse(nullptr);
    ThreadPool pool2(2), pool5(5);
    const std::vector<Voxel> pooled2 = fuse(&pool2);
    const std::vector<Voxel> pooled5 = fuse(&pool5);
    ASSERT_EQ(pooled2.size(), serial.size());
    ASSERT_EQ(pooled5.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(pooled2[i].tsdf, serial[i].tsdf) << "voxel " << i;
        ASSERT_EQ(pooled2[i].weight, serial[i].weight);
        ASSERT_EQ(pooled5[i].tsdf, serial[i].tsdf) << "voxel " << i;
        ASSERT_EQ(pooled5[i].weight, serial[i].weight);
    }
}

} // namespace
