/**
 * @file
 * End-to-end tests of the KFusion pipeline orchestrator: tracking
 * quality on short sequences, rate parameters, work accounting, and
 * the GUI render paths.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dataset/generator.hpp"
#include "kfusion/pipeline.hpp"
#include "metrics/ate.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::dataset::Sequence;
using slambench::dataset::SequenceSpec;
using slambench::math::Mat4f;
using slambench::support::Image;
using slambench::support::Rgb8;

Sequence
smallSequence(size_t frames, bool noise = true, uint64_t seed = 42)
{
    SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = frames;
    spec.sensorNoise = noise;
    spec.renderRgb = false;
    spec.seed = seed;
    return generateSequence(spec);
}

KFusionConfig
smallConfig()
{
    KFusionConfig config;
    config.volumeResolution = 96;
    config.pyramidIterations = {6, 4, 3};
    return config;
}

TEST(Pipeline, TracksShortSequenceAccurately)
{
    const Sequence seq = smallSequence(10);
    KFusion kf(smallConfig(), seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));

    std::vector<Mat4f> estimated;
    for (const auto &frame : seq.frames) {
        const FrameResult r = kf.processFrame(frame.depthMm);
        EXPECT_TRUE(r.tracking.tracked)
            << "frame " << r.frameIndex;
        estimated.push_back(r.pose);
    }
    const auto ate = slambench::metrics::computeAte(
        estimated, seq.groundTruth.poses(), false);
    EXPECT_LT(ate.maxAte, 0.02);
}

TEST(Pipeline, FrameCountAndWorkAccumulate)
{
    const Sequence seq = smallSequence(5);
    KFusion kf(smallConfig(), seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));
    for (const auto &frame : seq.frames)
        kf.processFrame(frame.depthMm);
    EXPECT_EQ(kf.frameCount(), 5u);
    EXPECT_EQ(kf.frameWork().size(), 5u);
    EXPECT_GT(kf.totalWork().itemsFor(KernelId::BilateralFilter), 0.0);
    EXPECT_GT(kf.totalWork().itemsFor(KernelId::Integrate), 0.0);
    EXPECT_GT(kf.totalWork().totalHostSeconds(), 0.0);
}

TEST(Pipeline, IntegrationRateSkipsFrames)
{
    const Sequence seq = smallSequence(10);
    KFusionConfig config = smallConfig();
    config.integrationRate = 5;
    KFusion kf(config, seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));
    size_t integrations = 0;
    for (const auto &frame : seq.frames) {
        const FrameResult r = kf.processFrame(frame.depthMm);
        integrations += r.integrated;
    }
    // Frames 0-3 always integrate (bootstrap); then only every 5th.
    EXPECT_EQ(integrations, 5u); // frames 0,1,2,3 and 5
}

TEST(Pipeline, TrackingRateSkipsIcp)
{
    const Sequence seq = smallSequence(6);
    KFusionConfig config = smallConfig();
    config.trackingRate = 2;
    KFusion kf(config, seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));
    double track_items = 0.0;
    for (const auto &frame : seq.frames) {
        const FrameResult r = kf.processFrame(frame.depthMm);
        if (r.frameIndex % 2 == 1) {
            // Odd frames skip tracking entirely.
            EXPECT_DOUBLE_EQ(r.work.itemsFor(KernelId::Track), 0.0);
        }
        track_items += r.work.itemsFor(KernelId::Track);
    }
    EXPECT_GT(track_items, 0.0);
}

TEST(Pipeline, ComputeSizeRatioShrinksWork)
{
    const Sequence seq = smallSequence(4);
    KFusionConfig c1 = smallConfig();
    KFusionConfig c2 = smallConfig();
    c2.computeSizeRatio = 2;

    KFusion kf1(c1, seq.intrinsics), kf2(c2, seq.intrinsics);
    kf1.setPose(seq.groundTruth.pose(0));
    kf2.setPose(seq.groundTruth.pose(0));
    for (const auto &frame : seq.frames) {
        kf1.processFrame(frame.depthMm);
        kf2.processFrame(frame.depthMm);
    }
    EXPECT_LT(kf2.totalWork().itemsFor(KernelId::BilateralFilter),
              kf1.totalWork().itemsFor(KernelId::BilateralFilter) /
                  3.0);
    EXPECT_EQ(kf2.computeIntrinsics().width, 40u);
}

TEST(Pipeline, VolumeResolutionDrivesIntegrateWork)
{
    const Sequence seq = smallSequence(2);
    KFusionConfig c1 = smallConfig();
    c1.volumeResolution = 64;
    KFusionConfig c2 = smallConfig();
    c2.volumeResolution = 128;

    KFusion kf1(c1, seq.intrinsics), kf2(c2, seq.intrinsics);
    kf1.setPose(seq.groundTruth.pose(0));
    kf2.setPose(seq.groundTruth.pose(0));
    for (const auto &frame : seq.frames) {
        kf1.processFrame(frame.depthMm);
        kf2.processFrame(frame.depthMm);
    }
    // Visited + skipped reconstructs the naive res^3 sweep, which
    // scales exactly 8x between the two resolutions; the visited
    // share alone depends on how much of each volume the frustum
    // covers.
    const auto naive = [](const KFusion &kf) {
        return kf.totalWork().itemsFor(KernelId::Integrate) +
               kf.totalWork().skippedFor(KernelId::Integrate);
    };
    EXPECT_NEAR(naive(kf2) / naive(kf1), 8.0, 0.01);
    EXPECT_GT(kf2.totalWork().itemsFor(KernelId::Integrate),
              kf1.totalWork().itemsFor(KernelId::Integrate));
}

TEST(Pipeline, SequentialAndThreadedProduceSamePoses)
{
    const Sequence seq = smallSequence(5, /*noise=*/false);
    KFusion seq_kf(smallConfig(), seq.intrinsics,
                   Implementation::Sequential);
    KFusion par_kf(smallConfig(), seq.intrinsics,
                   Implementation::Threaded, 3);
    seq_kf.setPose(seq.groundTruth.pose(0));
    par_kf.setPose(seq.groundTruth.pose(0));
    for (const auto &frame : seq.frames) {
        const FrameResult a = seq_kf.processFrame(frame.depthMm);
        const FrameResult b = par_kf.processFrame(frame.depthMm);
        // The reduction order differs, so allow tiny numeric drift.
        EXPECT_NEAR((a.pose.translationPart() -
                     b.pose.translationPart())
                        .norm(),
                    0.0f, 1e-4f);
    }
}

TEST(Pipeline, RenderModelProducesImage)
{
    const Sequence seq = smallSequence(4);
    KFusion kf(smallConfig(), seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));
    for (const auto &frame : seq.frames)
        kf.processFrame(frame.depthMm);

    Image<Rgb8> view;
    kf.renderModel(view, kf.pose());
    ASSERT_EQ(view.width(), seq.intrinsics.width);
    // Some pixels must be non-background.
    size_t lit = 0;
    for (size_t i = 0; i < view.size(); ++i)
        lit += !(view[i].r == 20 && view[i].g == 20 &&
                 view[i].b == 28);
    EXPECT_GT(lit, view.size() / 4);
    EXPECT_GT(kf.totalWork().itemsFor(KernelId::RenderVolume), 0.0);
}

TEST(Pipeline, RenderTrackShowsStatuses)
{
    const Sequence seq = smallSequence(3);
    KFusion kf(smallConfig(), seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));
    for (const auto &frame : seq.frames)
        kf.processFrame(frame.depthMm);
    Image<Rgb8> track_view;
    kf.renderTrack(track_view);
    EXPECT_EQ(track_view.width(), kf.computeIntrinsics().width);
    size_t ok_pixels = 0;
    for (size_t i = 0; i < track_view.size(); ++i)
        ok_pixels += track_view[i].r == 128;
    EXPECT_GT(ok_pixels, 0u);
}

TEST(Pipeline, RaycastMapsAvailableAfterFirstFrame)
{
    const Sequence seq = smallSequence(2);
    KFusion kf(smallConfig(), seq.intrinsics);
    kf.setPose(seq.groundTruth.pose(0));
    kf.processFrame(seq.frames[0].depthMm);
    size_t hits = 0;
    const auto &vertex = kf.raycastVertex();
    for (size_t i = 0; i < vertex.size(); ++i)
        hits += vertex[i].squaredNorm() > 0.0f;
    EXPECT_GT(hits, vertex.size() / 4);
}

TEST(PipelineConfig, ValidationCatchesBadValues)
{
    KFusionConfig config;
    config.computeSizeRatio = 3;
    EXPECT_FALSE(config.validate().empty());
    config = KFusionConfig{};
    config.mu = -1.0f;
    EXPECT_FALSE(config.validate().empty());
    config = KFusionConfig{};
    config.pyramidIterations.clear();
    EXPECT_FALSE(config.validate().empty());
    config = KFusionConfig{};
    config.integrationRate = 0;
    EXPECT_FALSE(config.validate().empty());
    config = KFusionConfig{};
    EXPECT_TRUE(config.validate().empty());
}

TEST(PipelineConfig, ToStringMentionsKeyParams)
{
    KFusionConfig config;
    const std::string s = config.toString();
    EXPECT_NE(s.find("vr=256"), std::string::npos);
    EXPECT_NE(s.find("mu=0.1"), std::string::npos);
}

TEST(PipelineConfig, VoxelSizeConsistent)
{
    KFusionConfig config;
    config.volumeSize = 4.8f;
    config.volumeResolution = 256;
    EXPECT_FLOAT_EQ(config.voxelSize(), 4.8f / 256.0f);
}

TEST(WorkCounts, MergeAddsEverything)
{
    WorkCounts a, b;
    a.addItems(KernelId::Track, 10.0);
    a.addBytes(KernelId::Track, 100.0);
    b.addItems(KernelId::Track, 5.0);
    b.addHostSeconds(KernelId::Track, 0.25);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.itemsFor(KernelId::Track), 15.0);
    EXPECT_DOUBLE_EQ(a.bytesFor(KernelId::Track), 100.0);
    EXPECT_DOUBLE_EQ(a.hostSecondsFor(KernelId::Track), 0.25);
}

TEST(WorkCounts, KernelNamesAreUniqueAndStable)
{
    std::set<std::string> names;
    for (size_t k = 0; k < kNumKernels; ++k)
        names.insert(kernelName(static_cast<KernelId>(k)));
    EXPECT_EQ(names.size(), kNumKernels);
    EXPECT_EQ(std::string(kernelName(KernelId::Integrate)),
              "integrate");
}

} // namespace
