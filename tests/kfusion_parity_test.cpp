/**
 * @file
 * Bit-exactness parity suite for the frame-loop fast paths: the
 * frustum-culled integration sweep against the dense reference, the
 * fused single-pass gradient against the six-interp reference, and
 * the volume-clipped raycast, each serial and under a thread pool.
 *
 * These tests assert exact float equality (operator==, not
 * EXPECT_FLOAT_EQ): the optimized paths are designed to execute the
 * same arithmetic as their references, so any drift is a bug, not
 * noise. The *Pooled* tests double as the TSan race gate's kernel
 * workload (scripts/tsan_smoke.sh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/generator.hpp"
#include "kfusion/backend.hpp"
#include "kfusion/pipeline.hpp"
#include "kfusion/raycast.hpp"
#include "kfusion/sparse_volume.hpp"
#include "kfusion/tracking.hpp"
#include "kfusion/volume.hpp"
#include "math/se3.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::math::CameraIntrinsics;
using slambench::math::Mat4f;
using slambench::math::Vec3f;
using slambench::support::Image;
using slambench::support::Rng;
using slambench::support::ThreadPool;

/** Random metric depth with a sprinkling of invalid (0) pixels. */
Image<float>
makeDepth(const CameraIntrinsics &k, uint64_t seed)
{
    Image<float> depth(k.width, k.height);
    Rng rng(seed);
    for (size_t i = 0; i < depth.size(); ++i) {
        depth[i] = rng.uniform(0.0, 1.0) < 0.08
                       ? 0.0f
                       : static_cast<float>(rng.uniform(0.5, 2.5));
    }
    return depth;
}

/** Assert two equally sized volumes match voxel-for-voxel, exactly. */
void
expectBitIdentical(const TsdfVolume &a, const TsdfVolume &b)
{
    ASSERT_EQ(a.resolution(), b.resolution());
    for (int x = 0; x < a.resolution(); ++x) {
        for (int y = 0; y < a.resolution(); ++y) {
            for (int z = 0; z < a.resolution(); ++z) {
                ASSERT_EQ(a.at(x, y, z).tsdf, b.at(x, y, z).tsdf)
                    << "tsdf mismatch at (" << x << ", " << y << ", "
                    << z << ")";
                ASSERT_EQ(a.at(x, y, z).weight, b.at(x, y, z).weight)
                    << "weight mismatch at (" << x << ", " << y
                    << ", " << z << ")";
            }
        }
    }
}

/**
 * Integrate the same frame into a culled and a dense volume (serial)
 * and require identical results; returns the culled work counts.
 */
WorkCounts
checkCulledMatchesDense(const Mat4f &pose, uint64_t seed)
{
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Image<float> depth = makeDepth(k, seed);

    TsdfVolume culled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume dense(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    WorkCounts culled_counts, dense_counts;
    culled.integrate(depth, k, pose, 0.1f, 100.0f, culled_counts,
                     nullptr);
    dense.integrateDense(depth, k, pose, 0.1f, 100.0f, dense_counts,
                         nullptr);
    expectBitIdentical(culled, dense);

    // Culling never inspects more than the dense sweep, and the two
    // accounts partition the same res^3 workload.
    EXPECT_DOUBLE_EQ(
        culled_counts.itemsFor(KernelId::Integrate) +
            culled_counts.skippedFor(KernelId::Integrate),
        dense_counts.itemsFor(KernelId::Integrate));
    return culled_counts;
}

TEST(IntegrateParity, CulledMatchesDenseIdentityPose)
{
    const WorkCounts counts = checkCulledMatchesDense(Mat4f{}, 11);
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
}

TEST(IntegrateParity, CulledMatchesDensePartialFrustum)
{
    // Oblique view from outside a corner: a good part of the volume
    // projects off-image, so whole columns get culled mid-range.
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.8f, 0.4f, -0.6f}, Vec3f{-0.2f, 0.0f, 1.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    const WorkCounts counts = checkCulledMatchesDense(pose, 12);
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_GT(counts.skippedFor(KernelId::Integrate), 0.0);
}

TEST(IntegrateParity, CulledMatchesDenseCameraInsideVolume)
{
    // Camera in the middle of the volume: every column straddles the
    // camera plane, exercising the behind-camera half-space clip.
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.0f, 0.0f, 1.0f}, Vec3f{0.0f, 0.0f, 2.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    const WorkCounts counts = checkCulledMatchesDense(pose, 13);
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_GT(counts.skippedFor(KernelId::Integrate), 0.0);
}

TEST(IntegrateParity, CulledMatchesDenseVolumeBehindCamera)
{
    // Looking directly away from the volume: everything is culled
    // and the volume must stay untouched, exactly like the dense
    // sweep (which visits every voxel and updates none).
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.0f, 0.0f, -0.5f}, Vec3f{0.0f, 0.0f, -2.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    const WorkCounts counts = checkCulledMatchesDense(pose, 14);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_DOUBLE_EQ(counts.skippedFor(KernelId::Integrate),
                     32.0 * 32.0 * 32.0);
}

TEST(IntegrateParity, CulledMatchesDensePooled)
{
    // All four combinations of {culled, dense} x {serial, pooled}
    // must agree bit-for-bit across several fused frames.
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Mat4f poses[] = {
        Mat4f{},
        slambench::math::lookAt(Vec3f{0.5f, 0.2f, -0.4f},
                                Vec3f{0.0f, 0.0f, 1.0f},
                                Vec3f{0.0f, 1.0f, 0.0f}),
    };

    TsdfVolume culled_serial(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume culled_pooled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume dense_pooled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    ThreadPool pool(3);
    WorkCounts counts;
    uint64_t seed = 21;
    for (const Mat4f &pose : poses) {
        const Image<float> depth = makeDepth(k, seed++);
        culled_serial.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                                nullptr);
        culled_pooled.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                                &pool);
        dense_pooled.integrateDense(depth, k, pose, 0.1f, 100.0f,
                                    counts, &pool);
    }
    expectBitIdentical(culled_serial, culled_pooled);
    expectBitIdentical(culled_serial, dense_pooled);
}

// --- gradient parity ---

class FusedVolume : public ::testing::Test
{
  protected:
    FusedVolume()
        : volume_(48, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}),
          k_(CameraIntrinsics::fromFov(48, 48, 1.0f))
    {
        WorkCounts counts;
        Image<float> wall(k_.width, k_.height, 1.0f);
        volume_.integrate(wall, k_, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
        const Image<float> depth = makeDepth(k_, 31);
        volume_.integrate(depth, k_, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
    }

    TsdfVolume volume_;
    CameraIntrinsics k_;
};

TEST_F(FusedVolume, FusedGradMatchesReferenceEverywhere)
{
    // Random points over the whole volume (inside, near faces, and
    // in unobserved space where the per-axis early-outs trigger).
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Vec3f p{
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-0.1, 2.1))};
        const Vec3f fused = volume_.grad(p);
        const Vec3f reference = volume_.gradReference(p);
        ASSERT_EQ(fused.x, reference.x) << "at " << p.x << ", "
                                        << p.y << ", " << p.z;
        ASSERT_EQ(fused.y, reference.y);
        ASSERT_EQ(fused.z, reference.z);
    }
}

TEST_F(FusedVolume, FusedGradMatchesReferenceNearSurface)
{
    // Dense sampling in the truncation band around the fused wall,
    // where raycast actually evaluates gradients.
    Rng rng(8);
    for (int i = 0; i < 20000; ++i) {
        const Vec3f p{
            static_cast<float>(rng.uniform(-0.9, 0.9)),
            static_cast<float>(rng.uniform(-0.9, 0.9)),
            static_cast<float>(rng.uniform(0.85, 1.15))};
        const Vec3f fused = volume_.grad(p);
        const Vec3f reference = volume_.gradReference(p);
        ASSERT_EQ(fused.x, reference.x);
        ASSERT_EQ(fused.y, reference.y);
        ASSERT_EQ(fused.z, reference.z);
    }
}

// --- raycast parity ---

RaycastParams
testParams(const TsdfVolume &volume)
{
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 4.0f;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;
    return params;
}

TEST_F(FusedVolume, RaycastPooledMatchesSerial)
{
    const RaycastParams params = testParams(volume_);
    Image<Vec3f> vertex_s, normal_s, vertex_p, normal_p;
    WorkCounts counts;
    ThreadPool pool(3);
    raycastKernel(vertex_s, normal_s, volume_, k_, Mat4f{}, params,
                  counts, nullptr);
    raycastKernel(vertex_p, normal_p, volume_, k_, Mat4f{}, params,
                  counts, &pool);
    ASSERT_EQ(vertex_s.size(), vertex_p.size());
    for (size_t i = 0; i < vertex_s.size(); ++i) {
        ASSERT_EQ(vertex_s[i].x, vertex_p[i].x) << "pixel " << i;
        ASSERT_EQ(vertex_s[i].y, vertex_p[i].y);
        ASSERT_EQ(vertex_s[i].z, vertex_p[i].z);
        ASSERT_EQ(normal_s[i].x, normal_p[i].x);
        ASSERT_EQ(normal_s[i].y, normal_p[i].y);
        ASSERT_EQ(normal_s[i].z, normal_p[i].z);
    }
}

TEST_F(FusedVolume, RenderVolumePooledMatchesSerial)
{
    const RaycastParams params = testParams(volume_);
    Image<slambench::support::Rgb8> serial, pooled;
    WorkCounts counts;
    ThreadPool pool(3);
    renderVolumeKernel(serial, volume_, k_, Mat4f{}, params, counts,
                       nullptr);
    renderVolumeKernel(pooled, volume_, k_, Mat4f{}, params, counts,
                       &pool);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].r, pooled[i].r) << "pixel " << i;
        ASSERT_EQ(serial[i].g, pooled[i].g);
        ASSERT_EQ(serial[i].b, pooled[i].b);
    }
}

TEST_F(FusedVolume, ClippedRayFromFarOriginHitsSameSurface)
{
    // The AABB clip fast-forwards the march to the volume entry, so
    // pushing the origin back along the ray must find the same
    // surface (up to the fine step's refinement tolerance).
    const RaycastParams params = testParams(volume_);
    Vec3f near_hit, far_hit;
    int near_steps = 0, far_steps = 0;
    ASSERT_TRUE(castRay(volume_, Vec3f{0.0f, 0.0f, 0.2f},
                        Vec3f{0.0f, 0.0f, 1.0f}, params, near_hit,
                        near_steps));
    ASSERT_TRUE(castRay(volume_, Vec3f{0.0f, 0.0f, -2.0f},
                        Vec3f{0.0f, 0.0f, 1.0f}, params, far_hit,
                        far_steps));
    EXPECT_NEAR(near_hit.z, far_hit.z, volume_.voxelSize());
    // The far ray marches the clipped interval, not the extra two
    // meters of empty space in front of the volume.
    EXPECT_LT(far_steps, near_steps + 30);
}

TEST_F(FusedVolume, RaysMissingTheVolumeTakeNoSteps)
{
    const RaycastParams params = testParams(volume_);
    Vec3f hit;
    int steps = 0;
    EXPECT_FALSE(castRay(volume_, Vec3f{0.0f, 0.0f, -0.5f},
                         Vec3f{0.0f, 0.0f, -1.0f}, params, hit,
                         steps));
    EXPECT_EQ(steps, 0);
    EXPECT_FALSE(castRay(volume_, Vec3f{5.0f, 0.0f, 1.0f},
                         Vec3f{0.0f, 1.0f, 0.0f}, params, hit,
                         steps));
    EXPECT_EQ(steps, 0);
}

// --- kernel-backend parity ---
//
// Every backend in the registry must reproduce the scalar reference
// bit-for-bit on all four hot kernels (the parity contract in
// docs/KERNEL_BACKENDS.md): the vectorized paths are engineered to
// replay the scalar operation sequence per lane, so exact equality
// is the specification, not an aspiration.

/** All registered backends except the scalar reference itself. */
std::vector<const KernelBackend *>
nonScalarBackends()
{
    std::vector<const KernelBackend *> backends;
    for (const std::string &name : kernelBackendNames()) {
        const KernelBackend *backend = findKernelBackend(name);
        if (backend != &scalarKernelBackend())
            backends.push_back(backend);
    }
    return backends;
}

TEST(BackendParity, IntegrateMatchesScalarDense)
{
    // integrateDense() always runs the scalar backend, so fusing the
    // same frames through each backend and comparing against the
    // dense sweep checks both the culling and the backend at once.
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Mat4f poses[] = {
        Mat4f{},
        slambench::math::lookAt(Vec3f{0.8f, 0.4f, -0.6f},
                                Vec3f{-0.2f, 0.0f, 1.0f},
                                Vec3f{0.0f, 1.0f, 0.0f}),
        slambench::math::lookAt(Vec3f{0.0f, 0.0f, 1.0f},
                                Vec3f{0.0f, 0.0f, 2.0f},
                                Vec3f{0.0f, 1.0f, 0.0f}),
    };
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        TsdfVolume tested(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
        TsdfVolume dense(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
        tested.setBackend(backend);
        WorkCounts counts;
        uint64_t seed = 101;
        for (const Mat4f &pose : poses) {
            const Image<float> depth = makeDepth(k, seed++);
            tested.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                             nullptr);
            dense.integrateDense(depth, k, pose, 0.1f, 100.0f,
                                 counts, nullptr);
        }
        expectBitIdentical(tested, dense);
    }
}

TEST(BackendParity, IntegrateMatchesScalarWithInvalidDepth)
{
    // All-invalid and all-behind depth exercise the skip branches
    // (measured <= 0, sdf < -mu) on every lane.
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    Image<float> depth(k.width, k.height, 0.0f);
    for (size_t i = 0; i < depth.size(); i += 3)
        depth[i] = 0.45f; // in front of most of the volume
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        TsdfVolume tested(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
        TsdfVolume dense(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
        tested.setBackend(backend);
        WorkCounts counts;
        tested.integrate(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                         nullptr);
        dense.integrateDense(depth, k, Mat4f{}, 0.1f, 100.0f, counts,
                             nullptr);
        expectBitIdentical(tested, dense);
    }
}

TEST_F(FusedVolume, BackendGradMatchesScalarEverywhere)
{
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        Rng rng(7);
        for (int i = 0; i < 20000; ++i) {
            const Vec3f p{
                static_cast<float>(rng.uniform(-1.1, 1.1)),
                static_cast<float>(rng.uniform(-1.1, 1.1)),
                static_cast<float>(rng.uniform(-0.1, 2.1))};
            const Vec3f tested = backend->grad(volume_, p);
            const Vec3f reference = volume_.grad(p);
            ASSERT_EQ(tested.x, reference.x)
                << "at " << p.x << ", " << p.y << ", " << p.z;
            ASSERT_EQ(tested.y, reference.y);
            ASSERT_EQ(tested.z, reference.z);
        }
    }
}

TEST_F(FusedVolume, BackendRaycastMatchesScalar)
{
    const RaycastParams params = testParams(volume_);
    Image<Vec3f> vertex_ref, normal_ref;
    WorkCounts counts;
    raycastKernel(vertex_ref, normal_ref, volume_, k_, Mat4f{},
                  params, counts, nullptr);
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        Image<Vec3f> vertex, normal;
        raycastKernel(vertex, normal, volume_, k_, Mat4f{}, params,
                      counts, nullptr, backend);
        ASSERT_EQ(vertex.size(), vertex_ref.size());
        for (size_t i = 0; i < vertex.size(); ++i) {
            ASSERT_EQ(vertex[i].x, vertex_ref[i].x) << "pixel " << i;
            ASSERT_EQ(vertex[i].y, vertex_ref[i].y);
            ASSERT_EQ(vertex[i].z, vertex_ref[i].z);
            ASSERT_EQ(normal[i].x, normal_ref[i].x) << "pixel " << i;
            ASSERT_EQ(normal[i].y, normal_ref[i].y);
            ASSERT_EQ(normal[i].z, normal_ref[i].z);
        }
    }
}

TEST_F(FusedVolume, BackendRaycastMatchesScalarObliqueView)
{
    // Oblique pose: rays enter the volume at an angle, so packet
    // lanes clip to different [t, t_end] intervals and finish their
    // marches at different times.
    const RaycastParams params = testParams(volume_);
    const Mat4f view = slambench::math::lookAt(
        Vec3f{1.2f, 0.8f, -0.4f}, Vec3f{-0.2f, -0.1f, 1.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    Image<Vec3f> vertex_ref, normal_ref;
    WorkCounts counts;
    raycastKernel(vertex_ref, normal_ref, volume_, k_, view, params,
                  counts, nullptr);
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        Image<Vec3f> vertex, normal;
        raycastKernel(vertex, normal, volume_, k_, view, params,
                      counts, nullptr, backend);
        ASSERT_EQ(vertex.size(), vertex_ref.size());
        for (size_t i = 0; i < vertex.size(); ++i) {
            ASSERT_EQ(vertex[i].x, vertex_ref[i].x) << "pixel " << i;
            ASSERT_EQ(vertex[i].y, vertex_ref[i].y);
            ASSERT_EQ(vertex[i].z, vertex_ref[i].z);
            ASSERT_EQ(normal[i].x, normal_ref[i].x) << "pixel " << i;
            ASSERT_EQ(normal[i].y, normal_ref[i].y);
            ASSERT_EQ(normal[i].z, normal_ref[i].z);
        }
    }
}

TEST_F(FusedVolume, BackendRenderVolumeMatchesScalar)
{
    const RaycastParams params = testParams(volume_);
    Image<slambench::support::Rgb8> reference;
    WorkCounts counts;
    renderVolumeKernel(reference, volume_, k_, Mat4f{}, params,
                       counts, nullptr);
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        Image<slambench::support::Rgb8> tested;
        renderVolumeKernel(tested, volume_, k_, Mat4f{}, params,
                           counts, nullptr, backend);
        ASSERT_EQ(tested.size(), reference.size());
        for (size_t i = 0; i < tested.size(); ++i) {
            ASSERT_EQ(tested[i].r, reference[i].r) << "pixel " << i;
            ASSERT_EQ(tested[i].g, reference[i].g);
            ASSERT_EQ(tested[i].b, reference[i].b);
        }
    }
}

/** Synthetic track data covering every TrackResult branch. */
Image<TrackData>
makeTrackData(size_t w, size_t h, uint64_t seed)
{
    Image<TrackData> track(w, h);
    Rng rng(seed);
    for (size_t i = 0; i < track.size(); ++i) {
        TrackData &d = track[i];
        const double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.55) {
            d.result = TrackResult::Ok;
        } else if (kind < 0.7) {
            d.result = TrackResult::NoInputVertex;
        } else if (kind < 0.85) {
            d.result = TrackResult::TooFar;
        } else {
            d.result = TrackResult::NormalMismatch;
        }
        d.error = static_cast<float>(rng.uniform(-0.05, 0.05));
        for (float &j : d.jacobian)
            j = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return track;
}

TEST(BackendParity, ReduceMatchesScalar)
{
    const Image<TrackData> track = makeTrackData(80, 60, 303);
    const KernelBackend &scalar = scalarKernelBackend();
    // Full image plus awkward sub-ranges (unaligned begin/end, short
    // tails smaller than one vector width).
    const std::pair<size_t, size_t> ranges[] = {
        {0, track.size()}, {1, track.size() - 3}, {17, 29},
        {track.size() - 5, track.size()}, {7, 7},
    };
    for (const KernelBackend *backend : nonScalarBackends()) {
        SCOPED_TRACE(backend->name());
        for (const auto &[begin, end] : ranges) {
            const ReductionResult expect =
                scalar.reduceRange(track, begin, end);
            const ReductionResult got =
                backend->reduceRange(track, begin, end);
            ASSERT_EQ(got.validCount, expect.validCount);
            ASSERT_EQ(got.errorSq, expect.errorSq);
            for (size_t i = 0; i < expect.jtj.size(); ++i)
                ASSERT_EQ(got.jtj[i], expect.jtj[i]) << "jtj " << i;
            for (size_t i = 0; i < expect.jte.size(); ++i)
                ASSERT_EQ(got.jte[i], expect.jte[i]) << "jte " << i;
        }
    }
}

// --- sparse-volume parity ---
//
// The hashed-voxel-block volume promises bit-identity with the dense
// reference at EVERY voxel: observed voxels replay the exact dense
// fusion arithmetic, and unallocated voxels read the default
// Voxel{+1, 0} — the value an untouched dense voxel holds. So full
// res^3 equality (not just the observed region) is the contract.

/** Assert a sparse volume matches a dense one at every voxel. */
void
expectSparseMatchesDense(const SparseTsdfVolume &sparse,
                         const TsdfVolume &dense)
{
    ASSERT_EQ(sparse.resolution(), dense.resolution());
    for (int x = 0; x < dense.resolution(); ++x) {
        for (int y = 0; y < dense.resolution(); ++y) {
            for (int z = 0; z < dense.resolution(); ++z) {
                const Voxel s = sparse.voxelAt(x, y, z);
                const Voxel d = dense.voxelAt(x, y, z);
                ASSERT_EQ(s.tsdf, d.tsdf)
                    << "tsdf mismatch at (" << x << ", " << y << ", "
                    << z << ")";
                ASSERT_EQ(s.weight, d.weight)
                    << "weight mismatch at (" << x << ", " << y
                    << ", " << z << ")";
            }
        }
    }
}

/**
 * Fuse the same frame into sparse and dense volumes (both serial and
 * pooled sparse) and require voxel-for-voxel identity.
 */
void
checkSparseMatchesDense(const Mat4f &pose, uint64_t seed,
                        int block_size)
{
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Image<float> depth = makeDepth(k, seed);

    TsdfVolume dense(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    SparseTsdfVolume serial(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f},
                            block_size, 0);
    SparseTsdfVolume pooled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f},
                            block_size, 0);
    ThreadPool pool(3);
    WorkCounts dense_counts, serial_counts, pooled_counts;
    dense.integrate(depth, k, pose, 0.1f, 100.0f, dense_counts,
                    nullptr);
    serial.integrate(depth, k, pose, 0.1f, 100.0f, serial_counts,
                     nullptr);
    pooled.integrate(depth, k, pose, 0.1f, 100.0f, pooled_counts,
                     &pool);
    expectSparseMatchesDense(serial, dense);
    expectSparseMatchesDense(pooled, dense);
    EXPECT_EQ(serial.allocatedBlocks(), pooled.allocatedBlocks());
    // Sparse and dense run the identical culled sweep, so the work
    // accounts agree exactly.
    EXPECT_DOUBLE_EQ(serial_counts.itemsFor(KernelId::Integrate),
                     dense_counts.itemsFor(KernelId::Integrate));
    EXPECT_DOUBLE_EQ(serial_counts.skippedFor(KernelId::Integrate),
                     dense_counts.skippedFor(KernelId::Integrate));
}

TEST(SparseParity, MatchesDenseIdentityPose)
{
    checkSparseMatchesDense(Mat4f{}, 11, 8);
    checkSparseMatchesDense(Mat4f{}, 11, 16);
}

TEST(SparseParity, MatchesDensePartialFrustum)
{
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.8f, 0.4f, -0.6f}, Vec3f{-0.2f, 0.0f, 1.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    checkSparseMatchesDense(pose, 12, 8);
    checkSparseMatchesDense(pose, 12, 16);
}

TEST(SparseParity, MatchesDenseCameraInsideVolume)
{
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.0f, 0.0f, 1.0f}, Vec3f{0.0f, 0.0f, 2.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    checkSparseMatchesDense(pose, 13, 8);
}

TEST(SparseParity, MatchesDenseVolumeBehindCamera)
{
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.0f, 0.0f, -0.5f}, Vec3f{0.0f, 0.0f, -2.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    checkSparseMatchesDense(pose, 14, 8);
    // Nothing projects: no block may be allocated.
    SparseTsdfVolume sparse(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8,
                            0);
    WorkCounts counts;
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    sparse.integrate(makeDepth(k, 14), k, pose, 0.1f, 100.0f, counts,
                     nullptr);
    EXPECT_EQ(sparse.allocatedBlocks(), 0u);
}

TEST(SparseParity, MatchesDenseAcrossFusedFramesPooled)
{
    // Multi-frame fusion with every kernel backend, serial and
    // pooled: weights accumulate across frames, so any ordering slip
    // in the block-run replay would show up here.
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Mat4f poses[] = {
        Mat4f{},
        slambench::math::lookAt(Vec3f{0.5f, 0.2f, -0.4f},
                                Vec3f{0.0f, 0.0f, 1.0f},
                                Vec3f{0.0f, 1.0f, 0.0f}),
    };
    for (const std::string &name : kernelBackendNames()) {
        SCOPED_TRACE(name);
        const KernelBackend *backend = findKernelBackend(name);
        TsdfVolume dense(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
        SparseTsdfVolume sparse(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f},
                                8, 0);
        dense.setBackend(backend);
        sparse.setBackend(backend);
        ThreadPool pool(3);
        WorkCounts counts;
        uint64_t seed = 51;
        for (const Mat4f &pose : poses) {
            const Image<float> depth = makeDepth(k, seed++);
            dense.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                            nullptr);
            sparse.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                             &pool);
        }
        expectSparseMatchesDense(sparse, dense);
    }
}

/** A sparse copy of FusedVolume's dense fixture content. */
class SparseFusedVolume : public FusedVolume
{
  protected:
    SparseFusedVolume()
        : sparse_(48, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}, 8, 0)
    {
        WorkCounts counts;
        Image<float> wall(k_.width, k_.height, 1.0f);
        sparse_.integrate(wall, k_, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
        const Image<float> depth = makeDepth(k_, 31);
        sparse_.integrate(depth, k_, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
    }

    SparseTsdfVolume sparse_;
};

TEST_F(SparseFusedVolume, InterpMatchesDenseEverywhere)
{
    Rng rng(7);
    SparseTsdfVolume::LookupCache cache;
    for (int i = 0; i < 20000; ++i) {
        const Vec3f p{
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-0.1, 2.1))};
        bool dense_valid = false, sparse_valid = false,
             cached_valid = false;
        const float dense_v = volume_.interp(p, dense_valid);
        const float sparse_v = sparse_.interp(p, sparse_valid);
        const float cached_v =
            sparse_.interpCached(p, cached_valid, cache);
        ASSERT_EQ(sparse_v, dense_v)
            << "at " << p.x << ", " << p.y << ", " << p.z;
        ASSERT_EQ(sparse_valid, dense_valid);
        ASSERT_EQ(cached_v, dense_v);
        ASSERT_EQ(cached_valid, dense_valid);
    }
}

TEST_F(SparseFusedVolume, GradMatchesDenseEverywhere)
{
    Rng rng(8);
    SparseTsdfVolume::LookupCache cache;
    for (int i = 0; i < 20000; ++i) {
        const Vec3f p{
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-0.1, 2.1))};
        const Vec3f dense_g = volume_.grad(p);
        const Vec3f sparse_g = sparse_.grad(p);
        const Vec3f cached_g = sparse_.gradCached(p, cache);
        ASSERT_EQ(sparse_g.x, dense_g.x)
            << "at " << p.x << ", " << p.y << ", " << p.z;
        ASSERT_EQ(sparse_g.y, dense_g.y);
        ASSERT_EQ(sparse_g.z, dense_g.z);
        ASSERT_EQ(cached_g.x, dense_g.x);
        ASSERT_EQ(cached_g.y, dense_g.y);
        ASSERT_EQ(cached_g.z, dense_g.z);
    }
}

TEST_F(SparseFusedVolume, CastRayMatchesDense)
{
    const RaycastParams params = testParams(volume_);
    Rng rng(9);
    SparseTsdfVolume::LookupCache cache;
    for (int i = 0; i < 500; ++i) {
        const Vec3f origin{
            static_cast<float>(rng.uniform(-0.5, 0.5)),
            static_cast<float>(rng.uniform(-0.5, 0.5)),
            static_cast<float>(rng.uniform(-0.5, 0.3))};
        Vec3f dir{static_cast<float>(rng.uniform(-0.4, 0.4)),
                  static_cast<float>(rng.uniform(-0.4, 0.4)),
                  static_cast<float>(rng.uniform(0.5, 1.0))};
        dir = dir * (1.0f / dir.norm());
        Vec3f dense_hit, sparse_hit;
        int dense_steps = 0, sparse_steps = 0;
        const bool dense_found = castRay(
            volume_, origin, dir, params, dense_hit, dense_steps);
        const bool sparse_found =
            castRay(sparse_, origin, dir, params, sparse_hit,
                    sparse_steps, cache);
        ASSERT_EQ(sparse_found, dense_found) << "ray " << i;
        ASSERT_EQ(sparse_steps, dense_steps);
        if (dense_found) {
            ASSERT_EQ(sparse_hit.x, dense_hit.x) << "ray " << i;
            ASSERT_EQ(sparse_hit.y, dense_hit.y);
            ASSERT_EQ(sparse_hit.z, dense_hit.z);
        }
    }
}

TEST_F(SparseFusedVolume, RaycastKernelMatchesDenseSerialAndPooled)
{
    const RaycastParams params = testParams(volume_);
    const Mat4f views[] = {
        Mat4f{},
        slambench::math::lookAt(Vec3f{1.2f, 0.8f, -0.4f},
                                Vec3f{-0.2f, -0.1f, 1.0f},
                                Vec3f{0.0f, 1.0f, 0.0f}),
    };
    ThreadPool pool(3);
    for (const Mat4f &view : views) {
        Image<Vec3f> vertex_ref, normal_ref;
        WorkCounts counts;
        raycastKernel(vertex_ref, normal_ref, volume_, k_, view,
                      params, counts, nullptr);
        for (ThreadPool *p : {static_cast<ThreadPool *>(nullptr),
                              &pool}) {
            Image<Vec3f> vertex, normal;
            raycastKernel(vertex, normal, sparse_, k_, view, params,
                          counts, p);
            ASSERT_EQ(vertex.size(), vertex_ref.size());
            for (size_t i = 0; i < vertex.size(); ++i) {
                ASSERT_EQ(vertex[i].x, vertex_ref[i].x)
                    << "pixel " << i;
                ASSERT_EQ(vertex[i].y, vertex_ref[i].y);
                ASSERT_EQ(vertex[i].z, vertex_ref[i].z);
                ASSERT_EQ(normal[i].x, normal_ref[i].x)
                    << "pixel " << i;
                ASSERT_EQ(normal[i].y, normal_ref[i].y);
                ASSERT_EQ(normal[i].z, normal_ref[i].z);
            }
        }
    }
}

TEST_F(SparseFusedVolume, RenderVolumeMatchesDense)
{
    const RaycastParams params = testParams(volume_);
    Image<slambench::support::Rgb8> reference, tested;
    WorkCounts counts;
    ThreadPool pool(3);
    renderVolumeKernel(reference, volume_, k_, Mat4f{}, params,
                       counts, nullptr);
    renderVolumeKernel(tested, sparse_, k_, Mat4f{}, params, counts,
                       &pool);
    ASSERT_EQ(tested.size(), reference.size());
    for (size_t i = 0; i < tested.size(); ++i) {
        ASSERT_EQ(tested[i].r, reference[i].r) << "pixel " << i;
        ASSERT_EQ(tested[i].g, reference[i].g);
        ASSERT_EQ(tested[i].b, reference[i].b);
    }
}

TEST(SparseParity, PipelinePosesMatchDenseExactly)
{
    // End-to-end: a full pipeline on the sparse volume must produce
    // bit-identical poses to the dense run — fusion, sampling, and
    // raycast are all bit-exact, and the pose is a pure function of
    // their outputs.
    slambench::dataset::SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 6;
    spec.renderRgb = false;
    spec.seed = 42;
    const auto seq = slambench::dataset::generateSequence(spec);

    KFusionConfig config;
    config.volumeResolution = 96;
    config.pyramidIterations = {6, 4, 3};

    std::vector<Mat4f> reference_poses;
    {
        KFusion kf(config, seq.intrinsics);
        kf.setPose(seq.groundTruth.pose(0));
        for (const auto &frame : seq.frames)
            reference_poses.push_back(
                kf.processFrame(frame.depthMm).pose);
    }

    for (int block_size : {8, 16}) {
        SCOPED_TRACE(block_size);
        KFusionConfig cfg = config;
        cfg.volumeBackend = "sparse";
        cfg.volumeBlockSize = block_size;
        KFusion kf(cfg, seq.intrinsics);
        kf.setPose(seq.groundTruth.pose(0));
        for (size_t f = 0; f < seq.frames.size(); ++f) {
            const Mat4f pose =
                kf.processFrame(seq.frames[f].depthMm).pose;
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    ASSERT_EQ(pose(r, c), reference_poses[f](r, c))
                        << "frame " << f << " element (" << r << ", "
                        << c << ")";
        }
    }
}

TEST(BackendParity, PipelinePosesMatchScalarExactly)
{
    // End-to-end: the full pipeline must produce bit-identical poses
    // under every backend, because each kernel is bit-exact and the
    // pose is a pure function of the kernel outputs.
    slambench::dataset::SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 6;
    spec.renderRgb = false;
    spec.seed = 42;
    const auto seq = slambench::dataset::generateSequence(spec);

    KFusionConfig config;
    config.volumeResolution = 96;
    config.pyramidIterations = {6, 4, 3};

    std::vector<Mat4f> reference_poses;
    {
        KFusion kf(config, seq.intrinsics);
        kf.setPose(seq.groundTruth.pose(0));
        for (const auto &frame : seq.frames)
            reference_poses.push_back(
                kf.processFrame(frame.depthMm).pose);
    }

    for (const std::string &name : kernelBackendNames()) {
        SCOPED_TRACE(name);
        KFusionConfig cfg = config;
        cfg.kernelBackend = name;
        KFusion kf(cfg, seq.intrinsics);
        kf.setPose(seq.groundTruth.pose(0));
        for (size_t f = 0; f < seq.frames.size(); ++f) {
            const Mat4f pose =
                kf.processFrame(seq.frames[f].depthMm).pose;
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    ASSERT_EQ(pose(r, c), reference_poses[f](r, c))
                        << "frame " << f << " element (" << r << ", "
                        << c << ")";
        }
    }
}

} // namespace
