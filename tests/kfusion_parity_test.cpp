/**
 * @file
 * Bit-exactness parity suite for the frame-loop fast paths: the
 * frustum-culled integration sweep against the dense reference, the
 * fused single-pass gradient against the six-interp reference, and
 * the volume-clipped raycast, each serial and under a thread pool.
 *
 * These tests assert exact float equality (operator==, not
 * EXPECT_FLOAT_EQ): the optimized paths are designed to execute the
 * same arithmetic as their references, so any drift is a bug, not
 * noise. The *Pooled* tests double as the TSan race gate's kernel
 * workload (scripts/tsan_smoke.sh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kfusion/raycast.hpp"
#include "kfusion/volume.hpp"
#include "math/se3.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::math::CameraIntrinsics;
using slambench::math::Mat4f;
using slambench::math::Vec3f;
using slambench::support::Image;
using slambench::support::Rng;
using slambench::support::ThreadPool;

/** Random metric depth with a sprinkling of invalid (0) pixels. */
Image<float>
makeDepth(const CameraIntrinsics &k, uint64_t seed)
{
    Image<float> depth(k.width, k.height);
    Rng rng(seed);
    for (size_t i = 0; i < depth.size(); ++i) {
        depth[i] = rng.uniform(0.0, 1.0) < 0.08
                       ? 0.0f
                       : static_cast<float>(rng.uniform(0.5, 2.5));
    }
    return depth;
}

/** Assert two equally sized volumes match voxel-for-voxel, exactly. */
void
expectBitIdentical(const TsdfVolume &a, const TsdfVolume &b)
{
    ASSERT_EQ(a.resolution(), b.resolution());
    for (int x = 0; x < a.resolution(); ++x) {
        for (int y = 0; y < a.resolution(); ++y) {
            for (int z = 0; z < a.resolution(); ++z) {
                ASSERT_EQ(a.at(x, y, z).tsdf, b.at(x, y, z).tsdf)
                    << "tsdf mismatch at (" << x << ", " << y << ", "
                    << z << ")";
                ASSERT_EQ(a.at(x, y, z).weight, b.at(x, y, z).weight)
                    << "weight mismatch at (" << x << ", " << y
                    << ", " << z << ")";
            }
        }
    }
}

/**
 * Integrate the same frame into a culled and a dense volume (serial)
 * and require identical results; returns the culled work counts.
 */
WorkCounts
checkCulledMatchesDense(const Mat4f &pose, uint64_t seed)
{
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Image<float> depth = makeDepth(k, seed);

    TsdfVolume culled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume dense(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    WorkCounts culled_counts, dense_counts;
    culled.integrate(depth, k, pose, 0.1f, 100.0f, culled_counts,
                     nullptr);
    dense.integrateDense(depth, k, pose, 0.1f, 100.0f, dense_counts,
                         nullptr);
    expectBitIdentical(culled, dense);

    // Culling never inspects more than the dense sweep, and the two
    // accounts partition the same res^3 workload.
    EXPECT_DOUBLE_EQ(
        culled_counts.itemsFor(KernelId::Integrate) +
            culled_counts.skippedFor(KernelId::Integrate),
        dense_counts.itemsFor(KernelId::Integrate));
    return culled_counts;
}

TEST(IntegrateParity, CulledMatchesDenseIdentityPose)
{
    const WorkCounts counts = checkCulledMatchesDense(Mat4f{}, 11);
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
}

TEST(IntegrateParity, CulledMatchesDensePartialFrustum)
{
    // Oblique view from outside a corner: a good part of the volume
    // projects off-image, so whole columns get culled mid-range.
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.8f, 0.4f, -0.6f}, Vec3f{-0.2f, 0.0f, 1.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    const WorkCounts counts = checkCulledMatchesDense(pose, 12);
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_GT(counts.skippedFor(KernelId::Integrate), 0.0);
}

TEST(IntegrateParity, CulledMatchesDenseCameraInsideVolume)
{
    // Camera in the middle of the volume: every column straddles the
    // camera plane, exercising the behind-camera half-space clip.
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.0f, 0.0f, 1.0f}, Vec3f{0.0f, 0.0f, 2.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    const WorkCounts counts = checkCulledMatchesDense(pose, 13);
    EXPECT_GT(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_GT(counts.skippedFor(KernelId::Integrate), 0.0);
}

TEST(IntegrateParity, CulledMatchesDenseVolumeBehindCamera)
{
    // Looking directly away from the volume: everything is culled
    // and the volume must stay untouched, exactly like the dense
    // sweep (which visits every voxel and updates none).
    const Mat4f pose = slambench::math::lookAt(
        Vec3f{0.0f, 0.0f, -0.5f}, Vec3f{0.0f, 0.0f, -2.0f},
        Vec3f{0.0f, 1.0f, 0.0f});
    const WorkCounts counts = checkCulledMatchesDense(pose, 14);
    EXPECT_DOUBLE_EQ(counts.itemsFor(KernelId::Integrate), 0.0);
    EXPECT_DOUBLE_EQ(counts.skippedFor(KernelId::Integrate),
                     32.0 * 32.0 * 32.0);
}

TEST(IntegrateParity, CulledMatchesDensePooled)
{
    // All four combinations of {culled, dense} x {serial, pooled}
    // must agree bit-for-bit across several fused frames.
    const auto k = CameraIntrinsics::fromFov(40, 32, 1.1f);
    const Mat4f poses[] = {
        Mat4f{},
        slambench::math::lookAt(Vec3f{0.5f, 0.2f, -0.4f},
                                Vec3f{0.0f, 0.0f, 1.0f},
                                Vec3f{0.0f, 1.0f, 0.0f}),
    };

    TsdfVolume culled_serial(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume culled_pooled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    TsdfVolume dense_pooled(32, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f});
    ThreadPool pool(3);
    WorkCounts counts;
    uint64_t seed = 21;
    for (const Mat4f &pose : poses) {
        const Image<float> depth = makeDepth(k, seed++);
        culled_serial.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                                nullptr);
        culled_pooled.integrate(depth, k, pose, 0.1f, 100.0f, counts,
                                &pool);
        dense_pooled.integrateDense(depth, k, pose, 0.1f, 100.0f,
                                    counts, &pool);
    }
    expectBitIdentical(culled_serial, culled_pooled);
    expectBitIdentical(culled_serial, dense_pooled);
}

// --- gradient parity ---

class FusedVolume : public ::testing::Test
{
  protected:
    FusedVolume()
        : volume_(48, 2.0f, Vec3f{-1.0f, -1.0f, 0.0f}),
          k_(CameraIntrinsics::fromFov(48, 48, 1.0f))
    {
        WorkCounts counts;
        Image<float> wall(k_.width, k_.height, 1.0f);
        volume_.integrate(wall, k_, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
        const Image<float> depth = makeDepth(k_, 31);
        volume_.integrate(depth, k_, Mat4f{}, 0.1f, 100.0f, counts,
                          nullptr);
    }

    TsdfVolume volume_;
    CameraIntrinsics k_;
};

TEST_F(FusedVolume, FusedGradMatchesReferenceEverywhere)
{
    // Random points over the whole volume (inside, near faces, and
    // in unobserved space where the per-axis early-outs trigger).
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Vec3f p{
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-1.1, 1.1)),
            static_cast<float>(rng.uniform(-0.1, 2.1))};
        const Vec3f fused = volume_.grad(p);
        const Vec3f reference = volume_.gradReference(p);
        ASSERT_EQ(fused.x, reference.x) << "at " << p.x << ", "
                                        << p.y << ", " << p.z;
        ASSERT_EQ(fused.y, reference.y);
        ASSERT_EQ(fused.z, reference.z);
    }
}

TEST_F(FusedVolume, FusedGradMatchesReferenceNearSurface)
{
    // Dense sampling in the truncation band around the fused wall,
    // where raycast actually evaluates gradients.
    Rng rng(8);
    for (int i = 0; i < 20000; ++i) {
        const Vec3f p{
            static_cast<float>(rng.uniform(-0.9, 0.9)),
            static_cast<float>(rng.uniform(-0.9, 0.9)),
            static_cast<float>(rng.uniform(0.85, 1.15))};
        const Vec3f fused = volume_.grad(p);
        const Vec3f reference = volume_.gradReference(p);
        ASSERT_EQ(fused.x, reference.x);
        ASSERT_EQ(fused.y, reference.y);
        ASSERT_EQ(fused.z, reference.z);
    }
}

// --- raycast parity ---

RaycastParams
testParams(const TsdfVolume &volume)
{
    RaycastParams params;
    params.nearPlane = 0.1f;
    params.farPlane = 4.0f;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;
    return params;
}

TEST_F(FusedVolume, RaycastPooledMatchesSerial)
{
    const RaycastParams params = testParams(volume_);
    Image<Vec3f> vertex_s, normal_s, vertex_p, normal_p;
    WorkCounts counts;
    ThreadPool pool(3);
    raycastKernel(vertex_s, normal_s, volume_, k_, Mat4f{}, params,
                  counts, nullptr);
    raycastKernel(vertex_p, normal_p, volume_, k_, Mat4f{}, params,
                  counts, &pool);
    ASSERT_EQ(vertex_s.size(), vertex_p.size());
    for (size_t i = 0; i < vertex_s.size(); ++i) {
        ASSERT_EQ(vertex_s[i].x, vertex_p[i].x) << "pixel " << i;
        ASSERT_EQ(vertex_s[i].y, vertex_p[i].y);
        ASSERT_EQ(vertex_s[i].z, vertex_p[i].z);
        ASSERT_EQ(normal_s[i].x, normal_p[i].x);
        ASSERT_EQ(normal_s[i].y, normal_p[i].y);
        ASSERT_EQ(normal_s[i].z, normal_p[i].z);
    }
}

TEST_F(FusedVolume, RenderVolumePooledMatchesSerial)
{
    const RaycastParams params = testParams(volume_);
    Image<slambench::support::Rgb8> serial, pooled;
    WorkCounts counts;
    ThreadPool pool(3);
    renderVolumeKernel(serial, volume_, k_, Mat4f{}, params, counts,
                       nullptr);
    renderVolumeKernel(pooled, volume_, k_, Mat4f{}, params, counts,
                       &pool);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].r, pooled[i].r) << "pixel " << i;
        ASSERT_EQ(serial[i].g, pooled[i].g);
        ASSERT_EQ(serial[i].b, pooled[i].b);
    }
}

TEST_F(FusedVolume, ClippedRayFromFarOriginHitsSameSurface)
{
    // The AABB clip fast-forwards the march to the volume entry, so
    // pushing the origin back along the ray must find the same
    // surface (up to the fine step's refinement tolerance).
    const RaycastParams params = testParams(volume_);
    Vec3f near_hit, far_hit;
    int near_steps = 0, far_steps = 0;
    ASSERT_TRUE(castRay(volume_, Vec3f{0.0f, 0.0f, 0.2f},
                        Vec3f{0.0f, 0.0f, 1.0f}, params, near_hit,
                        near_steps));
    ASSERT_TRUE(castRay(volume_, Vec3f{0.0f, 0.0f, -2.0f},
                        Vec3f{0.0f, 0.0f, 1.0f}, params, far_hit,
                        far_steps));
    EXPECT_NEAR(near_hit.z, far_hit.z, volume_.voxelSize());
    // The far ray marches the clipped interval, not the extra two
    // meters of empty space in front of the volume.
    EXPECT_LT(far_steps, near_steps + 30);
}

TEST_F(FusedVolume, RaysMissingTheVolumeTakeNoSteps)
{
    const RaycastParams params = testParams(volume_);
    Vec3f hit;
    int steps = 0;
    EXPECT_FALSE(castRay(volume_, Vec3f{0.0f, 0.0f, -0.5f},
                         Vec3f{0.0f, 0.0f, -1.0f}, params, hit,
                         steps));
    EXPECT_EQ(steps, 0);
    EXPECT_FALSE(castRay(volume_, Vec3f{5.0f, 0.0f, 1.0f},
                         Vec3f{0.0f, 1.0f, 0.0f}, params, hit,
                         steps));
    EXPECT_EQ(steps, 0);
}

} // namespace
