/**
 * @file
 * Tests for the accuracy (ATE) and timing metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/se3.hpp"
#include "metrics/ate.hpp"
#include "metrics/timing.hpp"
#include "support/rng.hpp"

namespace {

using namespace slambench::metrics;
using slambench::math::Mat3d;
using slambench::math::Mat4d;
using slambench::math::Mat4f;
using slambench::math::Vec3d;
using slambench::support::Rng;

std::vector<Vec3d>
randomCloud(Rng &rng, size_t n)
{
    std::vector<Vec3d> pts;
    pts.reserve(n);
    for (size_t i = 0; i < n; ++i)
        pts.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2),
                       rng.uniform(-2, 2)});
    return pts;
}

// --- alignRigid ---

TEST(AlignRigid, IdentityForMatchingSets)
{
    Rng rng(1);
    const auto pts = randomCloud(rng, 30);
    const Mat4d t = alignRigid(pts, pts);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_NEAR(t(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

class AlignRigidRecovers : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AlignRigidRecovers, RandomRigidTransform)
{
    Rng rng(GetParam());
    const auto source = randomCloud(rng, 50);
    const Mat3d rot = slambench::math::expSo3(
        Vec3d{rng.normal(), rng.normal(), rng.normal()}.normalized() *
        rng.uniform(0.0, 3.0));
    const Vec3d trans{rng.uniform(-5, 5), rng.uniform(-5, 5),
                      rng.uniform(-5, 5)};
    const Mat4d truth = Mat4d::fromRt(rot, trans);

    std::vector<Vec3d> target;
    for (const Vec3d &p : source)
        target.push_back(truth.transformPoint(p));

    const Mat4d estimated = alignRigid(source, target);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_NEAR(estimated(r, c), truth(r, c), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignRigidRecovers,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17));

TEST(AlignRigid, NoisyCorrespondencesStillClose)
{
    Rng rng(23);
    const auto source = randomCloud(rng, 200);
    const Mat4d truth =
        Mat4d::fromRt(slambench::math::rotationY(0.7), {1, 2, 3});
    std::vector<Vec3d> target;
    for (const Vec3d &p : source) {
        Vec3d q = truth.transformPoint(p);
        q += Vec3d{rng.normal(0, 0.01), rng.normal(0, 0.01),
                   rng.normal(0, 0.01)};
        target.push_back(q);
    }
    const Mat4d estimated = alignRigid(source, target);
    EXPECT_NEAR((estimated.translationPart() -
                 truth.translationPart())
                    .norm(),
                0.0, 0.02);
}

// --- computeAte ---

TEST(Ate, ZeroForIdenticalTrajectories)
{
    Rng rng(31);
    std::vector<Mat4f> traj;
    for (int i = 0; i < 20; ++i)
        traj.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.1f, 0.0f, 0.0f}));
    const AteResult ate = computeAte(traj, traj, false);
    EXPECT_DOUBLE_EQ(ate.maxAte, 0.0);
    EXPECT_DOUBLE_EQ(ate.rmse, 0.0);
    EXPECT_EQ(ate.frames, 20u);
}

TEST(Ate, ConstantOffsetReportedUnaligned)
{
    std::vector<Mat4f> gt, est;
    for (int i = 0; i < 10; ++i) {
        gt.push_back(Mat4f::translation(
            {static_cast<float>(i), 0.0f, 0.0f}));
        est.push_back(Mat4f::translation(
            {static_cast<float>(i), 0.5f, 0.0f}));
    }
    const AteResult raw = computeAte(est, gt, false);
    EXPECT_NEAR(raw.maxAte, 0.5, 1e-6);
    EXPECT_NEAR(raw.meanAte, 0.5, 1e-6);
    // With alignment the offset disappears.
    const AteResult aligned = computeAte(est, gt, true);
    EXPECT_NEAR(aligned.maxAte, 0.0, 1e-6);
}

TEST(Ate, StatisticsAreConsistent)
{
    Rng rng(37);
    std::vector<Mat4f> gt, est;
    for (int i = 0; i < 50; ++i) {
        const float x = static_cast<float>(i) * 0.05f;
        gt.push_back(Mat4f::translation({x, 0, 0}));
        est.push_back(Mat4f::translation(
            {x + static_cast<float>(rng.normal(0, 0.02)), 0, 0}));
    }
    const AteResult ate = computeAte(est, gt, false);
    EXPECT_GE(ate.maxAte, ate.rmse);
    EXPECT_GE(ate.rmse, ate.meanAte * 0.99);
    EXPECT_EQ(ate.perFrame.size(), 50u);
    double max_err = 0.0;
    for (double e : ate.perFrame)
        max_err = std::max(max_err, e);
    EXPECT_DOUBLE_EQ(max_err, ate.maxAte);
}

TEST(Ate, MedianIsRobustToOneOutlier)
{
    std::vector<Mat4f> gt(21), est(21);
    est[10] = Mat4f::translation({5.0f, 0.0f, 0.0f}); // one outlier
    const AteResult ate = computeAte(est, gt, false);
    EXPECT_NEAR(ate.medianAte, 0.0, 1e-9);
    EXPECT_NEAR(ate.maxAte, 5.0, 1e-5);
}

TEST(Ate, MedianAveragesMiddlePairForEvenLength)
{
    // Per-frame errors 1,2,3,10 -> median is (2+3)/2 = 2.5 (the TUM
    // evaluate_ate convention), not the upper-middle element 3.
    std::vector<Vec3d> gt(4, Vec3d{}), est(4, Vec3d{});
    est[0] = {1.0, 0.0, 0.0};
    est[1] = {2.0, 0.0, 0.0};
    est[2] = {3.0, 0.0, 0.0};
    est[3] = {10.0, 0.0, 0.0};
    const AteResult ate = computeAtePositions(est, gt, false);
    EXPECT_DOUBLE_EQ(ate.medianAte, 2.5);
}

TEST(Ate, MedianIsMiddleElementForOddLength)
{
    std::vector<Vec3d> gt(3, Vec3d{}), est(3, Vec3d{});
    est[0] = {1.0, 0.0, 0.0};
    est[1] = {7.0, 0.0, 0.0};
    est[2] = {2.0, 0.0, 0.0};
    const AteResult ate = computeAtePositions(est, gt, false);
    EXPECT_DOUBLE_EQ(ate.medianAte, 2.0);
}

TEST(Ate, MedianOfTwoFramesIsTheirMean)
{
    std::vector<Vec3d> gt(2, Vec3d{}), est(2, Vec3d{});
    est[0] = {1.0, 0.0, 0.0};
    est[1] = {3.0, 0.0, 0.0};
    const AteResult ate = computeAtePositions(est, gt, false);
    EXPECT_DOUBLE_EQ(ate.medianAte, 2.0);
}

TEST(Ate, EmptyTrajectoriesAreHandled)
{
    const AteResult ate = computeAte({}, {}, false);
    EXPECT_EQ(ate.frames, 0u);
    EXPECT_DOUBLE_EQ(ate.maxAte, 0.0);
}

// --- RPE ---

TEST(Rpe, ZeroForIdenticalTrajectories)
{
    std::vector<Mat4f> traj;
    for (int i = 0; i < 10; ++i)
        traj.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.1f, 0.0f, 0.0f}));
    const RpeResult rpe = computeRpe(traj, traj, 1);
    EXPECT_EQ(rpe.pairs, 9u);
    EXPECT_NEAR(rpe.translationRmse, 0.0, 1e-7);
    EXPECT_NEAR(rpe.rotationRmse, 0.0, 1e-6);
}

TEST(Rpe, ConstantOffsetIsInvisible)
{
    // A constant rigid offset between trajectories does not affect
    // relative motion: RPE must be ~0 where ATE is large.
    std::vector<Mat4f> gt, est;
    const Mat4f offset = Mat4f::translation({5.0f, -2.0f, 1.0f});
    for (int i = 0; i < 12; ++i) {
        const Mat4f pose = Mat4f::translation(
            {static_cast<float>(i) * 0.05f, 0.0f, 0.0f});
        gt.push_back(pose);
        est.push_back(offset * pose);
    }
    const RpeResult rpe = computeRpe(est, gt, 1);
    EXPECT_NEAR(rpe.translationRmse, 0.0, 1e-6);
    const AteResult ate = computeAte(est, gt, false);
    EXPECT_GT(ate.maxAte, 1.0);
}

TEST(Rpe, DetectsPerFrameDrift)
{
    // Estimated trajectory drifts 1 mm per frame along x.
    std::vector<Mat4f> gt(20), est;
    for (int i = 0; i < 20; ++i)
        est.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.001f, 0.0f, 0.0f}));
    const RpeResult rpe = computeRpe(est, gt, 1);
    EXPECT_NEAR(rpe.translationRmse, 0.001, 1e-6);
    EXPECT_NEAR(rpe.translationMax, 0.001, 1e-6);
}

TEST(Rpe, DeltaScalesTheInterval)
{
    std::vector<Mat4f> gt(20), est;
    for (int i = 0; i < 20; ++i)
        est.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.001f, 0.0f, 0.0f}));
    const RpeResult rpe5 = computeRpe(est, gt, 5);
    EXPECT_NEAR(rpe5.translationRmse, 0.005, 1e-6);
    EXPECT_EQ(rpe5.pairs, 15u);
}

TEST(Rpe, RotationErrorMeasured)
{
    std::vector<Mat4f> gt(10), est;
    for (int i = 0; i < 10; ++i) {
        // 0.01 rad of extra yaw per frame.
        est.push_back(Mat4f::fromRt(
            slambench::math::rotationY(0.01f * static_cast<float>(i)),
            {0, 0, 0}));
    }
    const RpeResult rpe = computeRpe(est, gt, 1);
    EXPECT_NEAR(rpe.rotationRmse, 0.01, 1e-5);
}

TEST(Rpe, TooFewFramesIsSafe)
{
    std::vector<Mat4f> one(1);
    const RpeResult rpe = computeRpe(one, one, 1);
    EXPECT_EQ(rpe.pairs, 0u);
    EXPECT_DOUBLE_EQ(rpe.translationRmse, 0.0);
}

// --- timing ---

TEST(Timing, SummaryStatistics)
{
    const std::vector<double> frames{0.01, 0.02, 0.03, 0.04};
    const TimingSummary s = summarizeTiming(frames);
    EXPECT_EQ(s.frameSeconds.count(), 4u);
    EXPECT_NEAR(s.frameSeconds.mean(), 0.025, 1e-12);
    EXPECT_NEAR(s.totalSeconds, 0.1, 1e-12);
    EXPECT_NEAR(s.meanFps(), 40.0, 1e-9);
    EXPECT_NEAR(s.worstFps(), 25.0, 1e-9);
    EXPECT_GT(s.p95Seconds, 0.03);
}

TEST(Timing, EmptyIsSafe)
{
    const TimingSummary s = summarizeTiming({});
    EXPECT_DOUBLE_EQ(s.meanFps(), 0.0);
    EXPECT_DOUBLE_EQ(s.totalSeconds, 0.0);
}

TEST(Timing, DescribeMentionsFps)
{
    const TimingSummary s = summarizeTiming({0.1, 0.1});
    const std::string text = describeTiming(s);
    EXPECT_NE(text.find("10.0 FPS"), std::string::npos);
    EXPECT_NE(text.find("2 frames"), std::string::npos);
}

} // namespace

// --- support::metrics registry, histogram, and run report ---

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace sm = slambench::support::metrics;

TEST(MetricsRegistry, CounterGaugeBasics)
{
    sm::Counter &counter =
        sm::Registry::instance().counter("test.basics.counter");
    counter.reset();
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);

    sm::Gauge &gauge =
        sm::Registry::instance().gauge("test.basics.gauge");
    gauge.reset();
    gauge.set(1.5);
    gauge.setMax(0.5); // lower: ignored
    EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
    gauge.setMax(2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
}

TEST(MetricsRegistry, HandlesAreStableAcrossReset)
{
    sm::Counter &before =
        sm::Registry::instance().counter("test.stable.counter");
    before.add(7);
    sm::Registry::instance().resetValues();
    EXPECT_EQ(before.value(), 0u);
    sm::Counter &after =
        sm::Registry::instance().counter("test.stable.counter");
    EXPECT_EQ(&before, &after);
}

TEST(MetricsRegistry, ConcurrentCounterIncrementsAreExact)
{
    slambench::support::ThreadPool pool(4);
    sm::Counter &counter =
        sm::Registry::instance().counter("test.concurrent.counter");
    counter.reset();
    constexpr size_t kIncrements = 100000;
    pool.parallelFor(0, kIncrements,
                     [&](size_t) { counter.add(1); });
    EXPECT_EQ(counter.value(), kIncrements);
}

TEST(MetricsRegistry, ConcurrentHistogramRecordsAreExact)
{
    slambench::support::ThreadPool pool(4);
    sm::LatencyHistogram &histogram =
        sm::Registry::instance().histogram("test.concurrent.hist");
    histogram.reset();
    constexpr size_t kSamples = 20000;
    pool.parallelFor(0, kSamples, [&](size_t i) {
        histogram.record(1e-3 * (1.0 + static_cast<double>(i % 7)));
    });
    EXPECT_EQ(histogram.count(), kSamples);
    uint64_t bucket_total = 0;
    for (size_t i = 0; i < histogram.numBuckets(); ++i)
        bucket_total += histogram.bucketCount(i);
    EXPECT_EQ(bucket_total, kSamples);
    EXPECT_NEAR(histogram.sum(), histogram.mean() * kSamples, 1e-6);
}

TEST(LatencyHistogram, BucketsAreContiguous)
{
    sm::LatencyHistogram histogram;
    EXPECT_DOUBLE_EQ(histogram.bucketLo(0), 0.0);
    for (size_t i = 0; i + 1 < histogram.numBuckets(); ++i) {
        EXPECT_DOUBLE_EQ(histogram.bucketHi(i),
                         histogram.bucketLo(i + 1))
            << "gap between buckets " << i << " and " << i + 1;
        EXPECT_LT(histogram.bucketLo(i), histogram.bucketHi(i));
    }
    EXPECT_TRUE(std::isinf(
        histogram.bucketHi(histogram.numBuckets() - 1)));
    EXPECT_NEAR(histogram.bucketLo(1), 1e-7, 1e-18);
}

TEST(LatencyHistogram, BoundaryValuesLandInTheRightBuckets)
{
    sm::LatencyHistogram histogram;
    histogram.record(0.0);    // underflow
    histogram.record(-1.0);   // negative: underflow, not a crash
    histogram.record(1e-9);   // below the first bounded bucket
    histogram.record(1e9);    // beyond the last bounded bucket
    EXPECT_EQ(histogram.bucketCount(0), 3u);
    EXPECT_EQ(histogram.bucketCount(histogram.numBuckets() - 1), 1u);
    EXPECT_EQ(histogram.count(), 4u);

    // A value safely inside a middle bucket is counted exactly once,
    // in a bucket whose range contains it.
    sm::LatencyHistogram mid;
    const double sample = 1.5e-3;
    mid.record(sample);
    size_t hits = 0;
    for (size_t i = 0; i < mid.numBuckets(); ++i) {
        if (mid.bucketCount(i) == 0)
            continue;
        ++hits;
        EXPECT_LE(mid.bucketLo(i), sample);
        EXPECT_GT(mid.bucketHi(i), sample);
    }
    EXPECT_EQ(hits, 1u);
}

TEST(LatencyHistogram, StatsAndQuantilesBehave)
{
    sm::LatencyHistogram histogram;
    EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
    EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);

    for (int i = 1; i <= 100; ++i)
        histogram.record(1e-3 * i); // 1ms .. 100ms
    EXPECT_EQ(histogram.count(), 100u);
    EXPECT_DOUBLE_EQ(histogram.min(), 1e-3);
    EXPECT_DOUBLE_EQ(histogram.max(), 0.1);
    EXPECT_NEAR(histogram.mean(), 0.0505, 1e-12);

    const double p50 = histogram.quantile(0.50);
    const double p90 = histogram.quantile(0.90);
    const double p99 = histogram.quantile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, histogram.max());
    EXPECT_GE(p50, histogram.min());
    // Bucketed quantiles are coarse; half-a-bucket (~17%) accuracy.
    EXPECT_NEAR(p50, 0.050, 0.017);
    EXPECT_NEAR(p90, 0.090, 0.030);
}

TEST(LatencyHistogram, TopPopulatedBucketTracksTail)
{
    sm::LatencyHistogram histogram;
    // Empty histogram: every sample would be "the tail" (>= is
    // trivially false against numBuckets()... check the sentinel).
    EXPECT_EQ(histogram.highestPopulatedBucket(),
              histogram.numBuckets());

    histogram.record(1e-3);
    histogram.record(2e-3);
    histogram.record(0.5); // the tail sample
    const size_t top = histogram.highestPopulatedBucket();
    EXPECT_EQ(top, histogram.bucketIndexFor(0.5));
    // The tail-retention predicate: the slow sample is in the top
    // populated bucket, the fast ones are not.
    EXPECT_GE(histogram.bucketIndexFor(0.5), top);
    EXPECT_LT(histogram.bucketIndexFor(1e-3), top);
    EXPECT_LT(histogram.bucketIndexFor(2e-3), top);

    // A new slower sample moves the top bucket up.
    histogram.record(10.0);
    EXPECT_GT(histogram.highestPopulatedBucket(), top);
    // Overflow samples land in (and define) the last bucket.
    histogram.record(1e9);
    EXPECT_EQ(histogram.highestPopulatedBucket(),
              histogram.numBuckets() - 1);
}

// Minimal recursive-descent JSON reader for the round-trip test.
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        static const JsonValue missing;
        const auto it = object.find(key);
        return it == object.end() ? missing : it->second;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(std::string text) : text_(std::move(text)) {}

    bool
    parse(JsonValue &out)
    {
        pos_ = 0;
        const bool ok = parseValue(out);
        skipSpace();
        return ok && pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                const char esc = text_[pos_++];
                switch (esc) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case 'u':
                    pos_ += 4; // tests only emit ASCII escapes
                    c = '?';
                    break;
                default: c = esc;
                }
            }
            out += c;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{') {
            out.type = JsonValue::Type::Object;
            ++pos_;
            skipSpace();
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (text_[pos_] != ':')
                    return false;
                ++pos_;
                JsonValue child;
                if (!parseValue(child))
                    return false;
                out.object.emplace(std::move(key), std::move(child));
                skipSpace();
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            out.type = JsonValue::Type::Array;
            ++pos_;
            skipSpace();
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue child;
                if (!parseValue(child))
                    return false;
                out.array.push_back(std::move(child));
                skipSpace();
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.text);
        }
        if (literal("true")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.type = JsonValue::Type::Bool;
            return true;
        }
        if (literal("null"))
            return true;
        out.type = JsonValue::Type::Number;
        char *end = nullptr;
        out.number = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_)
            return false;
        pos_ = static_cast<size_t>(end - text_.c_str());
        return true;
    }

    std::string text_;
    size_t pos_ = 0;
};

TEST(RunReport, JsonRoundTripParses)
{
    const std::string json_path =
        ::testing::TempDir() + "metrics_roundtrip.json";
    const std::string csv_path =
        ::testing::TempDir() + "metrics_roundtrip.csv";
    sm::RunSession session(json_path, csv_path, "metrics_test");
    ASSERT_TRUE(session.active());
    session.setParam("vr", "256");
    session.setParam("csr", "1");
    session.setSummary("speedup", 2.5);
    for (int i = 0; i < 5; ++i) {
        sm::FrameTelemetry t;
        t.label = "unit \"quoted\" label";
        t.frame = static_cast<uint64_t>(i);
        t.wallSeconds = 0.010 + 0.001 * i;
        t.ateMeters = 0.001 * i;
        t.tracked = true;
        t.integrated = (i % 2) == 0;
        session.addFrame(t);
    }
    EXPECT_EQ(session.frameCount(), 5u);

    std::ostringstream os;
    session.writeJson(os);

    JsonValue root;
    ASSERT_TRUE(JsonReader(os.str()).parse(root))
        << "unparseable report:\n"
        << os.str();
    ASSERT_EQ(root.type, JsonValue::Type::Object);

    EXPECT_EQ(root.at("schema").text, "slambench-run-report");
    EXPECT_EQ(root.at("schema_version").number,
              sm::RunSession::kSchemaVersion);
    EXPECT_EQ(root.at("generator").text, "metrics_test");
    EXPECT_FALSE(root.at("git_describe").text.empty());
    EXPECT_EQ(root.at("config").at("vr").text, "256");

    const JsonValue &run = root.at("run");
    EXPECT_EQ(run.at("frames").number, 5.0);
    EXPECT_EQ(run.at("tracked_frames").number, 5.0);
    EXPECT_EQ(run.at("integrated_frames").number, 3.0);
    EXPECT_GT(run.at("peak_rss_bytes").number, 0.0);

    const JsonValue &summary = root.at("summary");
    EXPECT_NEAR(summary.at("frame_wall_seconds_mean").number, 0.012,
                1e-9);
    EXPECT_NEAR(summary.at("ate_max_m").number, 0.004, 1e-9);
    EXPECT_DOUBLE_EQ(summary.at("tracked_fraction").number, 1.0);
    EXPECT_DOUBLE_EQ(summary.at("speedup").number, 2.5);

    // Every histogram's bucket counts must sum to its count and its
    // sum must reconcile with mean * count.
    for (const auto &[name, histogram] :
         root.at("histograms").object) {
        const double count = histogram.at("count").number;
        double bucket_total = 0.0;
        for (const JsonValue &bucket :
             histogram.at("buckets").array) {
            ASSERT_EQ(bucket.array.size(), 3u) << name;
            bucket_total += bucket.array[2].number;
        }
        EXPECT_DOUBLE_EQ(bucket_total, count) << name;
        EXPECT_NEAR(histogram.at("sum").number,
                    histogram.at("mean").number * count,
                    1e-9 * (1.0 + std::abs(
                                      histogram.at("sum").number)))
            << name;
    }

    // CSV export: header plus one row per frame, quoting preserved.
    std::ostringstream cs;
    session.writeFramesCsv(cs);
    std::vector<std::string> lines;
    std::istringstream ls(cs.str());
    for (std::string line; std::getline(ls, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 6u);
    EXPECT_EQ(lines[0],
              "label,frame,wall_ms,preprocess_ms,track_ms,"
              "integrate_ms,raycast_ms,ate_m,tracked,integrated,"
              "sim_joules,rss_peak_bytes");
    EXPECT_NE(lines[1].find("\"unit \"\"quoted\"\" label\""),
              std::string::npos);

    session.finish(); // writes the temp files; also idempotent
    session.finish();
}

TEST(RunReport, InactiveSessionRecordsNothing)
{
    sm::RunSession session;
    EXPECT_FALSE(session.active());
    sm::FrameTelemetry t;
    session.addFrame(t);
    session.setParam("vr", "64");
    session.setSummary("x", 1.0);
    EXPECT_EQ(session.frameCount(), 0u);
    session.finish(); // no-op, no crash
}

TEST(RunReport, ProcessStatsAreSane)
{
    EXPECT_GT(sm::peakRssBytes(), 0.0);
    EXPECT_GE(sm::processCpuSeconds(), 0.0);
    const uint64_t a = slambench::metrics::now_ns();
    const uint64_t b = slambench::metrics::now_ns();
    EXPECT_GE(b, a);
}
