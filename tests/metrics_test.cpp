/**
 * @file
 * Tests for the accuracy (ATE) and timing metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/se3.hpp"
#include "metrics/ate.hpp"
#include "metrics/timing.hpp"
#include "support/rng.hpp"

namespace {

using namespace slambench::metrics;
using slambench::math::Mat3d;
using slambench::math::Mat4d;
using slambench::math::Mat4f;
using slambench::math::Vec3d;
using slambench::support::Rng;

std::vector<Vec3d>
randomCloud(Rng &rng, size_t n)
{
    std::vector<Vec3d> pts;
    pts.reserve(n);
    for (size_t i = 0; i < n; ++i)
        pts.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2),
                       rng.uniform(-2, 2)});
    return pts;
}

// --- alignRigid ---

TEST(AlignRigid, IdentityForMatchingSets)
{
    Rng rng(1);
    const auto pts = randomCloud(rng, 30);
    const Mat4d t = alignRigid(pts, pts);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_NEAR(t(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

class AlignRigidRecovers : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AlignRigidRecovers, RandomRigidTransform)
{
    Rng rng(GetParam());
    const auto source = randomCloud(rng, 50);
    const Mat3d rot = slambench::math::expSo3(
        Vec3d{rng.normal(), rng.normal(), rng.normal()}.normalized() *
        rng.uniform(0.0, 3.0));
    const Vec3d trans{rng.uniform(-5, 5), rng.uniform(-5, 5),
                      rng.uniform(-5, 5)};
    const Mat4d truth = Mat4d::fromRt(rot, trans);

    std::vector<Vec3d> target;
    for (const Vec3d &p : source)
        target.push_back(truth.transformPoint(p));

    const Mat4d estimated = alignRigid(source, target);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_NEAR(estimated(r, c), truth(r, c), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignRigidRecovers,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17));

TEST(AlignRigid, NoisyCorrespondencesStillClose)
{
    Rng rng(23);
    const auto source = randomCloud(rng, 200);
    const Mat4d truth =
        Mat4d::fromRt(slambench::math::rotationY(0.7), {1, 2, 3});
    std::vector<Vec3d> target;
    for (const Vec3d &p : source) {
        Vec3d q = truth.transformPoint(p);
        q += Vec3d{rng.normal(0, 0.01), rng.normal(0, 0.01),
                   rng.normal(0, 0.01)};
        target.push_back(q);
    }
    const Mat4d estimated = alignRigid(source, target);
    EXPECT_NEAR((estimated.translationPart() -
                 truth.translationPart())
                    .norm(),
                0.0, 0.02);
}

// --- computeAte ---

TEST(Ate, ZeroForIdenticalTrajectories)
{
    Rng rng(31);
    std::vector<Mat4f> traj;
    for (int i = 0; i < 20; ++i)
        traj.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.1f, 0.0f, 0.0f}));
    const AteResult ate = computeAte(traj, traj, false);
    EXPECT_DOUBLE_EQ(ate.maxAte, 0.0);
    EXPECT_DOUBLE_EQ(ate.rmse, 0.0);
    EXPECT_EQ(ate.frames, 20u);
}

TEST(Ate, ConstantOffsetReportedUnaligned)
{
    std::vector<Mat4f> gt, est;
    for (int i = 0; i < 10; ++i) {
        gt.push_back(Mat4f::translation(
            {static_cast<float>(i), 0.0f, 0.0f}));
        est.push_back(Mat4f::translation(
            {static_cast<float>(i), 0.5f, 0.0f}));
    }
    const AteResult raw = computeAte(est, gt, false);
    EXPECT_NEAR(raw.maxAte, 0.5, 1e-6);
    EXPECT_NEAR(raw.meanAte, 0.5, 1e-6);
    // With alignment the offset disappears.
    const AteResult aligned = computeAte(est, gt, true);
    EXPECT_NEAR(aligned.maxAte, 0.0, 1e-6);
}

TEST(Ate, StatisticsAreConsistent)
{
    Rng rng(37);
    std::vector<Mat4f> gt, est;
    for (int i = 0; i < 50; ++i) {
        const float x = static_cast<float>(i) * 0.05f;
        gt.push_back(Mat4f::translation({x, 0, 0}));
        est.push_back(Mat4f::translation(
            {x + static_cast<float>(rng.normal(0, 0.02)), 0, 0}));
    }
    const AteResult ate = computeAte(est, gt, false);
    EXPECT_GE(ate.maxAte, ate.rmse);
    EXPECT_GE(ate.rmse, ate.meanAte * 0.99);
    EXPECT_EQ(ate.perFrame.size(), 50u);
    double max_err = 0.0;
    for (double e : ate.perFrame)
        max_err = std::max(max_err, e);
    EXPECT_DOUBLE_EQ(max_err, ate.maxAte);
}

TEST(Ate, MedianIsRobustToOneOutlier)
{
    std::vector<Mat4f> gt(21), est(21);
    est[10] = Mat4f::translation({5.0f, 0.0f, 0.0f}); // one outlier
    const AteResult ate = computeAte(est, gt, false);
    EXPECT_NEAR(ate.medianAte, 0.0, 1e-9);
    EXPECT_NEAR(ate.maxAte, 5.0, 1e-5);
}

TEST(Ate, EmptyTrajectoriesAreHandled)
{
    const AteResult ate = computeAte({}, {}, false);
    EXPECT_EQ(ate.frames, 0u);
    EXPECT_DOUBLE_EQ(ate.maxAte, 0.0);
}

// --- RPE ---

TEST(Rpe, ZeroForIdenticalTrajectories)
{
    std::vector<Mat4f> traj;
    for (int i = 0; i < 10; ++i)
        traj.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.1f, 0.0f, 0.0f}));
    const RpeResult rpe = computeRpe(traj, traj, 1);
    EXPECT_EQ(rpe.pairs, 9u);
    EXPECT_NEAR(rpe.translationRmse, 0.0, 1e-7);
    EXPECT_NEAR(rpe.rotationRmse, 0.0, 1e-6);
}

TEST(Rpe, ConstantOffsetIsInvisible)
{
    // A constant rigid offset between trajectories does not affect
    // relative motion: RPE must be ~0 where ATE is large.
    std::vector<Mat4f> gt, est;
    const Mat4f offset = Mat4f::translation({5.0f, -2.0f, 1.0f});
    for (int i = 0; i < 12; ++i) {
        const Mat4f pose = Mat4f::translation(
            {static_cast<float>(i) * 0.05f, 0.0f, 0.0f});
        gt.push_back(pose);
        est.push_back(offset * pose);
    }
    const RpeResult rpe = computeRpe(est, gt, 1);
    EXPECT_NEAR(rpe.translationRmse, 0.0, 1e-6);
    const AteResult ate = computeAte(est, gt, false);
    EXPECT_GT(ate.maxAte, 1.0);
}

TEST(Rpe, DetectsPerFrameDrift)
{
    // Estimated trajectory drifts 1 mm per frame along x.
    std::vector<Mat4f> gt(20), est;
    for (int i = 0; i < 20; ++i)
        est.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.001f, 0.0f, 0.0f}));
    const RpeResult rpe = computeRpe(est, gt, 1);
    EXPECT_NEAR(rpe.translationRmse, 0.001, 1e-6);
    EXPECT_NEAR(rpe.translationMax, 0.001, 1e-6);
}

TEST(Rpe, DeltaScalesTheInterval)
{
    std::vector<Mat4f> gt(20), est;
    for (int i = 0; i < 20; ++i)
        est.push_back(Mat4f::translation(
            {static_cast<float>(i) * 0.001f, 0.0f, 0.0f}));
    const RpeResult rpe5 = computeRpe(est, gt, 5);
    EXPECT_NEAR(rpe5.translationRmse, 0.005, 1e-6);
    EXPECT_EQ(rpe5.pairs, 15u);
}

TEST(Rpe, RotationErrorMeasured)
{
    std::vector<Mat4f> gt(10), est;
    for (int i = 0; i < 10; ++i) {
        // 0.01 rad of extra yaw per frame.
        est.push_back(Mat4f::fromRt(
            slambench::math::rotationY(0.01f * static_cast<float>(i)),
            {0, 0, 0}));
    }
    const RpeResult rpe = computeRpe(est, gt, 1);
    EXPECT_NEAR(rpe.rotationRmse, 0.01, 1e-5);
}

TEST(Rpe, TooFewFramesIsSafe)
{
    std::vector<Mat4f> one(1);
    const RpeResult rpe = computeRpe(one, one, 1);
    EXPECT_EQ(rpe.pairs, 0u);
    EXPECT_DOUBLE_EQ(rpe.translationRmse, 0.0);
}

// --- timing ---

TEST(Timing, SummaryStatistics)
{
    const std::vector<double> frames{0.01, 0.02, 0.03, 0.04};
    const TimingSummary s = summarizeTiming(frames);
    EXPECT_EQ(s.frameSeconds.count(), 4u);
    EXPECT_NEAR(s.frameSeconds.mean(), 0.025, 1e-12);
    EXPECT_NEAR(s.totalSeconds, 0.1, 1e-12);
    EXPECT_NEAR(s.meanFps(), 40.0, 1e-9);
    EXPECT_NEAR(s.worstFps(), 25.0, 1e-9);
    EXPECT_GT(s.p95Seconds, 0.03);
}

TEST(Timing, EmptyIsSafe)
{
    const TimingSummary s = summarizeTiming({});
    EXPECT_DOUBLE_EQ(s.meanFps(), 0.0);
    EXPECT_DOUBLE_EQ(s.totalSeconds, 0.0);
}

TEST(Timing, DescribeMentionsFps)
{
    const TimingSummary s = summarizeTiming({0.1, 0.1});
    const std::string text = describeTiming(s);
    EXPECT_NE(text.find("10.0 FPS"), std::string::npos);
    EXPECT_NE(text.find("2 frames"), std::string::npos);
}

} // namespace
