/**
 * @file
 * Tests for the learning substrate: datasets, CART trees (regression
 * and classification), and the random forest.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace slambench::ml;
using slambench::support::Rng;

std::vector<size_t>
allRows(const Dataset &data)
{
    std::vector<size_t> rows(data.size());
    std::iota(rows.begin(), rows.end(), 0);
    return rows;
}

// --- Dataset ---

TEST(MlDataset, AddAndAccessRows)
{
    Dataset data(2);
    data.addRow({1.0, 2.0}, 3.0);
    data.addRow({4.0, 5.0}, 6.0);
    EXPECT_EQ(data.size(), 2u);
    EXPECT_DOUBLE_EQ(data.feature(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(data.target(1), 6.0);
    std::vector<double> row;
    data.rowFeatures(0, row);
    EXPECT_EQ(row, (std::vector<double>{1.0, 2.0}));
}

TEST(MlDataset, FeatureNames)
{
    Dataset data(2);
    EXPECT_EQ(data.featureName(0), "f0");
    data.setFeatureNames({"alpha", "beta"});
    EXPECT_EQ(data.featureName(1), "beta");
}

// --- Regression tree ---

TEST(RegressionTree, FitsAStepFunctionExactly)
{
    Dataset data(1);
    for (int i = 0; i < 50; ++i) {
        const double x = i / 50.0;
        data.addRow({x}, x < 0.5 ? 1.0 : 3.0);
    }
    DecisionTree tree;
    Rng rng(1);
    tree.fitRegression(data, allRows(data), TreeOptions{}, rng);
    EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-9);
    EXPECT_NEAR(tree.predict({0.9}), 3.0, 1e-9);
}

TEST(RegressionTree, ApproximatesSmoothFunction)
{
    Dataset data(2);
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform();
        const double y = rng.uniform();
        data.addRow({x, y}, std::sin(3 * x) + y * y);
    }
    DecisionTree tree;
    tree.fitRegression(data, allRows(data), TreeOptions{}, rng);

    double sse = 0.0;
    int n = 0;
    for (double x = 0.05; x < 1.0; x += 0.1) {
        for (double y = 0.05; y < 1.0; y += 0.1) {
            const double truth = std::sin(3 * x) + y * y;
            const double pred = tree.predict({x, y});
            sse += (pred - truth) * (pred - truth);
            ++n;
        }
    }
    EXPECT_LT(std::sqrt(sse / n), 0.15);
}

TEST(RegressionTree, RespectsMaxDepth)
{
    Dataset data(1);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform();
        data.addRow({x}, x);
    }
    TreeOptions options;
    options.maxDepth = 2;
    DecisionTree tree;
    tree.fitRegression(data, allRows(data), options, rng);
    EXPECT_LE(tree.depth(), 3u); // root + 2 levels
}

TEST(RegressionTree, MinSamplesLeafHonored)
{
    Dataset data(1);
    for (int i = 0; i < 10; ++i)
        data.addRow({static_cast<double>(i)}, static_cast<double>(i));
    TreeOptions options;
    options.minSamplesLeaf = 5;
    options.minSamplesSplit = 10;
    DecisionTree tree;
    Rng rng(4);
    tree.fitRegression(data, allRows(data), options, rng);
    // Only one split is possible (5|5).
    EXPECT_LE(tree.nodeCount(), 3u);
}

TEST(RegressionTree, ConstantTargetGivesLeafOnly)
{
    Dataset data(1);
    for (int i = 0; i < 20; ++i)
        data.addRow({static_cast<double>(i)}, 7.0);
    DecisionTree tree;
    Rng rng(5);
    tree.fitRegression(data, allRows(data), TreeOptions{}, rng);
    EXPECT_NEAR(tree.predict({3.0}), 7.0, 1e-12);
}

// --- Classification tree ---

TEST(ClassificationTree, SeparatesAxisAlignedClasses)
{
    Dataset data(2);
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform();
        const double y = rng.uniform();
        data.addRow({x, y}, (x < 0.4 && y < 0.6) ? 1.0 : 0.0);
    }
    DecisionTree tree;
    tree.fitClassification(data, allRows(data), TreeOptions{}, rng);
    EXPECT_GT(tree.predict({0.2, 0.3}), 0.5);
    EXPECT_LT(tree.predict({0.8, 0.3}), 0.5);
    EXPECT_LT(tree.predict({0.2, 0.9}), 0.5);
}

TEST(ClassificationTree, PureNodeStopsSplitting)
{
    Dataset data(1);
    for (int i = 0; i < 30; ++i)
        data.addRow({static_cast<double>(i)}, 1.0);
    DecisionTree tree;
    Rng rng(7);
    tree.fitClassification(data, allRows(data), TreeOptions{}, rng);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict({5.0}), 1.0);
}

TEST(ClassificationTree, RulesMentionFeatureNames)
{
    Dataset data(2);
    data.setFeatureNames({"volume_resolution", "mu"});
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        const double vr = rng.uniform(64, 256);
        const double mu = rng.uniform(0.02, 0.2);
        data.addRow({vr, mu}, vr < 128 ? 1.0 : 0.0);
    }
    DecisionTree tree;
    TreeOptions options;
    options.maxDepth = 2;
    tree.fitClassification(data, allRows(data), options, rng);
    const std::string rules = tree.toRules(data, "GOOD", "BAD");
    EXPECT_NE(rules.find("volume_resolution"), std::string::npos);
    EXPECT_NE(rules.find("GOOD"), std::string::npos);
    EXPECT_NE(rules.find("BAD"), std::string::npos);
}

// --- Random forest ---

TEST(Forest, BeatsMeanPredictorOnNonlinearData)
{
    Rng rng(9);
    Dataset train(3), test(3);
    auto fill = [&](Dataset &d, int n) {
        for (int i = 0; i < n; ++i) {
            const double a = rng.uniform(), b = rng.uniform(),
                         c = rng.uniform();
            d.addRow({a, b, c}, a * a + 2.0 * b + (c > 0.5 ? 1.0 : 0.0));
        }
    };
    fill(train, 600);
    fill(test, 200);

    RandomForest forest;
    ForestOptions options;
    options.numTrees = 30;
    forest.fit(train, options, rng);

    // Baseline: predicting the training mean.
    double mean = 0.0;
    for (size_t i = 0; i < train.size(); ++i)
        mean += train.target(i);
    mean /= static_cast<double>(train.size());
    double baseline_sse = 0.0;
    for (size_t i = 0; i < test.size(); ++i)
        baseline_sse += (test.target(i) - mean) *
                        (test.target(i) - mean);
    const double baseline_mse =
        baseline_sse / static_cast<double>(test.size());

    EXPECT_LT(forest.mseOn(test), baseline_mse / 4.0);
}

TEST(Forest, UncertaintyHigherOffDistribution)
{
    Rng rng(10);
    Dataset train(1);
    // Train only on x in [0, 0.5].
    for (int i = 0; i < 300; ++i) {
        const double x = rng.uniform(0.0, 0.5);
        train.addRow({x}, std::sin(8 * x) + rng.normal(0, 0.05));
    }
    RandomForest forest;
    ForestOptions options;
    options.numTrees = 40;
    options.bootstrapFraction = 0.6;
    forest.fit(train, options, rng);

    double var_in = 0.0, var_out = 0.0;
    int n = 0;
    for (double x = 0.05; x < 0.5; x += 0.05, ++n)
        var_in += forest.predictWithUncertainty({x}).variance;
    var_in /= n;
    // In-distribution variance should at least be finite and small;
    // on a wildly different input the trees still agree on a leaf,
    // so compare against noisy mid-train region instead of far OOD.
    var_out = forest.predictWithUncertainty({0.25}).variance;
    EXPECT_GE(var_in, 0.0);
    EXPECT_GE(var_out, 0.0);
}

TEST(Forest, DeterministicGivenSeed)
{
    Dataset train(2);
    Rng data_rng(11);
    for (int i = 0; i < 100; ++i)
        train.addRow({data_rng.uniform(), data_rng.uniform()},
                     data_rng.uniform());
    RandomForest f1, f2;
    ForestOptions options;
    options.numTrees = 10;
    Rng rng1(5), rng2(5);
    f1.fit(train, options, rng1);
    f2.fit(train, options, rng2);
    for (double x = 0.1; x < 1.0; x += 0.2)
        EXPECT_DOUBLE_EQ(f1.predict({x, 1.0 - x}),
                         f2.predict({x, 1.0 - x}));
}

TEST(Forest, PredictMeanEqualsUncertaintyMean)
{
    Dataset train(1);
    Rng rng(12);
    for (int i = 0; i < 50; ++i)
        train.addRow({rng.uniform()}, rng.uniform());
    RandomForest forest;
    forest.fit(train, ForestOptions{}, rng);
    const std::vector<double> q{0.3};
    EXPECT_DOUBLE_EQ(forest.predict(q),
                     forest.predictWithUncertainty(q).mean);
}

TEST(Forest, ParallelFitMatchesSerial)
{
    // fit() pre-splits one Rng per tree, so fitting on a pool is
    // bit-identical to the serial path and leaves the caller's Rng in
    // the same state either way.
    Dataset train(2);
    Rng data_rng(14);
    for (int i = 0; i < 150; ++i)
        train.addRow({data_rng.uniform(), data_rng.uniform()},
                     data_rng.uniform());
    ForestOptions options;
    options.numTrees = 16;

    RandomForest serial, parallel;
    Rng rng1(6), rng2(6);
    serial.fit(train, options, rng1);
    slambench::support::ThreadPool pool(4);
    parallel.fit(train, options, rng2, &pool);

    for (double x = 0.05; x < 1.0; x += 0.1) {
        const std::vector<double> q{x, 1.0 - x};
        EXPECT_DOUBLE_EQ(serial.predict(q), parallel.predict(q));
        EXPECT_DOUBLE_EQ(
            serial.predictWithUncertainty(q).variance,
            parallel.predictWithUncertainty(q).variance);
    }
    // Both fits must consume the caller's stream identically.
    EXPECT_EQ(rng1.nextU64(), rng2.nextU64());
}

TEST(Forest, SizeMatchesOptions)
{
    Dataset train(1);
    for (int i = 0; i < 20; ++i)
        train.addRow({static_cast<double>(i)}, static_cast<double>(i));
    RandomForest forest;
    ForestOptions options;
    options.numTrees = 7;
    Rng rng(13);
    forest.fit(train, options, rng);
    EXPECT_EQ(forest.size(), 7u);
}

} // namespace
