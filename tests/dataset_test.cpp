/**
 * @file
 * Tests for the synthetic dataset substrate: SDF evaluation, scenes,
 * trajectories, rendering, and the sensor noise model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "dataset/generator.hpp"
#include "dataset/noise.hpp"
#include "dataset/raw_io.hpp"
#include "dataset/renderer.hpp"
#include "dataset/scene.hpp"
#include "dataset/sdf.hpp"
#include "dataset/trajectory.hpp"

namespace {

using namespace slambench::dataset;
using slambench::math::Mat4f;
using slambench::math::Vec3f;
using slambench::support::Image;
using slambench::support::Rng;

// --- SDF primitives ---

TEST(Sdf, SphereDistance)
{
    Primitive s;
    s.kind = PrimitiveKind::Sphere;
    s.center = {1, 0, 0};
    s.params = {0.5f, 0, 0};
    EXPECT_NEAR(primitiveDistance(s, {3, 0, 0}), 1.5f, 1e-6f);
    EXPECT_NEAR(primitiveDistance(s, {1, 0, 0}), -0.5f, 1e-6f);
    EXPECT_NEAR(primitiveDistance(s, {1.5f, 0, 0}), 0.0f, 1e-6f);
}

TEST(Sdf, BoxDistanceOutsideFaceAndCorner)
{
    Primitive b;
    b.kind = PrimitiveKind::Box;
    b.center = {0, 0, 0};
    b.params = {1, 1, 1};
    EXPECT_NEAR(primitiveDistance(b, {2, 0, 0}), 1.0f, 1e-6f);
    // Corner distance: sqrt(3) from (2,2,2) to (1,1,1).
    EXPECT_NEAR(primitiveDistance(b, {2, 2, 2}),
                std::sqrt(3.0f), 1e-5f);
    // Inside: negative, distance to the nearest face.
    EXPECT_NEAR(primitiveDistance(b, {0.5f, 0, 0}), -0.5f, 1e-6f);
}

TEST(Sdf, InvertedBoxIsInsideOut)
{
    Primitive b;
    b.kind = PrimitiveKind::InvertedBox;
    b.center = {0, 1, 0};
    b.params = {2, 1, 2};
    // Center of the room: positive distance (free space) = 1 (to
    // ceiling/floor).
    EXPECT_NEAR(primitiveDistance(b, {0, 1, 0}), 1.0f, 1e-6f);
    // Beyond the wall: negative (solid).
    EXPECT_LT(primitiveDistance(b, {3, 1, 0}), 0.0f);
}

TEST(Sdf, BoxYawRotation)
{
    Primitive b;
    b.kind = PrimitiveKind::Box;
    b.center = {0, 0, 0};
    b.params = {1.0f, 1.0f, 0.1f};
    b.yaw = static_cast<float>(M_PI / 2); // slab now spans x ~ 0.1
    EXPECT_NEAR(primitiveDistance(b, {2.0f, 0, 0}), 1.9f, 1e-5f);
    EXPECT_NEAR(primitiveDistance(b, {0, 0, 2.0f}), 1.0f, 1e-5f);
}

TEST(Sdf, CylinderDistance)
{
    Primitive c;
    c.kind = PrimitiveKind::Cylinder;
    c.center = {0, 0, 0};
    c.params = {0.5f, 1.0f, 0.0f}; // radius, half height
    EXPECT_NEAR(primitiveDistance(c, {2, 0, 0}), 1.5f, 1e-6f);
    EXPECT_NEAR(primitiveDistance(c, {0, 2, 0}), 1.0f, 1e-6f);
    EXPECT_LT(primitiveDistance(c, {0, 0, 0}), 0.0f);
}

TEST(Sdf, SceneEvaluateTracksNearest)
{
    Scene scene;
    Primitive a;
    a.kind = PrimitiveKind::Sphere;
    a.center = {0, 0, 0};
    a.params = {1, 0, 0};
    Primitive b = a;
    b.center = {10, 0, 0};
    scene.add(a);
    scene.add(b);
    const SdfSample near_a = scene.evaluate({2, 0, 0});
    EXPECT_EQ(near_a.primitive, 0);
    const SdfSample near_b = scene.evaluate({9, 0, 0});
    EXPECT_EQ(near_b.primitive, 1);
}

TEST(Sdf, SceneNormalPointsOutward)
{
    Scene scene;
    Primitive s;
    s.kind = PrimitiveKind::Sphere;
    s.center = {0, 0, 0};
    s.params = {1, 0, 0};
    scene.add(s);
    const Vec3f n = scene.normal({1.0f, 0, 0});
    EXPECT_NEAR(n.x, 1.0f, 1e-2f);
    EXPECT_NEAR(n.norm(), 1.0f, 1e-4f);
}

// --- Scenes ---

TEST(Scene, LivingRoomHasFurnitureInsideVolume)
{
    const Scene scene = livingRoomScene();
    EXPECT_GT(scene.size(), 10u);
    // The scene center must be free space (camera flies there).
    EXPECT_GT(scene.distance({0.0f, 1.4f, 0.9f}), 0.05f);
    // The volume of kSceneVolumeSize must contain all furniture.
    for (const Primitive &p : scene.primitives()) {
        if (p.kind == PrimitiveKind::InvertedBox)
            continue;
        EXPECT_LT(std::abs(p.center.x), kSceneVolumeSize / 2)
            << p.name;
        EXPECT_LT(std::abs(p.center.z), kSceneVolumeSize / 2)
            << p.name;
    }
}

TEST(Scene, OfficeDiffersFromLivingRoom)
{
    const Scene lr = livingRoomScene();
    const Scene office = officeScene();
    EXPECT_NE(lr.size(), office.size());
}

// --- Catmull-Rom / trajectory ---

TEST(Trajectory, CatmullRomInterpolatesKeys)
{
    const std::vector<Vec3f> keys{{0, 0, 0}, {1, 0, 0}, {2, 1, 0},
                                  {3, 1, 0}};
    // At t=0 and t=1 the spline passes through the end keys.
    EXPECT_NEAR((catmullRom(keys, 0.0f, false) - keys.front()).norm(),
                0.0f, 1e-5f);
    EXPECT_NEAR((catmullRom(keys, 1.0f, false) - keys.back()).norm(),
                0.0f, 1e-5f);
    // Interior knots are hit at their parameter.
    EXPECT_NEAR(
        (catmullRom(keys, 1.0f / 3.0f, false) - keys[1]).norm(), 0.0f,
        1e-4f);
}

TEST(Trajectory, FromSplineFramesHaveSmallSteps)
{
    const TrajectorySpec spec = presetSpec(TrajectoryPreset::OrbitA);
    const Trajectory traj = Trajectory::fromSpline(spec, 60, 30.0);
    ASSERT_EQ(traj.size(), 60u);
    for (size_t i = 1; i < traj.size(); ++i) {
        const float step = (traj.pose(i).translationPart() -
                            traj.pose(i - 1).translationPart())
                               .norm();
        EXPECT_LT(step, 0.05f) << "frame " << i;
    }
}

TEST(Trajectory, PosesAreRigid)
{
    const Trajectory traj = Trajectory::fromSpline(
        presetSpec(TrajectoryPreset::SweepB), 20, 30.0);
    for (size_t i = 0; i < traj.size(); ++i) {
        EXPECT_NEAR(traj.pose(i).rotation().determinant(), 1.0f,
                    1e-4f);
    }
}

TEST(Trajectory, TimestampsFollowFps)
{
    const Trajectory traj = Trajectory::fromSpline(
        presetSpec(TrajectoryPreset::SweepB), 10, 25.0);
    EXPECT_DOUBLE_EQ(traj.timestamp(0), 0.0);
    EXPECT_NEAR(traj.timestamp(5), 0.2, 1e-9);
}

TEST(Trajectory, TumSaveLoadRoundTrip)
{
    const Trajectory traj = Trajectory::fromSpline(
        presetSpec(TrajectoryPreset::CloseupC), 15, 30.0);
    const std::string path = "/tmp/sb_test_traj.txt";
    ASSERT_TRUE(traj.saveTum(path));
    Trajectory loaded;
    ASSERT_TRUE(Trajectory::loadTum(path, loaded));
    ASSERT_EQ(loaded.size(), traj.size());
    for (size_t i = 0; i < traj.size(); ++i) {
        EXPECT_NEAR((loaded.pose(i).translationPart() -
                     traj.pose(i).translationPart())
                        .norm(),
                    0.0f, 1e-5f);
        // Rotations should match too (compare a rotated basis vector).
        const Vec3f a = loaded.pose(i).rotation() * Vec3f{0, 0, 1};
        const Vec3f b = traj.pose(i).rotation() * Vec3f{0, 0, 1};
        EXPECT_NEAR((a - b).norm(), 0.0f, 1e-4f);
    }
    std::filesystem::remove(path);
}

TEST(Trajectory, ParsePresetNames)
{
    TrajectoryPreset p;
    EXPECT_TRUE(parsePreset("orbit-a", p));
    EXPECT_EQ(p, TrajectoryPreset::OrbitA);
    EXPECT_TRUE(parsePreset("LR-B", p));
    EXPECT_EQ(p, TrajectoryPreset::SweepB);
    EXPECT_TRUE(parsePreset(" c ", p));
    EXPECT_EQ(p, TrajectoryPreset::CloseupC);
    EXPECT_FALSE(parsePreset("nope", p));
}

// --- Renderer ---

class RendererFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scene_ = livingRoomScene();
        intrinsics_ = slambench::math::CameraIntrinsics::fromFov(
            80, 60, 1.02f);
        const Trajectory traj = Trajectory::fromSpline(
            presetSpec(TrajectoryPreset::OrbitA), 2, 30.0);
        pose_ = traj.pose(0);
    }

    Scene scene_;
    slambench::math::CameraIntrinsics intrinsics_;
    Mat4f pose_;
};

TEST_F(RendererFixture, EveryRayHitsInsideARoom)
{
    const RenderResult r = renderFrame(scene_, intrinsics_, pose_);
    size_t misses = 0;
    for (size_t i = 0; i < r.depth.size(); ++i)
        misses += r.depth[i] <= 0.0f;
    // Inside a closed room every ray terminates on something.
    EXPECT_EQ(misses, 0u);
}

TEST_F(RendererFixture, DepthMatchesSceneDistanceAlongRay)
{
    const RenderResult r = renderFrame(scene_, intrinsics_, pose_);
    // Reconstruct the 3D point and check it lies on a surface.
    for (size_t y = 0; y < r.depth.height(); y += 9) {
        for (size_t x = 0; x < r.depth.width(); x += 9) {
            const float d = r.depth(x, y);
            ASSERT_GT(d, 0.0f);
            const Vec3f p_cam = intrinsics_.backProject(
                static_cast<float>(x) + 0.5f,
                static_cast<float>(y) + 0.5f, d);
            const Vec3f p_world = pose_.transformPoint(p_cam);
            EXPECT_LT(std::abs(scene_.distance(p_world)), 5e-3f);
        }
    }
}

TEST_F(RendererFixture, CosIncidenceInUnitRange)
{
    const RenderResult r = renderFrame(scene_, intrinsics_, pose_);
    for (size_t i = 0; i < r.cosIncidence.size(); ++i) {
        EXPECT_GE(r.cosIncidence[i], 0.0f);
        EXPECT_LE(r.cosIncidence[i], 1.0f + 1e-4f);
    }
}

TEST_F(RendererFixture, RgbDisabledSkipsShading)
{
    RenderOptions options;
    options.shadeRgb = false;
    const RenderResult r =
        renderFrame(scene_, intrinsics_, pose_, options);
    EXPECT_TRUE(r.rgb.empty());
    EXPECT_FALSE(r.depth.empty());
}

TEST_F(RendererFixture, PrimitiveIdsAreValid)
{
    const RenderResult r = renderFrame(scene_, intrinsics_, pose_);
    for (size_t i = 0; i < r.primitive.size(); ++i) {
        EXPECT_GE(r.primitive[i], 0);
        EXPECT_LT(r.primitive[i], static_cast<int>(scene_.size()));
    }
}

// --- Noise model ---

TEST(Noise, NoiseFreeConversionQuantizesToMm)
{
    Image<float> depth(4, 1);
    depth[0] = 1.2345f;
    depth[1] = 0.0f;   // invalid stays invalid
    depth[2] = 9.0f;   // beyond max range -> invalid
    depth[3] = 2.0f;
    const auto mm = depthToMillimeters(depth, 4.5f);
    EXPECT_EQ(mm[0], 1235);
    EXPECT_EQ(mm[1], 0);
    EXPECT_EQ(mm[2], 0);
    EXPECT_EQ(mm[3], 2000);
}

TEST(Noise, AxialNoiseGrowsWithDepth)
{
    DepthNoiseOptions options;
    options.dropouts = false;
    options.quantize = false;
    Rng rng(5);

    const size_t n = 20000;
    Image<float> near_img(n, 1, 1.0f), far_img(n, 1, 4.0f);
    Image<float> cos_img(n, 1, 1.0f);

    auto spread = [&](const Image<float> &img, float z) {
        Rng local(9);
        const auto noisy =
            applySensorModel(img, cos_img, options, local);
        double sse = 0.0;
        size_t count = 0;
        for (size_t i = 0; i < n; ++i) {
            if (noisy[i] == 0)
                continue;
            const double err = noisy[i] / 1000.0 - z;
            sse += err * err;
            ++count;
        }
        return std::sqrt(sse / static_cast<double>(count));
    };

    const double sigma_near = spread(near_img, 1.0f);
    const double sigma_far = spread(far_img, 4.0f);
    EXPECT_GT(sigma_far, sigma_near * 3.0);
}

TEST(Noise, GrazingAnglesDropOut)
{
    DepthNoiseOptions options;
    options.axialNoise = false;
    Rng rng(6);
    const size_t n = 10000;
    Image<float> depth(n, 1, 2.0f);
    Image<float> grazing(n, 1, 0.02f); // nearly parallel to surface
    const auto noisy = applySensorModel(depth, grazing, options, rng);
    size_t dropped = 0;
    for (size_t i = 0; i < n; ++i)
        dropped += noisy[i] == 0;
    // dropoutMaxProb defaults to 0.95 at cos=0; at 0.02 it is ~0.87.
    EXPECT_GT(dropped, n / 2);
}

TEST(Noise, FrontalSurfacesKept)
{
    DepthNoiseOptions options;
    options.axialNoise = false;
    Rng rng(7);
    const size_t n = 1000;
    Image<float> depth(n, 1, 2.0f);
    Image<float> frontal(n, 1, 1.0f);
    const auto noisy = applySensorModel(depth, frontal, options, rng);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(noisy[i], 2000);
}

TEST(Noise, RangeClipping)
{
    DepthNoiseOptions options;
    options.axialNoise = false;
    options.dropouts = false;
    Rng rng(8);
    Image<float> depth(3, 1);
    depth[0] = 0.2f; // below min range
    depth[1] = 5.0f; // above max range
    depth[2] = 1.0f;
    Image<float> cos_img(3, 1, 1.0f);
    const auto noisy = applySensorModel(depth, cos_img, options, rng);
    EXPECT_EQ(noisy[0], 0);
    EXPECT_EQ(noisy[1], 0);
    EXPECT_EQ(noisy[2], 1000);
}

// --- Generator ---

TEST(Generator, SequenceShapeAndDeterminism)
{
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 3;
    spec.seed = 99;
    const Sequence a = generateSequence(spec);
    const Sequence b = generateSequence(spec);
    ASSERT_EQ(a.frames.size(), 3u);
    ASSERT_EQ(a.groundTruth.size(), 3u);
    EXPECT_EQ(a.intrinsics.width, 40u);
    for (size_t f = 0; f < a.frames.size(); ++f) {
        ASSERT_EQ(a.frames[f].depthMm.size(),
                  b.frames[f].depthMm.size());
        for (size_t i = 0; i < a.frames[f].depthMm.size(); ++i)
            EXPECT_EQ(a.frames[f].depthMm[i], b.frames[f].depthMm[i]);
    }
}

TEST(Generator, DifferentSeedsDifferentNoise)
{
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 1;
    spec.seed = 1;
    const Sequence a = generateSequence(spec);
    spec.seed = 2;
    const Sequence b = generateSequence(spec);
    size_t diff = 0;
    for (size_t i = 0; i < a.frames[0].depthMm.size(); ++i)
        diff += a.frames[0].depthMm[i] != b.frames[0].depthMm[i];
    EXPECT_GT(diff, a.frames[0].depthMm.size() / 10);
}

TEST(Generator, NoiseFreeModeIsClean)
{
    SequenceSpec spec;
    spec.width = 40;
    spec.height = 30;
    spec.numFrames = 1;
    spec.sensorNoise = false;
    const Sequence a = generateSequence(spec);
    const Sequence b = generateSequence(spec);
    for (size_t i = 0; i < a.frames[0].depthMm.size(); ++i)
        EXPECT_EQ(a.frames[0].depthMm[i], b.frames[0].depthMm[i]);
}

TEST(Generator, OfficeSceneRenders)
{
    SequenceSpec spec;
    spec.scene = SceneId::Office;
    spec.trajectory = TrajectoryPreset::SweepB;
    spec.width = 32;
    spec.height = 24;
    spec.numFrames = 2;
    const Sequence seq = generateSequence(spec);
    size_t valid = 0;
    for (size_t i = 0; i < seq.frames[0].depthMm.size(); ++i)
        valid += seq.frames[0].depthMm[i] > 0;
    EXPECT_GT(valid, seq.frames[0].depthMm.size() / 2);
}

TEST(RawIo, RoundTripPreservesEverything)
{
    SequenceSpec spec;
    spec.width = 24;
    spec.height = 18;
    spec.numFrames = 3;
    spec.renderRgb = true;
    const Sequence original = generateSequence(spec);

    const std::string path = "/tmp/sb_test_seq.raw";
    ASSERT_TRUE(saveSequenceRaw(original, path));

    Sequence loaded;
    ASSERT_TRUE(loadSequenceRaw(path, loaded));
    ASSERT_EQ(loaded.frames.size(), original.frames.size());
    EXPECT_EQ(loaded.intrinsics.width, original.intrinsics.width);
    EXPECT_FLOAT_EQ(loaded.intrinsics.fx, original.intrinsics.fx);
    for (size_t f = 0; f < original.frames.size(); ++f) {
        const auto &a = original.frames[f];
        const auto &b = loaded.frames[f];
        EXPECT_DOUBLE_EQ(a.timestamp, b.timestamp);
        for (size_t i = 0; i < a.depthMm.size(); ++i)
            ASSERT_EQ(a.depthMm[i], b.depthMm[i]);
        for (size_t i = 0; i < a.rgb.size(); ++i)
            ASSERT_EQ(a.rgb[i], b.rgb[i]);
        EXPECT_NEAR((original.groundTruth.pose(f).translationPart() -
                     loaded.groundTruth.pose(f).translationPart())
                        .norm(),
                    0.0f, 0.0f);
    }
    std::filesystem::remove(path);
}

TEST(RawIo, DepthOnlySequences)
{
    SequenceSpec spec;
    spec.width = 16;
    spec.height = 12;
    spec.numFrames = 2;
    spec.renderRgb = false;
    const Sequence original = generateSequence(spec);
    const std::string path = "/tmp/sb_test_seq_d.raw";
    ASSERT_TRUE(saveSequenceRaw(original, path));
    Sequence loaded;
    ASSERT_TRUE(loadSequenceRaw(path, loaded));
    EXPECT_TRUE(loaded.frames[0].rgb.empty());
    EXPECT_EQ(loaded.frames[0].depthMm.size(), 16u * 12u);
    std::filesystem::remove(path);
}

TEST(RawIo, RejectsGarbageAndMissingFiles)
{
    Sequence loaded;
    EXPECT_FALSE(loadSequenceRaw("/tmp/does_not_exist.raw", loaded));
    const std::string path = "/tmp/sb_test_garbage.raw";
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a sequence";
    }
    EXPECT_FALSE(loadSequenceRaw(path, loaded));
    std::filesystem::remove(path);
}

TEST(RawIo, RejectsTruncatedFiles)
{
    SequenceSpec spec;
    spec.width = 16;
    spec.height = 12;
    spec.numFrames = 2;
    spec.renderRgb = false;
    const Sequence original = generateSequence(spec);
    const std::string path = "/tmp/sb_test_trunc.raw";
    ASSERT_TRUE(saveSequenceRaw(original, path));
    // Truncate in the middle of the second frame.
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 100);
    Sequence loaded;
    EXPECT_FALSE(loadSequenceRaw(path, loaded));
    std::filesystem::remove(path);
}

TEST(Generator, RgbRenderedWhenRequested)
{
    SequenceSpec spec;
    spec.width = 32;
    spec.height = 24;
    spec.numFrames = 1;
    spec.renderRgb = true;
    const Sequence seq = generateSequence(spec);
    EXPECT_EQ(seq.frames[0].rgb.size(), 32u * 24u);
    spec.renderRgb = false;
    const Sequence no_rgb = generateSequence(spec);
    EXPECT_TRUE(no_rgb.frames[0].rgb.empty());
}

} // namespace
