/**
 * @file
 * Tests for marching-tetrahedra mesh extraction and the surface
 * reconstruction-error metric.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "dataset/generator.hpp"
#include "kfusion/mesh.hpp"
#include "kfusion/pipeline.hpp"
#include "math/se3.hpp"
#include "metrics/reconstruction.hpp"

namespace {

using namespace slambench::kfusion;
using slambench::math::CameraIntrinsics;
using slambench::math::Mat4f;
using slambench::math::Vec3f;
using slambench::support::Image;

/** Fill a volume analytically from a signed-distance function. */
template <typename Sdf>
void
fillVolume(TsdfVolume &volume, float mu, Sdf &&sdf)
{
    const int res = volume.resolution();
    for (int z = 0; z < res; ++z) {
        for (int y = 0; y < res; ++y) {
            for (int x = 0; x < res; ++x) {
                const float d = sdf(volume.voxelCenter(x, y, z));
                Voxel &v = volume.at(x, y, z);
                v.tsdf = std::clamp(d / mu, -1.0f, 1.0f);
                v.weight = 1.0f;
            }
        }
    }
}

TEST(Mesh, EmptyVolumeGivesEmptyMesh)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    const TriangleMesh mesh = extractMesh(volume);
    EXPECT_TRUE(mesh.vertices.empty());
    EXPECT_EQ(mesh.triangleCount(), 0u);
}

TEST(Mesh, PlaneIsExtractedAtTheRightHeight)
{
    TsdfVolume volume(32, 1.0f, Vec3f{0, 0, 0});
    // Horizontal plane at y = 0.5 (solid below).
    fillVolume(volume, 0.1f,
               [](const Vec3f &p) { return p.y - 0.5f; });
    const TriangleMesh mesh = extractMesh(volume);
    ASSERT_GT(mesh.triangleCount(), 100u);
    for (const Vec3f &v : mesh.vertices)
        EXPECT_NEAR(v.y, 0.5f, 1e-3f);
}

TEST(Mesh, SphereHasCorrectRadiusAndArea)
{
    TsdfVolume volume(48, 2.0f, Vec3f{-1, -1, -1});
    const float radius = 0.6f;
    fillVolume(volume, 0.15f, [radius](const Vec3f &p) {
        return p.norm() - radius;
    });
    const TriangleMesh mesh = extractMesh(volume);
    ASSERT_GT(mesh.triangleCount(), 500u);
    for (const Vec3f &v : mesh.vertices)
        EXPECT_NEAR(v.norm(), radius, 0.02f);

    // Total area should approximate 4 pi r^2.
    double area = 0.0;
    for (size_t i = 0; i + 2 < mesh.indices.size(); i += 3) {
        const Vec3f &a = mesh.vertices[mesh.indices[i]];
        const Vec3f &b = mesh.vertices[mesh.indices[i + 1]];
        const Vec3f &c = mesh.vertices[mesh.indices[i + 2]];
        area += 0.5 * (b - a).cross(c - a).norm();
    }
    const double expected = 4.0 * M_PI * radius * radius;
    EXPECT_NEAR(area, expected, expected * 0.05);
}

TEST(Mesh, VerticesAreShared)
{
    TsdfVolume volume(24, 1.0f, Vec3f{0, 0, 0});
    fillVolume(volume, 0.1f,
               [](const Vec3f &p) { return p.y - 0.5f; });
    const TriangleMesh mesh = extractMesh(volume);
    // Deduplicated extraction: far fewer vertices than index slots.
    EXPECT_LT(mesh.vertices.size(), mesh.indices.size() / 2);
}

TEST(Mesh, UnobservedCellsProduceNoSurface)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    fillVolume(volume, 0.1f,
               [](const Vec3f &p) { return p.y - 0.5f; });
    // Erase observations in one half of the volume.
    for (int z = 0; z < 16; ++z)
        for (int y = 0; y < 16; ++y)
            for (int x = 8; x < 16; ++x)
                volume.at(x, y, z).weight = 0.0f;
    const TriangleMesh mesh = extractMesh(volume);
    const float x_limit = volume.voxelCenter(8, 0, 0).x;
    for (const Vec3f &v : mesh.vertices)
        EXPECT_LE(v.x, x_limit + 1e-4f);
}

TEST(Mesh, SaveObjRoundTripHeader)
{
    TsdfVolume volume(16, 1.0f, Vec3f{0, 0, 0});
    fillVolume(volume, 0.1f,
               [](const Vec3f &p) { return p.y - 0.5f; });
    const TriangleMesh mesh = extractMesh(volume);
    const std::string path = "/tmp/sb_test_mesh.obj";
    ASSERT_TRUE(mesh.saveObj(path));
    std::ifstream in(path);
    std::string line;
    size_t v_lines = 0, f_lines = 0;
    while (std::getline(in, line)) {
        if (line.rfind("v ", 0) == 0)
            ++v_lines;
        if (line.rfind("f ", 0) == 0)
            ++f_lines;
    }
    EXPECT_EQ(v_lines, mesh.vertices.size());
    EXPECT_EQ(f_lines, mesh.triangleCount());
    std::filesystem::remove(path);
}

TEST(Mesh, BoundsEncloseVertices)
{
    TriangleMesh mesh;
    mesh.vertices = {{0, 1, 2}, {-1, 5, 0}, {3, 0, -2}};
    Vec3f lo, hi;
    mesh.bounds(lo, hi);
    EXPECT_EQ(lo, (Vec3f{-1, 0, -2}));
    EXPECT_EQ(hi, (Vec3f{3, 5, 2}));
}

// --- reconstruction error ---

TEST(Reconstruction, PerfectSphereHasTinyError)
{
    // Scene: a sphere; volume: the same sphere's exact SDF.
    slambench::dataset::Scene scene;
    slambench::dataset::Primitive s;
    s.kind = slambench::dataset::PrimitiveKind::Sphere;
    s.center = {0, 0, 0};
    s.params = {0.6f, 0, 0};
    scene.add(s);

    TsdfVolume volume(48, 2.0f, Vec3f{-1, -1, -1});
    fillVolume(volume, 0.15f, [](const Vec3f &p) {
        return p.norm() - 0.6f;
    });
    const TriangleMesh mesh = extractMesh(volume);
    const auto error =
        slambench::metrics::computeReconstructionError(mesh, scene);
    EXPECT_GT(error.samples, 100u);
    EXPECT_LT(error.rmse, 0.01);
    EXPECT_LT(error.maxAbs, 0.03);
}

TEST(Reconstruction, OffsetSurfaceIsDetected)
{
    slambench::dataset::Scene scene;
    slambench::dataset::Primitive s;
    s.kind = slambench::dataset::PrimitiveKind::Sphere;
    s.center = {0, 0, 0};
    s.params = {0.5f, 0, 0}; // true radius 0.5
    scene.add(s);

    TsdfVolume volume(48, 2.0f, Vec3f{-1, -1, -1});
    // Reconstructed radius 0.6: a 10 cm bias.
    fillVolume(volume, 0.15f, [](const Vec3f &p) {
        return p.norm() - 0.6f;
    });
    const TriangleMesh mesh = extractMesh(volume);
    const auto error =
        slambench::metrics::computeReconstructionError(mesh, scene);
    EXPECT_NEAR(error.meanAbs, 0.1, 0.02);
}

TEST(Reconstruction, StrideReducesSamples)
{
    slambench::dataset::Scene scene;
    slambench::dataset::Primitive s;
    s.kind = slambench::dataset::PrimitiveKind::Sphere;
    s.center = {0, 0, 0};
    s.params = {0.5f, 0, 0};
    scene.add(s);
    TsdfVolume volume(32, 2.0f, Vec3f{-1, -1, -1});
    fillVolume(volume, 0.15f, [](const Vec3f &p) {
        return p.norm() - 0.5f;
    });
    const TriangleMesh mesh = extractMesh(volume);
    const auto all =
        slambench::metrics::computeReconstructionError(mesh, scene, 1);
    const auto strided =
        slambench::metrics::computeReconstructionError(mesh, scene, 7);
    EXPECT_GT(all.samples, strided.samples * 6);
    EXPECT_NEAR(all.rmse, strided.rmse, 0.01);
}

TEST(Reconstruction, EmptyMeshIsSafe)
{
    const TriangleMesh mesh;
    const auto error = slambench::metrics::computeReconstructionError(
        mesh, slambench::dataset::livingRoomScene());
    EXPECT_EQ(error.samples, 0u);
    EXPECT_DOUBLE_EQ(error.rmse, 0.0);
}

// --- end-to-end: mesh from a real pipeline run ---

TEST(Reconstruction, PipelineRunProducesAccurateMap)
{
    slambench::dataset::SequenceSpec spec;
    spec.width = 80;
    spec.height = 60;
    spec.numFrames = 8;
    spec.renderRgb = false;
    const auto sequence = slambench::dataset::generateSequence(spec);

    KFusionConfig config;
    config.volumeResolution = 96;
    config.pyramidIterations = {6, 4, 3};
    KFusion pipeline(config, sequence.intrinsics);
    pipeline.setPose(sequence.groundTruth.pose(0));
    for (const auto &frame : sequence.frames)
        pipeline.processFrame(frame.depthMm);

    const TriangleMesh mesh = extractMesh(pipeline.volume());
    ASSERT_GT(mesh.triangleCount(), 1000u);
    const auto error = slambench::metrics::computeReconstructionError(
        mesh, slambench::dataset::livingRoomScene(), 3);
    // Voxels are 5 cm here; the fused map should sit within a couple
    // of voxels of the true surfaces on average.
    EXPECT_LT(error.meanAbs, 0.05);
    EXPECT_LT(error.rmse, 0.08);
}

} // namespace
