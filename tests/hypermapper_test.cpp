/**
 * @file
 * Tests for the DSE machinery: parameter spaces, Pareto fronts, the
 * random-search and active-learning drivers (on cheap synthetic
 * objectives), and knowledge extraction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hypermapper/drivers.hpp"
#include "hypermapper/knowledge.hpp"
#include "hypermapper/param_space.hpp"
#include "hypermapper/pareto.hpp"

namespace {

using namespace slambench::hypermapper;
using slambench::support::Rng;

ParameterSpace
toySpace()
{
    ParameterSpace space;
    space.addReal("x", 0.0, 1.0, 0.5);
    space.addReal("y", 0.0, 1.0, 0.5);
    return space;
}

// --- ParameterSpace ---

TEST(ParamSpace, DefaultsAndNames)
{
    ParameterSpace space;
    space.addInteger("i", 1, 10, 3);
    space.addReal("r", 0.1, 1.0, 0.2);
    space.addOrdinal("o", {2, 4, 8}, 4);
    EXPECT_EQ(space.size(), 3u);
    const Point d = space.defaultPoint();
    EXPECT_DOUBLE_EQ(d[0], 3.0);
    EXPECT_DOUBLE_EQ(d[1], 0.2);
    EXPECT_DOUBLE_EQ(d[2], 4.0);
    EXPECT_EQ(space.names(),
              (std::vector<std::string>{"i", "r", "o"}));
    EXPECT_EQ(space.indexOf("o"), 2u);
}

TEST(ParamSpace, SamplesRespectDomains)
{
    ParameterSpace space;
    space.addInteger("i", -5, 5, 0);
    space.addReal("r", 0.5, 2.0, 1.0);
    space.addOrdinal("o", {1, 2, 4, 8}, 2);
    space.addReal("log", 1e-6, 1e-2, 1e-4, /*log_scale=*/true);
    Rng rng(1);
    for (int trial = 0; trial < 500; ++trial) {
        const Point p = space.sample(rng);
        EXPECT_GE(p[0], -5.0);
        EXPECT_LE(p[0], 5.0);
        EXPECT_DOUBLE_EQ(p[0], std::round(p[0]));
        EXPECT_GE(p[1], 0.5);
        EXPECT_LT(p[1], 2.0);
        EXPECT_TRUE(p[2] == 1 || p[2] == 2 || p[2] == 4 || p[2] == 8);
        EXPECT_GE(p[3], 1e-6);
        EXPECT_LE(p[3], 1e-2);
    }
}

TEST(ParamSpace, LogScaleSpreadsDecades)
{
    ParameterSpace space;
    space.addReal("log", 1e-6, 1e-2, 1e-4, true);
    Rng rng(2);
    int tiny = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const Point p = space.sample(rng);
        tiny += p[0] < 1e-4; // half the decades
    }
    // Log-uniform: ~half below the geometric middle. Linear-uniform
    // would put only ~1% there.
    EXPECT_GT(tiny, n / 3);
}

TEST(ParamSpace, CanonicalizeSnapsValues)
{
    ParameterSpace space;
    space.addInteger("i", 0, 10, 5);
    space.addOrdinal("o", {1, 2, 4, 8}, 2);
    const Point raw{3.7, 5.0};
    const Point snapped = space.canonicalize(raw);
    EXPECT_DOUBLE_EQ(snapped[0], 4.0);
    EXPECT_DOUBLE_EQ(snapped[1], 4.0);
}

TEST(ParamSpace, MutateChangesSomeCoordinates)
{
    const ParameterSpace space = toySpace();
    Rng rng(3);
    const Point p{0.5, 0.5};
    int changed = 0;
    for (int i = 0; i < 100; ++i) {
        const Point m = space.mutate(p, 0.5, rng);
        changed += (m[0] != p[0]) + (m[1] != p[1]);
    }
    EXPECT_GT(changed, 50);
    EXPECT_LT(changed, 150);
}

TEST(ParamSpace, SamePointAfterSnap)
{
    ParameterSpace space;
    space.addInteger("i", 0, 10, 5);
    EXPECT_TRUE(space.samePoint({3.2}, {2.8}));
    EXPECT_FALSE(space.samePoint({3.0}, {4.0}));
}

TEST(ParamSpace, DescribeContainsNames)
{
    const ParameterSpace space = toySpace();
    const std::string text = space.describe({0.25, 0.75});
    EXPECT_NE(text.find("x=0.25"), std::string::npos);
    EXPECT_NE(text.find("y=0.75"), std::string::npos);
}

// --- Pareto ---

Evaluation
makeEval(std::vector<double> objectives, bool valid = true)
{
    Evaluation e;
    e.objectives = std::move(objectives);
    e.valid = valid;
    return e;
}

TEST(Pareto, DominatesBasics)
{
    EXPECT_TRUE(dominates(makeEval({1, 1}), makeEval({2, 2})));
    EXPECT_TRUE(dominates(makeEval({1, 2}), makeEval({2, 2})));
    EXPECT_FALSE(dominates(makeEval({2, 2}), makeEval({2, 2})));
    EXPECT_FALSE(dominates(makeEval({1, 3}), makeEval({2, 2})));
    EXPECT_FALSE(dominates(makeEval({1, 1}, false), makeEval({9, 9})));
    EXPECT_TRUE(dominates(makeEval({9, 9}), makeEval({1, 1}, false)));
}

TEST(Pareto, FrontOfSimpleSet)
{
    std::vector<Evaluation> evals{
        makeEval({1, 4}), makeEval({2, 2}), makeEval({4, 1}),
        makeEval({3, 3}),          // dominated by (2,2)
        makeEval({0, 0}, false),   // invalid
    };
    const std::vector<size_t> front = paretoFront(evals);
    EXPECT_EQ(front, (std::vector<size_t>{0, 1, 2}));
}

TEST(Pareto, AllNonDominatedKept)
{
    std::vector<Evaluation> evals;
    for (int i = 0; i < 10; ++i)
        evals.push_back(makeEval(
            {static_cast<double>(i), static_cast<double>(9 - i)}));
    EXPECT_EQ(paretoFront(evals).size(), 10u);
}

TEST(Pareto, Hypervolume2dKnownValue)
{
    // One point (1,1) with ref (2,2): area 1.
    EXPECT_DOUBLE_EQ(hypervolume2d({makeEval({1, 1})}, 2, 2), 1.0);
    // Staircase of (1,3),(2,2),(3,1) with ref (4,4).
    const std::vector<Evaluation> evals{
        makeEval({1, 3}), makeEval({2, 2}), makeEval({3, 1})};
    // Area = 3*1 + 2*1 + 1*... sweep: (4-1)*(4-3)=3, (4-2)*(3-2)=2,
    // (4-3)*(2-1)=1 => 6.
    EXPECT_DOUBLE_EQ(hypervolume2d(evals, 4, 4), 6.0);
}

TEST(Pareto, HypervolumeIgnoresOutOfRef)
{
    EXPECT_DOUBLE_EQ(hypervolume2d({makeEval({5, 5})}, 2, 2), 0.0);
}

TEST(Pareto, BestUnderCaps)
{
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<Evaluation> evals{
        makeEval({0.1, 0.08, 4.0}), // fails watts cap
        makeEval({0.2, 0.04, 2.0}), // ok
        makeEval({0.3, 0.03, 1.0}), // ok but slower
        makeEval({0.05, 0.2, 1.0}), // fails ate cap
    };
    const double best =
        bestUnderCaps(evals, 0, {inf, 0.05, 3.0});
    EXPECT_DOUBLE_EQ(best, 0.2);
}

TEST(Pareto, BestUnderCapsEmptyIsInf)
{
    const double best = bestUnderCaps({}, 0, {});
    EXPECT_TRUE(std::isinf(best));
}

// --- Drivers on synthetic objectives ---

/** Trivial objective used by the grid tests. */
EvaluationOutcome
toyObjective2(const Point &p)
{
    EvaluationOutcome out;
    out.objectives = {p[0], p.size() > 1 ? p[1] : 0.0};
    out.valid = true;
    return out;
}

/** Cheap 2-objective problem with a known trade-off curve. */
EvaluationOutcome
toyObjective(const Point &p)
{
    EvaluationOutcome out;
    const double x = p[0];
    const double y = p[1];
    // f0 minimized at x=1, f1 minimized at x=0; y adds noise-free
    // second dimension shaping.
    out.objectives = {
        (1 - x) * (1 - x) + 0.3 * y,
        x * x + 0.3 * (1 - y),
    };
    out.valid = true;
    return out;
}

TEST(RandomSearchDriver, SpendsExactBudget)
{
    const ParameterSpace space = toySpace();
    RandomSearchOptions options;
    options.budget = 37;
    options.seed = 5;
    const auto evals = randomSearch(space, toyObjective, options);
    EXPECT_EQ(evals.size(), 37u);
    for (const Evaluation &e : evals) {
        EXPECT_EQ(e.method, "random");
        EXPECT_EQ(e.objectives.size(), 2u);
    }
}

TEST(RandomSearchDriver, DeterministicGivenSeed)
{
    const ParameterSpace space = toySpace();
    RandomSearchOptions options;
    options.budget = 10;
    options.seed = 9;
    const auto a = randomSearch(space, toyObjective, options);
    const auto b = randomSearch(space, toyObjective, options);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].point, b[i].point);
}

TEST(ActiveLearningDriver, SpendsBudgetAndTagsPhases)
{
    const ParameterSpace space = toySpace();
    ActiveLearningOptions options;
    options.warmupSamples = 10;
    options.iterations = 3;
    options.batchSize = 5;
    options.candidatePool = 200;
    options.forest.numTrees = 10;
    options.seed = 7;
    const ActiveLearningResult result =
        activeLearning(space, toyObjective, 2, options);
    EXPECT_EQ(result.evaluations.size(), 10u + 3u * 5u);
    size_t warmup = 0, active = 0;
    for (const Evaluation &e : result.evaluations) {
        warmup += e.method == "random";
        active += e.method == "active";
    }
    EXPECT_EQ(warmup, 10u);
    EXPECT_EQ(active, 15u);
    EXPECT_EQ(result.modelMse.size(), 3u);
}

TEST(ActiveLearningDriver, BeatsRandomAtEqualBudgetOnToyProblem)
{
    const ParameterSpace space = toySpace();

    ActiveLearningOptions al_options;
    al_options.warmupSamples = 12;
    al_options.iterations = 4;
    al_options.batchSize = 6;
    al_options.candidatePool = 400;
    al_options.forest.numTrees = 15;

    RandomSearchOptions rs_options;
    rs_options.budget =
        al_options.warmupSamples +
        al_options.iterations * al_options.batchSize;

    // Average hypervolume over several seeds to avoid flakiness.
    double al_hv = 0.0, rs_hv = 0.0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        al_options.seed = seed;
        rs_options.seed = seed + 100;
        const auto al =
            activeLearning(space, toyObjective, 2, al_options);
        const auto rs = randomSearch(space, toyObjective, rs_options);
        al_hv += hypervolume2d(al.evaluations, 1.5, 1.5);
        rs_hv += hypervolume2d(rs, 1.5, 1.5);
    }
    EXPECT_GE(al_hv, rs_hv * 0.98);
}

TEST(ActiveLearningDriver, HandlesInvalidEvaluations)
{
    const ParameterSpace space = toySpace();
    auto objective = [](const Point &p) {
        EvaluationOutcome out = toyObjective(p);
        out.valid = p[0] < 0.8; // a fifth of the space is infeasible
        return out;
    };
    ActiveLearningOptions options;
    options.warmupSamples = 15;
    options.iterations = 2;
    options.batchSize = 4;
    options.candidatePool = 100;
    options.forest.numTrees = 8;
    const ActiveLearningResult result =
        activeLearning(space, objective, 2, options);
    EXPECT_EQ(result.evaluations.size(), 23u);
}

TEST(GridSearchDriver, CoversTheGridAndCaps)
{
    ParameterSpace space;
    space.addInteger("a", 0, 10, 5);
    space.addOrdinal("b", {1, 2, 4}, 2);
    GridSearchOptions options;
    options.pointsPerAxis = 3;
    const auto evals = gridSearch(space, toyObjective2, options);
    // 3 x 3 grid.
    EXPECT_EQ(evals.size(), 9u);
    for (const auto &e : evals)
        EXPECT_EQ(e.method, "grid");
    // Axis endpoints must appear.
    bool saw_lo = false, saw_hi = false;
    for (const auto &e : evals) {
        saw_lo |= e.point[0] == 0.0;
        saw_hi |= e.point[0] == 10.0;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(GridSearchDriver, MaxEvaluationsCap)
{
    ParameterSpace space;
    space.addInteger("a", 0, 9, 0);
    space.addInteger("b", 0, 9, 0);
    space.addInteger("c", 0, 9, 0);
    GridSearchOptions options;
    options.pointsPerAxis = 10;
    options.maxEvaluations = 50;
    const auto evals = gridSearch(space, toyObjective2, options);
    EXPECT_EQ(evals.size(), 50u);
}

TEST(GridSearchDriver, OrdinalSubsampleDeduplicates)
{
    // Subsampling an ordinal axis whose value list contains repeats
    // must not evaluate the same grid value twice.
    ParameterSpace space;
    space.addOrdinal("o", {1, 2, 2, 2, 4}, 2);
    GridSearchOptions options;
    options.pointsPerAxis = 4;
    const auto evals = gridSearch(space, toyObjective2, options);
    // Index subsample {0,1,2,4} maps to values {1,2,2,4}; the
    // duplicate 2 collapses, leaving {1,2,4}.
    ASSERT_EQ(evals.size(), 3u);
    EXPECT_DOUBLE_EQ(evals[0].point[0], 1.0);
    EXPECT_DOUBLE_EQ(evals[1].point[0], 2.0);
    EXPECT_DOUBLE_EQ(evals[2].point[0], 4.0);
}

TEST(GridSearchDriver, SmallOrdinalListDeduplicates)
{
    // When the whole value list fits within pointsPerAxis it is taken
    // verbatim — repeats in the list must still collapse instead of
    // consuming evaluation budget.
    ParameterSpace space;
    space.addOrdinal("o", {1, 2, 2, 4}, 2);
    GridSearchOptions options;
    options.pointsPerAxis = 6;
    const auto evals = gridSearch(space, toyObjective2, options);
    ASSERT_EQ(evals.size(), 3u);
    EXPECT_DOUBLE_EQ(evals[0].point[0], 1.0);
    EXPECT_DOUBLE_EQ(evals[1].point[0], 2.0);
    EXPECT_DOUBLE_EQ(evals[2].point[0], 4.0);
}

TEST(GridSearchDriver, LogAxisUsesDecades)
{
    ParameterSpace space;
    space.addReal("l", 1e-6, 1e-2, 1e-4, /*log_scale=*/true);
    GridSearchOptions options;
    options.pointsPerAxis = 5;
    const auto evals = gridSearch(space, toyObjective2, options);
    ASSERT_EQ(evals.size(), 5u);
    EXPECT_NEAR(evals[1].point[0] / evals[0].point[0], 10.0, 1e-6);
}

TEST(ActiveLearningDriver, FeasibilityModelRejectsKnownBadRegion)
{
    const ParameterSpace space = toySpace();
    // Half the space is infeasible along x.
    auto objective = [](const Point &p) {
        EvaluationOutcome out = toyObjective(p);
        out.valid = p[0] < 0.5;
        return out;
    };
    ActiveLearningOptions options;
    options.warmupSamples = 30;
    options.iterations = 3;
    options.batchSize = 5;
    options.candidatePool = 400;
    options.forest.numTrees = 15;
    options.learnFeasibility = true;
    options.seed = 13;
    const auto with = activeLearning(space, objective, 2, options);
    // The feasibility model must reject some candidates...
    size_t total_rejected = 0;
    for (size_t r : with.feasibilityRejections)
        total_rejected += r;
    EXPECT_GT(total_rejected, 0u);
    // ...and the active phase should mostly evaluate feasible points.
    size_t active_valid = 0, active_total = 0;
    for (const auto &e : with.evaluations) {
        if (e.method != "active")
            continue;
        ++active_total;
        active_valid += e.valid;
    }
    ASSERT_GT(active_total, 0u);
    EXPECT_GT(static_cast<double>(active_valid) /
                  static_cast<double>(active_total),
              0.55);
}

// --- Parallel drivers: byte-identical to serial ---

void
expectSameEvaluations(const std::vector<Evaluation> &a,
                      const std::vector<Evaluation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point, b[i].point) << "evaluation " << i;
        EXPECT_EQ(a[i].objectives, b[i].objectives)
            << "evaluation " << i;
        EXPECT_EQ(a[i].valid, b[i].valid) << "evaluation " << i;
        EXPECT_EQ(a[i].method, b[i].method) << "evaluation " << i;
        EXPECT_EQ(a[i].iteration, b[i].iteration)
            << "evaluation " << i;
    }
}

TEST(RandomSearchDriver, ParallelMatchesSerial)
{
    const ParameterSpace space = toySpace();
    RandomSearchOptions options;
    options.budget = 23;
    options.seed = 17;
    options.threads = 1;
    const auto serial = randomSearch(space, toyObjective, options);
    options.threads = 4;
    const auto parallel = randomSearch(space, toyObjective, options);
    expectSameEvaluations(serial, parallel);
}

TEST(ActiveLearningDriver, ParallelMatchesSerial)
{
    const ParameterSpace space = toySpace();
    // Include infeasible evaluations so the feasibility classifier
    // and its rejection path are covered too.
    auto objective = [](const Point &p) {
        EvaluationOutcome out = toyObjective(p);
        out.valid = p[0] < 0.8;
        return out;
    };
    ActiveLearningOptions options;
    options.warmupSamples = 12;
    options.iterations = 3;
    options.batchSize = 5;
    options.candidatePool = 300;
    options.forest.numTrees = 12;
    options.seed = 29;

    options.threads = 1;
    const ActiveLearningResult serial =
        activeLearning(space, objective, 2, options);
    options.threads = 4;
    const ActiveLearningResult parallel =
        activeLearning(space, objective, 2, options);

    expectSameEvaluations(serial.evaluations, parallel.evaluations);
    ASSERT_EQ(serial.modelMse.size(), parallel.modelMse.size());
    for (size_t i = 0; i < serial.modelMse.size(); ++i)
        EXPECT_EQ(serial.modelMse[i], parallel.modelMse[i]);
    EXPECT_EQ(serial.feasibilityRejections,
              parallel.feasibilityRejections);
}

TEST(GridSearchDriver, ParallelMatchesSerial)
{
    ParameterSpace space;
    space.addInteger("a", 0, 9, 0);
    space.addOrdinal("b", {1, 2, 4, 8}, 2);
    GridSearchOptions options;
    options.pointsPerAxis = 6;
    options.threads = 1;
    const auto serial = gridSearch(space, toyObjective2, options);
    options.threads = 3;
    const auto parallel = gridSearch(space, toyObjective2, options);
    expectSameEvaluations(serial, parallel);
}

// --- Knowledge extraction ---

TEST(Knowledge, LabelsAndRules)
{
    ParameterSpace space;
    space.addOrdinal("volume_resolution", {64, 128, 256}, 256);
    space.addReal("mu", 0.02, 0.2, 0.1);
    Rng rng(21);

    // Synthetic evaluations: small volumes are fast, big ones are
    // accurate; power flat.
    std::vector<Evaluation> evals;
    for (int i = 0; i < 150; ++i) {
        Evaluation e;
        e.point = space.sample(rng);
        const double vr = e.point[0];
        e.objectives = {
            vr / 6000.0,                    // runtime: <=30fps iff vr<200
            vr >= 128 ? 0.02 : 0.08,        // ate: good iff vr>=128
            2.0,                            // watts: always ok
        };
        e.valid = true;
        evals.push_back(e);
    }

    GoodnessCriteria criteria;
    const Knowledge k = extractKnowledge(space, evals, criteria, 2);
    EXPECT_GT(k.goodCount, 0u);
    EXPECT_LT(k.goodCount, k.totalCount);
    EXPECT_GT(k.trainAccuracy, 0.95);
    EXPECT_NE(k.rules.find("volume_resolution"), std::string::npos);
}

TEST(Knowledge, IsGoodChecksAllThreeCriteria)
{
    GoodnessCriteria c;
    Evaluation e = makeEval({1.0 / 31.0, 0.04, 2.9});
    EXPECT_TRUE(isGood(e, c));
    e.objectives[0] = 0.1; // 10 FPS
    EXPECT_FALSE(isGood(e, c));
    e.objectives[0] = 1.0 / 31.0;
    e.objectives[1] = 0.06; // ATE too big
    EXPECT_FALSE(isGood(e, c));
    e.objectives[1] = 0.04;
    e.objectives[2] = 3.5; // too much power
    EXPECT_FALSE(isGood(e, c));
    e.valid = false;
    e.objectives[2] = 2.0;
    EXPECT_FALSE(isGood(e, c));
}

TEST(Knowledge, EmptyEvaluationsSafe)
{
    const ParameterSpace space = toySpace();
    const Knowledge k =
        extractKnowledge(space, {}, GoodnessCriteria{});
    EXPECT_EQ(k.totalCount, 0u);
    EXPECT_TRUE(k.rules.empty());
}

} // namespace
