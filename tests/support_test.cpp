/**
 * @file
 * Unit tests for the support substrate: RNG, statistics, CSV,
 * strings, images, and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "support/csv.hpp"
#include "support/image.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace slambench::support;

// --- Rng ---

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.uniformInt(int64_t{3}, int64_t{7});
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stat.mean(), 2.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitStreamsAreIndependentish)
{
    Rng a(29);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

// --- RunningStat ---

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng rng(3);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(1.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// --- percentile ---

TEST(Percentile, EdgesAndMedian)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v{0, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(Percentile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, SingleElementIsEveryPercentile)
{
    const std::vector<double> v{7.5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 99), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 7.5);
}

TEST(Percentile, DuplicateHeavyInput)
{
    // 9 copies of 1.0 and a single outlier: low/median percentiles
    // sit on the plateau, only the very top interpolates toward it.
    std::vector<double> v(9, 1.0);
    v.push_back(100.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 88), 1.0);
    EXPECT_GT(percentile(v, 95), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 100.0);

    // All-identical input: every percentile is that value.
    const std::vector<double> flat(17, 3.25);
    EXPECT_DOUBLE_EQ(percentile(flat, 10), 3.25);
    EXPECT_DOUBLE_EQ(percentile(flat, 90), 3.25);
}

// --- Histogram ---

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0); // clamps into bin 0
    h.add(50.0); // clamps into bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);
}

TEST(Histogram, AsciiHasOneLinePerBin)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    const std::string art = h.toAscii();
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

// --- CsvWriter ---

TEST(Csv, HeaderAndRows)
{
    std::ostringstream out;
    {
        CsvWriter csv(out, {"a", "b"});
        csv.beginRow().cell(int64_t{1}).cell("x");
        csv.beginRow().cell(2.5).cell("y");
    }
    EXPECT_EQ(out.str(), "a,b\n1,x\n2.5,y\n");
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
    EXPECT_EQ(CsvWriter::escape("l\nl"), "\"l\nl\"");
}

TEST(Csv, RowCountTracksCompleteRows)
{
    std::ostringstream out;
    CsvWriter csv(out, {"a"});
    EXPECT_EQ(csv.rowCount(), 0u);
    csv.beginRow().cell("1");
    csv.endRow();
    EXPECT_EQ(csv.rowCount(), 1u);
}

// --- strings ---

TEST(Strings, Split)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
}

TEST(Strings, SplitNoSeparator)
{
    const auto fields = split("abc", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "abc");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\n x"), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ToLowerAndStartsWith)
{
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("hello", "lo"));
    EXPECT_FALSE(startsWith("h", "hello"));
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Strings, ParseDouble)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble(" 2.5 ", v));
    EXPECT_DOUBLE_EQ(v, 2.5);
    EXPECT_FALSE(parseDouble("abc", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
    EXPECT_FALSE(parseDouble("", v));
}

TEST(Strings, ParseLong)
{
    long v = 0;
    EXPECT_TRUE(parseLong("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_FALSE(parseLong("4.2", v));
}

// --- Image ---

TEST(Image, SizeAndAccess)
{
    Image<float> img(4, 3, 1.5f);
    EXPECT_EQ(img.width(), 4u);
    EXPECT_EQ(img.height(), 3u);
    EXPECT_EQ(img.size(), 12u);
    EXPECT_FLOAT_EQ(img(3, 2), 1.5f);
    img(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(img[2 * 4 + 1], 7.0f);
}

TEST(Image, Contains)
{
    Image<int> img(4, 3);
    EXPECT_TRUE(img.contains(0, 0));
    EXPECT_TRUE(img.contains(3, 2));
    EXPECT_FALSE(img.contains(4, 2));
    EXPECT_FALSE(img.contains(-1, 0));
}

TEST(Image, WritePpmRoundTripHeader)
{
    Image<Rgb8> img(2, 2);
    img(0, 0) = {255, 0, 0};
    const std::string path = "/tmp/sb_test_img.ppm";
    ASSERT_TRUE(writePpm(img, path));
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P6");
    size_t w, h;
    in >> w >> h;
    EXPECT_EQ(w, 2u);
    EXPECT_EQ(h, 2u);
    std::filesystem::remove(path);
}

TEST(Image, WritePgmRejectsDegenerateRange)
{
    Image<float> img(2, 2, 0.5f);
    EXPECT_FALSE(writePgm(img, "/tmp/sb_test_img.pgm", 1.0f, 1.0f));
}

TEST(Image, AsciiArtShape)
{
    Image<float> img(64, 64, 0.5f);
    const std::string art = asciiArt(img, 32, 0.0f, 1.0f);
    EXPECT_FALSE(art.empty());
    // Every line should be 32 chars + newline.
    const auto first_line = art.substr(0, art.find('\n'));
    EXPECT_EQ(first_line.size(), 32u);
}

// --- ThreadPool ---

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ChunkedCoversRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelForChunked(0, hits.size(),
                            [&](size_t lo, size_t hi) {
                                for (size_t i = lo; i < hi; ++i)
                                    hits[i].fetch_add(1);
                            });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(0, 100, [&](size_t) { sum.fetch_add(1); });
        EXPECT_EQ(sum.load(), 100);
    }
}

TEST(ThreadPool, SingleThreadPoolStillWorks)
{
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    pool.parallelFor(0, 50, [&](size_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 50);
}

TEST(ThreadPool, NumThreadsAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1u);
}

TEST(ThreadPool, NestedParallelFor)
{
    // A parallelFor body opening another region on the same pool must
    // complete (the waiter executes queued tasks cooperatively).
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(8 * 64);
    pool.parallelFor(0, 8, [&](size_t outer) {
        pool.parallelFor(0, 64, [&](size_t inner) {
            hits[outer * 64 + inner].fetch_add(1);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedOnSingleThreadPool)
{
    // With one worker the nested region runs entirely on the waiting
    // threads; the old broadcast design would have deadlocked or
    // panicked here.
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    pool.parallelFor(0, 4, [&](size_t) {
        pool.parallelFor(0, 16, [&](size_t) { sum.fetch_add(1); });
    });
    EXPECT_EQ(sum.load(), 4 * 16);
}

TEST(ThreadPool, ConcurrentSubmissions)
{
    // Several external threads drive independent loops on one shared
    // pool; each must see its own complete result.
    ThreadPool pool(4);
    constexpr size_t kClients = 6;
    std::vector<std::atomic<int>> sums(kClients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int round = 0; round < 10; ++round)
                pool.parallelFor(0, 100, [&](size_t) {
                    sums[c].fetch_add(1);
                });
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (const auto &s : sums)
        EXPECT_EQ(s.load(), 10 * 100);
}

TEST(ThreadPool, TaskGroupSubmitWait)
{
    ThreadPool pool(2);
    ThreadPool::TaskGroup group;
    std::atomic<int> done{0};
    for (int i = 0; i < 32; ++i)
        pool.submit(group, [&] { done.fetch_add(1); });
    pool.wait(group);
    EXPECT_EQ(done.load(), 32);
    EXPECT_EQ(group.pending(), 0u);

    // A group is reusable for another round.
    for (int i = 0; i < 8; ++i)
        pool.submit(group, [&] { done.fetch_add(1); });
    pool.wait(group);
    EXPECT_EQ(done.load(), 40);
}

TEST(ThreadPool, SubmitFromInsideTask)
{
    // Tasks may fork more work into their own group; wait() observes
    // the late submissions.
    ThreadPool pool(2);
    ThreadPool::TaskGroup group;
    std::atomic<int> done{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit(group, [&] {
            done.fetch_add(1);
            for (int j = 0; j < 3; ++j)
                pool.submit(group, [&] { done.fetch_add(1); });
        });
    }
    pool.wait(group);
    EXPECT_EQ(done.load(), 4 * 4);
}

TEST(ThreadPool, CountsExecutedTasks)
{
    ThreadPool pool(2);
    const uint64_t before = pool.tasksExecuted();
    pool.parallelFor(0, 1000, [](size_t) {});
    EXPECT_GT(pool.tasksExecuted(), before);
    EXPECT_GE(pool.peakActiveTasks(), 1u);
}

} // namespace
