/**
 * @file
 * Unit and property tests for the math substrate: vectors, matrices,
 * rotations, se(3) maps, and the small linear-algebra routines.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/camera.hpp"
#include "math/mat.hpp"
#include "math/se3.hpp"
#include "math/solve.hpp"
#include "math/vec.hpp"
#include "support/rng.hpp"

namespace {

using namespace slambench::math;
using slambench::support::Rng;

constexpr double kTol = 1e-9;

Vec3d
randomUnit(Rng &rng)
{
    Vec3d v;
    do {
        v = {rng.normal(), rng.normal(), rng.normal()};
    } while (v.norm() < 1e-6);
    return v.normalized();
}

Mat3d
randomRotation(Rng &rng)
{
    return expSo3(randomUnit(rng) * rng.uniform(0.0, 3.0));
}

// --- Vec3 ---

TEST(Vec3, ArithmeticAndDot)
{
    const Vec3d a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (Vec3d{5, 7, 9}));
    EXPECT_EQ(a - b, (Vec3d{-3, -3, -3}));
    EXPECT_EQ(a * 2.0, (Vec3d{2, 4, 6}));
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossProductProperties)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const Vec3d a = randomUnit(rng) * rng.uniform(0.1, 5.0);
        const Vec3d b = randomUnit(rng) * rng.uniform(0.1, 5.0);
        const Vec3d c = a.cross(b);
        EXPECT_NEAR(c.dot(a), 0.0, 1e-9);
        EXPECT_NEAR(c.dot(b), 0.0, 1e-9);
        // |a x b|^2 = |a|^2 |b|^2 - (a.b)^2 (Lagrange).
        EXPECT_NEAR(c.squaredNorm(),
                    a.squaredNorm() * b.squaredNorm() -
                        a.dot(b) * a.dot(b),
                    1e-7);
    }
}

TEST(Vec3, NormalizedIsUnitOrZero)
{
    EXPECT_NEAR((Vec3d{3, 4, 0}).normalized().norm(), 1.0, kTol);
    const Vec3d zero{};
    EXPECT_EQ(zero.normalized(), zero);
}

TEST(Vec3, IndexedAccess)
{
    Vec3d v{1, 2, 3};
    EXPECT_EQ(v[0], 1.0);
    EXPECT_EQ(v[1], 2.0);
    EXPECT_EQ(v[2], 3.0);
    v[1] = 9.0;
    EXPECT_EQ(v.y, 9.0);
}

TEST(Vec3, Lerp)
{
    const Vec3d a{0, 0, 0}, b{2, 4, 6};
    EXPECT_EQ(lerp(a, b, 0.5), (Vec3d{1, 2, 3}));
}

// --- Mat3 / Mat4 ---

TEST(Mat3, IdentityAndMultiply)
{
    const Mat3d id = Mat3d::identity();
    const Vec3d v{1, 2, 3};
    EXPECT_EQ(id * v, v);
    Rng rng(2);
    const Mat3d r = randomRotation(rng);
    const Mat3d prod = r * r.inverse();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(prod(i, j), id(i, j), 1e-12);
}

TEST(Mat3, DeterminantOfRotationIsOne)
{
    Rng rng(3);
    for (int i = 0; i < 20; ++i)
        EXPECT_NEAR(randomRotation(rng).determinant(), 1.0, 1e-9);
}

TEST(Mat3, TransposeIsInverseForRotations)
{
    Rng rng(4);
    const Mat3d r = randomRotation(rng);
    const Mat3d should_be_id = r * r.transposed();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(should_be_id(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Mat3, SkewMatchesCross)
{
    Rng rng(5);
    const Vec3d w = randomUnit(rng) * 2.0;
    const Vec3d v = randomUnit(rng) * 3.0;
    const Vec3d via_skew = Mat3d::skew(w) * v;
    const Vec3d via_cross = w.cross(v);
    EXPECT_NEAR((via_skew - via_cross).norm(), 0.0, 1e-12);
}

TEST(Mat4, RigidInverse)
{
    Rng rng(6);
    const Mat4d t = Mat4d::fromRt(randomRotation(rng), {1.0, -2.0, 0.5});
    const Mat4d prod = t * t.rigidInverse();
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Mat4, TransformPointVsDir)
{
    const Mat4d t = Mat4d::translation({1, 2, 3});
    EXPECT_EQ(t.transformPoint({0, 0, 0}), (Vec3d{1, 2, 3}));
    EXPECT_EQ(t.transformDir({1, 0, 0}), (Vec3d{1, 0, 0}));
}

// --- Quaternion ---

TEST(Quat, MatrixRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const Mat3d r = randomRotation(rng);
        const Mat3d r2 = Quat<double>::fromMatrix(r).toMatrix();
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                EXPECT_NEAR(r(a, b), r2(a, b), 1e-9);
    }
}

TEST(Quat, AxisAngleMatchesExpSo3)
{
    Rng rng(8);
    for (int i = 0; i < 50; ++i) {
        const Vec3d axis = randomUnit(rng);
        const double angle = rng.uniform(-3.0, 3.0);
        const Mat3d via_quat =
            Quat<double>::fromAxisAngle(axis, angle).toMatrix();
        const Mat3d via_exp = expSo3(axis * angle);
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                EXPECT_NEAR(via_quat(a, b), via_exp(a, b), 1e-9);
    }
}

TEST(Quat, SlerpEndpointsAndMidpoint)
{
    const auto qa = Quat<double>::fromAxisAngle({0, 0, 1}, 0.0);
    const auto qb = Quat<double>::fromAxisAngle({0, 0, 1}, 1.0);
    const auto q0 = slerp(qa, qb, 0.0);
    const auto q1 = slerp(qa, qb, 1.0);
    const auto qh = slerp(qa, qb, 0.5);
    EXPECT_NEAR(std::abs(q0.dot(qa)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(q1.dot(qb)), 1.0, 1e-12);
    const auto expected = Quat<double>::fromAxisAngle({0, 0, 1}, 0.5);
    EXPECT_NEAR(std::abs(qh.dot(expected)), 1.0, 1e-9);
}

// --- so(3)/se(3) ---

class So3RoundTrip : public ::testing::TestWithParam<double>
{};

TEST_P(So3RoundTrip, ExpLogIdentity)
{
    Rng rng(static_cast<uint64_t>(GetParam() * 1000) + 1);
    const double angle = GetParam();
    for (int i = 0; i < 20; ++i) {
        const Vec3d w = randomUnit(rng) * angle;
        const Vec3d w2 = logSo3(expSo3(w));
        EXPECT_NEAR((w - w2).norm(), 0.0, 1e-6)
            << "angle=" << angle;
    }
}

INSTANTIATE_TEST_SUITE_P(Angles, So3RoundTrip,
                         ::testing::Values(1e-9, 1e-6, 1e-3, 0.1, 1.0,
                                           2.0, 3.0, 3.1, 3.14));

TEST(So3, LogNearPiRecoversAxis)
{
    // Rotation by pi about a known axis.
    const Vec3d axis = Vec3d{1, 2, 2}.normalized();
    const Mat3d r = expSo3(axis * M_PI);
    const Vec3d w = logSo3(r);
    EXPECT_NEAR(w.norm(), M_PI, 1e-5);
    // Axis may flip sign; both represent the same rotation at pi.
    EXPECT_NEAR(std::abs(w.normalized().dot(axis)), 1.0, 1e-5);
}

TEST(Se3, ExpLogRoundTrip)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const Vec3d v{rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-2, 2)};
        const Vec3d w = randomUnit(rng) * rng.uniform(0.0, 2.5);
        const Mat4d t = expSe3(v, w);
        Vec3d v2, w2;
        logSe3(t, v2, w2);
        EXPECT_NEAR((v - v2).norm(), 0.0, 1e-7);
        EXPECT_NEAR((w - w2).norm(), 0.0, 1e-7);
    }
}

TEST(Se3, SmallTwistIsNearIdentityPlusTwist)
{
    const Vec3d v{1e-6, 0, 0};
    const Vec3d w{0, 1e-6, 0};
    const Mat4d t = expSe3(v, w);
    EXPECT_NEAR(t(0, 3), 1e-6, 1e-12);
    EXPECT_NEAR(t(0, 2), 1e-6, 1e-10); // sin(w) in rotation block
}

TEST(LookAt, ProducesRigidTransformFacingTarget)
{
    const Vec3d eye{1, 2, 3};
    const Vec3d target{4, 2, 3};
    const Mat4d pose = lookAt(eye, target, Vec3d{0, 1, 0});
    // Rotation block must be orthonormal with det +1.
    EXPECT_NEAR(pose.rotation().determinant(), 1.0, 1e-9);
    EXPECT_EQ(pose.translationPart(), eye);
    // Forward (camera +Z in world) points at the target.
    const Vec3d fwd = pose.rotation().col(2);
    EXPECT_NEAR((fwd - (target - eye).normalized()).norm(), 0.0, 1e-9);
}

TEST(LookAt, DegenerateUpHintStillValid)
{
    const Mat4d pose = lookAt(Vec3d{0, 0, 0}, Vec3d{0, 1, 0},
                              Vec3d{0, 1, 0});
    EXPECT_NEAR(pose.rotation().determinant(), 1.0, 1e-9);
}

// --- solveLdlt6 ---

TEST(Solve, Ldlt6SolvesRandomSpdSystems)
{
    Rng rng(10);
    for (int trial = 0; trial < 50; ++trial) {
        // Build A = B^T B + eps*I (SPD) and a known x.
        double b[6][6];
        for (auto &row : b)
            for (double &x : row)
                x = rng.normal();
        std::array<double, 36> a{};
        for (int i = 0; i < 6; ++i)
            for (int j = 0; j < 6; ++j) {
                double s = i == j ? 1e-3 : 0.0;
                for (int k = 0; k < 6; ++k)
                    s += b[k][i] * b[k][j];
                a[static_cast<size_t>(i * 6 + j)] = s;
            }
        std::array<double, 6> x_true{};
        for (double &v : x_true)
            v = rng.normal();
        std::array<double, 6> rhs{};
        for (int i = 0; i < 6; ++i)
            for (int j = 0; j < 6; ++j)
                rhs[static_cast<size_t>(i)] +=
                    a[static_cast<size_t>(i * 6 + j)] *
                    x_true[static_cast<size_t>(j)];

        std::array<double, 6> x{};
        ASSERT_TRUE(solveLdlt6(a, rhs, x));
        for (int i = 0; i < 6; ++i)
            EXPECT_NEAR(x[static_cast<size_t>(i)],
                        x_true[static_cast<size_t>(i)], 1e-6);
    }
}

TEST(Solve, Ldlt6RejectsSingular)
{
    std::array<double, 36> a{}; // all zeros: singular
    std::array<double, 6> rhs{};
    std::array<double, 6> x{};
    EXPECT_FALSE(solveLdlt6(a, rhs, x));
}

// --- eigenSym ---

TEST(Eigen, Sym3KnownDiagonal)
{
    const std::array<double, 9> a{3, 0, 0, 0, 1, 0, 0, 0, 2};
    const EigenSym<3> e = eigenSym3(a);
    EXPECT_NEAR(e.values[0], 3.0, 1e-12);
    EXPECT_NEAR(e.values[1], 2.0, 1e-12);
    EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(Eigen, Sym3ReconstructsMatrix)
{
    Rng rng(11);
    for (int trial = 0; trial < 30; ++trial) {
        std::array<double, 9> a{};
        for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
                const double v = rng.normal();
                a[static_cast<size_t>(i * 3 + j)] = v;
                a[static_cast<size_t>(j * 3 + i)] = v;
            }
        const EigenSym<3> e = eigenSym3(a);
        // Sum_k lambda_k v_k v_k^T must reproduce A.
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j) {
                double sum = 0.0;
                for (int k = 0; k < 3; ++k)
                    sum += e.values[static_cast<size_t>(k)] *
                           e.vectors[static_cast<size_t>(k)]
                                    [static_cast<size_t>(i)] *
                           e.vectors[static_cast<size_t>(k)]
                                    [static_cast<size_t>(j)];
                EXPECT_NEAR(sum, a[static_cast<size_t>(i * 3 + j)],
                            1e-8);
            }
        }
    }
}

TEST(Eigen, Sym4EigenvectorsOrthonormal)
{
    Rng rng(12);
    std::array<double, 16> a{};
    for (int i = 0; i < 4; ++i)
        for (int j = i; j < 4; ++j) {
            const double v = rng.normal();
            a[static_cast<size_t>(i * 4 + j)] = v;
            a[static_cast<size_t>(j * 4 + i)] = v;
        }
    const EigenSym<4> e = eigenSym4(a);
    for (int p = 0; p < 4; ++p) {
        for (int q = 0; q < 4; ++q) {
            double dot = 0.0;
            for (int k = 0; k < 4; ++k)
                dot += e.vectors[static_cast<size_t>(p)]
                                [static_cast<size_t>(k)] *
                       e.vectors[static_cast<size_t>(q)]
                                [static_cast<size_t>(k)];
            EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
        }
    }
}

// --- hornRotation ---

TEST(Horn, RecoversKnownRotation)
{
    Rng rng(13);
    for (int trial = 0; trial < 30; ++trial) {
        const Mat3d r_true = randomRotation(rng);
        // Build cov = sum p (R p)^T over random points.
        Mat3d cov = Mat3d::zero();
        for (int i = 0; i < 40; ++i) {
            const Vec3d p = randomUnit(rng) * rng.uniform(0.5, 2.0);
            const Vec3d q = r_true * p;
            for (int a = 0; a < 3; ++a)
                for (int b = 0; b < 3; ++b)
                    cov(a, b) += p[static_cast<size_t>(a)] *
                                 q[static_cast<size_t>(b)];
        }
        const Mat3d r = hornRotation(cov);
        for (int a = 0; a < 3; ++a)
            for (int b = 0; b < 3; ++b)
                EXPECT_NEAR(r(a, b), r_true(a, b), 1e-6);
    }
}

// --- CameraIntrinsics ---

TEST(Camera, ProjectBackProjectRoundTrip)
{
    const auto k = CameraIntrinsics::fromFov(320, 240, 1.0f);
    Rng rng(14);
    for (int i = 0; i < 100; ++i) {
        const float u = static_cast<float>(rng.uniform(0, 320));
        const float v = static_cast<float>(rng.uniform(0, 240));
        const float d = static_cast<float>(rng.uniform(0.5, 4.0));
        const Vec3f p = k.backProject(u, v, d);
        const Vec2f uv = k.project(p);
        EXPECT_NEAR(uv.x, u, 1e-3f);
        EXPECT_NEAR(uv.y, v, 1e-3f);
        EXPECT_NEAR(p.z, d, 1e-6f);
    }
}

TEST(Camera, ScaledHalvesEverything)
{
    const auto k = CameraIntrinsics::fromFov(320, 240, 1.0f);
    const auto k2 = k.scaled(2);
    EXPECT_EQ(k2.width, 160u);
    EXPECT_EQ(k2.height, 120u);
    EXPECT_FLOAT_EQ(k2.fx, k.fx / 2.0f);
    EXPECT_FLOAT_EQ(k2.cx, k.cx / 2.0f);
}

TEST(Camera, RayDirIsUnitAndThroughPixel)
{
    const auto k = CameraIntrinsics::fromFov(320, 240, 1.0f);
    const Vec3f dir = k.rayDir(160.0f, 120.0f);
    EXPECT_NEAR(dir.norm(), 1.0f, 1e-6f);
    // Center pixel looks along +Z.
    EXPECT_NEAR(dir.x, 0.0f, 1e-5f);
    EXPECT_NEAR(dir.y, 0.0f, 1e-5f);
}

} // namespace
