/**
 * @file
 * Tests for the hardware-counter profiling layer (support/pmu.hpp):
 * pure sample/derived-metric math, multiplex rescaling, exclusive
 * span attribution with an injected fake counter backend (single
 * thread, nested spans, and multi-thread aggregation), the
 * trace::ScopedSpan integration, and the graceful-degradation
 * contract (null backend keeps run reports schema-stable).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/pmu.hpp"
#include "support/trace.hpp"

namespace {

namespace pmu = slambench::support::pmu;
namespace metrics = slambench::support::metrics;
using pmu::CounterId;
using pmu::counterBit;
using pmu::Sample;

// --- Fake backend ------------------------------------------------
//
// Deterministic counter source: every read() advances each counter
// in the mask by a fixed per-counter step, so span deltas are exact
// multiples of the step and exclusive attribution can be checked
// against hand-computed values. Each thread gets its own instance
// (mirroring the per-thread perf groups), starting from zero.

constexpr double kStep = 100.0;

/** Step of counter @p i per read: 100, 200, 300, ... */
double
stepOf(size_t i)
{
    return kStep * static_cast<double>(i + 1);
}

class FakeThreadCounters final : public pmu::ThreadCounters
{
  public:
    explicit FakeThreadCounters(uint32_t mask) : mask_(mask) {}

    bool
    read(Sample &out) override
    {
        ++reads_;
        out = Sample{};
        for (size_t i = 0; i < pmu::kNumCounters; ++i)
            if (mask_ & (1u << i))
                out.set(static_cast<CounterId>(i),
                        static_cast<double>(reads_) * stepOf(i));
        return out.validMask != 0;
    }

  private:
    uint32_t mask_;
    uint64_t reads_ = 0;
};

class FakeBackend final : public pmu::CounterBackend
{
  public:
    explicit FakeBackend(uint32_t mask) : mask_(mask) {}

    const char *name() const override { return "fake"; }
    uint32_t availableMask() const override { return mask_; }

    std::unique_ptr<pmu::ThreadCounters>
    openThreadCounters() override
    {
        opened_.fetch_add(1, std::memory_order_relaxed);
        return std::make_unique<FakeThreadCounters>(mask_);
    }

    int
    opened() const
    {
        return opened_.load(std::memory_order_relaxed);
    }

  private:
    uint32_t mask_;
    std::atomic<int> opened_{0};
};

constexpr uint32_t kCyclesInstr =
    counterBit(CounterId::Cycles) | counterBit(CounterId::Instructions);

/** Stats entry for @p name, failing the test when absent. */
pmu::SpanStats
statsFor(const std::string &name)
{
    for (const pmu::SpanStats &s :
         pmu::Profiler::instance().spanStats())
        if (s.name == name)
            return s;
    ADD_FAILURE() << "no span stats for " << name;
    return {};
}

// --- Pure sample math --------------------------------------------

TEST(PmuSample, SetGetValidRoundTrip)
{
    Sample s;
    EXPECT_FALSE(s.valid(CounterId::Cycles));
    EXPECT_DOUBLE_EQ(s.get(CounterId::Cycles), 0.0);
    s.set(CounterId::Cycles, 42.0);
    EXPECT_TRUE(s.valid(CounterId::Cycles));
    EXPECT_DOUBLE_EQ(s.get(CounterId::Cycles), 42.0);
    EXPECT_FALSE(s.valid(CounterId::Instructions));
}

TEST(PmuSample, DeltaIsMaskIntersection)
{
    Sample begin;
    begin.set(CounterId::Cycles, 100.0);
    begin.set(CounterId::Instructions, 50.0);
    Sample end;
    end.set(CounterId::Cycles, 400.0);
    end.set(CounterId::TaskClockNs, 900.0); // appeared mid-interval

    const Sample delta = pmu::sampleDelta(end, begin);
    EXPECT_TRUE(delta.valid(CounterId::Cycles));
    EXPECT_DOUBLE_EQ(delta.get(CounterId::Cycles), 300.0);
    // Only in begin: dropped. Only in end: dropped.
    EXPECT_FALSE(delta.valid(CounterId::Instructions));
    EXPECT_FALSE(delta.valid(CounterId::TaskClockNs));
}

TEST(PmuSample, AccumulateIsMaskUnion)
{
    Sample into;
    into.set(CounterId::Cycles, 10.0);
    Sample other;
    other.set(CounterId::Cycles, 5.0);
    other.set(CounterId::Instructions, 7.0);

    pmu::sampleAccumulate(into, other);
    EXPECT_DOUBLE_EQ(into.get(CounterId::Cycles), 15.0);
    EXPECT_TRUE(into.valid(CounterId::Instructions));
    EXPECT_DOUBLE_EQ(into.get(CounterId::Instructions), 7.0);
}

TEST(PmuSample, ExclusiveSubtractsWhereBothValidAndClamps)
{
    Sample total;
    total.set(CounterId::Cycles, 100.0);
    total.set(CounterId::Instructions, 40.0);
    Sample children;
    children.set(CounterId::Cycles, 30.0);
    children.set(CounterId::Instructions, 55.0); // jitter overshoot

    const Sample self = pmu::sampleExclusive(total, children);
    EXPECT_DOUBLE_EQ(self.get(CounterId::Cycles), 70.0);
    // Child exceeded parent: clamped at zero, never negative.
    EXPECT_DOUBLE_EQ(self.get(CounterId::Instructions), 0.0);
    EXPECT_EQ(self.validMask, total.validMask);
}

// --- Multiplex rescaling -----------------------------------------

TEST(PmuScaling, FullyRunningCounterIsUnscaled)
{
    EXPECT_DOUBLE_EQ(pmu::scaledCounterValue(1000, 500, 500),
                     1000.0);
    // running > enabled (clock skew): still unscaled.
    EXPECT_DOUBLE_EQ(pmu::scaledCounterValue(1000, 400, 500),
                     1000.0);
}

TEST(PmuScaling, MultiplexedCounterScalesByEnabledOverRunning)
{
    // On the hardware half the time: the unbiased estimate doubles.
    EXPECT_DOUBLE_EQ(pmu::scaledCounterValue(1000, 200, 100),
                     2000.0);
    EXPECT_DOUBLE_EQ(pmu::scaledCounterValue(300, 900, 300),
                     900.0);
}

TEST(PmuScaling, NeverScheduledCounterReadsZero)
{
    EXPECT_DOUBLE_EQ(pmu::scaledCounterValue(12345, 1000, 0), 0.0);
}

// --- Derived metrics ---------------------------------------------

TEST(PmuDerived, HandComputedValues)
{
    Sample totals;
    totals.set(CounterId::Cycles, 2.0e9);
    totals.set(CounterId::Instructions, 3.0e9);
    totals.set(CounterId::LlcLoads, 1.0e6);
    totals.set(CounterId::LlcMisses, 2.5e5);
    totals.set(CounterId::Branches, 4.0e8);
    totals.set(CounterId::BranchMisses, 1.0e7);
    totals.set(CounterId::TaskClockNs, 5.0e8); // 0.5 s

    const pmu::DerivedMetrics d =
        pmu::deriveMetrics(totals, 1.0e9 /* bytes */);
    ASSERT_TRUE(d.hasIpc);
    EXPECT_DOUBLE_EQ(d.ipc, 1.5);
    ASSERT_TRUE(d.hasLlcMissRate);
    EXPECT_DOUBLE_EQ(d.llcMissRate, 0.25);
    ASSERT_TRUE(d.hasBranchMissRate);
    EXPECT_DOUBLE_EQ(d.branchMissRate, 0.025);
    ASSERT_TRUE(d.hasTaskClock);
    EXPECT_DOUBLE_EQ(d.taskClockSeconds, 0.5);
    ASSERT_TRUE(d.hasBytesPerSecond);
    EXPECT_DOUBLE_EQ(d.bytesPerSecond, 2.0e9);
}

TEST(PmuDerived, MissingOrZeroDenominatorsSuppressMetrics)
{
    // Cycles without instructions: no IPC.
    Sample only_cycles;
    only_cycles.set(CounterId::Cycles, 1.0e9);
    EXPECT_FALSE(pmu::deriveMetrics(only_cycles, 0.0).hasIpc);

    // Zero cycles (counter opened but nothing ran): no IPC.
    Sample zero_cycles;
    zero_cycles.set(CounterId::Cycles, 0.0);
    zero_cycles.set(CounterId::Instructions, 100.0);
    EXPECT_FALSE(pmu::deriveMetrics(zero_cycles, 0.0).hasIpc);

    // Task clock with unknown traffic: no bytes/s.
    Sample clock;
    clock.set(CounterId::TaskClockNs, 1.0e9);
    const pmu::DerivedMetrics d = pmu::deriveMetrics(clock, 0.0);
    EXPECT_TRUE(d.hasTaskClock);
    EXPECT_FALSE(d.hasBytesPerSecond);
    EXPECT_FALSE(d.hasLlcMissRate);
    EXPECT_FALSE(d.hasBranchMissRate);
}

// --- Profiler span attribution (fake backend) --------------------

TEST(PmuProfiler, NestedSpansGetExclusiveAttribution)
{
    FakeBackend backend(kCyclesInstr);
    auto &profiler = pmu::Profiler::instance();
    profiler.start(backend);

    // Reads happen at begin(outer), begin(inner), end(inner),
    // end(outer): cycles 100/200/300/400. Inner delta = 100 cycles;
    // outer delta = 300 with 100 attributed to the child, so the
    // outer self-time is 200 cycles (and twice that in
    // instructions, whose step is 200 per read).
    profiler.beginSpan("outer");
    profiler.beginSpan("inner");
    profiler.endSpan();
    profiler.endSpan();
    profiler.stop();

    const pmu::SpanStats inner = statsFor("inner");
    EXPECT_EQ(inner.spans, 1u);
    EXPECT_DOUBLE_EQ(inner.totals.get(CounterId::Cycles), 100.0);
    EXPECT_DOUBLE_EQ(inner.totals.get(CounterId::Instructions),
                     200.0);

    const pmu::SpanStats outer = statsFor("outer");
    EXPECT_EQ(outer.spans, 1u);
    EXPECT_DOUBLE_EQ(outer.totals.get(CounterId::Cycles), 200.0);
    EXPECT_DOUBLE_EQ(outer.totals.get(CounterId::Instructions),
                     400.0);

    EXPECT_EQ(backend.opened(), 1);
}

TEST(PmuProfiler, MultiThreadSpansAggregateUnderOneName)
{
    FakeBackend backend(kCyclesInstr);
    auto &profiler = pmu::Profiler::instance();
    profiler.start(backend);

    // Three threads, each one "integrate" span. Every thread opens
    // its own counter group starting at zero (two reads: begin at
    // 100 cycles, end at 200), so each span contributes exactly one
    // 100-cycle delta and the shared table sums them.
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&profiler] {
            profiler.beginSpan("integrate");
            profiler.endSpan();
        });
    }
    for (std::thread &t : threads)
        t.join();
    profiler.stop();

    const pmu::SpanStats stats = statsFor("integrate");
    EXPECT_EQ(stats.spans, 3u);
    EXPECT_DOUBLE_EQ(stats.totals.get(CounterId::Cycles), 300.0);
    EXPECT_DOUBLE_EQ(stats.totals.get(CounterId::Instructions),
                     600.0);
    EXPECT_EQ(backend.opened(), 3);
}

TEST(PmuProfiler, StartClearsTotalsAndReopensThreadGroups)
{
    FakeBackend first(kCyclesInstr);
    auto &profiler = pmu::Profiler::instance();
    profiler.start(first);
    profiler.beginSpan("stale");
    profiler.endSpan();

    // A second start() must drop the previous run's totals and bump
    // the generation so this thread's counter group reopens from
    // the new backend.
    FakeBackend second(kCyclesInstr);
    profiler.start(second);
    profiler.beginSpan("fresh");
    profiler.endSpan();
    profiler.stop();

    const auto all = profiler.spanStats();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].name, "fresh");
    // Fresh group: begin reads 100, end reads 200.
    EXPECT_DOUBLE_EQ(all[0].totals.get(CounterId::Cycles), 100.0);
    EXPECT_EQ(second.opened(), 1);
}

TEST(PmuProfiler, ReadThreadSampleFollowsEnableState)
{
    auto &profiler = pmu::Profiler::instance();
    profiler.stop();
    Sample sample;
    EXPECT_FALSE(profiler.readThreadSample(sample));
    EXPECT_EQ(sample.validMask, 0u);

    FakeBackend backend(counterBit(CounterId::Cycles));
    profiler.start(backend);
    ASSERT_TRUE(profiler.readThreadSample(sample));
    EXPECT_TRUE(sample.valid(CounterId::Cycles));
    Sample later;
    ASSERT_TRUE(profiler.readThreadSample(later));
    EXPECT_GT(later.get(CounterId::Cycles),
              sample.get(CounterId::Cycles));
    profiler.stop();
}

TEST(PmuProfiler, AddSpanBytesAccumulatesAndIgnoresNonPositive)
{
    FakeBackend backend(kCyclesInstr);
    auto &profiler = pmu::Profiler::instance();
    profiler.start(backend);
    profiler.beginSpan("raycast");
    profiler.endSpan();
    profiler.stop();

    profiler.addSpanBytes("raycast", 1000.0);
    profiler.addSpanBytes("raycast", 500.0);
    profiler.addSpanBytes("raycast", 0.0);
    profiler.addSpanBytes("raycast", -3.0);
    EXPECT_DOUBLE_EQ(statsFor("raycast").bytes, 1500.0);
}

TEST(PmuProfiler, EndSpanWithEmptyStackIsANoOp)
{
    FakeBackend backend(kCyclesInstr);
    auto &profiler = pmu::Profiler::instance();
    profiler.start(backend);
    profiler.endSpan(); // nothing open on this thread
    profiler.stop();
    EXPECT_TRUE(profiler.spanStats().empty());
}

// --- trace::ScopedSpan integration -------------------------------

TEST(PmuTraceIntegration, KernelSpansFeedProfilerPhaseSpansDoNot)
{
    ASSERT_FALSE(slambench::support::trace::Tracer::instance()
                     .enabled());
    FakeBackend backend(kCyclesInstr);
    auto &profiler = pmu::Profiler::instance();
    profiler.start(backend);
    {
        // Phase spans would double-count their kernels; only the
        // kernel and worker categories reach the profiler.
        slambench::support::trace::ScopedSpan frame(
            "frame", slambench::support::trace::Category::Phase);
        slambench::support::trace::ScopedSpan kernel(
            "track", slambench::support::trace::Category::Kernel);
    }
    profiler.stop();

    const auto all = profiler.spanStats();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].name, "track");
    EXPECT_EQ(all[0].spans, 1u);
}

TEST(PmuTraceIntegration, ScopeIsInertWhenDisabled)
{
    pmu::Profiler::instance().stop();
    pmu::Profiler::instance().clear();
    ASSERT_FALSE(pmu::enabled());
    {
        pmu::Scope scope("ignored");
    }
    {
        slambench::support::trace::ScopedSpan span(
            "ignored2", slambench::support::trace::Category::Kernel);
    }
    EXPECT_TRUE(pmu::Profiler::instance().spanStats().empty());
}

// --- Graceful degradation (null backend, schema-stable) ----------
//
// Declared last on purpose: pmu::Session latches profilingActive()
// for the rest of the process (report writers must still see the
// pmu block after the session disarms), which earlier tests do not
// want flipped on.

/** Brace/bracket balance outside strings: cheap structural check
 *  (the smoke script runs the full Python schema validator). */
bool
jsonBalanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(PmuDegradation, NullBackendSessionKeepsReportsSchemaStable)
{
    // Force the (process-latched) backend probe down the disabled
    // path: this is exactly what a locked-down container hits.
    ::setenv("SLAMBENCH_PMU_DISABLE", "1", 1);
    ASSERT_FALSE(pmu::profilingActive());
    {
        pmu::Session session(true);
        ASSERT_TRUE(session.active());
        EXPECT_TRUE(pmu::profilingActive());
        auto *backend = pmu::Profiler::instance().backend();
        ASSERT_NE(backend, nullptr);
        EXPECT_STREQ(backend->name(), "null");
        EXPECT_EQ(backend->availableMask(), 0u);

        // Spans still count even though no counter delivers values.
        pmu::Scope scope("integrate");
    }
    // Session ended: the hot path is disarmed but report writers
    // must still emit the pmu block.
    EXPECT_FALSE(pmu::enabled());
    EXPECT_TRUE(pmu::profilingActive());
    const pmu::SpanStats stats = statsFor("integrate");
    EXPECT_EQ(stats.spans, 1u);
    EXPECT_EQ(stats.totals.validMask, 0u);

    // The published gauge set degrades to span counts only.
    pmu::publishGauges();
    EXPECT_DOUBLE_EQ(metrics::Registry::instance()
                         .gauge("pmu.integrate.spans")
                         .value(),
                     1.0);

    // A run report written now must carry a schema-stable pmu
    // block: null backend, empty counter list, spans-only kernels.
    const std::string json_path = ::testing::TempDir() +
                                  "pmu_test_report_" +
                                  std::to_string(::getpid()) +
                                  ".json";
    metrics::RunSession run(json_path, "", "pmu_test");
    metrics::FrameTelemetry frame;
    frame.wallSeconds = 0.01;
    run.addFrame(frame);
    std::ostringstream out;
    ASSERT_TRUE(metrics::RunSession::writeCurrentJson(out));
    run.finish();
    std::remove(json_path.c_str());

    const std::string report = out.str();
    EXPECT_TRUE(jsonBalanced(report)) << report.substr(0, 400);
    EXPECT_NE(report.find("\"pmu\": {"), std::string::npos);
    EXPECT_NE(report.find("\"backend\": \"null\""),
              std::string::npos);
    EXPECT_NE(report.find("\"counters\": []"), std::string::npos);
    EXPECT_NE(report.find("\"integrate\": {\n        \"spans\": 1"),
              std::string::npos);
    ::unsetenv("SLAMBENCH_PMU_DISABLE");
}

} // namespace
