/**
 * @file
 * Tests for the power-monitor abstraction.
 */

#include <gtest/gtest.h>

#include "devices/fleet.hpp"
#include "power/power_monitor.hpp"

namespace {

using namespace slambench::power;
using slambench::devices::odroidXu3;
using slambench::kfusion::KernelId;
using slambench::kfusion::WorkCounts;

WorkCounts
someWork()
{
    WorkCounts w;
    w.addItems(KernelId::Integrate, 1e7);
    w.addBytes(KernelId::Integrate, 1.6e8);
    return w;
}

TEST(SimulatedMonitor, AccumulatesEnergyAndTime)
{
    SimulatedPowerMonitor monitor(odroidXu3());
    monitor.recordFrame(someWork());
    monitor.recordFrame(someWork());
    const EnergyReading r = monitor.reading();
    EXPECT_TRUE(r.available);
    EXPECT_GT(r.joules, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.watts(), 0.0);

    // Two identical frames: exactly double one frame.
    SimulatedPowerMonitor one(odroidXu3());
    one.recordFrame(someWork());
    EXPECT_NEAR(r.joules, 2.0 * one.reading().joules, 1e-12);
}

TEST(SimulatedMonitor, ResetClears)
{
    SimulatedPowerMonitor monitor(odroidXu3());
    monitor.recordFrame(someWork());
    monitor.reset();
    const EnergyReading r = monitor.reading();
    EXPECT_DOUBLE_EQ(r.joules, 0.0);
    EXPECT_DOUBLE_EQ(r.seconds, 0.0);
}

TEST(SimulatedMonitor, WattsMatchDeviceModel)
{
    const auto xu3 = odroidXu3();
    SimulatedPowerMonitor monitor(xu3);
    const WorkCounts w = someWork();
    monitor.recordFrame(w);
    const EnergyReading r = monitor.reading();
    EXPECT_NEAR(r.joules, xu3.frameJoules(w), 1e-12);
    EXPECT_NEAR(r.seconds, xu3.frameSeconds(w), 1e-12);
}

TEST(NullMonitor, ReportsUnavailable)
{
    NullPowerMonitor monitor;
    monitor.recordFrame(someWork());
    const EnergyReading r = monitor.reading();
    EXPECT_FALSE(r.available);
    EXPECT_DOUBLE_EQ(r.watts(), 0.0);
}

TEST(Factories, ProduceWorkingMonitors)
{
    auto simulated = makeSimulatedMonitor(odroidXu3());
    auto null_monitor = makeNullMonitor();
    simulated->recordFrame(someWork());
    null_monitor->recordFrame(someWork());
    EXPECT_TRUE(simulated->reading().available);
    EXPECT_FALSE(null_monitor->reading().available);
}

TEST(EnergyReading, WattsGuardsAgainstZeroTime)
{
    EnergyReading r;
    r.available = true;
    r.joules = 10.0;
    r.seconds = 0.0;
    EXPECT_DOUBLE_EQ(r.watts(), 0.0);
}

} // namespace
