/**
 * @file
 * Tests for the analytic device models and the generated phone fleet.
 */

#include <gtest/gtest.h>

#include <set>

#include "devices/device_model.hpp"
#include "devices/fleet.hpp"

namespace {

using namespace slambench::devices;
using slambench::kfusion::KernelId;
using slambench::kfusion::WorkCounts;

WorkCounts
sampleWork()
{
    WorkCounts w;
    w.addItems(KernelId::BilateralFilter, 2e6);
    w.addBytes(KernelId::BilateralFilter, 8e6);
    w.addItems(KernelId::Track, 1e6);
    w.addBytes(KernelId::Track, 8e7);
    w.addItems(KernelId::Integrate, 1.6e7);
    w.addBytes(KernelId::Integrate, 2.6e8);
    w.addItems(KernelId::Raycast, 3e6);
    w.addBytes(KernelId::Raycast, 1e8);
    w.addItems(KernelId::Solve, 20);
    return w;
}

TEST(DeviceModel, FrameTimePositiveAndIncludesOverhead)
{
    const DeviceModel xu3 = odroidXu3();
    WorkCounts empty;
    EXPECT_DOUBLE_EQ(xu3.frameSeconds(empty),
                     xu3.frameOverheadSeconds);
    EXPECT_GT(xu3.frameSeconds(sampleWork()),
              xu3.frameOverheadSeconds);
}

TEST(DeviceModel, TimeMonotoneInWork)
{
    const DeviceModel xu3 = odroidXu3();
    WorkCounts less = sampleWork();
    WorkCounts more = sampleWork();
    more.addItems(KernelId::Integrate, 1e8);
    EXPECT_GT(xu3.frameSeconds(more), xu3.frameSeconds(less));
}

TEST(DeviceModel, EnergyMonotoneInWork)
{
    const DeviceModel xu3 = odroidXu3();
    WorkCounts less = sampleWork();
    WorkCounts more = sampleWork();
    more.addItems(KernelId::Raycast, 1e8);
    more.addBytes(KernelId::Raycast, 1e9);
    EXPECT_GT(xu3.frameJoules(more), xu3.frameJoules(less));
}

TEST(DeviceModel, RooflineMemoryBound)
{
    DeviceModel dev = odroidXu3();
    dev.memoryBandwidth = 1e6; // cripple bandwidth
    WorkCounts w;
    w.addItems(KernelId::Integrate, 1.0);
    w.addBytes(KernelId::Integrate, 1e6); // 1 s of traffic
    EXPECT_NEAR(dev.kernelSeconds(KernelId::Integrate, w), 1.0,
                1e-9);
}

TEST(DeviceModel, RooflineComputeBound)
{
    DeviceModel dev = odroidXu3();
    dev.memoryBandwidth = 1e18;
    WorkCounts w;
    const double rate = dev.itemsPerSecond[static_cast<size_t>(
        KernelId::Integrate)];
    w.addItems(KernelId::Integrate, rate); // 1 s of compute
    EXPECT_NEAR(dev.kernelSeconds(KernelId::Integrate, w), 1.0,
                1e-9);
}

TEST(DeviceModel, StaticPowerDominatesIdleRuns)
{
    const DeviceModel xu3 = odroidXu3();
    WorkCounts w; // no work: only overhead time & static energy
    const double joules = xu3.frameJoules(w);
    EXPECT_NEAR(joules,
                xu3.staticWatts * xu3.frameOverheadSeconds, 1e-12);
}

TEST(SimulateRun, AggregatesFrames)
{
    const DeviceModel xu3 = odroidXu3();
    std::vector<WorkCounts> frames(10, sampleWork());
    const SimulatedRun run = simulateRun(xu3, frames);
    EXPECT_EQ(run.frameSeconds.size(), 10u);
    EXPECT_NEAR(run.totalSeconds, run.meanFrameSeconds * 10, 1e-9);
    EXPECT_GT(run.meanFps, 0.0);
    EXPECT_GT(run.meanWatts, 0.0);
    EXPECT_NEAR(run.meanWatts * run.totalSeconds, run.totalJoules,
                1e-9);
}

TEST(SimulateRun, PacedPowerLowerForFastRuns)
{
    // A device much faster than the camera rate idles most of the
    // time, so paced power approaches static power while batch power
    // stays high.
    DeviceModel fast = odroidXu3();
    for (double &r : fast.itemsPerSecond)
        r *= 100.0;
    fast.memoryBandwidth *= 100.0;
    fast.frameOverheadSeconds = 1e-4;
    std::vector<WorkCounts> frames(5, sampleWork());
    const SimulatedRun run = simulateRun(fast, frames, 30.0);
    EXPECT_LT(run.pacedWatts, run.meanWatts);
    EXPECT_GT(run.pacedWatts, fast.staticWatts * 0.99);
}

TEST(SimulateRun, PacedEqualsBatchWhenSlowerThanCamera)
{
    // A run slower than the camera period never idles.
    const DeviceModel xu3 = odroidXu3();
    WorkCounts heavy = sampleWork();
    heavy.addItems(KernelId::Integrate, 1e9);
    std::vector<WorkCounts> frames(3, heavy);
    const SimulatedRun run = simulateRun(xu3, frames, 30.0);
    EXPECT_NEAR(run.pacedWatts, run.meanWatts,
                1e-9 * run.meanWatts);
    EXPECT_NEAR(run.pacedSeconds, run.totalSeconds, 1e-12);
}

TEST(SimulateRun, EmptyRunIsZero)
{
    const SimulatedRun run = simulateRun(odroidXu3(), {});
    EXPECT_DOUBLE_EQ(run.totalSeconds, 0.0);
    EXPECT_DOUBLE_EQ(run.meanFps, 0.0);
}

TEST(Xu3, LandsInThePaperRegimeForDefaultishWork)
{
    // Default-config-like per-frame work (QVGA, vr=256, ir=2):
    // a few FPS at roughly 2-4 W.
    const DeviceModel xu3 = odroidXu3();
    WorkCounts w;
    w.addItems(KernelId::Mm2Meters, 7.7e4);
    w.addBytes(KernelId::Mm2Meters, 4.6e5);
    w.addItems(KernelId::BilateralFilter, 1.9e6);
    w.addBytes(KernelId::BilateralFilter, 8e6);
    w.addItems(KernelId::Track, 9e5);
    w.addBytes(KernelId::Track, 7e7);
    w.addItems(KernelId::Reduce, 9e5);
    w.addBytes(KernelId::Reduce, 3e7);
    // Amortized over ir=2; items are visited voxels, roughly 10% of
    // the res^3 sweep once frustum culling is accounted for.
    w.addItems(KernelId::Integrate, 8.4e5);
    w.addBytes(KernelId::Integrate, 1.3e7);
    w.addItems(KernelId::Raycast, 2.5e6);
    w.addBytes(KernelId::Raycast, 8e7);
    const double seconds = xu3.frameSeconds(w);
    const double watts = xu3.frameJoules(w) / seconds;
    EXPECT_GT(seconds, 0.05);
    EXPECT_LT(seconds, 0.6);
    EXPECT_GT(watts, 1.0);
    EXPECT_LT(watts, 6.0);
}

// --- fleet ---

TEST(Fleet, GeneratesRequestedCountDeterministically)
{
    const auto a = mobileFleet(83, 2018);
    const auto b = mobileFleet(83, 2018);
    ASSERT_EQ(a.size(), 83u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].memoryBandwidth, b[i].memoryBandwidth);
        for (size_t k = 0; k < slambench::kfusion::kNumKernels; ++k)
            EXPECT_DOUBLE_EQ(a[i].itemsPerSecond[k],
                             b[i].itemsPerSecond[k]);
    }
}

TEST(Fleet, DifferentSeedDifferentFleet)
{
    const auto a = mobileFleet(10, 1);
    const auto b = mobileFleet(10, 2);
    bool any_diff = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].memoryBandwidth != b[i].memoryBandwidth;
    EXPECT_TRUE(any_diff);
}

TEST(Fleet, NamesAreUnique)
{
    const auto fleet = mobileFleet(83, 2018);
    std::set<std::string> names;
    for (const DeviceModel &d : fleet)
        names.insert(d.name);
    EXPECT_EQ(names.size(), fleet.size());
}

TEST(Fleet, CoversAllMarketSegments)
{
    const auto fleet = mobileFleet(83, 2018);
    std::set<DeviceClass> classes;
    for (const DeviceModel &d : fleet)
        classes.insert(d.deviceClass);
    EXPECT_GE(classes.size(), 5u);
}

TEST(Fleet, FlagshipsFasterThanLowEndOnAverage)
{
    const auto fleet = mobileFleet(83, 2018);
    const WorkCounts w = sampleWork();
    double flagship_sum = 0.0, lowend_sum = 0.0;
    size_t flagship_n = 0, lowend_n = 0;
    for (const DeviceModel &d : fleet) {
        if (d.deviceClass == DeviceClass::Flagship) {
            flagship_sum += d.frameSeconds(w);
            ++flagship_n;
        } else if (d.deviceClass == DeviceClass::LowEnd) {
            lowend_sum += d.frameSeconds(w);
            ++lowend_n;
        }
    }
    ASSERT_GT(flagship_n, 0u);
    ASSERT_GT(lowend_n, 0u);
    EXPECT_LT(flagship_sum / flagship_n, lowend_sum / lowend_n);
}

TEST(Fleet, AllDevicesHavePositiveRates)
{
    for (const DeviceModel &d : mobileFleet(83, 2018)) {
        EXPECT_GT(d.memoryBandwidth, 0.0) << d.name;
        EXPECT_GT(d.staticWatts, 0.0) << d.name;
        EXPECT_GT(d.memoryBudgetBytes, 0.0) << d.name;
        for (size_t k = 0; k < slambench::kfusion::kNumKernels; ++k)
            EXPECT_GT(d.itemsPerSecond[k], 0.0) << d.name;
    }
}

TEST(DeviceClassNames, AreStable)
{
    EXPECT_STREQ(deviceClassName(DeviceClass::EmbeddedBoard),
                 "embedded");
    EXPECT_STREQ(deviceClassName(DeviceClass::Flagship), "flagship");
    EXPECT_STREQ(deviceClassName(DeviceClass::Tablet), "tablet");
}

} // namespace
