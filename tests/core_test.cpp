/**
 * @file
 * Tests for the framework layer: the SlamSystem interface, the
 * benchmark loop, configuration binding, and experiment glue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/benchmark.hpp"
#include "core/config_binding.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/slam_system.hpp"
#include "devices/fleet.hpp"

namespace {

using namespace slambench::core;
using slambench::dataset::Sequence;
using slambench::dataset::SequenceSpec;
using slambench::devices::DeviceModel;
using slambench::devices::odroidXu3;
using slambench::hypermapper::ParameterSpace;
using slambench::hypermapper::Point;
using slambench::kfusion::KFusionConfig;

Sequence
tinySequence(size_t frames = 6)
{
    SequenceSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.numFrames = frames;
    spec.renderRgb = false;
    return generateSequence(spec);
}

KFusionConfig
tinyConfig()
{
    KFusionConfig config;
    config.volumeResolution = 64;
    config.pyramidIterations = {5, 3, 2};
    return config;
}

// --- KFusionSystem / benchmark loop ---

TEST(KFusionSystem, NameReflectsImplementation)
{
    KFusionSystem seq(tinyConfig());
    EXPECT_EQ(seq.name(), "kfusion-sequential");
    KFusionSystem par(tinyConfig(),
                      slambench::kfusion::Implementation::Threaded);
    EXPECT_EQ(par.name(), "kfusion-threaded");
}

TEST(Benchmark, RunsAndCollectsAllMetrics)
{
    const Sequence seq = tinySequence();
    KFusionSystem system(tinyConfig());
    const BenchmarkResult result = runBenchmark(system, seq);

    EXPECT_EQ(result.frames, 6u);
    EXPECT_EQ(result.estimatedPoses.size(), 6u);
    EXPECT_EQ(result.frameWork.size(), 6u);
    EXPECT_GT(result.trackedFraction(), 0.8);
    EXPECT_LT(result.ate.maxAte, 0.05);
    EXPECT_GT(result.hostTiming.totalSeconds, 0.0);
    EXPECT_GT(result.totalWork.itemsFor(
                  slambench::kfusion::KernelId::Integrate),
              0.0);
    // Aligned ATE is computed by default and is never worse than 2x
    // the raw ATE on a healthy run.
    EXPECT_GT(result.ateAligned.frames, 0u);
}

TEST(Benchmark, RenderingRateChargesRenderVolume)
{
    const Sequence seq = tinySequence(5);
    KFusionConfig config = tinyConfig();
    config.renderingRate = 2;
    KFusionSystem system(config);
    const BenchmarkResult result = runBenchmark(system, seq);
    // Frames 0, 2, 4 render.
    size_t rendered_frames = 0;
    for (const auto &work : result.frameWork)
        rendered_frames +=
            work.itemsFor(
                slambench::kfusion::KernelId::RenderVolume) > 0.0;
    EXPECT_EQ(rendered_frames, 3u);
}

// --- config binding ---

TEST(ConfigBinding, SpaceHasFourteenParameters)
{
    const ParameterSpace space = kfusionParameterSpace();
    EXPECT_EQ(space.size(), 14u);
    // Defaults decode to the default KFusionConfig.
    const KFusionConfig config =
        pointToConfig(space, space.defaultPoint());
    const KFusionConfig reference;
    EXPECT_EQ(config.computeSizeRatio, reference.computeSizeRatio);
    EXPECT_EQ(config.volumeResolution, reference.volumeResolution);
    EXPECT_EQ(config.integrationRate, reference.integrationRate);
    EXPECT_EQ(config.pyramidIterations, reference.pyramidIterations);
    EXPECT_FLOAT_EQ(config.mu, reference.mu);
    EXPECT_EQ(config.kernelBackend, reference.kernelBackend);
    EXPECT_EQ(config.volumeBackend, reference.volumeBackend);
    EXPECT_EQ(config.volumeBlockSize, reference.volumeBlockSize);
    EXPECT_EQ(config.volumePoolCapacity, reference.volumePoolCapacity);
}

TEST(ConfigBinding, RoundTripThroughPoint)
{
    const ParameterSpace space = kfusionParameterSpace();
    KFusionConfig config;
    config.computeSizeRatio = 4;
    config.volumeResolution = 96;
    config.mu = 0.15f;
    config.integrationRate = 7;
    config.pyramidIterations = {8, 4, 2};
    config.trackingRate = 2;
    config.renderingRate = 6;
    config.kernelBackend = "simd";
    config.volumeBackend = "sparse";
    config.volumeBlockSize = 16;
    config.volumePoolCapacity = 4096;
    const Point p = configToPoint(space, config);
    const KFusionConfig decoded = pointToConfig(space, p);
    EXPECT_EQ(decoded.computeSizeRatio, 4);
    EXPECT_EQ(decoded.volumeResolution, 96);
    EXPECT_NEAR(decoded.mu, 0.15f, 1e-6f);
    EXPECT_EQ(decoded.integrationRate, 7);
    EXPECT_EQ(decoded.pyramidIterations,
              (std::vector<int>{8, 4, 2}));
    EXPECT_EQ(decoded.trackingRate, 2);
    EXPECT_EQ(decoded.renderingRate, 6);
    EXPECT_EQ(decoded.kernelBackend, "simd");
    EXPECT_EQ(decoded.volumeBackend, "sparse");
    EXPECT_EQ(decoded.volumeBlockSize, 16);
    EXPECT_EQ(decoded.volumePoolCapacity, 4096);
}

TEST(ConfigBinding, MixedBackendRoundTripsThroughOrdinal)
{
    const ParameterSpace space = kfusionParameterSpace();
    KFusionConfig config;
    config.kernelBackend = "mixed";
    const Point p = configToPoint(space, config);
    EXPECT_EQ(p[space.indexOf("implementation")], 2.0);
    EXPECT_EQ(pointToConfig(space, p).kernelBackend, "mixed");
}

TEST(ConfigBinding, RandomPointsAlwaysValidate)
{
    const ParameterSpace space = kfusionParameterSpace();
    slambench::support::Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const KFusionConfig config =
            pointToConfig(space, space.sample(rng));
        EXPECT_TRUE(config.validate().empty())
            << config.toString() << ": " << config.validate();
    }
}

// --- experiment glue ---

TEST(Experiment, VolumeBytes)
{
    KFusionConfig config;
    config.volumeResolution = 64;
    EXPECT_DOUBLE_EQ(volumeBytes(config), 64.0 * 64 * 64 * 8);
}

TEST(Experiment, EvaluateConfigOnDeviceProducesObjectives)
{
    const Sequence seq = tinySequence();
    const EvaluatedConfig record =
        evaluateConfigOnDevice(tinyConfig(), seq, odroidXu3());
    EXPECT_TRUE(record.valid);
    EXPECT_GT(record.simulated.meanFrameSeconds, 0.0);
    EXPECT_GT(record.simulated.meanWatts, 0.0);
    EXPECT_GE(record.ate.maxAte, 0.0);
    EXPECT_GT(record.trackedFraction, 0.9);
}

TEST(Experiment, MemoryBudgetInvalidatesHugeVolumes)
{
    const Sequence seq = tinySequence(2);
    DeviceModel small_device = odroidXu3();
    small_device.memoryBudgetBytes = 1e6; // 1 MB: nothing fits
    const EvaluatedConfig record =
        evaluateConfigOnDevice(tinyConfig(), seq, small_device);
    EXPECT_FALSE(record.valid);
}

TEST(Experiment, DseEvaluatorMatchesDirectEvaluation)
{
    const Sequence seq = tinySequence();
    const ParameterSpace space = kfusionParameterSpace();
    std::vector<EvaluatedConfig> log;
    auto evaluator =
        makeDseEvaluator(space, seq, odroidXu3(), {}, &log);

    Point p = space.defaultPoint();
    p[space.indexOf("volume_resolution")] = 64;
    const auto outcome = evaluator(p);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(outcome.objectives.size(),
              static_cast<size_t>(kNumObjectives));
    EXPECT_NEAR(outcome.objectives[kObjRuntime],
                log[0].simulated.meanFrameSeconds, 1e-12);
    EXPECT_NEAR(outcome.objectives[kObjMaxAte], log[0].ate.maxAte,
                1e-12);
    EXPECT_NEAR(outcome.objectives[kObjWatts],
                log[0].simulated.pacedWatts, 1e-12);
}

TEST(Experiment, ReplayOnFleetComputesSpeedups)
{
    const Sequence seq = tinySequence(4);

    KFusionConfig default_config = tinyConfig();
    default_config.volumeResolution = 128;
    KFusionConfig tuned_config = tinyConfig();
    tuned_config.computeSizeRatio = 2;
    tuned_config.volumeResolution = 64;
    tuned_config.integrationRate = 4;

    KFusionSystem default_system(default_config);
    KFusionSystem tuned_system(tuned_config);
    const BenchmarkResult default_run =
        runBenchmark(default_system, seq);
    const BenchmarkResult tuned_run = runBenchmark(tuned_system, seq);

    const auto fleet = slambench::devices::mobileFleet(20, 7);
    const auto entries = replayOnFleet(
        fleet, default_run.frameWork, volumeBytes(default_config),
        tuned_run.frameWork, volumeBytes(tuned_config));
    ASSERT_EQ(entries.size(), 20u);
    for (const FleetEntry &e : entries) {
        if (e.ranDefault && e.ranTuned) {
            EXPECT_GT(e.speedup, 1.0) << e.device;
            EXPECT_LT(e.speedup, 100.0) << e.device;
        }
    }
}

TEST(Report, FrameLogHasOneRowPerFrame)
{
    const Sequence seq = tinySequence(4);
    KFusionSystem system(tinyConfig());
    const BenchmarkResult result = runBenchmark(system, seq);
    std::ostringstream out;
    const size_t rows =
        writeFrameLog(out, result, odroidXu3());
    EXPECT_EQ(rows, 4u);
    // Header + 4 data rows.
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(Report, SummaryMentionsKeyMetrics)
{
    const Sequence seq = tinySequence(3);
    KFusionSystem system(tinyConfig());
    const BenchmarkResult result = runBenchmark(system, seq);
    const std::string text =
        summarizeRun(result, odroidXu3(), system.name());
    EXPECT_NE(text.find("kfusion-sequential"), std::string::npos);
    EXPECT_NE(text.find("max ATE"), std::string::npos);
    EXPECT_NE(text.find("odroid-xu3"), std::string::npos);
    EXPECT_NE(text.find("integrate"), std::string::npos);
}

TEST(Experiment, UntrackableRunIsInvalid)
{
    // A configuration that cannot track: zero ICP iterations at
    // every level makes the pipeline open-loop; with a moving camera
    // ATE grows but the run stays "tracked" -- instead use a tiny
    // tracked-fraction threshold trick: demand an impossible 1.1.
    const Sequence seq = tinySequence(3);
    DseObjectiveOptions options;
    options.minTrackedFraction = 1.1;
    const EvaluatedConfig record = evaluateConfigOnDevice(
        tinyConfig(), seq, odroidXu3(), options);
    EXPECT_FALSE(record.valid);
}

} // namespace
