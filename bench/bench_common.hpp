#ifndef SLAMBENCH_BENCH_COMMON_HPP
#define SLAMBENCH_BENCH_COMMON_HPP

/**
 * @file
 * Shared scaffolding for the figure-regeneration benches: the
 * canonical workload, the default and tuned configurations, and
 * tiny argument parsing.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/benchmark.hpp"
#include "core/config_binding.hpp"
#include "core/experiment.hpp"
#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "kfusion/backend.hpp"
#include "kfusion/volume_backend.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/telemetry_server.hpp"
#include "support/trace.hpp"

namespace slambench::bench {

/**
 * The canonical evaluation workload: the synthetic living-room
 * orbit sequence at QVGA, the stand-in for ICL-NUIM lr kt0 used by
 * all figures.
 */
inline dataset::SequenceSpec
canonicalWorkload(size_t frames = 30)
{
    dataset::SequenceSpec spec;
    spec.name = "living_room-orbit-a";
    spec.scene = dataset::SceneId::LivingRoom;
    spec.trajectory = dataset::TrajectoryPreset::OrbitA;
    spec.width = 320;
    spec.height = 240;
    spec.numFrames = frames;
    spec.renderRgb = false;
    spec.seed = 42;
    // Faster-than-handheld camera plus a noisier sensor: aggressive
    // configurations (tiny images, skipped tracking, coarse volumes)
    // genuinely fail here, which is what makes the Fig. 2 trade-off
    // non-trivial. The real ICL-NUIM sequences are hard for the same
    // reasons (fast rotation, depth noise).
    spec.trajectorySpeedup = 5.0;
    spec.noise.sigmaQuad = 0.0045f;
    spec.noise.dropoutCosine = 0.35f;
    return spec;
}

/** The KinectFusion default configuration (the paper's baseline). */
inline kfusion::KFusionConfig
defaultConfig()
{
    return kfusion::KFusionConfig{};
}

/**
 * The configuration found for the Odroid-XU3 by the HyperMapper
 * active-learning run in bench_fig2_dse (best simulated runtime
 * subject to Max ATE < 5 cm and paced power < 1 W on this
 * repository's workload). Fixed here so the mobile (Fig. 3) and
 * headline benches are reproducible standalone, exactly as the paper
 * shipped one tuned configuration to the Android app.
 */
inline kfusion::KFusionConfig
tunedConfig()
{
    kfusion::KFusionConfig config;
    config.computeSizeRatio = 2;
    config.icpThreshold = 6.0e-5f;
    config.mu = 0.16f;
    config.integrationRate = 8;
    config.volumeResolution = 64;
    config.pyramidIterations = {4, 3, 2};
    config.trackingRate = 1;
    config.renderingRate = 8;
    return config;
}

/** Parse "--name value" style options; returns the default if absent. */
inline long
argLong(int argc, char **argv, const char *name, long fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return std::atol(argv[i + 1]);
    return fallback;
}

/** @return true when the flag is present. */
inline bool
argFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

/** Parse "--name value" string options; returns @p fallback if absent. */
inline const char *
argString(int argc, char **argv, const char *name,
          const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    return fallback;
}

/** Parse "--name value" floating-point options. */
inline double
argDouble(int argc, char **argv, const char *name, double fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return std::atof(argv[i + 1]);
    return fallback;
}

/**
 * Parse the shared `--backend NAME` flag: the kernel backend the
 * four hot kernels run on ("scalar", "simd", or "auto" for
 * CPUID-based dispatch; see docs/KERNEL_BACKENDS.md). Exits with a
 * usage error on names missing from the registry. All backends are
 * bit-exact, so the flag moves only the performance axis.
 */
inline std::string
backendFromArgs(int argc, char **argv)
{
    const char *name = argString(argc, argv, "--backend", "scalar");
    std::string error;
    if (!kfusion::resolveKernelBackend(name, &error))
        support::fatal(std::string(argv[0]) + ": --backend: " + error);
    return name;
}

/**
 * Parse the shared volume-backend flags into @p config:
 *
 *   --volume NAME        TSDF map data structure, "dense" (default)
 *                        or "sparse" (hashed voxel blocks; see
 *                        docs/ARCHITECTURE.md "Volume backends")
 *   --block-size N       sparse voxel-block edge, 8 or 16
 *   --pool-capacity N    sparse resident-block cap (0 = unbounded)
 *
 * Exits with a usage error on invalid values. Sparse is bit-identical
 * to dense on the observed region, so like `--backend` these flags
 * move only the performance/memory axes.
 */
inline void
volumeFromArgs(int argc, char **argv, kfusion::KFusionConfig &config)
{
    config.volumeBackend =
        argString(argc, argv, "--volume", config.volumeBackend.c_str());
    config.volumeBlockSize = static_cast<int>(argLong(
        argc, argv, "--block-size", config.volumeBlockSize));
    config.volumePoolCapacity = argLong(
        argc, argv, "--pool-capacity", config.volumePoolCapacity);
    if (!kfusion::volumeBackendNameValid(config.volumeBackend))
        support::fatal(std::string(argv[0]) +
                       ": --volume: unknown volume backend '" +
                       config.volumeBackend +
                       "' (valid: dense, sparse)");
    if (config.volumeBlockSize != 8 && config.volumeBlockSize != 16)
        support::fatal(std::string(argv[0]) +
                       ": --block-size must be 8 or 16");
    if (config.volumePoolCapacity < 0)
        support::fatal(std::string(argv[0]) +
                       ": --pool-capacity must be >= 0");
}

/**
 * Parse the shared `--dse-threads N` flag: worker threads for the
 * parallel DSE drivers (and, where a bench evaluates fixed
 * configurations itself, its own evaluation pool). 0 (the default)
 * means hardware concurrency; 1 selects the legacy serial path. Any
 * value produces byte-identical evaluation sequences — only the wall
 * clock changes.
 */
inline size_t
dseThreadsFromArgs(int argc, char **argv)
{
    const long value = argLong(argc, argv, "--dse-threads", 0);
    return value < 0 ? 0 : static_cast<size_t>(value);
}

/**
 * Arm per-kernel tracing from the shared bench flags:
 *
 *   --trace FILE      chrome://tracing span timeline (JSON)
 *   --perf-csv FILE   per-frame per-kernel host-time aggregate (CSV)
 *
 * Keep the returned session alive for the whole measured run; the
 * files are written when it goes out of scope. With neither flag the
 * session is inert and tracing stays disabled.
 */
inline support::trace::Session
traceSessionFromArgs(int argc, char **argv)
{
    return support::trace::Session(
        argString(argc, argv, "--trace", ""),
        argString(argc, argv, "--perf-csv", ""));
}

/**
 * Arm a machine-readable run report from the shared bench flags:
 *
 *   --metrics-json FILE  versioned JSON run report
 *   --frames-csv FILE    per-frame telemetry table (CSV)
 *
 * Keep the returned session alive for the whole measured run; the
 * files are written by finish() (or at destruction) and the paths are
 * logged at INFO. With neither flag the session is inert.
 */
inline support::metrics::RunSession
metricsSessionFromArgs(int argc, char **argv, const char *generator)
{
    return support::metrics::RunSession(
        argString(argc, argv, "--metrics-json", ""),
        argString(argc, argv, "--frames-csv", ""), generator);
}

/**
 * Arm hardware-counter profiling from the shared `--pmu` flag
 * (docs/OBSERVABILITY.md "Hardware counters"): per-kernel cycles,
 * IPC, LLC/branch miss rates, and measured bytes/s, attributed over
 * the same spans as `--trace` and folded into the run report's `pmu`
 * block plus `pmu.*` registry gauges. Probes `perf_event_open` once,
 * logs at most one WARN when counters are missing, and degrades to a
 * schema-stable null backend. Keep the returned session alive for
 * the whole measured run; without the flag it is inert and every
 * span costs a single relaxed load.
 */
inline support::pmu::Session
pmuSessionFromArgs(int argc, char **argv)
{
    return support::pmu::Session(argFlag(argc, argv, "--pmu"));
}

/**
 * Arm end-to-end request tracing from the shared bench flags
 * (docs/OBSERVABILITY.md "Request tracing"):
 *
 *   --trace-requests       arm per-frame request traces with
 *                          tail-based retention (SLO breaches,
 *                          tracking losses, and top-bucket frames
 *                          always kept; the rest sampled)
 *   --trace-sample-rate P  retention probability for unflagged
 *                          frames (default 0.01; implies
 *                          --trace-requests)
 *   --trace-store N        retained-trace ring size (default 256;
 *                          implies --trace-requests)
 *
 * Keep the returned session alive for the whole run; retained traces
 * are served by `/tracez?trace_id=...` and linked from `/metrics`
 * histogram exemplars. With none of the flags the session is inert
 * and every span costs a single relaxed load.
 */
inline support::trace::RequestTraceSession
requestTraceFromArgs(int argc, char **argv)
{
    support::trace::RequestTraceOptions options;
    options.sampleRate = argDouble(argc, argv,
                                   "--trace-sample-rate", -1.0);
    const long store = argLong(argc, argv, "--trace-store", 0);
    const bool armed = argFlag(argc, argv, "--trace-requests") ||
                       options.sampleRate >= 0.0 || store > 0;
    if (options.sampleRate < 0.0)
        options.sampleRate = 0.01;
    if (options.sampleRate > 1.0)
        options.sampleRate = 1.0;
    if (store > 0)
        options.maxRetained = static_cast<size_t>(store);
    return support::trace::RequestTraceSession(armed, options);
}

/**
 * Arm live telemetry from the shared bench flags
 * (docs/OBSERVABILITY.md "Live telemetry"):
 *
 *   --telemetry-port N    serve /metrics, /healthz, /runz on
 *                         127.0.0.1:N (0 = pick an ephemeral port,
 *                         logged at INFO)
 *   --crash-dump FILE     fatal-signal flight-recorder dump path
 *                         (default <generator>_crash.json once any
 *                         telemetry flag is set)
 *   --recorder-slots N    flight-recorder ring capacity (default
 *                         1024; rounded up to a power of two)
 *   --slo-frame-p99-ms X  healthz SLO: live frame-time p99 <= X ms
 *   --slo-max-ate X       healthz SLO: per-frame ATE <= X meters
 *   --slo-max-lost N      healthz SLO: <= N consecutive tracking
 *                         failures
 *   --slo-queue-stall-ms X healthz SLO: no pool queue stalled > X ms
 *
 * Keep the returned endpoint alive for the whole run; with none of
 * the flags it is inert and the frame loop pays a single relaxed
 * atomic load per frame.
 */
inline support::telemetry::TelemetryEndpoint
telemetryFromArgs(int argc, char **argv, const char *generator)
{
    support::telemetry::TelemetryOptions options;
    options.port = static_cast<int>(
        argLong(argc, argv, "--telemetry-port", -1));
    options.crashDumpPath =
        argString(argc, argv, "--crash-dump", "");
    const long slots =
        argLong(argc, argv, "--recorder-slots", 1024);
    options.recorderSlots =
        slots <= 0 ? 1024 : static_cast<size_t>(slots);
    options.generator = generator;
    options.slo.frameP99Seconds =
        argDouble(argc, argv, "--slo-frame-p99-ms", 0.0) * 1e-3;
    options.slo.maxAteMeters =
        argDouble(argc, argv, "--slo-max-ate", 0.0);
    options.slo.maxConsecutiveTrackingFailures =
        argLong(argc, argv, "--slo-max-lost", 0);
    options.slo.poolQueueStallSeconds =
        argDouble(argc, argv, "--slo-queue-stall-ms", 0.0) * 1e-3;
    return support::telemetry::TelemetryEndpoint(options);
}

/**
 * Apply the shared logging flags: `--quiet` raises the threshold to
 * warnings (suppressing the INFO output-path and summary lines),
 * `--verbose` lowers it to DEBUG (per-evaluation DSE report lines).
 */
inline void
applyLogFlags(int argc, char **argv)
{
    if (argFlag(argc, argv, "--quiet"))
        support::setLogLevel(support::LogLevel::Warn);
    else if (argFlag(argc, argv, "--verbose"))
        support::setLogLevel(support::LogLevel::Debug);
}

/** Run one configuration on the workload; returns benchmark result. */
inline core::BenchmarkResult
runConfig(const kfusion::KFusionConfig &config,
          const dataset::Sequence &sequence)
{
    core::KFusionSystem system(config);
    core::BenchmarkOptions options;
    options.alignedAte = false;
    return core::runBenchmark(system, sequence, options);
}

} // namespace slambench::bench

#endif // SLAMBENCH_BENCH_COMMON_HPP
