/**
 * @file
 * FIG1 — reproduces the content of the paper's Fig. 1 (the SLAMBench
 * GUI): the RGB and depth input panes, the tracking-status pane, the
 * reconstructed-model pane, and the live metric readouts (speed,
 * power, accuracy).
 *
 * Output: four PPM images written to the working directory plus the
 * GUI side-panel numbers printed as text, with an ASCII preview of
 * the depth and model panes.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "kfusion/mesh.hpp"
#include "metrics/ate.hpp"
#include "metrics/reconstruction.hpp"
#include "metrics/timing.hpp"
#include "support/image.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;
    using namespace slambench::bench;

    applyLogFlags(argc, argv);
    const size_t frames = static_cast<size_t>(
        argLong(argc, argv, "--frames", 45));
    // --trace FILE / --perf-csv FILE: per-kernel profiling exports
    // (see docs/OBSERVABILITY.md); files written at exit.
    const support::trace::Session trace_session =
        traceSessionFromArgs(argc, argv);
    // --pmu: hardware-counter profiling (per-kernel IPC, cache-miss
    // rates, measured bytes/s; docs/OBSERVABILITY.md).
    const support::pmu::Session pmu_session =
        pmuSessionFromArgs(argc, argv);
    // --metrics-json FILE / --frames-csv FILE: machine-readable run
    // report with per-frame telemetry (docs/OBSERVABILITY.md).
    support::metrics::RunSession metrics_session =
        metricsSessionFromArgs(argc, argv, "fig1_pipeline");
    // --telemetry-port N (+ --crash-dump / --slo-*): live /metrics,
    // /healthz, /runz server and crash-surviving flight recorder.
    const support::telemetry::TelemetryEndpoint telemetry =
        telemetryFromArgs(argc, argv, "fig1_pipeline");
    // --trace-requests / --trace-sample-rate / --trace-store:
    // per-frame request traces with tail-based retention.
    const support::trace::RequestTraceSession request_traces =
        requestTraceFromArgs(argc, argv);

    dataset::SequenceSpec spec = canonicalWorkload(frames);
    spec.renderRgb = true; // the GUI shows the RGB pane
    std::printf("FIG1: SLAMBench GUI panes, %zu frames of %s\n",
                spec.numFrames, spec.name.c_str());
    const dataset::Sequence sequence = generateSequence(spec);

    kfusion::KFusionConfig config = defaultConfig();
    // --backend {scalar,simd,auto}: kernel backend for the hot
    // kernels (bit-exact; performance only).
    config.kernelBackend = backendFromArgs(argc, argv);
    // --volume {dense,sparse} (+ --block-size, --pool-capacity):
    // TSDF map data structure (bit-identical; memory/perf only).
    volumeFromArgs(argc, argv, config);
    core::addConfigParams(metrics_session, config);
    kfusion::KFusion pipeline(config, sequence.intrinsics);
    pipeline.setPose(sequence.groundTruth.pose(0));

    size_t tracked = 0;
    std::vector<math::Mat4f> poses;
    core::BenchmarkResult run;
    for (size_t i = 0; i < sequence.frames.size(); ++i) {
        const uint64_t start_ns = slambench::metrics::now_ns();
        const kfusion::FrameResult r =
            pipeline.processFrame(sequence.frames[i].depthMm);
        run.frameSeconds.push_back(
            static_cast<double>(slambench::metrics::now_ns() -
                                start_ns) *
            1e-9);
        run.frameTracked.push_back(r.tracking.tracked);
        run.frameRssPeak.push_back(
            support::metrics::peakRssBytes());
        tracked += r.tracking.tracked;
        poses.push_back(r.pose);
        if (support::telemetry::liveTelemetry()) {
            const double live_ate =
                i < sequence.groundTruth.size()
                    ? (r.pose.translationPart() -
                       sequence.groundTruth.pose(i)
                           .translationPart())
                          .norm()
                    : 0.0;
            support::telemetry::frameTick(i,
                                          run.frameSeconds.back(),
                                          live_ate,
                                          r.tracking.tracked);
        }
    }
    const metrics::AteResult ate = metrics::computeAte(
        poses, sequence.groundTruth.poses(), false);
    run.frames = sequence.frames.size();
    run.trackedFrames = tracked;
    run.estimatedPoses = poses;
    run.ate = ate;
    run.frameWork = pipeline.frameWork();
    run.totalWork = pipeline.totalWork();
    run.hostTiming = metrics::summarizeTiming(run.frameSeconds);

    // --- The four GUI panes ---
    const size_t last = sequence.frames.size() - 1;
    support::writePpm(sequence.frames[last].rgb, "fig1_rgb.ppm");

    support::Image<float> depth_m;
    kfusion::mm2metersKernel(depth_m, sequence.frames[last].depthMm,
                             1, nullptr);
    support::writePgm(depth_m, "fig1_depth.pgm", 0.0f, 4.5f);

    support::Image<support::Rgb8> track_pane;
    pipeline.renderTrack(track_pane);
    support::writePpm(track_pane, "fig1_track.ppm");

    support::Image<support::Rgb8> model_pane;
    pipeline.renderModel(model_pane, pipeline.pose());
    support::writePpm(model_pane, "fig1_model.ppm");

    support::logInfo() << "wrote fig1_rgb.ppm fig1_depth.pgm "
                          "fig1_track.ppm fig1_model.ppm";

    // --- ASCII previews (terminal stand-in for the GUI) ---
    std::printf("depth pane (near=dark, far=bright):\n%s\n",
                support::asciiArt(depth_m, 72, 0.5f, 4.0f).c_str());

    support::Image<float> model_gray(model_pane.width(),
                                     model_pane.height());
    for (size_t i = 0; i < model_pane.size(); ++i)
        model_gray[i] = static_cast<float>(model_pane[i].g);
    std::printf("model pane (shaded reconstruction):\n%s\n",
                support::asciiArt(model_gray, 72, 0.0f, 255.0f)
                    .c_str());

    // --- GUI side panel: per-kernel timings + metric triple ---
    const auto &work = pipeline.totalWork();
    std::printf("side panel / per-kernel host time:\n");
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        std::printf("  %-16s %8.2f ms total, %12.0f work items\n",
                    kfusion::kernelName(id),
                    work.hostSecondsFor(id) * 1e3, work.itemsFor(id));
    }

    const devices::DeviceModel xu3 = devices::odroidXu3();
    const devices::SimulatedRun sim =
        devices::simulateRun(xu3, pipeline.frameWork());
    std::printf("\nmetric readouts (default configuration):\n");
    std::printf("  tracking   : %zu/%zu frames tracked\n", tracked,
                sequence.frames.size());
    std::printf("  speed      : %.1f ms/frame (%.2f FPS) on the "
                "simulated odroid-xu3\n",
                sim.meanFrameSeconds * 1e3, sim.meanFps);
    std::printf("  power      : %.2f W paced / %.2f W batch "
                "(simulated)\n",
                sim.pacedWatts, sim.meanWatts);
    std::printf("  accuracy   : max ATE %.4f m, mean %.4f m, RMSE "
                "%.4f m\n",
                ate.maxAte, ate.meanAte, ate.rmse);

    // Map quality: extract the mesh and measure its distance to the
    // true scene surfaces (the ICL-NUIM reconstruction metric).
    const kfusion::TriangleMesh mesh =
        kfusion::extractMesh(pipeline.volume());
    mesh.saveObj("fig1_model.obj");
    const auto recon = metrics::computeReconstructionError(
        mesh, dataset::livingRoomScene(), 5);
    std::printf("  map quality: %zu triangles, surface error mean "
                "%.4f m / RMSE %.4f m (fig1_model.obj)\n",
                mesh.triangleCount(), recon.meanAbs, recon.rmse);

    // --- Machine-readable run report ---
    core::appendRunTelemetry(metrics_session, "fig1", run, &xu3);
    metrics_session.setSummary("sim_frame_seconds_mean",
                               sim.meanFrameSeconds);
    metrics_session.setSummary("sim_watts_paced", sim.pacedWatts);
    metrics_session.setSummary("recon_rmse_m", recon.rmse);
    metrics_session.finish();
    return 0;
}
