/**
 * @file
 * FIG3 — reproduces the paper's Fig. 3: the OpenCL KinectFusion
 * configuration tuned for the Odroid-XU3 replayed on 83 simulated
 * phones/tablets; for each device the speed-up of the tuned
 * configuration over the device's default-configuration run.
 *
 * Output: fig3_devices.csv (one row per device) and the speed-up
 * histogram on stdout (the right pane of the paper's figure).
 *
 * Options: --frames N, --devices N, --seed S.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;
    using namespace slambench::bench;

    applyLogFlags(argc, argv);
    const size_t frames = static_cast<size_t>(
        argLong(argc, argv, "--frames", 30));
    const support::trace::Session trace_session =
        traceSessionFromArgs(argc, argv);
    // --pmu: hardware-counter profiling (docs/OBSERVABILITY.md).
    const support::pmu::Session pmu_session =
        pmuSessionFromArgs(argc, argv);
    support::metrics::RunSession metrics_session =
        metricsSessionFromArgs(argc, argv, "fig3_mobile");
    // --telemetry-port N (+ --crash-dump / --slo-*): live /metrics,
    // /healthz, /runz server and crash-surviving flight recorder.
    const support::telemetry::TelemetryEndpoint telemetry =
        telemetryFromArgs(argc, argv, "fig3_mobile");
    // --trace-requests / --trace-sample-rate / --trace-store:
    // per-frame request traces with tail-based retention.
    const support::trace::RequestTraceSession request_traces =
        requestTraceFromArgs(argc, argv);
    const size_t device_count = static_cast<size_t>(
        argLong(argc, argv, "--devices", 83));
    const uint64_t seed = static_cast<uint64_t>(
        argLong(argc, argv, "--seed", 2018));

    std::printf("FIG3: tuned-vs-default speed-up on %zu simulated "
                "devices (%zu frames)\n",
                device_count, frames);

    const dataset::Sequence sequence =
        generateSequence(canonicalWorkload(frames));

    // One pipeline run per configuration; device models replay the
    // recorded per-frame work (this mirrors how the Android app ran
    // the same workload everywhere).
    // --backend applies to both runs: the implementation axis is
    // orthogonal to the tuned-vs-default algorithmic comparison.
    const std::string backend = backendFromArgs(argc, argv);
    kfusion::KFusionConfig default_config = defaultConfig();
    kfusion::KFusionConfig tuned_config = tunedConfig();
    default_config.kernelBackend = backend;
    tuned_config.kernelBackend = backend;
    // --volume applies to both runs for the same reason.
    volumeFromArgs(argc, argv, default_config);
    volumeFromArgs(argc, argv, tuned_config);
    // The report's config object records the tuned configuration
    // (the artifact Fig. 3 ships); both runs' frames are appended
    // below under their own labels.
    core::addConfigParams(metrics_session, tuned_config);
    std::printf("default: %s\n", default_config.toString().c_str());
    std::printf("tuned  : %s\n", tuned_config.toString().c_str());

    const core::BenchmarkResult default_run =
        runConfig(default_config, sequence);
    const core::BenchmarkResult tuned_run =
        runConfig(tuned_config, sequence);
    std::printf("host runs done: default ate %.4f m, tuned ate "
                "%.4f m\n",
                default_run.ate.maxAte, tuned_run.ate.maxAte);

    const auto fleet = devices::mobileFleet(device_count, seed);
    const auto entries = core::replayOnFleet(
        fleet, default_run.frameWork,
        core::volumeBytes(default_config), tuned_run.frameWork,
        core::volumeBytes(tuned_config));

    // --- CSV ---
    {
        std::ofstream out("fig3_devices.csv");
        support::CsvWriter csv(
            out, {"device", "class", "default_ms_per_frame",
                  "tuned_ms_per_frame", "speedup", "ran_default",
                  "ran_tuned"});
        for (const auto &e : entries) {
            csv.beginRow()
                .cell(e.device)
                .cell(e.deviceClass)
                .cell(e.defaultSeconds * 1e3)
                .cell(e.tunedSeconds * 1e3)
                .cell(e.speedup)
                .cell(e.ranDefault ? "1" : "0")
                .cell(e.ranTuned ? "1" : "0");
        }
        csv.endRow();
        support::logInfo() << "wrote fig3_devices.csv ("
                           << csv.rowCount() << " rows)";
    }

    // --- Histogram (the paper's right pane, 0..14x bins) ---
    support::Histogram histogram(0.0, 16.0, 16);
    support::RunningStat speedups;
    size_t failed = 0;
    for (const auto &e : entries) {
        if (!e.ranDefault || !e.ranTuned) {
            ++failed;
            continue;
        }
        histogram.add(e.speedup);
        speedups.add(e.speedup);
    }
    std::printf("\nspeed-up distribution over %zu devices "
                "(%zu could not run the default volume):\n%s",
                entries.size(), failed,
                histogram.toAscii(48).c_str());
    std::printf("\nspeed-up: min %.2fx, median-ish mean %.2fx, max "
                "%.2fx\n",
                speedups.min(), speedups.mean(), speedups.max());

    // Real-time attainment with the tuned configuration.
    size_t realtime = 0;
    for (const auto &e : entries)
        realtime += e.ranTuned && e.tunedSeconds > 0.0 &&
                    e.tunedSeconds <= 1.0 / 25.0;
    std::printf("devices reaching the real-time range (>=25 FPS) "
                "with the tuned config: %zu/%zu\n",
                realtime, entries.size());

    // --- Machine-readable run report ---
    const auto xu3 = devices::odroidXu3();
    core::appendRunTelemetry(metrics_session, "default", default_run,
                             &xu3);
    core::appendRunTelemetry(metrics_session, "tuned", tuned_run,
                             &xu3);
    metrics_session.setSummary("fleet_devices",
                               static_cast<double>(entries.size()));
    metrics_session.setSummary("speedup_mean", speedups.mean());
    metrics_session.setSummary("speedup_max", speedups.max());
    metrics_session.setSummary("realtime_devices",
                               static_cast<double>(realtime));
    metrics_session.finish();
    return 0;
}
