/**
 * @file
 * FIG2 — reproduces the paper's Fig. 2: design-space exploration of
 * the KinectFusion algorithmic parameters on the (simulated)
 * Odroid-XU3.
 *
 * Left pane: runtime-vs-MaxATE scatter comparing random sampling
 * against HyperMapper-style active learning at equal budget, with
 * the default configuration and the 0.05 m accuracy limit marked.
 * Right pane: the decision-tree "knowledge" separating good
 * configurations (accurate + real-time + power-efficient) from bad
 * ones, printed as parameter rules.
 *
 * Output: fig2_scatter.csv (one row per evaluation), plus the
 * induced rules and a summary on stdout.
 *
 * Options: --frames N, --random N, --warmup N, --iters N, --batch N,
 *          --seed S, --quick (tiny budgets for smoke testing).
 */

#include <cstdio>
#include <fstream>
#include <limits>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "hypermapper/knowledge.hpp"
#include "support/csv.hpp"

namespace {

using namespace slambench;
using namespace slambench::bench;

void
writeRows(support::CsvWriter &csv,
          const std::vector<hypermapper::Evaluation> &evals,
          const hypermapper::ParameterSpace &space)
{
    for (const auto &e : evals) {
        csv.beginRow()
            .cell(e.method)
            .cell(static_cast<int64_t>(e.iteration))
            .cell(e.valid ? "1" : "0")
            .cell(e.objectives[core::kObjRuntime])
            .cell(e.objectives[core::kObjMaxAte])
            .cell(e.objectives[core::kObjWatts]);
        for (size_t i = 0; i < space.size(); ++i)
            csv.cell(e.point[i]);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    applyLogFlags(argc, argv);
    const bool quick = argFlag(argc, argv, "--quick");
    const size_t frames = static_cast<size_t>(
        argLong(argc, argv, "--frames", quick ? 10 : 30));
    const support::trace::Session trace_session =
        traceSessionFromArgs(argc, argv);
    // --pmu: hardware-counter profiling (docs/OBSERVABILITY.md).
    const support::pmu::Session pmu_session =
        pmuSessionFromArgs(argc, argv);
    support::metrics::RunSession metrics_session =
        metricsSessionFromArgs(argc, argv, "fig2_dse");
    // --telemetry-port N (+ --crash-dump / --slo-*): live /metrics,
    // /healthz, /runz server and crash-surviving flight recorder.
    const support::telemetry::TelemetryEndpoint telemetry =
        telemetryFromArgs(argc, argv, "fig2_dse");
    // --trace-requests / --trace-sample-rate / --trace-store:
    // per-frame request traces with tail-based retention.
    const support::trace::RequestTraceSession request_traces =
        requestTraceFromArgs(argc, argv);
    const size_t random_budget = static_cast<size_t>(
        argLong(argc, argv, "--random", quick ? 10 : 100));
    const size_t warmup = static_cast<size_t>(
        argLong(argc, argv, "--warmup", quick ? 6 : 40));
    const size_t iterations = static_cast<size_t>(
        argLong(argc, argv, "--iters", quick ? 1 : 6));
    const size_t batch = static_cast<size_t>(
        argLong(argc, argv, "--batch", quick ? 4 : 10));
    const uint64_t seed = static_cast<uint64_t>(
        argLong(argc, argv, "--seed", 1));
    const size_t dse_threads = dseThreadsFromArgs(argc, argv);

    std::printf("FIG2: DSE on the simulated odroid-xu3 "
                "(%zu frames, random=%zu, active=%zu+%zux%zu, "
                "dse-threads=%zu)\n",
                frames, random_budget, warmup, iterations, batch,
                dse_threads);

    dataset::SequenceSpec spec = canonicalWorkload(frames);
    const dataset::Sequence sequence = generateSequence(spec);
    const auto space = core::kfusionParameterSpace();
    const auto xu3 = devices::odroidXu3();
    std::vector<core::EvaluatedConfig> eval_log;
    auto evaluator =
        core::makeDseEvaluator(space, sequence, xu3, {}, &eval_log);

    // --- Baseline: the default configuration. ---
    // --backend/--volume select the baseline's kernel and volume
    // backends; the DSE itself always explores the "implementation"
    // (0 = scalar, 1 = simd, 2 = mixed) and "volume" (0 = dense,
    // 1 = sparse) dimensions regardless of these flags.
    kfusion::KFusionConfig default_config = defaultConfig();
    default_config.kernelBackend = backendFromArgs(argc, argv);
    volumeFromArgs(argc, argv, default_config);
    core::addConfigParams(metrics_session, default_config);
    const hypermapper::Point default_point =
        core::configToPoint(space, default_config);
    const auto default_outcome = evaluator(default_point);
    hypermapper::Evaluation default_eval;
    default_eval.point = default_point;
    default_eval.objectives = default_outcome.objectives;
    default_eval.valid = default_outcome.valid;
    default_eval.method = "default";
    std::printf("default config: runtime %.3f s/frame (%.1f FPS), "
                "max ATE %.4f m, %.2f W\n",
                default_eval.objectives[core::kObjRuntime],
                1.0 / default_eval.objectives[core::kObjRuntime],
                default_eval.objectives[core::kObjMaxAte],
                default_eval.objectives[core::kObjWatts]);

    // --- Random-sampling baseline. ---
    hypermapper::RandomSearchOptions rs_options;
    rs_options.budget = random_budget;
    rs_options.seed = seed;
    rs_options.threads = dse_threads;
    std::printf("running random sampling (%zu evaluations)...\n",
                rs_options.budget);
    const auto random_evals =
        hypermapper::randomSearch(space, evaluator, rs_options);

    // --- HyperMapper active learning. ---
    hypermapper::ActiveLearningOptions al_options;
    al_options.warmupSamples = warmup;
    al_options.iterations = iterations;
    al_options.batchSize = batch;
    al_options.candidatePool = 2000;
    al_options.forest.numTrees = 30;
    al_options.seed = seed + 1000;
    al_options.threads = dse_threads;
    std::printf("running active learning (%zu evaluations)...\n",
                warmup + iterations * batch);
    const auto al_result = hypermapper::activeLearning(
        space, evaluator, core::kNumObjectives, al_options);

    // --- Scatter CSV (the left pane of Fig. 2). ---
    {
        std::ofstream out("fig2_scatter.csv");
        std::vector<std::string> header{"method", "iteration",
                                        "valid", "runtime_s",
                                        "max_ate_m", "watts"};
        for (const auto &name : space.names())
            header.push_back(name);
        support::CsvWriter csv(out, header);
        writeRows(csv, {default_eval}, space);
        writeRows(csv, random_evals, space);
        writeRows(csv, al_result.evaluations, space);
        csv.endRow();
        support::logInfo() << "wrote fig2_scatter.csv ("
                           << csv.rowCount() << " rows)";
    }

    // --- Best-under-accuracy-limit comparison. ---
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<double> ate_cap{inf, 0.05, inf};
    const double best_random =
        hypermapper::bestUnderCaps(random_evals, core::kObjRuntime,
                                   ate_cap);
    const double best_active = hypermapper::bestUnderCaps(
        al_result.evaluations, core::kObjRuntime, ate_cap);
    std::printf("\nbest runtime with Max ATE <= 0.05 m:\n");
    std::printf("  random sampling : %.4f s/frame\n", best_random);
    std::printf("  active learning : %.4f s/frame\n", best_active);
    std::printf("  default         : %.4f s/frame\n",
                default_eval.objectives[core::kObjRuntime]);
    if (best_active < inf) {
        std::printf("  active-learning speedup over default: %.2fx\n",
                    default_eval.objectives[core::kObjRuntime] /
                        best_active);
    }

    // --- Pareto fronts. ---
    auto front_size = [](const std::vector<hypermapper::Evaluation>
                             &evals) {
        return hypermapper::paretoFront(evals).size();
    };
    std::printf("\npareto-front sizes: random %zu, active %zu\n",
                front_size(random_evals),
                front_size(al_result.evaluations));
    const double hv_random = hypermapper::hypervolume2d(
        random_evals, 0.5, 0.1);
    const double hv_active = hypermapper::hypervolume2d(
        al_result.evaluations, 0.5, 0.1);
    std::printf("hypervolume (runtime x ate, ref 0.5s/0.1m): "
                "random %.5f, active %.5f (%s)\n",
                hv_random, hv_active,
                hv_active >= hv_random ? "active wins"
                                       : "random wins");

    // --- Knowledge extraction (the right pane of Fig. 2). ---
    std::vector<hypermapper::Evaluation> all = random_evals;
    all.insert(all.end(), al_result.evaluations.begin(),
               al_result.evaluations.end());
    all.push_back(default_eval);

    hypermapper::GoodnessCriteria criteria;
    criteria.maxAteLimit = 0.05; // accurate
    criteria.minFps = 30.0;      // fast (real-time)
    criteria.maxWatts = 3.0;     // power-efficient
    const auto knowledge =
        hypermapper::extractKnowledge(space, all, criteria, 3);
    std::printf("\nknowledge extraction: %zu/%zu configurations are "
                "GOOD (ATE<5cm, >30FPS, <3W); tree accuracy %.2f\n",
                knowledge.goodCount, knowledge.totalCount,
                knowledge.trainAccuracy);
    std::printf("%s\n", knowledge.rules.c_str());

    // --- The tuned configuration (for Fig. 3 / headline). ---
    const std::vector<double> tuned_caps{inf, 0.05, 1.0};
    double best = inf;
    const hypermapper::Evaluation *best_eval = nullptr;
    for (const auto &e : all) {
        if (!e.valid)
            continue;
        if (e.objectives[core::kObjMaxAte] > 0.05 ||
            e.objectives[core::kObjWatts] > 1.0)
            continue;
        if (e.objectives[core::kObjRuntime] < best) {
            best = e.objectives[core::kObjRuntime];
            best_eval = &e;
        }
    }
    if (best_eval) {
        std::printf("best config under ATE<5cm AND power<1W:\n  %s\n"
                    "  runtime %.4f s/frame (%.1f FPS), ate %.4f m, "
                    "%.2f W\n",
                    space.describe(best_eval->point).c_str(), best,
                    1.0 / best,
                    best_eval->objectives[core::kObjMaxAte],
                    best_eval->objectives[core::kObjWatts]);
    } else {
        std::printf("no configuration met ATE<5cm AND power<1W in "
                    "this run\n");
    }

    // --- Machine-readable run report: per-frame telemetry of the
    // default configuration plus the DSE outcome scalars. The
    // per-evaluation records are in the registry (`dse.*` counters
    // and the `dse.eval_wall_seconds` histogram) and, at --verbose,
    // one DEBUG report line per sampled configuration.
    if (!eval_log.empty()) {
        core::appendRunTelemetry(metrics_session, "default",
                                 eval_log.front().bench, &xu3);
    }
    metrics_session.setSummary(
        "dse_evaluations", static_cast<double>(eval_log.size()));
    if (best_random < inf)
        metrics_session.setSummary("best_random_runtime_s",
                                   best_random);
    if (best_active < inf)
        metrics_session.setSummary("best_active_runtime_s",
                                   best_active);
    metrics_session.setSummary("hypervolume_random", hv_random);
    metrics_session.setSummary("hypervolume_active", hv_active);
    metrics_session.finish();
    return 0;
}
