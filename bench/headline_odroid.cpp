/**
 * @file
 * HEADLINE — reproduces the paper's in-text claims on the (simulated)
 * Odroid-XU3: the HyperMapper-tuned configuration achieves dense 3D
 * mapping and tracking in the real-time range within a 1 W power
 * budget, a ~4.8x execution-time improvement and ~2.8x power
 * reduction over the state-of-the-art default configuration, while
 * keeping Max ATE below 5 cm.
 *
 * Options: --frames N, --dse-threads N.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "support/thread_pool.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;
    using namespace slambench::bench;

    applyLogFlags(argc, argv);
    const size_t frames = static_cast<size_t>(
        argLong(argc, argv, "--frames", 30));
    const size_t dse_threads = dseThreadsFromArgs(argc, argv);
    const support::trace::Session trace_session =
        traceSessionFromArgs(argc, argv);
    // --pmu: hardware-counter profiling (docs/OBSERVABILITY.md).
    const support::pmu::Session pmu_session =
        pmuSessionFromArgs(argc, argv);
    support::metrics::RunSession metrics_session =
        metricsSessionFromArgs(argc, argv, "headline_odroid");
    // --telemetry-port N (+ --crash-dump / --slo-*): live /metrics,
    // /healthz, /runz server and crash-surviving flight recorder.
    const support::telemetry::TelemetryEndpoint telemetry =
        telemetryFromArgs(argc, argv, "headline_odroid");
    // --trace-requests / --trace-sample-rate / --trace-store:
    // per-frame request traces with tail-based retention.
    const support::trace::RequestTraceSession request_traces =
        requestTraceFromArgs(argc, argv);

    std::printf("HEADLINE: default vs tuned on the simulated "
                "odroid-xu3 (%zu frames)\n\n",
                frames);
    const dataset::Sequence sequence =
        generateSequence(canonicalWorkload(frames));
    const auto xu3 = devices::odroidXu3();

    struct Row
    {
        const char *label;
        kfusion::KFusionConfig config;
        core::EvaluatedConfig result;
    };
    Row rows[2] = {{"default (state of the art)", defaultConfig(), {}},
                   {"tuned (HyperMapper)", tunedConfig(), {}}};
    // --backend applies to both rows (bit-exact, performance only).
    const std::string backend = backendFromArgs(argc, argv);
    for (Row &row : rows) {
        row.config.kernelBackend = backend;
        // --volume likewise applies to both rows.
        volumeFromArgs(argc, argv, row.config);
    }

    // Both evaluations are independent full pipeline runs; run them
    // concurrently (unless --dse-threads 1) and report serially so
    // the output order is stable.
    if (dse_threads == 1) {
        for (Row &row : rows)
            row.result = core::evaluateConfigOnDevice(row.config,
                                                      sequence, xu3);
    } else {
        support::ThreadPool pool(dse_threads == 0 ? 2 : dse_threads);
        pool.parallelFor(0, 2, [&](size_t i) {
            rows[i].result = core::evaluateConfigOnDevice(
                rows[i].config, sequence, xu3);
        });
    }

    for (Row &row : rows) {
        std::printf("%-27s %s\n", row.label,
                    row.config.toString().c_str());
        std::printf(
            "  runtime %.1f ms/frame (%.1f FPS) | power %.2f W paced "
            "(%.2f W batch) | max ATE %.4f m | tracked %.0f%%\n\n",
            row.result.simulated.meanFrameSeconds * 1e3,
            row.result.simulated.meanFps,
            row.result.simulated.pacedWatts,
            row.result.simulated.meanWatts, row.result.ate.maxAte,
            row.result.trackedFraction * 100.0);
    }

    const auto &d = rows[0].result;
    const auto &t = rows[1].result;
    const double speedup = d.simulated.meanFrameSeconds /
                           t.simulated.meanFrameSeconds;
    const double power_reduction =
        d.simulated.pacedWatts / t.simulated.pacedWatts;

    std::printf("--- paper claims vs this reproduction ---\n");
    std::printf("%-42s paper %-8s measured\n", "claim", "");
    std::printf("%-42s %-14s %.2fx\n",
                "execution-time improvement", "4.8x", speedup);
    std::printf("%-42s %-14s %.2fx\n", "power reduction", "2.8x",
                power_reduction);
    std::printf("%-42s %-14s %.2f W (%s)\n", "within 1 W budget",
                "< 1 W", t.simulated.pacedWatts,
                t.simulated.pacedWatts < 1.0 ? "met" : "MISSED");
    std::printf("%-42s %-14s %.1f FPS (%s)\n",
                "real-time range", ">= 25 FPS",
                t.simulated.meanFps,
                t.simulated.meanFps >= 25.0 ? "met" : "MISSED");
    std::printf("%-42s %-14s %.4f m (%s)\n", "accuracy preserved",
                "ATE < 5 cm", t.ate.maxAte,
                t.ate.maxAte < 0.05 ? "met" : "MISSED");

    // --- Machine-readable run report ---
    core::addConfigParams(metrics_session, rows[1].config);
    core::appendRunTelemetry(metrics_session, "default", d.bench,
                             &xu3);
    core::appendRunTelemetry(metrics_session, "tuned", t.bench, &xu3);
    metrics_session.setSummary("speedup", speedup);
    metrics_session.setSummary("power_reduction", power_reduction);
    metrics_session.setSummary("tuned_watts_paced",
                               t.simulated.pacedWatts);
    metrics_session.setSummary("tuned_fps", t.simulated.meanFps);
    metrics_session.finish();
    return 0;
}
