/**
 * @file
 * ABLATIONS — per-parameter studies backing the design choices in
 * DESIGN.md section 7. Each study sweeps one axis of the pipeline
 * while keeping everything else at the default, and reports the
 * SLAMBench metric triple on the simulated Odroid-XU3:
 *
 *  1. bilateral filter on/off (and radius),
 *  2. TSDF truncation band (mu),
 *  3. volume resolution,
 *  4. pyramid iteration schedule,
 *  5. ICP residual (point-to-plane vs. point-to-point),
 *  6. integration rate.
 *
 * Output: ablations.csv plus readable tables on stdout.
 *
 * Options: --frames N, --quick, --dse-threads N.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "support/csv.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace slambench;
using namespace slambench::bench;

struct StudyRow
{
    std::string study;
    std::string variant;
    core::EvaluatedConfig result;
};

void
report(const std::vector<StudyRow> &rows)
{
    std::string current;
    for (const StudyRow &row : rows) {
        if (row.study != current) {
            current = row.study;
            std::printf("\n%s:\n", current.c_str());
            std::printf("  %-22s %10s %8s %10s %8s\n", "variant",
                        "ms/frame", "FPS", "maxATE(m)", "W");
        }
        std::printf("  %-22s %10.2f %8.2f %10.4f %8.2f%s\n",
                    row.variant.c_str(),
                    row.result.simulated.meanFrameSeconds * 1e3,
                    row.result.simulated.meanFps,
                    row.result.ate.maxAte,
                    row.result.simulated.pacedWatts,
                    row.result.valid ? "" : "  [invalid]");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    applyLogFlags(argc, argv);
    const bool quick = argFlag(argc, argv, "--quick");
    const size_t frames = static_cast<size_t>(
        argLong(argc, argv, "--frames", quick ? 8 : 30));
    const size_t dse_threads = dseThreadsFromArgs(argc, argv);
    const support::trace::Session trace_session =
        traceSessionFromArgs(argc, argv);
    // --pmu: hardware-counter profiling (docs/OBSERVABILITY.md).
    const support::pmu::Session pmu_session =
        pmuSessionFromArgs(argc, argv);
    support::metrics::RunSession metrics_session =
        metricsSessionFromArgs(argc, argv, "ablations");
    // --telemetry-port N (+ --crash-dump / --slo-*): live /metrics,
    // /healthz, /runz server and crash-surviving flight recorder.
    const support::telemetry::TelemetryEndpoint telemetry =
        telemetryFromArgs(argc, argv, "ablations");
    // --trace-requests / --trace-sample-rate / --trace-store:
    // per-frame request traces with tail-based retention.
    const support::trace::RequestTraceSession request_traces =
        requestTraceFromArgs(argc, argv);

    std::printf("ABLATIONS: single-axis sweeps on the simulated "
                "odroid-xu3 (%zu frames)\n",
                frames);
    const dataset::Sequence sequence =
        generateSequence(canonicalWorkload(frames));
    const auto xu3 = devices::odroidXu3();

    // Collect every (study, variant, config) first, evaluate the
    // whole batch (in parallel unless --dse-threads 1), then report
    // serially so the tables, telemetry, and CSV keep a stable order.
    std::vector<StudyRow> rows;
    std::vector<kfusion::KFusionConfig> configs;
    auto run = [&](const std::string &study,
                   const std::string &variant,
                   const kfusion::KFusionConfig &config) {
        StudyRow row;
        row.study = study;
        row.variant = variant;
        rows.push_back(std::move(row));
        configs.push_back(config);
    };
    core::addConfigParams(metrics_session, defaultConfig());

    // Baseline for every study: a mid-cost configuration so sweeps
    // finish quickly but the volume still matters. --backend sets
    // the kernel backend for every variant (bit-exact, so it never
    // changes a study's accuracy column).
    kfusion::KFusionConfig base = defaultConfig();
    base.volumeResolution = quick ? 64 : 128;
    base.kernelBackend = backendFromArgs(argc, argv);
    // --volume applies to every variant too (bit-identical fusion).
    volumeFromArgs(argc, argv, base);

    // 1. Bilateral filter.
    for (int radius : {0, 1, 2, 4}) {
        kfusion::KFusionConfig c = base;
        c.filterRadius = radius;
        run("bilateral filter radius (0 = off)",
            "radius=" + std::to_string(radius), c);
    }

    // 2. TSDF truncation band.
    for (float mu : {0.025f, 0.05f, 0.1f, 0.2f}) {
        kfusion::KFusionConfig c = base;
        c.mu = mu;
        char label[32];
        std::snprintf(label, sizeof(label), "mu=%.3f", mu);
        run("TSDF truncation (mu)", label, c);
    }

    // 3. Volume resolution.
    for (int vr : {64, 96, 128, 192, 256}) {
        if (quick && vr > 128)
            continue;
        kfusion::KFusionConfig c = base;
        c.volumeResolution = vr;
        run("volume resolution", "vr=" + std::to_string(vr), c);
    }

    // 4. Pyramid iteration schedule.
    const std::vector<std::pair<std::string, std::vector<int>>>
        schedules{{"10,5,4 (default)", {10, 5, 4}},
                  {"4,3,2", {4, 3, 2}},
                  {"2,2,2", {2, 2, 2}},
                  {"12,0,0 (fine only)", {12, 0, 0}},
                  {"0,0,12 (coarse only)", {0, 0, 12}}};
    for (const auto &[label, iters] : schedules) {
        kfusion::KFusionConfig c = base;
        c.pyramidIterations = iters;
        run("pyramid ICP schedule", label, c);
    }

    // 5. ICP residual formulation.
    for (const bool p2p : {false, true}) {
        kfusion::KFusionConfig c = base;
        c.icpResidual = p2p ? kfusion::IcpResidual::PointToPoint
                            : kfusion::IcpResidual::PointToPlane;
        run("ICP residual", p2p ? "point-to-point" : "point-to-plane",
            c);
    }

    // 6. Integration rate.
    for (int rate : {1, 2, 4, 8, 15}) {
        kfusion::KFusionConfig c = base;
        c.integrationRate = rate;
        run("integration rate", "ir=" + std::to_string(rate), c);
    }

    const auto evaluate_one = [&](size_t i) {
        rows[i].result = core::evaluateConfigOnDevice(configs[i],
                                                      sequence, xu3);
    };
    if (dse_threads == 1) {
        for (size_t i = 0; i < rows.size(); ++i)
            evaluate_one(i);
    } else {
        support::ThreadPool pool(dse_threads);
        pool.parallelFor(0, rows.size(), evaluate_one);
    }
    // Every variant's frames land in the run report under its own
    // label, so two ablation runs can be diffed per variant.
    for (const StudyRow &row : rows)
        core::appendRunTelemetry(metrics_session, row.variant,
                                 row.result.bench, &xu3);

    report(rows);

    std::ofstream out("ablations.csv");
    support::CsvWriter csv(out, {"study", "variant", "ms_per_frame",
                                 "fps", "max_ate_m", "watts",
                                 "valid"});
    for (const StudyRow &row : rows) {
        csv.beginRow()
            .cell(row.study)
            .cell(row.variant)
            .cell(row.result.simulated.meanFrameSeconds * 1e3)
            .cell(row.result.simulated.meanFps)
            .cell(row.result.ate.maxAte)
            .cell(row.result.simulated.pacedWatts)
            .cell(row.result.valid ? "1" : "0");
    }
    csv.endRow();
    support::logInfo() << "wrote ablations.csv (" << csv.rowCount()
                       << " rows)";

    metrics_session.setSummary("ablation_variants",
                               static_cast<double>(rows.size()));
    metrics_session.finish();
    return 0;
}
