/**
 * @file
 * KERNELS — google-benchmark microbenchmarks of every pipeline
 * stage, the per-kernel timing breakdown SLAMBench's GUI side panel
 * reports (and the basis of the device-model calibration).
 */

#include <benchmark/benchmark.h>

#include "dataset/generator.hpp"
#include "kfusion/kernels.hpp"
#include "kfusion/raycast.hpp"
#include "kfusion/tracking.hpp"
#include "kfusion/volume.hpp"

namespace {

using namespace slambench;
using namespace slambench::kfusion;
using support::Image;

/** One rendered frame shared by all microbenches. */
struct Workload
{
    dataset::Sequence sequence;
    math::CameraIntrinsics k;
    Image<float> depth;
    Image<math::Vec3f> vertex, normal;
    Image<math::Vec3f> refVertex, refNormal;
    math::Mat4f pose;

    explicit Workload(size_t w, size_t h)
    {
        dataset::SequenceSpec spec;
        spec.width = w;
        spec.height = h;
        spec.numFrames = 1;
        spec.renderRgb = false;
        sequence = generateSequence(spec);
        k = sequence.intrinsics;
        pose = sequence.groundTruth.pose(0);
        mm2metersKernel(depth, sequence.frames[0].depthMm, 1,
                        nullptr);
        depth2vertexKernel(vertex, depth, k, nullptr);
        vertex2normalKernel(normal, vertex, nullptr);
        refVertex.resize(w, h);
        refNormal.resize(w, h);
        for (size_t i = 0; i < vertex.size(); ++i) {
            if (vertex[i].squaredNorm() == 0.0f)
                continue;
            refVertex[i] = pose.transformPoint(vertex[i]);
            refNormal[i] = pose.transformDir(normal[i]);
        }
    }
};

Workload &
workload(size_t w, size_t h)
{
    static Workload w320(320, 240);
    static Workload w160(160, 120);
    static Workload w80(80, 60);
    if (w == 320 && h == 240)
        return w320;
    if (w == 160 && h == 120)
        return w160;
    return w80;
}

void
BM_Mm2Meters(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<float> out;
    for (auto _ : state) {
        mm2metersKernel(out, wl.sequence.frames[0].depthMm, 1,
                        nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_BilateralFilter(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<float> out;
    for (auto _ : state) {
        bilateralFilterKernel(out, wl.depth, 2, 4.0f, 0.1f, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()) * 25);
}

void
BM_HalfSample(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<float> out;
    for (auto _ : state) {
        halfSampleRobustKernel(out, wl.depth, 0.3f, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_Depth2Vertex(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<math::Vec3f> out;
    for (auto _ : state) {
        depth2vertexKernel(out, wl.depth, wl.k, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_Vertex2Normal(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<math::Vec3f> out;
    for (auto _ : state) {
        vertex2normalKernel(out, wl.vertex, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_TrackKernel(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<TrackData> track;
    for (auto _ : state) {
        trackKernel(track, wl.vertex, wl.normal, wl.pose,
                    wl.refVertex, wl.refNormal, wl.k, wl.pose, 0.1f,
                    0.8f, nullptr);
        benchmark::DoNotOptimize(track.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(track.size()));
}

void
BM_ReduceKernel(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<TrackData> track;
    trackKernel(track, wl.vertex, wl.normal, wl.pose, wl.refVertex,
                wl.refNormal, wl.k, wl.pose, 0.1f, 0.8f, nullptr);
    for (auto _ : state) {
        const ReductionResult r = reduceKernel(track, nullptr);
        benchmark::DoNotOptimize(r.errorSq);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(track.size()));
}

void
BM_Integrate(benchmark::State &state)
{
    Workload &wl = workload(160, 120);
    const int res = static_cast<int>(state.range(0));
    TsdfVolume volume(res, 4.8f, {-2.4f, -0.4f, -2.4f});
    WorkCounts counts;
    for (auto _ : state) {
        volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f,
                         counts, nullptr);
        benchmark::DoNotOptimize(volume.at(0, 0, 0).tsdf);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(res) * res * res);
}

void
BM_Raycast(benchmark::State &state)
{
    Workload &wl = workload(160, 120);
    const int res = static_cast<int>(state.range(0));
    TsdfVolume volume(res, 4.8f, {-2.4f, -0.4f, -2.4f});
    WorkCounts counts;
    volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f, counts,
                     nullptr);
    RaycastParams params;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;
    Image<math::Vec3f> vertex, normal;
    for (auto _ : state) {
        raycastKernel(vertex, normal, volume, wl.k, wl.pose, params,
                      counts, nullptr);
        benchmark::DoNotOptimize(vertex.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(vertex.size()));
}

} // namespace

BENCHMARK(BM_Mm2Meters)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_BilateralFilter)
    ->Args({320, 240})
    ->Args({160, 120})
    ->Args({80, 60});
BENCHMARK(BM_HalfSample)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_Depth2Vertex)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_Vertex2Normal)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_TrackKernel)
    ->Args({320, 240})
    ->Args({160, 120})
    ->Args({80, 60});
BENCHMARK(BM_ReduceKernel)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_Integrate)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_Raycast)->Arg(64)->Arg(128)->Arg(256);

BENCHMARK_MAIN();
