/**
 * @file
 * KERNELS — google-benchmark microbenchmarks of every pipeline
 * stage, the per-kernel timing breakdown SLAMBench's GUI side panel
 * reports (and the basis of the device-model calibration).
 *
 * Beyond the console table, `--metrics-json FILE` writes a versioned
 * "slambench-kernel-bench" report with per-kernel ns/item (ns per
 * voxel visit, per ray, per gradient evaluation...) and effective
 * GB/s, which scripts/bench_compare.py gates against a checked-in
 * baseline (BENCH_kernels.json). The optimized integrate/raycast
 * kernels are benchmarked side by side with their dense/reference
 * twins (integrateDense, gradReference) so the culling and fusion
 * wins stay measured, not assumed.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "kfusion/backend.hpp"
#include "kfusion/kernels.hpp"
#include "kfusion/raycast.hpp"
#include "kfusion/sparse_volume.hpp"
#include "kfusion/tracking.hpp"
#include "kfusion/volume.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/pmu.hpp"
#include "support/telemetry_server.hpp"

namespace {

using namespace slambench;
using namespace slambench::kfusion;
using support::Image;

/** One rendered frame shared by all microbenches. */
struct Workload
{
    dataset::Sequence sequence;
    math::CameraIntrinsics k;
    Image<float> depth;
    Image<math::Vec3f> vertex, normal;
    Image<math::Vec3f> refVertex, refNormal;
    math::Mat4f pose;

    explicit Workload(size_t w, size_t h)
    {
        dataset::SequenceSpec spec;
        spec.width = w;
        spec.height = h;
        spec.numFrames = 1;
        spec.renderRgb = false;
        sequence = generateSequence(spec);
        k = sequence.intrinsics;
        pose = sequence.groundTruth.pose(0);
        mm2metersKernel(depth, sequence.frames[0].depthMm, 1,
                        nullptr);
        depth2vertexKernel(vertex, depth, k, nullptr);
        vertex2normalKernel(normal, vertex, nullptr);
        refVertex.resize(w, h);
        refNormal.resize(w, h);
        for (size_t i = 0; i < vertex.size(); ++i) {
            if (vertex[i].squaredNorm() == 0.0f)
                continue;
            refVertex[i] = pose.transformPoint(vertex[i]);
            refNormal[i] = pose.transformDir(normal[i]);
        }
    }
};

Workload &
workload(size_t w, size_t h)
{
    static Workload w320(320, 240);
    static Workload w160(160, 120);
    static Workload w80(80, 60);
    if (w == 320 && h == 240)
        return w320;
    if (w == 160 && h == 120)
        return w160;
    return w80;
}

/** The integrate benches' ICL-NUIM-style volume placement. */
TsdfVolume
benchVolume(int res)
{
    return TsdfVolume(res, 4.8f, {-2.4f, -0.4f, -2.4f});
}

/**
 * Samples the PMU thread counters around a whole benchmark body and
 * exports the deltas as "pmu_<counter>" user counters, divided by
 * iterations at report time (kAvgIterations) so the report writer
 * gets per-iteration cycles/instructions/... without span machinery.
 * Inert (no counters exported) unless `--pmu` armed profiling. The
 * bench kernels run serially (nullptr pool), so the bench thread's
 * counter group observes all the work.
 */
class BenchPmuSampler
{
  public:
    explicit BenchPmuSampler(benchmark::State &state) : state_(state)
    {
        active_ =
            support::pmu::Profiler::instance().readThreadSample(
                begin_);
    }

    BenchPmuSampler(const BenchPmuSampler &) = delete;
    BenchPmuSampler &operator=(const BenchPmuSampler &) = delete;

    ~BenchPmuSampler()
    {
        if (!active_)
            return;
        support::pmu::Sample end;
        if (!support::pmu::Profiler::instance().readThreadSample(
                end))
            return;
        const support::pmu::Sample delta =
            support::pmu::sampleDelta(end, begin_);
        for (size_t i = 0; i < support::pmu::kNumCounters; ++i) {
            const auto id = static_cast<support::pmu::CounterId>(i);
            if (!delta.valid(id))
                continue;
            state_.counters[std::string("pmu_") +
                            support::pmu::counterName(id)] =
                benchmark::Counter(
                    delta.get(id),
                    benchmark::Counter::kAvgIterations);
        }
    }

  private:
    benchmark::State &state_;
    support::pmu::Sample begin_;
    bool active_ = false;
};

void
BM_Mm2Meters(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<float> out;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        mm2metersKernel(out, wl.sequence.frames[0].depthMm, 1,
                        nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_BilateralFilter(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<float> out;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        bilateralFilterKernel(out, wl.depth, 2, 4.0f, 0.1f, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()) * 25);
}

void
BM_HalfSample(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<float> out;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        halfSampleRobustKernel(out, wl.depth, 0.3f, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_Depth2Vertex(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<math::Vec3f> out;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        depth2vertexKernel(out, wl.depth, wl.k, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_Vertex2Normal(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<math::Vec3f> out;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        vertex2normalKernel(out, wl.vertex, nullptr);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(out.size()));
}

void
BM_TrackKernel(benchmark::State &state)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<TrackData> track;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        trackKernel(track, wl.vertex, wl.normal, wl.pose,
                    wl.refVertex, wl.refNormal, wl.k, wl.pose, 0.1f,
                    0.8f, nullptr);
        benchmark::DoNotOptimize(track.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(track.size()));
}

void
BM_ReduceKernel(benchmark::State &state, const KernelBackend *backend)
{
    Workload &wl = workload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
    Image<TrackData> track;
    trackKernel(track, wl.vertex, wl.normal, wl.pose, wl.refVertex,
                wl.refNormal, wl.k, wl.pose, 0.1f, 0.8f, nullptr);
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        const ReductionResult r =
            reduceKernel(track, nullptr, backend);
        benchmark::DoNotOptimize(r.errorSq);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(track.size()));
}

/**
 * Frustum-culled integration. Items are voxels actually visited
 * (taken from WorkCounts), so ns/item is ns per visited voxel;
 * compare the whole-kernel time per iteration against
 * BM_IntegrateDense for the culling speedup.
 */
void
BM_Integrate(benchmark::State &state, const KernelBackend *backend)
{
    Workload &wl = workload(160, 120);
    TsdfVolume volume =
        benchVolume(static_cast<int>(state.range(0)));
    volume.setBackend(backend);
    WorkCounts counts;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f,
                         counts, nullptr);
        benchmark::DoNotOptimize(volume.at(0, 0, 0).tsdf);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(counts.itemsFor(KernelId::Integrate)));
    state.SetBytesProcessed(
        static_cast<int64_t>(counts.bytesFor(KernelId::Integrate)));
}

/** Dense reference integration: every voxel visited, same math. */
void
BM_IntegrateDense(benchmark::State &state)
{
    Workload &wl = workload(160, 120);
    TsdfVolume volume =
        benchVolume(static_cast<int>(state.range(0)));
    WorkCounts counts;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        volume.integrateDense(wl.depth, wl.k, wl.pose, 0.1f, 100.0f,
                              counts, nullptr);
        benchmark::DoNotOptimize(volume.at(0, 0, 0).tsdf);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(counts.itemsFor(KernelId::Integrate)));
    state.SetBytesProcessed(
        static_cast<int64_t>(counts.bytesFor(KernelId::Integrate)));
}

/**
 * Hashed-voxel-block integration, same frame and volume placement as
 * BM_Integrate so the dense and sparse rows compare directly. The
 * resident footprint after fusion is exported as the "volume_bytes"
 * counter (and gated by bench_compare.py --max-volume-bytes-regress).
 */
void
BM_IntegrateSparse(benchmark::State &state,
                   const KernelBackend *backend)
{
    Workload &wl = workload(160, 120);
    SparseTsdfVolume volume(static_cast<int>(state.range(0)), 4.8f,
                            {-2.4f, -0.4f, -2.4f}, 8, 0);
    volume.setBackend(backend);
    WorkCounts counts;
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f,
                         counts, nullptr);
        benchmark::DoNotOptimize(volume.voxelAt(0, 0, 0).tsdf);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(counts.itemsFor(KernelId::Integrate)));
    state.SetBytesProcessed(
        static_cast<int64_t>(counts.bytesFor(KernelId::Integrate)));
    state.counters["volume_bytes"] = benchmark::Counter(
        static_cast<double>(volume.memoryStats().bytes));
}

/** Items are rays cast (one per pixel): ns/item is ns per ray. */
void
BM_Raycast(benchmark::State &state, const KernelBackend *backend)
{
    Workload &wl = workload(160, 120);
    TsdfVolume volume =
        benchVolume(static_cast<int>(state.range(0)));
    WorkCounts counts;
    volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f, counts,
                     nullptr);
    RaycastParams params;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;
    Image<math::Vec3f> vertex, normal;
    counts = WorkCounts{};
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        raycastKernel(vertex, normal, volume, wl.k, wl.pose, params,
                      counts, nullptr, backend);
        benchmark::DoNotOptimize(vertex.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(vertex.size()));
    state.SetBytesProcessed(
        static_cast<int64_t>(counts.bytesFor(KernelId::Raycast)));
}

/**
 * Sparse-volume raycast: per-ray cached block lookups with the
 * empty-space skip over unallocated blocks. The sparse march is
 * always the scalar block-cached sampler (no backend axis), so this
 * is registered once, not per backend.
 */
void
BM_RaycastSparse(benchmark::State &state)
{
    Workload &wl = workload(160, 120);
    SparseTsdfVolume volume(static_cast<int>(state.range(0)), 4.8f,
                            {-2.4f, -0.4f, -2.4f}, 8, 0);
    WorkCounts counts;
    volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f, counts,
                     nullptr);
    RaycastParams params;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;
    Image<math::Vec3f> vertex, normal;
    counts = WorkCounts{};
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        raycastKernel(vertex, normal, volume, wl.k, wl.pose, params,
                      counts, nullptr);
        benchmark::DoNotOptimize(vertex.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(vertex.size()));
    state.SetBytesProcessed(
        static_cast<int64_t>(counts.bytesFor(KernelId::Raycast)));
    state.counters["volume_bytes"] = benchmark::Counter(
        static_cast<double>(volume.memoryStats().bytes));
}

/**
 * Surface hit points for the gradient benches: raycast the fused
 * volume once and keep every pixel that found a surface.
 */
std::vector<math::Vec3f>
gradientPoints(const TsdfVolume &volume, const Workload &wl)
{
    RaycastParams params;
    params.step = volume.voxelSize();
    params.largeStep = 0.075f;
    Image<math::Vec3f> vertex, normal;
    WorkCounts counts;
    raycastKernel(vertex, normal, volume, wl.k, wl.pose, params,
                  counts, nullptr);
    std::vector<math::Vec3f> points;
    points.reserve(vertex.size());
    for (size_t i = 0; i < vertex.size(); ++i)
        if (vertex[i].squaredNorm() > 0.0f)
            points.push_back(vertex[i]);
    return points;
}

/** Fused single-pass gradient; items are gradient evaluations. */
void
BM_Grad(benchmark::State &state, const KernelBackend *backend)
{
    Workload &wl = workload(160, 120);
    TsdfVolume volume =
        benchVolume(static_cast<int>(state.range(0)));
    WorkCounts counts;
    volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f, counts,
                     nullptr);
    const std::vector<math::Vec3f> points =
        gradientPoints(volume, wl);
    math::Vec3f acc{};
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        for (const math::Vec3f &p : points)
            acc += backend->grad(volume, p);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(points.size()));
}

/** Reference 6-call gradient over the same hit points. */
void
BM_GradReference(benchmark::State &state)
{
    Workload &wl = workload(160, 120);
    TsdfVolume volume =
        benchVolume(static_cast<int>(state.range(0)));
    WorkCounts counts;
    volume.integrate(wl.depth, wl.k, wl.pose, 0.1f, 100.0f, counts,
                     nullptr);
    const std::vector<math::Vec3f> points =
        gradientPoints(volume, wl);
    math::Vec3f acc{};
    BenchPmuSampler pmu_sampler(state);
    for (auto _ : state) {
        for (const math::Vec3f &p : points)
            acc += volume.gradReference(p);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(points.size()));
}

// --- kernel-bench report ------------------------------------------

/** One measured (non-aggregate) benchmark run. */
struct KernelResult
{
    std::string name;
    /** Kernel backend of a "BM_Foo@backend" row; empty otherwise. */
    std::string backend;
    /** Volume backend the bench fused against ("dense"/"sparse"). */
    std::string volume = "dense";
    int64_t iterations = 0;
    double realNsPerIter = 0.0;
    double cpuNsPerIter = 0.0;
    bool hasItems = false;
    double itemsPerSecond = 0.0;
    bool hasBytes = false;
    double bytesPerSecond = 0.0;
    /** Resident volume footprint ("volume_bytes" user counter);
     *  exported by the sparse benches only. */
    bool hasVolumeBytes = false;
    double volumeBytes = 0.0;
    /** Per-iteration hardware-counter sample ("pmu_*" counters),
     *  all-invalid when --pmu is off or the backend delivered
     *  nothing. */
    support::pmu::Sample pmu;
};

/**
 * Console reporter that additionally captures every iteration run
 * for the --metrics-json report (benchmark 1.x offers no hook to
 * read results back from RunSpecifiedBenchmarks).
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<KernelResult> results;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            KernelResult r;
            r.name = run.benchmark_name();
            // Per-backend benches are registered as
            // "BM_Foo@backend/arg": split the backend out so the
            // report keys rows by (name, backend), keeping the name
            // comparable across backends.
            const size_t at = r.name.find('@');
            if (at != std::string::npos) {
                const size_t slash = r.name.find('/', at);
                const size_t backend_end = slash == std::string::npos
                                               ? r.name.size()
                                               : slash;
                r.backend =
                    r.name.substr(at + 1, backend_end - at - 1);
                r.name = r.name.substr(0, at) +
                         r.name.substr(backend_end);
            }
            // The sparse benches are distinct registrations (the
            // sparse data structure changes what "the kernel" is),
            // so the volume axis is recovered from the name.
            if (r.name.find("Sparse") != std::string::npos)
                r.volume = "sparse";
            r.iterations = run.iterations;
            const double iters =
                run.iterations > 0
                    ? static_cast<double>(run.iterations)
                    : 1.0;
            r.realNsPerIter = run.real_accumulated_time * 1e9 / iters;
            r.cpuNsPerIter = run.cpu_accumulated_time * 1e9 / iters;
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end()) {
                r.hasItems = true;
                r.itemsPerSecond =
                    static_cast<double>(items->second);
            }
            const auto bytes = run.counters.find("bytes_per_second");
            if (bytes != run.counters.end()) {
                r.hasBytes = true;
                r.bytesPerSecond =
                    static_cast<double>(bytes->second);
            }
            const auto volume_bytes =
                run.counters.find("volume_bytes");
            if (volume_bytes != run.counters.end()) {
                r.hasVolumeBytes = true;
                r.volumeBytes =
                    static_cast<double>(volume_bytes->second);
            }
            // "pmu_<counter>" user counters exported by
            // BenchPmuSampler (per-iteration, kAvgIterations).
            for (size_t i = 0; i < support::pmu::kNumCounters;
                 ++i) {
                const auto id =
                    static_cast<support::pmu::CounterId>(i);
                const auto counter = run.counters.find(
                    std::string("pmu_") +
                    support::pmu::counterName(id));
                if (counter != run.counters.end())
                    r.pmu.set(id, static_cast<double>(
                                      counter->second));
            }
            results.push_back(std::move(r));
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

std::string
jsonNumber(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

/**
 * Append one row's optional "pmu" JSON block: the per-iteration raw
 * counters that are valid, the derived metrics, and — in roofline
 * mode, for rows with known memory traffic — the device-model
 * bandwidth term and the measured fraction of it. Emitted for every
 * row whenever --pmu armed profiling (possibly with no counters on
 * the null backend), so row shape is stable per run.
 */
void
writePmuBlock(std::ostream &os, const KernelResult &r,
              double roofline_bandwidth)
{
    os << ", \"pmu\": {";
    bool first = true;
    for (size_t i = 0; i < support::pmu::kNumCounters; ++i) {
        const auto id = static_cast<support::pmu::CounterId>(i);
        if (!r.pmu.valid(id))
            continue;
        os << (first ? "" : ", ") << "\""
           << support::pmu::counterName(id)
           << "\": " << jsonNumber(r.pmu.get(id));
        first = false;
    }
    // Known memory traffic per iteration, back-computed from the
    // bytes_per_second google-benchmark derived from
    // SetBytesProcessed; feeds the measured-bytes/s derivation
    // (bytes / task-clock) and the roofline check.
    const double bytes_per_iter =
        r.hasBytes && r.bytesPerSecond > 0.0
            ? r.bytesPerSecond * r.realNsPerIter * 1e-9
            : 0.0;
    const support::pmu::DerivedMetrics derived =
        support::pmu::deriveMetrics(r.pmu, bytes_per_iter);
    if (derived.hasIpc)
        os << (first ? "" : ", ")
           << "\"ipc\": " << jsonNumber(derived.ipc), first = false;
    if (derived.hasLlcMissRate)
        os << (first ? "" : ", ") << "\"llc_miss_rate\": "
           << jsonNumber(derived.llcMissRate),
            first = false;
    if (derived.hasBranchMissRate)
        os << (first ? "" : ", ") << "\"branch_miss_rate\": "
           << jsonNumber(derived.branchMissRate),
            first = false;
    if (derived.hasTaskClock)
        os << (first ? "" : ", ") << "\"task_clock_seconds\": "
           << jsonNumber(derived.taskClockSeconds),
            first = false;
    if (derived.hasBytesPerSecond) {
        os << (first ? "" : ", ") << "\"bytes_per_second\": "
           << jsonNumber(derived.bytesPerSecond);
        first = false;
        if (roofline_bandwidth > 0.0) {
            os << ", \"roofline_bytes_per_second\": "
               << jsonNumber(roofline_bandwidth);
            os << ", \"roofline_fraction\": "
               << jsonNumber(derived.bytesPerSecond /
                             roofline_bandwidth);
        }
    }
    os << "}";
}

/**
 * Write the versioned kernel-bench report consumed by
 * scripts/bench_compare.py and validated by
 * scripts/check_kernel_bench_schema.py. @p roofline_bandwidth > 0
 * adds roofline fields to pmu blocks with measured bytes/s.
 */
bool
writeKernelReport(const std::string &path,
                  const std::vector<KernelResult> &results,
                  double roofline_bandwidth)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr,
                     "bench_kernels: cannot write %s\n",
                     path.c_str());
        return false;
    }
    os << "{\n";
    os << "  \"schema\": \"slambench-kernel-bench\",\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"generator\": \"bench_kernels\",\n";
    os << "  \"git_describe\": \""
       << jsonEscape(support::metrics::gitDescribe()) << "\",\n";
    os << "  \"build_type\": \""
       << jsonEscape(support::metrics::buildType()) << "\",\n";
    os << "  \"kernels\": [";
    for (size_t i = 0; i < results.size(); ++i) {
        const KernelResult &r = results[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"name\": \"" << jsonEscape(r.name) << "\", ";
        if (!r.backend.empty())
            os << "\"backend\": \"" << jsonEscape(r.backend)
               << "\", ";
        os << "\"volume\": \"" << jsonEscape(r.volume) << "\", ";
        os << "\"iterations\": " << r.iterations << ", ";
        os << "\"real_ns_per_iter\": " << jsonNumber(r.realNsPerIter)
           << ", ";
        os << "\"cpu_ns_per_iter\": " << jsonNumber(r.cpuNsPerIter);
        if (r.hasItems && r.itemsPerSecond > 0.0) {
            os << ", \"items_per_second\": "
               << jsonNumber(r.itemsPerSecond);
            os << ", \"ns_per_item\": "
               << jsonNumber(1e9 / r.itemsPerSecond);
        }
        if (r.hasBytes && r.bytesPerSecond > 0.0) {
            os << ", \"bytes_per_second\": "
               << jsonNumber(r.bytesPerSecond);
            os << ", \"gb_per_s\": "
               << jsonNumber(r.bytesPerSecond / 1e9);
        }
        if (r.hasVolumeBytes)
            os << ", \"volume_bytes\": "
               << jsonNumber(r.volumeBytes);
        if (support::pmu::profilingActive())
            writePmuBlock(os, r, roofline_bandwidth);
        os << "}";
    }
    os << (results.empty() ? "],\n" : "\n  ],\n");
    os << "  \"kernel_count\": " << results.size() << "\n";
    os << "}\n";
    return os.good();
}

/**
 * Register the backend-parameterized hot-kernel benches as
 * "BM_<name>@<backend>" rows, one set per requested backend (the
 * report writer splits the "@backend" suffix into a "backend"
 * field). The preprocessing benches have no backend axis and stay
 * statically registered.
 */
void
registerBackendBenches(const std::vector<std::string> &backends)
{
    for (const std::string &name : backends) {
        const KernelBackend *backend = findKernelBackend(name);
        benchmark::RegisterBenchmark(
            ("BM_ReduceKernel@" + name).c_str(), BM_ReduceKernel,
            backend)
            ->Args({320, 240})
            ->Args({160, 120});
        benchmark::RegisterBenchmark(
            ("BM_Integrate@" + name).c_str(), BM_Integrate, backend)
            ->Arg(64)
            ->Arg(128)
            ->Arg(256);
        benchmark::RegisterBenchmark(
            ("BM_IntegrateSparse@" + name).c_str(),
            BM_IntegrateSparse, backend)
            ->Arg(64)
            ->Arg(128)
            ->Arg(256);
        benchmark::RegisterBenchmark(
            ("BM_Raycast@" + name).c_str(), BM_Raycast, backend)
            ->Arg(64)
            ->Arg(128)
            ->Arg(256);
        benchmark::RegisterBenchmark(
            ("BM_Grad@" + name).c_str(), BM_Grad, backend)
            ->Arg(128)
            ->Arg(256);
    }
}

} // namespace

BENCHMARK(BM_Mm2Meters)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_BilateralFilter)
    ->Args({320, 240})
    ->Args({160, 120})
    ->Args({80, 60});
BENCHMARK(BM_HalfSample)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_Depth2Vertex)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_Vertex2Normal)->Args({320, 240})->Args({160, 120});
BENCHMARK(BM_TrackKernel)
    ->Args({320, 240})
    ->Args({160, 120})
    ->Args({80, 60});
BENCHMARK(BM_IntegrateDense)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_RaycastSparse)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_GradReference)->Arg(128)->Arg(256);

/**
 * Custom main: google-benchmark 1.x aborts on flags it does not
 * know, so the shared `--metrics-json FILE`, `--telemetry-port N`,
 * `--crash-dump FILE`, `--backend NAME`, `--pmu`, and `--roofline`
 * flags are stripped before benchmark::Initialize sees the argument
 * vector.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> bench_argv(argv, argv + argc);
    std::string metrics_path;
    std::string backend_flag;
    bool pmu_flag = false;
    bool roofline_flag = false;
    slambench::support::telemetry::TelemetryOptions telemetry_opts;
    telemetry_opts.generator = "kernels";
    for (auto it = bench_argv.begin() + 1; it != bench_argv.end();) {
        if (std::strcmp(*it, "--metrics-json") == 0 &&
            it + 1 != bench_argv.end()) {
            metrics_path = *(it + 1);
            it = bench_argv.erase(it, it + 2);
        } else if (std::strcmp(*it, "--backend") == 0 &&
                   it + 1 != bench_argv.end()) {
            backend_flag = *(it + 1);
            it = bench_argv.erase(it, it + 2);
        } else if (std::strcmp(*it, "--pmu") == 0) {
            pmu_flag = true;
            it = bench_argv.erase(it);
        } else if (std::strcmp(*it, "--roofline") == 0) {
            // Roofline validation needs the measured bytes/s, so
            // --roofline implies --pmu.
            roofline_flag = true;
            pmu_flag = true;
            it = bench_argv.erase(it);
        } else if (std::strcmp(*it, "--telemetry-port") == 0 &&
                   it + 1 != bench_argv.end()) {
            telemetry_opts.port = std::atoi(*(it + 1));
            it = bench_argv.erase(it, it + 2);
        } else if (std::strcmp(*it, "--crash-dump") == 0 &&
                   it + 1 != bench_argv.end()) {
            telemetry_opts.crashDumpPath = *(it + 1);
            it = bench_argv.erase(it, it + 2);
        } else {
            ++it;
        }
    }
    const slambench::support::telemetry::TelemetryEndpoint telemetry(
        telemetry_opts);
    const slambench::support::pmu::Session pmu_session(pmu_flag);

    // --backend NAME restricts the hot-kernel benches to one backend
    // ("auto" resolves via CPUID); by default every registered
    // backend gets its own rows so BENCH_kernels.json gates each.
    std::vector<std::string> bench_backends;
    if (backend_flag.empty()) {
        bench_backends = slambench::kfusion::kernelBackendNames();
    } else {
        std::string backend_error;
        const slambench::kfusion::KernelBackend *resolved =
            slambench::kfusion::resolveKernelBackend(backend_flag,
                                                     &backend_error);
        if (!resolved) {
            std::fprintf(stderr, "bench_kernels: --backend: %s\n",
                         backend_error.c_str());
            return 1;
        }
        bench_backends = {resolved->name()};
    }
    registerBackendBenches(bench_backends);
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data()))
        return 1;

    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // Roofline validation: compare each row's measured bytes/s (from
    // the PMU task clock and the kernel's known memory traffic)
    // against the device model's bandwidth term, so the calibrated
    // constants in src/devices/ are checked against machine-measured
    // behaviour instead of trusted.
    const double roofline_bandwidth =
        roofline_flag
            ? slambench::devices::odroidXu3().memoryBandwidth
            : 0.0;
    if (roofline_flag) {
        std::printf("\nROOFLINE: measured bytes/s vs device model "
                    "(odroid-xu3, %.2f GB/s)\n",
                    roofline_bandwidth / 1e9);
        std::printf("%-32s %-8s %12s %10s\n", "kernel", "backend",
                    "meas GB/s", "of roof");
        bool any = false;
        for (const KernelResult &r : reporter.results) {
            const double bytes_per_iter =
                r.hasBytes && r.bytesPerSecond > 0.0
                    ? r.bytesPerSecond * r.realNsPerIter * 1e-9
                    : 0.0;
            const slambench::support::pmu::DerivedMetrics derived =
                slambench::support::pmu::deriveMetrics(
                    r.pmu, bytes_per_iter);
            if (!derived.hasBytesPerSecond)
                continue;
            any = true;
            std::printf("%-32s %-8s %12.2f %9.1f%%\n",
                        r.name.c_str(),
                        r.backend.empty() ? "-" : r.backend.c_str(),
                        derived.bytesPerSecond / 1e9,
                        100.0 * derived.bytesPerSecond /
                            roofline_bandwidth);
        }
        if (!any)
            std::printf("(no rows with measured bytes/s — the PMU "
                        "task clock is unavailable on this host or "
                        "no bench reports bytes)\n");
    }

    if (!metrics_path.empty()) {
        if (!writeKernelReport(metrics_path, reporter.results,
                               roofline_bandwidth))
            return 1;
        slambench::support::logInfo()
            << "kernel bench report -> " << metrics_path;
    }
    return 0;
}
