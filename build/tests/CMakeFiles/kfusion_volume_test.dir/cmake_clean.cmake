file(REMOVE_RECURSE
  "CMakeFiles/kfusion_volume_test.dir/kfusion_volume_test.cpp.o"
  "CMakeFiles/kfusion_volume_test.dir/kfusion_volume_test.cpp.o.d"
  "kfusion_volume_test"
  "kfusion_volume_test.pdb"
  "kfusion_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfusion_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
