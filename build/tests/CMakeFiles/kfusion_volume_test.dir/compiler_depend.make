# Empty compiler generated dependencies file for kfusion_volume_test.
# This may be replaced when dependencies are built.
