# Empty dependencies file for kfusion_tracking_test.
# This may be replaced when dependencies are built.
