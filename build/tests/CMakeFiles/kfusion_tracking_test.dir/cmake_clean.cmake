file(REMOVE_RECURSE
  "CMakeFiles/kfusion_tracking_test.dir/kfusion_tracking_test.cpp.o"
  "CMakeFiles/kfusion_tracking_test.dir/kfusion_tracking_test.cpp.o.d"
  "kfusion_tracking_test"
  "kfusion_tracking_test.pdb"
  "kfusion_tracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfusion_tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
