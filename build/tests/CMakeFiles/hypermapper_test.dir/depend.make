# Empty dependencies file for hypermapper_test.
# This may be replaced when dependencies are built.
