file(REMOVE_RECURSE
  "CMakeFiles/hypermapper_test.dir/hypermapper_test.cpp.o"
  "CMakeFiles/hypermapper_test.dir/hypermapper_test.cpp.o.d"
  "hypermapper_test"
  "hypermapper_test.pdb"
  "hypermapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypermapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
