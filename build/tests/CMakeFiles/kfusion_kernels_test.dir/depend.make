# Empty dependencies file for kfusion_kernels_test.
# This may be replaced when dependencies are built.
