file(REMOVE_RECURSE
  "CMakeFiles/kfusion_kernels_test.dir/kfusion_kernels_test.cpp.o"
  "CMakeFiles/kfusion_kernels_test.dir/kfusion_kernels_test.cpp.o.d"
  "kfusion_kernels_test"
  "kfusion_kernels_test.pdb"
  "kfusion_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfusion_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
