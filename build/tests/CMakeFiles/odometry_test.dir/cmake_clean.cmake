file(REMOVE_RECURSE
  "CMakeFiles/odometry_test.dir/odometry_test.cpp.o"
  "CMakeFiles/odometry_test.dir/odometry_test.cpp.o.d"
  "odometry_test"
  "odometry_test.pdb"
  "odometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
