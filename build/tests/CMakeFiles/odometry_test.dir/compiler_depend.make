# Empty compiler generated dependencies file for odometry_test.
# This may be replaced when dependencies are built.
