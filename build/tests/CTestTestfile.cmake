# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/kfusion_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/kfusion_volume_test[1]_include.cmake")
include("/root/repo/build/tests/kfusion_tracking_test[1]_include.cmake")
include("/root/repo/build/tests/kfusion_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/hypermapper_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/odometry_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
