file(REMOVE_RECURSE
  "CMakeFiles/fig3_mobile.dir/fig3_mobile.cpp.o"
  "CMakeFiles/fig3_mobile.dir/fig3_mobile.cpp.o.d"
  "bench_fig3_mobile"
  "bench_fig3_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
