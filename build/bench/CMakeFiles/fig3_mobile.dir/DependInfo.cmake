
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_mobile.cpp" "bench/CMakeFiles/fig3_mobile.dir/fig3_mobile.cpp.o" "gcc" "bench/CMakeFiles/fig3_mobile.dir/fig3_mobile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sb_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sb_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/kfusion/CMakeFiles/sb_kfusion.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/sb_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hypermapper/CMakeFiles/sb_hypermapper.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sb_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
