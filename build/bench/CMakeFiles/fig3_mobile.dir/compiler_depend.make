# Empty compiler generated dependencies file for fig3_mobile.
# This may be replaced when dependencies are built.
