file(REMOVE_RECURSE
  "CMakeFiles/headline_odroid.dir/headline_odroid.cpp.o"
  "CMakeFiles/headline_odroid.dir/headline_odroid.cpp.o.d"
  "bench_headline_odroid"
  "bench_headline_odroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_odroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
