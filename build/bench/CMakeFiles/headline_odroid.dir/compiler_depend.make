# Empty compiler generated dependencies file for headline_odroid.
# This may be replaced when dependencies are built.
