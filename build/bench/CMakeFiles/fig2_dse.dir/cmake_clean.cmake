file(REMOVE_RECURSE
  "CMakeFiles/fig2_dse.dir/fig2_dse.cpp.o"
  "CMakeFiles/fig2_dse.dir/fig2_dse.cpp.o.d"
  "bench_fig2_dse"
  "bench_fig2_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
