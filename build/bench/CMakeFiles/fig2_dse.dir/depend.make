# Empty dependencies file for fig2_dse.
# This may be replaced when dependencies are built.
