# Empty compiler generated dependencies file for dse_exploration.
# This may be replaced when dependencies are built.
