file(REMOVE_RECURSE
  "CMakeFiles/dse_exploration.dir/dse_exploration.cpp.o"
  "CMakeFiles/dse_exploration.dir/dse_exploration.cpp.o.d"
  "dse_exploration"
  "dse_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
