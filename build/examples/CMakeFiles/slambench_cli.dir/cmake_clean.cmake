file(REMOVE_RECURSE
  "CMakeFiles/slambench_cli.dir/slambench_cli.cpp.o"
  "CMakeFiles/slambench_cli.dir/slambench_cli.cpp.o.d"
  "slambench_cli"
  "slambench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slambench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
