# Empty compiler generated dependencies file for slambench_cli.
# This may be replaced when dependencies are built.
