# Empty dependencies file for sb_ml.
# This may be replaced when dependencies are built.
