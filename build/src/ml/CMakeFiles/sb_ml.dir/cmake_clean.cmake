file(REMOVE_RECURSE
  "CMakeFiles/sb_ml.dir/dataset.cpp.o"
  "CMakeFiles/sb_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/sb_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/sb_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/sb_ml.dir/random_forest.cpp.o"
  "CMakeFiles/sb_ml.dir/random_forest.cpp.o.d"
  "libsb_ml.a"
  "libsb_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
