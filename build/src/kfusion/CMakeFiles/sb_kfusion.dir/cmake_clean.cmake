file(REMOVE_RECURSE
  "CMakeFiles/sb_kfusion.dir/config.cpp.o"
  "CMakeFiles/sb_kfusion.dir/config.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/kernels.cpp.o"
  "CMakeFiles/sb_kfusion.dir/kernels.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/mesh.cpp.o"
  "CMakeFiles/sb_kfusion.dir/mesh.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/pipeline.cpp.o"
  "CMakeFiles/sb_kfusion.dir/pipeline.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/raycast.cpp.o"
  "CMakeFiles/sb_kfusion.dir/raycast.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/tracking.cpp.o"
  "CMakeFiles/sb_kfusion.dir/tracking.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/volume.cpp.o"
  "CMakeFiles/sb_kfusion.dir/volume.cpp.o.d"
  "CMakeFiles/sb_kfusion.dir/work_counters.cpp.o"
  "CMakeFiles/sb_kfusion.dir/work_counters.cpp.o.d"
  "libsb_kfusion.a"
  "libsb_kfusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_kfusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
