
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kfusion/config.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/config.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/config.cpp.o.d"
  "/root/repo/src/kfusion/kernels.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/kernels.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/kernels.cpp.o.d"
  "/root/repo/src/kfusion/mesh.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/mesh.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/mesh.cpp.o.d"
  "/root/repo/src/kfusion/pipeline.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/pipeline.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/pipeline.cpp.o.d"
  "/root/repo/src/kfusion/raycast.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/raycast.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/raycast.cpp.o.d"
  "/root/repo/src/kfusion/tracking.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/tracking.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/tracking.cpp.o.d"
  "/root/repo/src/kfusion/volume.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/volume.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/volume.cpp.o.d"
  "/root/repo/src/kfusion/work_counters.cpp" "src/kfusion/CMakeFiles/sb_kfusion.dir/work_counters.cpp.o" "gcc" "src/kfusion/CMakeFiles/sb_kfusion.dir/work_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/sb_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
