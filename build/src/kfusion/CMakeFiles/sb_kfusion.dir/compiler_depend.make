# Empty compiler generated dependencies file for sb_kfusion.
# This may be replaced when dependencies are built.
