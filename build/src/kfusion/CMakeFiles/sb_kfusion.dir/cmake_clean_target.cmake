file(REMOVE_RECURSE
  "libsb_kfusion.a"
)
