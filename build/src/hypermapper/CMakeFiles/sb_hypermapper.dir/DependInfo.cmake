
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypermapper/drivers.cpp" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/drivers.cpp.o" "gcc" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/drivers.cpp.o.d"
  "/root/repo/src/hypermapper/knowledge.cpp" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/knowledge.cpp.o" "gcc" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/knowledge.cpp.o.d"
  "/root/repo/src/hypermapper/param_space.cpp" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/param_space.cpp.o" "gcc" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/param_space.cpp.o.d"
  "/root/repo/src/hypermapper/pareto.cpp" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/pareto.cpp.o" "gcc" "src/hypermapper/CMakeFiles/sb_hypermapper.dir/pareto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/sb_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
