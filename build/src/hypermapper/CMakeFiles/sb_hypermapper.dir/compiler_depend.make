# Empty compiler generated dependencies file for sb_hypermapper.
# This may be replaced when dependencies are built.
