file(REMOVE_RECURSE
  "CMakeFiles/sb_hypermapper.dir/drivers.cpp.o"
  "CMakeFiles/sb_hypermapper.dir/drivers.cpp.o.d"
  "CMakeFiles/sb_hypermapper.dir/knowledge.cpp.o"
  "CMakeFiles/sb_hypermapper.dir/knowledge.cpp.o.d"
  "CMakeFiles/sb_hypermapper.dir/param_space.cpp.o"
  "CMakeFiles/sb_hypermapper.dir/param_space.cpp.o.d"
  "CMakeFiles/sb_hypermapper.dir/pareto.cpp.o"
  "CMakeFiles/sb_hypermapper.dir/pareto.cpp.o.d"
  "libsb_hypermapper.a"
  "libsb_hypermapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_hypermapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
