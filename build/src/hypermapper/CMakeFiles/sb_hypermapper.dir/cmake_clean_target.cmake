file(REMOVE_RECURSE
  "libsb_hypermapper.a"
)
