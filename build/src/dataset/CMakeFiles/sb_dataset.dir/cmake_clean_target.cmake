file(REMOVE_RECURSE
  "libsb_dataset.a"
)
