
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/generator.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/generator.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/generator.cpp.o.d"
  "/root/repo/src/dataset/noise.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/noise.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/noise.cpp.o.d"
  "/root/repo/src/dataset/raw_io.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/raw_io.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/raw_io.cpp.o.d"
  "/root/repo/src/dataset/renderer.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/renderer.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/renderer.cpp.o.d"
  "/root/repo/src/dataset/scene.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/scene.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/scene.cpp.o.d"
  "/root/repo/src/dataset/sdf.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/sdf.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/sdf.cpp.o.d"
  "/root/repo/src/dataset/trajectory.cpp" "src/dataset/CMakeFiles/sb_dataset.dir/trajectory.cpp.o" "gcc" "src/dataset/CMakeFiles/sb_dataset.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/sb_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
