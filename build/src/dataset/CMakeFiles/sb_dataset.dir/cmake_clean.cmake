file(REMOVE_RECURSE
  "CMakeFiles/sb_dataset.dir/generator.cpp.o"
  "CMakeFiles/sb_dataset.dir/generator.cpp.o.d"
  "CMakeFiles/sb_dataset.dir/noise.cpp.o"
  "CMakeFiles/sb_dataset.dir/noise.cpp.o.d"
  "CMakeFiles/sb_dataset.dir/raw_io.cpp.o"
  "CMakeFiles/sb_dataset.dir/raw_io.cpp.o.d"
  "CMakeFiles/sb_dataset.dir/renderer.cpp.o"
  "CMakeFiles/sb_dataset.dir/renderer.cpp.o.d"
  "CMakeFiles/sb_dataset.dir/scene.cpp.o"
  "CMakeFiles/sb_dataset.dir/scene.cpp.o.d"
  "CMakeFiles/sb_dataset.dir/sdf.cpp.o"
  "CMakeFiles/sb_dataset.dir/sdf.cpp.o.d"
  "CMakeFiles/sb_dataset.dir/trajectory.cpp.o"
  "CMakeFiles/sb_dataset.dir/trajectory.cpp.o.d"
  "libsb_dataset.a"
  "libsb_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
