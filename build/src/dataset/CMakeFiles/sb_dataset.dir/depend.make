# Empty dependencies file for sb_dataset.
# This may be replaced when dependencies are built.
