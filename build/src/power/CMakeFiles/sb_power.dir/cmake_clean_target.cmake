file(REMOVE_RECURSE
  "libsb_power.a"
)
