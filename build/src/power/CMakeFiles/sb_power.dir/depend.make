# Empty dependencies file for sb_power.
# This may be replaced when dependencies are built.
