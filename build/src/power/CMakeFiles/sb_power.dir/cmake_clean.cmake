file(REMOVE_RECURSE
  "CMakeFiles/sb_power.dir/power_monitor.cpp.o"
  "CMakeFiles/sb_power.dir/power_monitor.cpp.o.d"
  "libsb_power.a"
  "libsb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
