file(REMOVE_RECURSE
  "CMakeFiles/sb_math.dir/solve.cpp.o"
  "CMakeFiles/sb_math.dir/solve.cpp.o.d"
  "libsb_math.a"
  "libsb_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
