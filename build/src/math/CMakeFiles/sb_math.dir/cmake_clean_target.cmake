file(REMOVE_RECURSE
  "libsb_math.a"
)
