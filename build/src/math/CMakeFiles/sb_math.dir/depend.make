# Empty dependencies file for sb_math.
# This may be replaced when dependencies are built.
