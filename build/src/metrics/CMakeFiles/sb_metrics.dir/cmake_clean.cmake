file(REMOVE_RECURSE
  "CMakeFiles/sb_metrics.dir/ate.cpp.o"
  "CMakeFiles/sb_metrics.dir/ate.cpp.o.d"
  "CMakeFiles/sb_metrics.dir/reconstruction.cpp.o"
  "CMakeFiles/sb_metrics.dir/reconstruction.cpp.o.d"
  "CMakeFiles/sb_metrics.dir/timing.cpp.o"
  "CMakeFiles/sb_metrics.dir/timing.cpp.o.d"
  "libsb_metrics.a"
  "libsb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
