
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/ate.cpp" "src/metrics/CMakeFiles/sb_metrics.dir/ate.cpp.o" "gcc" "src/metrics/CMakeFiles/sb_metrics.dir/ate.cpp.o.d"
  "/root/repo/src/metrics/reconstruction.cpp" "src/metrics/CMakeFiles/sb_metrics.dir/reconstruction.cpp.o" "gcc" "src/metrics/CMakeFiles/sb_metrics.dir/reconstruction.cpp.o.d"
  "/root/repo/src/metrics/timing.cpp" "src/metrics/CMakeFiles/sb_metrics.dir/timing.cpp.o" "gcc" "src/metrics/CMakeFiles/sb_metrics.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/sb_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/kfusion/CMakeFiles/sb_kfusion.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/sb_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
