file(REMOVE_RECURSE
  "libsb_devices.a"
)
