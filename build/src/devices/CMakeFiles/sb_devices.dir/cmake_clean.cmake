file(REMOVE_RECURSE
  "CMakeFiles/sb_devices.dir/device_model.cpp.o"
  "CMakeFiles/sb_devices.dir/device_model.cpp.o.d"
  "CMakeFiles/sb_devices.dir/fleet.cpp.o"
  "CMakeFiles/sb_devices.dir/fleet.cpp.o.d"
  "libsb_devices.a"
  "libsb_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
