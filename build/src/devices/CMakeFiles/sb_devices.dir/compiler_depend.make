# Empty compiler generated dependencies file for sb_devices.
# This may be replaced when dependencies are built.
