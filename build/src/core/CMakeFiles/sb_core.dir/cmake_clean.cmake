file(REMOVE_RECURSE
  "CMakeFiles/sb_core.dir/benchmark.cpp.o"
  "CMakeFiles/sb_core.dir/benchmark.cpp.o.d"
  "CMakeFiles/sb_core.dir/config_binding.cpp.o"
  "CMakeFiles/sb_core.dir/config_binding.cpp.o.d"
  "CMakeFiles/sb_core.dir/experiment.cpp.o"
  "CMakeFiles/sb_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sb_core.dir/odometry.cpp.o"
  "CMakeFiles/sb_core.dir/odometry.cpp.o.d"
  "CMakeFiles/sb_core.dir/report.cpp.o"
  "CMakeFiles/sb_core.dir/report.cpp.o.d"
  "CMakeFiles/sb_core.dir/slam_system.cpp.o"
  "CMakeFiles/sb_core.dir/slam_system.cpp.o.d"
  "libsb_core.a"
  "libsb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
