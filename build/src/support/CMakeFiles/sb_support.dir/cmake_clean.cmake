file(REMOVE_RECURSE
  "CMakeFiles/sb_support.dir/csv.cpp.o"
  "CMakeFiles/sb_support.dir/csv.cpp.o.d"
  "CMakeFiles/sb_support.dir/image.cpp.o"
  "CMakeFiles/sb_support.dir/image.cpp.o.d"
  "CMakeFiles/sb_support.dir/logging.cpp.o"
  "CMakeFiles/sb_support.dir/logging.cpp.o.d"
  "CMakeFiles/sb_support.dir/stats.cpp.o"
  "CMakeFiles/sb_support.dir/stats.cpp.o.d"
  "CMakeFiles/sb_support.dir/strings.cpp.o"
  "CMakeFiles/sb_support.dir/strings.cpp.o.d"
  "CMakeFiles/sb_support.dir/thread_pool.cpp.o"
  "CMakeFiles/sb_support.dir/thread_pool.cpp.o.d"
  "libsb_support.a"
  "libsb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
