# Empty dependencies file for sb_support.
# This may be replaced when dependencies are built.
