file(REMOVE_RECURSE
  "libsb_support.a"
)
