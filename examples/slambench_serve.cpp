/**
 * @file
 * slambench_serve — the multi-session SLAM service: N independent
 * tenant sessions, each a full KinectFusion pipeline fed by a
 * simulated device stream (fleet device model x dataset generator),
 * frame-batch scheduled over a shared ThreadPool with admission
 * control / load shedding, per-tenant labels on /metrics and /runz,
 * and graceful drain on SIGTERM. See docs/SERVING.md.
 *
 * Examples:
 *   slambench_serve --serve-tenants 8 --serve-ticks 40 \
 *                   --telemetry-port 9090
 *   slambench_serve --telemetry-port 9090 \
 *                   --slo-queue-stall-ms 200       # run until SIGTERM
 *   slambench_serve --serve-ticks 30 --serve-stall-tick 10 \
 *                   --serve-stall-ms 300 --slo-queue-stall-ms 100 \
 *                   --serve-queue-hi 4              # watch shedding
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "kfusion/backend.hpp"
#include "kfusion/volume_backend.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/telemetry_server.hpp"
#include "support/trace.hpp"

namespace {

using namespace slambench;

void
usage()
{
    std::printf(
        "slambench_serve — multi-session SLAM service "
        "(docs/SERVING.md)\n\n"
        "service:\n"
        "  --serve-tenants N     concurrent tenant sessions "
        "(default 8)\n"
        "  --serve-ticks N       scheduling ticks to run; 0 = run "
        "until SIGTERM\n"
        "                        (default 0)\n"
        "  --serve-threads N     scheduler pool workers (0 = "
        "hardware concurrency)\n\n"
        "admission control (load shedding):\n"
        "  --serve-queue-hi N    engage shedding at this peak pool "
        "queue depth\n"
        "                        (default 64)\n"
        "  --serve-queue-lo N    clearing requires peak depth <= N "
        "(default 4)\n"
        "  --serve-p99-ms X      engage when smoothed frame p99 "
        "exceeds X ms\n"
        "                        (0 disables; default 0)\n"
        "  --serve-clear-ticks N consecutive healthy ticks before "
        "shedding clears\n"
        "                        (default 3)\n"
        "  --serve-max-tenant-mb X engage when any tenant's TSDF "
        "volume reaches\n"
        "                        X MiB resident (0 disables; default "
        "0; pair with\n"
        "                        --volume sparse, whose footprint "
        "grows with the\n"
        "                        observed surface)\n\n"
        "fault injection (tests):\n"
        "  --serve-stall-tick N  flood the pool with sleeping "
        "blockers at tick N\n"
        "  --serve-stall-ms X    blocker sleep, milliseconds\n\n"
        "tenant streams:\n"
        "  --frames N            frames per rendered stream "
        "(default 16; streams\n"
        "                        wrap into fresh epochs)\n"
        "  --width W --height H  stream resolution (default "
        "160x120)\n"
        "  --seed S              base stream seed (default 42)\n"
        "  --fleet-seed S        device-fleet seed (default 2018)\n\n"
        "pipeline (per tenant):\n"
        "  --vr N                volume resolution (default 64)\n"
        "  --csr {1,2,4,8}       compute-size ratio (default 2)\n"
        "  --backend NAME        kernel backend: "
        "scalar|simd|mixed|auto\n"
        "  --volume NAME         TSDF map: dense|sparse (default "
        "dense)\n"
        "  --block-size N        sparse voxel-block edge: 8|16\n"
        "  --pool-capacity N     sparse resident-block cap (0 = "
        "unbounded)\n\n"
        "observability (docs/OBSERVABILITY.md):\n"
        "  --telemetry-port N    serve /metrics, /healthz, /runz, "
        "/tracez\n"
        "                        on 127.0.0.1:N (0 = ephemeral)\n"
        "  --crash-dump FILE     fatal-signal flight-recorder dump\n"
        "  --slo-frame-p99-ms X  healthz SLO: frame p99 <= X ms\n"
        "  --slo-max-ate X       healthz SLO: per-frame ATE <= X m\n"
        "  --slo-max-lost N      healthz SLO: <= N consecutive lost "
        "frames\n"
        "  --slo-queue-stall-ms X healthz SLO: no pool stall > X "
        "ms\n"
        "  --recorder-slots N    flight-recorder ring capacity "
        "(default 1024)\n"
        "  --trace-requests      arm per-frame request traces "
        "(tail-based\n"
        "                        retention; query "
        "/tracez?trace_id=...)\n"
        "  --trace-sample-rate P retention probability for "
        "unflagged frames\n"
        "                        (default 0.01; implies "
        "--trace-requests)\n"
        "  --trace-store N       retained-trace ring size (default "
        "256; implies\n"
        "                        --trace-requests)\n"
        "  --metrics-json FILE   run report; frames carry the "
        "tenant id as label\n"
        "  --frames-csv FILE     per-frame telemetry table (CSV)\n"
        "  --quiet / --verbose   log level\n");
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

long
longFlag(int argc, char **argv, const char *name, long fallback)
{
    const char *v = flagValue(argc, argv, name);
    return v ? std::atol(v) : fallback;
}

double
doubleFlag(int argc, char **argv, const char *name, double fallback)
{
    const char *v = flagValue(argc, argv, name);
    return v ? std::atof(v) : fallback;
}

/** Drain target of the SIGTERM/SIGINT handler. */
std::atomic<serve::StreamScheduler *> g_scheduler{nullptr};

void
handleDrainSignal(int)
{
    // Async-signal-safe: requestDrain is one relaxed atomic store.
    if (auto *scheduler =
            g_scheduler.load(std::memory_order_relaxed))
        scheduler->requestDrain();
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--help") || hasFlag(argc, argv, "-h")) {
        usage();
        return 0;
    }

    // Belt and braces on top of the server's send(MSG_NOSIGNAL): no
    // stray SIGPIPE (a scraper gone mid-response, a closed log pipe)
    // may ever kill a long-running service.
    std::signal(SIGPIPE, SIG_IGN);

    if (hasFlag(argc, argv, "--quiet"))
        support::setLogLevel(support::LogLevel::Warn);
    else if (hasFlag(argc, argv, "--verbose"))
        support::setLogLevel(support::LogLevel::Debug);

    const size_t tenants = static_cast<size_t>(
        std::max(1L, longFlag(argc, argv, "--serve-tenants", 8)));
    const uint64_t ticks = static_cast<uint64_t>(
        std::max(0L, longFlag(argc, argv, "--serve-ticks", 0)));

    // Run report: one frame row per processed frame, labeled with
    // the producing tenant's id.
    const char *metrics_json =
        flagValue(argc, argv, "--metrics-json");
    const char *frames_csv = flagValue(argc, argv, "--frames-csv");
    support::metrics::RunSession metrics_session(
        metrics_json ? metrics_json : "",
        frames_csv ? frames_csv : "", "slambench_serve");

    support::telemetry::TelemetryOptions telemetry_options;
    telemetry_options.port = static_cast<int>(
        longFlag(argc, argv, "--telemetry-port", -1));
    const char *crash_dump = flagValue(argc, argv, "--crash-dump");
    telemetry_options.crashDumpPath = crash_dump ? crash_dump : "";
    telemetry_options.generator = "slambench_serve";
    telemetry_options.slo.frameP99Seconds =
        doubleFlag(argc, argv, "--slo-frame-p99-ms", 0.0) * 1e-3;
    telemetry_options.slo.maxAteMeters =
        doubleFlag(argc, argv, "--slo-max-ate", 0.0);
    telemetry_options.slo.maxConsecutiveTrackingFailures =
        longFlag(argc, argv, "--slo-max-lost", 0);
    telemetry_options.slo.poolQueueStallSeconds =
        doubleFlag(argc, argv, "--slo-queue-stall-ms", 0.0) * 1e-3;
    const long recorder_slots =
        longFlag(argc, argv, "--recorder-slots", 1024);
    telemetry_options.recorderSlots =
        recorder_slots <= 0 ? 1024
                            : static_cast<size_t>(recorder_slots);
    const support::telemetry::TelemetryEndpoint telemetry(
        telemetry_options);

    // Request tracing: every frame through the scheduler gets a
    // TraceContext; tail-based retention keeps SLO breaches,
    // tracking losses, and top-bucket frames, plus a sampled slice
    // of normal traffic (docs/OBSERVABILITY.md "Request tracing").
    support::trace::RequestTraceOptions trace_options;
    trace_options.sampleRate =
        doubleFlag(argc, argv, "--trace-sample-rate", -1.0);
    const long trace_store =
        longFlag(argc, argv, "--trace-store", 0);
    const bool trace_armed =
        hasFlag(argc, argv, "--trace-requests") ||
        trace_options.sampleRate >= 0.0 || trace_store > 0;
    if (trace_options.sampleRate < 0.0)
        trace_options.sampleRate = 0.01;
    if (trace_options.sampleRate > 1.0)
        trace_options.sampleRate = 1.0;
    if (trace_store > 0)
        trace_options.maxRetained =
            static_cast<size_t>(trace_store);
    const support::trace::RequestTraceSession trace_session(
        trace_armed, trace_options);

    // --- Tenant fleet ---
    const auto fleet = devices::mobileFleet(
        std::max<size_t>(tenants, 8),
        static_cast<uint64_t>(
            longFlag(argc, argv, "--fleet-seed", 2018)));

    kfusion::KFusionConfig kfusion_config;
    kfusion_config.volumeResolution =
        static_cast<int>(longFlag(argc, argv, "--vr", 64));
    kfusion_config.computeSizeRatio =
        static_cast<int>(longFlag(argc, argv, "--csr", 2));
    if (const char *backend = flagValue(argc, argv, "--backend")) {
        std::string backend_error;
        if (!kfusion::resolveKernelBackend(backend, &backend_error))
            support::fatal("--backend: " + backend_error);
        kfusion_config.kernelBackend = backend;
    }
    if (const char *volume = flagValue(argc, argv, "--volume")) {
        if (!kfusion::volumeBackendNameValid(volume))
            support::fatal("--volume: unknown volume backend '" +
                           std::string(volume) +
                           "' (valid: dense, sparse)");
        kfusion_config.volumeBackend = volume;
    }
    kfusion_config.volumeBlockSize = static_cast<int>(
        longFlag(argc, argv, "--block-size",
                 kfusion_config.volumeBlockSize));
    kfusion_config.volumePoolCapacity =
        longFlag(argc, argv, "--pool-capacity",
                 kfusion_config.volumePoolCapacity);

    dataset::SequenceSpec base_spec;
    base_spec.numFrames =
        static_cast<size_t>(longFlag(argc, argv, "--frames", 16));
    base_spec.width =
        static_cast<size_t>(longFlag(argc, argv, "--width", 160));
    base_spec.height =
        static_cast<size_t>(longFlag(argc, argv, "--height", 120));
    base_spec.renderRgb = false;
    const uint64_t base_seed =
        static_cast<uint64_t>(longFlag(argc, argv, "--seed", 42));

    std::printf("standing up %zu tenant sessions (%zux%zu, %zu "
                "frames/stream, vr=%d, csr=%d)...\n",
                tenants, base_spec.width, base_spec.height,
                base_spec.numFrames,
                kfusion_config.volumeResolution,
                kfusion_config.computeSizeRatio);

    static const dataset::TrajectoryPreset kPresets[] = {
        dataset::TrajectoryPreset::OrbitA,
        dataset::TrajectoryPreset::SweepB,
        dataset::TrajectoryPreset::CloseupC,
    };
    std::vector<std::unique_ptr<serve::TenantSession>> sessions;
    sessions.reserve(tenants);
    for (size_t i = 0; i < tenants; ++i) {
        serve::TenantConfig tenant;
        char id[24];
        std::snprintf(id, sizeof(id), "t%02u",
                      static_cast<unsigned>(i));
        tenant.id = id;
        tenant.device = fleet[i % fleet.size()];
        tenant.kfusion = kfusion_config;
        tenant.sequence = base_spec;
        tenant.sequence.trajectory = kPresets[i % 3];
        tenant.sequence.seed = base_seed + i;
        tenant.sequence.name =
            tenant.id + "-" + tenant.device.name;
        sessions.push_back(
            std::make_unique<serve::TenantSession>(tenant));
        metrics_session.setParam("tenant." + tenant.id + ".device",
                                 tenant.device.name);
    }

    serve::SchedulerOptions scheduler_options;
    scheduler_options.threads = static_cast<size_t>(
        std::max(0L, longFlag(argc, argv, "--serve-threads", 0)));
    scheduler_options.admission.queueHiWatermark =
        static_cast<size_t>(
            std::max(1L, longFlag(argc, argv, "--serve-queue-hi",
                                  64)));
    scheduler_options.admission.queueLoWatermark =
        static_cast<size_t>(
            std::max(0L, longFlag(argc, argv, "--serve-queue-lo",
                                  4)));
    scheduler_options.admission.frameP99TargetSeconds =
        doubleFlag(argc, argv, "--serve-p99-ms", 0.0) * 1e-3;
    scheduler_options.admission.clearAfterHealthyTicks =
        static_cast<int>(
            std::max(1L, longFlag(argc, argv, "--serve-clear-ticks",
                                  3)));
    scheduler_options.admission.maxTenantVolumeBytes =
        static_cast<uint64_t>(
            std::max(0.0, doubleFlag(argc, argv,
                                     "--serve-max-tenant-mb", 0.0)) *
            (1 << 20));
    scheduler_options.stallAtTick = static_cast<uint64_t>(
        std::max(0L, longFlag(argc, argv, "--serve-stall-tick", 0)));
    scheduler_options.stallMs =
        doubleFlag(argc, argv, "--serve-stall-ms", 0.0);

    serve::StreamScheduler scheduler(std::move(sessions),
                                     scheduler_options);

    // Drain handler last, so it overrides the crash-dump handler the
    // TelemetryEndpoint installed for SIGTERM: for a service, TERM
    // is a routine drain request, not a crash.
    g_scheduler.store(&scheduler, std::memory_order_relaxed);
    struct sigaction drain_action;
    std::memset(&drain_action, 0, sizeof(drain_action));
    drain_action.sa_handler = handleDrainSignal;
    sigaction(SIGTERM, &drain_action, nullptr);
    sigaction(SIGINT, &drain_action, nullptr);

    if (ticks == 0)
        std::printf("serving until SIGTERM (pid %d)...\n",
                    static_cast<int>(getpid()));

    const uint64_t ran = scheduler.runLoop(ticks, &metrics_session);
    g_scheduler.store(nullptr, std::memory_order_relaxed);

    // --- Report ---
    const auto &admission = scheduler.admission();
    std::printf("\nserved %llu ticks: %llu frames processed, %llu "
                "shed (%llu shed episodes)\n",
                static_cast<unsigned long long>(ran),
                static_cast<unsigned long long>(
                    scheduler.framesProcessed()),
                static_cast<unsigned long long>(
                    scheduler.framesShed()),
                static_cast<unsigned long long>(
                    admission.engageCount()));
    std::printf("aggregate frame p99: %.2f ms%s\n",
                scheduler.aggregateFrameP99Seconds() * 1e3,
                admission.shedding() ? "  [still shedding]" : "");
    std::printf("%-6s %-22s %8s %6s %7s %8s\n", "tenant", "device",
                "frames", "shed", "epochs", "vol_mib");
    for (const auto &tenant : scheduler.sessions()) {
        std::printf("%-6s %-22s %8llu %6llu %7llu %8.1f\n",
                    tenant->id().c_str(),
                    tenant->device().name.c_str(),
                    static_cast<unsigned long long>(
                        tenant->framesProcessed()),
                    static_cast<unsigned long long>(
                        tenant->framesShed()),
                    static_cast<unsigned long long>(
                        tenant->epochs()),
                    static_cast<double>(tenant->volumeBytes()) /
                        (1 << 20));
    }

    metrics_session.setSummary("serve_ticks",
                               static_cast<double>(ran));
    metrics_session.setSummary(
        "serve_tenants", static_cast<double>(tenants));
    metrics_session.setSummary(
        "serve_frames_processed",
        static_cast<double>(scheduler.framesProcessed()));
    metrics_session.setSummary(
        "serve_frames_shed",
        static_cast<double>(scheduler.framesShed()));
    metrics_session.setSummary(
        "serve_shed_engaged",
        static_cast<double>(admission.engageCount()));
    metrics_session.setSummary(
        "serve_shed_cleared",
        static_cast<double>(admission.clearCount()));
    metrics_session.setSummary("serve_frame_p99_seconds",
                               scheduler.aggregateFrameP99Seconds());
    metrics_session.finish();
    return 0;
}
