/**
 * @file
 * Example: comparing two SLAM systems under the same harness — the
 * core promise of SLAMBench. Runs dense KinectFusion (frame-to-model
 * tracking against a TSDF map) and the drift-prone frame-to-frame
 * ICP odometry baseline on the same sequence, reporting the metric
 * triple side by side.
 *
 * Usage: compare_systems [frames]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/benchmark.hpp"
#include "core/odometry.hpp"
#include "core/slam_system.hpp"
#include "dataset/generator.hpp"
#include "devices/fleet.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;

    size_t frames = 40;
    if (argc > 1)
        frames = static_cast<size_t>(std::atol(argv[1]));

    dataset::SequenceSpec spec;
    spec.width = 160;
    spec.height = 120;
    spec.numFrames = frames;
    spec.renderRgb = false;
    const dataset::Sequence sequence = generateSequence(spec);

    kfusion::KFusionConfig kf_config;
    kf_config.volumeResolution = 128;

    std::vector<std::unique_ptr<core::SlamSystem>> systems;
    systems.push_back(
        std::make_unique<core::KFusionSystem>(kf_config));
    systems.push_back(std::make_unique<core::OdometrySystem>());

    const auto xu3 = devices::odroidXu3();
    std::printf("%-20s %10s %10s %10s %8s %9s\n", "system",
                "maxATE(m)", "rmse(m)", "xu3 ms/f", "xu3 W",
                "tracked");
    for (auto &system : systems) {
        const core::BenchmarkResult result =
            core::runBenchmark(*system, sequence);
        const devices::SimulatedRun sim =
            devices::simulateRun(xu3, result.frameWork);
        std::printf("%-20s %10.4f %10.4f %10.2f %8.2f %8.0f%%\n",
                    system->name().c_str(), result.ate.maxAte,
                    result.ate.rmse, sim.meanFrameSeconds * 1e3,
                    sim.pacedWatts,
                    result.trackedFraction() * 100.0);
    }
    std::printf("\nframe-to-model (kfusion) should show visibly "
                "lower drift than frame-to-frame odometry,\nat the "
                "price of the TSDF volume's memory and compute.\n");
    return 0;
}
