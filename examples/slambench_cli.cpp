/**
 * @file
 * The SLAMBench-style command-line harness: pick a dataset, a SLAM
 * system, a configuration, and a device model entirely from flags,
 * run the benchmark, and print the metric triple. Mirrors the flag
 * set of the original `kfusion-benchmark` binaries.
 *
 * Examples:
 *   slambench_cli --frames 60
 *   slambench_cli --scene office --trajectory b --vr 128 --csr 2
 *   slambench_cli --system odometry --dump-trajectory est.txt
 *   slambench_cli --vr 64 --ir 8 --mu 0.16 --pyramid 4,3,2 \
 *                 --dump-mesh map.obj --align
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <fstream>

#include "core/benchmark.hpp"
#include "core/report.hpp"
#include "core/odometry.hpp"
#include "core/slam_system.hpp"
#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "kfusion/backend.hpp"
#include "kfusion/mesh.hpp"
#include "kfusion/volume_backend.hpp"
#include "metrics/reconstruction.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "support/telemetry_server.hpp"
#include "support/trace.hpp"

namespace {

using namespace slambench;

void
usage()
{
    std::printf(
        "slambench_cli — benchmark a SLAM system on a synthetic "
        "RGB-D sequence\n\n"
        "dataset:\n"
        "  --scene living-room|office     (default living-room)\n"
        "  --trajectory a|b|c             (default a = orbit)\n"
        "  --frames N                     (default 40)\n"
        "  --width W --height H           (default 320x240)\n"
        "  --no-noise                     disable the sensor model\n"
        "  --seed S                       sensor noise seed\n\n"
        "system:\n"
        "  --system kfusion|odometry      (default kfusion)\n"
        "  --impl sequential|threaded     (default sequential)\n"
        "  --dse-threads N                worker threads for the "
        "threaded impl\n"
        "                                 (0 = hardware concurrency, "
        "1 = serial)\n\n"
        "kfusion configuration (SLAMBench flags):\n"
        "  --csr {1,2,4,8}   compute-size ratio\n"
        "  --icp T           ICP convergence threshold\n"
        "  --mu M            TSDF truncation, meters\n"
        "  --ir N            integration rate\n"
        "  --vr N            volume resolution (voxels/edge)\n"
        "  --vs S            volume size, meters\n"
        "  --pyramid a,b,c   ICP iterations per level\n"
        "  --tr N            tracking rate\n"
        "  --rr N            rendering rate\n"
        "  --backend NAME    kernel backend: scalar|simd|mixed|auto "
        "(default scalar;\n"
        "                    bit-exact, see docs/KERNEL_BACKENDS.md)"
        "\n"
        "  --volume NAME     TSDF map data structure: dense|sparse "
        "(default dense;\n"
        "                    bit-identical on the observed region, "
        "see\n"
        "                    docs/ARCHITECTURE.md \"Volume "
        "backends\")\n"
        "  --block-size N    sparse voxel-block edge: 8|16 "
        "(default 8)\n"
        "  --pool-capacity N sparse resident-block cap "
        "(default 0 = unbounded)\n\n"
        "outputs:\n"
        "  --align                  also report rigidly aligned ATE\n"
        "  --trace FILE             chrome://tracing span timeline "
        "(JSON)\n"
        "  --perf-csv FILE          per-frame per-kernel host-time "
        "aggregate (CSV)\n"
        "  --pmu                    hardware-counter profiling: "
        "per-kernel IPC,\n"
        "                           cache/branch miss rates, bytes/s "
        "(perf_event_open;\n"
        "                           degrades to a null backend with "
        "one WARN)\n"
        "  --metrics-json FILE      machine-readable run report "
        "(JSON)\n"
        "  --frames-csv FILE        per-frame telemetry table (CSV)\n"
        "  --telemetry-port N       serve /metrics, /healthz, /runz "
        "on 127.0.0.1:N\n"
        "                           (0 = ephemeral port, logged at "
        "INFO)\n"
        "  --crash-dump FILE        fatal-signal flight-recorder "
        "dump (JSON)\n"
        "  --slo-frame-p99-ms X     healthz SLO: frame-time p99 "
        "<= X ms\n"
        "  --slo-max-ate X          healthz SLO: per-frame ATE "
        "<= X m\n"
        "  --slo-max-lost N         healthz SLO: <= N consecutive "
        "lost frames\n"
        "  --slo-queue-stall-ms X   healthz SLO: no pool stall "
        "> X ms\n"
        "  --recorder-slots N       flight-recorder ring capacity "
        "(default 1024)\n"
        "  --trace-requests         per-frame request traces with "
        "tail-based\n"
        "                           retention (query /tracez)\n"
        "  --trace-sample-rate P    retention probability for "
        "unflagged frames\n"
        "                           (default 0.01; implies "
        "--trace-requests)\n"
        "  --trace-store N          retained-trace ring size "
        "(default 256;\n"
        "                           implies --trace-requests)\n"
        "  --quiet                  warnings only (suppress INFO "
        "output-path lines)\n"
        "  --verbose                DEBUG logging\n"
        "  --log FILE               per-frame metric log (CSV)\n"
        "  --dump-trajectory FILE   estimated trajectory (TUM)\n"
        "  --dump-groundtruth FILE  ground truth (TUM)\n"
        "  --dump-mesh FILE         reconstructed map (.obj, "
        "kfusion only)\n");
}

const char *
flagValue(int argc, char **argv, const char *name)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0)
            return true;
    return false;
}

long
longFlag(int argc, char **argv, const char *name, long fallback)
{
    const char *v = flagValue(argc, argv, name);
    return v ? std::atol(v) : fallback;
}

double
doubleFlag(int argc, char **argv, const char *name, double fallback)
{
    const char *v = flagValue(argc, argv, name);
    return v ? std::atof(v) : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--help") || hasFlag(argc, argv, "-h")) {
        usage();
        return 0;
    }

    if (hasFlag(argc, argv, "--quiet"))
        support::setLogLevel(support::LogLevel::Warn);
    else if (hasFlag(argc, argv, "--verbose"))
        support::setLogLevel(support::LogLevel::Debug);

    // Per-kernel tracing (docs/OBSERVABILITY.md); exports at exit.
    const char *trace_json = flagValue(argc, argv, "--trace");
    const char *trace_csv = flagValue(argc, argv, "--perf-csv");
    const support::trace::Session trace_session(
        trace_json ? trace_json : "", trace_csv ? trace_csv : "");

    // Hardware-counter profiling (docs/OBSERVABILITY.md "Hardware
    // counters"); summary logged and gauges published at exit.
    const support::pmu::Session pmu_session(
        hasFlag(argc, argv, "--pmu"));

    // Machine-readable run report (docs/OBSERVABILITY.md).
    const char *metrics_json =
        flagValue(argc, argv, "--metrics-json");
    const char *frames_csv = flagValue(argc, argv, "--frames-csv");
    support::metrics::RunSession metrics_session(
        metrics_json ? metrics_json : "",
        frames_csv ? frames_csv : "", "slambench_cli");

    // Live telemetry (docs/OBSERVABILITY.md "Live telemetry").
    support::telemetry::TelemetryOptions telemetry_options;
    telemetry_options.port = static_cast<int>(
        longFlag(argc, argv, "--telemetry-port", -1));
    const char *crash_dump = flagValue(argc, argv, "--crash-dump");
    telemetry_options.crashDumpPath = crash_dump ? crash_dump : "";
    telemetry_options.generator = "slambench_cli";
    telemetry_options.slo.frameP99Seconds =
        doubleFlag(argc, argv, "--slo-frame-p99-ms", 0.0) * 1e-3;
    telemetry_options.slo.maxAteMeters =
        doubleFlag(argc, argv, "--slo-max-ate", 0.0);
    telemetry_options.slo.maxConsecutiveTrackingFailures =
        longFlag(argc, argv, "--slo-max-lost", 0);
    telemetry_options.slo.poolQueueStallSeconds =
        doubleFlag(argc, argv, "--slo-queue-stall-ms", 0.0) * 1e-3;
    const long recorder_slots =
        longFlag(argc, argv, "--recorder-slots", 1024);
    telemetry_options.recorderSlots =
        recorder_slots <= 0 ? 1024
                            : static_cast<size_t>(recorder_slots);
    const support::telemetry::TelemetryEndpoint telemetry(
        telemetry_options);

    // Request tracing (docs/OBSERVABILITY.md "Request tracing"):
    // each processed frame becomes a queryable span tree under
    // tail-based retention.
    support::trace::RequestTraceOptions request_trace_options;
    request_trace_options.sampleRate =
        doubleFlag(argc, argv, "--trace-sample-rate", -1.0);
    const long trace_store =
        longFlag(argc, argv, "--trace-store", 0);
    const bool trace_requests =
        hasFlag(argc, argv, "--trace-requests") ||
        request_trace_options.sampleRate >= 0.0 || trace_store > 0;
    if (request_trace_options.sampleRate < 0.0)
        request_trace_options.sampleRate = 0.01;
    if (request_trace_options.sampleRate > 1.0)
        request_trace_options.sampleRate = 1.0;
    if (trace_store > 0)
        request_trace_options.maxRetained =
            static_cast<size_t>(trace_store);
    const support::trace::RequestTraceSession request_trace_session(
        trace_requests, request_trace_options);

    // --- Dataset ---
    dataset::SequenceSpec spec;
    const char *scene = flagValue(argc, argv, "--scene");
    if (scene && std::string(scene) == "office")
        spec.scene = dataset::SceneId::Office;
    else if (scene && std::string(scene) != "living-room")
        support::fatal("unknown --scene (living-room|office)");
    const char *trajectory = flagValue(argc, argv, "--trajectory");
    if (trajectory &&
        !dataset::parsePreset(trajectory, spec.trajectory))
        support::fatal("unknown --trajectory (a|b|c)");
    spec.numFrames =
        static_cast<size_t>(longFlag(argc, argv, "--frames", 40));
    spec.width =
        static_cast<size_t>(longFlag(argc, argv, "--width", 320));
    spec.height =
        static_cast<size_t>(longFlag(argc, argv, "--height", 240));
    spec.sensorNoise = !hasFlag(argc, argv, "--no-noise");
    spec.seed =
        static_cast<uint64_t>(longFlag(argc, argv, "--seed", 42));
    spec.renderRgb = false;

    std::printf("generating %zu frames (%zux%zu, %s, trajectory "
                "%s)...\n",
                spec.numFrames, spec.width, spec.height,
                spec.scene == dataset::SceneId::Office
                    ? "office"
                    : "living-room",
                trajectory ? trajectory : "a");
    const dataset::Sequence sequence = generateSequence(spec);

    // --- Configuration ---
    kfusion::KFusionConfig config;
    config.computeSizeRatio =
        static_cast<int>(longFlag(argc, argv, "--csr", 1));
    config.icpThreshold = static_cast<float>(
        doubleFlag(argc, argv, "--icp", config.icpThreshold));
    config.mu =
        static_cast<float>(doubleFlag(argc, argv, "--mu", config.mu));
    config.integrationRate =
        static_cast<int>(longFlag(argc, argv, "--ir", 2));
    config.volumeResolution =
        static_cast<int>(longFlag(argc, argv, "--vr", 256));
    config.volumeSize = static_cast<float>(
        doubleFlag(argc, argv, "--vs", config.volumeSize));
    config.trackingRate =
        static_cast<int>(longFlag(argc, argv, "--tr", 1));
    config.renderingRate =
        static_cast<int>(longFlag(argc, argv, "--rr", 4));
    if (const char *backend = flagValue(argc, argv, "--backend")) {
        std::string backend_error;
        if (!kfusion::resolveKernelBackend(backend, &backend_error))
            support::fatal("--backend: " + backend_error);
        config.kernelBackend = backend;
    }
    if (const char *volume = flagValue(argc, argv, "--volume")) {
        if (!kfusion::volumeBackendNameValid(volume))
            support::fatal("--volume: unknown volume backend '" +
                           std::string(volume) +
                           "' (valid: dense, sparse)");
        config.volumeBackend = volume;
    }
    config.volumeBlockSize = static_cast<int>(longFlag(
        argc, argv, "--block-size", config.volumeBlockSize));
    config.volumePoolCapacity = longFlag(
        argc, argv, "--pool-capacity", config.volumePoolCapacity);
    if (const char *pyramid = flagValue(argc, argv, "--pyramid")) {
        config.pyramidIterations.clear();
        for (const std::string &field :
             support::split(pyramid, ',')) {
            long iters = 0;
            if (!support::parseLong(field, iters))
                support::fatal("bad --pyramid (want e.g. 10,5,4)");
            config.pyramidIterations.push_back(
                static_cast<int>(iters));
        }
    }

    kfusion::Implementation impl = kfusion::Implementation::Sequential;
    if (const char *impl_flag = flagValue(argc, argv, "--impl")) {
        if (std::string(impl_flag) == "threaded")
            impl = kfusion::Implementation::Threaded;
        else if (std::string(impl_flag) != "sequential")
            support::fatal("unknown --impl (sequential|threaded)");
    }
    // Shared with the DSE benches: worker-thread count (0 = hardware
    // concurrency). Here it sizes the Threaded kernels' pool.
    const long threads_flag =
        longFlag(argc, argv, "--dse-threads", 0);
    const size_t num_threads =
        threads_flag < 0 ? 0 : static_cast<size_t>(threads_flag);

    // --- System ---
    std::unique_ptr<core::SlamSystem> system;
    core::KFusionSystem *kfusion_system = nullptr;
    const char *system_flag = flagValue(argc, argv, "--system");
    const std::string system_name =
        system_flag ? system_flag : "kfusion";
    if (system_name == "kfusion") {
        auto kf = std::make_unique<core::KFusionSystem>(config, impl,
                                                        num_threads);
        kfusion_system = kf.get();
        system = std::move(kf);
    } else if (system_name == "odometry") {
        core::OdometryConfig odo;
        odo.computeSizeRatio = config.computeSizeRatio;
        odo.pyramidIterations = config.pyramidIterations;
        odo.icpThreshold = config.icpThreshold;
        system = std::make_unique<core::OdometrySystem>(odo);
    } else {
        support::fatal("unknown --system (kfusion|odometry)");
    }

    std::printf("running %s (%s)...\n", system->name().c_str(),
                config.toString().c_str());
    core::addConfigParams(metrics_session, config);
    core::BenchmarkOptions options;
    options.alignedAte = hasFlag(argc, argv, "--align");
    const core::BenchmarkResult result =
        core::runBenchmark(*system, sequence, options);

    // --- Report ---
    std::printf("\ntracked    : %zu/%zu frames\n",
                result.trackedFrames, result.frames);
    std::printf("accuracy   : max ATE %.4f m | mean %.4f m | RMSE "
                "%.4f m\n",
                result.ate.maxAte, result.ate.meanAte,
                result.ate.rmse);
    if (options.alignedAte)
        std::printf("aligned    : max ATE %.4f m | RMSE %.4f m\n",
                    result.ateAligned.maxAte, result.ateAligned.rmse);
    std::printf("drift      : RPE %.5f m/frame, %.5f rad/frame\n",
                result.rpe.translationRmse,
                result.rpe.rotationRmse);
    std::printf("host speed : %s\n",
                metrics::describeTiming(result.hostTiming).c_str());

    const auto xu3 = devices::odroidXu3();
    const auto sim = devices::simulateRun(xu3, result.frameWork);
    std::printf("odroid-xu3 : %.1f ms/frame (%.1f FPS) | %.2f W "
                "paced, %.2f W batch\n",
                sim.meanFrameSeconds * 1e3, sim.meanFps,
                sim.pacedWatts, sim.meanWatts);

    core::appendRunTelemetry(metrics_session, system_name, result,
                             &xu3);
    metrics_session.setSummary("sim_frame_seconds_mean",
                               sim.meanFrameSeconds);
    metrics_session.setSummary("sim_watts_paced", sim.pacedWatts);

    // --- Optional artifacts ---
    if (const char *path = flagValue(argc, argv, "--log")) {
        std::ofstream log(path);
        if (log) {
            core::writeFrameLog(log, result, xu3);
            support::logInfo() << "wrote " << path;
        }
    }
    if (const char *path =
            flagValue(argc, argv, "--dump-trajectory")) {
        dataset::Trajectory estimated;
        for (size_t i = 0; i < result.estimatedPoses.size(); ++i)
            estimated.append(result.estimatedPoses[i],
                             sequence.groundTruth.timestamp(i));
        if (estimated.saveTum(path))
            std::printf("wrote %s\n", path);
    }
    if (const char *path =
            flagValue(argc, argv, "--dump-groundtruth")) {
        if (sequence.groundTruth.saveTum(path))
            std::printf("wrote %s\n", path);
    }
    if (const char *path = flagValue(argc, argv, "--dump-mesh")) {
        if (!kfusion_system) {
            std::printf("--dump-mesh requires --system kfusion\n");
        } else {
            const kfusion::TriangleMesh mesh = kfusion::extractMesh(
                kfusion_system->pipeline().volume());
            if (mesh.saveObj(path)) {
                const auto recon =
                    metrics::computeReconstructionError(
                        mesh, dataset::makeScene(spec.scene), 5);
                std::printf("wrote %s (%zu triangles, surface RMSE "
                            "%.4f m)\n",
                            path, mesh.triangleCount(), recon.rmse);
            }
        }
    }
    metrics_session.finish();
    return 0;
}
