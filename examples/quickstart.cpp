/**
 * @file
 * Quickstart: generate a synthetic living-room RGB-D sequence, run
 * the KinectFusion pipeline on it, and print the SLAMBench metric
 * triple (speed, accuracy, simulated power on the Odroid-XU3).
 *
 * Usage: quickstart [frames] [width] [height]
 */

#include <cstdio>
#include <cstdlib>

#include "core/benchmark.hpp"
#include "core/slam_system.hpp"
#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "support/logging.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;

    size_t frames = 40;
    size_t width = 160;
    size_t height = 120;
    if (argc > 1)
        frames = static_cast<size_t>(std::atol(argv[1]));
    if (argc > 2)
        width = static_cast<size_t>(std::atol(argv[2]));
    if (argc > 3)
        height = static_cast<size_t>(std::atol(argv[3]));

    // 1. Generate the dataset (the ICL-NUIM stand-in).
    dataset::SequenceSpec spec;
    spec.name = "living_room-orbit-a";
    spec.numFrames = frames;
    spec.width = width;
    spec.height = height;
    spec.renderRgb = false; // depth-only is enough for SLAM
    std::printf("generating %zu frames of %s at %zux%zu...\n",
                spec.numFrames, spec.name.c_str(), spec.width,
                spec.height);
    const dataset::Sequence sequence = generateSequence(spec);

    // 2. Configure and run the SLAM system.
    kfusion::KFusionConfig config;
    config.volumeResolution = 128; // quick-run default
    core::KFusionSystem system(config);
    std::printf("running %s (%s)...\n", system.name().c_str(),
                config.toString().c_str());
    const core::BenchmarkResult result =
        core::runBenchmark(system, sequence);

    // 3. Report the metric triple.
    std::printf("\n--- results ---\n");
    std::printf("tracked      : %zu/%zu frames\n", result.trackedFrames,
                result.frames);
    std::printf("accuracy     : max ATE %.4f m, mean %.4f m, RMSE %.4f "
                "m (aligned max %.4f m)\n",
                result.ate.maxAte, result.ate.meanAte, result.ate.rmse,
                result.ateAligned.maxAte);
    std::printf("host speed   : %s\n",
                metrics::describeTiming(result.hostTiming).c_str());

    const devices::DeviceModel xu3 = devices::odroidXu3();
    const devices::SimulatedRun sim =
        devices::simulateRun(xu3, result.frameWork);
    std::printf("odroid-xu3   : %.1f ms/frame (%.2f FPS), %.2f W "
                "simulated\n",
                sim.meanFrameSeconds * 1e3, sim.meanFps,
                sim.meanWatts);

    std::printf("\nper-kernel work (totals):\n");
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        std::printf("  %-16s %12.0f items  %10.1f MB  host %7.2f ms\n",
                    kfusion::kernelName(id),
                    result.totalWork.itemsFor(id),
                    result.totalWork.bytesFor(id) / 1e6,
                    result.totalWork.hostSecondsFor(id) * 1e3);
    }
    return 0;
}
