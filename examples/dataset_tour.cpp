/**
 * @file
 * Example: the dataset substrate on its own. Generates frames from
 * both procedural scenes, writes PPM/PGM previews and a TUM-format
 * ground-truth trajectory, and prints depth statistics — everything
 * a user needs to hook their own SLAM system up to the benchmark.
 *
 * Usage: dataset_tour [output_dir]
 */

#include <cstdio>
#include <string>

#include "dataset/generator.hpp"
#include "support/stats.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;

    const std::string dir = argc > 1 ? argv[1] : ".";

    const struct
    {
        const char *label;
        dataset::SceneId scene;
        dataset::TrajectoryPreset trajectory;
    } tours[] = {
        {"living_room", dataset::SceneId::LivingRoom,
         dataset::TrajectoryPreset::OrbitA},
        {"office", dataset::SceneId::Office,
         dataset::TrajectoryPreset::SweepB},
    };

    for (const auto &tour : tours) {
        dataset::SequenceSpec spec;
        spec.scene = tour.scene;
        spec.trajectory = tour.trajectory;
        spec.width = 320;
        spec.height = 240;
        spec.numFrames = 5;
        spec.renderRgb = true;
        const dataset::Sequence seq = generateSequence(spec);

        // Depth statistics of the middle frame.
        const auto &frame = seq.frames[2];
        support::RunningStat depth_stats;
        size_t invalid = 0;
        for (size_t i = 0; i < frame.depthMm.size(); ++i) {
            if (frame.depthMm[i] == 0) {
                ++invalid;
                continue;
            }
            depth_stats.add(frame.depthMm[i] / 1000.0);
        }
        std::printf("%s: %zu frames at %zux%zu\n", tour.label,
                    seq.frames.size(), spec.width, spec.height);
        std::printf("  depth: mean %.2f m, min %.2f m, max %.2f m, "
                    "%.1f%% invalid (sensor holes)\n",
                    depth_stats.mean(), depth_stats.min(),
                    depth_stats.max(),
                    100.0 * static_cast<double>(invalid) /
                        static_cast<double>(frame.depthMm.size()));

        // Previews + ground truth.
        const std::string base = dir + "/" + tour.label;
        support::writePpm(frame.rgb, base + "_rgb.ppm");
        support::Image<float> depth_m(frame.depthMm.width(),
                                      frame.depthMm.height());
        for (size_t i = 0; i < depth_m.size(); ++i)
            depth_m[i] =
                static_cast<float>(frame.depthMm[i]) / 1000.0f;
        support::writePgm(depth_m, base + "_depth.pgm", 0.0f, 4.5f);
        seq.groundTruth.saveTum(base + "_groundtruth.txt");
        std::printf("  wrote %s_rgb.ppm, %s_depth.pgm, "
                    "%s_groundtruth.txt\n",
                    tour.label, tour.label, tour.label);

        // Terminal preview.
        std::printf("%s\n",
                    support::asciiArt(depth_m, 64, 0.5f, 4.0f)
                        .c_str());
    }
    return 0;
}
