/**
 * @file
 * Example: replay a tuned configuration across the simulated phone
 * fleet (the crowdsourced-Android scenario). Shows how per-frame
 * work counts recorded from one pipeline run are re-timed on many
 * device models without rerunning the SLAM system.
 *
 * Usage: mobile_fleet [devices] [frames]
 */

#include <cstdio>
#include <cstdlib>

#include "core/benchmark.hpp"
#include "core/experiment.hpp"
#include "core/slam_system.hpp"
#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "support/stats.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;

    size_t devices_count = 20;
    size_t frames = 12;
    if (argc > 1)
        devices_count = static_cast<size_t>(std::atol(argv[1]));
    if (argc > 2)
        frames = static_cast<size_t>(std::atol(argv[2]));

    dataset::SequenceSpec spec;
    spec.width = 160;
    spec.height = 120;
    spec.numFrames = frames;
    spec.renderRgb = false;
    const dataset::Sequence sequence = generateSequence(spec);

    // Default and tuned configurations (see bench_common.hpp for the
    // provenance of the tuned one).
    kfusion::KFusionConfig default_config;
    default_config.volumeResolution = 128; // scaled for example speed
    kfusion::KFusionConfig tuned_config;
    tuned_config.computeSizeRatio = 2;
    tuned_config.volumeResolution = 64;
    tuned_config.integrationRate = 8;
    tuned_config.mu = 0.16f;
    tuned_config.pyramidIterations = {4, 3, 2};
    tuned_config.renderingRate = 8;

    std::printf("running default and tuned configurations on the "
                "host (%zu frames)...\n",
                frames);
    core::KFusionSystem default_system(default_config);
    core::KFusionSystem tuned_system(tuned_config);
    const auto default_run =
        core::runBenchmark(default_system, sequence);
    const auto tuned_run = core::runBenchmark(tuned_system, sequence);

    const auto fleet = devices::mobileFleet(devices_count, 2018);
    const auto entries = core::replayOnFleet(
        fleet, default_run.frameWork,
        core::volumeBytes(default_config), tuned_run.frameWork,
        core::volumeBytes(tuned_config));

    std::printf("\n%-22s %-10s %12s %12s %9s\n", "device", "class",
                "default(ms)", "tuned(ms)", "speedup");
    support::RunningStat speedups;
    for (const auto &e : entries) {
        if (!e.ranDefault) {
            std::printf("%-22s %-10s %12s %12.2f %9s\n",
                        e.device.c_str(), e.deviceClass.c_str(),
                        "OOM", e.tunedSeconds * 1e3, "-");
            continue;
        }
        std::printf("%-22s %-10s %12.2f %12.2f %8.2fx\n",
                    e.device.c_str(), e.deviceClass.c_str(),
                    e.defaultSeconds * 1e3, e.tunedSeconds * 1e3,
                    e.speedup);
        speedups.add(e.speedup);
    }
    std::printf("\nspeedup across the fleet: min %.2fx, mean %.2fx, "
                "max %.2fx\n",
                speedups.min(), speedups.mean(), speedups.max());
    return 0;
}
