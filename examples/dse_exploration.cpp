/**
 * @file
 * Example: HyperMapper-style design-space exploration through the
 * public API. Runs a small active-learning DSE of the KinectFusion
 * parameters against the simulated Odroid-XU3, prints the Pareto
 * front, and extracts the decision-tree knowledge.
 *
 * This is a scaled-down version of what bench_fig2_dse runs in full;
 * it finishes in about a minute.
 *
 * Usage: dse_exploration [budget] [frames] [threads]
 *
 * The third argument sets the evaluation worker count (0 = hardware
 * concurrency, 1 = serial); the explored configurations are identical
 * either way.
 */

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/config_binding.hpp"
#include "core/experiment.hpp"
#include "dataset/generator.hpp"
#include "devices/fleet.hpp"
#include "hypermapper/knowledge.hpp"

int
main(int argc, char **argv)
{
    using namespace slambench;

    size_t budget = 24;
    size_t frames = 12;
    size_t threads = 0;
    if (argc > 1)
        budget = static_cast<size_t>(std::atol(argv[1]));
    if (argc > 2)
        frames = static_cast<size_t>(std::atol(argv[2]));
    if (argc > 3)
        threads = static_cast<size_t>(std::atol(argv[3]));

    // 1. Workload: a short synthetic living-room sequence.
    dataset::SequenceSpec spec;
    spec.width = 160;
    spec.height = 120;
    spec.numFrames = frames;
    spec.renderRgb = false;
    const dataset::Sequence sequence = generateSequence(spec);

    // 2. Design space + objective (simulated XU3).
    const auto space = core::kfusionParameterSpace();
    const auto xu3 = devices::odroidXu3();
    auto evaluator = core::makeDseEvaluator(space, sequence, xu3);

    // 3. Active learning: half the budget warms up the model.
    hypermapper::ActiveLearningOptions options;
    options.warmupSamples = budget / 2;
    options.iterations = 2;
    options.batchSize = (budget - options.warmupSamples) / 2;
    options.candidatePool = 500;
    options.forest.numTrees = 15;
    options.seed = 7;
    options.threads = threads;

    std::printf("exploring %zu configurations over %zu frames...\n",
                options.warmupSamples +
                    options.iterations * options.batchSize,
                frames);
    const auto result = hypermapper::activeLearning(
        space, evaluator, core::kNumObjectives, options);

    // 4. Report the Pareto front.
    const auto front = hypermapper::paretoFront(result.evaluations);
    std::printf("\nPareto front (%zu of %zu evaluations):\n",
                front.size(), result.evaluations.size());
    std::printf("%10s %10s %8s  %s\n", "s/frame", "maxATE(m)", "W",
                "configuration");
    for (size_t idx : front) {
        const auto &e = result.evaluations[idx];
        std::printf("%10.4f %10.4f %8.2f  %s\n",
                    e.objectives[core::kObjRuntime],
                    e.objectives[core::kObjMaxAte],
                    e.objectives[core::kObjWatts],
                    space.describe(e.point).c_str());
    }

    // 5. Knowledge extraction (the Fig. 2 right-hand pane).
    hypermapper::GoodnessCriteria criteria;
    criteria.minFps = 20.0; // relaxed: short, small workload
    const auto knowledge = hypermapper::extractKnowledge(
        space, result.evaluations, criteria, 3);
    std::printf("\n%zu/%zu configurations meet all requirements; "
                "induced rules:\n%s\n",
                knowledge.goodCount, knowledge.totalCount,
                knowledge.rules.c_str());
    return 0;
}
