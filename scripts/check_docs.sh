#!/usr/bin/env bash
# Documentation gate, two parts:
#
#  1. CLI-flag inventory: every user-facing "--flag" string literal
#     parsed by the bench binaries or slambench_cli must appear
#     somewhere in the markdown docs (README.md, EXPERIMENTS.md,
#     DESIGN.md, docs/*.md). Catches the classic drift where a flag
#     is added or renamed in code and the docs keep describing the
#     old surface. Pure grep, no dependencies.
#
#  2. Doxygen: build the API docs and fail on any warning (the
#     Doxyfile sets WARN_IF_UNDOCUMENTED). Skipped with exit 77
#     (CTest SKIP_RETURN_CODE) when doxygen is not installed so the
#     tier-1 run stays green on minimal containers — the flag
#     inventory above still runs everywhere.
#
# Registered as the `check_docs` CTest entry.
set -u

cd "$(dirname "$0")/.."

# --- 1. CLI-flag inventory -------------------------------------------

# Flags are parsed as string literals ("--frames", ...) in the bench
# sources, the CLI example, and the serve binary; single-dash aliases
# (-h) and pass-through google-benchmark flags (--benchmark_*) are
# not ours to document.
flags=$(grep -hoE '"--[a-z][a-z0-9-]*"' \
            bench/*.cpp bench/*.hpp examples/slambench_cli.cpp \
            examples/slambench_serve.cpp \
        | tr -d '"' | grep -v '^--benchmark' | sort -u)

if [ -z "$flags" ]; then
    echo "check_docs: flag extraction found nothing — pattern rotted?" >&2
    exit 1
fi

docs="README.md EXPERIMENTS.md DESIGN.md docs/*.md"
missing=0
for flag in $flags; do
    # Word-boundary match so --tr does not satisfy --trace (nor the
    # reverse); backslash-escape nothing — flags are [a-z0-9-] only.
    if ! grep -qE -- "$flag(\\b|$)" $docs; then
        echo "check_docs: flag $flag is parsed in code but absent" \
             "from the docs ($docs)" >&2
        missing=$((missing + 1))
    fi
done
if [ "$missing" -gt 0 ]; then
    echo "check_docs: $missing undocumented flag(s)" >&2
    exit 1
fi
echo "check_docs: flag inventory clean ($(echo "$flags" | wc -l) flags)"

# --- 2. Doxygen ------------------------------------------------------

if ! command -v doxygen >/dev/null 2>&1; then
    echo "check_docs: doxygen not installed; skipping" >&2
    exit 77
fi

log=$(mktemp)
trap 'rm -f "$log"' EXIT

if ! doxygen Doxyfile >/dev/null 2>"$log"; then
    echo "check_docs: doxygen failed:" >&2
    cat "$log" >&2
    exit 1
fi

if [ -s "$log" ]; then
    echo "check_docs: doxygen warnings:" >&2
    cat "$log" >&2
    exit 1
fi

echo "check_docs: doxygen clean"
