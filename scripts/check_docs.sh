#!/usr/bin/env bash
# Documentation gate: build the Doxygen docs and fail on any warning
# (the Doxyfile sets WARN_IF_UNDOCUMENTED). Registered as the
# `check_docs` CTest entry; exits 77 (CTest SKIP_RETURN_CODE) when
# doxygen is not installed so the tier-1 run stays green on minimal
# containers.
set -u

cd "$(dirname "$0")/.."

if ! command -v doxygen >/dev/null 2>&1; then
    echo "check_docs: doxygen not installed; skipping" >&2
    exit 77
fi

log=$(mktemp)
trap 'rm -f "$log"' EXIT

if ! doxygen Doxyfile >/dev/null 2>"$log"; then
    echo "check_docs: doxygen failed:" >&2
    cat "$log" >&2
    exit 1
fi

if [ -s "$log" ]; then
    echo "check_docs: doxygen warnings:" >&2
    cat "$log" >&2
    exit 1
fi

echo "check_docs: doxygen clean"
