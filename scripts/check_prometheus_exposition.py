#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (format 0.0.4) page.

Usage:
    check_prometheus_exposition.py METRICS.txt
        [--require FAMILY[:TYPE]]...

Validates the page a `--telemetry-port` server returns from /metrics
(the `telemetry_smoke` CTest entry scrapes a live bench and feeds the
body through this checker):

  * every line is a `# HELP` / `# TYPE` comment, a sample, or blank;
  * metric and label names match the Prometheus name grammar;
  * sample values parse as floats (+Inf / -Inf / NaN allowed);
  * at most one HELP and one TYPE per family, the TYPE line precedes
    the family's samples, and each family's samples are contiguous;
  * counter and gauge families expose at most one sample per label
    set (one unlabeled sample, or one per label set for labeled
    families like `serve_tenant_frames_total{tenant="t03"}`);
  * histogram families expose, per label set, cumulative
    non-decreasing `_bucket` series ending in an `le="+Inf"` bucket
    that equals that label set's `_count`, plus `_sum` and `_count`
    (so both plain histograms and per-tenant labeled histograms
    validate);
  * OpenMetrics-style exemplars (` # {trace_id="..."} value`) are
    accepted on `_bucket` samples only, their label set must parse
    (with a 16-hex-digit trace_id when present), and the exemplar
    value must be a float.

--require FAMILY[:TYPE] (repeatable) additionally asserts the family
exists, optionally with the given declared type.

--require-exemplar FAMILY (repeatable) additionally asserts at least
one `_bucket` sample of the family carries an exemplar — the link a
dashboard follows from a latency bucket to `/tracez?trace_id=...`.

Exit status: 0 clean, 1 lint errors, 2 usage or I/O error.
Stdlib only.
"""

import argparse
import re
import sys


NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_sample_value(text):
    """Float per the exposition grammar, or None when malformed."""
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(text, error):
    """Parse `name="value",...` (no surrounding braces) into a dict."""
    labels = {}
    pos = 0
    while pos < len(text):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[pos:])
        if not match:
            error("malformed label at %r" % text[pos:])
            return labels
        name = match.group(1)
        pos += match.end()
        value = []
        while pos < len(text):
            c = text[pos]
            if c == "\\":
                if pos + 1 >= len(text) or \
                        text[pos + 1] not in ('\\', '"', 'n'):
                    error("invalid escape in label %s" % name)
                    return labels
                value.append(text[pos:pos + 2])
                pos += 2
                continue
            if c == '"':
                break
            value.append(c)
            pos += 1
        if pos >= len(text) or text[pos] != '"':
            error("unterminated label value for %s" % name)
            return labels
        pos += 1
        if name in labels:
            error("duplicate label %s" % name)
        labels[name] = "".join(value)
        if pos < len(text):
            if text[pos] != ",":
                error("expected ',' between labels, got %r"
                      % text[pos])
                return labels
            pos += 1
    return labels


class Family:
    """Lint state of one metric family on the page."""

    def __init__(self, name):
        self.name = name
        self.declared_type = None
        self.has_help = False
        self.samples = []           # (sample_name, labels, value)
        self.exemplars = 0          # _bucket samples with exemplars
        self.closed = False


def sample_family(name, families):
    """Map a sample name to its family: histogram samples attach to
    the declared family their suffix strips down to."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[:-len(suffix)]
            family = families.get(base)
            if family is not None and \
                    family.declared_type == "histogram":
                return base
    return name


def series_key(labels, drop=()):
    """Canonical hashable key for a sample's label set."""
    return tuple(sorted((k, v) for k, v in labels.items()
                        if k not in drop))


def check_histogram(family, error):
    """Validate every labeled series of the histogram independently:
    buckets group by their label set minus `le`, and each group needs
    its own cumulative buckets, +Inf terminator, _sum, and _count."""
    groups = {}  # series_key -> {"buckets": [], "sum": n, "count": v}

    def group(labels, drop=()):
        return groups.setdefault(
            series_key(labels, drop),
            {"buckets": [], "sum": 0, "count": None})

    for sample_name, labels, value in family.samples:
        if sample_name == family.name + "_bucket":
            if "le" not in labels:
                error("%s bucket without le label" % family.name)
                continue
            group(labels, drop=("le",))["buckets"].append(
                (labels["le"], value))
        elif sample_name == family.name + "_sum":
            group(labels)["sum"] += 1
        elif sample_name == family.name + "_count":
            entry = group(labels)
            if entry["count"] is not None:
                error("histogram %s{%s} has duplicate _count"
                      % (family.name, format_series(labels)))
            entry["count"] = value
        else:
            error("unexpected sample %s in histogram %s"
                  % (sample_name, family.name))

    if not groups:
        error("histogram %s has no samples" % family.name)
        return
    for key, entry in groups.items():
        series = family.name
        if key:
            series += "{%s}" % ",".join(
                '%s="%s"' % pair for pair in key)
        buckets = entry["buckets"]
        if not buckets:
            error("histogram series %s has no buckets" % series)
            continue
        previous = -1.0
        for le, value in buckets:
            if value < previous:
                error("histogram %s buckets not cumulative at le=%s"
                      % (series, le))
            previous = value
        if buckets[-1][0] != "+Inf":
            error("histogram %s last bucket le=%s, want +Inf"
                  % (series, buckets[-1][0]))
        if entry["sum"] != 1:
            error("histogram %s has %d _sum samples, want 1"
                  % (series, entry["sum"]))
        if entry["count"] is None:
            error("histogram %s missing _count" % series)
        elif buckets[-1][0] == "+Inf" and \
                buckets[-1][1] != entry["count"]:
            error("histogram %s +Inf bucket %g != _count %g"
                  % (series, buckets[-1][1], entry["count"]))


def format_series(labels):
    return ",".join('%s="%s"' % pair
                    for pair in sorted(labels.items()))


def check_scalar(family, error):
    """Counters and gauges: every sample named exactly the family,
    at most one sample per label set (the renderer emits one
    unlabeled aggregate and/or one series per label set, e.g.
    `serve_tenant_frames_total{tenant="t03"}`)."""
    seen = set()
    for sample_name, labels, _value in family.samples:
        if sample_name != family.name:
            error("%s sample named %s, want %s"
                  % (family.declared_type, sample_name, family.name))
        key = series_key(labels)
        if key in seen:
            error("%s %s has duplicate series {%s}"
                  % (family.declared_type, family.name,
                     format_series(labels)))
        seen.add(key)


def close_family(family, error):
    if family.closed:
        return
    family.closed = True
    if not family.samples:
        error("family %s declared but has no samples" % family.name)
        return
    if family.declared_type == "histogram":
        check_histogram(family, error)
    elif family.declared_type in ("counter", "gauge"):
        check_scalar(family, error)


def lint(lines):
    """@return (errors, families): a list of 'line N: message'
    strings (empty = clean) and the per-family lint state."""
    errors = []
    families = {}
    current = None  # family whose samples are being read

    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")

        def error(message, _lineno=lineno):
            errors.append("line %d: %s" % (_lineno, message))

        if not line.strip():
            continue

        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Free-form comments are legal exposition.
                continue
            keyword, name = parts[1], parts[2]
            if not NAME_RE.match(name):
                error("invalid metric name %r" % name)
                continue
            family = families.get(name)
            if family is None:
                family = families[name] = Family(name)
            if family.samples:
                error("%s for %s after its samples"
                      % (keyword, name))
            if keyword == "HELP":
                if family.has_help:
                    error("duplicate HELP for %s" % name)
                family.has_help = True
            else:
                if len(parts) != 4 or parts[3] not in VALID_TYPES:
                    error("invalid TYPE line for %s" % name)
                    continue
                if family.declared_type is not None:
                    error("duplicate TYPE for %s" % name)
                family.declared_type = parts[3]
            continue

        # OpenMetrics-style exemplar suffix, split off before the
        # sample grammar: `name{...} value # {labels} exemplar_value`.
        exemplar_text = None
        exemplar_split = line.find(" # ")
        if exemplar_split != -1:
            exemplar_text = line[exemplar_split + 3:]
            line = line[:exemplar_split]

        # Sample: name[{labels}] value [timestamp]
        match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)"
                         r"(?:\{(.*)\})?"
                         r" (\S+)(?: (-?\d+))?$", line)
        if not match:
            error("unparseable sample line: %r" % line)
            continue
        sample_name, label_text, value_text = match.group(1, 2, 3)
        labels = parse_labels(label_text, error) if label_text \
            else {}
        value = parse_sample_value(value_text)
        if value is None:
            error("bad sample value %r" % value_text)
            continue

        has_exemplar = False
        if exemplar_text is not None:
            if not sample_name.endswith("_bucket"):
                error("exemplar on non-bucket sample %s"
                      % sample_name)
            exemplar_match = re.match(
                r"\{(.*)\} (\S+)$", exemplar_text)
            if not exemplar_match:
                error("malformed exemplar %r" % exemplar_text)
            else:
                exemplar_labels = parse_labels(
                    exemplar_match.group(1), error)
                trace_id = exemplar_labels.get("trace_id")
                if trace_id is not None and \
                        not re.match(r"[0-9a-f]{16}$", trace_id):
                    error("exemplar trace_id %r is not 16 hex "
                          "digits" % trace_id)
                if parse_sample_value(
                        exemplar_match.group(2)) is None:
                    error("bad exemplar value %r"
                          % exemplar_match.group(2))
                has_exemplar = True

        base = sample_family(sample_name, families)
        family = families.get(base)
        if family is None or family.declared_type is None:
            error("sample %s without preceding TYPE" % sample_name)
            family = families.setdefault(base, Family(base))
        if current is not None and current is not family:
            close_family(current, error)
            if family.closed:
                error("samples of %s are not contiguous" % base)
        current = family
        family.samples.append((sample_name, labels, value))
        if has_exemplar:
            family.exemplars += 1

    if current is not None:
        def error(message):
            errors.append("end of input: %s" % message)
        close_family(current, error)
    for family in families.values():
        if not family.closed and family.samples:
            close_family(family, lambda m: errors.append(m))
    return errors, families


def main():
    parser = argparse.ArgumentParser(
        description="Lint Prometheus text exposition format 0.0.4")
    parser.add_argument("path", help="exposition page to check")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY[:TYPE]",
                        help="assert the family exists (optionally "
                        "with this declared type); repeatable")
    parser.add_argument("--require-exemplar", action="append",
                        default=[], metavar="FAMILY",
                        help="assert at least one _bucket sample of "
                        "the family carries an exemplar; repeatable")
    args = parser.parse_args()

    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise SystemExit("check_prometheus_exposition: %s" % exc)

    errors, families = lint(lines)

    # --require checks run against the declared TYPE lines.
    declared = {}
    for line in lines:
        parts = line.split()
        if len(parts) == 4 and parts[:2] == ["#", "TYPE"]:
            declared[parts[2]] = parts[3]
    for requirement in args.require:
        family, _, wanted_type = requirement.partition(":")
        if family not in declared:
            errors.append("required family %s not found" % family)
        elif wanted_type and declared[family] != wanted_type:
            errors.append("required family %s is %s, want %s"
                          % (family, declared[family], wanted_type))
    for required in args.require_exemplar:
        family = families.get(required)
        if family is None:
            errors.append("exemplar-required family %s not found"
                          % required)
        elif family.exemplars == 0:
            errors.append("family %s has no bucket exemplars"
                          % required)

    if errors:
        for message in errors:
            print("check_prometheus_exposition: %s" % message,
                  file=sys.stderr)
        print("check_prometheus_exposition: %d error(s) in %s"
              % (len(errors), args.path), file=sys.stderr)
        return 1
    print("check_prometheus_exposition: ok (%d families)"
          % len(declared))
    return 0


if __name__ == "__main__":
    sys.exit(main())
