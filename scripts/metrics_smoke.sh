#!/usr/bin/env bash
# Smoke test of the run-report subsystem (docs/OBSERVABILITY.md): run
# the Fig. 1 bench for a handful of frames with --metrics-json /
# --frames-csv on, validate the report against the schema checker,
# verify histogram totals reconcile with mean x count, and check that
# comparing the report against itself yields zero regressions.
#
# Usage: metrics_smoke.sh <path-to-bench_fig1_pipeline> <scripts-dir>
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 <path-to-bench_fig1_pipeline> <scripts-dir>" >&2
    exit 2
fi
bin=$(readlink -f "$1")
scripts=$(readlink -f "$2")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$bin" --frames 6 --metrics-json out.json --frames-csv frames.csv \
    > run.log 2>&1 || {
    echo "metrics_smoke: bench failed:" >&2
    cat run.log >&2
    exit 1
}

[ -s out.json ] || { echo "metrics_smoke: empty out.json" >&2; exit 1; }
[ -s frames.csv ] || { echo "metrics_smoke: empty frames.csv" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
    # Full validation: schema + histogram reconciliation, then the
    # self-comparison must report zero regressions.
    python3 "$scripts/check_metrics_schema.py" out.json frames.csv || {
        echo "metrics_smoke: schema validation failed" >&2
        exit 1
    }
    python3 "$scripts/bench_compare.py" out.json out.json || {
        echo "metrics_smoke: self-comparison found regressions" >&2
        exit 1
    }
    python3 - <<'EOF'
import json

report = json.load(open("out.json"))
run = report["run"]
assert run["frames"] == 6, f"expected 6 frames, got {run['frames']}"
assert run["wall_seconds"] > 0.0, "wall_seconds not positive"
assert run["peak_rss_bytes"] > 0.0, "peak_rss_bytes not positive"

hist = report["histograms"]["frame_wall_seconds"]
assert hist["count"] == 6, f"histogram count {hist['count']} != 6"
assert sum(b[2] for b in hist["buckets"]) == hist["count"]
assert abs(hist["sum"] - hist["mean"] * hist["count"]) <= \
    1e-9 * max(1.0, abs(hist["sum"])), \
    "histogram sum does not reconcile with mean*count"

counters = report["counters"]
assert counters.get("pipeline.frames") == 6, counters
rows = open("frames.csv").read().splitlines()
assert len(rows) == 1 + 6, f"frames.csv rows: {len(rows)}"
print("metrics_smoke: ok (6 frames, %d counters)" % len(counters))
EOF
else
    # Fallback check without python3: key fields present and the
    # frames CSV has a header plus one row per frame.
    grep -q '"schema": "slambench-run-report"' out.json || {
        echo "metrics_smoke: missing schema marker" >&2
        exit 1
    }
    grep -q '"frames": 6' out.json || {
        echo "metrics_smoke: wrong frame count in out.json" >&2
        exit 1
    }
    rows=$(wc -l < frames.csv)
    if [ "$rows" -ne 7 ]; then
        echo "metrics_smoke: frames.csv has $rows lines, want 7" >&2
        exit 1
    fi
    echo "metrics_smoke: ok (grep fallback)"
fi
