#!/usr/bin/env python3
"""Validate a slambench run report against its schema invariants.

Usage: check_metrics_schema.py REPORT.json [FRAMES.csv]

Checks the report produced by `--metrics-json` (and optionally the
matching `--frames-csv` table):

  * required top-level keys, with the right JSON types;
  * schema name/version match this validator;
  * run counters are consistent (tracked <= frames, ...);
  * summary quantiles are ordered (p50 <= p90 <= p99 <= max) and the
    mean lies within [min, max] for every histogram;
  * per-histogram bucket counts sum to the histogram count, buckets
    are disjoint and ascending, and the bucket-estimated total
    (midpoint x count) reconciles with mean x count;
  * the frames CSV (when given) has the documented header and one row
    per frame of the report.

Exit status: 0 = valid, 1 = invalid, 2 = usage/parse error.
Stdlib only.
"""

import csv
import json
import sys

SCHEMA = "slambench-run-report"
SCHEMA_VERSION = 1

FRAMES_CSV_HEADER = [
    "label", "frame", "wall_ms", "preprocess_ms", "track_ms",
    "integrate_ms", "raycast_ms", "ate_m", "tracked", "integrated",
    "sim_joules", "rss_peak_bytes",
]

errors = []


def fail(message):
    errors.append(message)


def require(condition, message):
    if not condition:
        fail(message)
    return condition


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(
        value, bool)


def check_top_level(report):
    required = {
        "schema": str,
        "schema_version": int,
        "generator": str,
        "created_unix": int,
        "git_describe": str,
        "build": dict,
        "config": dict,
        "run": dict,
        "summary": dict,
        "counters": dict,
        "gauges": dict,
        "histograms": dict,
    }
    for key, kind in required.items():
        if not require(key in report, "missing top-level key %r" % key):
            continue
        require(isinstance(report[key], kind),
                "%r should be %s, got %s"
                % (key, kind.__name__, type(report[key]).__name__))

    require(report.get("schema") == SCHEMA,
            "schema is %r, want %r" % (report.get("schema"), SCHEMA))
    require(report.get("schema_version") == SCHEMA_VERSION,
            "schema_version is %r, want %d"
            % (report.get("schema_version"), SCHEMA_VERSION))

    for key in ("build_type", "compiler", "cxx_flags"):
        require(isinstance(report.get("build", {}).get(key), str),
                "build.%s should be a string" % key)


def check_run(report):
    run = report.get("run", {})
    for key in ("wall_seconds", "cpu_seconds", "frames",
                "tracked_frames", "integrated_frames",
                "peak_rss_bytes"):
        require(is_number(run.get(key)),
                "run.%s should be a number" % key)
    frames = run.get("frames", 0)
    if is_number(frames):
        for key in ("tracked_frames", "integrated_frames"):
            value = run.get(key, 0)
            if is_number(value):
                require(0 <= value <= frames,
                        "run.%s=%s outside [0, frames=%s]"
                        % (key, value, frames))
    return frames if is_number(frames) else 0


def check_summary(report):
    summary = report.get("summary", {})
    for key in ("frame_wall_seconds_mean", "frame_wall_seconds_p50",
                "frame_wall_seconds_p90", "frame_wall_seconds_p99",
                "frame_wall_seconds_max", "ate_mean_m", "ate_max_m",
                "tracked_fraction", "sim_joules_total",
                "peak_rss_bytes"):
        require(is_number(summary.get(key)),
                "summary.%s should be a number" % key)

    p50 = summary.get("frame_wall_seconds_p50", 0)
    p90 = summary.get("frame_wall_seconds_p90", 0)
    p99 = summary.get("frame_wall_seconds_p99", 0)
    pmax = summary.get("frame_wall_seconds_max", 0)
    if all(is_number(v) for v in (p50, p90, p99, pmax)):
        require(p50 <= p90 + 1e-12 and p90 <= p99 + 1e-12 and
                p99 <= pmax + 1e-12,
                "summary frame-time quantiles not ordered: "
                "p50=%g p90=%g p99=%g max=%g" % (p50, p90, p99, pmax))
    fraction = summary.get("tracked_fraction", 0)
    if is_number(fraction):
        require(0.0 <= fraction <= 1.0,
                "summary.tracked_fraction=%g outside [0,1]" % fraction)


def check_histograms(report):
    for name, hist in report.get("histograms", {}).items():
        where = "histograms[%r]" % name
        if not require(isinstance(hist, dict),
                       "%s should be an object" % where):
            continue
        for key in ("count", "sum", "mean", "min", "max", "p50",
                    "p90", "p99"):
            require(is_number(hist.get(key)),
                    "%s.%s should be a number" % (where, key))
        buckets = hist.get("buckets")
        if not require(isinstance(buckets, list),
                       "%s.buckets should be a list" % where):
            continue

        count = hist.get("count", 0)
        total = 0
        prev_hi = None
        estimate = 0.0
        all_bounded = True
        for i, bucket in enumerate(buckets):
            bwhere = "%s.buckets[%d]" % (where, i)
            if not require(isinstance(bucket, list) and
                           len(bucket) == 3,
                           "%s should be [lo, hi, count]" % bwhere):
                continue
            lo, hi, n = bucket
            require(is_number(lo), "%s lo not a number" % bwhere)
            require(hi is None or is_number(hi),
                    "%s hi not number/null" % bwhere)
            require(isinstance(n, int) and n >= 0,
                    "%s count not a non-negative int" % bwhere)
            if hi is not None and is_number(lo):
                require(lo < hi, "%s empty range [%s, %s)"
                        % (bwhere, lo, hi))
            if prev_hi is not None and is_number(lo):
                require(lo >= prev_hi - 1e-18,
                        "%s overlaps the previous bucket" % bwhere)
            prev_hi = hi if hi is not None else float("inf")
            if isinstance(n, int):
                total += n
                if hi is None:
                    all_bounded = False
                elif is_number(lo):
                    estimate += n * (lo + hi) / 2.0

        require(total == count,
                "%s bucket counts sum to %d, count says %s"
                % (where, total, count))

        mean = hist.get("mean", 0)
        lo_v = hist.get("min", 0)
        hi_v = hist.get("max", 0)
        if all(is_number(v) for v in (mean, lo_v, hi_v)) and count:
            require(lo_v - 1e-12 <= mean <= hi_v + 1e-12,
                    "%s mean %g outside [min=%g, max=%g]"
                    % (where, mean, lo_v, hi_v))
            for a, b in (("p50", "p90"), ("p90", "p99")):
                if is_number(hist.get(a)) and is_number(hist.get(b)):
                    require(hist[a] <= hist[b] + 1e-12,
                            "%s %s > %s" % (where, a, b))
            # Reconcile the bucket-estimated mass against the exact
            # sum. Geometric buckets are ~33% wide, so midpoints are
            # at most ~17% off per bucket; 25% covers rounding.
            exact = mean * count
            if all_bounded and exact > 0.0:
                require(abs(estimate - exact) <= 0.25 * exact,
                        "%s bucket mass %g does not reconcile with "
                        "mean*count %g" % (where, estimate, exact))


def check_frames_csv(path, frames):
    try:
        with open(path, "r", encoding="utf-8", newline="") as fh:
            rows = list(csv.reader(fh))
    except OSError as exc:
        raise SystemExit("check_metrics_schema: cannot read %s: %s"
                         % (path, exc))
    if not require(rows, "%s is empty" % path):
        return
    require(rows[0] == FRAMES_CSV_HEADER,
            "%s header mismatch: %r" % (path, rows[0]))
    data = rows[1:]
    require(len(data) == frames,
            "%s has %d data rows, report says %d frames"
            % (path, len(data), frames))
    for i, row in enumerate(data):
        if not require(len(row) == len(FRAMES_CSV_HEADER),
                       "%s row %d has %d fields, want %d"
                       % (path, i + 1, len(row),
                          len(FRAMES_CSV_HEADER))):
            continue
        for col in ("tracked", "integrated"):
            value = row[FRAMES_CSV_HEADER.index(col)]
            require(value in ("0", "1"),
                    "%s row %d: %s=%r not 0/1"
                    % (path, i + 1, col, value))


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip().splitlines()[2].strip(),
              file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print("check_metrics_schema: cannot parse %s: %s"
              % (sys.argv[1], exc), file=sys.stderr)
        return 2

    check_top_level(report)
    frames = check_run(report)
    check_summary(report)
    check_histograms(report)
    if len(sys.argv) == 3:
        check_frames_csv(sys.argv[2], frames)

    if errors:
        for message in errors:
            print("check_metrics_schema: %s" % message,
                  file=sys.stderr)
        print("%s: INVALID (%d problem(s))"
              % (sys.argv[1], len(errors)))
        return 1
    print("%s: OK" % sys.argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main())
