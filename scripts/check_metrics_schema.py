#!/usr/bin/env python3
"""Validate a slambench run report against its schema invariants.

Usage: check_metrics_schema.py REPORT.json [FRAMES.csv]
           [--serve [--tenants N]]

Checks the report produced by `--metrics-json` (and optionally the
matching `--frames-csv` table):

  * required top-level keys, with the right JSON types;
  * schema name/version match this validator;
  * run counters are consistent (tracked <= frames, ...);
  * summary quantiles are ordered (p50 <= p90 <= p99 <= max) and the
    mean lies within [min, max] for every histogram;
  * per-histogram bucket counts sum to the histogram count, buckets
    are disjoint and ascending, and the bucket-estimated total
    (midpoint x count) reconciles with mean x count;
  * the optional `pmu` block (present when the run was profiled with
    --pmu) is well-formed: backend/counter names, per-kernel span
    counts, miss rates within [0,1], and bytes_per_second consistent
    with bytes / task_clock_seconds;
  * the frames CSV (when given) has the documented header and one row
    per frame of the report.

--serve additionally validates a slambench_serve run report
(docs/SERVING.md): the serve_* summary block, the per-tenant
`tenant.<id>.device` config params, the `serve.tenant.*{tenant=...}`
labeled registry series, and cross-checks between the serve counters
and the frame table. --tenants N pins the expected tenant count.

Exit status: 0 = valid, 1 = invalid, 2 = usage/parse error.
Stdlib only.
"""

import argparse
import csv
import json
import re
import sys

SCHEMA = "slambench-run-report"
SCHEMA_VERSION = 1

FRAMES_CSV_HEADER = [
    "label", "frame", "wall_ms", "preprocess_ms", "track_ms",
    "integrate_ms", "raycast_ms", "ate_m", "tracked", "integrated",
    "sim_joules", "rss_peak_bytes",
]

errors = []


def fail(message):
    errors.append(message)


def require(condition, message):
    if not condition:
        fail(message)
    return condition


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(
        value, bool)


def check_top_level(report):
    required = {
        "schema": str,
        "schema_version": int,
        "generator": str,
        "created_unix": int,
        "git_describe": str,
        "build": dict,
        "config": dict,
        "run": dict,
        "summary": dict,
        "counters": dict,
        "gauges": dict,
        "histograms": dict,
    }
    for key, kind in required.items():
        if not require(key in report, "missing top-level key %r" % key):
            continue
        require(isinstance(report[key], kind),
                "%r should be %s, got %s"
                % (key, kind.__name__, type(report[key]).__name__))

    require(report.get("schema") == SCHEMA,
            "schema is %r, want %r" % (report.get("schema"), SCHEMA))
    require(report.get("schema_version") == SCHEMA_VERSION,
            "schema_version is %r, want %d"
            % (report.get("schema_version"), SCHEMA_VERSION))

    for key in ("build_type", "compiler", "cxx_flags"):
        require(isinstance(report.get("build", {}).get(key), str),
                "build.%s should be a string" % key)


def check_run(report):
    run = report.get("run", {})
    for key in ("wall_seconds", "cpu_seconds", "frames",
                "tracked_frames", "integrated_frames",
                "peak_rss_bytes"):
        require(is_number(run.get(key)),
                "run.%s should be a number" % key)
    frames = run.get("frames", 0)
    if is_number(frames):
        for key in ("tracked_frames", "integrated_frames"):
            value = run.get(key, 0)
            if is_number(value):
                require(0 <= value <= frames,
                        "run.%s=%s outside [0, frames=%s]"
                        % (key, value, frames))
    return frames if is_number(frames) else 0


def check_summary(report):
    summary = report.get("summary", {})
    for key in ("frame_wall_seconds_mean", "frame_wall_seconds_p50",
                "frame_wall_seconds_p90", "frame_wall_seconds_p99",
                "frame_wall_seconds_max", "ate_mean_m", "ate_max_m",
                "tracked_fraction", "sim_joules_total",
                "peak_rss_bytes"):
        require(is_number(summary.get(key)),
                "summary.%s should be a number" % key)

    p50 = summary.get("frame_wall_seconds_p50", 0)
    p90 = summary.get("frame_wall_seconds_p90", 0)
    p99 = summary.get("frame_wall_seconds_p99", 0)
    pmax = summary.get("frame_wall_seconds_max", 0)
    if all(is_number(v) for v in (p50, p90, p99, pmax)):
        require(p50 <= p90 + 1e-12 and p90 <= p99 + 1e-12 and
                p99 <= pmax + 1e-12,
                "summary frame-time quantiles not ordered: "
                "p50=%g p90=%g p99=%g max=%g" % (p50, p90, p99, pmax))
    fraction = summary.get("tracked_fraction", 0)
    if is_number(fraction):
        require(0.0 <= fraction <= 1.0,
                "summary.tracked_fraction=%g outside [0,1]" % fraction)


def check_histograms(report):
    for name, hist in report.get("histograms", {}).items():
        where = "histograms[%r]" % name
        if not require(isinstance(hist, dict),
                       "%s should be an object" % where):
            continue
        for key in ("count", "sum", "mean", "min", "max", "p50",
                    "p90", "p99"):
            require(is_number(hist.get(key)),
                    "%s.%s should be a number" % (where, key))
        buckets = hist.get("buckets")
        if not require(isinstance(buckets, list),
                       "%s.buckets should be a list" % where):
            continue

        count = hist.get("count", 0)
        total = 0
        prev_hi = None
        estimate = 0.0
        all_bounded = True
        for i, bucket in enumerate(buckets):
            bwhere = "%s.buckets[%d]" % (where, i)
            if not require(isinstance(bucket, list) and
                           len(bucket) == 3,
                           "%s should be [lo, hi, count]" % bwhere):
                continue
            lo, hi, n = bucket
            require(is_number(lo), "%s lo not a number" % bwhere)
            require(hi is None or is_number(hi),
                    "%s hi not number/null" % bwhere)
            require(isinstance(n, int) and n >= 0,
                    "%s count not a non-negative int" % bwhere)
            if hi is not None and is_number(lo):
                require(lo < hi, "%s empty range [%s, %s)"
                        % (bwhere, lo, hi))
            if prev_hi is not None and is_number(lo):
                require(lo >= prev_hi - 1e-18,
                        "%s overlaps the previous bucket" % bwhere)
            prev_hi = hi if hi is not None else float("inf")
            if isinstance(n, int):
                total += n
                if hi is None:
                    all_bounded = False
                elif is_number(lo):
                    estimate += n * (lo + hi) / 2.0

        require(total == count,
                "%s bucket counts sum to %d, count says %s"
                % (where, total, count))

        mean = hist.get("mean", 0)
        lo_v = hist.get("min", 0)
        hi_v = hist.get("max", 0)
        if all(is_number(v) for v in (mean, lo_v, hi_v)) and count:
            require(lo_v - 1e-12 <= mean <= hi_v + 1e-12,
                    "%s mean %g outside [min=%g, max=%g]"
                    % (where, mean, lo_v, hi_v))
            for a, b in (("p50", "p90"), ("p90", "p99")):
                if is_number(hist.get(a)) and is_number(hist.get(b)):
                    require(hist[a] <= hist[b] + 1e-12,
                            "%s %s > %s" % (where, a, b))
            # Reconcile the bucket-estimated mass against the exact
            # sum. Geometric buckets are ~33% wide, so midpoints are
            # at most ~17% off per bucket; 25% covers rounding.
            exact = mean * count
            if all_bounded and exact > 0.0:
                require(abs(estimate - exact) <= 0.25 * exact,
                        "%s bucket mass %g does not reconcile with "
                        "mean*count %g" % (where, estimate, exact))


PMU_COUNTER_NAMES = {
    "cycles", "instructions", "llc_loads", "llc_misses", "branches",
    "branch_misses", "task_clock_ns",
}

PMU_DERIVED_KEYS = {
    "ipc", "llc_miss_rate", "branch_miss_rate",
    "task_clock_seconds", "bytes", "bytes_per_second",
}


def check_pmu(report):
    """The `pmu` block is optional (only --pmu runs emit it); when
    present, every counter field inside a kernel entry is itself
    optional — the backend probe degrades per counter — but whatever
    is there must be internally consistent."""
    if "pmu" not in report:
        return
    pmu = report["pmu"]
    if not require(isinstance(pmu, dict), "pmu should be an object"):
        return
    require(isinstance(pmu.get("backend"), str) and pmu.get("backend"),
            "pmu.backend should be a non-empty string")
    counters = pmu.get("counters")
    if require(isinstance(counters, list),
               "pmu.counters should be a list"):
        for name in counters:
            require(name in PMU_COUNTER_NAMES,
                    "pmu.counters has unknown counter %r" % name)
        if pmu.get("backend") == "null":
            require(counters == [],
                    "null backend must expose no counters")

    kernels = pmu.get("kernels")
    if not require(isinstance(kernels, dict),
                   "pmu.kernels should be an object"):
        return
    for name, entry in kernels.items():
        where = "pmu.kernels[%r]" % name
        if not require(isinstance(entry, dict),
                       "%s should be an object" % where):
            continue
        spans = entry.get("spans")
        require(isinstance(spans, int) and spans >= 0,
                "%s.spans should be a non-negative int" % where)
        for key, value in entry.items():
            if key == "spans":
                continue
            require(key in PMU_COUNTER_NAMES or
                    key in PMU_DERIVED_KEYS,
                    "%s has unknown field %r" % (where, key))
            require(is_number(value) and value >= 0,
                    "%s.%s should be a non-negative number"
                    % (where, key))
        for key in ("llc_miss_rate", "branch_miss_rate"):
            if key in entry and is_number(entry[key]):
                require(0.0 <= entry[key] <= 1.0,
                        "%s.%s=%g outside [0,1]"
                        % (where, key, entry[key]))
        # Derived fields must reconcile with the raw counters they
        # came from (same division the C++ layer performed).
        checks = (
            ("ipc", "instructions", "cycles"),
            ("llc_miss_rate", "llc_misses", "llc_loads"),
            ("branch_miss_rate", "branch_misses", "branches"),
        )
        for derived, num, den in checks:
            if (derived in entry and num in entry and den in entry
                    and is_number(entry[den]) and entry[den] > 0):
                expect = entry[num] / entry[den]
                require(abs(entry[derived] - expect) <=
                        1e-6 * max(1.0, abs(expect)),
                        "%s.%s=%g does not reconcile with %s/%s=%g"
                        % (where, derived, entry[derived], num, den,
                           expect))
        if ("bytes_per_second" in entry and "bytes" in entry
                and "task_clock_seconds" in entry
                and is_number(entry["task_clock_seconds"])
                and entry["task_clock_seconds"] > 0):
            expect = entry["bytes"] / entry["task_clock_seconds"]
            require(abs(entry["bytes_per_second"] - expect) <=
                    1e-6 * max(1.0, abs(expect)),
                    "%s.bytes_per_second=%g does not reconcile with "
                    "bytes/task_clock_seconds=%g"
                    % (where, entry["bytes_per_second"], expect))


SERVE_SUMMARY_KEYS = (
    "serve_ticks", "serve_tenants", "serve_frames_processed",
    "serve_frames_shed", "serve_shed_engaged", "serve_shed_cleared",
    "serve_frame_p99_seconds",
)


def check_serve(report, tenants):
    """slambench_serve reports: multi-tenant summary block, one
    `tenant.<id>.device` config param and one labeled
    `serve.tenant.*` series per tenant, and serve counters that
    reconcile with the run's frame table."""
    require(report.get("generator") == "slambench_serve",
            "generator is %r, want 'slambench_serve'"
            % report.get("generator"))

    summary = report.get("summary", {})
    for key in SERVE_SUMMARY_KEYS:
        if require(is_number(summary.get(key)),
                   "summary.%s should be a number" % key):
            require(summary[key] >= 0,
                    "summary.%s=%g negative" % (key, summary[key]))

    declared = summary.get("serve_tenants", 0)
    if tenants is not None:
        require(declared == tenants,
                "summary.serve_tenants=%s, want %d"
                % (declared, tenants))

    # One device assignment per tenant in the config params, and the
    # ids they imply must each carry labeled per-tenant series.
    config = report.get("config", {})
    ids = sorted(
        m.group(1) for m in
        (re.match(r"tenant\.([^.]+)\.device$", key)
         for key in config) if m)
    if is_number(declared):
        require(len(ids) == int(declared),
                "config lists %d tenant devices, "
                "summary.serve_tenants says %s"
                % (len(ids), declared))

    counters = report.get("counters", {})
    gauges = report.get("gauges", {})
    for tenant_id in ids:
        series = 'serve.tenant.frames{tenant="%s"}' % tenant_id
        require(series in counters,
                "missing labeled counter %s" % series)
    require(is_number(gauges.get("serve.tenants")) and
            gauges.get("serve.tenants") == declared,
            "gauges['serve.tenants']=%r disagrees with "
            "summary.serve_tenants=%s"
            % (gauges.get("serve.tenants"), declared))

    # The per-tenant labeled counters must sum to the aggregate; the
    # aggregate must match both the summary and the frame table.
    processed = summary.get("serve_frames_processed", 0)
    frames = report.get("run", {}).get("frames", 0)
    require(counters.get("serve.frames") == processed,
            "counters['serve.frames']=%r, summary says %s"
            % (counters.get("serve.frames"), processed))
    require(frames == processed,
            "run.frames=%s, summary.serve_frames_processed=%s"
            % (frames, processed))
    require(counters.get("serve.frames_shed", 0) ==
            summary.get("serve_frames_shed", 0),
            "counters['serve.frames_shed']=%r disagrees with "
            "summary.serve_frames_shed=%r"
            % (counters.get("serve.frames_shed", 0),
               summary.get("serve_frames_shed", 0)))
    if ids:
        per_tenant = sum(
            counters.get('serve.tenant.frames{tenant="%s"}'
                         % tenant_id, 0) for tenant_id in ids)
        require(per_tenant == processed,
                "per-tenant frame counters sum to %s, aggregate "
                "is %s" % (per_tenant, processed))

    # Shedding bookkeeping: clears never outnumber engagements, and
    # shed frames imply at least one engagement.
    engaged = summary.get("serve_shed_engaged", 0)
    cleared = summary.get("serve_shed_cleared", 0)
    shed = summary.get("serve_frames_shed", 0)
    if all(is_number(v) for v in (engaged, cleared, shed)):
        require(cleared <= engaged,
                "serve_shed_cleared=%g > serve_shed_engaged=%g"
                % (cleared, engaged))
        if shed > 0:
            require(engaged >= 1,
                    "%g frames shed but no engagement recorded"
                    % shed)


def check_frames_csv(path, frames):
    try:
        with open(path, "r", encoding="utf-8", newline="") as fh:
            rows = list(csv.reader(fh))
    except OSError as exc:
        raise SystemExit("check_metrics_schema: cannot read %s: %s"
                         % (path, exc))
    if not require(rows, "%s is empty" % path):
        return
    require(rows[0] == FRAMES_CSV_HEADER,
            "%s header mismatch: %r" % (path, rows[0]))
    data = rows[1:]
    require(len(data) == frames,
            "%s has %d data rows, report says %d frames"
            % (path, len(data), frames))
    for i, row in enumerate(data):
        if not require(len(row) == len(FRAMES_CSV_HEADER),
                       "%s row %d has %d fields, want %d"
                       % (path, i + 1, len(row),
                          len(FRAMES_CSV_HEADER))):
            continue
        for col in ("tracked", "integrated"):
            value = row[FRAMES_CSV_HEADER.index(col)]
            require(value in ("0", "1"),
                    "%s row %d: %s=%r not 0/1"
                    % (path, i + 1, col, value))


def main():
    parser = argparse.ArgumentParser(
        description="Validate a slambench run report")
    parser.add_argument("report", help="--metrics-json output")
    parser.add_argument("frames_csv", nargs="?", default=None,
                        help="matching --frames-csv table")
    parser.add_argument("--serve", action="store_true",
                        help="validate a slambench_serve report "
                        "(per-tenant params, labeled series, serve "
                        "summary block)")
    parser.add_argument("--tenants", type=int, default=None,
                        metavar="N",
                        help="with --serve: expected tenant count")
    args = parser.parse_args()
    try:
        with open(args.report, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print("check_metrics_schema: cannot parse %s: %s"
              % (args.report, exc), file=sys.stderr)
        return 2

    check_top_level(report)
    frames = check_run(report)
    check_summary(report)
    check_histograms(report)
    check_pmu(report)
    if args.serve:
        check_serve(report, args.tenants)
    if args.frames_csv is not None:
        check_frames_csv(args.frames_csv, frames)

    if errors:
        for message in errors:
            print("check_metrics_schema: %s" % message,
                  file=sys.stderr)
        print("%s: INVALID (%d problem(s))"
              % (args.report, len(errors)))
        return 1
    print("%s: OK" % args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
