#!/usr/bin/env bash
# Smoke test of per-frame request tracing (docs/OBSERVABILITY.md,
# "Request tracing"):
#
#  A. soak slambench_serve with tracing armed at sample rate 0 and an
#     impossible frame-p99 SLO so that EVERY frame breaches: tail
#     retention must keep each trace anyway. Scrape /metrics until a
#     tenant latency histogram carries an OpenMetrics exemplar
#     (` # {trace_id="..."} value`), lint the exposition with
#     --require-exemplar, then follow the exemplar's trace id to
#     /tracez?trace_id=... and require a complete span tree (root
#     "frame" span plus queue_wait and kernel children). Also
#     exercise the tenant/min_ms/limit query filters and the 404
#     path for unknown ids.
#  B. overhead gate: two slambench_cli runs, base vs tracing at the
#     default 1% sample rate, compared via bench_compare.py's
#     --telemetry-overhead-pct gate. Tracing must stay cheap enough
#     to leave on in production.
#
# Usage: trace_query_smoke.sh <slambench_serve> <slambench_cli> \
#            <scripts-dir>
set -eu

if [ $# -ne 3 ]; then
    echo "usage: $0 <slambench_serve> <slambench_cli> <scripts-dir>" \
        >&2
    exit 2
fi
serve=$(readlink -f "$1")
cli=$(readlink -f "$2")
scripts=$(readlink -f "$3")

workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

fail() {
    echo "trace_query_smoke: $*" >&2
    exit 1
}

have_python=0
command -v python3 >/dev/null 2>&1 && have_python=1

scrape() {
    local port="$1" path="$2"
    if [ "$have_python" -eq 1 ]; then
        python3 -c '
import sys, urllib.request
url = "http://127.0.0.1:%s%s" % (sys.argv[1], sys.argv[2])
try:
    with urllib.request.urlopen(url, timeout=5) as response:
        sys.stdout.write(response.read().decode())
except urllib.error.HTTPError as exc:
    sys.stdout.write(exc.read().decode())
    sys.exit(3)
' "$port" "$path"
    else
        exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
        printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
        sed '1,/^\r\{0,1\}$/d' <&3
        exec 3<&- 3>&-
    fi
}

wait_for_port() {
    local pid="$1" log="$2" port=""
    for _ in $(seq 1 600); do
        port=$(sed -n \
            's#.*telemetry: listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
            "$log" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    return 1
}

tenants=4

# --- Phase A: tail retention + exemplar -> /tracez round trip -----

# Sample rate 0 means head sampling keeps NOTHING; the 0.0001 ms p99
# SLO means every frame breaches it, so anything retrievable below
# proves the tail-based always-keep path, not sampling luck.
"$serve" --serve-tenants "$tenants" --serve-ticks 50 \
    --trace-requests --trace-sample-rate 0 \
    --slo-frame-p99-ms 0.0001 \
    --telemetry-port 0 --metrics-json trace_soak.json \
    > soak.log 2>&1 &
soak_pid=$!
pids="$soak_pid"

port=$(wait_for_port "$soak_pid" soak.log) || {
    cat soak.log >&2
    fail "slambench_serve never announced its telemetry port"
}

# Poll /metrics until a tenant latency bucket carries an exemplar.
trace_id=""
for _ in $(seq 1 600); do
    if scrape "$port" /metrics > metrics.txt 2>/dev/null; then
        trace_id=$(sed -n \
            's@^serve_tenant_frame_seconds_bucket.* # {trace_id="\([0-9a-f]\{16\}\)"}.*@\1@p' \
            metrics.txt | head -n 1)
        [ -n "$trace_id" ] && break
    fi
    kill -0 "$soak_pid" 2>/dev/null || break
    sleep 0.1
done
[ -n "$trace_id" ] || {
    cat soak.log >&2
    fail "no exemplar ever appeared on a tenant latency histogram"
}
echo "trace_query_smoke: exemplar trace_id=$trace_id"

if [ "$have_python" -eq 1 ]; then
    python3 "$scripts/check_prometheus_exposition.py" metrics.txt \
        --require serve_tenant_frame_seconds:histogram \
        --require-exemplar serve_tenant_frame_seconds \
        || fail "exemplar-aware exposition lint failed"
fi

# Follow the exemplar to its complete span tree.
scrape "$port" "/tracez?trace_id=$trace_id" > by_id.json \
    || fail "/tracez?trace_id=$trace_id scrape failed"
grep -q '"schema": "slambench-tracez-query"' by_id.json \
    || { cat by_id.json >&2; fail "query response missing schema"; }
grep -q '"matches": 1' by_id.json \
    || { cat by_id.json >&2; fail "exemplar trace id not retained"; }
grep -q "\"trace_id\": \"$trace_id\"" by_id.json \
    || { cat by_id.json >&2; fail "response echoes wrong trace id"; }
grep -q '"slo_breach": true' by_id.json \
    || { cat by_id.json >&2; fail "retained trace lost its SLO flag"; }
grep -q '"name": "frame"' by_id.json \
    || { cat by_id.json >&2; fail "span tree has no root frame span"; }
grep -q '"name": "queue_wait"' by_id.json \
    || { cat by_id.json >&2; fail "span tree has no queue_wait span"; }
grep -q '"category": "kernel"' by_id.json \
    || { cat by_id.json >&2; fail "span tree has no kernel child"; }
grep -q '"children": \[' by_id.json \
    || { cat by_id.json >&2; fail "span tree is flat"; }

# Filtered index queries: by tenant, by floor, bounded by limit.
scrape "$port" "/tracez?tenant=t00&limit=2" > by_tenant.json \
    || fail "/tracez?tenant=t00 scrape failed"
grep -q '"schema": "slambench-tracez-query"' by_tenant.json \
    || fail "tenant query missing schema"
grep -q '"tenant": "t00"' by_tenant.json \
    || { cat by_tenant.json >&2; fail "tenant filter returned none"; }
grep -q '"tenant": "t01"' by_tenant.json \
    && { cat by_tenant.json >&2; fail "tenant filter leaked t01"; }
scrape "$port" "/tracez?min_ms=999999" > by_floor.json \
    || fail "/tracez?min_ms scrape failed"
grep -q '"matches": 0' by_floor.json \
    || { cat by_floor.json >&2; fail "absurd min_ms still matched"; }

# Unknown trace ids answer 404 with a well-formed empty result.
if [ "$have_python" -eq 1 ]; then
    if scrape "$port" "/tracez?trace_id=ffffffffffffffff" \
            > missing.json 2>/dev/null; then
        fail "unknown trace id did not 404"
    fi
    grep -q '"matches": 0' missing.json \
        || { cat missing.json >&2; fail "404 body not empty result"; }
fi

# The plain /tracez index must advertise the tracing state.
scrape "$port" /tracez > index.json || fail "/tracez scrape failed"
grep -q '"request_tracing"' index.json \
    || { cat index.json >&2; fail "index missing request_tracing"; }

wait "$soak_pid" || fail "traced soak exited non-zero"
pids=""
echo "trace_query_smoke: phase A ok (port $port)"

# --- Phase B: tracing overhead gate at default sample rate --------

"$cli" --frames 40 --metrics-json base.json > base.log 2>&1 \
    || { cat base.log >&2; fail "baseline CLI run failed"; }
"$cli" --frames 40 --metrics-json traced.json \
    --trace-requests > traced.log 2>&1 \
    || { cat traced.log >&2; fail "traced CLI run failed"; }

if [ "$have_python" -eq 1 ]; then
    # Wide standard gates: two independent runs carry scheduling
    # noise, so only the dedicated overhead gate decides here.
    python3 "$scripts/bench_compare.py" base.json traced.json \
        --max-frame-time-regress 2.0 --max-ate-regress 2.0 \
        --max-rss-regress 2.0 \
        --telemetry-overhead-pct \
        "${TRACE_SMOKE_OVERHEAD_PCT:-25}" \
        || fail "request-tracing overhead gate failed"
else
    [ -s traced.json ] \
        || fail "traced run wrote no report (grep fallback)"
fi
echo "trace_query_smoke: phase B ok"

echo "trace_query_smoke: ok"
