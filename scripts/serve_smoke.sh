#!/usr/bin/env bash
# Smoke test of the multi-session SLAM service (docs/SERVING.md):
#
#  A. soak slambench_serve with 8 tenants and a live /metrics
#     endpoint; scrape mid-run, require the per-tenant labeled series
#     for every tenant, lint the exposition (label-aware), and check
#     /healthz answers 200 ok;
#  B. stall-injection leg: flood the scheduler pool mid-run with
#     blockers long enough to trip the pool-queue-stall SLO, and
#     assert from the run report that load shedding ENGAGED (frames
#     were shed) and CLEARED (the run kept processing afterwards),
#     with the breach latched on /healthz semantics via slo metrics;
#  C. SIGTERM drain leg: signal a run-until-SIGTERM server mid-soak
#     and require a clean exit 0 with a complete run report, plus a
#     serve-mode aggregate frame-p99 self-comparison gate via
#     bench_compare.py.
#
# Usage: serve_smoke.sh <slambench_serve> <scripts-dir>
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 <slambench_serve> <scripts-dir>" >&2
    exit 2
fi
serve=$(readlink -f "$1")
scripts=$(readlink -f "$2")

workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

fail() {
    echo "serve_smoke: $*" >&2
    exit 1
}

have_python=0
command -v python3 >/dev/null 2>&1 && have_python=1

scrape() {
    local port="$1" path="$2"
    if [ "$have_python" -eq 1 ]; then
        python3 -c '
import sys, urllib.request
url = "http://127.0.0.1:%s%s" % (sys.argv[1], sys.argv[2])
try:
    with urllib.request.urlopen(url, timeout=5) as response:
        sys.stdout.write(response.read().decode())
except urllib.error.HTTPError as exc:
    sys.stdout.write(exc.read().decode())
    sys.exit(3)
' "$port" "$path"
    else
        exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
        printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
        sed '1,/^\r\{0,1\}$/d' <&3
        exec 3<&- 3>&-
    fi
}

wait_for_port() {
    local pid="$1" log="$2" port=""
    for _ in $(seq 1 600); do
        port=$(sed -n \
            's#.*telemetry: listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
            "$log" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    return 1
}

tenants=8

# --- Phase A: multi-tenant soak with per-tenant labels ------------

"$serve" --serve-tenants "$tenants" --serve-ticks 60 \
    --telemetry-port 0 --metrics-json soak.json \
    > soak.log 2>&1 &
soak_pid=$!
pids="$soak_pid"

port=$(wait_for_port "$soak_pid" soak.log) || {
    cat soak.log >&2
    fail "slambench_serve never announced its telemetry port"
}

# Wait for every tenant to have processed at least one frame, so the
# scrape proves live per-tenant attribution, not just registration.
scraped=0
for _ in $(seq 1 600); do
    if scrape "$port" /metrics > metrics.txt 2>/dev/null; then
        live=$(grep -c \
            '^serve_tenant_frames_total{tenant="t[0-9]*"} [1-9]' \
            metrics.txt || true)
        if [ "$live" -ge "$tenants" ]; then
            scraped=1
            break
        fi
    fi
    kill -0 "$soak_pid" 2>/dev/null || break
    sleep 0.1
done
[ "$scraped" -eq 1 ] || {
    cat soak.log >&2
    fail "never saw all $tenants tenants live on /metrics"
}

for i in $(seq 0 $((tenants - 1))); do
    id=$(printf 't%02d' "$i")
    grep -q "^serve_tenant_frames_total{tenant=\"$id\"} [1-9]" \
        metrics.txt \
        || fail "tenant $id missing from /metrics"
    grep -q \
        "^serve_tenant_frame_seconds_bucket{tenant=\"$id\",le=" \
        metrics.txt \
        || fail "tenant $id has no labeled latency histogram"
done
grep -q '^serve_tenants 8$' metrics.txt \
    || fail "serve_tenants gauge wrong"
grep -q '^serve_frames_total [1-9]' metrics.txt \
    || fail "aggregate serve_frames_total missing"

scrape "$port" /healthz > healthz.txt \
    || fail "/healthz scrape failed"
grep -q '^ok$' healthz.txt || {
    cat healthz.txt >&2
    fail "/healthz of a healthy soak is not ok"
}

if [ "$have_python" -eq 1 ]; then
    python3 "$scripts/check_prometheus_exposition.py" metrics.txt \
        --require serve_tenant_frames_total:counter \
        --require serve_tenant_frame_seconds:histogram \
        --require serve_frames_total:counter \
        --require serve_frame_seconds:histogram \
        --require serve_tenants:gauge \
        --require serve_shedding:gauge \
        || fail "labeled exposition lint failed"
fi

wait "$soak_pid" || fail "soak run exited non-zero"
pids=""
if [ "$have_python" -eq 1 ]; then
    python3 "$scripts/check_metrics_schema.py" soak.json \
        --serve --tenants "$tenants" \
        || fail "serve run-report schema validation failed"
fi
echo "serve_smoke: phase A ok (port $port, $tenants tenants)"

# --- Phase B: stall injection -> shedding engages AND clears ------

"$serve" --serve-tenants "$tenants" --serve-ticks 40 \
    --serve-stall-tick 6 --serve-stall-ms 400 \
    --slo-queue-stall-ms 100 \
    --serve-queue-hi 1000 --serve-queue-lo 100 \
    --serve-clear-ticks 3 \
    --metrics-json shed.json > shed.log 2>&1 \
    || { cat shed.log >&2; fail "stall-injection run failed"; }

grep -q 'shedding ENGAGED' shed.log \
    || { cat shed.log >&2; fail "shedding never engaged"; }
grep -q 'shedding cleared' shed.log \
    || { cat shed.log >&2; fail "shedding never cleared"; }
grep -q 'slo: breach slo=pool_queue_stall' shed.log \
    || { cat shed.log >&2; fail "queue-stall SLO never latched"; }

if [ "$have_python" -eq 1 ]; then
    python3 - <<EOF || fail "shedding report validation failed"
import json

report = json.load(open("shed.json"))
summary = report["summary"]
assert summary["serve_tenants"] == $tenants, summary
assert summary["serve_shed_engaged"] >= 1, summary
assert summary["serve_shed_cleared"] >= 1, summary
assert summary["serve_frames_shed"] >= 1, summary
# The run recovered: it processed far more frames than it shed.
assert summary["serve_frames_processed"] > \
    summary["serve_frames_shed"], summary
# The stall is latched in the slo metrics for post-incident scrapes.
counters = report["counters"]
assert counters.get("slo.breaches", 0) >= 1, counters
print("serve_smoke: shed %d frames over %d engagements" %
      (summary["serve_frames_shed"], summary["serve_shed_engaged"]))
EOF
fi
echo "serve_smoke: phase B ok"

# --- Phase C: graceful drain on SIGTERM + p99 gate ----------------

"$serve" --serve-tenants "$tenants" --serve-ticks 0 \
    --telemetry-port 0 --metrics-json drain.json \
    > drain.log 2>&1 &
drain_pid=$!
pids="$drain_pid"

port=$(wait_for_port "$drain_pid" drain.log) || {
    cat drain.log >&2
    fail "drain-leg server never announced its telemetry port"
}
served=0
for _ in $(seq 1 600); do
    if scrape "$port" /metrics 2>/dev/null \
            | grep -q '^serve_frames_total [1-9]'; then
        served=1
        break
    fi
    kill -0 "$drain_pid" 2>/dev/null || break
    sleep 0.1
done
[ "$served" -eq 1 ] || {
    cat drain.log >&2
    fail "drain-leg server never served a frame"
}

kill -TERM "$drain_pid"
status=0
wait "$drain_pid" || status=$?
pids=""
# Graceful drain: TERM is a routine shutdown request for a service,
# so the process must finish the in-flight tick, write its report,
# and exit 0 — NOT die with 143 like the bench binaries.
[ "$status" -eq 0 ] || {
    cat drain.log >&2
    fail "drain exit status $status, want 0"
}
grep -q 'serve: drained after' drain.log \
    || { cat drain.log >&2; fail "no drain log line"; }
[ -s drain.json ] || fail "drained run wrote no report"

if [ "$have_python" -eq 1 ]; then
    python3 "$scripts/check_metrics_schema.py" drain.json \
        --serve --tenants "$tenants" \
        || fail "drained run-report schema validation failed"
    # Serve-mode p99 gate: the soak and the drain leg ran the same
    # tenant mix, so their aggregate frame p99s must be within the
    # (generous, CI-noise-tolerant) serve regression budget.
    python3 "$scripts/bench_compare.py" soak.json drain.json \
        --max-frame-time-regress 10.0 --max-ate-regress 10.0 \
        --max-rss-regress 10.0 \
        --max-serve-p99-regress "${SERVE_SMOKE_P99_REGRESS:-3.0}" \
        || fail "serve p99 gate failed"
fi
echo "serve_smoke: phase C ok"

echo "serve_smoke: ok"
