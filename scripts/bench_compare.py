#!/usr/bin/env python3
"""Compare two slambench metrics reports and flag regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json
        [--max-frame-time-regress FRAC]   (default 0.10)
        [--max-ate-regress FRAC]          (default 0.10)
        [--max-rss-regress FRAC]          (default 0.20)
        [--max-kernel-regress FRAC]       (default 0.25)
        [--telemetry-overhead-pct [PCT]]  (off; bare flag = 1.0)
        [--max-ipc-regress FRAC]          (off)
        [--max-miss-rate-regress FRAC]    (off)
        [--max-serve-p99-regress FRAC]    (off)
        [--max-volume-bytes-regress FRAC] (off)

Both inputs are `--metrics-json` reports of the SAME schema (see
docs/OBSERVABILITY.md). Two schemas are understood:

"slambench-run-report" (pipeline benches) gates on:

  * summary.frame_wall_seconds_mean   (frame time, mean)
  * summary.frame_wall_seconds_p99    (frame time, tail)
  * summary.ate_max_m                 (accuracy)
  * run.peak_rss_bytes                (memory high-water mark)

"slambench-kernel-bench" (bench_kernels) gates every kernel present
in both reports on ns_per_item when both sides report it (work-
normalized, robust to iteration-count changes), falling back to
real_ns_per_iter, against --max-kernel-regress. Microbenchmark noise
is larger than whole-run noise, hence the wider default threshold.
Kernels present on only one side are reported as informational.

--telemetry-overhead-pct arms an extra gate for run reports: the
candidate's summary.frame_wall_seconds_p50 must stay within PCT
percent of the baseline's. The telemetry smoke test uses it to
assert that running with --telemetry-port does not slow the frame
loop down (p50 is the stable center of the distribution, so it
isolates per-frame overhead from tail noise).

--max-ipc-regress and --max-miss-rate-regress arm PMU gates for
kernel-bench reports, reading the per-row `pmu` blocks emitted by
`bench_kernels --pmu`: IPC regresses when it DROPS by more than FRAC
relative to the baseline (lower IPC = worse), and the LLC/branch miss
rates regress when they RISE by more than FRAC. Rows where either
side lacks the counters (null backend, degraded probe) are skipped —
the gates never fail on hosts without hardware counters.

--max-volume-bytes-regress arms a memory gate for kernel-bench
reports: rows carrying a "volume_bytes" field (the sparse TSDF
benches' resident footprint after fusion) must not grow by more than
FRAC over the baseline. This catches allocation-policy regressions —
a sparse volume that starts allocating blocks the integration never
fuses loses its memory advantage without slowing anything down, so
the timing gates alone would miss it. Rows where either side lacks
the field are skipped.

--max-serve-p99-regress arms a serve-mode gate for run reports: the
candidate's summary.serve_frame_p99_seconds (the aggregate
frame-latency tail of a slambench_serve run, see docs/SERVING.md)
must not exceed the baseline's by more than FRAC. Skipped when
either side lacks the key, so mixed serve/bench comparisons still
work.

A metric regresses when the candidate exceeds the baseline by more
than the configured relative threshold. Metrics that are zero or
missing in the baseline are reported as informational only.

Exit status: 0 = no regressions, 1 = at least one regression,
2 = usage or parse error. Stdlib only.
"""

import argparse
import json
import sys


GATES = [
    # (section, key, threshold-option, human label)
    ("summary", "frame_wall_seconds_mean", "max_frame_time_regress",
     "mean frame time"),
    ("summary", "frame_wall_seconds_p99", "max_frame_time_regress",
     "p99 frame time"),
    ("summary", "ate_max_m", "max_ate_regress", "max ATE"),
    ("run", "peak_rss_bytes", "max_rss_regress", "peak RSS"),
]


KNOWN_SCHEMAS = ("slambench-run-report", "slambench-kernel-bench")


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit("bench_compare: cannot read %s: %s"
                         % (path, exc))
    if report.get("schema") not in KNOWN_SCHEMAS:
        raise SystemExit("bench_compare: %s has unknown schema %r "
                         "(want one of %s)"
                         % (path, report.get("schema"),
                            ", ".join(KNOWN_SCHEMAS)))
    return report


def metric(report, section, key):
    value = report.get(section, {}).get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def kernel_metric(entry, key):
    value = entry.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def kernels_by_name(report, path):
    kernels = report.get("kernels")
    if not isinstance(kernels, list):
        raise SystemExit("bench_compare: %s has no kernels list"
                         % path)
    by_name = {}
    for entry in kernels:
        if isinstance(entry, dict) and isinstance(
                entry.get("name"), str):
            # Per-backend rows share a name ("BM_Integrate/64" exists
            # once per kernel backend); key by (name, backend) so
            # each backend's timing is gated independently instead of
            # the last row silently shadowing the others.
            backend = entry.get("backend")
            if not isinstance(backend, str):
                backend = ""
            by_name[(entry["name"], backend)] = entry
    return by_name


def kernel_label(key):
    name, backend = key
    return "%s@%s" % (name, backend) if backend else name


def pmu_metric(entry, key):
    pmu = entry.get("pmu")
    if not isinstance(pmu, dict):
        return None
    return kernel_metric(pmu, key)


def compare_pmu(name, base_entry, cand_entry, args):
    """PMU gates for one kernel row. @return regression count.

    Skips silently when either side lacks the metric: a report from
    a degraded host (null backend, software-only counter set) must
    never fail against a baseline recorded with full counters."""
    regressions = 0
    if args.max_ipc_regress is not None:
        base = pmu_metric(base_entry, "ipc")
        cand = pmu_metric(cand_entry, "ipc")
        if base is not None and cand is not None and base > 0.0:
            # IPC is a goodness metric: gate on the relative DROP.
            delta = (base - cand) / base
            regressed = delta > args.max_ipc_regress
            if regressed:
                regressions += 1
            print("  %-24s IPC baseline %.3f -> candidate %.3f "
                  "(%+.1f%%, limit -%.0f%%)%s"
                  % (name, base, cand, (cand - base) / base * 100.0,
                     args.max_ipc_regress * 100.0,
                     "  REGRESSION" if regressed else ""))
    if args.max_miss_rate_regress is not None:
        for key, label in (("llc_miss_rate", "LLC miss"),
                           ("branch_miss_rate", "branch miss")):
            base = pmu_metric(base_entry, key)
            cand = pmu_metric(cand_entry, key)
            if base is None or cand is None or base <= 0.0:
                continue
            delta = (cand - base) / base
            regressed = delta > args.max_miss_rate_regress
            if regressed:
                regressions += 1
            print("  %-24s %s baseline %.4f -> candidate %.4f "
                  "(%+.1f%%, limit +%.0f%%)%s"
                  % (name, label, base, cand, delta * 100.0,
                     args.max_miss_rate_regress * 100.0,
                     "  REGRESSION" if regressed else ""))
    return regressions


def compare_kernels(args, baseline, candidate):
    """Per-kernel gate for slambench-kernel-bench reports."""
    base_kernels = kernels_by_name(baseline, args.baseline)
    cand_kernels = kernels_by_name(candidate, args.candidate)
    threshold = args.max_kernel_regress

    regressions = 0
    for key in sorted(base_kernels):
        name = kernel_label(key)
        if key not in cand_kernels:
            print("  %-24s missing in candidate -- skipped" % name)
            continue
        base_entry = base_kernels[key]
        cand_entry = cand_kernels[key]
        regressions += compare_pmu(name, base_entry, cand_entry,
                                   args)
        if args.max_volume_bytes_regress is not None:
            base_vb = kernel_metric(base_entry, "volume_bytes")
            cand_vb = kernel_metric(cand_entry, "volume_bytes")
            if (base_vb is not None and cand_vb is not None
                    and base_vb > 0.0):
                delta = (cand_vb - base_vb) / base_vb
                regressed = delta > args.max_volume_bytes_regress
                if regressed:
                    regressions += 1
                print("  %-24s volume bytes baseline %.6g -> "
                      "candidate %.6g (%+.1f%%, limit +%.0f%%)%s"
                      % (name, base_vb, cand_vb, delta * 100.0,
                         args.max_volume_bytes_regress * 100.0,
                         "  REGRESSION" if regressed else ""))
        # ns/item (per voxel visit, per ray, ...) is work-normalized,
        # so it survives iteration-count and culling-rate changes;
        # plain per-iteration time is the fallback.
        base = kernel_metric(base_entry, "ns_per_item")
        cand = kernel_metric(cand_entry, "ns_per_item")
        label = "ns/item"
        if base is None or cand is None:
            base = kernel_metric(base_entry, "real_ns_per_iter")
            cand = kernel_metric(cand_entry, "real_ns_per_iter")
            label = "ns/iter"
        if base is None or cand is None:
            print("  %-24s no comparable timing -- skipped" % name)
            continue
        if base <= 0.0:
            print("  %-24s %s baseline %.6g, candidate %.6g "
                  "(zero baseline, informational)"
                  % (name, label, base, cand))
            continue
        delta = (cand - base) / base
        regressed = delta > threshold
        if regressed:
            regressions += 1
        print("  %-24s %s baseline %.6g -> candidate %.6g "
              "(%+.1f%%, limit +%.0f%%)%s"
              % (name, label, base, cand, delta * 100.0,
                 threshold * 100.0,
                 "  REGRESSION" if regressed else ""))
    for key in sorted(set(cand_kernels) - set(base_kernels)):
        print("  %-24s new in candidate -- informational"
              % kernel_label(key))

    print()
    if regressions:
        print("%d regression(s) detected" % regressions)
        return 1
    print("no regressions")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare two slambench run reports")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-frame-time-regress", type=float,
                        default=0.10, dest="max_frame_time_regress",
                        help="allowed relative frame-time increase")
    parser.add_argument("--max-ate-regress", type=float, default=0.10,
                        dest="max_ate_regress",
                        help="allowed relative max-ATE increase")
    parser.add_argument("--max-rss-regress", type=float, default=0.20,
                        dest="max_rss_regress",
                        help="allowed relative peak-RSS increase")
    parser.add_argument("--max-kernel-regress", type=float,
                        default=0.25, dest="max_kernel_regress",
                        help="allowed relative per-kernel time "
                        "increase (kernel-bench reports)")
    parser.add_argument("--telemetry-overhead-pct", type=float,
                        nargs="?", const=1.0, default=None,
                        dest="telemetry_overhead_pct",
                        metavar="PCT",
                        help="also gate frame_wall_seconds_p50 "
                        "within PCT percent of the baseline "
                        "(bare flag = 1.0)")
    parser.add_argument("--max-ipc-regress", type=float,
                        default=None, dest="max_ipc_regress",
                        metavar="FRAC",
                        help="allowed relative per-kernel IPC drop "
                        "(kernel-bench reports with pmu blocks)")
    parser.add_argument("--max-miss-rate-regress", type=float,
                        default=None, dest="max_miss_rate_regress",
                        metavar="FRAC",
                        help="allowed relative LLC/branch miss-rate "
                        "increase (kernel-bench reports with pmu "
                        "blocks)")
    parser.add_argument("--max-volume-bytes-regress", type=float,
                        default=None,
                        dest="max_volume_bytes_regress",
                        metavar="FRAC",
                        help="allowed relative increase of per-row "
                        "volume_bytes (kernel-bench reports; sparse "
                        "TSDF resident footprint)")
    parser.add_argument("--max-serve-p99-regress", type=float,
                        default=None, dest="max_serve_p99_regress",
                        metavar="FRAC",
                        help="allowed relative increase of "
                        "summary.serve_frame_p99_seconds "
                        "(slambench_serve reports; skipped when "
                        "either side lacks the key)")
    args = parser.parse_args()

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    if baseline.get("schema") != candidate.get("schema"):
        raise SystemExit("bench_compare: schema mismatch: %s is %r, "
                         "%s is %r"
                         % (args.baseline, baseline.get("schema"),
                            args.candidate, candidate.get("schema")))

    if baseline.get("schema") == "slambench-kernel-bench":
        print("baseline : %s (%s, %s kernels)"
              % (args.baseline, baseline.get("git_describe", "?"),
                 len(baseline.get("kernels", []))))
        print("candidate: %s (%s, %s kernels)"
              % (args.candidate, candidate.get("git_describe", "?"),
                 len(candidate.get("kernels", []))))
        print()
        return compare_kernels(args, baseline, candidate)

    print("baseline : %s (%s, %s frames)"
          % (args.baseline, baseline.get("git_describe", "?"),
             baseline.get("run", {}).get("frames", "?")))
    print("candidate: %s (%s, %s frames)"
          % (args.candidate, candidate.get("git_describe", "?"),
             candidate.get("run", {}).get("frames", "?")))
    print()

    regressions = 0
    for section, key, option, label in GATES:
        base = metric(baseline, section, key)
        cand = metric(candidate, section, key)
        threshold = getattr(args, option)
        if base is None or cand is None:
            print("  %-16s missing in %s -- skipped"
                  % (label, "baseline" if base is None
                     else "candidate"))
            continue
        if base <= 0.0:
            print("  %-16s baseline %.6g, candidate %.6g "
                  "(zero baseline, informational)"
                  % (label, base, cand))
            continue
        delta = (cand - base) / base
        regressed = delta > threshold
        if regressed:
            regressions += 1
        print("  %-16s baseline %.6g -> candidate %.6g "
              "(%+.1f%%, limit +%.0f%%)%s"
              % (label, base, cand, delta * 100.0,
                 threshold * 100.0,
                 "  REGRESSION" if regressed else ""))

    if args.telemetry_overhead_pct is not None:
        label = "p50 frame time (telemetry overhead)"
        base = metric(baseline, "summary", "frame_wall_seconds_p50")
        cand = metric(candidate, "summary", "frame_wall_seconds_p50")
        threshold = args.telemetry_overhead_pct / 100.0
        if base is None or cand is None:
            print("  %-16s missing in %s -- skipped"
                  % (label, "baseline" if base is None
                     else "candidate"))
        elif base <= 0.0:
            print("  %-16s baseline %.6g, candidate %.6g "
                  "(zero baseline, informational)"
                  % (label, base, cand))
        else:
            delta = (cand - base) / base
            regressed = delta > threshold
            if regressed:
                regressions += 1
            print("  %-16s baseline %.6g -> candidate %.6g "
                  "(%+.2f%%, limit +%.2f%%)%s"
                  % (label, base, cand, delta * 100.0,
                     threshold * 100.0,
                     "  REGRESSION" if regressed else ""))

    if args.max_serve_p99_regress is not None:
        label = "serve frame p99"
        base = metric(baseline, "summary", "serve_frame_p99_seconds")
        cand = metric(candidate, "summary", "serve_frame_p99_seconds")
        threshold = args.max_serve_p99_regress
        if base is None or cand is None:
            # Non-serve report on either side: the gate does not
            # apply (lets one smoke harness compare both kinds).
            print("  %-16s missing in %s -- skipped"
                  % (label, "baseline" if base is None
                     else "candidate"))
        elif base <= 0.0:
            print("  %-16s baseline %.6g, candidate %.6g "
                  "(zero baseline, informational)"
                  % (label, base, cand))
        else:
            delta = (cand - base) / base
            regressed = delta > threshold
            if regressed:
                regressions += 1
            print("  %-16s baseline %.6g -> candidate %.6g "
                  "(%+.1f%%, limit +%.0f%%)%s"
                  % (label, base, cand, delta * 100.0,
                     threshold * 100.0,
                     "  REGRESSION" if regressed else ""))

    print()
    if regressions:
        print("%d regression(s) detected" % regressions)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
