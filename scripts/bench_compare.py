#!/usr/bin/env python3
"""Compare two slambench run reports and flag regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json
        [--max-frame-time-regress FRAC]   (default 0.10)
        [--max-ate-regress FRAC]          (default 0.10)
        [--max-rss-regress FRAC]          (default 0.20)

Both inputs are `--metrics-json` reports (schema
"slambench-run-report", see docs/OBSERVABILITY.md). The candidate is
compared against the baseline on:

  * summary.frame_wall_seconds_mean   (frame time, mean)
  * summary.frame_wall_seconds_p99    (frame time, tail)
  * summary.ate_max_m                 (accuracy)
  * run.peak_rss_bytes                (memory high-water mark)

A metric regresses when the candidate exceeds the baseline by more
than the configured relative threshold. Metrics that are zero or
missing in the baseline are reported as informational only.

Exit status: 0 = no regressions, 1 = at least one regression,
2 = usage or parse error. Stdlib only.
"""

import argparse
import json
import sys


GATES = [
    # (section, key, threshold-option, human label)
    ("summary", "frame_wall_seconds_mean", "max_frame_time_regress",
     "mean frame time"),
    ("summary", "frame_wall_seconds_p99", "max_frame_time_regress",
     "p99 frame time"),
    ("summary", "ate_max_m", "max_ate_regress", "max ATE"),
    ("run", "peak_rss_bytes", "max_rss_regress", "peak RSS"),
]


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit("bench_compare: cannot read %s: %s"
                         % (path, exc))
    if report.get("schema") != "slambench-run-report":
        raise SystemExit("bench_compare: %s is not a "
                         "slambench-run-report" % path)
    return report


def metric(report, section, key):
    value = report.get(section, {}).get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def main():
    parser = argparse.ArgumentParser(
        description="Compare two slambench run reports")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-frame-time-regress", type=float,
                        default=0.10, dest="max_frame_time_regress",
                        help="allowed relative frame-time increase")
    parser.add_argument("--max-ate-regress", type=float, default=0.10,
                        dest="max_ate_regress",
                        help="allowed relative max-ATE increase")
    parser.add_argument("--max-rss-regress", type=float, default=0.20,
                        dest="max_rss_regress",
                        help="allowed relative peak-RSS increase")
    args = parser.parse_args()

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)

    print("baseline : %s (%s, %s frames)"
          % (args.baseline, baseline.get("git_describe", "?"),
             baseline.get("run", {}).get("frames", "?")))
    print("candidate: %s (%s, %s frames)"
          % (args.candidate, candidate.get("git_describe", "?"),
             candidate.get("run", {}).get("frames", "?")))
    print()

    regressions = 0
    for section, key, option, label in GATES:
        base = metric(baseline, section, key)
        cand = metric(candidate, section, key)
        threshold = getattr(args, option)
        if base is None or cand is None:
            print("  %-16s missing in %s -- skipped"
                  % (label, "baseline" if base is None
                     else "candidate"))
            continue
        if base <= 0.0:
            print("  %-16s baseline %.6g, candidate %.6g "
                  "(zero baseline, informational)"
                  % (label, base, cand))
            continue
        delta = (cand - base) / base
        regressed = delta > threshold
        if regressed:
            regressions += 1
        print("  %-16s baseline %.6g -> candidate %.6g "
              "(%+.1f%%, limit +%.0f%%)%s"
              % (label, base, cand, delta * 100.0,
                 threshold * 100.0,
                 "  REGRESSION" if regressed else ""))

    print()
    if regressions:
        print("%d regression(s) detected" % regressions)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
