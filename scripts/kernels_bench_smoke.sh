#!/usr/bin/env bash
# Smoke test of the kernel-bench report (docs/OBSERVABILITY.md): run a
# fast subset of bench_kernels with --metrics-json on, validate the
# report against the kernel-bench schema checker, sanity-check the
# integrate entries, and check that comparing the report against
# itself yields zero regressions.
#
# Usage: kernels_bench_smoke.sh <path-to-bench_kernels> <scripts-dir>
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 <path-to-bench_kernels> <scripts-dir>" >&2
    exit 2
fi
bin=$(readlink -f "$1")
scripts=$(readlink -f "$2")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# Small volume, short min time: exercises the culled integrate bench
# on every kernel backend, the dense reference, the sparse-volume
# twins, and one image kernel in a couple of seconds. The per-backend
# rows ("BM_Integrate@scalar" and friends) exercise the report's
# backend field and bench_compare's (name, backend) keying; the
# sparse rows exercise the volume/volume_bytes fields and the
# --max-volume-bytes-regress gate.
"$bin" --benchmark_filter='BM_Integrate(Dense)?/64|BM_Integrate(Sparse)?@[^/]+/64|BM_RaycastSparse/64|BM_Mm2Meters/160/120' \
    --benchmark_min_time=0.01 --metrics-json out.json \
    > run.log 2>&1 || {
    echo "kernels_bench_smoke: bench failed:" >&2
    cat run.log >&2
    exit 1
}

[ -s out.json ] || {
    echo "kernels_bench_smoke: empty out.json" >&2
    exit 1
}

if command -v python3 >/dev/null 2>&1; then
    # Full validation: schema + derived-field reconciliation, then
    # the self-comparison must report zero regressions.
    python3 "$scripts/check_kernel_bench_schema.py" out.json || {
        echo "kernels_bench_smoke: schema validation failed" >&2
        exit 1
    }
    python3 "$scripts/bench_compare.py" out.json out.json \
        --max-volume-bytes-regress 0.0 || {
        echo "kernels_bench_smoke: self-comparison found regressions" >&2
        exit 1
    }
    python3 - <<'EOF'
import json

report = json.load(open("out.json"))
kernels = {(k["name"], k.get("backend", "")): k
           for k in report["kernels"]}
assert len(kernels) == len(report["kernels"]), \
    "duplicate (name, backend) rows in report"
for key in (("BM_Integrate/64", "scalar"),
            ("BM_Integrate/64", "simd"),
            ("BM_IntegrateDense/64", ""),
            ("BM_IntegrateSparse/64", "scalar"),
            ("BM_RaycastSparse/64", ""),
            ("BM_Mm2Meters/160/120", "")):
    assert key in kernels, f"{key} missing from report"
for k in report["kernels"]:
    expect = "sparse" if "Sparse" in k["name"] else "dense"
    assert k.get("volume") == expect, \
        f"{k['name']}: volume={k.get('volume')!r}, want {expect!r}"
culled = kernels[("BM_Integrate/64", "scalar")]
dense = kernels[("BM_IntegrateDense/64", "")]
# Culling must do strictly less work per pass than the dense sweep
# (items_per_second is per visited voxel, so compare whole-kernel
# time instead).
assert culled["real_ns_per_iter"] < dense["real_ns_per_iter"], \
    "culled integrate not faster than dense"
# The sparse rows export their resident footprint. (No dense-vs-
# sparse size assertion here: at res 64 the pool's 2 MiB chunk
# granularity is on the order of the whole dense array; the memory
# win is gated at real resolutions by EXPERIMENTS.md runs.)
sparse = kernels[("BM_IntegrateSparse/64", "scalar")]
assert sparse.get("volume_bytes", 0) > 0, \
    "sparse row missing volume_bytes"
print("kernels_bench_smoke: ok (%d kernels)" % len(kernels))
EOF
else
    # Fallback check without python3: schema marker, the expected
    # kernel entries, and at least one per-backend row are present.
    grep -q '"schema": "slambench-kernel-bench"' out.json || {
        echo "kernels_bench_smoke: missing schema marker" >&2
        exit 1
    }
    for name in 'BM_Integrate/64' 'BM_IntegrateDense/64' \
        'BM_Mm2Meters/160/120'; do
        grep -q "\"name\": \"$name\"" out.json || {
            echo "kernels_bench_smoke: $name missing from out.json" >&2
            exit 1
        }
    done
    for backend in scalar simd; do
        grep -q "\"backend\": \"$backend\"" out.json || {
            echo "kernels_bench_smoke: no $backend rows in out.json" >&2
            exit 1
        }
    done
    echo "kernels_bench_smoke: ok (grep fallback)"
fi
