# Render the Fig. 2 left pane from fig2_scatter.csv
# (produced by build/bench/bench_fig2_dse). Usage:
#   gnuplot -e "csv='fig2_scatter.csv'" scripts/plot_fig2.gp
if (!exists("csv")) csv = "fig2_scatter.csv"
set datafile separator ","
set terminal svg size 720,480
set output "fig2_scatter.svg"
set xlabel "Runtime (s/frame, simulated Odroid-XU3)"
set ylabel "Max ATE (m)"
set key top right
set yrange [0:0.12]
# The paper's accuracy limit.
set arrow from graph 0, first 0.05 to graph 1, first 0.05 nohead dt 2
set label "accuracy limit = 0.05 m" at graph 0.02, first 0.053
plot csv using ($3==1 && strcol(1) eq "random"  ? $4 : NaN):5 \
         title "random sampling"  pt 6  ps 0.6 lc rgb "#888888", \
     csv using ($3==1 && strcol(1) eq "active"  ? $4 : NaN):5 \
         title "active learning"  pt 7  ps 0.6 lc rgb "#cc3311", \
     csv using ($3==1 && strcol(1) eq "default" ? $4 : NaN):5 \
         title "default configuration" pt 5 ps 1.4 lc rgb "#0044cc"
