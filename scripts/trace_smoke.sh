#!/usr/bin/env bash
# Smoke test of the tracing subsystem (docs/OBSERVABILITY.md): run
# the Fig. 1 bench for a handful of frames with --trace/--perf-csv on
# and validate that the exports are well-formed — the JSON loads,
# every span begin pairs with an end, and the CSV has the expected
# header and at least one row per kernel that ran.
#
# Usage: trace_smoke.sh <path-to-bench_fig1_pipeline>
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 <path-to-bench_fig1_pipeline>" >&2
    exit 2
fi
bin=$(readlink -f "$1")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$bin" --frames 6 --trace trace.json --perf-csv perf.csv \
    > run.log 2>&1 || {
    echo "trace_smoke: bench failed:" >&2
    cat run.log >&2
    exit 1
}

[ -s trace.json ] || { echo "trace_smoke: empty trace.json" >&2; exit 1; }
[ -s perf.csv ] || { echo "trace_smoke: empty perf.csv" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import collections
import json
import sys

doc = json.load(open("trace.json"))
events = doc["traceEvents"]
assert events, "no trace events"

begins = collections.Counter()
ends = collections.Counter()
for event in events:
    key = (event["tid"], event["name"])
    if event["ph"] == "B":
        begins[key] += 1
    elif event["ph"] == "E":
        ends[key] += 1
assert begins == ends, "unpaired span begin/end events"

kernels = {e["name"] for e in events if e.get("cat") == "kernel"}
for required in ("mm2meters", "bilateral_filter", "track",
                 "integrate", "raycast"):
    assert required in kernels, f"missing kernel span: {required}"

header = open("perf.csv").readline().strip()
assert header == "frame,kernel,spans,host_ms", f"bad header: {header}"
rows = open("perf.csv").read().splitlines()[1:]
assert rows, "perf.csv has no data rows"
print(f"trace_smoke: ok ({len(events)} events, {len(rows)} CSV rows)")
EOF
else
    # Fallback check without python3: paired B/E counts and header.
    b=$(grep -o '"ph":"B"' trace.json | wc -l)
    e=$(grep -o '"ph":"E"' trace.json | wc -l)
    if [ "$b" -eq 0 ] || [ "$b" -ne "$e" ]; then
        echo "trace_smoke: unpaired events (B=$b E=$e)" >&2
        exit 1
    fi
    head -1 perf.csv | grep -q '^frame,kernel,spans,host_ms$' || {
        echo "trace_smoke: bad perf.csv header" >&2
        exit 1
    }
    echo "trace_smoke: ok (B=$b spans)"
fi
