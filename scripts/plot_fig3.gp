# Render the Fig. 3 speed-up histogram from fig3_devices.csv
# (produced by build/bench/bench_fig3_mobile). Usage:
#   gnuplot -e "csv='fig3_devices.csv'" scripts/plot_fig3.gp
if (!exists("csv")) csv = "fig3_devices.csv"
set datafile separator ","
set terminal svg size 720,400
set output "fig3_speedup.svg"
set xlabel "Speed-up of the XU3-tuned configuration"
set ylabel "Devices"
set style fill solid 0.7
binwidth = 1.0
bin(x) = binwidth * floor(x / binwidth) + binwidth / 2.0
set boxwidth binwidth * 0.9
plot csv using (bin($5)):(($6==1 && $7==1) ? 1.0 : 0.0) \
     smooth freq with boxes lc rgb "#0044cc" notitle
