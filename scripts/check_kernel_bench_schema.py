#!/usr/bin/env python3
"""Validate a slambench kernel-bench report against its schema.

Usage: check_kernel_bench_schema.py REPORT.json

Checks the report produced by `bench_kernels --metrics-json` (schema
"slambench-kernel-bench", see docs/OBSERVABILITY.md):

  * required top-level keys, with the right JSON types;
  * schema name/version match this validator;
  * kernel_count equals the length of the kernels list, names are
    non-empty and (name, backend) pairs are unique (per-backend rows
    share a name and carry an optional "backend" string);
  * every kernel carries a "volume" field naming the TSDF volume
    backend it ran against ("dense" or "sparse"), and sparse rows'
    optional "volume_bytes" (resident footprint) is positive;
  * every kernel has positive iterations and positive per-iteration
    times;
  * derived fields reconcile: ns_per_item == 1e9 / items_per_second
    and gb_per_s == bytes_per_second / 1e9 (when present);
  * the optional per-row "pmu" block (--pmu runs) is well-formed:
    known counter/derived field names only, ipc reconciles with
    instructions/cycles, miss rates lie in [0,1], and
    roofline_fraction reconciles with bytes_per_second /
    roofline_bytes_per_second.

Exit status: 0 = valid, 1 = invalid, 2 = usage/parse error.
Stdlib only.
"""

import json
import sys

SCHEMA = "slambench-kernel-bench"
SCHEMA_VERSION = 1

errors = []


def fail(message):
    errors.append(message)


def require(condition, message):
    if not condition:
        fail(message)
    return condition


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(
        value, bool)


def check_top_level(report):
    required = {
        "schema": str,
        "schema_version": int,
        "generator": str,
        "git_describe": str,
        "build_type": str,
        "kernels": list,
        "kernel_count": int,
    }
    for key, kind in required.items():
        if not require(key in report, "missing top-level key %r" % key):
            continue
        require(isinstance(report[key], kind),
                "%r should be %s, got %s"
                % (key, kind.__name__, type(report[key]).__name__))

    require(report.get("schema") == SCHEMA,
            "schema is %r, want %r" % (report.get("schema"), SCHEMA))
    require(report.get("schema_version") == SCHEMA_VERSION,
            "schema_version is %r, want %d"
            % (report.get("schema_version"), SCHEMA_VERSION))

    kernels = report.get("kernels")
    count = report.get("kernel_count")
    if isinstance(kernels, list) and isinstance(count, int):
        require(len(kernels) == count,
                "kernel_count=%d but kernels has %d entries"
                % (count, len(kernels)))


def check_kernels(report):
    kernels = report.get("kernels")
    if not isinstance(kernels, list):
        return
    names = set()
    for i, entry in enumerate(kernels):
        where = "kernels[%d]" % i
        if not require(isinstance(entry, dict),
                       "%s should be an object" % where):
            continue
        name = entry.get("name")
        backend = entry.get("backend", "")
        require(isinstance(backend, str),
                "%s.backend should be a string" % where)
        if "backend" in entry:
            require(isinstance(backend, str) and backend,
                    "%s.backend should be non-empty when present"
                    % where)
        if require(isinstance(name, str) and name,
                   "%s.name should be a non-empty string" % where):
            key = (name, backend if isinstance(backend, str) else "")
            require(key not in names,
                    "%s duplicate kernel (name, backend) %r"
                    % (where, key))
            names.add(key)
            where = ("kernels[%r@%s]" % (name, backend)
                     if backend else "kernels[%r]" % name)

        volume = entry.get("volume")
        require(volume in ("dense", "sparse"),
                "%s.volume should be \"dense\" or \"sparse\", got %r"
                % (where, volume))
        if "volume_bytes" in entry:
            require(is_number(entry["volume_bytes"]) and
                    entry["volume_bytes"] > 0,
                    "%s.volume_bytes should be a positive number"
                    % where)

        iterations = entry.get("iterations")
        require(isinstance(iterations, int) and iterations > 0,
                "%s.iterations should be a positive int" % where)
        for key in ("real_ns_per_iter", "cpu_ns_per_iter"):
            value = entry.get(key)
            require(is_number(value) and value > 0,
                    "%s.%s should be a positive number"
                    % (where, key))

        # items_per_second and ns_per_item come as a pair and must
        # reconcile (same for the byte-rate pair); 0.1% absorbs the
        # %.9g round-trip through the JSON writer.
        has_ips = "items_per_second" in entry
        has_npi = "ns_per_item" in entry
        require(has_ips == has_npi,
                "%s has only one of items_per_second/ns_per_item"
                % where)
        if has_ips and has_npi:
            ips = entry["items_per_second"]
            npi = entry["ns_per_item"]
            if require(is_number(ips) and ips > 0 and
                       is_number(npi) and npi > 0,
                       "%s item rates should be positive numbers"
                       % where):
                require(abs(npi - 1e9 / ips) <= 1e-3 * npi,
                        "%s ns_per_item %g does not reconcile with "
                        "items_per_second %g" % (where, npi, ips))

        has_bps = "bytes_per_second" in entry
        has_gbs = "gb_per_s" in entry
        require(has_bps == has_gbs,
                "%s has only one of bytes_per_second/gb_per_s"
                % where)
        if has_bps and has_gbs:
            bps = entry["bytes_per_second"]
            gbs = entry["gb_per_s"]
            if require(is_number(bps) and bps > 0 and
                       is_number(gbs) and gbs > 0,
                       "%s byte rates should be positive numbers"
                       % where):
                require(abs(gbs - bps / 1e9) <= 1e-3 * gbs,
                        "%s gb_per_s %g does not reconcile with "
                        "bytes_per_second %g" % (where, gbs, bps))

        check_row_pmu(where, entry)


PMU_COUNTER_NAMES = {
    "cycles", "instructions", "llc_loads", "llc_misses", "branches",
    "branch_misses", "task_clock_ns",
}

PMU_DERIVED_KEYS = {
    "ipc", "llc_miss_rate", "branch_miss_rate",
    "task_clock_seconds", "bytes_per_second",
    "roofline_bytes_per_second", "roofline_fraction",
}


def check_row_pmu(where, entry):
    """Validate one row's optional `pmu` block. Every counter field
    is optional (the perf probe degrades per counter and the null
    backend delivers none), but present fields must be consistent."""
    if "pmu" not in entry:
        return
    pmu = entry["pmu"]
    where = "%s.pmu" % where
    if not require(isinstance(pmu, dict),
                   "%s should be an object" % where):
        return
    for key, value in pmu.items():
        require(key in PMU_COUNTER_NAMES or key in PMU_DERIVED_KEYS,
                "%s has unknown field %r" % (where, key))
        require(is_number(value) and value >= 0,
                "%s.%s should be a non-negative number"
                % (where, key))
    for key in ("llc_miss_rate", "branch_miss_rate"):
        if key in pmu and is_number(pmu[key]):
            require(0.0 <= pmu[key] <= 1.0,
                    "%s.%s=%g outside [0,1]" % (where, key, pmu[key]))
    checks = (
        ("ipc", "instructions", "cycles"),
        ("llc_miss_rate", "llc_misses", "llc_loads"),
        ("branch_miss_rate", "branch_misses", "branches"),
        ("roofline_fraction", "bytes_per_second",
         "roofline_bytes_per_second"),
    )
    for derived, num, den in checks:
        if (derived in pmu and num in pmu and den in pmu
                and is_number(pmu[den]) and pmu[den] > 0):
            expect = pmu[num] / pmu[den]
            require(abs(pmu[derived] - expect) <=
                    1e-3 * max(1e-12, abs(expect)),
                    "%s.%s=%g does not reconcile with %s/%s=%g"
                    % (where, derived, pmu[derived], num, den,
                       expect))
    # The roofline pair travels together.
    require(("roofline_fraction" in pmu) ==
            ("roofline_bytes_per_second" in pmu),
            "%s has only one of roofline_fraction/"
            "roofline_bytes_per_second" % where)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[2].strip(),
              file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print("check_kernel_bench_schema: cannot parse %s: %s"
              % (sys.argv[1], exc), file=sys.stderr)
        return 2

    check_top_level(report)
    check_kernels(report)

    if errors:
        for message in errors:
            print("check_kernel_bench_schema: %s" % message,
                  file=sys.stderr)
        print("%s: INVALID (%d problem(s))"
              % (sys.argv[1], len(errors)))
        return 1
    print("%s: OK" % sys.argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main())
