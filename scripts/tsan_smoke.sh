#!/usr/bin/env bash
# Race gate for the concurrency layer: re-run the thread-pool, metrics
# -registry, parallel-DSE, pooled-kernel-parity, sparse-volume,
# telemetry, and request-trace-propagation test groups under
# ThreadSanitizer. Only registered by CMake when the tree was
# configured with SLAMBENCH_SANITIZE=thread, so the binaries passed in
# are already TSan-instrumented; any reported race aborts the test.
#
# Usage: tsan_smoke.sh <support_test> <metrics_test> \
#            <hypermapper_test> <kfusion_parity_test> \
#            <kfusion_sparse_test> <telemetry_test> <trace_test>
set -eu

if [ $# -ne 7 ]; then
    echo "usage: $0 <support_test> <metrics_test>" \
         "<hypermapper_test> <kfusion_parity_test>" \
         "<kfusion_sparse_test> <telemetry_test> <trace_test>" >&2
    exit 2
fi
support_test=$(readlink -f "$1")
metrics_test=$(readlink -f "$2")
hypermapper_test=$(readlink -f "$3")
parity_test=$(readlink -f "$4")
sparse_test=$(readlink -f "$5")
telemetry_test=$(readlink -f "$6")
trace_test=$(readlink -f "$7")

# halt_on_error: the first race fails the run instead of just logging.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

run() {
    local bin="$1" filter="$2"
    echo "tsan_smoke: $(basename "$bin") --gtest_filter=$filter"
    "$bin" --gtest_filter="$filter" --gtest_brief=1 || {
        echo "tsan_smoke: FAILED under TSan: $(basename "$bin") ($filter)" >&2
        exit 1
    }
}

run "$support_test" 'ThreadPool.*'
run "$metrics_test" 'MetricsRegistry.*'
run "$hypermapper_test" '*ParallelMatchesSerial*'
run "$parity_test" '*Pooled*'
# Concurrent block allocation / streaming against the hashed pool.
run "$sparse_test" '*Concurrent*:*Parallel*'
# The seqlock ring, the exposition server against concurrent metric
# writers, and the watchdog; the fork-based CrashDump suite is
# excluded (fork is not meaningful under TSan's runtime).
run "$telemetry_test" 'FlightRecorder.*:TelemetryServer.*:SloWatchdog.*:LiveTelemetry.*'
# Request-trace context propagation across pool task boundaries:
# nested submits, concurrent multi-tenant traces, span-store writers.
run "$trace_test" 'RequestTrace.*'

echo "tsan_smoke: ok"
