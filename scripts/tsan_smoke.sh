#!/usr/bin/env bash
# Race gate for the concurrency layer: re-run the thread-pool, metrics
# -registry, parallel-DSE, and pooled-kernel-parity test groups under
# ThreadSanitizer. Only registered by CMake when the tree was
# configured with SLAMBENCH_SANITIZE=thread, so the binaries passed in
# are already TSan-instrumented; any reported race aborts the test.
#
# Usage: tsan_smoke.sh <support_test> <metrics_test> \
#            <hypermapper_test> <kfusion_parity_test> <telemetry_test>
set -eu

if [ $# -ne 5 ]; then
    echo "usage: $0 <support_test> <metrics_test>" \
         "<hypermapper_test> <kfusion_parity_test>" \
         "<telemetry_test>" >&2
    exit 2
fi
support_test=$(readlink -f "$1")
metrics_test=$(readlink -f "$2")
hypermapper_test=$(readlink -f "$3")
parity_test=$(readlink -f "$4")
telemetry_test=$(readlink -f "$5")

# halt_on_error: the first race fails the run instead of just logging.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

run() {
    local bin="$1" filter="$2"
    echo "tsan_smoke: $(basename "$bin") --gtest_filter=$filter"
    "$bin" --gtest_filter="$filter" --gtest_brief=1 || {
        echo "tsan_smoke: FAILED under TSan: $(basename "$bin") ($filter)" >&2
        exit 1
    }
}

run "$support_test" 'ThreadPool.*'
run "$metrics_test" 'MetricsRegistry.*'
run "$hypermapper_test" '*ParallelMatchesSerial*'
run "$parity_test" '*Pooled*'
# The seqlock ring, the exposition server against concurrent metric
# writers, and the watchdog; the fork-based CrashDump suite is
# excluded (fork is not meaningful under TSan's runtime).
run "$telemetry_test" 'FlightRecorder.*:TelemetryServer.*:SloWatchdog.*:LiveTelemetry.*'

echo "tsan_smoke: ok"
