#!/usr/bin/env bash
# Smoke test of the hardware-counter profiling layer
# (docs/OBSERVABILITY.md "Hardware counters"): run fig1_pipeline and
# a fast bench_kernels subset under --pmu, validate the pmu blocks in
# both report schemas, then force the null backend with
# SLAMBENCH_PMU_DISABLE and assert the same commands still succeed
# with exactly one WARN line and schema-stable reports. The whole
# script must pass on hosts without perf_event_open access (locked
# containers, kernel.perf_event_paranoid >= 3): the perf probe
# degrades per counter and the schema checkers treat every counter
# field as optional.
#
# Usage: pmu_smoke.sh <path-to-bench_fig1_pipeline> \
#                     <path-to-bench_kernels> <scripts-dir>
set -eu

if [ $# -ne 3 ]; then
    echo "usage: $0 <path-to-bench_fig1_pipeline>" \
         "<path-to-bench_kernels> <scripts-dir>" >&2
    exit 2
fi
fig1=$(readlink -f "$1")
kernels=$(readlink -f "$2")
scripts=$(readlink -f "$3")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# --- Leg 1: pipeline run report with --pmu ------------------------

"$fig1" --frames 4 --pmu --metrics-json out.json > run.log 2>&1 || {
    echo "pmu_smoke: fig1_pipeline --pmu failed:" >&2
    cat run.log >&2
    exit 1
}
[ -s out.json ] || { echo "pmu_smoke: empty out.json" >&2; exit 1; }
grep -q '"pmu": {' out.json || {
    echo "pmu_smoke: no pmu block in out.json" >&2
    exit 1
}
grep -q 'pmu: profiling armed (backend ' run.log || {
    echo "pmu_smoke: missing arm line in run.log" >&2
    cat run.log >&2
    exit 1
}

# --- Leg 2: kernel bench report with --pmu ------------------------

"$kernels" --benchmark_filter='BM_Integrate@[^/]+/64' \
    --benchmark_min_time=0.01 --pmu --metrics-json bench.json \
    > bench.log 2>&1 || {
    echo "pmu_smoke: bench_kernels --pmu failed:" >&2
    cat bench.log >&2
    exit 1
}
[ -s bench.json ] || {
    echo "pmu_smoke: empty bench.json" >&2
    exit 1
}
grep -q '"pmu": {' bench.json || {
    echo "pmu_smoke: no per-row pmu blocks in bench.json" >&2
    exit 1
}

# --- Leg 3: forced degradation (null backend) ---------------------
#
# Exactly one WARN (ours carries the [WARN] logging prefix; plain
# "WARNING" lines from the benchmark library don't count) and the
# reports stay schema-stable.

SLAMBENCH_PMU_DISABLE=1 "$fig1" --frames 4 --pmu \
    --metrics-json null.json > null.log 2>&1 || {
    echo "pmu_smoke: degraded fig1_pipeline run failed:" >&2
    cat null.log >&2
    exit 1
}
warns=$(grep -c '\[WARN\]' null.log || true)
if [ "$warns" -ne 1 ]; then
    echo "pmu_smoke: expected exactly 1 WARN, got $warns:" >&2
    grep '\[WARN\]' null.log >&2 || true
    exit 1
fi
grep -q 'disabled by SLAMBENCH_PMU_DISABLE' null.log || {
    echo "pmu_smoke: WARN is not the degradation notice" >&2
    exit 1
}
grep -q '"backend": "null"' null.json || {
    echo "pmu_smoke: degraded report lacks null backend marker" >&2
    exit 1
}
grep -q '"counters": \[\]' null.json || {
    echo "pmu_smoke: degraded report counter list not empty" >&2
    exit 1
}

# --- Validation ---------------------------------------------------

if command -v python3 >/dev/null 2>&1; then
    for report in out.json null.json; do
        python3 "$scripts/check_metrics_schema.py" "$report" || {
            echo "pmu_smoke: schema validation failed: $report" >&2
            exit 1
        }
    done
    python3 "$scripts/check_kernel_bench_schema.py" bench.json || {
        echo "pmu_smoke: kernel-bench schema validation failed" >&2
        exit 1
    }
    # The PMU gates must pass when comparing a report to itself.
    python3 "$scripts/bench_compare.py" bench.json bench.json \
        --max-ipc-regress 0.05 --max-miss-rate-regress 0.05 || {
        echo "pmu_smoke: self-comparison tripped a PMU gate" >&2
        exit 1
    }
    python3 - <<'EOF'
import json

report = json.load(open("out.json"))
pmu = report["pmu"]
assert isinstance(pmu["backend"], str) and pmu["backend"], pmu
assert isinstance(pmu["counters"], list), pmu
kernels = pmu["kernels"]
# The four pipeline kernels all dispatch within 4 frames; each entry
# must carry a span count whatever the backend delivered.
for name, entry in kernels.items():
    assert entry["spans"] >= 1, (name, entry)
if pmu["backend"] != "null" and "task_clock_ns" in pmu["counters"]:
    assert any("task_clock_seconds" in e for e in kernels.values()), \
        "task-clock counter available but no kernel reports it"

null_report = json.load(open("null.json"))
null_pmu = null_report["pmu"]
assert null_pmu["backend"] == "null", null_pmu
assert null_pmu["counters"] == [], null_pmu
assert set(null_pmu["kernels"]) == set(kernels), \
    "degraded report changed the kernel entry set"

bench = json.load(open("bench.json"))
rows = [k for k in bench["kernels"] if "pmu" in k]
assert rows, "no pmu blocks in bench report rows"
print("pmu_smoke: ok (%d pipeline kernels, %d bench rows)"
      % (len(kernels), len(rows)))
EOF
else
    echo "pmu_smoke: ok (grep fallback)"
fi
