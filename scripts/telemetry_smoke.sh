#!/usr/bin/env bash
# Smoke test of the live-telemetry subsystem (docs/OBSERVABILITY.md):
#
#  A. run a fig2_dse sweep with --telemetry-port 0, scrape /metrics
#     while it runs, lint the exposition (requiring the live
#     frame-time histogram and the DSE pool gauges), and check
#     /healthz answers 200 ok;
#  B. SIGTERM a slambench_cli run mid-flight and validate the crash
#     dump JSON the fatal-signal handler writes;
#  C. run the same CLI workload with and without telemetry and gate
#     the frame-time overhead via bench_compare.py
#     (TELEMETRY_SMOKE_OVERHEAD_PCT, default 25% — generous because
#     CI frame times are noisy; the flag's own default is 1%).
#
# Usage: telemetry_smoke.sh <fig2_dse> <slambench_cli> <scripts-dir>
set -eu

if [ $# -ne 3 ]; then
    echo "usage: $0 <fig2_dse> <slambench_cli> <scripts-dir>" >&2
    exit 2
fi
fig2=$(readlink -f "$1")
cli=$(readlink -f "$2")
scripts=$(readlink -f "$3")

workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

fail() {
    echo "telemetry_smoke: $*" >&2
    exit 1
}

have_python=0
command -v python3 >/dev/null 2>&1 && have_python=1

# GET http://127.0.0.1:$1$2 and print the response body to stdout.
scrape() {
    local port="$1" path="$2"
    if [ "$have_python" -eq 1 ]; then
        python3 -c '
import sys, urllib.request
url = "http://127.0.0.1:%s%s" % (sys.argv[1], sys.argv[2])
try:
    with urllib.request.urlopen(url, timeout=5) as response:
        sys.stdout.write(response.read().decode())
except urllib.error.HTTPError as exc:
    sys.stdout.write(exc.read().decode())
    sys.exit(3)
' "$port" "$path"
    else
        # bash fallback: speak HTTP/1.0 over /dev/tcp and strip the
        # response headers.
        exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
        printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
        sed '1,/^\r\{0,1\}$/d' <&3
        exec 3<&- 3>&-
    fi
}

# Poll $2 for the "telemetry: listening" line of process $1 and echo
# the bound port; dies when the process exits before announcing it.
wait_for_port() {
    local pid="$1" log="$2" port=""
    for _ in $(seq 1 200); do
        port=$(sed -n \
            's#.*telemetry: listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
            "$log" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    return 1
}

# --- Phase A: live scrape of a running DSE sweep ------------------

"$fig2" --quick --frames 25 --random 12 --warmup 6 --dse-threads 2 \
    --telemetry-port 0 --metrics-json dse.json \
    > dse.log 2>&1 &
dse_pid=$!
pids="$dse_pid"

port=$(wait_for_port "$dse_pid" dse.log) || {
    cat dse.log >&2
    fail "fig2_dse never announced its telemetry port"
}

# Retry until the sweep has produced live frame metrics and pool
# gauges; each evaluation runs whole pipeline frames, so this
# converges within the first warmup batch.
scraped=0
for _ in $(seq 1 300); do
    if scrape "$port" /metrics > metrics.txt 2>/dev/null \
            && grep -q '^live_frame_wall_seconds_bucket' metrics.txt \
            && grep -q '^dse_pool_occupancy ' metrics.txt; then
        scraped=1
        break
    fi
    kill -0 "$dse_pid" 2>/dev/null || break
    sleep 0.1
done
[ "$scraped" -eq 1 ] || {
    cat dse.log >&2
    fail "never scraped live metrics from the running sweep"
}

scrape "$port" /healthz > healthz.txt \
    || fail "/healthz scrape failed"
grep -q '^ok$' healthz.txt || {
    cat healthz.txt >&2
    fail "/healthz of a healthy run is not ok"
}

if [ "$have_python" -eq 1 ]; then
    python3 "$scripts/check_prometheus_exposition.py" metrics.txt \
        --require live_frame_wall_seconds:histogram \
        --require live_frames_total:counter \
        --require dse_pool_occupancy:gauge \
        --require dse_pool_active_evals:gauge \
        --require process_peak_rss_bytes:gauge \
        || fail "exposition lint failed"
else
    grep -q '^# TYPE live_frame_wall_seconds histogram' metrics.txt \
        || fail "missing live frame-time histogram (grep fallback)"
fi

wait "$dse_pid" || fail "fig2_dse exited non-zero"
pids=""
echo "telemetry_smoke: phase A ok (port $port)"

# --- Phase B: crash dump on SIGTERM -------------------------------

# Enough frames that the run is still going when the signal lands
# (the scrape loop below guarantees events have been recorded
# first), but few enough that the up-front synthetic sequence
# generation stays in the loop's time budget.
"$cli" --frames 150 --telemetry-port 0 --crash-dump crash.json \
    > cli.log 2>&1 &
cli_pid=$!
pids="$cli_pid"

port=$(wait_for_port "$cli_pid" cli.log) || {
    cat cli.log >&2
    fail "slambench_cli never announced its telemetry port"
}
# Long deadline: the CLI generates its synthetic sequence up front
# (~0.2 s/frame) before the first pipeline frame can tick.
recorded=0
for _ in $(seq 1 900); do
    if scrape "$port" /metrics 2>/dev/null \
            | grep -q '^live_frames_total [1-9]'; then
        recorded=1
        break
    fi
    kill -0 "$cli_pid" 2>/dev/null || break
    sleep 0.2
done
[ "$recorded" -eq 1 ] || {
    cat cli.log >&2
    fail "CLI run never recorded a live frame"
}

kill -TERM "$cli_pid"
status=0
wait "$cli_pid" || status=$?
pids=""
[ "$status" -eq $((128 + 15)) ] \
    || fail "CLI exit status $status, want SIGTERM (143)"

[ -s crash.json ] || fail "handler wrote no crash.json"
if [ "$have_python" -eq 1 ]; then
    python3 - <<'EOF' || fail "crash dump validation failed"
import json

dump = json.load(open("crash.json"))
assert dump["schema"] == "slambench-crash-dump", dump["schema"]
assert dump["schema_version"] == 1
assert dump["signal"] == 15, dump["signal"]
assert dump["generator"] == "slambench_cli", dump["generator"]
events = dump["events"]
assert 1 <= len(events) <= 1024, len(events)
assert dump["events_recorded"] >= len(events)
assert any(e["kind"] == "frame" for e in events)
for event in events:
    assert set(event) == {"ns", "kind", "frame", "a", "b",
                          "detail"}, sorted(event)
assert "counters" in dump and "gauges" in dump \
    and "histograms" in dump
hist = dump["histograms"].get("live.frame_wall_seconds")
assert hist and hist["count"] >= 1, hist
print("telemetry_smoke: crash dump ok (%d events)" % len(events))
EOF
else
    grep -q '"schema": "slambench-crash-dump"' crash.json \
        || fail "crash.json missing schema marker (grep fallback)"
fi
echo "telemetry_smoke: phase B ok"

# --- Phase C: telemetry overhead gate -----------------------------

"$cli" --frames 40 --metrics-json base.json > base.log 2>&1 \
    || { cat base.log >&2; fail "baseline CLI run failed"; }
"$cli" --frames 40 --metrics-json with_telemetry.json \
    --telemetry-port 0 > with_telemetry.log 2>&1 \
    || { cat with_telemetry.log >&2; fail "telemetry CLI run failed"; }

if [ "$have_python" -eq 1 ]; then
    # Wide standard gates: two independent runs carry scheduling
    # noise, so only the dedicated overhead gate decides here.
    python3 "$scripts/bench_compare.py" base.json \
        with_telemetry.json \
        --max-frame-time-regress 2.0 --max-ate-regress 2.0 \
        --max-rss-regress 2.0 \
        --telemetry-overhead-pct \
        "${TELEMETRY_SMOKE_OVERHEAD_PCT:-25}" \
        || fail "telemetry overhead gate failed"
else
    [ -s with_telemetry.json ] \
        || fail "telemetry run wrote no report (grep fallback)"
fi
echo "telemetry_smoke: phase C ok"

echo "telemetry_smoke: ok"
