#include "dataset/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace slambench::dataset {

using math::Mat3f;
using math::Quat;

Vec3f
catmullRom(const std::vector<Vec3f> &keys, float t, bool closed)
{
    const size_t n = keys.size();
    if (n == 0)
        return {};
    if (n == 1)
        return keys[0];

    const size_t segments = closed ? n : n - 1;
    float u = std::clamp(t, 0.0f, 1.0f) * static_cast<float>(segments);
    size_t seg = std::min(static_cast<size_t>(u), segments - 1);
    u -= static_cast<float>(seg);

    auto key = [&](long i) -> const Vec3f & {
        if (closed) {
            const long m = static_cast<long>(n);
            return keys[static_cast<size_t>(((i % m) + m) % m)];
        }
        const long clamped =
            std::clamp<long>(i, 0, static_cast<long>(n) - 1);
        return keys[static_cast<size_t>(clamped)];
    };

    const Vec3f &p0 = key(static_cast<long>(seg) - 1);
    const Vec3f &p1 = key(static_cast<long>(seg));
    const Vec3f &p2 = key(static_cast<long>(seg) + 1);
    const Vec3f &p3 = key(static_cast<long>(seg) + 2);

    const float u2 = u * u;
    const float u3 = u2 * u;
    // Uniform Catmull-Rom basis.
    return (p1 * 2.0f + (p2 - p0) * u +
            (p0 * 2.0f - p1 * 5.0f + p2 * 4.0f - p3) * u2 +
            (p1 * 3.0f - p0 - p2 * 3.0f + p3) * u3) *
           0.5f;
}

Trajectory
Trajectory::fromSpline(const TrajectorySpec &spec, size_t num_frames,
                       double fps)
{
    if (spec.positions.size() < 2)
        support::fatal("Trajectory::fromSpline: need >= 2 keyframes");
    if (spec.targets.size() != spec.positions.size())
        support::fatal("Trajectory::fromSpline: positions/targets "
                       "keyframe counts differ");
    if (num_frames == 0)
        support::fatal("Trajectory::fromSpline: need >= 1 frame");

    Trajectory traj;
    const Vec3f up{0.0f, 1.0f, 0.0f};
    const double total_path_frames =
        std::max(1.0, spec.durationSeconds * fps);
    for (size_t i = 0; i < num_frames; ++i) {
        const float t = std::min(
            1.0f, static_cast<float>(i / total_path_frames));
        const Vec3f eye = catmullRom(spec.positions, t, spec.closed);
        Vec3f target = catmullRom(spec.targets, t, spec.closed);
        if ((target - eye).squaredNorm() < 1e-8f)
            target = eye + Vec3f{0.0f, 0.0f, 1.0f};
        traj.append(math::lookAt(eye, target, up),
                    static_cast<double>(i) / fps);
    }
    return traj;
}

bool
Trajectory::saveTum(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "# timestamp tx ty tz qx qy qz qw\n";
    for (size_t i = 0; i < poses_.size(); ++i) {
        const Mat4f &p = poses_[i];
        const Vec3f t = p.translationPart();
        const Quat<float> q = Quat<float>::fromMatrix(p.rotation());
        char line[256];
        std::snprintf(line, sizeof(line),
                      "%.6f %.7f %.7f %.7f %.7f %.7f %.7f %.7f\n",
                      timestamps_[i], t.x, t.y, t.z, q.x, q.y, q.z, q.w);
        out << line;
    }
    return static_cast<bool>(out);
}

bool
Trajectory::loadTum(const std::string &path, Trajectory &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    out = Trajectory();
    std::string line;
    while (std::getline(in, line)) {
        const std::string trimmed = support::trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        std::istringstream ss(trimmed);
        double ts, tx, ty, tz, qx, qy, qz, qw;
        if (!(ss >> ts >> tx >> ty >> tz >> qx >> qy >> qz >> qw))
            return false;
        const Quat<float> q{static_cast<float>(qw), static_cast<float>(qx),
                            static_cast<float>(qy), static_cast<float>(qz)};
        const Mat4f pose = Mat4f::fromRt(
            q.normalized().toMatrix(),
            {static_cast<float>(tx), static_cast<float>(ty),
             static_cast<float>(tz)});
        out.append(pose, ts);
    }
    return out.size() > 0;
}

TrajectorySpec
presetSpec(TrajectoryPreset preset)
{
    TrajectorySpec spec;
    switch (preset) {
      case TrajectoryPreset::OrbitA: {
        // Slow orbit at standing height, always facing the room middle.
        const float r = 1.35f;
        const float h = 1.45f;
        const int n = 8;
        for (int i = 0; i < n; ++i) {
            const float a =
                static_cast<float>(i) / n * 2.0f * static_cast<float>(M_PI);
            spec.positions.push_back(
                {r * std::cos(a), h + 0.08f * std::sin(2.0f * a),
                 r * std::sin(a)});
            spec.targets.push_back(
                {0.35f * std::cos(a + 1.2f), 0.65f,
                 0.35f * std::sin(a + 1.2f)});
        }
        spec.closed = true;
        spec.durationSeconds = 60.0;
        break;
      }
      case TrajectoryPreset::SweepB: {
        // Lateral sweep in front of the sofa, panning across it.
        spec.positions = {{-1.6f, 1.30f, 0.9f},
                          {-0.8f, 1.35f, 1.0f},
                          {0.0f, 1.40f, 1.05f},
                          {0.8f, 1.35f, 1.0f},
                          {1.6f, 1.30f, 0.9f}};
        spec.targets = {{-1.6f, 0.5f, -1.2f},
                        {-1.0f, 0.5f, -1.2f},
                        {-0.2f, 0.55f, -1.0f},
                        {0.4f, 0.6f, -0.6f},
                        {1.0f, 0.65f, 0.2f}};
        spec.closed = false;
        spec.durationSeconds = 20.0;
        break;
      }
      case TrajectoryPreset::CloseupC: {
        // Approach the coffee table then pull back toward the shelf.
        spec.positions = {{-0.6f, 1.5f, -0.9f},
                          {0.1f, 1.25f, -0.35f},
                          {0.55f, 1.05f, 0.0f},
                          {0.3f, 1.25f, 0.9f},
                          {-0.5f, 1.45f, 1.1f}};
        spec.targets = {{0.9f, 0.72f, 0.5f},
                        {1.0f, 0.72f, 0.5f},
                        {1.05f, 0.70f, 0.55f},
                        {0.4f, 1.0f, 2.2f},
                        {-0.2f, 1.2f, 2.2f}};
        spec.closed = false;
        spec.durationSeconds = 20.0;
        break;
      }
    }
    return spec;
}

bool
parsePreset(const std::string &name, TrajectoryPreset &out)
{
    const std::string n = support::toLower(support::trim(name));
    if (n == "orbit-a" || n == "lr-a" || n == "a") {
        out = TrajectoryPreset::OrbitA;
        return true;
    }
    if (n == "sweep-b" || n == "lr-b" || n == "b") {
        out = TrajectoryPreset::SweepB;
        return true;
    }
    if (n == "closeup-c" || n == "lr-c" || n == "c") {
        out = TrajectoryPreset::CloseupC;
        return true;
    }
    return false;
}

} // namespace slambench::dataset
