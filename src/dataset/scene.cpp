#include "dataset/scene.hpp"

namespace slambench::dataset {

namespace {

Primitive
box(const char *name, Vec3f center, Vec3f half, support::Rgb8 color,
    float yaw = 0.0f, float rounding = 0.0f)
{
    Primitive p;
    p.kind = PrimitiveKind::Box;
    p.name = name;
    p.center = center;
    p.params = half;
    p.albedo = color;
    p.yaw = yaw;
    p.rounding = rounding;
    return p;
}

Primitive
sphere(const char *name, Vec3f center, float radius, support::Rgb8 color)
{
    Primitive p;
    p.kind = PrimitiveKind::Sphere;
    p.name = name;
    p.center = center;
    p.params = {radius, 0.0f, 0.0f};
    p.albedo = color;
    return p;
}

Primitive
cylinder(const char *name, Vec3f center, float radius, float half_height,
         support::Rgb8 color)
{
    Primitive p;
    p.kind = PrimitiveKind::Cylinder;
    p.name = name;
    p.center = center;
    p.params = {radius, half_height, 0.0f};
    p.albedo = color;
    return p;
}

Primitive
roomShell(Vec3f half, support::Rgb8 color)
{
    Primitive p;
    p.kind = PrimitiveKind::InvertedBox;
    p.name = "room";
    p.center = {0.0f, half.y, 0.0f};
    p.params = half;
    p.albedo = color;
    return p;
}

} // namespace

Scene
livingRoomScene()
{
    Scene scene;
    scene.setFarClip(12.0f);

    // Room shell: 4.8 x 4.8 m floor plan, 2.5 m ceiling.
    scene.add(roomShell({2.28f, 1.22f, 2.28f}, {225, 218, 205}));

    // Coffee table: top plus four legs.
    scene.add(box("table_top", {1.0f, 0.72f, 0.5f}, {0.5f, 0.025f, 0.35f},
                  {140, 95, 60}, 0.3f, 0.005f));
    const float leg_r = 0.03f;
    const float leg_h = 0.35f;
    const support::Rgb8 leg_color{110, 75, 45};
    scene.add(cylinder("table_leg0", {0.62f, leg_h, 0.30f}, leg_r, leg_h,
                       leg_color));
    scene.add(cylinder("table_leg1", {1.38f, leg_h, 0.30f}, leg_r, leg_h,
                       leg_color));
    scene.add(cylinder("table_leg2", {0.62f, leg_h, 0.70f}, leg_r, leg_h,
                       leg_color));
    scene.add(cylinder("table_leg3", {1.38f, leg_h, 0.70f}, leg_r, leg_h,
                       leg_color));

    // Sofa: seat, backrest, armrests.
    scene.add(box("sofa_seat", {-1.3f, 0.25f, -1.2f}, {0.9f, 0.25f, 0.45f},
                  {60, 90, 150}, 0.0f, 0.03f));
    scene.add(box("sofa_back", {-1.3f, 0.70f, -1.58f}, {0.9f, 0.30f, 0.10f},
                  {55, 82, 140}, 0.0f, 0.03f));
    scene.add(box("sofa_arm0", {-2.12f, 0.45f, -1.2f}, {0.10f, 0.22f, 0.45f},
                  {50, 76, 130}, 0.0f, 0.03f));
    scene.add(box("sofa_arm1", {-0.48f, 0.45f, -1.2f}, {0.10f, 0.22f, 0.45f},
                  {50, 76, 130}, 0.0f, 0.03f));

    // Bookshelf against the +z wall.
    scene.add(box("shelf", {-0.2f, 1.0f, 2.22f}, {1.0f, 1.0f, 0.16f},
                  {120, 85, 55}, 0.0f, 0.0f));
    scene.add(box("shelf_books", {-0.2f, 1.55f, 2.02f}, {0.8f, 0.18f, 0.06f},
                  {170, 60, 60}));

    // Floor lamp in the corner.
    scene.add(cylinder("lamp_pole", {1.9f, 0.7f, -1.9f}, 0.025f, 0.7f,
                       {60, 60, 60}));
    scene.add(sphere("lamp_shade", {1.9f, 1.55f, -1.9f}, 0.22f,
                     {240, 225, 160}));

    // Clutter: a ball and a low storage cube.
    scene.add(sphere("ball", {0.25f, 0.15f, -0.45f}, 0.15f, {190, 60, 50}));
    scene.add(box("crate", {-1.9f, 0.2f, 1.4f}, {0.22f, 0.2f, 0.22f},
                  {90, 140, 90}, 0.5f, 0.01f));

    // Rug (very low box; gives the floor texture in depth).
    scene.add(box("rug", {0.2f, 0.006f, -0.2f}, {1.2f, 0.006f, 0.9f},
                  {170, 150, 120}));

    return scene;
}

Scene
officeScene()
{
    Scene scene;
    scene.setFarClip(12.0f);

    scene.add(roomShell({2.28f, 1.22f, 2.28f}, {210, 212, 215}));

    // Desk along the -x wall.
    scene.add(box("desk_top", {-1.7f, 0.74f, 0.0f}, {0.4f, 0.02f, 1.1f},
                  {150, 120, 90}));
    scene.add(box("desk_side0", {-1.7f, 0.37f, -0.95f}, {0.38f, 0.37f, 0.02f},
                  {140, 110, 80}));
    scene.add(box("desk_side1", {-1.7f, 0.37f, 0.95f}, {0.38f, 0.37f, 0.02f},
                  {140, 110, 80}));

    // Monitor on the desk.
    scene.add(box("monitor", {-1.85f, 1.05f, 0.0f}, {0.03f, 0.17f, 0.28f},
                  {30, 30, 35}));

    // Filing cabinet.
    scene.add(box("cabinet", {1.8f, 0.6f, 1.7f}, {0.3f, 0.6f, 0.35f},
                  {120, 125, 130}, -0.4f));

    // Structural pillar.
    scene.add(cylinder("pillar", {1.2f, 1.25f, -1.4f}, 0.18f, 1.25f,
                       {190, 188, 182}));

    // Office chair: seat + back.
    scene.add(box("chair_seat", {-0.9f, 0.45f, 0.0f}, {0.25f, 0.03f, 0.25f},
                  {45, 45, 50}));
    scene.add(box("chair_back", {-0.65f, 0.75f, 0.0f}, {0.03f, 0.28f, 0.25f},
                  {45, 45, 50}));
    scene.add(cylinder("chair_pole", {-0.9f, 0.22f, 0.0f}, 0.03f, 0.22f,
                       {70, 70, 75}));

    // Waste bin.
    scene.add(cylinder("bin", {-1.9f, 0.18f, -1.6f}, 0.14f, 0.18f,
                       {100, 105, 110}));

    return scene;
}

} // namespace slambench::dataset
