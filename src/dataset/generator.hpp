#ifndef SLAMBENCH_DATASET_GENERATOR_HPP
#define SLAMBENCH_DATASET_GENERATOR_HPP

/**
 * @file
 * End-to-end dataset generation: scene + trajectory + renderer +
 * sensor model = an RGB-D sequence with exact ground truth, the
 * synthetic equivalent of an ICL-NUIM sequence.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/noise.hpp"
#include "dataset/renderer.hpp"
#include "dataset/scene.hpp"
#include "dataset/trajectory.hpp"
#include "math/camera.hpp"

namespace slambench::dataset {

/** One sensor frame as the SLAM pipeline consumes it. */
struct Frame
{
    /** Depth in millimeters; 0 marks an invalid pixel. */
    support::Image<uint16_t> depthMm;
    /** Color image (may be empty when RGB is disabled). */
    support::Image<support::Rgb8> rgb;
    /** Capture time, seconds. */
    double timestamp = 0.0;
};

/** Which procedural scene a sequence is rendered from. */
enum class SceneId {
    LivingRoom,
    Office,
};

/** Full specification of a synthetic sequence. */
struct SequenceSpec
{
    std::string name = "living_room-orbit-a";
    SceneId scene = SceneId::LivingRoom;
    TrajectoryPreset trajectory = TrajectoryPreset::OrbitA;
    size_t width = 320;
    size_t height = 240;
    /** Horizontal field of view, radians (Kinect is ~1.02 rad). */
    float hfovRad = 1.02f;
    size_t numFrames = 60;
    double fps = 30.0;
    /**
     * Camera speed multiplier: divides the preset trajectory's
     * duration, making per-frame motion proportionally larger.
     * 1.0 reproduces the preset's gentle handheld pace; benchmark
     * workloads use >1 so aggressive configurations actually lose
     * tracking (the trade-off the DSE explores).
     */
    double trajectorySpeedup = 1.0;
    /** Apply the Kinect sensor model (noise/dropouts/quantization). */
    bool sensorNoise = true;
    DepthNoiseOptions noise;
    /** Render RGB images (depth-only runs are faster). */
    bool renderRgb = true;
    /** Seed of the sensor-noise stream. */
    uint64_t seed = 42;
};

/** A generated RGB-D sequence with ground truth. */
struct Sequence
{
    SequenceSpec spec;
    math::CameraIntrinsics intrinsics;
    std::vector<Frame> frames;
    /** Ground-truth camera-to-world pose per frame. */
    Trajectory groundTruth;
};

/**
 * Render a full sequence per @p spec. Deterministic given the spec.
 *
 * @param spec What to generate.
 * @return frames, intrinsics, and ground-truth trajectory.
 */
Sequence generateSequence(const SequenceSpec &spec);

/** @return the scene object referenced by @p id. */
Scene makeScene(SceneId id);

} // namespace slambench::dataset

#endif // SLAMBENCH_DATASET_GENERATOR_HPP
