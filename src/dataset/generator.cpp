#include "dataset/generator.hpp"

#include "support/logging.hpp"

namespace slambench::dataset {

Scene
makeScene(SceneId id)
{
    switch (id) {
      case SceneId::LivingRoom:
        return livingRoomScene();
      case SceneId::Office:
        return officeScene();
    }
    support::panic("makeScene: unknown scene id");
}

Sequence
generateSequence(const SequenceSpec &spec)
{
    Sequence seq;
    seq.spec = spec;
    seq.intrinsics = math::CameraIntrinsics::fromFov(
        spec.width, spec.height, spec.hfovRad);

    const Scene scene = makeScene(spec.scene);
    TrajectorySpec traj_spec = presetSpec(spec.trajectory);
    if (spec.trajectorySpeedup > 0.0)
        traj_spec.durationSeconds /= spec.trajectorySpeedup;
    seq.groundTruth =
        Trajectory::fromSpline(traj_spec, spec.numFrames, spec.fps);

    support::Rng rng(spec.seed);
    RenderOptions render_options;
    render_options.shadeRgb = spec.renderRgb;

    seq.frames.reserve(spec.numFrames);
    for (size_t i = 0; i < spec.numFrames; ++i) {
        const RenderResult rendered = renderFrame(
            scene, seq.intrinsics, seq.groundTruth.pose(i),
            render_options);

        Frame frame;
        frame.timestamp = seq.groundTruth.timestamp(i);
        if (spec.sensorNoise) {
            frame.depthMm = applySensorModel(
                rendered.depth, rendered.cosIncidence, spec.noise, rng);
        } else {
            frame.depthMm =
                depthToMillimeters(rendered.depth, spec.noise.maxRange);
        }
        if (spec.renderRgb)
            frame.rgb = rendered.rgb;
        seq.frames.push_back(std::move(frame));
    }
    return seq;
}

} // namespace slambench::dataset
