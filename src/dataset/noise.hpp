#ifndef SLAMBENCH_DATASET_NOISE_HPP
#define SLAMBENCH_DATASET_NOISE_HPP

/**
 * @file
 * Structured-light (Kinect-style) depth sensor noise model.
 *
 * Implements the axial noise law of Nguyen, Izadi & Lovell (2012):
 * sigma_z(z) = 0.0012 + 0.0019 (z - 0.4)^2 meters, plus grazing-angle
 * dropouts, range clipping, and millimeter quantization — so the
 * synthetic frames exercise the same failure modes (holes, far-range
 * noise) that the bilateral filter and TSDF fusion exist to handle.
 */

#include <cstdint>

#include "support/image.hpp"
#include "support/rng.hpp"

namespace slambench::dataset {

/** Parameters of the sensor model. */
struct DepthNoiseOptions
{
    /** Enable additive axial Gaussian noise. */
    bool axialNoise = true;
    /** Base sigma at the reference distance, meters. */
    float sigmaBase = 0.0012f;
    /** Quadratic growth coefficient, meters^-1. */
    float sigmaQuad = 0.0019f;
    /** Reference distance of the noise law, meters. */
    float sigmaRefDepth = 0.4f;

    /** Enable grazing-angle dropouts. */
    bool dropouts = true;
    /** |cos(incidence)| below which returns start failing. */
    float dropoutCosine = 0.25f;
    /** Dropout probability at zero cosine (linear ramp to 0). */
    float dropoutMaxProb = 0.95f;

    /** Valid sensing range, meters (outside becomes invalid/0). */
    float minRange = 0.4f;
    float maxRange = 4.5f;

    /** Quantize to whole millimeters (the sensor's output unit). */
    bool quantize = true;
};

/**
 * Apply the sensor model to an ideal depth image.
 *
 * @param ideal_depth Ideal camera-Z depth, meters; 0 marks no surface.
 * @param cos_incidence |cos| of the incidence angle per pixel.
 * @param options Noise parameters.
 * @param rng Randomness source (deterministic given seed).
 * @return depth in millimeters as the sensor would report (0 invalid).
 */
support::Image<uint16_t>
applySensorModel(const support::Image<float> &ideal_depth,
                 const support::Image<float> &cos_incidence,
                 const DepthNoiseOptions &options, support::Rng &rng);

/**
 * Convert an ideal metric depth image straight to sensor units with
 * no noise (used for noise-free ablations).
 */
support::Image<uint16_t>
depthToMillimeters(const support::Image<float> &ideal_depth,
                   float max_range = 4.5f);

} // namespace slambench::dataset

#endif // SLAMBENCH_DATASET_NOISE_HPP
