#ifndef SLAMBENCH_DATASET_SCENE_HPP
#define SLAMBENCH_DATASET_SCENE_HPP

/**
 * @file
 * Procedural indoor scenes standing in for the ICL-NUIM living room.
 */

#include "dataset/sdf.hpp"

namespace slambench::dataset {

/**
 * Build the "living room" scene: a 4.8 x 2.5 x 4.8 m room shell with
 * a table, sofa, shelf, lamp, and small floor clutter. World axes:
 * +Y up, floor at y = 0, room centered on the origin in x/z.
 *
 * @return the populated scene.
 */
Scene livingRoomScene();

/**
 * Build the "office" scene: desk, cabinets, and a pillar. Same world
 * conventions as livingRoomScene(). Used as a second dataset to show
 * the framework is dataset-extensible (as SLAMBench is).
 */
Scene officeScene();

/**
 * Side length in meters of the cubic reconstruction volume that
 * encloses either scene (matches the KinectFusion volume-size
 * parameter default used throughout the benches).
 */
constexpr float kSceneVolumeSize = 4.8f;

} // namespace slambench::dataset

#endif // SLAMBENCH_DATASET_SCENE_HPP
