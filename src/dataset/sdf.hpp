#ifndef SLAMBENCH_DATASET_SDF_HPP
#define SLAMBENCH_DATASET_SDF_HPP

/**
 * @file
 * Signed-distance-field scene description.
 *
 * The synthetic dataset substitutes for ICL-NUIM: a scene is a flat
 * list of SDF primitives combined by min-union (the room shell is an
 * inverted box, so the camera sits inside it). Sphere tracing against
 * this field produces exact depth images, which is the same role the
 * POVRay-rendered ICL-NUIM sequences play for the real SLAMBench.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "math/mat.hpp"
#include "math/vec.hpp"
#include "support/image.hpp"

namespace slambench::dataset {

using math::Vec3f;

/** Geometric kind of one SDF primitive. */
enum class PrimitiveKind {
    Sphere,      ///< params: radius.
    Box,         ///< params: half extents (hx, hy, hz), rounding r.
    InvertedBox, ///< Box with the sign flipped: a room interior shell.
    Cylinder,    ///< Y-axis capped cylinder: radius, half height.
    Plane,       ///< Half-space: unit normal n, offset d (n.p - d).
};

/**
 * One SDF primitive with a rigid placement and a diffuse material.
 */
struct Primitive
{
    PrimitiveKind kind = PrimitiveKind::Sphere;
    /** Primitive-local frame: world = center + R * local. */
    Vec3f center{};
    /** Rotation about Y only (furniture never tilts); radians. */
    float yaw = 0.0f;
    /** Kind-specific shape parameters (see PrimitiveKind). */
    Vec3f params{};
    /** Corner rounding radius (Box) or unused. */
    float rounding = 0.0f;
    /** Diffuse albedo for the RGB render. */
    support::Rgb8 albedo{200, 200, 200};
    /** Debug name shown in scene dumps. */
    std::string name;
};

/** Result of evaluating the scene SDF at one point. */
struct SdfSample
{
    float distance = 0.0f; ///< Signed distance to the nearest surface.
    int primitive = -1;    ///< Index of the nearest primitive.
};

/**
 * A static scene: primitives plus an overall bounding radius used to
 * terminate rays.
 */
class Scene
{
  public:
    /** Append a primitive. @return its index. */
    int
    add(const Primitive &p)
    {
        primitives_.push_back(p);
        return static_cast<int>(primitives_.size()) - 1;
    }

    /** @return all primitives, in insertion order. */
    const std::vector<Primitive> &primitives() const { return primitives_; }

    /** @return number of primitives. */
    size_t size() const { return primitives_.size(); }

    /**
     * Evaluate the scene SDF (min-union over primitives).
     *
     * @param p World-space query point.
     * @return signed distance and the index of the nearest primitive.
     */
    SdfSample evaluate(const Vec3f &p) const;

    /** Signed distance only (slightly cheaper than evaluate()). */
    float distance(const Vec3f &p) const;

    /**
     * Outward surface normal at @p p via central differences.
     *
     * @param p Point on or near the surface.
     * @param eps Finite-difference step in meters.
     */
    Vec3f normal(const Vec3f &p, float eps = 1e-3f) const;

    /** Maximum ray length to march before declaring a miss, meters. */
    float farClip() const { return farClip_; }
    /** Set the maximum ray length, meters. */
    void setFarClip(float far_clip) { farClip_ = far_clip; }

  private:
    std::vector<Primitive> primitives_;
    float farClip_ = 20.0f;
};

/**
 * Signed distance from @p p (world) to one primitive.
 */
float primitiveDistance(const Primitive &prim, const Vec3f &p);

} // namespace slambench::dataset

#endif // SLAMBENCH_DATASET_SDF_HPP
