#ifndef SLAMBENCH_DATASET_RENDERER_HPP
#define SLAMBENCH_DATASET_RENDERER_HPP

/**
 * @file
 * Sphere-tracing RGB-D renderer over SDF scenes.
 *
 * Produces, per frame: a metric depth image (camera-Z, meters), an RGB
 * image (Lambertian shading), the cosine of the incidence angle (used
 * by the sensor noise model to decide grazing-angle dropouts), and the
 * id of the primitive hit by each ray.
 */

#include "dataset/sdf.hpp"
#include "math/camera.hpp"
#include "math/mat.hpp"
#include "support/image.hpp"

namespace slambench::dataset {

using math::CameraIntrinsics;
using math::Mat4f;

/** Tuning knobs of the sphere tracer. */
struct RenderOptions
{
    /** Maximum marching iterations per ray. */
    int maxSteps = 192;
    /** Surface hit threshold, meters. */
    float hitEpsilon = 1e-3f;
    /** Step for finite-difference normals, meters. */
    float normalEpsilon = 1e-3f;
    /** Render RGB as well as depth. */
    bool shadeRgb = true;
};

/** Output of rendering one frame. */
struct RenderResult
{
    /** Camera-Z depth in meters; 0 marks a miss. */
    support::Image<float> depth;
    /** Shaded color image (empty when shadeRgb is false). */
    support::Image<support::Rgb8> rgb;
    /** |cos| of the angle between surface normal and view ray. */
    support::Image<float> cosIncidence;
    /** Primitive index hit per pixel; -1 on miss. */
    support::Image<int> primitive;
};

/**
 * Render one RGB-D frame of @p scene.
 *
 * @param scene Scene to render.
 * @param intrinsics Pinhole camera model (sets the image size).
 * @param camera_to_world Camera pose.
 * @param options Tracer options.
 * @return depth/rgb/incidence/primitive images.
 */
RenderResult renderFrame(const Scene &scene,
                         const CameraIntrinsics &intrinsics,
                         const Mat4f &camera_to_world,
                         const RenderOptions &options = {});

} // namespace slambench::dataset

#endif // SLAMBENCH_DATASET_RENDERER_HPP
