#include "dataset/sdf.hpp"

#include <algorithm>
#include <cmath>

namespace slambench::dataset {

namespace {

/** Rotate @p v by -yaw about Y (world -> primitive-local). */
Vec3f
toLocal(const Primitive &prim, const Vec3f &p)
{
    const Vec3f d = p - prim.center;
    if (prim.yaw == 0.0f)
        return d;
    const float c = std::cos(-prim.yaw);
    const float s = std::sin(-prim.yaw);
    return {c * d.x + s * d.z, d.y, -s * d.x + c * d.z};
}

float
sdBox(const Vec3f &p, const Vec3f &half, float rounding)
{
    const Vec3f q{std::abs(p.x) - half.x, std::abs(p.y) - half.y,
                  std::abs(p.z) - half.z};
    const Vec3f q_pos{std::max(q.x, 0.0f), std::max(q.y, 0.0f),
                      std::max(q.z, 0.0f)};
    const float outside = q_pos.norm();
    const float inside = std::min(std::max(q.x, std::max(q.y, q.z)), 0.0f);
    return outside + inside - rounding;
}

float
sdCylinderY(const Vec3f &p, float radius, float half_height)
{
    const float dxz = std::sqrt(p.x * p.x + p.z * p.z) - radius;
    const float dy = std::abs(p.y) - half_height;
    const float ox = std::max(dxz, 0.0f);
    const float oy = std::max(dy, 0.0f);
    const float outside = std::sqrt(ox * ox + oy * oy);
    const float inside = std::min(std::max(dxz, dy), 0.0f);
    return outside + inside;
}

} // namespace

float
primitiveDistance(const Primitive &prim, const Vec3f &p)
{
    switch (prim.kind) {
      case PrimitiveKind::Sphere: {
        return (p - prim.center).norm() - prim.params.x;
      }
      case PrimitiveKind::Box: {
        return sdBox(toLocal(prim, p), prim.params, prim.rounding);
      }
      case PrimitiveKind::InvertedBox: {
        return -sdBox(toLocal(prim, p), prim.params, prim.rounding);
      }
      case PrimitiveKind::Cylinder: {
        const Vec3f local = toLocal(prim, p);
        return sdCylinderY(local, prim.params.x, prim.params.y);
      }
      case PrimitiveKind::Plane: {
        return p.dot(prim.params.normalized()) - prim.rounding;
      }
    }
    return prim.center.norm(); // unreachable
}

SdfSample
Scene::evaluate(const Vec3f &p) const
{
    SdfSample best;
    best.distance = farClip_;
    for (size_t i = 0; i < primitives_.size(); ++i) {
        const float d = primitiveDistance(primitives_[i], p);
        if (d < best.distance) {
            best.distance = d;
            best.primitive = static_cast<int>(i);
        }
    }
    return best;
}

float
Scene::distance(const Vec3f &p) const
{
    float best = farClip_;
    for (const Primitive &prim : primitives_)
        best = std::min(best, primitiveDistance(prim, p));
    return best;
}

Vec3f
Scene::normal(const Vec3f &p, float eps) const
{
    const float dx = distance({p.x + eps, p.y, p.z}) -
                     distance({p.x - eps, p.y, p.z});
    const float dy = distance({p.x, p.y + eps, p.z}) -
                     distance({p.x, p.y - eps, p.z});
    const float dz = distance({p.x, p.y, p.z + eps}) -
                     distance({p.x, p.y, p.z - eps});
    return Vec3f{dx, dy, dz}.normalized();
}

} // namespace slambench::dataset
