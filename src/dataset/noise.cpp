#include "dataset/noise.hpp"

#include <algorithm>
#include <cmath>

namespace slambench::dataset {

support::Image<uint16_t>
applySensorModel(const support::Image<float> &ideal_depth,
                 const support::Image<float> &cos_incidence,
                 const DepthNoiseOptions &options, support::Rng &rng)
{
    support::Image<uint16_t> out(ideal_depth.width(),
                                 ideal_depth.height());
    for (size_t i = 0; i < ideal_depth.size(); ++i) {
        float z = ideal_depth[i];
        if (z <= 0.0f) {
            out[i] = 0;
            continue;
        }
        if (z < options.minRange || z > options.maxRange) {
            out[i] = 0;
            continue;
        }
        if (options.dropouts) {
            const float c = cos_incidence[i];
            if (c < options.dropoutCosine) {
                const float p = options.dropoutMaxProb *
                                (1.0f - c / options.dropoutCosine);
                if (rng.bernoulli(p)) {
                    out[i] = 0;
                    continue;
                }
            }
        }
        if (options.axialNoise) {
            const float dz = z - options.sigmaRefDepth;
            const float sigma =
                options.sigmaBase + options.sigmaQuad * dz * dz;
            z += static_cast<float>(rng.normal(0.0, sigma));
        }
        if (z < options.minRange || z > options.maxRange) {
            out[i] = 0;
            continue;
        }
        float mm = z * 1000.0f;
        if (options.quantize)
            mm = std::round(mm);
        out[i] = static_cast<uint16_t>(
            std::clamp(mm, 0.0f, 65535.0f));
    }
    return out;
}

support::Image<uint16_t>
depthToMillimeters(const support::Image<float> &ideal_depth,
                   float max_range)
{
    support::Image<uint16_t> out(ideal_depth.width(),
                                 ideal_depth.height());
    for (size_t i = 0; i < ideal_depth.size(); ++i) {
        const float z = ideal_depth[i];
        if (z <= 0.0f || z > max_range) {
            out[i] = 0;
            continue;
        }
        out[i] = static_cast<uint16_t>(
            std::clamp(std::round(z * 1000.0f), 0.0f, 65535.0f));
    }
    return out;
}

} // namespace slambench::dataset
