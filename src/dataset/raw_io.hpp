#ifndef SLAMBENCH_DATASET_RAW_IO_HPP
#define SLAMBENCH_DATASET_RAW_IO_HPP

/**
 * @file
 * Binary sequence files.
 *
 * SLAMBench distributes datasets as preprocessed binary `.raw` files
 * so that runs do not depend on image codecs. This module plays the
 * same role: a generated Sequence (frames, intrinsics, ground truth)
 * can be saved once and reloaded byte-exactly, so expensive renders
 * are amortized across experiments and external tools can consume
 * the data.
 *
 * Format (little-endian, documented for external readers):
 *   magic   "SBRAW001"                                    8 bytes
 *   u32     width, height, frame count                   12 bytes
 *   f64     fps                                           8 bytes
 *   f32     fx, fy, cx, cy                               16 bytes
 *   u8      has_rgb                                       1 byte
 *   per frame:
 *     f64   timestamp
 *     f32   pose[16]        ground-truth camera-to-world, row-major
 *     u16   depth[w*h]      millimeters, 0 = invalid
 *     u8    rgb[w*h*3]      only when has_rgb
 */

#include <string>

#include "dataset/generator.hpp"

namespace slambench::dataset {

/**
 * Write a sequence to a binary file.
 *
 * @param sequence Sequence to save (all frames must share the
 *                 sequence's resolution; RGB is written only when
 *                 every frame has it).
 * @param path Destination file.
 * @return true on success.
 */
bool saveSequenceRaw(const Sequence &sequence, const std::string &path);

/**
 * Read a sequence written by saveSequenceRaw().
 *
 * @param path Source file.
 * @param[out] sequence Replaced on success. The spec field holds
 *             only what the format stores (dimensions/frames/fps).
 * @return true when the file parsed completely.
 */
bool loadSequenceRaw(const std::string &path, Sequence &sequence);

} // namespace slambench::dataset

#endif // SLAMBENCH_DATASET_RAW_IO_HPP
