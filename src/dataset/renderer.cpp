#include "dataset/renderer.hpp"

#include <algorithm>
#include <cmath>

namespace slambench::dataset {

using math::Vec3f;

namespace {

/** Shade a Lambertian hit with two lights plus ambient. */
support::Rgb8
shade(const Primitive &prim, const Vec3f &normal, const Vec3f &view_dir)
{
    // Fixed ceiling light plus a headlight term so every visible
    // surface has some gradient (matches how ICL-NUIM frames look).
    const Vec3f key_light = Vec3f{0.35f, 1.0f, 0.25f}.normalized();
    const float key = std::max(0.0f, normal.dot(key_light));
    const float head = std::max(0.0f, normal.dot(-view_dir));
    const float intensity =
        std::min(1.0f, 0.25f + 0.45f * key + 0.30f * head);
    auto channel = [intensity](uint8_t albedo) {
        return static_cast<uint8_t>(
            std::min(255.0f, static_cast<float>(albedo) * intensity));
    };
    return {channel(prim.albedo.r), channel(prim.albedo.g),
            channel(prim.albedo.b)};
}

} // namespace

RenderResult
renderFrame(const Scene &scene, const CameraIntrinsics &intrinsics,
            const Mat4f &camera_to_world, const RenderOptions &options)
{
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;

    RenderResult result;
    result.depth.resize(w, h);
    result.cosIncidence.resize(w, h);
    result.primitive.resize(w, h);
    result.primitive.fill(-1);
    if (options.shadeRgb)
        result.rgb.resize(w, h);

    const Vec3f origin = camera_to_world.translationPart();
    const float far_clip = scene.farClip();

    for (size_t y = 0; y < h; ++y) {
        for (size_t x = 0; x < w; ++x) {
            const Vec3f dir_cam = intrinsics.rayDir(
                static_cast<float>(x) + 0.5f,
                static_cast<float>(y) + 0.5f);
            const Vec3f dir = camera_to_world.transformDir(dir_cam);

            float t = 0.0f;
            bool hit = false;
            int prim_id = -1;
            for (int step = 0; step < options.maxSteps; ++step) {
                const Vec3f p = origin + dir * t;
                const SdfSample s = scene.evaluate(p);
                if (s.distance < options.hitEpsilon) {
                    hit = true;
                    prim_id = s.primitive;
                    break;
                }
                t += s.distance;
                if (t > far_clip)
                    break;
            }

            if (!hit) {
                result.depth(x, y) = 0.0f;
                result.cosIncidence(x, y) = 0.0f;
                if (options.shadeRgb)
                    result.rgb(x, y) = {10, 10, 14};
                continue;
            }

            const Vec3f p = origin + dir * t;
            const Vec3f n = scene.normal(p, options.normalEpsilon);
            // Depth is camera-Z, not ray length.
            result.depth(x, y) = t * dir_cam.z;
            result.cosIncidence(x, y) = std::abs(n.dot(dir));
            result.primitive(x, y) = prim_id;
            if (options.shadeRgb) {
                result.rgb(x, y) =
                    shade(scene.primitives()[static_cast<size_t>(prim_id)],
                          n, dir);
            }
        }
    }
    return result;
}

} // namespace slambench::dataset
