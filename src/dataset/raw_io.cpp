#include "dataset/raw_io.hpp"

#include <cstring>
#include <fstream>

#include "support/logging.hpp"

namespace slambench::dataset {

namespace {

constexpr char kMagic[8] = {'S', 'B', 'R', 'A', 'W', '0', '0', '1'};

template <typename T>
void
writeValue(std::ofstream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readValue(std::ifstream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(in);
}

} // namespace

bool
saveSequenceRaw(const Sequence &sequence, const std::string &path)
{
    const size_t w = sequence.intrinsics.width;
    const size_t h = sequence.intrinsics.height;
    if (sequence.frames.empty() ||
        sequence.groundTruth.size() != sequence.frames.size())
        return false;

    bool has_rgb = true;
    for (const Frame &frame : sequence.frames) {
        if (frame.depthMm.width() != w || frame.depthMm.height() != h)
            return false;
        has_rgb &= frame.rgb.size() == w * h;
    }

    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;

    out.write(kMagic, sizeof(kMagic));
    writeValue(out, static_cast<uint32_t>(w));
    writeValue(out, static_cast<uint32_t>(h));
    writeValue(out, static_cast<uint32_t>(sequence.frames.size()));
    writeValue(out, sequence.spec.fps);
    writeValue(out, sequence.intrinsics.fx);
    writeValue(out, sequence.intrinsics.fy);
    writeValue(out, sequence.intrinsics.cx);
    writeValue(out, sequence.intrinsics.cy);
    writeValue(out, static_cast<uint8_t>(has_rgb ? 1 : 0));

    for (size_t f = 0; f < sequence.frames.size(); ++f) {
        const Frame &frame = sequence.frames[f];
        writeValue(out, frame.timestamp);
        const math::Mat4f &pose = sequence.groundTruth.pose(f);
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                writeValue(out, pose(static_cast<size_t>(r),
                                     static_cast<size_t>(c)));
        out.write(
            reinterpret_cast<const char *>(frame.depthMm.data()),
            static_cast<std::streamsize>(w * h * sizeof(uint16_t)));
        if (has_rgb) {
            out.write(
                reinterpret_cast<const char *>(frame.rgb.data()),
                static_cast<std::streamsize>(w * h * 3));
        }
    }
    return static_cast<bool>(out);
}

bool
loadSequenceRaw(const std::string &path, Sequence &sequence)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;

    uint32_t w = 0, h = 0, frames = 0;
    double fps = 0.0;
    float fx, fy, cx, cy;
    uint8_t has_rgb = 0;
    if (!readValue(in, w) || !readValue(in, h) ||
        !readValue(in, frames) || !readValue(in, fps) ||
        !readValue(in, fx) || !readValue(in, fy) ||
        !readValue(in, cx) || !readValue(in, cy) ||
        !readValue(in, has_rgb))
        return false;
    if (w == 0 || h == 0 || frames == 0)
        return false;

    sequence = Sequence{};
    sequence.spec.width = w;
    sequence.spec.height = h;
    sequence.spec.numFrames = frames;
    sequence.spec.fps = fps;
    sequence.spec.name = path;
    sequence.intrinsics.width = w;
    sequence.intrinsics.height = h;
    sequence.intrinsics.fx = fx;
    sequence.intrinsics.fy = fy;
    sequence.intrinsics.cx = cx;
    sequence.intrinsics.cy = cy;

    sequence.frames.reserve(frames);
    for (uint32_t f = 0; f < frames; ++f) {
        Frame frame;
        if (!readValue(in, frame.timestamp))
            return false;
        math::Mat4f pose;
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                float v;
                if (!readValue(in, v))
                    return false;
                pose(static_cast<size_t>(r),
                     static_cast<size_t>(c)) = v;
            }
        }
        frame.depthMm.resize(w, h);
        in.read(reinterpret_cast<char *>(frame.depthMm.data()),
                static_cast<std::streamsize>(w * h *
                                             sizeof(uint16_t)));
        if (!in)
            return false;
        if (has_rgb) {
            frame.rgb.resize(w, h);
            in.read(reinterpret_cast<char *>(frame.rgb.data()),
                    static_cast<std::streamsize>(w * h * 3));
            if (!in)
                return false;
        }
        sequence.groundTruth.append(pose, frame.timestamp);
        sequence.frames.push_back(std::move(frame));
    }
    return true;
}

} // namespace slambench::dataset
