#ifndef SLAMBENCH_CORE_SLAM_SYSTEM_HPP
#define SLAMBENCH_CORE_SLAM_SYSTEM_HPP

/**
 * @file
 * The SLAMBench algorithm interface.
 *
 * SLAMBench's central idea is a unified API so that different SLAM
 * systems (open or closed source) can be benchmarked identically.
 * SlamSystem is that API; KFusionSystem is the bundled dense SLAM
 * implementation behind it.
 */

#include <memory>
#include <string>
#include <vector>

#include "dataset/generator.hpp"
#include "kfusion/pipeline.hpp"
#include "math/camera.hpp"
#include "math/mat.hpp"

namespace slambench::core {

/**
 * Abstract SLAM system under benchmark.
 */
class SlamSystem
{
  public:
    virtual ~SlamSystem() = default;

    /** @return a short identifier ("kfusion-sequential", ...). */
    virtual std::string name() const = 0;

    /**
     * Prepare for a sequence.
     *
     * @param intrinsics Input camera intrinsics.
     * @param initial_pose Starting camera-to-world pose.
     */
    virtual void initialize(const math::CameraIntrinsics &intrinsics,
                            const math::Mat4f &initial_pose) = 0;

    /**
     * Ingest the next frame.
     *
     * @param frame Sensor data.
     * @return true when tracking succeeded for this frame.
     */
    virtual bool processFrame(const dataset::Frame &frame) = 0;

    /** @return current camera-to-world pose estimate. */
    virtual math::Mat4f currentPose() const = 0;

    /** @return per-frame work records accumulated so far. */
    virtual const std::vector<kfusion::WorkCounts> &
    frameWork() const = 0;
};

/**
 * KinectFusion bound to the SlamSystem interface.
 */
class KFusionSystem : public SlamSystem
{
  public:
    /**
     * @param config Algorithmic configuration.
     * @param impl Kernel implementation flavor.
     * @param num_threads Worker threads for the Threaded
     *        implementation (0 = hardware concurrency); ignored by
     *        Sequential.
     */
    explicit KFusionSystem(
        const kfusion::KFusionConfig &config,
        kfusion::Implementation impl =
            kfusion::Implementation::Sequential,
        size_t num_threads = 0);

    std::string name() const override;
    void initialize(const math::CameraIntrinsics &intrinsics,
                    const math::Mat4f &initial_pose) override;
    bool processFrame(const dataset::Frame &frame) override;
    math::Mat4f currentPose() const override;
    const std::vector<kfusion::WorkCounts> &frameWork() const override;

    /** @return the underlying pipeline (for rendering/inspection). */
    kfusion::KFusion &pipeline();
    /** @return the underlying pipeline. */
    const kfusion::KFusion &pipeline() const;

    /** @return fraction of frames whose tracking was accepted. */
    double trackedFraction() const;

  private:
    kfusion::KFusionConfig config_;
    kfusion::Implementation impl_;
    size_t numThreads_ = 0;
    std::unique_ptr<kfusion::KFusion> kfusion_;
    size_t framesSeen_ = 0;
    size_t framesTracked_ = 0;
    support::Image<support::Rgb8> renderScratch_;
};

} // namespace slambench::core

#endif // SLAMBENCH_CORE_SLAM_SYSTEM_HPP
