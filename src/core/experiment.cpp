#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "kfusion/backend.hpp"
#include "support/logging.hpp"

namespace slambench::core {

namespace {

/**
 * Device model with its compute rates scaled by the configured
 * kernel backend's modeled speedup. Only the compute term of the
 * roofline moves: vectorization does not raise memory bandwidth, so
 * memory-bound kernels see little simulated gain, exactly like on
 * hardware. joulesPerItem is left unchanged (a conservative
 * simplification: the same work items are switched either way).
 */
devices::DeviceModel
deviceForBackend(const devices::DeviceModel &device,
                 const kfusion::KFusionConfig &config)
{
    const kfusion::KernelBackend *backend =
        kfusion::resolveKernelBackend(config.kernelBackend);
    if (!backend)
        return device;
    devices::DeviceModel scaled = device;
    for (size_t k = 0; k < kfusion::kNumKernels; ++k)
        scaled.itemsPerSecond[k] *=
            backend->modelSpeedup(static_cast<kfusion::KernelId>(k));
    return scaled;
}

} // namespace

double
volumeBytes(const kfusion::KFusionConfig &config)
{
    const double r = static_cast<double>(config.volumeResolution);
    return r * r * r * static_cast<double>(sizeof(kfusion::Voxel));
}

EvaluatedConfig
evaluateConfigOnDevice(const kfusion::KFusionConfig &config,
                       const dataset::Sequence &sequence,
                       const devices::DeviceModel &device,
                       const DseObjectiveOptions &options)
{
    EvaluatedConfig record;
    record.config = config;

    if (options.enforceMemoryBudget &&
        volumeBytes(config) > device.memoryBudgetBytes) {
        // The configuration does not fit on the device at all.
        record.valid = false;
        return record;
    }

    if (!kfusion::KFusion::checkCompatibility(config,
                                              sequence.intrinsics)
             .empty()) {
        // The configuration cannot run on this input size (e.g. the
        // compute-size ratio shrinks the image below the minimum).
        record.valid = false;
        return record;
    }

    KFusionSystem system(config);
    BenchmarkOptions bench_options;
    bench_options.alignedAte = false;
    record.bench = runBenchmark(system, sequence, bench_options);

    record.ate = record.bench.ate;
    record.trackedFraction = record.bench.trackedFraction();
    record.simulated = devices::simulateRun(
        deviceForBackend(device, config), record.bench.frameWork);
    record.valid =
        record.trackedFraction >= options.minTrackedFraction &&
        std::isfinite(record.ate.maxAte);
    return record;
}

hypermapper::Evaluator
makeDseEvaluator(const hypermapper::ParameterSpace &space,
                 const dataset::Sequence &sequence,
                 const devices::DeviceModel &device,
                 const DseObjectiveOptions &options,
                 std::vector<EvaluatedConfig> *log)
{
    // The lambda copies the space and device; the sequence is large,
    // so callers must keep it alive (noted in the header docs). The
    // parallel DSE drivers invoke the evaluator concurrently, so the
    // shared log is guarded (records land in completion order).
    auto log_mutex = std::make_shared<std::mutex>();
    return [&sequence, space, device, options, log,
            log_mutex](const hypermapper::Point &point)
               -> hypermapper::EvaluationOutcome {
        const kfusion::KFusionConfig config =
            pointToConfig(space, point);
        const EvaluatedConfig record = evaluateConfigOnDevice(
            config, sequence, device, options);
        if (log) {
            std::lock_guard<std::mutex> lock(*log_mutex);
            log->push_back(record);
        }

        hypermapper::EvaluationOutcome outcome;
        outcome.valid = record.valid;
        outcome.objectives.assign(kNumObjectives, 0.0);
        outcome.objectives[kObjRuntime] =
            record.simulated.meanFrameSeconds;
        outcome.objectives[kObjMaxAte] = record.ate.maxAte;
        outcome.objectives[kObjWatts] = record.simulated.pacedWatts;
        return outcome;
    };
}

hypermapper::Evaluator
makeMultiSequenceEvaluator(const hypermapper::ParameterSpace &space,
                           const std::vector<dataset::Sequence> &sequences,
                           const devices::DeviceModel &device,
                           const DseObjectiveOptions &options)
{
    if (sequences.empty())
        support::fatal("makeMultiSequenceEvaluator: no sequences");
    return [&sequences, space, device,
            options](const hypermapper::Point &point)
               -> hypermapper::EvaluationOutcome {
        const kfusion::KFusionConfig config =
            pointToConfig(space, point);
        hypermapper::EvaluationOutcome outcome;
        outcome.valid = true;
        outcome.objectives.assign(kNumObjectives, 0.0);
        for (const dataset::Sequence &sequence : sequences) {
            const EvaluatedConfig record = evaluateConfigOnDevice(
                config, sequence, device, options);
            outcome.valid = outcome.valid && record.valid;
            outcome.objectives[kObjRuntime] +=
                record.simulated.meanFrameSeconds;
            outcome.objectives[kObjWatts] +=
                record.simulated.pacedWatts;
            outcome.objectives[kObjMaxAte] =
                std::max(outcome.objectives[kObjMaxAte],
                         record.ate.maxAte);
        }
        const double n = static_cast<double>(sequences.size());
        outcome.objectives[kObjRuntime] /= n;
        outcome.objectives[kObjWatts] /= n;
        return outcome;
    };
}

std::vector<FleetEntry>
replayOnFleet(const std::vector<devices::DeviceModel> &fleet,
              const std::vector<kfusion::WorkCounts> &default_run,
              double default_volume_bytes,
              const std::vector<kfusion::WorkCounts> &tuned_run,
              double tuned_volume_bytes)
{
    std::vector<FleetEntry> entries;
    entries.reserve(fleet.size());
    for (const devices::DeviceModel &device : fleet) {
        FleetEntry entry;
        entry.device = device.name;
        entry.deviceClass = devices::deviceClassName(device.deviceClass);
        entry.ranDefault =
            default_volume_bytes <= device.memoryBudgetBytes;
        entry.ranTuned = tuned_volume_bytes <= device.memoryBudgetBytes;
        if (entry.ranDefault) {
            entry.defaultSeconds =
                devices::simulateRun(device, default_run)
                    .meanFrameSeconds;
        }
        if (entry.ranTuned) {
            entry.tunedSeconds =
                devices::simulateRun(device, tuned_run)
                    .meanFrameSeconds;
        }
        if (entry.ranDefault && entry.ranTuned &&
            entry.tunedSeconds > 0.0) {
            entry.speedup = entry.defaultSeconds / entry.tunedSeconds;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

} // namespace slambench::core
