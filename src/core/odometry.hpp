#ifndef SLAMBENCH_CORE_ODOMETRY_HPP
#define SLAMBENCH_CORE_ODOMETRY_HPP

/**
 * @file
 * A second SLAM algorithm behind the SlamSystem interface: pure
 * frame-to-frame ICP visual odometry (no map, no TSDF volume).
 *
 * SLAMBench's purpose is comparing *different* SLAM systems under
 * one harness; this system is the classic drift-prone baseline that
 * KinectFusion's frame-to-model tracking is evaluated against. It
 * reuses the same preprocessing and ICP kernels, so per-kernel work
 * accounting and device simulation work identically.
 */

#include <memory>
#include <vector>

#include "core/slam_system.hpp"
#include "kfusion/kernels.hpp"
#include "kfusion/tracking.hpp"

namespace slambench::core {

/** Configuration of the odometry baseline. */
struct OdometryConfig
{
    /** Input down-scaling ratio, as in KFusionConfig. */
    int computeSizeRatio = 1;
    /** ICP iterations per pyramid level, finest first. */
    std::vector<int> pyramidIterations{10, 5, 4};
    /** ICP convergence threshold on the twist norm. */
    float icpThreshold = 1e-5f;
    /** Bilateral filter radius (0 disables). */
    int filterRadius = 2;
    /** Correspondence gates (see KFusionConfig). */
    float distThreshold = 0.1f;
    float normalThreshold = 0.8f;
    /** Pose acceptance gates. */
    float trackInlierFraction = 0.10f;
    float trackResidualLimit = 2e-2f;
};

/**
 * Frame-to-frame ICP odometry bound to the SlamSystem interface.
 */
class OdometrySystem : public SlamSystem
{
  public:
    explicit OdometrySystem(const OdometryConfig &config = {});

    std::string name() const override;
    void initialize(const math::CameraIntrinsics &intrinsics,
                    const math::Mat4f &initial_pose) override;
    bool processFrame(const dataset::Frame &frame) override;
    math::Mat4f currentPose() const override;
    const std::vector<kfusion::WorkCounts> &frameWork() const override;

  private:
    void buildPyramid(const support::Image<uint16_t> &depth_mm,
                      std::vector<kfusion::PyramidLevel> &pyramid,
                      kfusion::WorkCounts &work) const;

    OdometryConfig config_;
    math::CameraIntrinsics inputIntrinsics_;
    math::CameraIntrinsics scaledIntrinsics_;
    std::vector<math::CameraIntrinsics> levelIntrinsics_;
    math::Mat4f pose_;

    // Previous frame's maps in world coordinates (the reference).
    support::Image<math::Vec3f> refVertex_;
    support::Image<math::Vec3f> refNormal_;
    math::Mat4f refPose_;
    bool haveReference_ = false;

    std::vector<kfusion::WorkCounts> frameWork_;
};

} // namespace slambench::core

#endif // SLAMBENCH_CORE_ODOMETRY_HPP
