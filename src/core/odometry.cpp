#include "core/odometry.hpp"

#include "support/logging.hpp"

namespace slambench::core {

using kfusion::KernelId;
using kfusion::KernelTimer;
using kfusion::PyramidLevel;
using kfusion::WorkCounts;
using math::Mat4f;
using math::Vec3f;
using support::Image;

OdometrySystem::OdometrySystem(const OdometryConfig &config)
    : config_(config)
{
    if (config_.pyramidIterations.empty())
        support::fatal("OdometrySystem: need >= 1 pyramid level");
}

std::string
OdometrySystem::name() const
{
    return "icp-odometry";
}

void
OdometrySystem::initialize(const math::CameraIntrinsics &intrinsics,
                           const Mat4f &initial_pose)
{
    inputIntrinsics_ = intrinsics;
    scaledIntrinsics_ = intrinsics.scaled(
        static_cast<size_t>(config_.computeSizeRatio));
    levelIntrinsics_.clear();
    math::CameraIntrinsics level = scaledIntrinsics_;
    for (size_t l = 0; l < config_.pyramidIterations.size(); ++l) {
        if (level.width < 4 || level.height < 4)
            support::fatal("OdometrySystem: too many pyramid levels");
        levelIntrinsics_.push_back(level);
        level = level.scaled(2);
    }
    pose_ = initial_pose;
    haveReference_ = false;
    frameWork_.clear();
}

void
OdometrySystem::buildPyramid(const Image<uint16_t> &depth_mm,
                             std::vector<PyramidLevel> &pyramid,
                             WorkCounts &work) const
{
    pyramid.resize(levelIntrinsics_.size());
    Image<float> raw;
    {
        KernelTimer timer(work, KernelId::Mm2Meters);
        kfusion::mm2metersKernel(raw, depth_mm,
                                 config_.computeSizeRatio, nullptr);
        work.addItems(KernelId::Mm2Meters,
                      static_cast<double>(raw.size()));
        work.addBytes(KernelId::Mm2Meters,
                      static_cast<double>(raw.size()) * 6.0);
    }
    {
        KernelTimer timer(work, KernelId::BilateralFilter);
        kfusion::bilateralFilterKernel(pyramid[0].depth, raw,
                                       config_.filterRadius, 4.0f,
                                       0.1f, nullptr);
        const double per_pixel =
            kfusion::bilateralItemsPerPixel(config_.filterRadius);
        work.addItems(KernelId::BilateralFilter,
                      static_cast<double>(raw.size()) * per_pixel);
        work.addBytes(KernelId::BilateralFilter,
                      static_cast<double>(raw.size()) *
                          (per_pixel * 4.0 + 4.0));
    }
    for (size_t l = 1; l < pyramid.size(); ++l) {
        KernelTimer timer(work, KernelId::HalfSample);
        kfusion::halfSampleRobustKernel(pyramid[l].depth,
                                        pyramid[l - 1].depth, 0.3f,
                                        nullptr);
        work.addItems(KernelId::HalfSample,
                      static_cast<double>(pyramid[l].depth.size()));
        work.addBytes(KernelId::HalfSample,
                      static_cast<double>(pyramid[l].depth.size()) *
                          20.0);
    }
    for (size_t l = 0; l < pyramid.size(); ++l) {
        pyramid[l].intrinsics = levelIntrinsics_[l];
        {
            KernelTimer timer(work, KernelId::Depth2Vertex);
            kfusion::depth2vertexKernel(pyramid[l].vertex,
                                        pyramid[l].depth,
                                        levelIntrinsics_[l], nullptr);
            work.addItems(
                KernelId::Depth2Vertex,
                static_cast<double>(pyramid[l].vertex.size()));
            work.addBytes(
                KernelId::Depth2Vertex,
                static_cast<double>(pyramid[l].vertex.size()) * 16.0);
        }
        {
            KernelTimer timer(work, KernelId::Vertex2Normal);
            kfusion::vertex2normalKernel(pyramid[l].normal,
                                         pyramid[l].vertex, nullptr);
            work.addItems(
                KernelId::Vertex2Normal,
                static_cast<double>(pyramid[l].normal.size()));
            work.addBytes(
                KernelId::Vertex2Normal,
                static_cast<double>(pyramid[l].normal.size()) * 48.0);
        }
    }
}

bool
OdometrySystem::processFrame(const dataset::Frame &frame)
{
    WorkCounts work;
    std::vector<PyramidLevel> pyramid;
    buildPyramid(frame.depthMm, pyramid, work);

    bool tracked = true;
    if (haveReference_) {
        kfusion::KFusionConfig gates;
        gates.pyramidIterations = config_.pyramidIterations;
        gates.icpThreshold = config_.icpThreshold;
        gates.distThreshold = config_.distThreshold;
        gates.normalThreshold = config_.normalThreshold;
        gates.trackInlierFraction = config_.trackInlierFraction;
        gates.trackResidualLimit = config_.trackResidualLimit;

        const kfusion::TrackingStats stats = kfusion::icpTrack(
            pose_, pyramid, refVertex_, refNormal_, scaledIntrinsics_,
            refPose_, gates, work, nullptr);
        tracked = stats.tracked;
    }

    // The *current* frame becomes the next reference, transformed to
    // world coordinates with the just-estimated pose.
    const PyramidLevel &finest = pyramid[0];
    refVertex_.resize(finest.vertex.width(), finest.vertex.height());
    refNormal_.resize(finest.normal.width(), finest.normal.height());
    for (size_t i = 0; i < finest.vertex.size(); ++i) {
        if (finest.vertex[i].squaredNorm() == 0.0f ||
            finest.normal[i].squaredNorm() == 0.0f) {
            refVertex_[i] = Vec3f{};
            refNormal_[i] = Vec3f{};
            continue;
        }
        refVertex_[i] = pose_.transformPoint(finest.vertex[i]);
        refNormal_[i] = pose_.transformDir(finest.normal[i]);
    }
    refPose_ = pose_;
    haveReference_ = true;

    frameWork_.push_back(work);
    return tracked;
}

Mat4f
OdometrySystem::currentPose() const
{
    return pose_;
}

const std::vector<WorkCounts> &
OdometrySystem::frameWork() const
{
    return frameWork_;
}

} // namespace slambench::core
