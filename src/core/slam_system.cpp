#include "core/slam_system.hpp"

#include "support/logging.hpp"

namespace slambench::core {

KFusionSystem::KFusionSystem(const kfusion::KFusionConfig &config,
                             kfusion::Implementation impl,
                             size_t num_threads)
    : config_(config), impl_(impl), numThreads_(num_threads)
{}

std::string
KFusionSystem::name() const
{
    return std::string("kfusion-") +
           kfusion::implementationName(impl_);
}

void
KFusionSystem::initialize(const math::CameraIntrinsics &intrinsics,
                          const math::Mat4f &initial_pose)
{
    kfusion_ = std::make_unique<kfusion::KFusion>(
        config_, intrinsics, impl_, numThreads_);
    kfusion_->setPose(initial_pose);
    framesSeen_ = 0;
    framesTracked_ = 0;
}

bool
KFusionSystem::processFrame(const dataset::Frame &frame)
{
    if (!kfusion_)
        support::panic("KFusionSystem: processFrame before initialize");
    const kfusion::FrameResult result =
        kfusion_->processFrame(frame.depthMm);

    // The GUI visualization is part of the measured pipeline (as in
    // SLAMBench); render at the compute resolution every Nth frame.
    if (result.frameIndex %
            static_cast<size_t>(config_.renderingRate) ==
        0) {
        const math::CameraIntrinsics k = kfusion_->computeIntrinsics();
        kfusion_->renderModel(renderScratch_, kfusion_->pose(), &k);
    }

    ++framesSeen_;
    if (result.tracking.tracked)
        ++framesTracked_;
    return result.tracking.tracked;
}

math::Mat4f
KFusionSystem::currentPose() const
{
    if (!kfusion_)
        support::panic("KFusionSystem: currentPose before initialize");
    return kfusion_->pose();
}

const std::vector<kfusion::WorkCounts> &
KFusionSystem::frameWork() const
{
    if (!kfusion_)
        support::panic("KFusionSystem: frameWork before initialize");
    return kfusion_->frameWork();
}

kfusion::KFusion &
KFusionSystem::pipeline()
{
    if (!kfusion_)
        support::panic("KFusionSystem: pipeline before initialize");
    return *kfusion_;
}

const kfusion::KFusion &
KFusionSystem::pipeline() const
{
    if (!kfusion_)
        support::panic("KFusionSystem: pipeline before initialize");
    return *kfusion_;
}

double
KFusionSystem::trackedFraction() const
{
    return framesSeen_ == 0
               ? 0.0
               : static_cast<double>(framesTracked_) /
                     static_cast<double>(framesSeen_);
}

} // namespace slambench::core
