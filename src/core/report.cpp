#include "core/report.hpp"

#include <sstream>

#include "kfusion/backend.hpp"
#include "power/power_monitor.hpp"
#include "support/csv.hpp"
#include "support/metrics.hpp"
#include "support/pmu.hpp"
#include "support/strings.hpp"

namespace slambench::core {

namespace {

/** Sum host seconds of a kernel subset within one frame's work. */
double
kernelGroupSeconds(const kfusion::WorkCounts &work,
                   std::initializer_list<kfusion::KernelId> kernels)
{
    double seconds = 0.0;
    for (const kfusion::KernelId id : kernels)
        seconds += work.hostSecondsFor(id);
    return seconds;
}

} // namespace

size_t
writeFrameLog(std::ostream &out, const BenchmarkResult &result,
              const devices::DeviceModel &device)
{
    std::vector<std::string> header{"frame", "ate_m",
                                    "host_seconds", "sim_seconds",
                                    "sim_joules"};
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        header.push_back(std::string(kfusion::kernelName(id)) +
                         "_items");
    }
    support::CsvWriter csv(out, header);
    for (size_t f = 0; f < result.frameWork.size(); ++f) {
        const kfusion::WorkCounts &work = result.frameWork[f];
        csv.beginRow()
            .cell(static_cast<int64_t>(f))
            .cell(f < result.ate.perFrame.size()
                      ? result.ate.perFrame[f]
                      : 0.0)
            .cell(work.totalHostSeconds())
            .cell(device.frameSeconds(work))
            .cell(device.frameJoules(work));
        for (size_t k = 0; k < kfusion::kNumKernels; ++k)
            csv.cell(work.items[k]);
    }
    csv.endRow();
    return csv.rowCount();
}

std::string
summarizeRun(const BenchmarkResult &result,
             const devices::DeviceModel &device,
             const std::string &system_name)
{
    const devices::SimulatedRun sim =
        devices::simulateRun(device, result.frameWork);

    std::ostringstream out;
    out << "=== " << system_name << " ===\n";
    out << support::format(
        "frames      : %zu (%zu tracked, %.0f%%)\n", result.frames,
        result.trackedFrames, result.trackedFraction() * 100.0);
    out << support::format(
        "accuracy    : max ATE %.4f m | mean %.4f m | RMSE %.4f m\n",
        result.ate.maxAte, result.ate.meanAte, result.ate.rmse);
    out << support::format(
        "local drift : RPE %.5f m/frame | %.5f rad/frame\n",
        result.rpe.translationRmse, result.rpe.rotationRmse);
    out << support::format(
        "host        : %s\n",
        metrics::describeTiming(result.hostTiming).c_str());
    out << support::format(
        "%-12s: %.1f ms/frame (%.1f FPS) | %.2f W paced | %.2f W "
        "batch\n",
        device.name.c_str(), sim.meanFrameSeconds * 1e3, sim.meanFps,
        sim.pacedWatts, sim.meanWatts);
    out << "per-kernel work (items / bytes / host ms):\n";
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        if (result.totalWork.itemsFor(id) == 0.0)
            continue;
        out << support::format(
            "  %-16s %14.0f %12.0f %10.2f\n", kfusion::kernelName(id),
            result.totalWork.itemsFor(id),
            result.totalWork.bytesFor(id),
            result.totalWork.hostSecondsFor(id) * 1e3);
    }
    return out.str();
}

void
addConfigParams(support::metrics::RunSession &session,
                const kfusion::KFusionConfig &config)
{
    if (!session.active())
        return;
    session.setParam("csr",
                     std::to_string(config.computeSizeRatio));
    session.setParam("icp", support::format("%g", config.icpThreshold));
    session.setParam("mu", support::format("%g", config.mu));
    session.setParam("ir", std::to_string(config.integrationRate));
    session.setParam("vr", std::to_string(config.volumeResolution));
    session.setParam("vs", support::format("%g", config.volumeSize));
    std::string pyramid;
    for (const int iters : config.pyramidIterations) {
        if (!pyramid.empty())
            pyramid += ",";
        pyramid += std::to_string(iters);
    }
    session.setParam("pyramid", pyramid);
    session.setParam("tr", std::to_string(config.trackingRate));
    session.setParam("rr", std::to_string(config.renderingRate));
    // Record the *resolved* backend ("auto" dispatched to a concrete
    // name), so run reports from different hosts are comparable.
    const kfusion::KernelBackend *backend =
        kfusion::resolveKernelBackend(config.kernelBackend);
    session.setParam("kernel.backend",
                     backend ? backend->name() : config.kernelBackend);
}

support::metrics::FrameTelemetry
frameTelemetry(const BenchmarkResult &result, size_t frame,
               const std::string &label,
               const devices::DeviceModel *device)
{
    using kfusion::KernelId;
    support::metrics::FrameTelemetry t;
    t.label = label;
    t.frame = frame;
    if (frame >= result.frameWork.size())
        return t;
    const kfusion::WorkCounts &work = result.frameWork[frame];

    t.wallSeconds = frame < result.frameSeconds.size()
                        ? result.frameSeconds[frame]
                        : work.totalHostSeconds();
    t.preprocessSeconds = kernelGroupSeconds(
        work, {KernelId::Mm2Meters, KernelId::BilateralFilter,
               KernelId::HalfSample, KernelId::Depth2Vertex,
               KernelId::Vertex2Normal});
    t.trackSeconds = kernelGroupSeconds(
        work,
        {KernelId::Track, KernelId::Reduce, KernelId::Solve});
    t.integrateSeconds =
        kernelGroupSeconds(work, {KernelId::Integrate});
    t.raycastSeconds = kernelGroupSeconds(
        work, {KernelId::Raycast, KernelId::RenderVolume});
    t.ateMeters = frame < result.ate.perFrame.size()
                      ? result.ate.perFrame[frame]
                      : 0.0;
    t.tracked = frame < result.frameTracked.size()
                    ? static_cast<bool>(result.frameTracked[frame])
                    : true;
    t.integrated = work.itemsFor(KernelId::Integrate) > 0.0;
    t.rssPeakBytes = frame < result.frameRssPeak.size()
                         ? result.frameRssPeak[frame]
                         : support::metrics::peakRssBytes();
    if (device) {
        // Modeled per-frame energy via the power-monitor abstraction
        // (the simulated INA231 rail of the target device).
        power::SimulatedPowerMonitor monitor(*device);
        monitor.recordFrame(work);
        t.simJoules = monitor.reading().joules;
    }
    return t;
}

size_t
appendRunTelemetry(support::metrics::RunSession &session,
                   const std::string &label,
                   const BenchmarkResult &result,
                   const devices::DeviceModel *device)
{
    if (!session.active())
        return 0;
    auto &registry = support::metrics::Registry::instance();
    auto &wall_histogram = registry.histogram("frame_wall_seconds");
    auto &ate_histogram = registry.histogram("frame_ate_m");
    std::unique_ptr<power::PowerMonitor> monitor =
        device ? power::makeSimulatedMonitor(*device)
               : power::makeNullMonitor();
    double previous_joules = 0.0;
    for (size_t frame = 0; frame < result.frameWork.size();
         ++frame) {
        support::metrics::FrameTelemetry t =
            frameTelemetry(result, frame, label, nullptr);
        monitor->recordFrame(result.frameWork[frame]);
        const power::EnergyReading reading = monitor->reading();
        if (reading.available) {
            t.simJoules = reading.joules - previous_joules;
            previous_joules = reading.joules;
        }
        wall_histogram.record(t.wallSeconds);
        ate_histogram.record(t.ateMeters);
        session.addFrame(t);
    }
    registry.counter("runs_total").add(1);
    registry.gauge("peak_rss_bytes")
        .setMax(support::metrics::peakRssBytes());
    if (support::pmu::profilingActive()) {
        // Attribute the run's modeled memory traffic to each kernel's
        // PMU span so the report derives measured bytes/s from the
        // task-clock the counters actually observed.
        for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
            const auto id = static_cast<kfusion::KernelId>(k);
            const double bytes = result.totalWork.bytesFor(id);
            if (bytes > 0.0)
                support::pmu::Profiler::instance().addSpanBytes(
                    kfusion::kernelName(id), bytes);
        }
    }
    return result.frameWork.size();
}

} // namespace slambench::core
