#include "core/report.hpp"

#include <sstream>

#include "support/csv.hpp"
#include "support/strings.hpp"

namespace slambench::core {

size_t
writeFrameLog(std::ostream &out, const BenchmarkResult &result,
              const devices::DeviceModel &device)
{
    std::vector<std::string> header{"frame", "ate_m",
                                    "host_seconds", "sim_seconds",
                                    "sim_joules"};
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        header.push_back(std::string(kfusion::kernelName(id)) +
                         "_items");
    }
    support::CsvWriter csv(out, header);
    for (size_t f = 0; f < result.frameWork.size(); ++f) {
        const kfusion::WorkCounts &work = result.frameWork[f];
        csv.beginRow()
            .cell(static_cast<int64_t>(f))
            .cell(f < result.ate.perFrame.size()
                      ? result.ate.perFrame[f]
                      : 0.0)
            .cell(work.totalHostSeconds())
            .cell(device.frameSeconds(work))
            .cell(device.frameJoules(work));
        for (size_t k = 0; k < kfusion::kNumKernels; ++k)
            csv.cell(work.items[k]);
    }
    csv.endRow();
    return csv.rowCount();
}

std::string
summarizeRun(const BenchmarkResult &result,
             const devices::DeviceModel &device,
             const std::string &system_name)
{
    const devices::SimulatedRun sim =
        devices::simulateRun(device, result.frameWork);

    std::ostringstream out;
    out << "=== " << system_name << " ===\n";
    out << support::format(
        "frames      : %zu (%zu tracked, %.0f%%)\n", result.frames,
        result.trackedFrames, result.trackedFraction() * 100.0);
    out << support::format(
        "accuracy    : max ATE %.4f m | mean %.4f m | RMSE %.4f m\n",
        result.ate.maxAte, result.ate.meanAte, result.ate.rmse);
    out << support::format(
        "local drift : RPE %.5f m/frame | %.5f rad/frame\n",
        result.rpe.translationRmse, result.rpe.rotationRmse);
    out << support::format(
        "host        : %s\n",
        metrics::describeTiming(result.hostTiming).c_str());
    out << support::format(
        "%-12s: %.1f ms/frame (%.1f FPS) | %.2f W paced | %.2f W "
        "batch\n",
        device.name.c_str(), sim.meanFrameSeconds * 1e3, sim.meanFps,
        sim.pacedWatts, sim.meanWatts);
    out << "per-kernel work (items / bytes / host ms):\n";
    for (size_t k = 0; k < kfusion::kNumKernels; ++k) {
        const auto id = static_cast<kfusion::KernelId>(k);
        if (result.totalWork.itemsFor(id) == 0.0)
            continue;
        out << support::format(
            "  %-16s %14.0f %12.0f %10.2f\n", kfusion::kernelName(id),
            result.totalWork.itemsFor(id),
            result.totalWork.bytesFor(id),
            result.totalWork.hostSecondsFor(id) * 1e3);
    }
    return out.str();
}

} // namespace slambench::core
