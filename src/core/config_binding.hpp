#ifndef SLAMBENCH_CORE_CONFIG_BINDING_HPP
#define SLAMBENCH_CORE_CONFIG_BINDING_HPP

/**
 * @file
 * Binding between the HyperMapper design space and KFusionConfig.
 *
 * The ten explored parameters are the ones named by the paper and
 * its companion studies: compute-size ratio, ICP threshold, mu,
 * integration rate, volume resolution, the three pyramid iteration
 * counts, tracking rate, and rendering rate.
 */

#include "hypermapper/param_space.hpp"
#include "kfusion/config.hpp"

namespace slambench::core {

/**
 * Build the KinectFusion design space with the ranges explored in
 * the paper's companion DSE studies and defaults equal to the
 * KinectFusion defaults.
 */
hypermapper::ParameterSpace kfusionParameterSpace();

/**
 * Decode a design-space point into a runnable configuration.
 *
 * @param space The space created by kfusionParameterSpace().
 * @param point One configuration from that space.
 * @return the corresponding KFusionConfig (other fields default).
 */
kfusion::KFusionConfig pointToConfig(
    const hypermapper::ParameterSpace &space,
    const hypermapper::Point &point);

/**
 * Encode a configuration as a design-space point (inverse of
 * pointToConfig for the explored fields).
 */
hypermapper::Point configToPoint(
    const hypermapper::ParameterSpace &space,
    const kfusion::KFusionConfig &config);

} // namespace slambench::core

#endif // SLAMBENCH_CORE_CONFIG_BINDING_HPP
