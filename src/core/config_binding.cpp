#include "core/config_binding.hpp"

#include <cmath>

#include "kfusion/backend.hpp"
#include "kfusion/volume_backend.hpp"

namespace slambench::core {

using hypermapper::ParameterSpace;
using hypermapper::Point;
using kfusion::KFusionConfig;

ParameterSpace
kfusionParameterSpace()
{
    ParameterSpace space;
    space.addOrdinal("compute_size_ratio", {1, 2, 4, 8}, 1);
    space.addReal("icp_threshold", 1e-6, 1e-4, 1e-5,
                  /*log_scale=*/true);
    space.addReal("mu", 0.02, 0.2, 0.1);
    space.addInteger("integration_rate", 1, 15, 2);
    space.addOrdinal("volume_resolution", {64, 96, 128, 192, 256},
                     256);
    space.addInteger("pyramid_level0", 0, 12, 10);
    space.addInteger("pyramid_level1", 0, 8, 5);
    space.addInteger("pyramid_level2", 0, 6, 4);
    space.addInteger("tracking_rate", 1, 4, 1);
    space.addInteger("rendering_rate", 1, 8, 4);
    // Kernel implementation axis (paper sec. II: the same algorithmic
    // configuration can run on differently optimized kernels). The
    // ordinal maps onto the kernel-backend registry: 0 = scalar,
    // 1 = simd, 2 = mixed (per-kernel best of the two). All backends
    // are bit-exact, so this dimension only moves the
    // performance/energy axes, never accuracy.
    space.addOrdinal("implementation", {0, 1, 2}, 0);
    // TSDF map data structure: 0 = dense array, 1 = hashed voxel
    // blocks. Sparse is bit-identical to dense on the observed
    // region, so like "implementation" this is a pure
    // performance/memory axis. block_size and pool_capacity only
    // take effect when volume = 1 (pool_capacity 0 = unbounded).
    space.addOrdinal("volume", {0, 1}, 0);
    space.addOrdinal("block_size", {8, 16}, 8);
    space.addInteger("pool_capacity", 0, 1 << 20, 0);
    return space;
}

KFusionConfig
pointToConfig(const ParameterSpace &space, const Point &point)
{
    const Point p = space.canonicalize(point);
    KFusionConfig config;
    config.computeSizeRatio = static_cast<int>(
        p[space.indexOf("compute_size_ratio")]);
    config.icpThreshold =
        static_cast<float>(p[space.indexOf("icp_threshold")]);
    config.mu = static_cast<float>(p[space.indexOf("mu")]);
    config.integrationRate =
        static_cast<int>(p[space.indexOf("integration_rate")]);
    config.volumeResolution =
        static_cast<int>(p[space.indexOf("volume_resolution")]);
    config.pyramidIterations = {
        static_cast<int>(p[space.indexOf("pyramid_level0")]),
        static_cast<int>(p[space.indexOf("pyramid_level1")]),
        static_cast<int>(p[space.indexOf("pyramid_level2")]),
    };
    config.trackingRate =
        static_cast<int>(p[space.indexOf("tracking_rate")]);
    config.renderingRate =
        static_cast<int>(p[space.indexOf("rendering_rate")]);
    config.kernelBackend = kfusion::kernelBackendFromOrdinal(
        p[space.indexOf("implementation")]);
    config.volumeBackend = kfusion::volumeBackendFromOrdinal(
        p[space.indexOf("volume")]);
    config.volumeBlockSize =
        static_cast<int>(p[space.indexOf("block_size")]);
    config.volumePoolCapacity =
        static_cast<long>(p[space.indexOf("pool_capacity")]);
    return config;
}

Point
configToPoint(const ParameterSpace &space, const KFusionConfig &config)
{
    Point p(space.size(), 0.0);
    p[space.indexOf("compute_size_ratio")] = config.computeSizeRatio;
    p[space.indexOf("icp_threshold")] = config.icpThreshold;
    p[space.indexOf("mu")] = config.mu;
    p[space.indexOf("integration_rate")] = config.integrationRate;
    p[space.indexOf("volume_resolution")] = config.volumeResolution;
    p[space.indexOf("pyramid_level0")] =
        config.pyramidIterations.size() > 0
            ? config.pyramidIterations[0]
            : 0;
    p[space.indexOf("pyramid_level1")] =
        config.pyramidIterations.size() > 1
            ? config.pyramidIterations[1]
            : 0;
    p[space.indexOf("pyramid_level2")] =
        config.pyramidIterations.size() > 2
            ? config.pyramidIterations[2]
            : 0;
    p[space.indexOf("tracking_rate")] = config.trackingRate;
    p[space.indexOf("rendering_rate")] = config.renderingRate;
    p[space.indexOf("implementation")] =
        kfusion::kernelBackendOrdinal(config.kernelBackend);
    p[space.indexOf("volume")] =
        kfusion::volumeBackendOrdinal(config.volumeBackend);
    p[space.indexOf("block_size")] = config.volumeBlockSize;
    p[space.indexOf("pool_capacity")] =
        static_cast<double>(config.volumePoolCapacity);
    return space.canonicalize(p);
}

} // namespace slambench::core
