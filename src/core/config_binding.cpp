#include "core/config_binding.hpp"

#include <cmath>

#include "kfusion/backend.hpp"

namespace slambench::core {

using hypermapper::ParameterSpace;
using hypermapper::Point;
using kfusion::KFusionConfig;

ParameterSpace
kfusionParameterSpace()
{
    ParameterSpace space;
    space.addOrdinal("compute_size_ratio", {1, 2, 4, 8}, 1);
    space.addReal("icp_threshold", 1e-6, 1e-4, 1e-5,
                  /*log_scale=*/true);
    space.addReal("mu", 0.02, 0.2, 0.1);
    space.addInteger("integration_rate", 1, 15, 2);
    space.addOrdinal("volume_resolution", {64, 96, 128, 192, 256},
                     256);
    space.addInteger("pyramid_level0", 0, 12, 10);
    space.addInteger("pyramid_level1", 0, 8, 5);
    space.addInteger("pyramid_level2", 0, 6, 4);
    space.addInteger("tracking_rate", 1, 4, 1);
    space.addInteger("rendering_rate", 1, 8, 4);
    // Kernel implementation axis (paper sec. II: the same algorithmic
    // configuration can run on differently optimized kernels). The
    // ordinal maps onto the kernel-backend registry: 0 = scalar,
    // 1 = simd. All backends are bit-exact, so this dimension only
    // moves the performance/energy axes, never accuracy.
    space.addOrdinal("implementation", {0, 1}, 0);
    return space;
}

KFusionConfig
pointToConfig(const ParameterSpace &space, const Point &point)
{
    const Point p = space.canonicalize(point);
    KFusionConfig config;
    config.computeSizeRatio = static_cast<int>(
        p[space.indexOf("compute_size_ratio")]);
    config.icpThreshold =
        static_cast<float>(p[space.indexOf("icp_threshold")]);
    config.mu = static_cast<float>(p[space.indexOf("mu")]);
    config.integrationRate =
        static_cast<int>(p[space.indexOf("integration_rate")]);
    config.volumeResolution =
        static_cast<int>(p[space.indexOf("volume_resolution")]);
    config.pyramidIterations = {
        static_cast<int>(p[space.indexOf("pyramid_level0")]),
        static_cast<int>(p[space.indexOf("pyramid_level1")]),
        static_cast<int>(p[space.indexOf("pyramid_level2")]),
    };
    config.trackingRate =
        static_cast<int>(p[space.indexOf("tracking_rate")]);
    config.renderingRate =
        static_cast<int>(p[space.indexOf("rendering_rate")]);
    config.kernelBackend = kfusion::kernelBackendFromOrdinal(
        p[space.indexOf("implementation")]);
    return config;
}

Point
configToPoint(const ParameterSpace &space, const KFusionConfig &config)
{
    Point p(space.size(), 0.0);
    p[space.indexOf("compute_size_ratio")] = config.computeSizeRatio;
    p[space.indexOf("icp_threshold")] = config.icpThreshold;
    p[space.indexOf("mu")] = config.mu;
    p[space.indexOf("integration_rate")] = config.integrationRate;
    p[space.indexOf("volume_resolution")] = config.volumeResolution;
    p[space.indexOf("pyramid_level0")] =
        config.pyramidIterations.size() > 0
            ? config.pyramidIterations[0]
            : 0;
    p[space.indexOf("pyramid_level1")] =
        config.pyramidIterations.size() > 1
            ? config.pyramidIterations[1]
            : 0;
    p[space.indexOf("pyramid_level2")] =
        config.pyramidIterations.size() > 2
            ? config.pyramidIterations[2]
            : 0;
    p[space.indexOf("tracking_rate")] = config.trackingRate;
    p[space.indexOf("rendering_rate")] = config.renderingRate;
    p[space.indexOf("implementation")] =
        kfusion::kernelBackendOrdinal(config.kernelBackend);
    return space.canonicalize(p);
}

} // namespace slambench::core
