#ifndef SLAMBENCH_CORE_EXPERIMENT_HPP
#define SLAMBENCH_CORE_EXPERIMENT_HPP

/**
 * @file
 * Glue for the paper's experiments: the DSE objective function
 * (configuration -> simulated runtime / Max ATE / power on a target
 * device) and helpers to replay a run across device fleets.
 */

#include <functional>
#include <vector>

#include "core/benchmark.hpp"
#include "core/config_binding.hpp"
#include "devices/device_model.hpp"
#include "hypermapper/drivers.hpp"

namespace slambench::core {

/** Objective vector layout produced by the evaluator. */
enum ObjectiveIndex : size_t {
    kObjRuntime = 0, ///< Mean simulated seconds/frame on the device.
    kObjMaxAte = 1,  ///< Max ATE, meters.
    kObjWatts = 2,   ///< Camera-paced simulated power, watts.
    kNumObjectives = 3,
};

/** What one DSE evaluation produced (kept for reporting). */
struct EvaluatedConfig
{
    kfusion::KFusionConfig config;
    devices::SimulatedRun simulated;
    metrics::AteResult ate;
    double trackedFraction = 0.0;
    bool valid = false;
    /**
     * The full benchmark run behind the objectives (per-frame work,
     * times, tracking flags). Empty (frames == 0) when the
     * configuration was rejected before running. Feeds per-frame
     * telemetry into run reports.
     */
    BenchmarkResult bench;
};

/** Options of the DSE objective. */
struct DseObjectiveOptions
{
    /** Runs whose tracked fraction falls below this are invalid. */
    double minTrackedFraction = 0.9;
    /**
     * Volume memory (resolution^3 * 8 bytes) above the device budget
     * makes the configuration invalid (it would not run).
     */
    bool enforceMemoryBudget = true;
};

/**
 * Build the HyperMapper evaluator for the paper's DSE: run the full
 * pipeline on @p sequence and report simulated objectives on
 * @p device.
 *
 * The returned callable owns copies of everything it needs and is
 * safe to call repeatedly and concurrently (the parallel DSE drivers
 * evaluate batches on a thread pool; the shared @p log is guarded
 * internally and fills in completion order); every call runs the
 * complete SLAM pipeline (no caching, evaluations are deterministic
 * anyway).
 *
 * @param space Design space (kfusionParameterSpace()).
 * @param sequence Workload.
 * @param device Target device model.
 * @param options Validity rules.
 * @param[out] log When non-null, every evaluation's detail record is
 *                 appended in completion order. With the parallel DSE
 *                 drivers (threads > 1) that order is nondeterministic
 *                 and thread-count dependent — do not rely on index
 *                 alignment with the evaluation sequence.
 */
hypermapper::Evaluator
makeDseEvaluator(const hypermapper::ParameterSpace &space,
                 const dataset::Sequence &sequence,
                 const devices::DeviceModel &device,
                 const DseObjectiveOptions &options = {},
                 std::vector<EvaluatedConfig> *log = nullptr);

/**
 * Run one configuration end-to-end and simulate it on one device.
 *
 * @param config Pipeline configuration.
 * @param sequence Workload.
 * @param device Target device model.
 * @return full detail record (valid flag per the default options).
 */
EvaluatedConfig evaluateConfigOnDevice(
    const kfusion::KFusionConfig &config,
    const dataset::Sequence &sequence,
    const devices::DeviceModel &device,
    const DseObjectiveOptions &options = {});

/**
 * Evaluator over several sequences: each configuration runs on every
 * sequence and the reported objectives are the worst case (runtime
 * and power: mean across sequences; Max ATE: max across sequences;
 * invalid if any run is invalid). The companion studies tune over
 * multiple trajectories for exactly this robustness.
 *
 * @param space Design space.
 * @param sequences Workloads; must stay alive while the evaluator
 *                  is used.
 * @param device Target device model.
 * @param options Validity rules.
 */
hypermapper::Evaluator makeMultiSequenceEvaluator(
    const hypermapper::ParameterSpace &space,
    const std::vector<dataset::Sequence> &sequences,
    const devices::DeviceModel &device,
    const DseObjectiveOptions &options = {});

/** One device's entry in the Fig. 3 readout. */
struct FleetEntry
{
    std::string device;
    std::string deviceClass;
    double defaultSeconds = 0.0; ///< Mean frame seconds, default cfg.
    double tunedSeconds = 0.0;   ///< Mean frame seconds, tuned cfg.
    double speedup = 0.0;        ///< defaultSeconds / tunedSeconds.
    bool ranDefault = true;      ///< Default cfg fit in memory.
    bool ranTuned = true;        ///< Tuned cfg fit in memory.
};

/**
 * Replay two recorded runs (default and tuned per-frame work) across
 * a device fleet, producing the Fig. 3 speed-up table.
 *
 * @param fleet Device models.
 * @param default_run Per-frame work of the default configuration.
 * @param default_volume_bytes TSDF bytes of the default config.
 * @param tuned_run Per-frame work of the tuned configuration.
 * @param tuned_volume_bytes TSDF bytes of the tuned config.
 */
std::vector<FleetEntry> replayOnFleet(
    const std::vector<devices::DeviceModel> &fleet,
    const std::vector<kfusion::WorkCounts> &default_run,
    double default_volume_bytes,
    const std::vector<kfusion::WorkCounts> &tuned_run,
    double tuned_volume_bytes);

/** @return TSDF volume footprint in bytes for a configuration. */
double volumeBytes(const kfusion::KFusionConfig &config);

} // namespace slambench::core

#endif // SLAMBENCH_CORE_EXPERIMENT_HPP
