#ifndef SLAMBENCH_CORE_BENCHMARK_HPP
#define SLAMBENCH_CORE_BENCHMARK_HPP

/**
 * @file
 * The benchmark loop: feed a sequence through a SLAM system and
 * collect the SLAMBench metric triple (speed, accuracy, power/work).
 */

#include <vector>

#include "core/slam_system.hpp"
#include "dataset/generator.hpp"
#include "metrics/ate.hpp"
#include "metrics/timing.hpp"

namespace slambench::core {

/** Options of one benchmark run. */
struct BenchmarkOptions
{
    /** Also compute the rigidly aligned ATE (TUM methodology). */
    bool alignedAte = true;
    /** Print per-frame progress at debug level. */
    bool verbose = false;
};

/** Everything measured during one run. */
struct BenchmarkResult
{
    size_t frames = 0;
    size_t trackedFrames = 0;

    /** ATE with the shared-start-frame convention (SLAMBench). */
    metrics::AteResult ate;
    /** ATE after rigid alignment (TUM), when requested. */
    metrics::AteResult ateAligned;
    /** Relative pose error over one frame (local drift). */
    metrics::RpeResult rpe;

    /** Host wall-clock timing of the pipeline. */
    metrics::TimingSummary hostTiming;

    /** Host wall seconds of each frame (drives FrameTelemetry). */
    std::vector<double> frameSeconds;
    /** Per-frame tracking acceptance. */
    std::vector<bool> frameTracked;
    /** Process RSS high-water mark after each frame, bytes. */
    std::vector<double> frameRssPeak;

    /** Per-frame work counts (feed these to device models). */
    std::vector<kfusion::WorkCounts> frameWork;
    /** Sum of frameWork. */
    kfusion::WorkCounts totalWork;

    /** Estimated camera-to-world pose per frame. */
    std::vector<math::Mat4f> estimatedPoses;

    /** @return tracked frames / frames. */
    double
    trackedFraction() const
    {
        return frames ? static_cast<double>(trackedFrames) /
                            static_cast<double>(frames)
                      : 0.0;
    }
};

/**
 * Run @p system over @p sequence, starting from the sequence's
 * ground-truth initial pose (the SLAMBench protocol).
 *
 * @param system SLAM system under test (re-initialized here).
 * @param sequence Input frames plus ground truth.
 * @param options Run options.
 * @return collected metrics.
 */
BenchmarkResult runBenchmark(SlamSystem &system,
                             const dataset::Sequence &sequence,
                             const BenchmarkOptions &options = {});

} // namespace slambench::core

#endif // SLAMBENCH_CORE_BENCHMARK_HPP
