#include "core/benchmark.hpp"

#include <chrono>

#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/slo_watchdog.hpp"
#include "support/trace.hpp"

namespace slambench::core {

BenchmarkResult
runBenchmark(SlamSystem &system, const dataset::Sequence &sequence,
             const BenchmarkOptions &options)
{
    BenchmarkResult result;
    if (sequence.frames.empty())
        support::fatal("runBenchmark: empty sequence");

    system.initialize(sequence.intrinsics, sequence.groundTruth.pose(0));

    std::vector<double> &frame_seconds = result.frameSeconds;
    frame_seconds.reserve(sequence.frames.size());
    result.frameTracked.reserve(sequence.frames.size());
    result.frameRssPeak.reserve(sequence.frames.size());

    for (size_t i = 0; i < sequence.frames.size(); ++i) {
        // When `--trace-requests` is armed, each bench frame is a
        // request trace of its own (tenant "" = single-tenant bench)
        // so the overhead gate measures tracing at the real per-frame
        // cost and /tracez works outside the serve layer too.
        support::trace::TraceContext trace_ctx;
        if (support::trace::requestTracingArmed())
            trace_ctx = support::trace::RequestTracer::instance()
                            .begin("", i);
        const auto start = std::chrono::steady_clock::now();
        bool tracked;
        {
            support::trace::ScopedTraceContext trace_scope(
                trace_ctx);
            tracked = system.processFrame(sequence.frames[i]);
        }
        const auto end = std::chrono::steady_clock::now();

        frame_seconds.push_back(
            std::chrono::duration<double>(end - start).count());
        result.frameTracked.push_back(tracked);
        result.frameRssPeak.push_back(
            support::metrics::peakRssBytes());
        result.estimatedPoses.push_back(system.currentPose());
        ++result.frames;
        if (tracked)
            ++result.trackedFrames;
        if (support::telemetry::liveTelemetry()) {
            // Cheap live ATE proxy (unaligned translation error at
            // this frame) so the watchdog and /metrics track
            // accuracy without waiting for the end-of-run solve.
            const double live_ate =
                i < sequence.groundTruth.size()
                    ? (system.currentPose().translationPart() -
                       sequence.groundTruth.pose(i)
                           .translationPart())
                          .norm()
                    : 0.0;
            support::telemetry::frameTick(i, frame_seconds.back(),
                                          live_ate, tracked);
        }
        if (trace_ctx.active() &&
            support::trace::requestTracingArmed()) {
            support::trace::RequestTraceFinish fin;
            fin.durationSeconds = frame_seconds.back();
            fin.trackingLost = !tracked;
            const auto slo =
                support::telemetry::SloWatchdog::instance()
                    .thresholds();
            fin.sloBreach = slo.frameP99Seconds > 0.0 &&
                            frame_seconds.back() >
                                slo.frameP99Seconds;
            support::trace::RequestTracer::instance().finish(
                trace_ctx, fin);
        }
        if (options.verbose) {
            support::logDebug()
                << "frame " << i << (tracked ? " tracked" : " LOST")
                << " in " << frame_seconds.back() * 1e3 << " ms";
        }
    }

    result.hostTiming = metrics::summarizeTiming(frame_seconds);
    result.ate = metrics::computeAte(result.estimatedPoses,
                                     sequence.groundTruth.poses(),
                                     /*align=*/false);
    if (options.alignedAte) {
        result.ateAligned = metrics::computeAte(
            result.estimatedPoses, sequence.groundTruth.poses(),
            /*align=*/true);
    }
    result.rpe = metrics::computeRpe(result.estimatedPoses,
                                     sequence.groundTruth.poses());

    result.frameWork = system.frameWork();
    for (const kfusion::WorkCounts &w : result.frameWork)
        result.totalWork.merge(w);
    return result;
}

} // namespace slambench::core
