#ifndef SLAMBENCH_CORE_REPORT_HPP
#define SLAMBENCH_CORE_REPORT_HPP

/**
 * @file
 * SLAMBench-style run reporting: the per-frame metric log (one CSV
 * row per frame: kernel times, tracking state, pose error) and the
 * human-readable summary block the original benchmark binaries
 * print at the end of a run.
 */

#include <ostream>
#include <string>

#include "core/benchmark.hpp"
#include "dataset/generator.hpp"
#include "devices/device_model.hpp"

namespace slambench::core {

/**
 * Write the per-frame log: frame index, host kernel times, work
 * items for the dominant kernels, per-frame ATE, and the simulated
 * device frame time.
 *
 * @param out Destination stream.
 * @param result A finished benchmark run.
 * @param device Device model used for the simulated column.
 * @return number of rows written.
 */
size_t writeFrameLog(std::ostream &out, const BenchmarkResult &result,
                     const devices::DeviceModel &device);

/**
 * Format the end-of-run summary block (the metric triple plus
 * per-kernel totals), mirroring the original SLAMBench output.
 *
 * @param result A finished benchmark run.
 * @param device Device model for simulated speed/power.
 * @param system_name Name of the SLAM system that produced it.
 * @return multi-line text.
 */
std::string summarizeRun(const BenchmarkResult &result,
                         const devices::DeviceModel &device,
                         const std::string &system_name);

} // namespace slambench::core

#endif // SLAMBENCH_CORE_REPORT_HPP
