#ifndef SLAMBENCH_CORE_REPORT_HPP
#define SLAMBENCH_CORE_REPORT_HPP

/**
 * @file
 * SLAMBench-style run reporting: the per-frame metric log (one CSV
 * row per frame: kernel times, tracking state, pose error) and the
 * human-readable summary block the original benchmark binaries
 * print at the end of a run.
 */

#include <ostream>
#include <string>

#include "core/benchmark.hpp"
#include "dataset/generator.hpp"
#include "devices/device_model.hpp"
#include "support/metrics.hpp"

namespace slambench::core {

/**
 * Write the per-frame log: frame index, host kernel times, work
 * items for the dominant kernels, per-frame ATE, and the simulated
 * device frame time.
 *
 * @param out Destination stream.
 * @param result A finished benchmark run.
 * @param device Device model used for the simulated column.
 * @return number of rows written.
 */
size_t writeFrameLog(std::ostream &out, const BenchmarkResult &result,
                     const devices::DeviceModel &device);

/**
 * Format the end-of-run summary block (the metric triple plus
 * per-kernel totals), mirroring the original SLAMBench output.
 *
 * @param result A finished benchmark run.
 * @param device Device model for simulated speed/power.
 * @param system_name Name of the SLAM system that produced it.
 * @return multi-line text.
 */
std::string summarizeRun(const BenchmarkResult &result,
                         const devices::DeviceModel &device,
                         const std::string &system_name);

/**
 * Record the explored pipeline parameters into a run-report session
 * (the `config` object of the JSON schema), using the SLAMBench flag
 * names (`csr`, `icp`, `mu`, `ir`, `vr`, `vs`, `pyramid`, `tr`,
 * `rr`).
 */
void addConfigParams(support::metrics::RunSession &session,
                     const kfusion::KFusionConfig &config);

/**
 * Build one frame's telemetry record from a benchmark run: phase
 * times partitioned from the frame's WorkCounts (preprocess / track
 * / integrate / raycast) and, when @p device is given, the modeled
 * energy of the frame from a simulated power monitor.
 *
 * @param result Finished benchmark run.
 * @param frame Frame index within @p result.
 * @param label Run label stored in the record.
 * @param device Device model for the energy column (nullptr = 0 J).
 */
support::metrics::FrameTelemetry
frameTelemetry(const BenchmarkResult &result, size_t frame,
               const std::string &label,
               const devices::DeviceModel *device);

/**
 * Append every frame of @p result to @p session (no-op when the
 * session is inactive) and fold the run into the process metrics
 * registry (`frame_wall_seconds` / `frame_ate_m` histograms and the
 * run counters the report's `histograms` section is built from).
 *
 * @return number of frames appended.
 */
size_t appendRunTelemetry(support::metrics::RunSession &session,
                          const std::string &label,
                          const BenchmarkResult &result,
                          const devices::DeviceModel *device =
                              nullptr);

} // namespace slambench::core

#endif // SLAMBENCH_CORE_REPORT_HPP
