#ifndef SLAMBENCH_METRICS_RECONSTRUCTION_HPP
#define SLAMBENCH_METRICS_RECONSTRUCTION_HPP

/**
 * @file
 * Surface reconstruction error: how far the reconstructed model lies
 * from the true scene surface. ICL-NUIM measures this by comparing
 * the output mesh against the synthetic model; with our procedural
 * SDF scene the ground-truth distance of any point is exact, so the
 * metric evaluates |scene SDF| at mesh vertices.
 */

#include <cstddef>

#include "dataset/sdf.hpp"
#include "kfusion/mesh.hpp"

namespace slambench::metrics {

/** Summary of the per-vertex surface distances. */
struct ReconstructionError
{
    double meanAbs = 0.0;  ///< Mean |distance to true surface|, m.
    double rmse = 0.0;     ///< RMS distance, meters.
    double maxAbs = 0.0;   ///< Worst vertex, meters.
    size_t samples = 0;    ///< Vertices evaluated.
};

/**
 * Evaluate a reconstructed mesh against the true scene.
 *
 * @param mesh Mesh extracted from the TSDF volume.
 * @param scene The procedural ground-truth scene.
 * @param stride Evaluate every Nth vertex (>= 1) to bound cost.
 * @return distance statistics (zeroes when the mesh is empty).
 */
ReconstructionError
computeReconstructionError(const kfusion::TriangleMesh &mesh,
                           const dataset::Scene &scene,
                           size_t stride = 1);

} // namespace slambench::metrics

#endif // SLAMBENCH_METRICS_RECONSTRUCTION_HPP
