#include "metrics/reconstruction.hpp"

#include <algorithm>
#include <cmath>

namespace slambench::metrics {

ReconstructionError
computeReconstructionError(const kfusion::TriangleMesh &mesh,
                           const dataset::Scene &scene, size_t stride)
{
    ReconstructionError error;
    if (mesh.vertices.empty() || stride == 0)
        return error;

    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = 0; i < mesh.vertices.size(); i += stride) {
        const double d = std::abs(
            static_cast<double>(scene.distance(mesh.vertices[i])));
        sum += d;
        sum_sq += d * d;
        error.maxAbs = std::max(error.maxAbs, d);
        ++error.samples;
    }
    const double n = static_cast<double>(error.samples);
    error.meanAbs = sum / n;
    error.rmse = std::sqrt(sum_sq / n);
    return error;
}

} // namespace slambench::metrics
