#ifndef SLAMBENCH_METRICS_ATE_HPP
#define SLAMBENCH_METRICS_ATE_HPP

/**
 * @file
 * Absolute Trajectory Error (ATE), the accuracy metric of SLAMBench.
 *
 * Follows the TUM RGB-D / ICL-NUIM methodology: optionally align the
 * estimated trajectory to the ground truth with the closed-form
 * rigid-body fit (Horn/Umeyama, no scale), then report statistics of
 * the per-frame translational differences. SLAMBench's headline
 * quality-of-result metric is Max ATE; mean and RMSE are reported too.
 */

#include <vector>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace slambench::metrics {

/** Summary statistics of the per-frame translational error. */
struct AteResult
{
    double maxAte = 0.0;  ///< Maximum error over frames, meters.
    double meanAte = 0.0; ///< Mean error, meters.
    double rmse = 0.0;    ///< Root-mean-square error, meters.
    double medianAte = 0.0; ///< Median error, meters.
    size_t frames = 0;    ///< Number of compared poses.
    /** Per-frame translational error, meters. */
    std::vector<double> perFrame;
};

/**
 * Closed-form rigid alignment (rotation + translation, no scale)
 * mapping @p source points onto @p target in the least-squares sense.
 *
 * @param source Point set to be transformed.
 * @param target Reference point set (same length).
 * @return the transform T minimizing sum |T(source_i) - target_i|^2.
 */
math::Mat4d alignRigid(const std::vector<math::Vec3d> &source,
                       const std::vector<math::Vec3d> &target);

/**
 * Compute the ATE between an estimated and a ground-truth trajectory.
 *
 * @param estimated Camera-to-world pose per frame.
 * @param ground_truth Camera-to-world pose per frame (same length).
 * @param align When true, rigidly align the estimate first (TUM
 *              methodology); when false, compare raw positions
 *              (SLAMBench compares in a shared start frame).
 * @return error statistics.
 */
AteResult computeAte(const std::vector<math::Mat4f> &estimated,
                     const std::vector<math::Mat4f> &ground_truth,
                     bool align = false);

/**
 * Convenience overload on camera positions only.
 */
AteResult computeAtePositions(const std::vector<math::Vec3d> &estimated,
                              const std::vector<math::Vec3d> &ground_truth,
                              bool align = false);

/** Relative Pose Error statistics (TUM RGB-D methodology). */
struct RpeResult
{
    double translationRmse = 0.0; ///< Meters per interval.
    double translationMax = 0.0;  ///< Worst interval, meters.
    double rotationRmse = 0.0;    ///< Radians per interval.
    double rotationMax = 0.0;     ///< Worst interval, radians.
    size_t pairs = 0;             ///< Pose pairs compared.
};

/**
 * Relative Pose Error over a fixed frame interval: for every i the
 * estimated motion between frames i and i+delta is compared to the
 * ground-truth motion over the same interval. Measures local drift,
 * complementary to the global ATE (TUM RGB-D benchmark definition).
 *
 * @param estimated Camera-to-world pose per frame.
 * @param ground_truth Camera-to-world pose per frame (same length).
 * @param delta Frame interval (>= 1).
 * @return error statistics (zeroes when too few frames).
 */
RpeResult computeRpe(const std::vector<math::Mat4f> &estimated,
                     const std::vector<math::Mat4f> &ground_truth,
                     size_t delta = 1);

} // namespace slambench::metrics

#endif // SLAMBENCH_METRICS_ATE_HPP
