#include "metrics/ate.hpp"

#include <algorithm>
#include <cmath>

#include "math/se3.hpp"
#include "math/solve.hpp"
#include "support/logging.hpp"

namespace slambench::metrics {

using math::Mat3d;
using math::Mat4d;
using math::Vec3d;

Mat4d
alignRigid(const std::vector<Vec3d> &source,
           const std::vector<Vec3d> &target)
{
    if (source.size() != target.size())
        support::panic("alignRigid: point sets differ in size");
    if (source.empty())
        return Mat4d::identity();

    const double n = static_cast<double>(source.size());
    Vec3d mean_s{}, mean_t{};
    for (size_t i = 0; i < source.size(); ++i) {
        mean_s += source[i];
        mean_t += target[i];
    }
    mean_s = mean_s / n;
    mean_t = mean_t / n;

    // Cross-covariance of centered sets, source x target.
    Mat3d cov = Mat3d::zero();
    for (size_t i = 0; i < source.size(); ++i) {
        const Vec3d s = source[i] - mean_s;
        const Vec3d t = target[i] - mean_t;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                cov(r, c) += s[static_cast<size_t>(r)] *
                             t[static_cast<size_t>(c)];
    }

    const Mat3d rot = math::hornRotation(cov);
    const Vec3d t = mean_t - rot * mean_s;
    return Mat4d::fromRt(rot, t);
}

AteResult
computeAtePositions(const std::vector<Vec3d> &estimated,
                    const std::vector<Vec3d> &ground_truth, bool align)
{
    if (estimated.size() != ground_truth.size())
        support::panic("computeAte: trajectory lengths differ");

    AteResult result;
    result.frames = estimated.size();
    if (estimated.empty())
        return result;

    Mat4d transform = Mat4d::identity();
    if (align)
        transform = alignRigid(estimated, ground_truth);

    result.perFrame.reserve(estimated.size());
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = 0; i < estimated.size(); ++i) {
        const Vec3d mapped = transform.transformPoint(estimated[i]);
        const double err = (mapped - ground_truth[i]).norm();
        result.perFrame.push_back(err);
        result.maxAte = std::max(result.maxAte, err);
        sum += err;
        sum_sq += err * err;
    }
    const double n = static_cast<double>(estimated.size());
    result.meanAte = sum / n;
    result.rmse = std::sqrt(sum_sq / n);

    std::vector<double> sorted = result.perFrame;
    std::sort(sorted.begin(), sorted.end());
    // Even-length trajectories: average the two middle elements
    // (the TUM evaluate_ate convention), not the upper-middle one.
    const size_t mid = sorted.size() / 2;
    result.medianAte = (sorted.size() % 2 == 0)
                           ? 0.5 * (sorted[mid - 1] + sorted[mid])
                           : sorted[mid];
    return result;
}

AteResult
computeAte(const std::vector<math::Mat4f> &estimated,
           const std::vector<math::Mat4f> &ground_truth, bool align)
{
    if (estimated.size() != ground_truth.size())
        support::panic("computeAte: trajectory lengths differ");
    std::vector<Vec3d> est_pos, gt_pos;
    est_pos.reserve(estimated.size());
    gt_pos.reserve(ground_truth.size());
    for (size_t i = 0; i < estimated.size(); ++i) {
        est_pos.push_back(
            estimated[i].translationPart().cast<double>());
        gt_pos.push_back(
            ground_truth[i].translationPart().cast<double>());
    }
    return computeAtePositions(est_pos, gt_pos, align);
}

RpeResult
computeRpe(const std::vector<math::Mat4f> &estimated,
           const std::vector<math::Mat4f> &ground_truth, size_t delta)
{
    if (estimated.size() != ground_truth.size())
        support::panic("computeRpe: trajectory lengths differ");
    RpeResult result;
    if (delta == 0 || estimated.size() <= delta)
        return result;

    double t_sq = 0.0;
    double r_sq = 0.0;
    for (size_t i = 0; i + delta < estimated.size(); ++i) {
        const math::Mat4d est_motion =
            (estimated[i].rigidInverse() * estimated[i + delta])
                .cast<double>();
        const math::Mat4d gt_motion =
            (ground_truth[i].rigidInverse() * ground_truth[i + delta])
                .cast<double>();
        const math::Mat4d error =
            gt_motion.rigidInverse() * est_motion;

        const double t_err = error.translationPart().norm();
        const double r_err = math::logSo3(error.rotation()).norm();
        t_sq += t_err * t_err;
        r_sq += r_err * r_err;
        result.translationMax = std::max(result.translationMax, t_err);
        result.rotationMax = std::max(result.rotationMax, r_err);
        ++result.pairs;
    }
    const double n = static_cast<double>(result.pairs);
    result.translationRmse = std::sqrt(t_sq / n);
    result.rotationRmse = std::sqrt(r_sq / n);
    return result;
}

} // namespace slambench::metrics
