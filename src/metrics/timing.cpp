#include "metrics/timing.hpp"

#include "support/strings.hpp"

namespace slambench::metrics {

TimingSummary
summarizeTiming(const std::vector<double> &frame_seconds)
{
    TimingSummary summary;
    for (double s : frame_seconds) {
        summary.frameSeconds.add(s);
        summary.totalSeconds += s;
    }
    summary.p95Seconds = support::percentile(frame_seconds, 95.0);
    return summary;
}

std::string
describeTiming(const TimingSummary &summary)
{
    return support::format(
        "%zu frames, mean %.2f ms/frame (%.1f FPS), p95 %.2f ms, "
        "worst %.2f ms, total %.3f s",
        summary.frameSeconds.count(),
        summary.frameSeconds.mean() * 1e3, summary.meanFps(),
        summary.p95Seconds * 1e3, summary.frameSeconds.max() * 1e3,
        summary.totalSeconds);
}

} // namespace slambench::metrics
