#ifndef SLAMBENCH_METRICS_TIMING_HPP
#define SLAMBENCH_METRICS_TIMING_HPP

/**
 * @file
 * Frame-timing aggregation: the "speed" axis of the SLAMBench
 * performance/accuracy/power triad.
 */

#include <string>
#include <vector>

#include "support/stats.hpp"

namespace slambench::metrics {

/** Aggregated per-frame timing of a run. */
struct TimingSummary
{
    support::RunningStat frameSeconds; ///< Distribution of frame times.
    double p95Seconds = 0.0;           ///< 95th percentile frame time.
    double totalSeconds = 0.0;         ///< Sum over frames.

    /** @return mean frames per second (0 when empty). */
    double
    meanFps() const
    {
        const double mean = frameSeconds.mean();
        return mean > 0.0 ? 1.0 / mean : 0.0;
    }

    /** @return worst-case frames per second. */
    double
    worstFps() const
    {
        const double worst = frameSeconds.max();
        return worst > 0.0 ? 1.0 / worst : 0.0;
    }
};

/**
 * Summarize a sequence of per-frame durations.
 *
 * @param frame_seconds One duration per processed frame.
 */
TimingSummary summarizeTiming(const std::vector<double> &frame_seconds);

/**
 * Format a timing summary as a one-line human-readable string.
 */
std::string describeTiming(const TimingSummary &summary);

} // namespace slambench::metrics

#endif // SLAMBENCH_METRICS_TIMING_HPP
