#ifndef SLAMBENCH_METRICS_TIMING_HPP
#define SLAMBENCH_METRICS_TIMING_HPP

/**
 * @file
 * Frame-timing aggregation: the "speed" axis of the SLAMBench
 * performance/accuracy/power triad.
 *
 * All timing in this repository uses the monotonic steady clock —
 * never `system_clock`, which steps under NTP and would corrupt
 * frame times. `now_ns()` below is the single canonical helper; the
 * metrics registry (`support/metrics.hpp`), the benchmark loop, and
 * new instrumentation should use it instead of spelling out chrono
 * casts (audited: benchmark.cpp, work_counters.hpp, and trace.cpp
 * already time with `steady_clock`).
 */

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace slambench::metrics {

/**
 * @return nanoseconds on the monotonic steady clock. Differences are
 * meaningful; the absolute value is not (arbitrary epoch).
 */
inline uint64_t
now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Aggregated per-frame timing of a run. */
struct TimingSummary
{
    support::RunningStat frameSeconds; ///< Distribution of frame times.
    double p95Seconds = 0.0;           ///< 95th percentile frame time.
    double totalSeconds = 0.0;         ///< Sum over frames.

    /** @return mean frames per second (0 when empty). */
    double
    meanFps() const
    {
        const double mean = frameSeconds.mean();
        return mean > 0.0 ? 1.0 / mean : 0.0;
    }

    /** @return worst-case frames per second. */
    double
    worstFps() const
    {
        const double worst = frameSeconds.max();
        return worst > 0.0 ? 1.0 / worst : 0.0;
    }
};

/**
 * Summarize a sequence of per-frame durations.
 *
 * @param frame_seconds One duration per processed frame.
 */
TimingSummary summarizeTiming(const std::vector<double> &frame_seconds);

/**
 * Format a timing summary as a one-line human-readable string.
 */
std::string describeTiming(const TimingSummary &summary);

} // namespace slambench::metrics

#endif // SLAMBENCH_METRICS_TIMING_HPP
