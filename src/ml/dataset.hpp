#ifndef SLAMBENCH_ML_DATASET_HPP
#define SLAMBENCH_ML_DATASET_HPP

/**
 * @file
 * Tabular dataset container for the learning substrate.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace slambench::ml {

/**
 * Dense feature matrix with one numeric target per row.
 *
 * Categorical/ordinal features are encoded as doubles by the caller
 * (the parameter-space layer owns the encoding).
 */
class Dataset
{
  public:
    /** @param num_features Columns of the feature matrix. */
    explicit Dataset(size_t num_features)
        : numFeatures_(num_features)
    {}

    /** @return feature (column) count. */
    size_t numFeatures() const { return numFeatures_; }

    /** @return row count. */
    size_t size() const { return targets_.size(); }

    /** @return true when no rows were added. */
    bool empty() const { return targets_.empty(); }

    /**
     * Append a row.
     *
     * @param features Exactly numFeatures() values.
     * @param target Regression target or class label.
     */
    void addRow(const std::vector<double> &features, double target);

    /** @return feature @p f of row @p row. */
    double
    feature(size_t row, size_t f) const
    {
        return features_[row * numFeatures_ + f];
    }

    /** @return target of row @p row. */
    double target(size_t row) const { return targets_[row]; }

    /** @return all targets. */
    const std::vector<double> &targets() const { return targets_; }

    /** Copy row @p row's features into @p out. */
    void rowFeatures(size_t row, std::vector<double> &out) const;

    /** Optional column names (for rule printing). */
    void setFeatureNames(std::vector<std::string> names);

    /** @return name of feature @p f ("f<index>" when unset). */
    std::string featureName(size_t f) const;

  private:
    size_t numFeatures_;
    std::vector<double> features_;
    std::vector<double> targets_;
    std::vector<std::string> names_;
};

} // namespace slambench::ml

#endif // SLAMBENCH_ML_DATASET_HPP
