#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace slambench::ml {

void
RandomForest::fit(const Dataset &data, const ForestOptions &options,
                  support::Rng &rng)
{
    if (data.empty())
        support::panic("RandomForest::fit: empty dataset");

    ForestOptions opts = options;
    if (opts.tree.featureSubset == 0) {
        opts.tree.featureSubset = static_cast<size_t>(
            std::ceil(std::sqrt(
                static_cast<double>(data.numFeatures()))));
    }

    const size_t sample_size = std::max<size_t>(
        1, static_cast<size_t>(opts.bootstrapFraction *
                               static_cast<double>(data.size())));

    trees_.assign(opts.numTrees, DecisionTree{});
    std::vector<size_t> rows(sample_size);
    for (DecisionTree &tree : trees_) {
        for (size_t &row : rows)
            row = rng.uniformInt(static_cast<uint64_t>(data.size()));
        tree.fitRegression(data, rows, opts.tree, rng);
    }
}

double
RandomForest::predict(const std::vector<double> &features) const
{
    return predictWithUncertainty(features).mean;
}

ForestPrediction
RandomForest::predictWithUncertainty(
    const std::vector<double> &features) const
{
    if (trees_.empty())
        support::panic("RandomForest::predict: forest is not fitted");
    double sum = 0.0;
    double sq = 0.0;
    for (const DecisionTree &tree : trees_) {
        const double p = tree.predict(features);
        sum += p;
        sq += p * p;
    }
    const double n = static_cast<double>(trees_.size());
    ForestPrediction pred;
    pred.mean = sum / n;
    pred.variance = std::max(0.0, sq / n - pred.mean * pred.mean);
    return pred;
}

double
RandomForest::mseOn(const Dataset &data) const
{
    if (data.empty())
        return 0.0;
    double sse = 0.0;
    std::vector<double> features;
    for (size_t i = 0; i < data.size(); ++i) {
        data.rowFeatures(i, features);
        const double err = predict(features) - data.target(i);
        sse += err * err;
    }
    return sse / static_cast<double>(data.size());
}

} // namespace slambench::ml
