#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace slambench::ml {

void
RandomForest::fit(const Dataset &data, const ForestOptions &options,
                  support::Rng &rng, support::ThreadPool *pool)
{
    if (data.empty())
        support::panic("RandomForest::fit: empty dataset");

    ForestOptions opts = options;
    if (opts.tree.featureSubset == 0) {
        opts.tree.featureSubset = static_cast<size_t>(
            std::ceil(std::sqrt(
                static_cast<double>(data.numFeatures()))));
    }

    const size_t sample_size = std::max<size_t>(
        1, static_cast<size_t>(opts.bootstrapFraction *
                               static_cast<double>(data.size())));

    trees_.assign(opts.numTrees, DecisionTree{});

    // Split one independent stream per tree up front so the fitted
    // forest does not depend on execution order (or thread count).
    std::vector<support::Rng> tree_rngs;
    tree_rngs.reserve(trees_.size());
    for (size_t i = 0; i < trees_.size(); ++i)
        tree_rngs.push_back(rng.split());

    const auto fit_tree = [&](size_t i) {
        support::Rng &tree_rng = tree_rngs[i];
        std::vector<size_t> rows(sample_size);
        for (size_t &row : rows)
            row = tree_rng.uniformInt(
                static_cast<uint64_t>(data.size()));
        trees_[i].fitRegression(data, rows, opts.tree, tree_rng);
    };

    if (pool != nullptr && trees_.size() > 1) {
        pool->parallelFor(0, trees_.size(), fit_tree);
    } else {
        for (size_t i = 0; i < trees_.size(); ++i)
            fit_tree(i);
    }
}

double
RandomForest::predict(const std::vector<double> &features) const
{
    return predictWithUncertainty(features).mean;
}

ForestPrediction
RandomForest::predictWithUncertainty(
    const std::vector<double> &features) const
{
    if (trees_.empty())
        support::panic("RandomForest::predict: forest is not fitted");
    double sum = 0.0;
    double sq = 0.0;
    for (const DecisionTree &tree : trees_) {
        const double p = tree.predict(features);
        sum += p;
        sq += p * p;
    }
    const double n = static_cast<double>(trees_.size());
    ForestPrediction pred;
    pred.mean = sum / n;
    pred.variance = std::max(0.0, sq / n - pred.mean * pred.mean);
    return pred;
}

double
RandomForest::mseOn(const Dataset &data) const
{
    if (data.empty())
        return 0.0;
    double sse = 0.0;
    std::vector<double> features;
    for (size_t i = 0; i < data.size(); ++i) {
        data.rowFeatures(i, features);
        const double err = predict(features) - data.target(i);
        sse += err * err;
    }
    return sse / static_cast<double>(data.size());
}

} // namespace slambench::ml
