#ifndef SLAMBENCH_ML_RANDOM_FOREST_HPP
#define SLAMBENCH_ML_RANDOM_FOREST_HPP

/**
 * @file
 * Random-forest regression: bagged CART trees with per-split feature
 * subsampling. This is the predictive model HyperMapper's active
 * learning builds over the algorithmic configuration space.
 */

#include <cstddef>
#include <vector>

#include "ml/decision_tree.hpp"

namespace slambench::support {
class ThreadPool;
}

namespace slambench::ml {

/** Forest hyper-parameters. */
struct ForestOptions
{
    size_t numTrees = 40;
    TreeOptions tree;
    /**
     * Bootstrap sample size as a fraction of the training set
     * (sampling with replacement).
     */
    double bootstrapFraction = 1.0;
};

/** Mean and spread of the per-tree predictions for one query. */
struct ForestPrediction
{
    double mean = 0.0;
    double variance = 0.0; ///< Across trees; an uncertainty proxy.
};

/**
 * Bagged regression forest.
 */
class RandomForest
{
  public:
    /**
     * Fit on all rows of @p data.
     *
     * One independent Rng stream is split off @p rng per tree before
     * any tree is fitted, so the result is bit-identical whether the
     * trees are fitted serially or in parallel on @p pool.
     *
     * @param data Training rows.
     * @param options Forest hyper-parameters. A featureSubset of 0
     *                defaults to ceil(sqrt(num_features)).
     * @param rng Randomness for bootstrapping and splits; always
     *            advanced by exactly numTrees split() calls.
     * @param pool Optional pool for concurrent per-tree fitting;
     *             nullptr fits serially.
     */
    void fit(const Dataset &data, const ForestOptions &options,
             support::Rng &rng, support::ThreadPool *pool = nullptr);

    /** @return mean prediction for @p features. */
    double predict(const std::vector<double> &features) const;

    /** @return mean and across-tree variance for @p features. */
    ForestPrediction
    predictWithUncertainty(const std::vector<double> &features) const;

    /** @return number of fitted trees. */
    size_t size() const { return trees_.size(); }

    /**
     * Out-of-bag-style quality check: mean squared error of the
     * forest on a held-out dataset.
     */
    double mseOn(const Dataset &data) const;

  private:
    std::vector<DecisionTree> trees_;
};

} // namespace slambench::ml

#endif // SLAMBENCH_ML_RANDOM_FOREST_HPP
