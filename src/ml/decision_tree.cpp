#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace slambench::ml {

namespace {

/** Split candidate scored by its criterion improvement. */
struct BestSplit
{
    int feature = -1;
    double threshold = 0.0;
    double score = std::numeric_limits<double>::infinity();
    size_t splitAt = 0; ///< Count of rows going left after the sort.
};

/**
 * Find the best SSE split of rows[begin..end) on @p feature. The rows
 * slice must already be sorted by that feature.
 */
void
scoreSseSplits(const Dataset &data, const std::vector<size_t> &rows,
               size_t begin, size_t end, int feature,
               size_t min_leaf, BestSplit &best)
{
    const size_t n = end - begin;
    // Prefix sums of y and y^2 allow O(1) SSE for any split point.
    double sum_left = 0.0, sq_left = 0.0;
    double sum_total = 0.0, sq_total = 0.0;
    for (size_t i = begin; i < end; ++i) {
        const double y = data.target(rows[i]);
        sum_total += y;
        sq_total += y * y;
    }

    for (size_t i = 0; i + 1 < n; ++i) {
        const double y = data.target(rows[begin + i]);
        sum_left += y;
        sq_left += y * y;

        const double a =
            data.feature(rows[begin + i], static_cast<size_t>(feature));
        const double b = data.feature(rows[begin + i + 1],
                                      static_cast<size_t>(feature));
        if (a == b)
            continue; // can't split between equal values
        const size_t n_left = i + 1;
        const size_t n_right = n - n_left;
        if (n_left < min_leaf || n_right < min_leaf)
            continue;

        const double sum_right = sum_total - sum_left;
        const double sq_right = sq_total - sq_left;
        const double sse_left =
            sq_left - sum_left * sum_left / static_cast<double>(n_left);
        const double sse_right =
            sq_right -
            sum_right * sum_right / static_cast<double>(n_right);
        const double score = sse_left + sse_right;
        if (score < best.score) {
            best.score = score;
            best.feature = feature;
            best.threshold = (a + b) / 2.0;
            best.splitAt = n_left;
        }
    }
}

/**
 * Find the best Gini split (binary labels) of the sorted slice.
 */
void
scoreGiniSplits(const Dataset &data, const std::vector<size_t> &rows,
                size_t begin, size_t end, int feature,
                size_t min_leaf, BestSplit &best)
{
    const size_t n = end - begin;
    double pos_total = 0.0;
    for (size_t i = begin; i < end; ++i)
        pos_total += data.target(rows[i]);

    double pos_left = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
        pos_left += data.target(rows[begin + i]);

        const double a =
            data.feature(rows[begin + i], static_cast<size_t>(feature));
        const double b = data.feature(rows[begin + i + 1],
                                      static_cast<size_t>(feature));
        if (a == b)
            continue;
        const size_t n_left = i + 1;
        const size_t n_right = n - n_left;
        if (n_left < min_leaf || n_right < min_leaf)
            continue;

        const double pl = pos_left / static_cast<double>(n_left);
        const double pr = (pos_total - pos_left) /
                          static_cast<double>(n_right);
        const double gini_left = 2.0 * pl * (1.0 - pl);
        const double gini_right = 2.0 * pr * (1.0 - pr);
        const double score =
            (static_cast<double>(n_left) * gini_left +
             static_cast<double>(n_right) * gini_right) /
            static_cast<double>(n);
        if (score < best.score) {
            best.score = score;
            best.feature = feature;
            best.threshold = (a + b) / 2.0;
            best.splitAt = n_left;
        }
    }
}

} // namespace

void
DecisionTree::fitRegression(const Dataset &data,
                            const std::vector<size_t> &rows,
                            const TreeOptions &options,
                            support::Rng &rng)
{
    fit(data, rows, options, rng, Criterion::Sse);
}

void
DecisionTree::fitClassification(const Dataset &data,
                                const std::vector<size_t> &rows,
                                const TreeOptions &options,
                                support::Rng &rng)
{
    fit(data, rows, options, rng, Criterion::Gini);
}

void
DecisionTree::fit(const Dataset &data, const std::vector<size_t> &rows,
                  const TreeOptions &options, support::Rng &rng,
                  Criterion criterion)
{
    if (rows.empty())
        support::panic("DecisionTree::fit: no training rows");
    nodes_.clear();
    std::vector<size_t> working = rows;
    buildNode(data, working, 0, working.size(), 0, options, rng,
              criterion);
}

int
DecisionTree::buildNode(const Dataset &data, std::vector<size_t> &rows,
                        size_t begin, size_t end, size_t depth,
                        const TreeOptions &options, support::Rng &rng,
                        Criterion criterion)
{
    const size_t n = end - begin;
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[static_cast<size_t>(node_id)].samples = n;

    double mean = 0.0;
    for (size_t i = begin; i < end; ++i)
        mean += data.target(rows[i]);
    mean /= static_cast<double>(n);
    nodes_[static_cast<size_t>(node_id)].value = mean;

    const bool pure =
        criterion == Criterion::Gini && (mean == 0.0 || mean == 1.0);
    if (depth >= options.maxDepth || n < options.minSamplesSplit ||
        pure)
        return node_id;

    // Select the feature subset for this split.
    std::vector<int> candidates;
    for (size_t f = 0; f < data.numFeatures(); ++f)
        candidates.push_back(static_cast<int>(f));
    if (options.featureSubset > 0 &&
        options.featureSubset < candidates.size()) {
        rng.shuffle(candidates);
        candidates.resize(options.featureSubset);
    }

    BestSplit best;
    std::vector<size_t> scratch(rows.begin() + static_cast<long>(begin),
                                rows.begin() + static_cast<long>(end));
    for (int feature : candidates) {
        // Sort the slice by this feature, then scan split points.
        std::sort(scratch.begin(), scratch.end(),
                  [&](size_t a, size_t b) {
                      return data.feature(a,
                                          static_cast<size_t>(feature)) <
                             data.feature(b,
                                          static_cast<size_t>(feature));
                  });
        std::copy(scratch.begin(), scratch.end(),
                  rows.begin() + static_cast<long>(begin));
        if (criterion == Criterion::Sse) {
            scoreSseSplits(data, rows, begin, end, feature,
                           options.minSamplesLeaf, best);
        } else {
            scoreGiniSplits(data, rows, begin, end, feature,
                            options.minSamplesLeaf, best);
        }
    }

    if (best.feature < 0)
        return node_id;

    // Re-sort by the winning feature and partition.
    std::sort(rows.begin() + static_cast<long>(begin),
              rows.begin() + static_cast<long>(end),
              [&](size_t a, size_t b) {
                  return data.feature(
                             a, static_cast<size_t>(best.feature)) <
                         data.feature(
                             b, static_cast<size_t>(best.feature));
              });
    const size_t mid = begin + best.splitAt;

    nodes_[static_cast<size_t>(node_id)].feature = best.feature;
    nodes_[static_cast<size_t>(node_id)].threshold = best.threshold;

    const int left = buildNode(data, rows, begin, mid, depth + 1,
                               options, rng, criterion);
    nodes_[static_cast<size_t>(node_id)].left = left;
    const int right = buildNode(data, rows, mid, end, depth + 1,
                                options, rng, criterion);
    nodes_[static_cast<size_t>(node_id)].right = right;
    return node_id;
}

double
DecisionTree::predict(const std::vector<double> &features) const
{
    if (nodes_.empty())
        support::panic("DecisionTree::predict: tree is not fitted");
    int node = 0;
    for (;;) {
        const Node &n = nodes_[static_cast<size_t>(node)];
        if (n.feature < 0)
            return n.value;
        node = features[static_cast<size_t>(n.feature)] <= n.threshold
                   ? n.left
                   : n.right;
    }
}

size_t
DecisionTree::depth() const
{
    return nodes_.empty() ? 0 : depthRecursive(0);
}

size_t
DecisionTree::depthRecursive(int node) const
{
    const Node &n = nodes_[static_cast<size_t>(node)];
    if (n.feature < 0)
        return 1;
    return 1 + std::max(depthRecursive(n.left),
                        depthRecursive(n.right));
}

std::string
DecisionTree::toRules(const Dataset &data,
                      const std::string &positive_label,
                      const std::string &negative_label) const
{
    std::string out;
    if (nodes_.empty())
        return out;
    rulesRecursive(data, 0, 0, positive_label, negative_label, out);
    return out;
}

void
DecisionTree::rulesRecursive(const Dataset &data, int node,
                             size_t indent,
                             const std::string &positive_label,
                             const std::string &negative_label,
                             std::string &out) const
{
    const Node &n = nodes_[static_cast<size_t>(node)];
    const std::string pad(indent * 2, ' ');
    if (n.feature < 0) {
        out += support::format(
            "%s-> %s (p=%.2f, n=%zu)\n", pad.c_str(),
            n.value > 0.5 ? positive_label.c_str()
                          : negative_label.c_str(),
            n.value, n.samples);
        return;
    }
    out += support::format(
        "%sif %s <= %.4g:\n", pad.c_str(),
        data.featureName(static_cast<size_t>(n.feature)).c_str(),
        n.threshold);
    rulesRecursive(data, n.left, indent + 1, positive_label,
                   negative_label, out);
    out += support::format("%selse:  # %s > %.4g\n", pad.c_str(),
                           data.featureName(
                                   static_cast<size_t>(n.feature))
                               .c_str(),
                           n.threshold);
    rulesRecursive(data, n.right, indent + 1, positive_label,
                   negative_label, out);
}

} // namespace slambench::ml
