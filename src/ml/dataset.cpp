#include "ml/dataset.hpp"

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace slambench::ml {

void
Dataset::addRow(const std::vector<double> &features, double target)
{
    if (features.size() != numFeatures_)
        support::panic("Dataset::addRow: feature count mismatch");
    features_.insert(features_.end(), features.begin(), features.end());
    targets_.push_back(target);
}

void
Dataset::rowFeatures(size_t row, std::vector<double> &out) const
{
    out.assign(features_.begin() +
                   static_cast<long>(row * numFeatures_),
               features_.begin() +
                   static_cast<long>((row + 1) * numFeatures_));
}

void
Dataset::setFeatureNames(std::vector<std::string> names)
{
    if (names.size() != numFeatures_)
        support::panic("Dataset::setFeatureNames: name count mismatch");
    names_ = std::move(names);
}

std::string
Dataset::featureName(size_t f) const
{
    if (f < names_.size())
        return names_[f];
    return support::format("f%zu", f);
}

} // namespace slambench::ml
