#ifndef SLAMBENCH_ML_DECISION_TREE_HPP
#define SLAMBENCH_ML_DECISION_TREE_HPP

/**
 * @file
 * CART decision trees: regression (SSE splitting) for the random
 * forest, and classification (Gini splitting) for the Fig. 2
 * "knowledge extraction" readout, which turns DSE results into
 * human-readable parameter rules.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "support/rng.hpp"

namespace slambench::ml {

/** Hyper-parameters shared by both tree types. */
struct TreeOptions
{
    size_t maxDepth = 12;
    size_t minSamplesLeaf = 2;
    size_t minSamplesSplit = 4;
    /**
     * Features considered per split; 0 means all (plain CART).
     * Forests pass ~sqrt(num_features) for decorrelation.
     */
    size_t featureSubset = 0;
};

/**
 * CART tree, regression or classification depending on fit call.
 */
class DecisionTree
{
  public:
    DecisionTree() = default;

    /**
     * Fit a regression tree minimizing within-leaf SSE.
     *
     * @param data Training rows.
     * @param rows Indices of rows to use (bootstrap sample).
     * @param options Hyper-parameters.
     * @param rng Source for feature subsampling.
     */
    void fitRegression(const Dataset &data,
                       const std::vector<size_t> &rows,
                       const TreeOptions &options, support::Rng &rng);

    /**
     * Fit a binary classification tree minimizing Gini impurity.
     * Targets must be 0.0 or 1.0.
     *
     * @param data Training rows (targets are class labels).
     * @param rows Indices of rows to use.
     * @param options Hyper-parameters.
     * @param rng Source for feature subsampling.
     */
    void fitClassification(const Dataset &data,
                           const std::vector<size_t> &rows,
                           const TreeOptions &options,
                           support::Rng &rng);

    /**
     * Predict for one feature vector.
     *
     * Regression: leaf mean. Classification: positive-class
     * probability (leaf fraction).
     */
    double predict(const std::vector<double> &features) const;

    /** @return number of nodes (0 before fitting). */
    size_t nodeCount() const { return nodes_.size(); }

    /** @return maximum depth of the fitted tree. */
    size_t depth() const;

    /**
     * Render the tree as indented if/else rules using the dataset's
     * feature names (the Fig. 2 knowledge readout).
     *
     * @param data Dataset whose feature names label the splits.
     * @param positive_label Text for leaves predicting > 0.5.
     * @param negative_label Text for the other leaves.
     */
    std::string toRules(const Dataset &data,
                        const std::string &positive_label = "GOOD",
                        const std::string &negative_label = "BAD") const;

  private:
    struct Node
    {
        int feature = -1;      ///< -1 marks a leaf.
        double threshold = 0.0;
        int left = -1;         ///< Index of the <= branch.
        int right = -1;        ///< Index of the > branch.
        double value = 0.0;    ///< Leaf prediction.
        size_t samples = 0;    ///< Training rows that reached it.
    };

    enum class Criterion { Sse, Gini };

    void fit(const Dataset &data, const std::vector<size_t> &rows,
             const TreeOptions &options, support::Rng &rng,
             Criterion criterion);

    int buildNode(const Dataset &data, std::vector<size_t> &rows,
                  size_t begin, size_t end, size_t depth,
                  const TreeOptions &options, support::Rng &rng,
                  Criterion criterion);

    void rulesRecursive(const Dataset &data, int node, size_t indent,
                        const std::string &positive_label,
                        const std::string &negative_label,
                        std::string &out) const;

    size_t depthRecursive(int node) const;

    std::vector<Node> nodes_;
};

} // namespace slambench::ml

#endif // SLAMBENCH_ML_DECISION_TREE_HPP
