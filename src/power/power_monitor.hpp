#ifndef SLAMBENCH_POWER_POWER_MONITOR_HPP
#define SLAMBENCH_POWER_POWER_MONITOR_HPP

/**
 * @file
 * Power measurement abstraction.
 *
 * SLAMBench reads board sensors (the XU3's INA231 rails) or PAPI
 * counters where available. This reproduction keeps the same
 * abstraction with two backends: a simulated monitor that integrates
 * a device model over the pipeline's per-frame work counts, and a
 * null monitor for hosts without sensors (power reported as
 * unavailable, exactly as SLAMBench does on unsupported machines).
 */

#include <memory>
#include <vector>

#include "devices/device_model.hpp"
#include "kfusion/work_counters.hpp"

namespace slambench::power {

/** Energy/power reading for an interval of frames. */
struct EnergyReading
{
    bool available = false;
    double joules = 0.0;
    double seconds = 0.0;

    /** @return mean power, watts; 0 when unavailable or instant. */
    double
    watts() const
    {
        return (available && seconds > 0.0) ? joules / seconds : 0.0;
    }
};

/**
 * Interface: accumulate per-frame work and report energy.
 */
class PowerMonitor
{
  public:
    virtual ~PowerMonitor() = default;

    /** Record one processed frame's work counts. */
    virtual void recordFrame(const kfusion::WorkCounts &work) = 0;

    /** @return the accumulated reading since construction/reset. */
    virtual EnergyReading reading() const = 0;

    /** Clear accumulated state. */
    virtual void reset() = 0;
};

/**
 * Backend that integrates a DeviceModel: the simulated equivalent of
 * the XU3's on-board INA231 power rails.
 */
class SimulatedPowerMonitor : public PowerMonitor
{
  public:
    /** @param device Model whose energy coefficients are used. */
    explicit SimulatedPowerMonitor(devices::DeviceModel device);

    void recordFrame(const kfusion::WorkCounts &work) override;
    EnergyReading reading() const override;
    void reset() override;

    /** @return the wrapped device model. */
    const devices::DeviceModel &device() const { return device_; }

  private:
    devices::DeviceModel device_;
    double joules_ = 0.0;
    double seconds_ = 0.0;
};

/**
 * Backend for hosts without power sensors: always unavailable.
 */
class NullPowerMonitor : public PowerMonitor
{
  public:
    void recordFrame(const kfusion::WorkCounts &work) override;
    EnergyReading reading() const override;
    void reset() override;
};

/** @return a simulated monitor for @p device. */
std::unique_ptr<PowerMonitor>
makeSimulatedMonitor(const devices::DeviceModel &device);

/** @return a monitor that reports power as unavailable. */
std::unique_ptr<PowerMonitor> makeNullMonitor();

} // namespace slambench::power

#endif // SLAMBENCH_POWER_POWER_MONITOR_HPP
