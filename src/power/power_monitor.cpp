#include "power/power_monitor.hpp"

#include "support/metrics.hpp"

namespace slambench::power {

SimulatedPowerMonitor::SimulatedPowerMonitor(devices::DeviceModel device)
    : device_(std::move(device))
{}

void
SimulatedPowerMonitor::recordFrame(const kfusion::WorkCounts &work)
{
    joules_ += device_.frameJoules(work);
    seconds_ += device_.frameSeconds(work);

    // Mirror the rail into the process registry so run reports can
    // include modeled energy even when no session owns this monitor.
    namespace sm = support::metrics;
    static sm::Gauge &joules_gauge =
        sm::Registry::instance().gauge("power.sim_joules");
    static sm::Gauge &watts_gauge =
        sm::Registry::instance().gauge("power.sim_watts");
    joules_gauge.set(joules_);
    if (seconds_ > 0.0)
        watts_gauge.set(joules_ / seconds_);
}

EnergyReading
SimulatedPowerMonitor::reading() const
{
    EnergyReading r;
    r.available = true;
    r.joules = joules_;
    r.seconds = seconds_;
    return r;
}

void
SimulatedPowerMonitor::reset()
{
    joules_ = 0.0;
    seconds_ = 0.0;
}

void
NullPowerMonitor::recordFrame(const kfusion::WorkCounts &)
{}

EnergyReading
NullPowerMonitor::reading() const
{
    return EnergyReading{};
}

void
NullPowerMonitor::reset()
{}

std::unique_ptr<PowerMonitor>
makeSimulatedMonitor(const devices::DeviceModel &device)
{
    return std::make_unique<SimulatedPowerMonitor>(device);
}

std::unique_ptr<PowerMonitor>
makeNullMonitor()
{
    return std::make_unique<NullPowerMonitor>();
}

} // namespace slambench::power
