#include "serve/session.hpp"

#include <chrono>

#include "support/logging.hpp"
#include "support/telemetry_server.hpp"
#include "support/trace.hpp"

namespace slambench::serve {

namespace {

using support::metrics::Registry;
using support::telemetry::labeledMetricName;

/** Shorthand for the per-tenant labeled registry names. */
std::string
tenantMetric(const char *family, const std::string &tenant)
{
    return labeledMetricName(family, "tenant", tenant);
}

} // namespace

TenantSession::TenantSession(const TenantConfig &config)
    : config_(config),
      sequence_(dataset::generateSequence(config.sequence)),
      framesCounter_(Registry::instance().counter(
          tenantMetric("serve.tenant.frames", config.id))),
      shedCounter_(Registry::instance().counter(
          tenantMetric("serve.tenant.shed", config.id))),
      epochsCounter_(Registry::instance().counter(
          tenantMetric("serve.tenant.epochs", config.id))),
      trackingFailuresCounter_(Registry::instance().counter(
          tenantMetric("serve.tenant.tracking_failures", config.id))),
      frameSecondsHistogram_(Registry::instance().histogram(
          tenantMetric("serve.tenant.frame_seconds", config.id))),
      deviceSecondsHistogram_(Registry::instance().histogram(
          tenantMetric("serve.tenant.device_seconds", config.id))),
      lastAteGauge_(Registry::instance().gauge(
          tenantMetric("serve.tenant.last_ate_m", config.id))),
      volumeBytesGauge_(Registry::instance().gauge(
          tenantMetric("serve.tenant.volume_bytes", config.id)))
{
    if (sequence_.frames.empty())
        support::fatal("TenantSession: tenant '" + config_.id +
                       "' generated an empty sequence");
    // Sequential per tenant: the serve layer's parallelism axis is
    // across tenants on the shared scheduler pool, not within one
    // tenant's kernels.
    system_ = std::make_unique<core::KFusionSystem>(
        config_.kfusion, kfusion::Implementation::Sequential);
    system_->initialize(sequence_.intrinsics,
                        sequence_.groundTruth.pose(0));
    epochs_ = 1;
    epochsCounter_.add();
    volumeBytes_ = system_->pipeline().volume().memoryStats().bytes;
    volumeBytesGauge_.set(static_cast<double>(volumeBytes_));
}

TenantFrameStats
TenantSession::processNext()
{
    if (cursor_ >= sequence_.frames.size()) {
        // Stream wrap: a fresh session epoch on the same stream, as
        // if the client reconnected — fresh volume, ground-truth
        // starting pose, cursor back to frame 0.
        cursor_ = 0;
        system_ = std::make_unique<core::KFusionSystem>(
            config_.kfusion, kfusion::Implementation::Sequential);
        system_->initialize(sequence_.intrinsics,
                            sequence_.groundTruth.pose(0));
        ++epochs_;
        epochsCounter_.add();
    }

    const size_t stream_index = cursor_++;
    const auto start = std::chrono::steady_clock::now();
    const bool tracked =
        system_->processFrame(sequence_.frames[stream_index]);
    const auto end = std::chrono::steady_clock::now();

    TenantFrameStats stats;
    stats.frame = framesProcessed_++;
    stats.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    stats.tracked = tracked;
    stats.ateMeters =
        stream_index < sequence_.groundTruth.size()
            ? (system_->currentPose().translationPart() -
               sequence_.groundTruth.pose(stream_index)
                   .translationPart())
                  .norm()
            : 0.0;

    const auto &frame_work = system_->frameWork();
    if (!frame_work.empty()) {
        const kfusion::WorkCounts &work = frame_work.back();
        stats.deviceSeconds = config_.device.frameSeconds(work);
        stats.deviceJoules = config_.device.frameJoules(work);
    }

    framesCounter_.add();
    if (!tracked) {
        trackingFailuresCounter_.add();
        support::logWarn()
            << "serve: tenant " << config_.id
            << " tracking failure at frame " << stats.frame;
    }
    frameSecondsHistogram_.record(stats.wallSeconds);
    deviceSecondsHistogram_.record(stats.deviceSeconds);
    lastAteGauge_.set(stats.ateMeters);
    volumeBytes_ = system_->pipeline().volume().memoryStats().bytes;
    volumeBytesGauge_.set(static_cast<double>(volumeBytes_));

    // Finish this frame's request trace (the context was installed
    // by the pool from the scheduler's submission). Tail retention:
    // a frame that breached an SLO threshold, lost tracking, or
    // landed in the top populated bucket of this tenant's latency
    // histogram is always retained; everything else samples at the
    // configured rate. The retained trace becomes the exemplar of
    // the tenant's frame-latency histogram.
    const auto trace_ctx = support::trace::currentTraceContext();
    if (trace_ctx.active() &&
        support::trace::requestTracingArmed()) {
        support::trace::RequestTraceFinish fin;
        fin.durationSeconds = stats.wallSeconds;
        fin.trackingLost = !tracked;
        const auto slo = support::telemetry::SloWatchdog::instance()
                             .thresholds();
        fin.sloBreach =
            (slo.frameP99Seconds > 0.0 &&
             stats.wallSeconds > slo.frameP99Seconds) ||
            (slo.maxAteMeters > 0.0 &&
             stats.ateMeters > slo.maxAteMeters);
        // The sample was just recorded, so its bucket is populated:
        // >= means "is the top populated bucket".
        fin.topBucket =
            frameSecondsHistogram_.bucketIndexFor(
                stats.wallSeconds) >=
            frameSecondsHistogram_.highestPopulatedBucket();
        fin.exemplarMetric =
            tenantMetric("serve.tenant.frame_seconds", config_.id);
        support::trace::RequestTracer::instance().finish(trace_ctx,
                                                         fin);
    }
    return stats;
}

void
TenantSession::noteShed()
{
    ++framesShed_;
    shedCounter_.add();
}

} // namespace slambench::serve
