#ifndef SLAMBENCH_SERVE_ADMISSION_HPP
#define SLAMBENCH_SERVE_ADMISSION_HPP

/**
 * @file
 * Admission control for the multi-tenant serve loop: decides, once
 * per scheduler tick, whether the service should shed load.
 *
 * The controller is pure decision logic over sampled load signals —
 * no threads, no clocks, no registry access — so its hysteresis
 * behavior is unit-testable tick by tick (tests/serve_test.cpp). The
 * StreamScheduler feeds it one LoadSignals sample per tick and acts
 * on the verdict (dropping tenant frames while shedding is engaged);
 * the scheduler also mirrors the controller state into `serve.*`
 * registry metrics so shedding episodes are observable on /metrics.
 *
 * Relationship to the SLO watchdog: SloWatchdog latches breaches
 * forever (a post-incident scrape must still see them), so it can
 * signal *engage* but never *clear*. The controller therefore engages
 * on the breach-counter delta (plus its own live signals) and clears
 * from live signals alone — queue depth back under the low watermark
 * and smoothed frame p99 back under target for a configurable number
 * of consecutive ticks.
 */

#include <cstddef>
#include <cstdint>
#include <string>

namespace slambench::serve {

/** Tuning of the admission controller (all hysteresis knobs). */
struct AdmissionOptions
{
    /** Engage shedding when the tick's peak pool queue depth reaches
     *  this many queued tasks. */
    size_t queueHiWatermark = 64;

    /** Clearing requires the peak queue depth back at or under this
     *  (must be < queueHiWatermark for hysteresis). */
    size_t queueLoWatermark = 4;

    /**
     * Target for the smoothed per-tick frame p99, seconds; the
     * controller engages when the EWMA exceeds it and requires it
     * back under target before clearing. 0 disables the p99 signal.
     */
    double frameP99TargetSeconds = 0.0;

    /** EWMA smoothing factor for the tick p99 (weight of the new
     *  sample; 1 = no smoothing). */
    double p99Smoothing = 0.5;

    /** Consecutive healthy ticks required before shedding clears. */
    int clearAfterHealthyTicks = 3;

    /**
     * Engage shedding when any tenant's TSDF volume reaches this
     * many resident bytes (0 disables). Meaningful for the sparse
     * volume backend, whose footprint grows with the observed
     * surface until the stream wraps into a fresh epoch; the dense
     * backend's footprint is constant. Shedding slows every stream
     * down, buying time until the offending tenant's epoch wrap
     * releases its blocks (clearing requires the peak back under the
     * bound).
     */
    uint64_t maxTenantVolumeBytes = 0;
};

/** One tick's load sample, gathered by the scheduler. */
struct LoadSignals
{
    /** Peak ThreadPool queue depth observed during the tick. */
    size_t peakQueueDepth = 0;

    /** p99 of the frame wall times completed this tick, seconds
     *  (0 when the tick processed no frames). */
    double tickP99Seconds = 0.0;

    /** Current value of the `slo.breaches` counter; the controller
     *  reacts to its delta since the previous tick. */
    uint64_t sloBreaches = 0;

    /** Largest per-tenant TSDF volume footprint after the tick,
     *  bytes (`serve.tenant.volume_bytes` peak over sessions). */
    uint64_t peakTenantVolumeBytes = 0;
};

/**
 * Hysteresis load-shedding controller. Feed one LoadSignals per tick
 * via onTick(); shedding() is the current verdict.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionOptions &options);

    /**
     * Ingest one tick's load sample and update the shedding state.
     *
     * Engages when any of: peak queue depth >= queueHiWatermark, the
     * SLO breach counter advanced since the last tick, or the
     * smoothed p99 exceeds frameP99TargetSeconds (when enabled).
     * Clears after clearAfterHealthyTicks consecutive ticks with the
     * queue at or under queueLoWatermark, the smoothed p99 at or
     * under target, and no new breaches.
     *
     * @return the post-update shedding verdict.
     */
    bool onTick(const LoadSignals &signals);

    /** @return whether load shedding is currently engaged. */
    bool shedding() const { return shedding_; }

    /** @return why shedding last engaged ("queue_depth",
     *  "slo_breach", "frame_p99", "tenant_volume"; "" before any
     *  engagement). */
    const std::string &lastEngageReason() const { return reason_; }

    /** @return times shedding transitioned off -> on. */
    uint64_t engageCount() const { return engages_; }

    /** @return times shedding transitioned on -> off. */
    uint64_t clearCount() const { return clears_; }

    /** @return the smoothed frame-p99 estimate, seconds. */
    double smoothedP99Seconds() const { return p99Ewma_; }

    /** @return the active options. */
    const AdmissionOptions &options() const { return options_; }

  private:
    AdmissionOptions options_;
    bool shedding_ = false;
    bool sawBreaches_ = false;
    uint64_t lastBreaches_ = 0;
    double p99Ewma_ = 0.0;
    int healthyTicks_ = 0;
    uint64_t engages_ = 0;
    uint64_t clears_ = 0;
    std::string reason_;
};

} // namespace slambench::serve

#endif // SLAMBENCH_SERVE_ADMISSION_HPP
