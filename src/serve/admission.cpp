#include "serve/admission.hpp"

#include "support/logging.hpp"

namespace slambench::serve {

AdmissionController::AdmissionController(
    const AdmissionOptions &options)
    : options_(options)
{
    if (options_.queueLoWatermark >= options_.queueHiWatermark &&
        options_.queueHiWatermark > 0) {
        support::logWarn()
            << "admission: queue low watermark ("
            << options_.queueLoWatermark
            << ") >= high watermark (" << options_.queueHiWatermark
            << "); clamping low to high - 1";
        options_.queueLoWatermark = options_.queueHiWatermark - 1;
    }
    if (options_.p99Smoothing <= 0.0 || options_.p99Smoothing > 1.0)
        options_.p99Smoothing = 0.5;
    if (options_.clearAfterHealthyTicks < 1)
        options_.clearAfterHealthyTicks = 1;
}

bool
AdmissionController::onTick(const LoadSignals &signals)
{
    // Smooth the p99 only over ticks that actually completed frames;
    // a fully shed tick has no samples and should not drag the EWMA
    // toward zero (that would clear shedding by starvation, not by
    // recovery).
    if (signals.tickP99Seconds > 0.0) {
        p99Ewma_ = p99Ewma_ == 0.0
                       ? signals.tickP99Seconds
                       : options_.p99Smoothing *
                                 signals.tickP99Seconds +
                             (1.0 - options_.p99Smoothing) *
                                 p99Ewma_;
    }

    const bool new_breach =
        sawBreaches_ && signals.sloBreaches > lastBreaches_;
    // First sample establishes the baseline: breaches latched before
    // the controller existed are history, not a live overload signal.
    if (!sawBreaches_) {
        sawBreaches_ = true;
    }
    lastBreaches_ = signals.sloBreaches;

    const bool queue_hot =
        options_.queueHiWatermark > 0 &&
        signals.peakQueueDepth >= options_.queueHiWatermark;
    const bool p99_hot =
        options_.frameP99TargetSeconds > 0.0 &&
        p99Ewma_ > options_.frameP99TargetSeconds;
    const bool volume_hot =
        options_.maxTenantVolumeBytes > 0 &&
        signals.peakTenantVolumeBytes >=
            options_.maxTenantVolumeBytes;

    if (!shedding_) {
        if (queue_hot || new_breach || p99_hot || volume_hot) {
            shedding_ = true;
            ++engages_;
            healthyTicks_ = 0;
            reason_ = queue_hot    ? "queue_depth"
                      : new_breach ? "slo_breach"
                      : p99_hot    ? "frame_p99"
                                   : "tenant_volume";
            support::logWarn()
                << "admission: shedding ENGAGED (" << reason_
                << "): peak_queue=" << signals.peakQueueDepth
                << " p99_ewma_s=" << p99Ewma_
                << " slo_breaches=" << signals.sloBreaches
                << " peak_tenant_volume_bytes="
                << signals.peakTenantVolumeBytes;
        }
        return shedding_;
    }

    const bool queue_ok =
        signals.peakQueueDepth <= options_.queueLoWatermark;
    const bool p99_ok = options_.frameP99TargetSeconds <= 0.0 ||
                        p99Ewma_ <= options_.frameP99TargetSeconds;
    const bool volume_ok = !volume_hot;
    if (queue_ok && p99_ok && volume_ok && !new_breach) {
        if (++healthyTicks_ >= options_.clearAfterHealthyTicks) {
            shedding_ = false;
            ++clears_;
            healthyTicks_ = 0;
            support::logInfo()
                << "admission: shedding cleared after "
                << options_.clearAfterHealthyTicks
                << " healthy ticks (peak_queue="
                << signals.peakQueueDepth
                << " p99_ewma_s=" << p99Ewma_ << ")";
        }
    } else {
        healthyTicks_ = 0;
    }
    return shedding_;
}

} // namespace slambench::serve
