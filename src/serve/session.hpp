#ifndef SLAMBENCH_SERVE_SESSION_HPP
#define SLAMBENCH_SERVE_SESSION_HPP

/**
 * @file
 * One tenant of the multi-session SLAM service: an independent
 * KinectFusion pipeline fed by a simulated device stream (fleet
 * device model x procedural dataset generator).
 *
 * A TenantSession owns everything one client of `slambench_serve`
 * needs — the generated RGB-D sequence, the SLAM system, the device
 * model that converts per-frame WorkCounts into simulated
 * device-side time/energy, and the per-tenant labeled registry
 * metrics (`serve.tenant.*{tenant="<id>"}`, rendered with per-tenant
 * labels on /metrics by the telemetry server's labeled-name support).
 *
 * Sessions are single-threaded consumers: processNext() must not be
 * called concurrently for the same session. The StreamScheduler
 * guarantees this by submitting at most one frame task per session
 * per tick.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "core/slam_system.hpp"
#include "dataset/generator.hpp"
#include "devices/device_model.hpp"
#include "kfusion/config.hpp"
#include "support/metrics.hpp"

namespace slambench::serve {

/** Everything needed to stand up one tenant. */
struct TenantConfig
{
    /** Stable tenant identifier; becomes the `tenant` label value on
     *  /metrics and the per-frame label in run reports. */
    std::string id = "t00";

    /** Device this tenant's stream is simulated on. */
    devices::DeviceModel device;

    /** The tenant's input stream (rendered once at construction). */
    dataset::SequenceSpec sequence;

    /** Algorithmic configuration of the tenant's pipeline. */
    kfusion::KFusionConfig kfusion;
};

/** Outcome of one tenant frame. */
struct TenantFrameStats
{
    /** Tenant-local frame index (monotonic across stream wraps). */
    uint64_t frame = 0;
    /** Host wall time of the frame, seconds. */
    double wallSeconds = 0.0;
    /** Simulated device-side time of the frame's work, seconds. */
    double deviceSeconds = 0.0;
    /** Simulated device energy of the frame, joules. */
    double deviceJoules = 0.0;
    /** Live unaligned translation error vs. ground truth, meters. */
    double ateMeters = 0.0;
    /** Whether tracking was accepted this frame. */
    bool tracked = false;
};

/**
 * One tenant: stream + pipeline + device model + labeled metrics.
 */
class TenantSession
{
  public:
    /**
     * Generate the tenant's sequence and construct its pipeline.
     * The pipeline starts at the sequence's ground-truth initial
     * pose (the SLAMBench protocol).
     */
    explicit TenantSession(const TenantConfig &config);

    TenantSession(const TenantSession &) = delete;
    TenantSession &operator=(const TenantSession &) = delete;

    /** @return the tenant identifier. */
    const std::string &id() const { return config_.id; }

    /** @return the device this tenant streams from. */
    const devices::DeviceModel &device() const
    {
        return config_.device;
    }

    /**
     * Process the tenant's next stream frame through its pipeline.
     * When the stream is exhausted it wraps: the pipeline is
     * re-initialized from ground truth (a fresh session epoch, like
     * a client reconnecting), so the service can run indefinitely on
     * a finite rendered sequence. Updates the per-tenant metrics.
     *
     * Not thread-safe per session; the scheduler serializes calls.
     */
    TenantFrameStats processNext();

    /**
     * Count one shed (dropped) frame against this tenant — called by
     * the scheduler instead of processNext() while load shedding has
     * this tenant's stream paused.
     */
    void noteShed();

    /** @return frames processed (excludes shed frames). */
    uint64_t framesProcessed() const { return framesProcessed_; }

    /** @return frames shed by admission control. */
    uint64_t framesShed() const { return framesShed_; }

    /** @return stream wraps (pipeline re-initializations). */
    uint64_t epochs() const { return epochs_; }

    /** @return number of frames in the rendered stream. */
    size_t streamLength() const { return sequence_.frames.size(); }

    /**
     * @return resident bytes of this tenant's TSDF volume after the
     * last processed frame (constant for the dense backend, growing
     * with the observed surface for sparse). Published on /metrics as
     * `serve.tenant.volume_bytes{tenant="<id>"}`; the scheduler feeds
     * the per-tick peak to the admission controller's
     * maxTenantVolumeBytes bound.
     */
    uint64_t volumeBytes() const { return volumeBytes_; }

  private:
    TenantConfig config_;
    dataset::Sequence sequence_;
    std::unique_ptr<core::KFusionSystem> system_;

    size_t cursor_ = 0; ///< Next stream frame to feed.
    uint64_t framesProcessed_ = 0;
    uint64_t framesShed_ = 0;
    uint64_t epochs_ = 0;
    uint64_t volumeBytes_ = 0;

    // Cached per-tenant labeled registry handles (stable for the
    // process lifetime, like all Registry references).
    support::metrics::Counter &framesCounter_;
    support::metrics::Counter &shedCounter_;
    support::metrics::Counter &epochsCounter_;
    support::metrics::Counter &trackingFailuresCounter_;
    support::metrics::LatencyHistogram &frameSecondsHistogram_;
    support::metrics::LatencyHistogram &deviceSecondsHistogram_;
    support::metrics::Gauge &lastAteGauge_;
    support::metrics::Gauge &volumeBytesGauge_;
};

} // namespace slambench::serve

#endif // SLAMBENCH_SERVE_SESSION_HPP
