#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "support/logging.hpp"
#include "support/slo_watchdog.hpp"
#include "support/trace.hpp"

namespace slambench::serve {

namespace {

using support::metrics::Registry;

/** p99 by nearest-rank over a scratch copy of @p samples. */
double
p99Of(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const size_t rank = static_cast<size_t>(
        0.99 * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

} // namespace

StreamScheduler::StreamScheduler(
    std::vector<std::unique_ptr<TenantSession>> sessions,
    const SchedulerOptions &options)
    : sessions_(std::move(sessions)), options_(options),
      pool_(std::make_unique<support::ThreadPool>(options.threads)),
      admission_(options.admission),
      aggregateFrameSeconds_(Registry::instance().histogram(
          "serve.frame_seconds"))
{
    if (sessions_.empty())
        support::fatal("StreamScheduler: no tenant sessions");
    Registry::instance().gauge("serve.tenants").set(
        static_cast<double>(sessions_.size()));
    if (options_.monitorPeriodMs < 1)
        options_.monitorPeriodMs = 1;
    monitor_ = std::thread([this] { monitorLoop(); });
}

StreamScheduler::~StreamScheduler()
{
    monitorStop_.store(true, std::memory_order_relaxed);
    if (monitor_.joinable())
        monitor_.join();
}

void
StreamScheduler::monitorLoop()
{
    auto &watchdog = support::telemetry::SloWatchdog::instance();
    auto &peak_gauge =
        Registry::instance().gauge("serve.tick.peak_queue_depth");
    while (!monitorStop_.load(std::memory_order_relaxed)) {
        const size_t depth = pool_->queueDepth();
        size_t peak = peakQueueDepth_.load(std::memory_order_relaxed);
        while (depth > peak &&
               !peakQueueDepth_.compare_exchange_weak(
                   peak, depth, std::memory_order_relaxed))
            ;
        peak_gauge.setMax(static_cast<double>(depth));
        // Stall detection must live here: during a stall no frame
        // completes, so the per-frame frameTick() hook (the usual
        // checkPools caller) never runs.
        watchdog.checkPools(
            globalFrame_.load(std::memory_order_relaxed));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.monitorPeriodMs));
    }
}

TickReport
StreamScheduler::runTick(support::metrics::RunSession *session)
{
    auto &registry = Registry::instance();
    static auto &ticks_counter = registry.counter("serve.ticks");
    static auto &frames_counter = registry.counter("serve.frames");
    static auto &shed_counter = registry.counter("serve.frames_shed");
    static auto &shedding_gauge = registry.gauge("serve.shedding");
    static auto &engages_counter =
        registry.counter("serve.shed_engaged");
    static auto &clears_counter =
        registry.counter("serve.shed_cleared");

    TickReport report;
    report.tick = ++tick_;
    ticks_counter.add();

    peakQueueDepth_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(tickMutex_);
        tickWallSeconds_.clear();
    }

    support::ThreadPool::TaskGroup group;

    if (options_.stallAtTick != 0 &&
        report.tick == options_.stallAtTick &&
        options_.stallMs > 0.0) {
        // One blocker per runner (workers + the waiting scheduler
        // thread): every runner sleeps, so this tick's frame tasks
        // sit queued for stallMs — a real queue stall, visible to the
        // monitor and (past the --slo threshold) the watchdog.
        const size_t runners = pool_->numThreads() + 1;
        const auto sleep_ms = options_.stallMs;
        support::logWarn()
            << "serve: injecting " << runners << " blocker tasks of "
            << sleep_ms << " ms at tick " << report.tick;
        for (size_t i = 0; i < runners; ++i) {
            pool_->submit(group, [sleep_ms] {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        sleep_ms));
            });
        }
    }

    // Admission: while shedding, pause a rotating half of the
    // tenants this tick. Rotation keeps every stream advancing (no
    // tenant starves); halving the batch lets the queue drain.
    const bool shed_now = admission_.shedding();
    const size_t n = sessions_.size();
    const size_t admitted_count =
        shed_now ? std::max<size_t>(1, n / 2) : n;
    const size_t rotation = shedRotation_;
    if (shed_now)
        shedRotation_ = (shedRotation_ + admitted_count) % n;

    struct FrameSlot
    {
        TenantSession *tenant = nullptr;
        TenantFrameStats stats;
        bool ran = false;
    };
    std::vector<FrameSlot> slots(n);

    for (size_t i = 0; i < n; ++i) {
        TenantSession &tenant = *sessions_[i];
        const bool admitted =
            !shed_now ||
            (i + n - rotation) % n < admitted_count;
        if (!admitted) {
            tenant.noteShed();
            shed_counter.add();
            ++framesShed_;
            ++report.framesShed;
            continue;
        }
        FrameSlot &slot = slots[i];
        slot.tenant = &tenant;
        // One request trace per (tenant, frame), begun at submission
        // so the time queued before a worker picks the task up is
        // inside the trace (the pool synthesizes the queue_wait
        // span). Installing the context around submit() is what
        // hands it to the pool; the session finishes the trace —
        // tail-retention flags and exemplar — in processNext().
        support::trace::TraceContext trace_ctx;
        if (support::trace::requestTracingArmed())
            trace_ctx = support::trace::RequestTracer::instance()
                            .begin(tenant.id(),
                                   tenant.framesProcessed());
        support::trace::ScopedTraceContext trace_scope(trace_ctx);
        pool_->submit(group, [this, &slot] {
            slot.stats = slot.tenant->processNext();
            slot.ran = true;
            aggregateFrameSeconds_.record(slot.stats.wallSeconds);
            {
                std::lock_guard<std::mutex> lock(tickMutex_);
                tickWallSeconds_.push_back(slot.stats.wallSeconds);
            }
            const uint64_t frame =
                globalFrame_.fetch_add(1, std::memory_order_relaxed);
            if (support::telemetry::liveTelemetry()) {
                support::telemetry::frameTick(
                    frame, slot.stats.wallSeconds,
                    slot.stats.ateMeters, slot.stats.tracked);
            }
        });
    }

    pool_->wait(group);

    for (const FrameSlot &slot : slots) {
        if (!slot.ran)
            continue;
        frames_counter.add();
        ++framesProcessed_;
        ++report.framesProcessed;
        if (session != nullptr) {
            support::metrics::FrameTelemetry telemetry;
            telemetry.label = slot.tenant->id();
            telemetry.frame = slot.stats.frame;
            telemetry.wallSeconds = slot.stats.wallSeconds;
            telemetry.ateMeters = slot.stats.ateMeters;
            telemetry.tracked = slot.stats.tracked;
            telemetry.integrated = true;
            telemetry.simJoules = slot.stats.deviceJoules;
            telemetry.rssPeakBytes =
                support::metrics::peakRssBytes();
            session->addFrame(telemetry);
        }
    }

    {
        std::lock_guard<std::mutex> lock(tickMutex_);
        report.tickP99Seconds = p99Of(tickWallSeconds_);
    }
    report.peakQueueDepth =
        peakQueueDepth_.load(std::memory_order_relaxed);

    LoadSignals signals;
    signals.peakQueueDepth = report.peakQueueDepth;
    signals.tickP99Seconds = report.tickP99Seconds;
    signals.sloBreaches =
        Registry::instance().counter("slo.breaches").value();
    // Safe to read un-synchronized: the tick's frame tasks finished
    // at pool_->wait(group) above, and sessions are only mutated by
    // those tasks.
    for (const auto &tenant : sessions_)
        signals.peakTenantVolumeBytes =
            std::max(signals.peakTenantVolumeBytes,
                     tenant->volumeBytes());
    static auto &peak_volume_gauge = Registry::instance().gauge(
        "serve.tick.peak_tenant_volume_bytes");
    peak_volume_gauge.set(
        static_cast<double>(signals.peakTenantVolumeBytes));

    const uint64_t engages_before = admission_.engageCount();
    const uint64_t clears_before = admission_.clearCount();
    report.shedding = admission_.onTick(signals);
    if (admission_.engageCount() > engages_before)
        engages_counter.add(admission_.engageCount() -
                            engages_before);
    if (admission_.clearCount() > clears_before)
        clears_counter.add(admission_.clearCount() - clears_before);
    shedding_gauge.set(report.shedding ? 1.0 : 0.0);
    registry.gauge("serve.admission.p99_ewma_seconds")
        .set(admission_.smoothedP99Seconds());
    return report;
}

uint64_t
StreamScheduler::runLoop(uint64_t max_ticks,
                         support::metrics::RunSession *session)
{
    uint64_t ticks = 0;
    while ((max_ticks == 0 || ticks < max_ticks) &&
           !drainRequested()) {
        runTick(session);
        ++ticks;
    }
    if (drainRequested()) {
        support::logInfo()
            << "serve: drained after " << ticks << " ticks ("
            << framesProcessed_ << " frames processed, "
            << framesShed_ << " shed)";
    }
    return ticks;
}

double
StreamScheduler::aggregateFrameP99Seconds() const
{
    return aggregateFrameSeconds_.quantile(0.99);
}

} // namespace slambench::serve
