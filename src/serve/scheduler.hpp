#ifndef SLAMBENCH_SERVE_SCHEDULER_HPP
#define SLAMBENCH_SERVE_SCHEDULER_HPP

/**
 * @file
 * Frame-batch scheduling of many tenant sessions over one shared
 * ThreadPool, with admission control and graceful drain — the engine
 * behind `examples/slambench_serve`.
 *
 * Execution model: time advances in *ticks*. Each tick submits at
 * most one frame task per admitted tenant to the pool (so a session
 * is never processed concurrently with itself), waits for the batch,
 * then feeds the tick's load sample — peak queue depth from the
 * monitor thread, the tick's frame-p99, the `slo.breaches` counter —
 * to the AdmissionController. While shedding is engaged, a rotating
 * half of the tenants is paused each tick (their frames are shed and
 * counted, per tenant and in aggregate) so the pool drains while
 * every tenant still makes progress.
 *
 * A monitor thread samples the pool's queueDepth() every few
 * milliseconds and runs SloWatchdog::checkPools(). The sampling
 * matters twice over: the scheduler thread spends the tick inside
 * ThreadPool::wait() cooperatively executing tasks, so it cannot
 * observe its own queue; and during a genuine stall no frame
 * completes, so the per-frame telemetry hook never fires — the
 * monitor is what turns a stall into a latched `pool_queue_stall`
 * breach and a shedding trigger.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/session.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace slambench::serve {

/** Scheduler tuning. */
struct SchedulerOptions
{
    /** Worker threads of the scheduler's pool (0 = host). */
    size_t threads = 0;

    /** Admission-control thresholds. */
    AdmissionOptions admission;

    /**
     * Fault injection for tests: at this tick (1-based), flood the
     * pool with one sleeping blocker task per runner before the
     * frame batch, so the batch genuinely queue-stalls behind them.
     * 0 disables.
     */
    uint64_t stallAtTick = 0;

    /** How long each injected blocker sleeps, milliseconds. */
    double stallMs = 0.0;

    /** Monitor thread sampling period, milliseconds. */
    int monitorPeriodMs = 5;
};

/** What one tick did (returned by runTick, aggregated by runLoop). */
struct TickReport
{
    uint64_t tick = 0;          ///< 1-based tick index.
    size_t framesProcessed = 0; ///< Frames run this tick.
    size_t framesShed = 0;      ///< Frames shed this tick.
    bool shedding = false;      ///< Verdict after this tick.
    size_t peakQueueDepth = 0;  ///< Monitor's peak queue sample.
    double tickP99Seconds = 0.0; ///< p99 of this tick's frames.
};

/**
 * Multi-tenant frame-batch scheduler. Owns the tenant sessions, the
 * shared pool, the admission controller, and the monitor thread.
 */
class StreamScheduler
{
  public:
    StreamScheduler(
        std::vector<std::unique_ptr<TenantSession>> sessions,
        const SchedulerOptions &options);

    StreamScheduler(const StreamScheduler &) = delete;
    StreamScheduler &operator=(const StreamScheduler &) = delete;

    /** Stops the monitor thread (sessions drain with the pool). */
    ~StreamScheduler();

    /**
     * Run one scheduling tick: admit, submit, wait, account, decide.
     * @param session Optional run-report sink; one frame row per
     *        processed frame, labeled with the tenant id.
     */
    TickReport runTick(support::metrics::RunSession *session = nullptr);

    /**
     * Tick until @p max_ticks ticks ran (0 = forever) or drain was
     * requested. In-flight frames of the current tick always finish
     * before the loop exits — that is the graceful part of drain.
     *
     * @return number of ticks run.
     */
    uint64_t runLoop(uint64_t max_ticks,
                     support::metrics::RunSession *session = nullptr);

    /** Ask runLoop to stop after the current tick. Async-signal-safe
     *  (one relaxed atomic store); wired to SIGTERM by the serve
     *  binary. */
    void
    requestDrain()
    {
        drainRequested_.store(true, std::memory_order_relaxed);
    }

    /** @return whether a drain was requested. */
    bool
    drainRequested() const
    {
        return drainRequested_.load(std::memory_order_relaxed);
    }

    /** @return the admission controller (tick-synchronous state;
     *  read between ticks). */
    const AdmissionController &admission() const
    {
        return admission_;
    }

    /** @return the tenant sessions. */
    const std::vector<std::unique_ptr<TenantSession>> &
    sessions() const
    {
        return sessions_;
    }

    /** @return the scheduler's pool. */
    support::ThreadPool &pool() { return *pool_; }

    /** @return total frames processed across all ticks. */
    uint64_t framesProcessed() const { return framesProcessed_; }

    /** @return total frames shed across all ticks. */
    uint64_t framesShed() const { return framesShed_; }

    /** @return aggregate p99 over every processed frame, seconds. */
    double aggregateFrameP99Seconds() const;

  private:
    void monitorLoop();

    std::vector<std::unique_ptr<TenantSession>> sessions_;
    SchedulerOptions options_;
    std::unique_ptr<support::ThreadPool> pool_;
    AdmissionController admission_;

    uint64_t tick_ = 0;
    uint64_t framesProcessed_ = 0;
    uint64_t framesShed_ = 0;
    size_t shedRotation_ = 0; ///< Rotating pause window start.
    std::atomic<uint64_t> globalFrame_{0};
    std::atomic<bool> drainRequested_{false};

    // Monitor thread state.
    std::thread monitor_;
    std::atomic<bool> monitorStop_{false};
    std::atomic<size_t> peakQueueDepth_{0};

    // Per-tick frame-wall-time samples (tasks append, tick reads).
    std::mutex tickMutex_;
    std::vector<double> tickWallSeconds_;

    // Aggregate histogram handle for the serve-wide p99.
    support::metrics::LatencyHistogram &aggregateFrameSeconds_;
};

} // namespace slambench::serve

#endif // SLAMBENCH_SERVE_SCHEDULER_HPP
