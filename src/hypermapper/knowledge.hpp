#ifndef SLAMBENCH_HYPERMAPPER_KNOWLEDGE_HPP
#define SLAMBENCH_HYPERMAPPER_KNOWLEDGE_HPP

/**
 * @file
 * Knowledge extraction (the right-hand side of the paper's Fig. 2):
 * label every evaluated configuration good/bad against the
 * accuracy/speed/power requirements, fit a small classification
 * tree, and print it as parameter rules such as
 * "volume_resolution <= 96 AND compute_size_ratio <= 3 -> GOOD".
 */

#include <string>
#include <vector>

#include "hypermapper/pareto.hpp"
#include "ml/decision_tree.hpp"

namespace slambench::hypermapper {

/** The paper's quality-of-result requirements. */
struct GoodnessCriteria
{
    /** Max ATE limit, meters (paper: 0.05 m). */
    double maxAteLimit = 0.05;
    /** Minimum frame rate, FPS (paper: real-time, 30 FPS). */
    double minFps = 30.0;
    /** Power cap, watts (paper: 3 W in Fig. 2; 1 W headline). */
    double maxWatts = 3.0;
    /** Objective vector layout: indices into Evaluation::objectives. */
    size_t runtimeIndex = 0;
    size_t ateIndex = 1;
    size_t wattsIndex = 2;
};

/** @return true when @p e satisfies all three requirements. */
bool isGood(const Evaluation &e, const GoodnessCriteria &criteria);

/** Result of the knowledge-extraction step. */
struct Knowledge
{
    ml::DecisionTree tree;
    std::string rules;      ///< Printable if/else rules.
    size_t goodCount = 0;   ///< Configurations labeled good.
    size_t totalCount = 0;  ///< Valid configurations considered.
    double trainAccuracy = 0.0;
};

/**
 * Fit the Fig. 2 knowledge tree over evaluated configurations.
 *
 * @param space Design space (feature names for the rules).
 * @param evals Evaluated configurations.
 * @param criteria Good/bad thresholds.
 * @param max_depth Tree depth cap (small keeps rules readable).
 * @return fitted tree, printable rules, and label statistics.
 */
Knowledge extractKnowledge(const ParameterSpace &space,
                           const std::vector<Evaluation> &evals,
                           const GoodnessCriteria &criteria,
                           size_t max_depth = 3);

} // namespace slambench::hypermapper

#endif // SLAMBENCH_HYPERMAPPER_KNOWLEDGE_HPP
