#ifndef SLAMBENCH_HYPERMAPPER_PARAM_SPACE_HPP
#define SLAMBENCH_HYPERMAPPER_PARAM_SPACE_HPP

/**
 * @file
 * The design space HyperMapper explores: named parameters with
 * integer ranges, real ranges (optionally log-scaled), or explicit
 * ordinal value lists.
 *
 * A configuration ("point") is a vector of doubles, one entry per
 * parameter, holding actual parameter values (not normalized), so
 * the same vector feeds the random forest and the decision-tree
 * knowledge readout with interpretable thresholds.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace slambench::hypermapper {

/** One configuration of the design space. */
using Point = std::vector<double>;

/** Kind of one explorable parameter. */
enum class ParamKind {
    Integer, ///< Uniform integer in [lo, hi].
    Real,    ///< Uniform real in [lo, hi] (log10-uniform if logScale).
    Ordinal, ///< One of an explicit ascending value list.
};

/** Declaration of one parameter. */
struct Parameter
{
    std::string name;
    ParamKind kind = ParamKind::Real;
    double lo = 0.0;
    double hi = 1.0;
    bool logScale = false;
    std::vector<double> values; ///< For Ordinal.
    double defaultValue = 0.0;
};

/**
 * Ordered set of parameters plus sampling and mutation.
 */
class ParameterSpace
{
  public:
    /** Add an integer-range parameter. @return its index. */
    size_t addInteger(const std::string &name, long lo, long hi,
                      long default_value);

    /** Add a real-range parameter. @return its index. */
    size_t addReal(const std::string &name, double lo, double hi,
                   double default_value, bool log_scale = false);

    /**
     * Add an ordinal parameter with explicit ascending values.
     * @return its index.
     */
    size_t addOrdinal(const std::string &name,
                      std::vector<double> values,
                      double default_value);

    /** @return number of parameters. */
    size_t size() const { return params_.size(); }

    /** @return declaration of parameter @p i. */
    const Parameter &param(size_t i) const { return params_[i]; }

    /** @return index of the parameter named @p name; fatal if absent. */
    size_t indexOf(const std::string &name) const;

    /** @return the point of all default values. */
    Point defaultPoint() const;

    /** @return a uniform random point. */
    Point sample(support::Rng &rng) const;

    /**
     * Mutate @p point: each coordinate re-sampled with probability
     * @p rate, others kept (the local-search move used to refine the
     * predicted-Pareto candidates).
     */
    Point mutate(const Point &point, double rate,
                 support::Rng &rng) const;

    /** Clamp/snap every coordinate to a legal value. */
    Point canonicalize(const Point &point) const;

    /** @return names in declaration order (for ml::Dataset). */
    std::vector<std::string> names() const;

    /** One-line rendering "name=value ...". */
    std::string describe(const Point &point) const;

    /** @return true when the two points are identical after snap. */
    bool samePoint(const Point &a, const Point &b) const;

  private:
    double sampleOne(const Parameter &p, support::Rng &rng) const;
    double snapOne(const Parameter &p, double value) const;

    std::vector<Parameter> params_;
};

} // namespace slambench::hypermapper

#endif // SLAMBENCH_HYPERMAPPER_PARAM_SPACE_HPP
