#include "hypermapper/drivers.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include <atomic>

#include "metrics/timing.hpp"
#include "support/flight_recorder.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace slambench::hypermapper {

namespace {

/**
 * Run one objective evaluation with observability: times it into the
 * `dse.eval_wall_seconds` histogram, bumps the global and per-method
 * evaluation counters, and logs a one-line report of the sampled
 * configuration (point, objectives, validity, wall time) at DEBUG.
 *
 * Thread-safe: the registry hands out thread-safe metric handles and
 * all lookups go through it per call (no cached static references —
 * those would be an ordering hazard across concurrent evaluations
 * and would dangle if the registry were ever rebuilt between runs).
 */
Evaluation
runEvaluation(const Evaluator &evaluate, Point point,
              const char *method, size_t iteration)
{
    namespace sm = support::metrics;
    auto &registry = sm::Registry::instance();

    Evaluation e;
    e.point = std::move(point);
    const uint64_t start_ns = slambench::metrics::now_ns();
    const EvaluationOutcome outcome = evaluate(e.point);
    const double wall_seconds =
        static_cast<double>(slambench::metrics::now_ns() - start_ns) *
        1e-9;
    e.objectives = outcome.objectives;
    e.valid = outcome.valid;
    e.method = method;
    e.iteration = iteration;

    registry.counter("dse.evaluations").add(1);
    registry.counter(std::string("dse.evaluations.") + method).add(1);
    if (!e.valid)
        registry.counter("dse.invalid").add(1);
    registry.histogram("dse.eval_wall_seconds").record(wall_seconds);

    auto &recorder = support::telemetry::FlightRecorder::instance();
    if (recorder.enabled())
        recorder.record(
            support::telemetry::EventKind::DseEvaluation, iteration,
            wall_seconds,
            e.objectives.empty() ? 0.0 : e.objectives[0], method);

    std::string params;
    for (const double v : e.point) {
        if (!params.empty())
            params += " ";
        params += support::format("%g", v);
    }
    std::string objectives;
    for (const double v : e.objectives) {
        if (!objectives.empty())
            objectives += " ";
        objectives += support::format("%.6g", v);
    }
    support::logDebug()
        << "dse eval " << method << " iter " << iteration
        << " point [" << params << "] objectives [" << objectives
        << "] " << (e.valid ? "valid" : "INVALID") << " ("
        << wall_seconds * 1e3 << " ms)";
    return e;
}

/**
 * Shared execution engine of the DSE drivers: evaluates batches of
 * pre-derived configurations, either serially (1 thread, the legacy
 * path) or concurrently on a task-queue ThreadPool.
 *
 * Determinism contract: the caller derives every point (and any Rng
 * stream it needs) BEFORE dispatch, evaluations never touch shared
 * random state, and results are committed in submission order — so
 * the output is byte-identical for any thread count.
 */
class EvalDispatcher
{
  public:
    /** @param threads 0 = hardware concurrency, 1 = serial. */
    explicit EvalDispatcher(size_t threads)
    {
        size_t n = threads;
        if (n == 0) {
            n = std::thread::hardware_concurrency();
            if (n == 0)
                n = 1;
        }
        threads_ = n;
        if (threads_ > 1)
            pool_ = std::make_unique<support::ThreadPool>(threads_);
        support::metrics::Registry::instance()
            .gauge("dse.pool.threads")
            .set(static_cast<double>(threads_));
    }

    /** @return the pool, or nullptr on the serial path. */
    support::ThreadPool *pool() const { return pool_.get(); }

    /** @return resolved worker count (>= 1). */
    size_t threads() const { return threads_; }

    /**
     * Evaluate @p points (all tagged @p method / @p iteration) and
     * append the results to @p out in submission order.
     */
    void
    run(const Evaluator &evaluate, std::vector<Point> points,
        const char *method, size_t iteration,
        std::vector<Evaluation> &out)
    {
        if (points.empty())
            return;
        if (!pool_) {
            for (Point &p : points)
                out.push_back(runEvaluation(evaluate, std::move(p),
                                            method, iteration));
            return;
        }

        namespace sm = support::metrics;
        auto &registry = sm::Registry::instance();
        const uint64_t batch_start_ns = slambench::metrics::now_ns();

        // Slots are committed by submission index, so the append
        // below reproduces serial order regardless of completion
        // order; per-evaluation wall times are tracked to derive the
        // pool occupancy of the batch. The live gauges
        // (dse.pool.active_evals and the incrementally-updated
        // occupancy) make a scrape of /metrics mid-batch show pool
        // saturation instead of the previous batch's aggregate.
        std::vector<Evaluation> results(points.size());
        std::vector<double> walls(points.size(), 0.0);
        auto &active_gauge = registry.gauge("dse.pool.active_evals");
        auto &occupancy_gauge = registry.gauge("dse.pool.occupancy");
        std::atomic<size_t> active{0};
        std::atomic<uint64_t> busy_ns{0};
        pool_->parallelFor(0, points.size(), [&](size_t i) {
            active_gauge.set(static_cast<double>(
                active.fetch_add(1, std::memory_order_relaxed) + 1));
            const uint64_t t0 = slambench::metrics::now_ns();
            results[i] = runEvaluation(evaluate, std::move(points[i]),
                                       method, iteration);
            const uint64_t eval_ns =
                slambench::metrics::now_ns() - t0;
            walls[i] = static_cast<double>(eval_ns) * 1e-9;
            active_gauge.set(static_cast<double>(
                active.fetch_sub(1, std::memory_order_relaxed) - 1));
            const uint64_t total_busy_ns =
                busy_ns.fetch_add(eval_ns,
                                  std::memory_order_relaxed) +
                eval_ns;
            const double elapsed =
                static_cast<double>(slambench::metrics::now_ns() -
                                    batch_start_ns) *
                1e-9;
            if (elapsed > 0.0)
                occupancy_gauge.set(
                    static_cast<double>(total_busy_ns) * 1e-9 /
                    (elapsed * static_cast<double>(threads_)));
        });

        const double batch_wall =
            static_cast<double>(slambench::metrics::now_ns() -
                                batch_start_ns) *
            1e-9;
        double busy = 0.0;
        for (const double w : walls)
            busy += w;
        registry.counter("dse.parallel.batches").add(1);
        registry.histogram("dse.batch_wall_seconds")
            .record(batch_wall);
        if (batch_wall > 0.0) {
            registry.gauge("dse.pool.occupancy")
                .set(busy /
                     (batch_wall * static_cast<double>(threads_)));
        }
        registry.gauge("dse.pool.peak_concurrent_evals")
            .setMax(static_cast<double>(pool_->peakActiveTasks()));

        for (Evaluation &e : results)
            out.push_back(std::move(e));
    }

  private:
    size_t threads_ = 1;
    std::unique_ptr<support::ThreadPool> pool_;
};

} // namespace

std::vector<Evaluation>
randomSearch(const ParameterSpace &space, const Evaluator &evaluate,
             const RandomSearchOptions &options)
{
    support::Rng rng(options.seed);
    EvalDispatcher dispatcher(options.threads);

    // All points are sampled before dispatch: the Rng stream (and
    // with it the evaluated sequence) is independent of thread count.
    std::vector<Point> points;
    points.reserve(options.budget);
    for (size_t i = 0; i < options.budget; ++i)
        points.push_back(space.sample(rng));

    std::vector<Evaluation> evals;
    evals.reserve(options.budget);
    dispatcher.run(evaluate, std::move(points), "random", 0, evals);
    return evals;
}

namespace {

/** Fit one forest per objective on the valid evaluations so far. */
std::vector<ml::RandomForest>
fitModels(const ParameterSpace &space,
          const std::vector<Evaluation> &evals, size_t num_objectives,
          const ml::ForestOptions &forest_options, support::Rng &rng,
          std::vector<double> &mse_out, support::ThreadPool *pool)
{
    std::vector<ml::RandomForest> models(num_objectives);
    mse_out.assign(num_objectives, 0.0);
    for (size_t k = 0; k < num_objectives; ++k) {
        ml::Dataset data(space.size());
        data.setFeatureNames(space.names());
        for (const Evaluation &e : evals) {
            if (!e.valid)
                continue;
            data.addRow(e.point, e.objectives[k]);
        }
        if (data.empty())
            support::fatal("activeLearning: no valid warm-up "
                           "evaluations to train on");
        models[k].fit(data, forest_options, rng, pool);
        mse_out[k] = models[k].mseOn(data);
    }
    return models;
}

} // namespace

ActiveLearningResult
activeLearning(const ParameterSpace &space, const Evaluator &evaluate,
               size_t num_objectives,
               const ActiveLearningOptions &options)
{
    support::Rng rng(options.seed);
    ActiveLearningResult result;
    EvalDispatcher dispatcher(options.threads);
    support::ThreadPool *pool = dispatcher.pool();

    // --- Warm-up: uniform random sampling. ---
    {
        std::vector<Point> warmup;
        warmup.reserve(options.warmupSamples);
        for (size_t i = 0; i < options.warmupSamples; ++i)
            warmup.push_back(space.sample(rng));
        result.evaluations.reserve(options.warmupSamples +
                                   options.iterations *
                                       options.batchSize);
        dispatcher.run(evaluate, std::move(warmup), "random", 0,
                       result.evaluations);
    }

    // --- Active-learning rounds. ---
    for (size_t iter = 1; iter <= options.iterations; ++iter) {
        std::vector<double> mse;
        std::vector<ml::RandomForest> models =
            fitModels(space, result.evaluations, num_objectives,
                      options.forest, rng, mse, pool);
        result.modelMse.push_back(mse);

        // Feasibility model (HyperMapper's valid-region classifier):
        // fit only when both classes exist.
        ml::RandomForest feasibility;
        bool have_feasibility = false;
        if (options.learnFeasibility) {
            size_t valid_count = 0, invalid_count = 0;
            for (const Evaluation &e : result.evaluations)
                (e.valid ? valid_count : invalid_count) += 1;
            if (valid_count > 0 && invalid_count > 0) {
                ml::Dataset labels(space.size());
                for (const Evaluation &e : result.evaluations)
                    labels.addRow(e.point, e.valid ? 1.0 : 0.0);
                feasibility.fit(labels, options.forest, rng, pool);
                have_feasibility = true;
            }
        }

        // Incumbent Pareto points seed the exploit candidates.
        const std::vector<size_t> front =
            paretoFront(result.evaluations);

        // Candidate points are derived serially — sampling and
        // mutation consume the driver Rng, and the stream must not
        // depend on thread count.
        std::vector<Point> cand_points;
        cand_points.reserve(options.candidatePool);
        for (size_t c = 0; c < options.candidatePool; ++c) {
            const bool exploit =
                !front.empty() &&
                rng.bernoulli(options.exploitFraction);
            if (exploit) {
                const size_t pick =
                    front[rng.uniformInt(
                        static_cast<uint64_t>(front.size()))];
                cand_points.push_back(space.mutate(
                    result.evaluations[pick].point,
                    options.mutationRate, rng));
            } else {
                cand_points.push_back(space.sample(rng));
            }
        }

        // Score the pool: feasibility filter plus per-objective LCB
        // (mean - kappa * stddev). Predictions are Rng-free, so this
        // hot loop parallelizes without affecting determinism; each
        // slot is written by exactly one task.
        std::vector<uint8_t> rejected(cand_points.size(), 0);
        std::vector<Evaluation> scored(cand_points.size());
        const auto score = [&](size_t c) {
            const Point &point = cand_points[c];
            if (have_feasibility &&
                feasibility.predict(point) <
                    options.minPredictedValidity) {
                rejected[c] = 1;
                return;
            }
            Evaluation predicted;
            predicted.point = point;
            predicted.valid = true;
            predicted.objectives.resize(num_objectives);
            for (size_t k = 0; k < num_objectives; ++k) {
                const ml::ForestPrediction p =
                    models[k].predictWithUncertainty(point);
                predicted.objectives[k] =
                    p.mean - options.kappa * std::sqrt(p.variance);
            }
            scored[c] = std::move(predicted);
        };
        if (pool != nullptr) {
            pool->parallelFor(0, cand_points.size(), score);
        } else {
            for (size_t c = 0; c < cand_points.size(); ++c)
                score(c);
        }

        size_t rejected_count = 0;
        std::vector<Point> pool_points;
        std::vector<Evaluation> predicted;
        pool_points.reserve(cand_points.size());
        predicted.reserve(cand_points.size());
        for (size_t c = 0; c < cand_points.size(); ++c) {
            if (rejected[c]) {
                ++rejected_count;
                continue;
            }
            pool_points.push_back(std::move(cand_points[c]));
            predicted.push_back(std::move(scored[c]));
        }

        // Keep the model-predicted Pareto front of the pool.
        std::vector<size_t> predicted_front = paretoFront(predicted);
        rng.shuffle(predicted_front);

        // Select up to batchSize new, distinct configurations. The
        // selection depends only on points (never on objective
        // values), so the whole batch is known before any evaluation
        // runs and can be dispatched concurrently.
        std::vector<Point> selected;
        for (size_t idx : predicted_front) {
            if (selected.size() >= options.batchSize)
                break;
            const Point &candidate = pool_points[idx];
            bool seen = false;
            for (const Evaluation &e : result.evaluations) {
                if (space.samePoint(e.point, candidate)) {
                    seen = true;
                    break;
                }
            }
            for (size_t s = 0; !seen && s < selected.size(); ++s)
                seen = space.samePoint(selected[s], candidate);
            if (!seen)
                selected.push_back(candidate);
        }
        size_t evaluated = selected.size();
        dispatcher.run(evaluate, std::move(selected), "active", iter,
                       result.evaluations);

        result.feasibilityRejections.push_back(rejected_count);

        // Degenerate pools (everything already seen): fall back to
        // random samples so the budget is spent as promised.
        if (evaluated < options.batchSize) {
            std::vector<Point> extra;
            extra.reserve(options.batchSize - evaluated);
            while (evaluated < options.batchSize) {
                extra.push_back(space.sample(rng));
                ++evaluated;
            }
            dispatcher.run(evaluate, std::move(extra), "active", iter,
                           result.evaluations);
        }
    }
    return result;
}

std::vector<Evaluation>
gridSearch(const ParameterSpace &space, const Evaluator &evaluate,
           const GridSearchOptions &options)
{
    const size_t axes = space.size();
    const size_t n = std::max<size_t>(2, options.pointsPerAxis);

    // Axis value lists.
    std::vector<std::vector<double>> values(axes);
    for (size_t i = 0; i < axes; ++i) {
        const Parameter &p = space.param(i);
        if (p.kind == ParamKind::Ordinal) {
            // Deduplicate against every previously picked value, on
            // both paths: integer division can collapse neighbouring
            // subsample indices, and value lists may repeat entries
            // anywhere (not just adjacently); duplicate grid points
            // would waste evaluation budget.
            const auto push_unique = [&axis_values =
                                          values[i]](double v) {
                if (std::find(axis_values.begin(), axis_values.end(),
                              v) == axis_values.end())
                    axis_values.push_back(v);
            };
            if (p.values.size() <= n) {
                for (const double v : p.values)
                    push_unique(v);
            } else {
                for (size_t k = 0; k < n; ++k)
                    push_unique(
                        p.values[k * (p.values.size() - 1) / (n - 1)]);
            }
            continue;
        }
        for (size_t k = 0; k < n; ++k) {
            const double t = static_cast<double>(k) /
                             static_cast<double>(n - 1);
            double v;
            if (p.kind == ParamKind::Real && p.logScale) {
                v = std::pow(10.0,
                             std::log10(p.lo) +
                                 t * (std::log10(p.hi) -
                                      std::log10(p.lo)));
            } else {
                v = p.lo + t * (p.hi - p.lo);
            }
            values[i].push_back(v);
        }
    }

    // Enumerate the grid (odometer order) up to the evaluation cap;
    // the points are Rng-free, so the whole sweep dispatches as one
    // deterministic batch.
    std::vector<Point> points;
    std::vector<size_t> index(axes, 0);
    for (;;) {
        if (points.size() >= options.maxEvaluations)
            break;
        Point point(axes);
        for (size_t i = 0; i < axes; ++i)
            point[i] = values[i][index[i]];
        points.push_back(space.canonicalize(point));

        // Odometer increment.
        size_t axis = 0;
        while (axis < axes) {
            if (++index[axis] < values[axis].size())
                break;
            index[axis] = 0;
            ++axis;
        }
        if (axis == axes)
            break;
    }

    EvalDispatcher dispatcher(options.threads);
    std::vector<Evaluation> evals;
    evals.reserve(points.size());
    dispatcher.run(evaluate, std::move(points), "grid", 0, evals);
    return evals;
}

} // namespace slambench::hypermapper
