#include "hypermapper/drivers.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/timing.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"

namespace slambench::hypermapper {

namespace {

/**
 * Run one objective evaluation with observability: times it into the
 * `dse.eval_wall_seconds` histogram, bumps the global and per-method
 * evaluation counters, and logs a one-line report of the sampled
 * configuration (point, objectives, validity, wall time) at DEBUG.
 */
Evaluation
runEvaluation(const Evaluator &evaluate, Point point,
              const char *method, size_t iteration)
{
    namespace sm = support::metrics;
    auto &registry = sm::Registry::instance();
    static sm::Counter &evaluations_counter =
        registry.counter("dse.evaluations");
    static sm::Counter &invalid_counter =
        registry.counter("dse.invalid");
    static sm::LatencyHistogram &wall_histogram =
        registry.histogram("dse.eval_wall_seconds");

    Evaluation e;
    e.point = std::move(point);
    const uint64_t start_ns = slambench::metrics::now_ns();
    const EvaluationOutcome outcome = evaluate(e.point);
    const double wall_seconds =
        static_cast<double>(slambench::metrics::now_ns() - start_ns) *
        1e-9;
    e.objectives = outcome.objectives;
    e.valid = outcome.valid;
    e.method = method;
    e.iteration = iteration;

    evaluations_counter.add(1);
    registry.counter(std::string("dse.evaluations.") + method).add(1);
    if (!e.valid)
        invalid_counter.add(1);
    wall_histogram.record(wall_seconds);

    std::string params;
    for (const double v : e.point) {
        if (!params.empty())
            params += " ";
        params += support::format("%g", v);
    }
    std::string objectives;
    for (const double v : e.objectives) {
        if (!objectives.empty())
            objectives += " ";
        objectives += support::format("%.6g", v);
    }
    support::logDebug()
        << "dse eval " << method << " iter " << iteration
        << " point [" << params << "] objectives [" << objectives
        << "] " << (e.valid ? "valid" : "INVALID") << " ("
        << wall_seconds * 1e3 << " ms)";
    return e;
}

} // namespace

std::vector<Evaluation>
randomSearch(const ParameterSpace &space, const Evaluator &evaluate,
             const RandomSearchOptions &options)
{
    support::Rng rng(options.seed);
    std::vector<Evaluation> evals;
    evals.reserve(options.budget);
    for (size_t i = 0; i < options.budget; ++i) {
        evals.push_back(
            runEvaluation(evaluate, space.sample(rng), "random", 0));
    }
    return evals;
}

namespace {

/** Fit one forest per objective on the valid evaluations so far. */
std::vector<ml::RandomForest>
fitModels(const ParameterSpace &space,
          const std::vector<Evaluation> &evals, size_t num_objectives,
          const ml::ForestOptions &forest_options, support::Rng &rng,
          std::vector<double> &mse_out)
{
    std::vector<ml::RandomForest> models(num_objectives);
    mse_out.assign(num_objectives, 0.0);
    for (size_t k = 0; k < num_objectives; ++k) {
        ml::Dataset data(space.size());
        data.setFeatureNames(space.names());
        for (const Evaluation &e : evals) {
            if (!e.valid)
                continue;
            data.addRow(e.point, e.objectives[k]);
        }
        if (data.empty())
            support::fatal("activeLearning: no valid warm-up "
                           "evaluations to train on");
        models[k].fit(data, forest_options, rng);
        mse_out[k] = models[k].mseOn(data);
    }
    return models;
}

/** A candidate with model-predicted (LCB) objectives. */
struct Candidate
{
    Point point;
    Evaluation predicted; ///< objectives = LCB predictions.
};

} // namespace

ActiveLearningResult
activeLearning(const ParameterSpace &space, const Evaluator &evaluate,
               size_t num_objectives,
               const ActiveLearningOptions &options)
{
    support::Rng rng(options.seed);
    ActiveLearningResult result;

    // --- Warm-up: uniform random sampling. ---
    for (size_t i = 0; i < options.warmupSamples; ++i) {
        result.evaluations.push_back(
            runEvaluation(evaluate, space.sample(rng), "random", 0));
    }

    // --- Active-learning rounds. ---
    for (size_t iter = 1; iter <= options.iterations; ++iter) {
        std::vector<double> mse;
        std::vector<ml::RandomForest> models =
            fitModels(space, result.evaluations, num_objectives,
                      options.forest, rng, mse);
        result.modelMse.push_back(mse);

        // Feasibility model (HyperMapper's valid-region classifier):
        // fit only when both classes exist.
        ml::RandomForest feasibility;
        bool have_feasibility = false;
        if (options.learnFeasibility) {
            size_t valid_count = 0, invalid_count = 0;
            for (const Evaluation &e : result.evaluations)
                (e.valid ? valid_count : invalid_count) += 1;
            if (valid_count > 0 && invalid_count > 0) {
                ml::Dataset labels(space.size());
                for (const Evaluation &e : result.evaluations)
                    labels.addRow(e.point, e.valid ? 1.0 : 0.0);
                feasibility.fit(labels, options.forest, rng);
                have_feasibility = true;
            }
        }
        size_t rejected = 0;

        // Incumbent Pareto points seed the exploit candidates.
        const std::vector<size_t> front =
            paretoFront(result.evaluations);

        std::vector<Candidate> pool;
        pool.reserve(options.candidatePool);
        for (size_t c = 0; c < options.candidatePool; ++c) {
            Candidate cand;
            const bool exploit =
                !front.empty() &&
                rng.bernoulli(options.exploitFraction);
            if (exploit) {
                const size_t pick =
                    front[rng.uniformInt(
                        static_cast<uint64_t>(front.size()))];
                cand.point = space.mutate(
                    result.evaluations[pick].point,
                    options.mutationRate, rng);
            } else {
                cand.point = space.sample(rng);
            }
            if (have_feasibility &&
                feasibility.predict(cand.point) <
                    options.minPredictedValidity) {
                ++rejected;
                continue;
            }
            cand.predicted.point = cand.point;
            cand.predicted.valid = true;
            cand.predicted.objectives.resize(num_objectives);
            for (size_t k = 0; k < num_objectives; ++k) {
                const ml::ForestPrediction p =
                    models[k].predictWithUncertainty(cand.point);
                cand.predicted.objectives[k] =
                    p.mean - options.kappa * std::sqrt(p.variance);
            }
            pool.push_back(std::move(cand));
        }

        // Keep the model-predicted Pareto front of the pool.
        std::vector<Evaluation> predicted;
        predicted.reserve(pool.size());
        for (const Candidate &c : pool)
            predicted.push_back(c.predicted);
        std::vector<size_t> predicted_front = paretoFront(predicted);
        rng.shuffle(predicted_front);

        // Evaluate up to batchSize new, distinct configurations.
        size_t evaluated = 0;
        for (size_t idx : predicted_front) {
            if (evaluated >= options.batchSize)
                break;
            const Point &candidate = pool[idx].point;
            bool seen = false;
            for (const Evaluation &e : result.evaluations) {
                if (space.samePoint(e.point, candidate)) {
                    seen = true;
                    break;
                }
            }
            if (seen)
                continue;

            result.evaluations.push_back(
                runEvaluation(evaluate, candidate, "active", iter));
            ++evaluated;
        }

        result.feasibilityRejections.push_back(rejected);

        // Degenerate pools (everything already seen): fall back to
        // random samples so the budget is spent as promised.
        while (evaluated < options.batchSize) {
            result.evaluations.push_back(runEvaluation(
                evaluate, space.sample(rng), "active", iter));
            ++evaluated;
        }
    }
    return result;
}

std::vector<Evaluation>
gridSearch(const ParameterSpace &space, const Evaluator &evaluate,
           const GridSearchOptions &options)
{
    const size_t axes = space.size();
    const size_t n = std::max<size_t>(2, options.pointsPerAxis);

    // Axis value lists.
    std::vector<std::vector<double>> values(axes);
    for (size_t i = 0; i < axes; ++i) {
        const Parameter &p = space.param(i);
        if (p.kind == ParamKind::Ordinal) {
            if (p.values.size() <= n) {
                values[i] = p.values;
            } else {
                for (size_t k = 0; k < n; ++k)
                    values[i].push_back(
                        p.values[k * (p.values.size() - 1) / (n - 1)]);
            }
            continue;
        }
        for (size_t k = 0; k < n; ++k) {
            const double t = static_cast<double>(k) /
                             static_cast<double>(n - 1);
            double v;
            if (p.kind == ParamKind::Real && p.logScale) {
                v = std::pow(10.0,
                             std::log10(p.lo) +
                                 t * (std::log10(p.hi) -
                                      std::log10(p.lo)));
            } else {
                v = p.lo + t * (p.hi - p.lo);
            }
            values[i].push_back(v);
        }
    }

    std::vector<Evaluation> evals;
    std::vector<size_t> index(axes, 0);
    for (;;) {
        if (evals.size() >= options.maxEvaluations)
            break;
        Point point(axes);
        for (size_t i = 0; i < axes; ++i)
            point[i] = values[i][index[i]];
        evals.push_back(runEvaluation(
            evaluate, space.canonicalize(point), "grid", 0));

        // Odometer increment.
        size_t axis = 0;
        while (axis < axes) {
            if (++index[axis] < values[axis].size())
                break;
            index[axis] = 0;
            ++axis;
        }
        if (axis == axes)
            break;
    }
    return evals;
}

} // namespace slambench::hypermapper
