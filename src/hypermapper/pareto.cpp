#include "hypermapper/pareto.hpp"

#include <algorithm>
#include <limits>

#include "support/logging.hpp"

namespace slambench::hypermapper {

bool
dominates(const Evaluation &a, const Evaluation &b)
{
    if (!a.valid)
        return false;
    if (!b.valid)
        return true;
    if (a.objectives.size() != b.objectives.size())
        support::panic("dominates: objective count mismatch");
    bool strictly_better = false;
    for (size_t i = 0; i < a.objectives.size(); ++i) {
        if (a.objectives[i] > b.objectives[i])
            return false;
        if (a.objectives[i] < b.objectives[i])
            strictly_better = true;
    }
    return strictly_better;
}

std::vector<size_t>
paretoFront(const std::vector<Evaluation> &evals)
{
    std::vector<size_t> front;
    for (size_t i = 0; i < evals.size(); ++i) {
        if (!evals[i].valid)
            continue;
        bool dominated = false;
        for (size_t j = 0; j < evals.size(); ++j) {
            if (i != j && dominates(evals[j], evals[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

double
hypervolume2d(const std::vector<Evaluation> &evals, double ref0,
              double ref1)
{
    // Collect clipped, valid points and sort by the first objective.
    std::vector<std::pair<double, double>> pts;
    for (const Evaluation &e : evals) {
        if (!e.valid || e.objectives.size() < 2)
            continue;
        const double x = e.objectives[0];
        const double y = e.objectives[1];
        if (x >= ref0 || y >= ref1)
            continue;
        pts.emplace_back(x, y);
    }
    if (pts.empty())
        return 0.0;
    std::sort(pts.begin(), pts.end());

    // Sweep left to right, accumulating the staircase area.
    double volume = 0.0;
    double best_y = ref1;
    for (const auto &[x, y] : pts) {
        if (y < best_y) {
            volume += (ref0 - x) * (best_y - y);
            best_y = y;
        }
    }
    return volume;
}

double
bestUnderCaps(const std::vector<Evaluation> &evals, size_t k,
              const std::vector<double> &caps)
{
    double best = std::numeric_limits<double>::infinity();
    for (const Evaluation &e : evals) {
        if (!e.valid)
            continue;
        bool ok = true;
        for (size_t i = 0; i < e.objectives.size() && ok; ++i) {
            if (i == k)
                continue;
            if (i < caps.size() && e.objectives[i] > caps[i])
                ok = false;
        }
        if (ok)
            best = std::min(best, e.objectives[k]);
    }
    return best;
}

} // namespace slambench::hypermapper
