#ifndef SLAMBENCH_HYPERMAPPER_PARETO_HPP
#define SLAMBENCH_HYPERMAPPER_PARETO_HPP

/**
 * @file
 * Evaluation records and multi-objective (Pareto) machinery.
 *
 * All objectives are minimized; callers negate quantities they want
 * maximized. The DSE in this repository minimizes (simulated runtime,
 * Max ATE, mean power), matching the axes of the paper's Fig. 2.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "hypermapper/param_space.hpp"

namespace slambench::hypermapper {

/** One evaluated configuration. */
struct Evaluation
{
    Point point;
    /** Objective values, all minimized. */
    std::vector<double> objectives;
    /** False when the run failed (tracking lost, out of memory...). */
    bool valid = true;
    /** Which driver produced it ("default"/"random"/"active"). */
    std::string method;
    /** Active-learning iteration (0 for warm-up/random). */
    size_t iteration = 0;
};

/**
 * @return true when @p a dominates @p b: a is <= in every objective
 * and < in at least one. Invalid evaluations never dominate and are
 * dominated by any valid one.
 */
bool dominates(const Evaluation &a, const Evaluation &b);

/**
 * Indices of the non-dominated subset of @p evals (valid ones only).
 */
std::vector<size_t> paretoFront(const std::vector<Evaluation> &evals);

/**
 * 2D hypervolume indicator (areas are computed on the first two
 * objectives) dominated by @p evals relative to @p ref; larger is
 * better. Used by tests and the DSE-quality comparison.
 *
 * @param evals Evaluated points.
 * @param ref Reference point; contributions are clipped to it.
 */
double hypervolume2d(const std::vector<Evaluation> &evals,
                     double ref0, double ref1);

/**
 * Best (minimum) value of objective @p k among valid evaluations
 * whose other objectives satisfy the given caps; +inf when none.
 *
 * @param evals Evaluated points.
 * @param k Objective index to minimize.
 * @param caps Per-objective upper bounds (ignore entries of +inf,
 *             including index k).
 */
double bestUnderCaps(const std::vector<Evaluation> &evals, size_t k,
                     const std::vector<double> &caps);

} // namespace slambench::hypermapper

#endif // SLAMBENCH_HYPERMAPPER_PARETO_HPP
