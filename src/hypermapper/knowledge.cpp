#include "hypermapper/knowledge.hpp"

#include <numeric>

#include "support/logging.hpp"

namespace slambench::hypermapper {

bool
isGood(const Evaluation &e, const GoodnessCriteria &criteria)
{
    if (!e.valid)
        return false;
    const double runtime = e.objectives[criteria.runtimeIndex];
    const double ate = e.objectives[criteria.ateIndex];
    const double watts = e.objectives[criteria.wattsIndex];
    const double fps = runtime > 0.0 ? 1.0 / runtime : 0.0;
    return ate <= criteria.maxAteLimit && fps >= criteria.minFps &&
           watts <= criteria.maxWatts;
}

Knowledge
extractKnowledge(const ParameterSpace &space,
                 const std::vector<Evaluation> &evals,
                 const GoodnessCriteria &criteria, size_t max_depth)
{
    Knowledge knowledge;

    ml::Dataset data(space.size());
    data.setFeatureNames(space.names());
    for (const Evaluation &e : evals) {
        if (!e.valid)
            continue;
        const bool good = isGood(e, criteria);
        data.addRow(e.point, good ? 1.0 : 0.0);
        knowledge.goodCount += good ? 1 : 0;
        ++knowledge.totalCount;
    }
    if (knowledge.totalCount == 0) {
        support::logWarn() << "extractKnowledge: no valid evaluations";
        return knowledge;
    }

    ml::TreeOptions options;
    options.maxDepth = max_depth;
    options.minSamplesLeaf = 3;
    options.minSamplesSplit = 6;
    options.featureSubset = 0; // deterministic full-CART splits

    std::vector<size_t> rows(data.size());
    std::iota(rows.begin(), rows.end(), 0);
    support::Rng rng(7);
    knowledge.tree.fitClassification(data, rows, options, rng);
    knowledge.rules = knowledge.tree.toRules(
        data, "GOOD (accurate + real-time + power-efficient)",
        "BAD");

    // Training accuracy of the readout (reported, not optimized).
    size_t correct = 0;
    std::vector<double> features;
    for (size_t i = 0; i < data.size(); ++i) {
        data.rowFeatures(i, features);
        const bool predicted = knowledge.tree.predict(features) > 0.5;
        const bool actual = data.target(i) > 0.5;
        if (predicted == actual)
            ++correct;
    }
    knowledge.trainAccuracy = static_cast<double>(correct) /
                              static_cast<double>(data.size());
    return knowledge;
}

} // namespace slambench::hypermapper
