#include "hypermapper/param_space.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace slambench::hypermapper {

size_t
ParameterSpace::addInteger(const std::string &name, long lo, long hi,
                           long default_value)
{
    if (hi < lo)
        support::fatal("ParameterSpace: integer range is empty for " +
                       name);
    Parameter p;
    p.name = name;
    p.kind = ParamKind::Integer;
    p.lo = static_cast<double>(lo);
    p.hi = static_cast<double>(hi);
    p.defaultValue = static_cast<double>(default_value);
    params_.push_back(std::move(p));
    return params_.size() - 1;
}

size_t
ParameterSpace::addReal(const std::string &name, double lo, double hi,
                        double default_value, bool log_scale)
{
    if (!(hi > lo))
        support::fatal("ParameterSpace: real range is empty for " +
                       name);
    if (log_scale && !(lo > 0.0))
        support::fatal("ParameterSpace: log-scaled range needs lo > 0 "
                       "for " + name);
    Parameter p;
    p.name = name;
    p.kind = ParamKind::Real;
    p.lo = lo;
    p.hi = hi;
    p.logScale = log_scale;
    p.defaultValue = default_value;
    params_.push_back(std::move(p));
    return params_.size() - 1;
}

size_t
ParameterSpace::addOrdinal(const std::string &name,
                           std::vector<double> values,
                           double default_value)
{
    if (values.empty())
        support::fatal("ParameterSpace: ordinal needs values for " +
                       name);
    if (!std::is_sorted(values.begin(), values.end()))
        support::fatal("ParameterSpace: ordinal values must ascend "
                       "for " + name);
    Parameter p;
    p.name = name;
    p.kind = ParamKind::Ordinal;
    p.values = std::move(values);
    p.lo = p.values.front();
    p.hi = p.values.back();
    p.defaultValue = default_value;
    params_.push_back(std::move(p));
    return params_.size() - 1;
}

size_t
ParameterSpace::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < params_.size(); ++i)
        if (params_[i].name == name)
            return i;
    support::fatal("ParameterSpace: unknown parameter " + name);
}

Point
ParameterSpace::defaultPoint() const
{
    Point p(params_.size());
    for (size_t i = 0; i < params_.size(); ++i)
        p[i] = snapOne(params_[i], params_[i].defaultValue);
    return p;
}

double
ParameterSpace::sampleOne(const Parameter &p, support::Rng &rng) const
{
    switch (p.kind) {
      case ParamKind::Integer:
        return static_cast<double>(rng.uniformInt(
            static_cast<int64_t>(p.lo), static_cast<int64_t>(p.hi)));
      case ParamKind::Real:
        if (p.logScale) {
            const double e =
                rng.uniform(std::log10(p.lo), std::log10(p.hi));
            return std::pow(10.0, e);
        }
        return rng.uniform(p.lo, p.hi);
      case ParamKind::Ordinal:
        return p.values[rng.uniformInt(
            static_cast<uint64_t>(p.values.size()))];
    }
    return p.defaultValue;
}

double
ParameterSpace::snapOne(const Parameter &p, double value) const
{
    switch (p.kind) {
      case ParamKind::Integer:
        return std::clamp(std::round(value), p.lo, p.hi);
      case ParamKind::Real:
        return std::clamp(value, p.lo, p.hi);
      case ParamKind::Ordinal: {
        // Snap to the nearest listed value.
        double best = p.values.front();
        double best_d = std::abs(value - best);
        for (double v : p.values) {
            const double d = std::abs(value - v);
            if (d < best_d) {
                best = v;
                best_d = d;
            }
        }
        return best;
      }
    }
    return value;
}

Point
ParameterSpace::sample(support::Rng &rng) const
{
    Point p(params_.size());
    for (size_t i = 0; i < params_.size(); ++i)
        p[i] = sampleOne(params_[i], rng);
    return p;
}

Point
ParameterSpace::mutate(const Point &point, double rate,
                       support::Rng &rng) const
{
    Point out = point;
    for (size_t i = 0; i < params_.size(); ++i) {
        if (rng.bernoulli(rate))
            out[i] = sampleOne(params_[i], rng);
    }
    return out;
}

Point
ParameterSpace::canonicalize(const Point &point) const
{
    if (point.size() != params_.size())
        support::panic("ParameterSpace::canonicalize: size mismatch");
    Point out(point.size());
    for (size_t i = 0; i < params_.size(); ++i)
        out[i] = snapOne(params_[i], point[i]);
    return out;
}

std::vector<std::string>
ParameterSpace::names() const
{
    std::vector<std::string> out;
    out.reserve(params_.size());
    for (const Parameter &p : params_)
        out.push_back(p.name);
    return out;
}

std::string
ParameterSpace::describe(const Point &point) const
{
    std::string out;
    for (size_t i = 0; i < params_.size(); ++i) {
        if (i)
            out += ' ';
        out += support::format("%s=%.6g", params_[i].name.c_str(),
                               point[i]);
    }
    return out;
}

bool
ParameterSpace::samePoint(const Point &a, const Point &b) const
{
    const Point ca = canonicalize(a);
    const Point cb = canonicalize(b);
    for (size_t i = 0; i < ca.size(); ++i)
        if (ca[i] != cb[i])
            return false;
    return true;
}

} // namespace slambench::hypermapper
