#ifndef SLAMBENCH_HYPERMAPPER_DRIVERS_HPP
#define SLAMBENCH_HYPERMAPPER_DRIVERS_HPP

/**
 * @file
 * Design-space exploration drivers.
 *
 * RandomSearch is the baseline of the paper's Fig. 2; ActiveLearning
 * is the HyperMapper methodology: random warm-up, per-objective
 * random-forest models, then batches chosen from the model-predicted
 * Pareto region of a large candidate pool (with mutation around the
 * incumbent front), each batch evaluated for real and fed back.
 */

#include <functional>
#include <string>
#include <vector>

#include "hypermapper/pareto.hpp"
#include "ml/random_forest.hpp"

namespace slambench::hypermapper {

/**
 * Black-box objective function: configuration -> objective vector
 * (all minimized) plus a validity flag.
 */
struct EvaluationOutcome
{
    std::vector<double> objectives;
    bool valid = true;
};

using Evaluator = std::function<EvaluationOutcome(const Point &)>;

/** Options of the random-search baseline. */
struct RandomSearchOptions
{
    size_t budget = 100; ///< Number of evaluations.
    uint64_t seed = 1;
    /**
     * Concurrent evaluations: 0 = hardware concurrency, 1 = serial
     * (the legacy path). Results are byte-identical for any value —
     * points are derived before dispatch and committed in submission
     * order.
     */
    size_t threads = 1;
};

/**
 * Evaluate @p options.budget uniform random configurations.
 *
 * @param space Design space.
 * @param evaluate Black-box objective.
 * @param options Budget and seed.
 * @return all evaluations, tagged method="random".
 */
std::vector<Evaluation> randomSearch(const ParameterSpace &space,
                                     const Evaluator &evaluate,
                                     const RandomSearchOptions &options);

/** Options of the HyperMapper-style active-learning driver. */
struct ActiveLearningOptions
{
    size_t warmupSamples = 40;   ///< Random evaluations first.
    size_t iterations = 6;       ///< Model/evaluate rounds.
    size_t batchSize = 10;       ///< Evaluations per round.
    size_t candidatePool = 3000; ///< Model-predicted points per round.
    /** Fraction of the pool mutated from the incumbent front. */
    double exploitFraction = 0.5;
    /** Coordinate mutation rate for exploit candidates. */
    double mutationRate = 0.3;
    /**
     * Optimism: candidates ranked by mean - kappa * stddev (lower
     * confidence bound) per objective.
     */
    double kappa = 1.0;
    /**
     * Learn the feasible region (HyperMapper's validity classifier):
     * when invalid evaluations exist, fit a forest on the 0/1
     * validity labels and drop candidates whose predicted
     * feasibility falls below minPredictedValidity.
     */
    bool learnFeasibility = true;
    double minPredictedValidity = 0.3;
    ml::ForestOptions forest;
    uint64_t seed = 1;
    /**
     * Concurrent evaluations, per-tree forest fits, and LCB scoring:
     * 0 = hardware concurrency, 1 = serial (the legacy path).
     * Results are byte-identical for any value — candidate points and
     * per-tree Rng streams are derived before dispatch and results
     * committed in submission order.
     */
    size_t threads = 1;
};

/** Full trace of an active-learning run. */
struct ActiveLearningResult
{
    /** All real evaluations (warm-up first, then per-iteration). */
    std::vector<Evaluation> evaluations;
    /** Model quality (training MSE per objective) per iteration. */
    std::vector<std::vector<double>> modelMse;
    /** Candidates rejected by the feasibility model, per iteration. */
    std::vector<size_t> feasibilityRejections;
};

/**
 * Run HyperMapper-style active learning.
 *
 * @param space Design space.
 * @param evaluate Black-box objective.
 * @param num_objectives Length of the objective vectors.
 * @param options Driver options.
 * @return evaluations tagged method="active" (warm-up tagged
 *         method="random", iteration=0).
 */
ActiveLearningResult
activeLearning(const ParameterSpace &space, const Evaluator &evaluate,
               size_t num_objectives,
               const ActiveLearningOptions &options);

/** Options of the exhaustive / grid baseline. */
struct GridSearchOptions
{
    /** Sample points per parameter axis (>= 2). */
    size_t pointsPerAxis = 3;
    /** Hard cap on evaluations (the full grid is exponential). */
    size_t maxEvaluations = 1000;
    /**
     * Concurrent evaluations: 0 = hardware concurrency, 1 = serial.
     * The grid is enumerated before dispatch, so results are
     * byte-identical for any value.
     */
    size_t threads = 1;
};

/**
 * Exhaustive grid sweep (the baseline the paper calls infeasible at
 * full resolution; useful at coarse resolution and in tests).
 * Integer/real axes are sampled uniformly (log-uniformly when the
 * parameter is log-scaled); ordinal axes use their value lists,
 * subsampled to at most pointsPerAxis entries.
 *
 * @param space Design space.
 * @param evaluate Black-box objective.
 * @param options Grid shape; evaluation stops at maxEvaluations.
 * @return evaluations tagged method="grid".
 */
std::vector<Evaluation> gridSearch(const ParameterSpace &space,
                                   const Evaluator &evaluate,
                                   const GridSearchOptions &options);

} // namespace slambench::hypermapper

#endif // SLAMBENCH_HYPERMAPPER_DRIVERS_HPP
