#include "kfusion/tracking.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kfusion/backend.hpp"
#include "math/se3.hpp"
#include "math/solve.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

using math::Mat4f;
using math::Vec3f;

namespace {

/** @return a static span name for pyramid level @p li. */
const char *
icpLevelSpanName(size_t li)
{
    switch (li) {
      case 0: return "icp_level_0";
      case 1: return "icp_level_1";
      case 2: return "icp_level_2";
      case 3: return "icp_level_3";
      default: return "icp_level_n";
    }
}

} // namespace

void
trackKernel(support::Image<TrackData> &track_data,
            const support::Image<Vec3f> &live_vertex,
            const support::Image<Vec3f> &live_normal,
            const Mat4f &pose, const support::Image<Vec3f> &ref_vertex,
            const support::Image<Vec3f> &ref_normal,
            const math::CameraIntrinsics &ref_intrinsics,
            const Mat4f &ref_pose, float dist_threshold,
            float normal_threshold, support::ThreadPool *pool,
            IcpResidual residual)
{
    const size_t w = live_vertex.width();
    const size_t h = live_vertex.height();
    track_data.resize(w, h);

    const Mat4f world_to_ref = ref_pose.rigidInverse();

    auto process_row = [&](size_t y) {
        for (size_t x = 0; x < w; ++x) {
            TrackData &row = track_data(x, y);
            const Vec3f &in_vertex = live_vertex(x, y);
            const Vec3f &in_normal = live_normal(x, y);
            if (in_vertex.squaredNorm() == 0.0f ||
                in_normal.squaredNorm() == 0.0f) {
                row.result = TrackResult::NoInputVertex;
                continue;
            }

            const Vec3f world_vertex = pose.transformPoint(in_vertex);
            const Vec3f ref_cam = world_to_ref.transformPoint(world_vertex);
            if (ref_cam.z <= 0.0f) {
                row.result = TrackResult::ProjectedOutside;
                continue;
            }
            const math::Vec2f pix = ref_intrinsics.project(ref_cam);
            const int px = static_cast<int>(pix.x);
            const int py = static_cast<int>(pix.y);
            if (px < 0 || py < 0 ||
                px >= static_cast<int>(ref_vertex.width()) ||
                py >= static_cast<int>(ref_vertex.height())) {
                row.result = TrackResult::ProjectedOutside;
                continue;
            }

            const Vec3f &r_normal = ref_normal(
                static_cast<size_t>(px), static_cast<size_t>(py));
            if (r_normal.squaredNorm() == 0.0f) {
                row.result = TrackResult::NoRefNormal;
                continue;
            }
            const Vec3f &r_vertex = ref_vertex(
                static_cast<size_t>(px), static_cast<size_t>(py));

            const Vec3f diff = r_vertex - world_vertex;
            if (diff.norm() > dist_threshold) {
                row.result = TrackResult::TooFar;
                continue;
            }
            const Vec3f world_normal = pose.transformDir(in_normal);
            if (world_normal.dot(r_normal) < normal_threshold) {
                row.result = TrackResult::NormalMismatch;
                continue;
            }

            row.result = TrackResult::Ok;
            // Point-to-plane projects the correspondence difference
            // onto the reference normal. Point-to-point minimizes
            // the full 3D difference; its three component residuals
            // are round-robined across pixels so the scalar
            // reduction sees an (evenly subsampled) full-rank
            // system.
            Vec3f direction = r_normal;
            if (residual == IcpResidual::PointToPoint) {
                const size_t axis = (x + y) % 3;
                direction = Vec3f{};
                direction[axis] = 1.0f;
            }
            row.error = direction.dot(diff);
            const Vec3f jw = world_vertex.cross(direction);
            row.jacobian = {direction.x, direction.y, direction.z,
                            jw.x, jw.y, jw.z};
        }
    };

    if (pool) {
        pool->parallelFor(0, h, process_row);
    } else {
        for (size_t y = 0; y < h; ++y)
            process_row(y);
    }
}

ReductionResult
reduceKernel(const support::Image<TrackData> &track_data,
             support::ThreadPool *pool, const KernelBackend *backend)
{
    // The reduction is associative; compute per-chunk partials and
    // merge. The sequential path is a single chunk. The per-chunk
    // body lives in the kernel backend (the scalar backend carries
    // the original reduce_range loop).
    const KernelBackend &be =
        backend ? *backend : scalarKernelBackend();
    auto reduce_range = [&](size_t begin,
                            size_t end) -> ReductionResult {
        return be.reduceRange(track_data, begin, end);
    };

    ReductionResult total;
    total.pixelCount = track_data.size();

    if (pool && track_data.size() > 4096) {
        const size_t chunks = pool->numThreads() * 2;
        const size_t n = track_data.size();
        std::vector<ReductionResult> partials(chunks);
        pool->parallelFor(0, chunks, [&](size_t c) {
            const size_t begin = n * c / chunks;
            const size_t end = n * (c + 1) / chunks;
            partials[c] = reduce_range(begin, end);
        });
        for (const ReductionResult &p : partials) {
            total.validCount += p.validCount;
            total.errorSq += p.errorSq;
            for (size_t i = 0; i < total.jtj.size(); ++i)
                total.jtj[i] += p.jtj[i];
            for (size_t i = 0; i < total.jte.size(); ++i)
                total.jte[i] += p.jte[i];
        }
    } else {
        const ReductionResult p = reduce_range(0, track_data.size());
        total.validCount = p.validCount;
        total.errorSq = p.errorSq;
        total.jtj = p.jtj;
        total.jte = p.jte;
    }
    return total;
}

bool
updatePose(Mat4f &pose, const ReductionResult &reduction,
           double &twist_norm)
{
    twist_norm = 0.0;
    if (reduction.validCount < 6)
        return false;

    // Expand the packed upper triangle into a full symmetric matrix.
    std::array<double, 36> a{};
    size_t t = 0;
    for (int r = 0; r < 6; ++r) {
        for (int c = r; c < 6; ++c, ++t) {
            a[static_cast<size_t>(r * 6 + c)] = reduction.jtj[t];
            a[static_cast<size_t>(c * 6 + r)] = reduction.jtj[t];
        }
    }

    std::array<double, 6> x{};
    if (!math::solveLdlt6(a, reduction.jte, x)) {
        // Rank-deficient system (e.g. point-to-point residuals with
        // a single correspondence direction): retry with Levenberg
        // damping, which steps along the observable subspace only.
        double trace = 0.0;
        for (int i = 0; i < 6; ++i)
            trace += a[static_cast<size_t>(i * 7)];
        bool solved = false;
        double lambda = std::max(1e-9, 1e-6 * trace);
        for (int attempt = 0; attempt < 8 && !solved; ++attempt) {
            std::array<double, 36> damped = a;
            for (int i = 0; i < 6; ++i)
                damped[static_cast<size_t>(i * 7)] += lambda;
            solved = math::solveLdlt6(damped, reduction.jte, x);
            lambda *= 10.0;
        }
        if (!solved)
            return false;
    }

    const math::Vec3d v{x[0], x[1], x[2]};
    const math::Vec3d w{x[3], x[4], x[5]};
    twist_norm = std::sqrt(v.squaredNorm() + w.squaredNorm());

    const math::Mat4d delta = math::expSe3(v, w);
    pose = (delta.cast<float>() * pose);
    return true;
}

TrackingStats
icpTrack(Mat4f &pose, const std::vector<PyramidLevel> &live,
         const support::Image<Vec3f> &ref_vertex,
         const support::Image<Vec3f> &ref_normal,
         const math::CameraIntrinsics &ref_intrinsics,
         const Mat4f &ref_pose, const KFusionConfig &config,
         WorkCounts &counts, support::ThreadPool *pool,
         support::Image<TrackData> *final_track_data,
         const KernelBackend *backend)
{
    TRACE_SCOPE("icp_track");
    TrackingStats stats;
    if (live.empty())
        support::panic("icpTrack: empty pyramid");

    const Mat4f old_pose = pose;
    support::Image<TrackData> track_data;
    ReductionResult last_reduction;
    bool have_reduction = false;

    // Coarse-to-fine schedule.
    for (size_t li = live.size(); li-- > 0;) {
        TRACE_SCOPE(icpLevelSpanName(li));
        const PyramidLevel &level = live[li];
        const int iterations =
            config.pyramidIterations[li];
        for (int iter = 0; iter < iterations; ++iter) {
            {
                KernelTimer timer(counts, KernelId::Track);
                trackKernel(track_data, level.vertex, level.normal,
                            pose, ref_vertex, ref_normal,
                            ref_intrinsics, ref_pose,
                            config.distThreshold,
                            config.normalThreshold, pool,
                            config.icpResidual);
                counts.addItems(
                    KernelId::Track,
                    static_cast<double>(level.vertex.size()));
                counts.addBytes(
                    KernelId::Track,
                    static_cast<double>(level.vertex.size()) * 80.0);
            }
            ReductionResult reduction;
            {
                KernelTimer timer(counts, KernelId::Reduce);
                reduction = reduceKernel(track_data, pool, backend);
                counts.addItems(
                    KernelId::Reduce,
                    static_cast<double>(track_data.size()));
                counts.addBytes(
                    KernelId::Reduce,
                    static_cast<double>(track_data.size()) * 32.0);
            }
            last_reduction = reduction;
            have_reduction = true;
            ++stats.iterations;

            double twist_norm = 0.0;
            bool solved;
            {
                KernelTimer timer(counts, KernelId::Solve);
                solved = updatePose(pose, reduction, twist_norm);
                counts.addItems(KernelId::Solve, 1.0);
                counts.addBytes(KernelId::Solve, 512.0);
            }
            if (!solved)
                break;
            if (twist_norm < config.icpThreshold)
                break;
        }
    }
    TRACE_COUNTER("icp_iterations", stats.iterations);
    static support::metrics::Counter &iterations_counter =
        support::metrics::Registry::instance().counter(
            "tracking.icp_iterations");
    iterations_counter.add(
        static_cast<uint64_t>(std::max(stats.iterations, 0)));

    if (final_track_data)
        *final_track_data = track_data;

    if (!have_reduction) {
        // No iterations configured: keep the prior pose, report it
        // as tracked so the pipeline can continue (open-loop mode).
        stats.tracked = true;
        return stats;
    }

    stats.inlierFraction =
        last_reduction.pixelCount
            ? static_cast<double>(last_reduction.validCount) /
                  static_cast<double>(last_reduction.pixelCount)
            : 0.0;
    stats.rmse =
        last_reduction.validCount
            ? std::sqrt(last_reduction.errorSq /
                        static_cast<double>(last_reduction.validCount))
            : std::numeric_limits<double>::infinity();

    // Pose acceptance gates (KFusion's checkPoseKernel).
    if (stats.rmse > config.trackResidualLimit ||
        stats.inlierFraction < config.trackInlierFraction) {
        pose = old_pose;
        stats.tracked = false;
        static support::metrics::Counter &rejections_counter =
            support::metrics::Registry::instance().counter(
                "tracking.pose_rejections");
        rejections_counter.add(1);
    } else {
        stats.tracked = true;
    }
    return stats;
}

} // namespace slambench::kfusion
