#ifndef SLAMBENCH_KFUSION_CONFIG_HPP
#define SLAMBENCH_KFUSION_CONFIG_HPP

/**
 * @file
 * Algorithmic configuration of the KinectFusion pipeline.
 *
 * These are exactly the parameters exposed by SLAMBench and explored
 * by HyperMapper in the paper: compute-size ratio, ICP convergence
 * threshold, mu (TSDF truncation), integration rate, volume
 * resolution, pyramid iteration counts, tracking and rendering rates.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "math/vec.hpp"

namespace slambench::kfusion {

/** ICP residual formulation (ablation knob, not in the DSE space). */
enum class IcpResidual {
    PointToPlane, ///< KinectFusion's formulation (default).
    PointToPoint, ///< Classic ICP: minimize correspondence distance.
};

/**
 * All algorithmic knobs of the pipeline, with SLAMBench defaults.
 */
struct KFusionConfig
{
    /**
     * Input down-scaling ratio; the pipeline runs on
     * (width / ratio) x (height / ratio) images. Power of two in
     * {1, 2, 4, 8}.
     */
    int computeSizeRatio = 1;

    /**
     * ICP early-termination threshold on the twist-update norm.
     */
    float icpThreshold = 1e-5f;

    /** TSDF truncation band, meters. */
    float mu = 0.1f;

    /** Integrate the depth map into the volume every Nth frame. */
    int integrationRate = 2;

    /** Voxels per volume edge (the volume is cubic). */
    int volumeResolution = 256;

    /** Volume edge length, meters. */
    float volumeSize = 4.8f;

    /** World position of the volume's minimum corner. */
    math::Vec3f volumeOrigin{-2.4f, -0.4f, -2.4f};

    /**
     * ICP iterations per pyramid level, finest first. The vector
     * length sets the number of pyramid levels.
     */
    std::vector<int> pyramidIterations{10, 5, 4};

    /** Run the tracker every Nth frame. */
    int trackingRate = 1;

    /** Render the visualization output every Nth frame. */
    int renderingRate = 4;

    /**
     * Kernel backend for the four hot kernels (TSDF integrate, fused
     * gradient, ray-march core, ICP reduction): a name registered in
     * the kernel-backend registry ("scalar", "simd", ...) or "auto"
     * for CPUID-based dispatch. See docs/KERNEL_BACKENDS.md. All
     * backends are bit-exact against "scalar", so this is a pure
     * performance axis — the DSE explores it as the ordinal
     * "implementation" dimension.
     */
    std::string kernelBackend = "scalar";

    /**
     * TSDF map data structure: "dense" (z-major array,
     * O(resolution^3) memory, the numerical reference) or "sparse"
     * (hashed voxel blocks, memory proportional to observed surface,
     * bit-identical to dense on the observed region). The DSE
     * explores it as the ordinal "volume" dimension. See
     * docs/ARCHITECTURE.md "Volume backends".
     */
    std::string volumeBackend = "dense";

    /** Sparse volume: voxels per block edge (8 or 16). */
    int volumeBlockSize = 8;

    /**
     * Sparse volume: maximum resident blocks (0 = unbounded). On
     * exhaustion, fusion into not-yet-resident blocks is dropped;
     * resident blocks keep fusing.
     */
    long volumePoolCapacity = 0;

    // --- Fixed algorithm constants (SLAMBench values). ---

    /** Bilateral filter half window (radius 2 = 5x5 kernel). */
    int filterRadius = 2;
    /** Bilateral filter spatial sigma, pixels. */
    float gaussianDelta = 4.0f;
    /** Bilateral filter range sigma, meters. */
    float eDelta = 0.1f;
    /** ICP correspondence distance gate, meters. */
    float distThreshold = 0.1f;
    /** ICP correspondence normal gate (cosine). */
    float normalThreshold = 0.8f;
    /** TSDF maximum integration weight. */
    float maxWeight = 100.0f;
    /** Raycast near plane, meters. */
    float nearPlane = 0.4f;
    /** Raycast far plane, meters. */
    float farPlane = 4.5f;
    /** Minimum fraction of tracked pixels for a pose to be accepted. */
    float trackInlierFraction = 0.10f;
    /** Maximum ICP RMS residual for a pose to be accepted, meters. */
    float trackResidualLimit = 2e-2f;
    /** Residual formulation used by the tracker. */
    IcpResidual icpResidual = IcpResidual::PointToPlane;

    /** @return number of pyramid levels (>= 1). */
    size_t levels() const { return pyramidIterations.size(); }

    /** @return voxel edge length, meters. */
    float
    voxelSize() const
    {
        return volumeSize / static_cast<float>(volumeResolution);
    }

    /**
     * Validate ranges; returns a human-readable problem description.
     *
     * @return empty string when the configuration is usable.
     */
    std::string validate() const;

    /** One-line summary of the explored parameters. */
    std::string toString() const;
};

/** Implementation flavor of the compute kernels. */
enum class Implementation {
    Sequential, ///< Single-threaded reference kernels.
    Threaded,   ///< ThreadPool-parallel kernels (OpenMP stand-in).
};

/** @return "sequential" or "threaded". */
const char *implementationName(Implementation impl);

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_CONFIG_HPP
