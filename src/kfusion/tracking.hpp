#ifndef SLAMBENCH_KFUSION_TRACKING_HPP
#define SLAMBENCH_KFUSION_TRACKING_HPP

/**
 * @file
 * Frame-to-model ICP camera tracking (point-to-plane), the
 * KinectFusion tracking stage.
 *
 * Each iteration projects the live vertex map into the reference
 * (raycasted model) view, gates correspondences by distance and
 * normal agreement, accumulates the 6x6 Gauss-Newton normal
 * equations, and applies the se(3) twist that solves them.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "kfusion/config.hpp"
#include "kfusion/work_counters.hpp"
#include "math/camera.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"
#include "support/image.hpp"
#include "support/thread_pool.hpp"

namespace slambench::kfusion {

class KernelBackend;

/** Per-pixel correspondence outcome (mirrors KFusion's TrackData). */
enum class TrackResult : int8_t {
    Ok = 1,               ///< Valid correspondence found.
    NoInputVertex = -1,   ///< Live pixel has no depth.
    ProjectedOutside = -2,///< Projects outside the reference image.
    NoRefNormal = -3,     ///< Reference pixel has no normal.
    TooFar = -4,          ///< Distance gate failed.
    NormalMismatch = -5,  ///< Normal-agreement gate failed.
};

/** Per-pixel tracking record. */
struct TrackData
{
    TrackResult result = TrackResult::NoInputVertex;
    float error = 0.0f;          ///< Point-to-plane residual.
    std::array<float, 6> jacobian{}; ///< d(error)/d(twist).
};

/** Residual statistics of one ICP solve. */
struct TrackingStats
{
    bool tracked = false;     ///< Pose accepted by the gates.
    double rmse = 0.0;        ///< RMS point-to-plane residual, meters.
    double inlierFraction = 0.0; ///< Valid correspondences / pixels.
    int iterations = 0;       ///< Total ICP iterations executed.
};

/** Inputs the tracker needs per pyramid level. */
struct PyramidLevel
{
    support::Image<float> depth;
    support::Image<math::Vec3f> vertex;
    support::Image<math::Vec3f> normal;
    math::CameraIntrinsics intrinsics;
};

/**
 * Multi-level ICP aligning the live pyramid to the reference model
 * maps (raycasted vertex/normal at the reference pose).
 *
 * @param[in,out] pose Camera-to-world estimate; updated in place.
 * @param live Pyramid of the current frame (level 0 = finest).
 * @param ref_vertex Model vertex map (world frame) at level-0 size.
 * @param ref_normal Model normal map (world frame) at level-0 size.
 * @param ref_intrinsics Intrinsics of the reference maps.
 * @param ref_pose Camera-to-world pose the reference maps were
 *                 raycast from.
 * @param config Gates, per-level iterations, convergence threshold.
 * @param[in,out] counts Work accounting (Track/Reduce/Solve).
 * @param pool Optional worker pool.
 * @param[out] final_track_data When non-null, receives the per-pixel
 *             records of the last executed iteration (GUI pane).
 * @param backend Kernel backend running the reduction (nullptr =
 *                scalar reference).
 * @return residual statistics and whether the pose was accepted.
 */
TrackingStats icpTrack(math::Mat4f &pose,
                       const std::vector<PyramidLevel> &live,
                       const support::Image<math::Vec3f> &ref_vertex,
                       const support::Image<math::Vec3f> &ref_normal,
                       const math::CameraIntrinsics &ref_intrinsics,
                       const math::Mat4f &ref_pose,
                       const KFusionConfig &config, WorkCounts &counts,
                       support::ThreadPool *pool,
                       support::Image<TrackData> *final_track_data =
                           nullptr,
                       const KernelBackend *backend = nullptr);

/**
 * One correspondence+residual evaluation over a full image (exposed
 * separately for unit tests and the point-to-point ablation).
 *
 * @param[out] track_data Per-pixel records, sized like live_vertex.
 * @param live_vertex Live vertex map (camera frame).
 * @param live_normal Live normal map (camera frame).
 * @param pose Current camera-to-world estimate.
 * @param ref_vertex Reference vertex map (world frame).
 * @param ref_normal Reference normal map (world frame).
 * @param ref_intrinsics Intrinsics of the reference maps.
 * @param ref_pose Reference camera pose (camera-to-world).
 * @param dist_threshold Distance gate, meters.
 * @param normal_threshold Normal-agreement gate, cosine.
 * @param pool Optional worker pool.
 * @param residual Residual formulation: point-to-plane projects the
 *                 correspondence difference onto the reference
 *                 normal; point-to-point projects it onto its own
 *                 direction (classic ICP distance, linearized).
 */
void trackKernel(support::Image<TrackData> &track_data,
                 const support::Image<math::Vec3f> &live_vertex,
                 const support::Image<math::Vec3f> &live_normal,
                 const math::Mat4f &pose,
                 const support::Image<math::Vec3f> &ref_vertex,
                 const support::Image<math::Vec3f> &ref_normal,
                 const math::CameraIntrinsics &ref_intrinsics,
                 const math::Mat4f &ref_pose, float dist_threshold,
                 float normal_threshold, support::ThreadPool *pool,
                 IcpResidual residual = IcpResidual::PointToPlane);

/** Reduction output: J^T J (upper triangle), J^T e, error, count. */
struct ReductionResult
{
    std::array<double, 21> jtj{}; ///< Upper triangle, row-major.
    std::array<double, 6> jte{};
    double errorSq = 0.0;
    size_t validCount = 0;
    size_t pixelCount = 0;
};

/**
 * Sum the normal equations over all valid pixels of @p track_data.
 *
 * @param track_data Per-pixel records from trackKernel.
 * @param pool Optional worker pool (chunked partial sums).
 * @param backend Kernel backend running each chunk's reduction
 *                (nullptr = scalar reference).
 */
ReductionResult reduceKernel(const support::Image<TrackData> &track_data,
                             support::ThreadPool *pool,
                             const KernelBackend *backend = nullptr);

/**
 * Solve the reduced system and left-multiply the pose by exp(twist).
 *
 * @param[in,out] pose Camera-to-world estimate.
 * @param reduction Accumulated normal equations.
 * @param[out] twist_norm Norm of the applied twist.
 * @return false when the system was singular (pose unchanged).
 */
bool updatePose(math::Mat4f &pose, const ReductionResult &reduction,
                double &twist_norm);

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_TRACKING_HPP
