#include "kfusion/work_counters.hpp"

namespace slambench::kfusion {

const char *
kernelName(KernelId id)
{
    switch (id) {
      case KernelId::Mm2Meters: return "mm2meters";
      case KernelId::BilateralFilter: return "bilateral_filter";
      case KernelId::HalfSample: return "half_sample";
      case KernelId::Depth2Vertex: return "depth2vertex";
      case KernelId::Vertex2Normal: return "vertex2normal";
      case KernelId::Track: return "track";
      case KernelId::Reduce: return "reduce";
      case KernelId::Solve: return "solve";
      case KernelId::Integrate: return "integrate";
      case KernelId::Raycast: return "raycast";
      case KernelId::RenderVolume: return "render_volume";
      case KernelId::Count: break;
    }
    return "unknown";
}

double
WorkCounts::totalHostSeconds() const
{
    double total = 0.0;
    for (double s : hostSeconds)
        total += s;
    return total;
}

double
WorkCounts::totalItems() const
{
    double total = 0.0;
    for (double n : items)
        total += n;
    return total;
}

} // namespace slambench::kfusion
