#include "kfusion/volume_backend.hpp"

#include "support/logging.hpp"
#include "support/metrics.hpp"

namespace slambench::kfusion {

namespace {

/** Dense z-major TsdfVolume behind the common interface. */
class DenseVolume final : public VolumeBackend
{
  public:
    DenseVolume(int resolution, float size_m, const Vec3f &origin)
        : volume_(resolution, size_m, origin)
    {
    }

    const char *kind() const override { return "dense"; }
    int resolution() const override { return volume_.resolution(); }
    float size() const override { return volume_.size(); }
    const Vec3f &origin() const override { return volume_.origin(); }

    void reset() override { volume_.reset(); }

    void
    setKernelBackend(const KernelBackend *backend) override
    {
        backend_ = backend;
        volume_.setBackend(backend);
    }

    bool
    contains(const Vec3f &p) const override
    {
        return volume_.contains(p);
    }

    float
    interp(const Vec3f &p, bool &valid) const override
    {
        return volume_.interp(p, valid);
    }

    Vec3f grad(const Vec3f &p) const override
    {
        return volume_.grad(p);
    }

    Voxel
    voxelAt(int x, int y, int z) const override
    {
        return volume_.voxelAt(x, y, z);
    }

    void
    integrate(const support::Image<float> &depth,
              const CameraIntrinsics &intrinsics,
              const Mat4f &camera_to_world, float mu,
              float max_weight, WorkCounts &counts,
              support::ThreadPool *pool) override
    {
        volume_.integrate(depth, intrinsics, camera_to_world, mu,
                          max_weight, counts, pool);
        // Mirror the sparse backend's residency gauges so run
        // reports and bench_compare's volume-bytes gate read the
        // same series for either backend: the dense volume has no
        // blocks, it is simply always fully resident.
        const VolumeMemoryStats stats = memoryStats();
        namespace sm = support::metrics;
        static sm::Gauge &allocated_gauge =
            sm::Registry::instance().gauge("volume.blocks.allocated");
        static sm::Gauge &bytes_gauge =
            sm::Registry::instance().gauge("volume.blocks.bytes");
        allocated_gauge.set(
            static_cast<double>(stats.allocatedBlocks));
        bytes_gauge.set(static_cast<double>(stats.bytes));
    }

    void
    raycast(support::Image<Vec3f> &vertex_out,
            support::Image<Vec3f> &normal_out,
            const CameraIntrinsics &intrinsics,
            const Mat4f &camera_to_world, const RaycastParams &params,
            WorkCounts &counts,
            support::ThreadPool *pool) const override
    {
        raycastKernel(vertex_out, normal_out, volume_, intrinsics,
                      camera_to_world, params, counts, pool,
                      backend_);
    }

    void
    renderVolume(support::Image<support::Rgb8> &out,
                 const CameraIntrinsics &intrinsics,
                 const Mat4f &camera_to_world,
                 const RaycastParams &params, WorkCounts &counts,
                 support::ThreadPool *pool) const override
    {
        renderVolumeKernel(out, volume_, intrinsics, camera_to_world,
                           params, counts, pool, backend_);
    }

    TriangleMesh
    extractMesh() const override
    {
        return kfusion::extractMesh(volume_);
    }

    VolumeMemoryStats
    memoryStats() const override
    {
        VolumeMemoryStats stats;
        stats.bytes = static_cast<uint64_t>(volume_.voxelCount()) *
                      sizeof(Voxel);
        return stats;
    }

    const TsdfVolume *dense() const override { return &volume_; }

  private:
    TsdfVolume volume_;
    const KernelBackend *backend_ = nullptr;
};

/** Hashed-voxel-block SparseTsdfVolume behind the common interface. */
class SparseVolume final : public VolumeBackend
{
  public:
    SparseVolume(int resolution, float size_m, const Vec3f &origin,
                 int block_size, size_t pool_capacity)
        : volume_(resolution, size_m, origin, block_size,
                  pool_capacity)
    {
    }

    const char *kind() const override { return "sparse"; }
    int resolution() const override { return volume_.resolution(); }
    float size() const override { return volume_.size(); }
    const Vec3f &origin() const override { return volume_.origin(); }

    void reset() override { volume_.reset(); }

    void
    setKernelBackend(const KernelBackend *backend) override
    {
        volume_.setBackend(backend);
    }

    bool
    contains(const Vec3f &p) const override
    {
        return volume_.contains(p);
    }

    float
    interp(const Vec3f &p, bool &valid) const override
    {
        return volume_.interp(p, valid);
    }

    Vec3f grad(const Vec3f &p) const override
    {
        return volume_.grad(p);
    }

    Voxel
    voxelAt(int x, int y, int z) const override
    {
        return volume_.voxelAt(x, y, z);
    }

    void
    integrate(const support::Image<float> &depth,
              const CameraIntrinsics &intrinsics,
              const Mat4f &camera_to_world, float mu,
              float max_weight, WorkCounts &counts,
              support::ThreadPool *pool) override
    {
        volume_.integrate(depth, intrinsics, camera_to_world, mu,
                          max_weight, counts, pool);
    }

    void
    raycast(support::Image<Vec3f> &vertex_out,
            support::Image<Vec3f> &normal_out,
            const CameraIntrinsics &intrinsics,
            const Mat4f &camera_to_world, const RaycastParams &params,
            WorkCounts &counts,
            support::ThreadPool *pool) const override
    {
        raycastKernel(vertex_out, normal_out, volume_, intrinsics,
                      camera_to_world, params, counts, pool);
    }

    void
    renderVolume(support::Image<support::Rgb8> &out,
                 const CameraIntrinsics &intrinsics,
                 const Mat4f &camera_to_world,
                 const RaycastParams &params, WorkCounts &counts,
                 support::ThreadPool *pool) const override
    {
        renderVolumeKernel(out, volume_, intrinsics, camera_to_world,
                           params, counts, pool);
    }

    TriangleMesh
    extractMesh() const override
    {
        return kfusion::extractMesh(volume_);
    }

    VolumeMemoryStats
    memoryStats() const override
    {
        return volume_.memoryStats();
    }

    const SparseTsdfVolume *sparse() const override
    {
        return &volume_;
    }

  private:
    SparseTsdfVolume volume_;
};

} // namespace

bool
volumeBackendNameValid(const std::string &name)
{
    return name == "dense" || name == "sparse";
}

const std::vector<std::string> &
volumeBackendNames()
{
    static const std::vector<std::string> names{"dense", "sparse"};
    return names;
}

int
volumeBackendOrdinal(const std::string &name)
{
    return name == "sparse" ? 1 : 0;
}

std::string
volumeBackendFromOrdinal(int ordinal)
{
    return ordinal == 1 ? "sparse" : "dense";
}

std::unique_ptr<VolumeBackend>
makeVolumeBackend(const std::string &name, int resolution,
                  float size_m, const Vec3f &origin, int block_size,
                  size_t pool_capacity)
{
    if (name == "dense")
        return std::make_unique<DenseVolume>(resolution, size_m,
                                             origin);
    if (name == "sparse")
        return std::make_unique<SparseVolume>(
            resolution, size_m, origin, block_size, pool_capacity);
    support::fatal("makeVolumeBackend: unknown volume backend \"" +
                   name + "\" (expected dense or sparse)");
}

} // namespace slambench::kfusion
