#ifndef SLAMBENCH_KFUSION_KERNELS_HPP
#define SLAMBENCH_KFUSION_KERNELS_HPP

/**
 * @file
 * Image-domain preprocessing kernels of the KinectFusion pipeline.
 *
 * Every kernel exists in a Sequential and a Threaded flavor behind the
 * same entry point: pass a ThreadPool to parallelize, or nullptr for
 * the single-threaded reference path (the two are bit-identical for
 * these kernels since each output pixel is independent).
 */

#include <cstdint>

#include "math/camera.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"
#include "support/image.hpp"
#include "support/thread_pool.hpp"

namespace slambench::kfusion {

using math::CameraIntrinsics;
using math::Mat4f;
using math::Vec3f;
using support::Image;

/**
 * Convert raw sensor depth (millimeters) to meters while subsampling
 * by an integer ratio (the compute-size-ratio parameter).
 *
 * @param[out] out Metric depth, sized (in.width / ratio) x
 *                 (in.height / ratio); 0 marks invalid pixels.
 * @param in Raw sensor depth in millimeters.
 * @param ratio Subsampling factor >= 1.
 * @param pool Optional worker pool.
 */
void mm2metersKernel(Image<float> &out, const Image<uint16_t> &in,
                     int ratio, support::ThreadPool *pool);

/**
 * Edge-preserving bilateral filter on a metric depth image.
 *
 * Invalid (0) pixels stay invalid and do not pollute neighbors.
 *
 * @param[out] out Filtered depth, same size as @p in.
 * @param in Metric depth.
 * @param radius Half window size in pixels.
 * @param gaussian_delta Spatial sigma, pixels.
 * @param e_delta Range sigma, meters.
 * @param pool Optional worker pool.
 */
void bilateralFilterKernel(Image<float> &out, const Image<float> &in,
                           int radius, float gaussian_delta,
                           float e_delta, support::ThreadPool *pool);

/**
 * Robust 2x down-sampling used to build the tracking pyramid: the
 * average of the 2x2 block members whose depth is within @p e_delta
 * of the block's reference sample.
 *
 * @param[out] out Half-resolution depth.
 * @param in Source depth.
 * @param e_delta Robustness threshold, meters.
 * @param pool Optional worker pool.
 */
void halfSampleRobustKernel(Image<float> &out, const Image<float> &in,
                            float e_delta, support::ThreadPool *pool);

/**
 * Back-project a depth map into a vertex map (camera frame).
 *
 * @param[out] out Vertex per pixel; (0,0,0) marks invalid.
 * @param depth Metric depth.
 * @param intrinsics Intrinsics matching the depth image size.
 * @param pool Optional worker pool.
 */
void depth2vertexKernel(Image<Vec3f> &out, const Image<float> &depth,
                        const CameraIntrinsics &intrinsics,
                        support::ThreadPool *pool);

/**
 * Normal map from forward differences of the vertex map.
 *
 * @param[out] out Unit normal per pixel; (0,0,0) marks invalid.
 * @param vertex Vertex map.
 * @param pool Optional worker pool.
 */
void vertex2normalKernel(Image<Vec3f> &out, const Image<Vec3f> &vertex,
                         support::ThreadPool *pool);

/**
 * Work items charged per output pixel of the bilateral filter with
 * window radius @p radius (its inner loop is the window scan).
 */
inline double
bilateralItemsPerPixel(int radius)
{
    const double side = 2.0 * radius + 1.0;
    return side * side;
}

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_KERNELS_HPP
