#ifndef SLAMBENCH_KFUSION_VOLUME_HPP
#define SLAMBENCH_KFUSION_VOLUME_HPP

/**
 * @file
 * Truncated signed distance function (TSDF) volume and depth-map
 * fusion, the map representation of KinectFusion.
 */

#include <cstddef>
#include <vector>

#include "kfusion/integrate_cull.hpp"
#include "kfusion/work_counters.hpp"
#include "math/camera.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"
#include "support/image.hpp"
#include "support/thread_pool.hpp"

namespace slambench::kfusion {

using math::CameraIntrinsics;
using math::Mat4f;
using math::Vec3f;
using math::Vec3i;

class KernelBackend;

/** One voxel: truncated SDF value in [-1, 1] and fusion weight. */
struct Voxel
{
    float tsdf = 1.0f;
    float weight = 0.0f;
};

/**
 * Cubic, uniform TSDF volume positioned in world space.
 *
 * Values are normalized: tsdf = clamp(signed_distance / mu, -1, 1).
 * A weight of 0 marks never-observed voxels.
 *
 * Storage is z-major (z contiguous, then y, then x), so the
 * integration sweep along a (x, y) voxel column and the 2x2x2
 * interpolation stencil both touch adjacent memory.
 */
class TsdfVolume
{
  public:
    /**
     * @param resolution Voxels per edge (>= 8).
     * @param size_m Edge length in meters.
     * @param origin World position of the minimum corner.
     */
    TsdfVolume(int resolution, float size_m, const Vec3f &origin);

    /** @return voxels per edge. */
    int resolution() const { return resolution_; }
    /** @return edge length, meters. */
    float size() const { return size_; }
    /** @return world position of the minimum corner. */
    const Vec3f &origin() const { return origin_; }
    /** @return voxel edge length, meters. */
    float voxelSize() const { return size_ / resolution_; }

    /** Reset every voxel to unobserved. */
    void reset();

    /** Unchecked voxel access. */
    Voxel &
    at(int x, int y, int z)
    {
        return voxels_[index(x, y, z)];
    }

    /** Unchecked voxel access. */
    const Voxel &
    at(int x, int y, int z) const
    {
        return voxels_[index(x, y, z)];
    }

    /**
     * Voxel copy accessor — the generic spelling shared with
     * SparseTsdfVolume (which has no stable reference to return for
     * unallocated voxels), used by volume-generic code such as the
     * mesh extractor.
     */
    Voxel
    voxelAt(int x, int y, int z) const
    {
        return voxels_[index(x, y, z)];
    }

    /** @return world position of the center of voxel (x, y, z). */
    Vec3f
    voxelCenter(int x, int y, int z) const
    {
        const float vs = voxelSize();
        return origin_ + Vec3f{(x + 0.5f) * vs, (y + 0.5f) * vs,
                               (z + 0.5f) * vs};
    }

    /** @return true when @p p (world) lies inside the volume. */
    bool contains(const Vec3f &p) const;

    /**
     * Trilinearly interpolated TSDF at world point @p p.
     *
     * @param p World-space point; should lie inside the volume.
     * @param[out] valid Set false when any contributing voxel is
     *                   unobserved or @p p is outside.
     * @return interpolated normalized TSDF (1 when invalid).
     */
    float interp(const Vec3f &p, bool &valid) const;

    /**
     * TSDF gradient (surface normal direction) at world point @p p.
     *
     * Fused single-pass implementation: the six central-difference
     * samples are gathered in one function body, each with a single
     * base-index computation instead of eight full index
     * calculations. Bit-identical to gradReference().
     *
     * @param p World-space point near the surface.
     * @return unnormalized gradient; zero when samples are invalid.
     */
    Vec3f grad(const Vec3f &p) const;

    /**
     * Reference gradient: six independent interp() calls (the
     * textbook formulation). Kept for the bit-exactness parity tests
     * and the kernel benchmarks; grad() must match it exactly.
     */
    Vec3f gradReference(const Vec3f &p) const;

    /**
     * Fuse one metric depth map into the volume (KinectFusion
     * integration step).
     *
     * Voxel columns whose conservative camera-frame z-range projects
     * entirely outside the depth image (or behind the camera) are
     * culled before the per-voxel loop; visited voxels are counted as
     * Integrate items and culled voxels as skipped work. The fused
     * result is bit-identical to integrateDense().
     *
     * Not thread-safe against concurrent calls on the same volume
     * (the per-intrinsics lambda table is cached in the object).
     *
     * @param depth Metric depth image; 0 marks invalid pixels.
     * @param intrinsics Intrinsics of @p depth.
     * @param camera_to_world Camera pose of the depth map.
     * @param mu Truncation band, meters.
     * @param max_weight Weight saturation bound.
     * @param[in,out] counts Work accounting (Integrate kernel).
     * @param pool Optional worker pool.
     */
    void integrate(const support::Image<float> &depth,
                   const CameraIntrinsics &intrinsics,
                   const Mat4f &camera_to_world, float mu,
                   float max_weight, WorkCounts &counts,
                   support::ThreadPool *pool);

    /**
     * Reference integration: identical per-voxel math but every voxel
     * of every column is visited (no frustum culling). Kept for the
     * bit-exactness parity tests and the kernel benchmarks;
     * integrate() must produce exactly the same volume.
     */
    void integrateDense(const support::Image<float> &depth,
                        const CameraIntrinsics &intrinsics,
                        const Mat4f &camera_to_world, float mu,
                        float max_weight, WorkCounts &counts,
                        support::ThreadPool *pool);

    /** @return total voxel count (resolution^3). */
    size_t voxelCount() const { return voxels_.size(); }

    /**
     * Select the kernel backend integrate() fuses with (nullptr for
     * the scalar reference). integrateDense() always runs the scalar
     * backend — it is the parity baseline every backend is tested
     * against (see docs/ARCHITECTURE.md).
     */
    void setBackend(const KernelBackend *backend)
    {
        backend_ = backend;
    }

    /** @return the active kernel backend (nullptr = scalar). */
    const KernelBackend *backend() const { return backend_; }

  private:
    size_t
    index(int x, int y, int z) const
    {
        return (static_cast<size_t>(x) * resolution_ +
                static_cast<size_t>(y)) *
                   resolution_ +
               static_cast<size_t>(z);
    }

    /**
     * Trilinear sample with interp()'s exact arithmetic but a single
     * base-index computation; the building block of grad().
     */
    float sampleTrilinear(float px, float py, float pz,
                          bool &valid) const;

    /** Shared culled/dense integration sweep (see integrate()). */
    void integrateImpl(const support::Image<float> &depth,
                       const CameraIntrinsics &intrinsics,
                       const Mat4f &camera_to_world, float mu,
                       float max_weight, WorkCounts &counts,
                       support::ThreadPool *pool, bool cull,
                       const KernelBackend &backend);

    int resolution_;
    float size_;
    Vec3f origin_;
    std::vector<Voxel> voxels_;
    const KernelBackend *backend_ = nullptr;
    LambdaTable lambda_;
};

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_VOLUME_HPP
