#ifndef SLAMBENCH_KFUSION_BACKEND_SIMD_HPP
#define SLAMBENCH_KFUSION_BACKEND_SIMD_HPP

/**
 * @file
 * Internal interface between the kernel-backend registry
 * (backend.cpp) and the AVX2 translation unit (backend_avx2.cpp),
 * which is the only file compiled with -mavx2. Not part of the
 * public backend API — include backend.hpp instead.
 */

#include "kfusion/backend.hpp"

namespace slambench::kfusion::detail {

/**
 * @return true when backend_avx2.cpp was compiled with AVX2 code
 * generation (the build found a working -mavx2); pair with
 * cpuSupportsAvx2() before calling any *Avx2 function below.
 */
bool avx2CompiledIn();

/** AVX2 flavor of KernelBackend::integrateColumn (bit-exact). */
void integrateColumnAvx2(const IntegrateContext &ctx, Voxel *column,
                         int z_begin, int z_end, math::Vec3f pos);

/** AVX2 flavor of KernelBackend::grad (bit-exact). */
math::Vec3f gradAvx2(const TsdfVolume &volume, const math::Vec3f &p);

/** AVX2 flavor of KernelBackend::castRays (bit-exact per lane). */
void castRaysAvx2(const TsdfVolume &volume, const math::Vec3f &origin,
                  const math::Vec3f *dirs, size_t count,
                  const RaycastParams &params, RayHit *hits);

/** AVX2 flavor of KernelBackend::reduceRange (bit-exact). */
ReductionResult
reduceRangeAvx2(const support::Image<TrackData> &track_data,
                size_t begin, size_t end);

} // namespace slambench::kfusion::detail

#endif // SLAMBENCH_KFUSION_BACKEND_SIMD_HPP
