#include "kfusion/sparse_volume.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kfusion/backend.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

namespace {

/** Unallocated voxels read as the dense initial value (+1, weight 0). */
constexpr Voxel kUnobserved{};

/** Run of consecutive touched z-blocks in one (bx, by) footprint. */
struct BlockRun
{
    int bx;
    int by;
    int bz_begin;
    int bz_end;
};

size_t
ceilPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

SparseTsdfVolume::SparseTsdfVolume(int resolution, float size_m,
                                   const Vec3f &origin,
                                   int block_size,
                                   size_t pool_capacity)
    : resolution_(resolution), size_(size_m), origin_(origin),
      blockSize_(block_size)
{
    if (resolution < 8)
        support::fatal("SparseTsdfVolume: resolution must be >= 8");
    if (!(size_m > 0.0f))
        support::fatal("SparseTsdfVolume: size must be positive");
    if (block_size != 8 && block_size != 16)
        support::fatal("SparseTsdfVolume: block size must be 8 or 16");

    blockShift_ = block_size == 8 ? 3 : 4;
    blockMask_ = block_size - 1;
    blocksPerEdge_ = (resolution + block_size - 1) / block_size;
    blockVoxels_ = static_cast<size_t>(block_size) * block_size *
                   block_size;

    const size_t grid_blocks = static_cast<size_t>(blocksPerEdge_) *
                               blocksPerEdge_ * blocksPerEdge_;
    poolCapacity_ = pool_capacity == 0
                        ? grid_blocks
                        : std::min(pool_capacity, grid_blocks);

    // Load factor <= 0.5 keeps linear-probe chains short and, since
    // allocation stops at poolCapacity_, guarantees every probe
    // terminates at an empty slot. The table is sized once — no
    // rehash — so concurrent lock-free readers are safe.
    tableSize_ = std::max<size_t>(64, ceilPow2(poolCapacity_ * 2));
    tableKeys_ = std::vector<std::atomic<uint64_t>>(tableSize_);
    for (auto &k : tableKeys_)
        k.store(kEmptyKey, std::memory_order_relaxed);
    slotBlocks_.assign(tableSize_, nullptr);

    // ~2 MiB chunks: large enough to amortize allocation, small
    // enough that the last partially-used chunk wastes little.
    blocksPerChunk_ = std::max<size_t>(
        1, (2u << 20) / (blockVoxels_ * sizeof(Voxel)));
    chunks_.reserve(poolCapacity_ / blocksPerChunk_ + 1);
}

void
SparseTsdfVolume::reset()
{
    std::lock_guard<std::mutex> lock(allocMutex_);
    for (auto &k : tableKeys_)
        k.store(kEmptyKey, std::memory_order_relaxed);
    std::fill(slotBlocks_.begin(), slotBlocks_.end(), nullptr);
    // Recycle pool chunks: slots are re-issued (and re-defaulted) by
    // later allocations instead of returning memory to the OS.
    nextPoolSlot_ = 0;
    allocated_.store(0, std::memory_order_relaxed);
    lastTouched_ = 0;
    ++generation_;
}

bool
SparseTsdfVolume::contains(const Vec3f &p) const
{
    const Vec3f local = p - origin_;
    return local.x >= 0.0f && local.y >= 0.0f && local.z >= 0.0f &&
           local.x < size_ && local.y < size_ && local.z < size_;
}

const Voxel *
SparseTsdfVolume::findBlock(int bx, int by, int bz) const
{
    const uint64_t key = blockKey(bx, by, bz);
    const size_t mask = tableSize_ - 1;
    size_t i = spatialHash(bx, by, bz) & mask;
    for (;;) {
        const uint64_t k =
            tableKeys_[i].load(std::memory_order_acquire);
        if (k == key)
            return slotBlocks_[i];
        if (k == kEmptyKey)
            return nullptr;
        i = (i + 1) & mask;
    }
}

Voxel *
SparseTsdfVolume::allocateBlock(int bx, int by, int bz)
{
    const uint64_t key = blockKey(bx, by, bz);
    const size_t mask = tableSize_ - 1;
    std::lock_guard<std::mutex> lock(allocMutex_);
    size_t i = spatialHash(bx, by, bz) & mask;
    for (;;) {
        // Relaxed is enough under the allocation mutex: every writer
        // is serialized here.
        const uint64_t k =
            tableKeys_[i].load(std::memory_order_relaxed);
        if (k == key)
            return slotBlocks_[i];
        if (k == kEmptyKey)
            break;
        i = (i + 1) & mask;
    }
    if (allocated_.load(std::memory_order_relaxed) >= poolCapacity_)
        return nullptr;

    const size_t slot = nextPoolSlot_++;
    const size_t chunk = slot / blocksPerChunk_;
    if (chunk == chunks_.size())
        chunks_.push_back(std::make_unique<Voxel[]>(
            blocksPerChunk_ * blockVoxels_));
    Voxel *data = chunks_[chunk].get() +
                  (slot % blocksPerChunk_) * blockVoxels_;
    // Re-default explicitly: chunk memory may be recycled from a
    // previous epoch (reset() keeps the chunks).
    std::fill_n(data, blockVoxels_, Voxel{});

    slotBlocks_[i] = data;
    // Publish last with release order so a lock-free reader that
    // observes the key also observes the slot pointer and the
    // default-initialized voxels.
    tableKeys_[i].store(key, std::memory_order_release);
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return data;
}

Voxel
SparseTsdfVolume::voxelAt(int x, int y, int z) const
{
    const Voxel *block = findBlock(x >> blockShift_, y >> blockShift_,
                                   z >> blockShift_);
    if (!block)
        return kUnobserved;
    return block[(static_cast<size_t>(x & blockMask_) * blockSize_ +
                  static_cast<size_t>(y & blockMask_)) *
                     blockSize_ +
                 static_cast<size_t>(z & blockMask_)];
}

std::vector<math::Vec3i>
SparseTsdfVolume::allocatedBlockCoords() const
{
    std::vector<math::Vec3i> coords;
    coords.reserve(allocated_.load(std::memory_order_relaxed));
    const int be = blocksPerEdge_;
    for (size_t i = 0; i < tableSize_; ++i) {
        const uint64_t k =
            tableKeys_[i].load(std::memory_order_acquire);
        if (k == kEmptyKey)
            continue;
        const uint64_t id = k - 1;
        coords.push_back({static_cast<int>(id / (be * be)),
                          static_cast<int>(id / be % be),
                          static_cast<int>(id % be)});
    }
    std::sort(coords.begin(), coords.end(),
              [](const math::Vec3i &a, const math::Vec3i &b) {
                  if (a.x != b.x)
                      return a.x < b.x;
                  if (a.y != b.y)
                      return a.y < b.y;
                  return a.z < b.z;
              });
    return coords;
}

VolumeMemoryStats
SparseTsdfVolume::memoryStats() const
{
    VolumeMemoryStats stats;
    stats.allocatedBlocks = allocated_.load(std::memory_order_relaxed);
    stats.touchedBlocks = lastTouched_;
    stats.droppedBlocks = dropped_.load(std::memory_order_relaxed);
    // Resident pool memory is counted at chunk granularity (what the
    // process actually holds), plus the fixed-size hash index.
    const uint64_t pool_bytes = static_cast<uint64_t>(chunks_.size()) *
                                blocksPerChunk_ * blockVoxels_ *
                                sizeof(Voxel);
    const uint64_t table_bytes =
        static_cast<uint64_t>(tableSize_) *
        (sizeof(std::atomic<uint64_t>) + sizeof(Voxel *));
    stats.bytes = pool_bytes + table_bytes;
    return stats;
}

float
SparseTsdfVolume::sampleTrilinearCached(float px, float py, float pz,
                                        bool &valid,
                                        LookupCache &cache) const
{
    const float vs = voxelSize();
    // Shift by half a voxel so samples are taken at voxel centers
    // (bit-identical arithmetic to TsdfVolume::sampleTrilinear).
    const Vec3f local = (Vec3f{px, py, pz} - origin_) * (1.0f / vs) -
                        Vec3f{0.5f, 0.5f, 0.5f};
    const int x0 = static_cast<int>(std::floor(local.x));
    const int y0 = static_cast<int>(std::floor(local.y));
    const int z0 = static_cast<int>(std::floor(local.z));
    if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + 1 >= resolution_ ||
        y0 + 1 >= resolution_ || z0 + 1 >= resolution_) {
        valid = false;
        return 1.0f;
    }

    // Resolve the stencil's eight voxels through the block cache.
    // Unallocated blocks contribute the default voxel (+1, weight 0),
    // exactly what the untouched dense voxel holds.
    bool any_block = false;
    const auto fetch = [&](int x, int y, int z) -> const Voxel & {
        const Voxel *block =
            cachedBlock(x >> blockShift_, y >> blockShift_,
                        z >> blockShift_, cache);
        if (!block)
            return kUnobserved;
        any_block = true;
        return block[(static_cast<size_t>(x & blockMask_) *
                          blockSize_ +
                      static_cast<size_t>(y & blockMask_)) *
                         blockSize_ +
                     static_cast<size_t>(z & blockMask_)];
    };
    const Voxel &v000 = fetch(x0, y0, z0);
    const Voxel &v100 = fetch(x0 + 1, y0, z0);
    const Voxel &v010 = fetch(x0, y0 + 1, z0);
    const Voxel &v110 = fetch(x0 + 1, y0 + 1, z0);
    const Voxel &v001 = fetch(x0, y0, z0 + 1);
    const Voxel &v101 = fetch(x0 + 1, y0, z0 + 1);
    const Voxel &v011 = fetch(x0, y0 + 1, z0 + 1);
    const Voxel &v111 = fetch(x0 + 1, y0 + 1, z0 + 1);

    // Empty-space fast path: no stencil block is resident, so every
    // voxel is unobserved and the dense result would be an invalid +1
    // sample — skip the weight math entirely.
    if (!any_block) {
        valid = false;
        return 1.0f;
    }

    const float fx = local.x - x0;
    const float fy = local.y - y0;
    const float fz = local.z - z0;
    const float wx0 = 1.0f - fx, wx1 = fx;
    const float wy0 = 1.0f - fy, wy1 = fy;
    const float wz0 = 1.0f - fz, wz1 = fz;

    const bool any_observed =
        v000.weight > 0.0f || v100.weight > 0.0f ||
        v010.weight > 0.0f || v110.weight > 0.0f ||
        v001.weight > 0.0f || v101.weight > 0.0f ||
        v011.weight > 0.0f || v111.weight > 0.0f;
    float value = 0.0f;
    value += v000.tsdf * wx0 * wy0 * wz0;
    value += v100.tsdf * wx1 * wy0 * wz0;
    value += v010.tsdf * wx0 * wy1 * wz0;
    value += v110.tsdf * wx1 * wy1 * wz0;
    value += v001.tsdf * wx0 * wy0 * wz1;
    value += v101.tsdf * wx1 * wy0 * wz1;
    value += v011.tsdf * wx0 * wy1 * wz1;
    value += v111.tsdf * wx1 * wy1 * wz1;
    valid = any_observed;
    return any_observed ? value : 1.0f;
}

float
SparseTsdfVolume::interpCached(const Vec3f &p, bool &valid,
                               LookupCache &cache) const
{
    return sampleTrilinearCached(p.x, p.y, p.z, valid, cache);
}

float
SparseTsdfVolume::interp(const Vec3f &p, bool &valid) const
{
    LookupCache cache;
    return sampleTrilinearCached(p.x, p.y, p.z, valid, cache);
}

Vec3f
SparseTsdfVolume::gradCached(const Vec3f &p, LookupCache &cache) const
{
    const float step = voxelSize();
    // Same structure (and short-circuits) as TsdfVolume::grad so the
    // result is bit-identical, including which samples are evaluated.
    bool ok_p, ok_m;
    const float xp =
        sampleTrilinearCached(p.x + step, p.y, p.z, ok_p, cache);
    const float xm =
        sampleTrilinearCached(p.x - step, p.y, p.z, ok_m, cache);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float yp =
        sampleTrilinearCached(p.x, p.y + step, p.z, ok_p, cache);
    const float ym =
        sampleTrilinearCached(p.x, p.y - step, p.z, ok_m, cache);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float zp =
        sampleTrilinearCached(p.x, p.y, p.z + step, ok_p, cache);
    const float zm =
        sampleTrilinearCached(p.x, p.y, p.z - step, ok_m, cache);
    if (!ok_p && !ok_m)
        return Vec3f{};
    return {xp - xm, yp - ym, zp - zm};
}

Vec3f
SparseTsdfVolume::grad(const Vec3f &p) const
{
    LookupCache cache;
    return gradCached(p, cache);
}

void
SparseTsdfVolume::integrate(const support::Image<float> &depth,
                            const CameraIntrinsics &intrinsics,
                            const Mat4f &camera_to_world, float mu,
                            float max_weight, WorkCounts &counts,
                            support::ThreadPool *pool)
{
    KernelTimer timer(counts, KernelId::Integrate);
    const KernelBackend &backend =
        backend_ ? *backend_ : scalarKernelBackend();
    const Mat4f world_to_camera = camera_to_world.rigidInverse();
    const float vs = voxelSize();
    const int res = resolution_;
    const int bs = blockSize_;
    const size_t width = depth.width();
    const size_t height = depth.height();
    const float *lambda_table =
        lambda_.tableFor(intrinsics, width, height);

    const Vec3f step = world_to_camera.transformDir({0.0f, 0.0f, vs});

    IntegrateContext ctx;
    ctx.depth = depth.data();
    ctx.width = width;
    ctx.height = height;
    ctx.lambda = lambda_table;
    ctx.intrinsics = intrinsics;
    ctx.mu = mu;
    ctx.invMu = 1.0f / mu;
    ctx.maxWeight = max_weight;
    ctx.step = step;
    const double slack =
        accumulationSlack(world_to_camera, origin_, size_, res);

    // Phase 1 — the dense backend's exact per-column frustum cull,
    // parallel over columns. The intervals drive both the work
    // accounting (identical to dense, per column) and the touched-
    // block discovery below.
    const size_t columns = static_cast<size_t>(res) * res;
    cullScratch_.resize(columns);
    std::atomic<long long> visited_total{0};
    std::atomic<long long> culled_total{0};
    auto cull_columns = [&](size_t begin, size_t end) {
        long long visited = 0;
        long long culled = 0;
        for (size_t xy = begin; xy < end; ++xy) {
            const int x = static_cast<int>(xy) % res;
            const int y = static_cast<int>(xy) / res;
            const Vec3f pos = world_to_camera.transformPoint(
                voxelCenter(x, y, 0));
            const ZInterval zi = cullColumn(
                pos, step, intrinsics, width, height, res, slack);
            cullScratch_[xy] = zi;
            culled += res - (zi.end - zi.begin);
            if (zi.begin < zi.end)
                visited += zi.end - zi.begin;
        }
        visited_total.fetch_add(visited, std::memory_order_relaxed);
        culled_total.fetch_add(culled, std::memory_order_relaxed);
    };
    if (pool)
        pool->parallelForChunked(0, columns, cull_columns);
    else
        cull_columns(0, columns);

    // Phase 2 — fold the column intervals into runs of consecutive
    // touched z-blocks per (bx, by) footprint: one integration task
    // per run. Serial; O(res^2) interval reads plus bitmask scans.
    const int be = blocksPerEdge_;
    std::vector<BlockRun> runs;
    std::vector<uint64_t> zmask((be + 63) / 64);
    for (int by = 0; by < be; ++by) {
        for (int bx = 0; bx < be; ++bx) {
            std::fill(zmask.begin(), zmask.end(), 0);
            bool any = false;
            const int x_hi = std::min((bx + 1) * bs, res);
            const int y_hi = std::min((by + 1) * bs, res);
            for (int y = by * bs; y < y_hi; ++y) {
                for (int x = bx * bs; x < x_hi; ++x) {
                    const ZInterval zi =
                        cullScratch_[static_cast<size_t>(y) * res +
                                     x];
                    if (zi.begin >= zi.end)
                        continue;
                    const int b0 = zi.begin >> blockShift_;
                    const int b1 = (zi.end - 1) >> blockShift_;
                    for (int b = b0; b <= b1; ++b)
                        zmask[b >> 6] |= 1ull << (b & 63);
                    any = true;
                }
            }
            if (!any)
                continue;
            int b = 0;
            while (b < be) {
                if (!(zmask[b >> 6] >> (b & 63) & 1)) {
                    ++b;
                    continue;
                }
                const int run_begin = b;
                while (b < be && (zmask[b >> 6] >> (b & 63) & 1))
                    ++b;
                runs.push_back({bx, by, run_begin, b});
            }
        }
    }

    // Phase 3 — fuse, one task per block run. Each run owns a
    // disjoint set of blocks, so voxel writes never race; fresh
    // blocks are swept into thread-local scratch and only allocated
    // when a voxel actually fused, keeping residency proportional to
    // the observed region rather than the conservative cull margin.
    std::atomic<long long> touched_total{0};
    std::atomic<long long> dropped_now{0};
    auto sweep_runs = [&](size_t begin, size_t end) {
        static thread_local std::vector<Voxel> scratch;
        static thread_local std::vector<Voxel *> dest;
        static thread_local std::vector<uint8_t> fresh;
        static thread_local std::vector<uint8_t> swept;
        long long touched = 0;
        for (size_t ri = begin; ri < end; ++ri) {
            const BlockRun r = runs[ri];
            const int nb = r.bz_end - r.bz_begin;
            scratch.resize(static_cast<size_t>(nb) * blockVoxels_);
            dest.resize(nb);
            fresh.resize(nb);
            swept.resize(nb);
            for (int j = 0; j < nb; ++j) {
                Voxel *existing = const_cast<Voxel *>(
                    findBlock(r.bx, r.by, r.bz_begin + j));
                if (existing) {
                    dest[j] = existing;
                    fresh[j] = 0;
                } else {
                    Voxel *s = scratch.data() +
                               static_cast<size_t>(j) * blockVoxels_;
                    std::fill_n(s, blockVoxels_, Voxel{});
                    dest[j] = s;
                    fresh[j] = 1;
                }
                swept[j] = 0;
            }

            const int run_z0 = r.bz_begin * bs;
            const int run_z1 = std::min(r.bz_end * bs, res);
            const int x_hi = std::min((r.bx + 1) * bs, res);
            const int y_hi = std::min((r.by + 1) * bs, res);
            for (int x = r.bx * bs; x < x_hi; ++x) {
                for (int y = r.by * bs; y < y_hi; ++y) {
                    const ZInterval zi = cullScratch_
                        [static_cast<size_t>(y) * res + x];
                    int z = std::max(zi.begin, run_z0);
                    const int z_stop = std::min(zi.end, run_z1);
                    if (z >= z_stop)
                        continue;
                    // Replay the dense sweep's accumulation up to z
                    // so every visited voxel sees a bit-identical
                    // camera-frame position.
                    Vec3f pos = world_to_camera.transformPoint(
                        voxelCenter(x, y, 0));
                    for (int k = 0; k < z; ++k)
                        pos += step;
                    const size_t col_off =
                        (static_cast<size_t>(x & blockMask_) * bs +
                         static_cast<size_t>(y & blockMask_)) *
                        bs;
                    while (z < z_stop) {
                        const int j =
                            (z >> blockShift_) - r.bz_begin;
                        const int block_z0 = (r.bz_begin + j) * bs;
                        const int z_lim =
                            std::min(z_stop, block_z0 + bs);
                        backend.integrateColumn(
                            ctx, dest[j] + col_off, z - block_z0,
                            z_lim - block_z0, pos);
                        // Advance past the segment with the same
                        // additions the dense sweep performs.
                        for (int k = z; k < z_lim; ++k)
                            pos += step;
                        swept[j] = 1;
                        z = z_lim;
                    }
                }
            }

            for (int j = 0; j < nb; ++j) {
                if (!swept[j])
                    continue;
                ++touched;
                if (!fresh[j])
                    continue;
                const Voxel *s = scratch.data() +
                                 static_cast<size_t>(j) *
                                     blockVoxels_;
                bool fused = false;
                for (size_t v = 0; v < blockVoxels_; ++v) {
                    if (s[v].weight > 0.0f) {
                        fused = true;
                        break;
                    }
                }
                if (!fused)
                    continue;
                Voxel *data =
                    allocateBlock(r.bx, r.by, r.bz_begin + j);
                if (!data) {
                    dropped_now.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                std::copy_n(s, blockVoxels_, data);
            }
        }
        touched_total.fetch_add(touched, std::memory_order_relaxed);
    };
    if (pool)
        pool->parallelForChunked(0, runs.size(), sweep_runs);
    else
        sweep_runs(0, runs.size());

    lastTouched_ = static_cast<uint64_t>(touched_total.load());
    const long long dropped = dropped_now.load();
    if (dropped > 0) {
        dropped_.fetch_add(static_cast<uint64_t>(dropped),
                           std::memory_order_relaxed);
        if (!warnedExhausted_) {
            warnedExhausted_ = true;
            support::logWarn()
                << "sparse volume: block pool exhausted (capacity="
                << poolCapacity_ << "); dropping fusion into new "
                << "blocks (resident blocks keep fusing)";
        }
    }

    const double visited = static_cast<double>(visited_total.load());
    const double culled = static_cast<double>(culled_total.load());
    counts.addItems(KernelId::Integrate, visited);
    counts.addSkipped(KernelId::Integrate, culled);
    counts.addBytes(KernelId::Integrate, visited * 16.0);

    const VolumeMemoryStats stats = memoryStats();
    namespace sm = support::metrics;
    static sm::Counter &visited_counter =
        sm::Registry::instance().counter("volume.integrate.visited");
    static sm::Counter &culled_counter =
        sm::Registry::instance().counter("volume.integrate.culled");
    static sm::Counter &touched_counter =
        sm::Registry::instance().counter("volume.blocks.touched");
    static sm::Counter &dropped_counter =
        sm::Registry::instance().counter("volume.blocks.dropped");
    static sm::Gauge &allocated_gauge =
        sm::Registry::instance().gauge("volume.blocks.allocated");
    static sm::Gauge &bytes_gauge =
        sm::Registry::instance().gauge("volume.blocks.bytes");
    visited_counter.add(static_cast<uint64_t>(visited_total.load()));
    culled_counter.add(static_cast<uint64_t>(culled_total.load()));
    touched_counter.add(lastTouched_);
    if (dropped > 0)
        dropped_counter.add(static_cast<uint64_t>(dropped));
    allocated_gauge.set(
        static_cast<double>(stats.allocatedBlocks));
    bytes_gauge.set(static_cast<double>(stats.bytes));
    TRACE_COUNTER("integrate.voxels", visited);
    TRACE_COUNTER("integrate.culled", culled);
    TRACE_COUNTER("integrate.blocks",
                  static_cast<double>(lastTouched_));
}

} // namespace slambench::kfusion
